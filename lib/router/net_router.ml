module Node = Rgrid.Node
module Maze = Rgrid.Maze
module Grid = Rgrid.Grid
module Cost = Rgrid.Cost

type anchor = { pin : Netlist.Pin.id; landing : Rgrid.Node.t option }

type component = { nodes : Rgrid.Node.t list; anchors : anchor list }

type spec = {
  net : Netlist.Net.id;
  components : component list;
  bbox : Geometry.Rect.t;
}

let spec_of_components ~space ~net components =
  if components = [] then invalid_arg "Net_router.spec_of_components: empty";
  List.iter
    (fun c -> if c.nodes = [] then invalid_arg "Net_router: empty component")
    components;
  let points =
    List.concat_map
      (fun c ->
        List.map
          (fun n -> Geometry.Point.make ~x:(Node.x space n) ~y:(Node.y space n))
          c.nodes)
      components
  in
  { net; components; bbox = Geometry.Rect.of_points points }

(* Connect components in order of their leftmost node so the tree grows
   geographically, which keeps individual searches short. *)
let order_components space components =
  let key c =
    List.fold_left (fun acc n -> min acc (Node.x space n)) max_int c.nodes
  in
  List.sort (fun a b -> Int.compare (key a) (key b)) components

(* Trim one component against its keep points: per M2 track, the strip
   between the leftmost and rightmost keep point survives (that part is
   needed to connect the keep points through the strip); untouched
   tracks drop entirely. *)
let trim_component space (c : component) ~keeps =
  match keeps with
  | [] ->
    (* unreached and no fixed landing: keep the first node so the pin
       still has metal (single-pin nets) *)
    (match c.nodes with n :: _ -> [ n ] | [] -> [])
  | _ :: _ ->
    let by_track = Hashtbl.create 4 in
    List.iter
      (fun n ->
        let y = Node.y space n in
        let lo, hi =
          Option.value ~default:(max_int, min_int)
            (Hashtbl.find_opt by_track y)
        in
        let x = Node.x space n in
        Hashtbl.replace by_track y (min lo x, max hi x))
      keeps;
    List.filter
      (fun n ->
        match Hashtbl.find_opt by_track (Node.y space n) with
        | Some (lo, hi) ->
          let x = Node.x space n in
          lo <= x && x <= hi
        | None -> false)
      c.nodes

let route_impl ?budget maze ~cost ~pfac spec =
  let should_stop =
    match budget with
    | None -> fun () -> false
    | Some b -> fun () -> Pinaccess.Budget.exhausted b
  in
  let spend_expansions () =
    match budget with
    | None -> ()
    | Some b -> Pinaccess.Budget.spend b (Maze.expansions maze)
  in
  let grid = Maze.grid maze in
  let space = Grid.space grid in
  let die = Netlist.Design.die (Grid.design grid) in
  let window margin = Geometry.Rect.inflate spec.bbox ~by:margin ~within:die in
  let comp_arr = Array.of_list (order_components space spec.components) in
  let ncomp = Array.length comp_arr in
  (* a node may belong to several components (a pin landing inside a
     long strip): a touch there must credit all of them *)
  let node_comp = Hashtbl.create 64 in
  Array.iteri
    (fun i c -> List.iter (fun n -> Hashtbl.add node_comp n i) c.nodes)
    comp_arr;
  let touches = Array.make ncomp [] in
  let touch node =
    List.iter
      (fun i -> touches.(i) <- node :: touches.(i))
      (Hashtbl.find_all node_comp node)
  in
  let paths = ref [] in
  let tree = ref comp_arr.(0).nodes in
  let connect i =
    let component = comp_arr.(i) in
    let try_margin margin =
      let outcome =
        Maze.search ~should_stop maze ~cost ~net:spec.net ~pfac ~sources:!tree
          ~targets:component.nodes ~window:(window margin)
      in
      spend_expansions ();
      match outcome with
      | Maze.Found { path; _ } -> Some path
      | Maze.Unreachable -> None
    in
    let rec attempt = function
      | [] -> false
      | _ when should_stop () -> false
      | margin :: more ->
        (match try_margin margin with
        | Some path ->
          (match path with
          | [] -> ()
          | first :: _ ->
            touch first;
            let last = List.nth path (List.length path - 1) in
            touch last);
          paths := path :: !paths;
          tree := List.rev_append path (List.rev_append component.nodes !tree);
          true
        | None -> attempt more)
    in
    attempt (cost.Cost.bbox_margin :: cost.Cost.retry_margins)
  in
  let rec connect_all i = i >= ncomp || (connect i && connect_all (i + 1)) in
  if not (connect_all 1) then None
  else begin
    (* keep points: fixed V1 landings plus path touch points *)
    let kept = ref [] in
    let pin_vias = ref [] in
    Array.iteri
      (fun i c ->
        let fixed = List.filter_map (fun a -> a.landing) c.anchors in
        let keeps = List.rev_append fixed touches.(i) in
        let kept_nodes = trim_component space c ~keeps in
        kept := List.rev_append kept_nodes !kept;
        (* realized V1 landings.  A fixed landing (interval) gets one
           cut; a bare pin gets a cut under *every* kept stub — stubs on
           different tracks are only joined through the M1 shape, and
           each needs its own cut to reach it. *)
        List.iter
          (fun a ->
            match a.landing with
            | Some n ->
              pin_vias := (a.pin, Node.x space n, Node.y space n) :: !pin_vias
            | None ->
              let stubs =
                match List.sort_uniq Int.compare kept_nodes with
                | [] -> (match c.nodes with n :: _ -> [ n ] | [] -> [])
                | ns -> ns
              in
              List.iter
                (fun n ->
                  pin_vias :=
                    (a.pin, Node.x space n, Node.y space n) :: !pin_vias)
                stubs)
          c.anchors)
      comp_arr;
    let nodes = List.concat (!kept :: !paths) in
    Some (Rgrid.Route.make ~space ~net:spec.net ~nodes ~pin_vias:!pin_vias)
  end

let route ?budget maze ~cost ~pfac spec =
  Obs.Trace.with_span "route.net" @@ fun () ->
  route_impl ?budget maze ~cost ~pfac spec
