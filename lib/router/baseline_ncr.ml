type config = {
  cost : Rgrid.Cost.t;
  rules : Drc.Rules.t;
  tpl : Drc.Tpl.t option;
}

let default_config =
  { cost = Rgrid.Cost.default; rules = Drc.Rules.default; tpl = None }

let run ?(config = default_config) ?budget design =
  let started = Pinaccess.Unix_time.now () in
  let grid = Rgrid.Grid.create design in
  let specs = Spec_builder.build grid ~pao:None in
  let result =
    Negotiation.run ~cost:config.cost ~rules:config.rules ?tpl:config.tpl
      ?budget grid specs
  in
  let drc_reroutes =
    Negotiation.drc_ripup ~cost:config.cost ?budget ?tpl:config.tpl
      ~rules:config.rules grid
      ~spec_of:(fun net -> Some specs.(net))
      ~routes:result.Negotiation.routes ~rounds:2
  in
  Flow.finish ~rules:config.rules ?tpl:config.tpl ~grid ~pao:None
    ~initial_congestion:result.Negotiation.initial_congestion
    ~ripup_iterations:result.Negotiation.ripup_iterations
    ~total_reroutes:(result.Negotiation.total_reroutes + drc_reroutes)
    ~started result.Negotiation.routes
