type config = {
  pao_kind : Pinaccess.Pin_access.solver_kind;
  pao : Pinaccess.Pin_access.config;
  cost : Rgrid.Cost.t;
  rules : Drc.Rules.t;
  tpl : Drc.Tpl.t option;
  jobs : int;
  parallel_init : bool;
  order : Negotiation.order;
  tune : Pinaccess.Pin_access.tune_hook option;
}

let default_config =
  {
    pao_kind = Pinaccess.Pin_access.Lr;
    pao = Pinaccess.Pin_access.default_config;
    cost = Rgrid.Cost.default;
    rules = Drc.Rules.default;
    tpl = None;
    jobs = 1;
    parallel_init = false;
    order = Negotiation.Hp;
    tune = None;
  }

(* One source of truth for the deck: [config.tpl] also switches the
   PAO stage's color pricing on (unless the caller already set
   [gen.tpl] explicitly). *)
let pao_config config =
  match config.tpl with
  | None -> config.pao
  | Some deck ->
    let gen = config.pao.Pinaccess.Pin_access.gen in
    (match gen.Pinaccess.Interval_gen.tpl with
    | Some _ -> config.pao
    | None ->
      {
        config.pao with
        Pinaccess.Pin_access.gen =
          { gen with Pinaccess.Interval_gen.tpl = Some (Drc.Tpl.params deck) };
      })

let run_with_pao ?(config = default_config) ?budget design pao =
  Obs.Trace.with_span "cpr.route" @@ fun () ->
  let started = Pinaccess.Unix_time.now () -. pao.Pinaccess.Pin_access.elapsed in
  let grid = Rgrid.Grid.create design in
  let specs = Spec_builder.build grid ~pao:(Some pao) in
  let negotiate ?pool () =
    Negotiation.run ~cost:config.cost ~rules:config.rules ?tpl:config.tpl
      ?budget ?pool ~order:config.order grid specs
  in
  let result =
    if config.parallel_init && config.jobs > 1 then
      (* the persistent process-wide pool: no domain spawns per flow,
         and the same workers PAO already warmed up *)
      negotiate ~pool:(Exec.shared ~domains:config.jobs) ()
    else negotiate ()
  in
  let drc_reroutes =
    Negotiation.drc_ripup ~cost:config.cost ?budget ?tpl:config.tpl
      ~rules:config.rules grid
      ~spec_of:(fun net -> Some specs.(net))
      ~routes:result.Negotiation.routes ~rounds:2
  in
  Flow.finish ~rules:config.rules ?tpl:config.tpl ~grid ~pao:(Some pao)
    ~initial_congestion:result.Negotiation.initial_congestion
    ~ripup_iterations:result.Negotiation.ripup_iterations
    ~total_reroutes:(result.Negotiation.total_reroutes + drc_reroutes)
    ~started result.Negotiation.routes

let run ?(config = default_config) ?budget ?pao_budget design =
  Obs.Trace.with_span "cpr.run" @@ fun () ->
  let pao_budget = match pao_budget with Some _ as b -> b | None -> budget in
  let pao =
    Pinaccess.Pin_access.optimize ~config:(pao_config config)
      ?budget:pao_budget ~j:config.jobs ?tune:config.tune
      ~kind:config.pao_kind design
  in
  run_with_pao ~config ?budget design pao
