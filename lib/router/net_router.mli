(** Multi-component net routing: connect a net's components — bare pin
    landings, or pin access intervals acting as partial routes — into
    one tree with repeated maze searches, then trim the metal the
    connection did not use.

    Trimming is what keeps the paper's WL comparable across flows: a
    maximum-length interval gives the router freedom (any of its grids
    is a legal via spot), but only the strip between its pins' V1
    landings and the points where paths attach becomes final metal
    (Fig. 5(a) shows the residual detour cost). *)

type anchor = {
  pin : Netlist.Pin.id;
  landing : Rgrid.Node.t option;
      (** [Some n]: the V1 must land at [n] (an interval covers the pin
          column there).  [None]: the V1 lands wherever a path touches
          the component (a bare pin reachable on any of its tracks). *)
}

type component = {
  nodes : Rgrid.Node.t list;  (** M2 nodes; non-empty *)
  anchors : anchor list;  (** pins connecting through this component *)
}

type spec = {
  net : Netlist.Net.id;
  components : component list;
  bbox : Geometry.Rect.t;  (** hull of component coordinates *)
}

val spec_of_components :
  space:Rgrid.Node.space -> net:Netlist.Net.id -> component list -> spec
(** Computes the bbox. @raise Invalid_argument on an empty net. *)

val route :
  ?budget:Pinaccess.Budget.t ->
  Rgrid.Maze.t ->
  cost:Rgrid.Cost.t ->
  pfac:float ->
  spec ->
  Rgrid.Route.t option
(** Components are connected in left-to-right order; each connection
    searches inside the spec bbox inflated by [cost.bbox_margin],
    retrying with [cost.retry_margins].  The result contains the path
    nodes, the trimmed component metal and the realized V1 landings;
    [None] when some component stays unreachable.  [budget] bounds the
    maze searches per expanded node (expansions are spent back as work
    units); on exhaustion the net simply reports unroutable, which
    negotiation treats as any other failure. *)
