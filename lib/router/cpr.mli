(** CPR — the concurrent pin access router (paper Sec. 4).

    Flow: concurrent pin access optimization on M2 (LR by default, ILP
    optionally) → selected intervals become partial routes and
    exclusive blockages → negotiation-congestion routing → line-end
    extension → DRC accounting. *)

type config = {
  pao_kind : Pinaccess.Pin_access.solver_kind;
  pao : Pinaccess.Pin_access.config;
  cost : Rgrid.Cost.t;
  rules : Drc.Rules.t;
  tpl : Drc.Tpl.t option;
      (** the triple-patterning deck: [Some] switches on color pricing
          in the PAO stage (via [gen.tpl], unless already set), the
          TPL probe of the negotiation rip-up, and the final coloring
          verdict of {!Flow.finish} *)
  jobs : int;
      (** domains for the parallel stages ([-j] on the CLI); 1 =
          fully sequential.  Panels of the PAO stage fan out over
          [jobs] domains with deterministic merge order. *)
  parallel_init : bool;
      (** feature flag: also batch independent nets of the
          negotiation router's initial-route stage through the same
          executor (identical routing, see {!Negotiation.run}).  Off
          by default; requires [jobs > 1] to have any effect. *)
  order : Negotiation.order;
      (** net ordering policy for both negotiation stages
          ([lib/tune]); {!Negotiation.Hp} (default) is the pre-policy
          engine, bit-identical *)
  tune : Pinaccess.Pin_access.tune_hook option;
      (** adaptive per-panel scheduling hook for the PAO stage
          ([lib/tune]); [None] (default) is the untouched per-panel
          walk, bit-identical *)
}

val default_config : config

val run :
  ?config:config ->
  ?budget:Pinaccess.Budget.t ->
  ?pao_budget:Pinaccess.Budget.t ->
  Netlist.Design.t ->
  Flow.t
(** [budget] bounds the whole flow: pin access optimization degrades
    panel by panel (ILP → LR → minimum intervals) and negotiation stops
    rerouting when the budget runs out, so the flow always returns a
    short-free result near the deadline.  [pao_budget], when given,
    bounds the PAO stage separately (e.g. a tight ILP cap while routing
    stays unbounded); it defaults to [budget]. *)

val run_with_pao :
  ?config:config ->
  ?budget:Pinaccess.Budget.t ->
  Netlist.Design.t ->
  Pinaccess.Pin_access.t ->
  Flow.t
(** Route with an externally computed pin access result (used by the
    Fig. 7(a) bench to compare LR-based and ILP-based PAO under one
    routing engine). *)
