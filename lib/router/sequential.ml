module I = Geometry.Interval
module Node = Rgrid.Node
module Grid = Rgrid.Grid
module Maze = Rgrid.Maze
module Cost = Rgrid.Cost
module Pin = Netlist.Pin
module Design = Netlist.Design

type config = {
  cost : Rgrid.Cost.t;
  rules : Drc.Rules.t;
  tpl : Drc.Tpl.t option;
  strip_cap : int;
}

(* The sequential baseline legalizes as it goes: clearance and
   forbidden-via costs are much steeper than the negotiation flows'
   (detours instead of violations — [12]'s behaviour), but stay finite
   so dense regions remain reachable. *)
let default_config =
  {
    cost =
      {
        Rgrid.Cost.default with
        Rgrid.Cost.spacing_penalty = 16.0;
        Rgrid.Cost.forbidden_via_cost = 24.0;
      };
    rules = Drc.Rules.default;
    tpl = None;
    strip_cap = 2;
  }

(* Route fully legally first (clearances are walls); only a net that
   cannot be embedded legally after deferring falls back to the
   soft-but-steep penalties and may introduce violations — [12]'s
   legalize-as-you-go with net deferring. *)
let hard config = { config.cost with Cost.hard_spacing = true }

(* Longest free strip over the pin on one of its tracks, capped at
   [strip_cap] grids per side: the net's greedily planned pin access.
   [12] legalizes while planning, so a *clean* strip — one whose ends
   keep the minimum line-end gap from committed foreign metal — is
   preferred over a merely free one. *)
let plan_pin_strip grid config (p : Pin.t) =
  let space = Grid.space grid in
  let free ~x ~y =
    Node.in_bounds space ~x ~y
    &&
    let node = Node.pack space ~layer:Rgrid.Layer.M2 ~x ~y in
    Grid.passable grid ~net:p.net node && Grid.occ grid node = 0
  in
  let foreign ~x ~y =
    Node.in_bounds space ~x ~y
    &&
    let node = Node.pack space ~layer:Rgrid.Layer.M2 ~x ~y in
    Grid.blocked grid node
    || List.exists (fun k -> k <> p.net) (Grid.nets_using grid node)
  in
  let min_gap = config.rules.Drc.Rules.min_line_end_gap in
  let clean ~x ~y =
    free ~x ~y
    &&
    let ok = ref true in
    for dx = 1 to min_gap do
      if foreign ~x:(x - dx) ~y || foreign ~x:(x + dx) ~y then ok := false
    done;
    !ok
  in
  let strip_on ~probe track =
    if not (probe ~x:p.x ~y:track) then None
    else begin
      let lo = ref p.x and hi = ref p.x in
      while p.x - !lo < config.strip_cap && probe ~x:(!lo - 1) ~y:track do
        decr lo
      done;
      while !hi - p.x < config.strip_cap && probe ~x:(!hi + 1) ~y:track do
        incr hi
      done;
      Some (track, !lo, !hi)
    end
  in
  let tracks = List.init (I.length p.tracks) (fun i -> I.lo p.tracks + i) in
  let candidates =
    match List.filter_map (strip_on ~probe:clean) tracks with
    | [] -> List.filter_map (strip_on ~probe:free) tracks
    | clean_candidates -> clean_candidates
  in
  let primary = Pin.primary_track p in
  let better (t1, l1, h1) (t2, l2, h2) =
    let len1 = h1 - l1 and len2 = h2 - l2 in
    if len1 <> len2 then len1 > len2
    else abs (t1 - primary) < abs (t2 - primary)
  in
  match candidates with
  | [] -> None
  | c :: cs ->
    let best = List.fold_left (fun b c -> if better c b then c else b) c cs in
    let track, lo, hi = best in
    Some
      ( List.init (hi - lo + 1) (fun i ->
            Node.pack space ~layer:Rgrid.Layer.M2 ~x:(lo + i) ~y:track),
        track )

let build_spec grid config net =
  let design = Grid.design grid in
  let space = Grid.space grid in
  let pins = Design.net_pins design net in
  let planned =
    List.map
      (fun (p : Pin.t) ->
        match plan_pin_strip grid config p with
        | Some (nodes, track) ->
          Some
            {
              Net_router.nodes;
              anchors =
                [
                  {
                    Net_router.pin = p.Pin.id;
                    landing =
                      Some
                        (Node.pack space ~layer:Rgrid.Layer.M2 ~x:p.Pin.x
                           ~y:track);
                  };
                ];
            }
        | None -> None)
      pins
  in
  if List.exists Option.is_none planned then None
  else
    Some
      (Net_router.spec_of_components ~space ~net
         (List.filter_map Fun.id planned))

let commit grid route =
  Negotiation.apply_route grid route;
  List.iter
    (fun node -> Grid.set_owner grid node ~net:route.Rgrid.Route.net)
    route.Rgrid.Route.nodes

let run ?(config = default_config) ?budget design =
  let started = Pinaccess.Unix_time.now () in
  let grid = Grid.create design in
  let space = Grid.space grid in
  (* pins are blockages for other nets, as in every flow *)
  Array.iter
    (fun (p : Pin.t) ->
      for t = I.lo p.Pin.tracks to I.hi p.Pin.tracks do
        let node = Node.pack space ~layer:Rgrid.Layer.M2 ~x:p.Pin.x ~y:t in
        if Grid.owner grid node = -1 && not (Grid.blocked grid node) then
          Grid.set_owner grid node ~net:p.Pin.net
      done)
    (Design.pins design);
  let maze = Maze.create grid in
  let n = Array.length (Design.nets design) in
  let routes = Array.make n None in
  let reroutes = ref 0 in
  let attempt ~cost net =
    match build_spec grid config net with
    | None -> false
    | Some spec ->
      incr reroutes;
      (match Net_router.route ?budget maze ~cost ~pfac:0.0 spec with
      | Some route ->
        commit grid route;
        routes.(net) <- Some route;
        true
      | None -> false)
  in
  (* first pass in net order, fully legal (clearances are walls);
     failures are deferred rather than forced *)
  let hard_cost = hard config in
  let deferred = ref [] in
  for net = 0 to n - 1 do
    if not (attempt ~cost:hard_cost net) then deferred := net :: !deferred
  done;
  (* net deferring: retry legally with wide-open windows first, then
     allow steep-but-soft penalties as the last resort *)
  let wide cost =
    { cost with Cost.bbox_margin = 24; Cost.retry_margins = [ 60; 200 ] }
  in
  let deferred2 = ref [] in
  List.iter
    (fun net ->
      if not (attempt ~cost:(wide hard_cost) net) then
        deferred2 := net :: !deferred2)
    (List.rev !deferred);
  List.iter
    (fun net -> ignore (attempt ~cost:(wide config.cost) net))
    (List.rev !deferred2);
  (* per-net design-rule legalization, hard-blocked like the rest of
     the flow ([12] legalizes during sequential routing) *)
  let drc_reroutes =
    Negotiation.drc_ripup ~cost:(wide hard_cost) ~own:true ?budget
      ?tpl:config.tpl ~rules:config.rules grid
      ~spec_of:(build_spec grid config)
      ~routes ~rounds:3
  in
  Flow.finish ~rules:config.rules ?tpl:config.tpl ~grid ~pao:None
    ~initial_congestion:0
    ~ripup_iterations:0
    ~total_reroutes:(!reroutes + drc_reroutes)
    ~started routes
