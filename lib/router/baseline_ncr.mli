(** The [21]-style baseline: the same negotiation-congestion engine as
    CPR but *without* pin access optimization — each pin is accessed
    directly over its shape, and other nets' pins are blockages.  This
    isolates the contribution of the PAO stage (Table 2, Fig. 7(b)). *)

type config = {
  cost : Rgrid.Cost.t;
  rules : Drc.Rules.t;
  tpl : Drc.Tpl.t option;
      (** TPL deck for the negotiation probe and the final coloring
          verdict (see {!Cpr.config}) *)
}

val default_config : config

val run :
  ?config:config -> ?budget:Pinaccess.Budget.t -> Netlist.Design.t -> Flow.t
(** [budget] bounds negotiation and DRC rip-up; on exhaustion the best
    short-free routing found so far is returned. *)
