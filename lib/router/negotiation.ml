module Grid = Rgrid.Grid
module Maze = Rgrid.Maze
module Cost = Rgrid.Cost
module Node = Rgrid.Node

type result = {
  routes : Rgrid.Route.t option array;
  initial_congestion : int;
  ripup_iterations : int;
  total_reroutes : int;
}

let m_ripup_rounds = Obs.Metrics.counter "negotiation.ripup_rounds"
let m_reroutes = Obs.Metrics.counter "negotiation.reroutes"
let m_drc_rounds = Obs.Metrics.counter "negotiation.drc_rounds"

let apply_route grid (route : Rgrid.Route.t) =
  let space = Grid.space grid in
  List.iter (fun node -> Grid.add_usage grid ~net:route.Rgrid.Route.net node) route.Rgrid.Route.nodes;
  List.iter (fun (x, y) -> Grid.add_via grid ~x ~y) (Rgrid.Route.via_positions ~space route)

let retract_route grid (route : Rgrid.Route.t) =
  let space = Grid.space grid in
  List.iter
    (fun node -> Grid.remove_usage grid ~net:route.Rgrid.Route.net node)
    route.Rgrid.Route.nodes;
  List.iter (fun (x, y) -> Grid.remove_via grid ~x ~y) (Rgrid.Route.via_positions ~space route)

(* TPL probe: color the current metal and, for every uncolorable
   feature, bump history under its grids — scaled by the deck's stitch
   cost, so an expensive-to-stitch deck pushes the router away harder —
   and return the blamed nets, which join the rip-up victims exactly
   like DRC-blamed ones. *)
let tpl_victims ?tpl ~scale grid layout =
  match tpl with
  | None -> []
  | Some deck ->
    let space = Grid.space grid in
    let stats = Drc.Tpl.check deck layout in
    let bump = scale *. Drc.Tpl.stitch_cost deck in
    List.iter
      (fun (v : Drc.Tpl.violation) ->
        for x = Geometry.Interval.lo v.Drc.Tpl.span
            to Geometry.Interval.hi v.Drc.Tpl.span do
          if Node.in_bounds space ~x ~y:v.Drc.Tpl.track then
            Grid.add_history_at grid
              (Node.pack space ~layer:Rgrid.Layer.M2 ~x ~y:v.Drc.Tpl.track)
              bump
        done)
      stats.Drc.Tpl.violations;
    Drc.Tpl.blamed_nets stats

let drc_ripup ?(cost = Cost.default) ?(own = false) ?budget ?frozen ?tpl
    ~rules grid ~spec_of ~routes ~rounds =
  let design = Grid.design grid in
  let space = Grid.space grid in
  let maze = Maze.create grid in
  let reroutes = ref 0 in
  let is_frozen net =
    match frozen with Some f -> f.(net) | None -> false
  in
  let exhausted () =
    match budget with
    | None -> false
    | Some b -> Pinaccess.Budget.exhausted b
  in
  (* a soft (pfac-based) reroute may introduce sharing; resolve it by
     dropping the later net before metal extraction *)
  let drop_overused () =
    if (not own) && Grid.congested_nodes grid > 0 then
      Array.iteri
        (fun net route ->
          match route with
          | Some (r : Rgrid.Route.t) ->
            if
              (not (is_frozen net))
              && List.exists
                   (fun node -> Grid.overused grid node)
                   r.Rgrid.Route.nodes
            then begin
              retract_route grid r;
              routes.(net) <- None
            end
          | None -> ())
        routes
  in
  let round = ref 0 in
  let continue_ = ref true in
  while !continue_ && !round < rounds && not (exhausted ()) do
    Obs.Trace.with_span "negotiation.drc_round" @@ fun () ->
    incr round;
    Obs.Metrics.incr m_drc_rounds;
    drop_overused ();
    let layout = Drc.Extract.of_routes design routes in
    let violations = Drc.Check.run rules layout in
    let tpl_blamed = tpl_victims ?tpl ~scale:4.0 grid layout in
    match
      List.filter
        (fun net -> not (is_frozen net))
        (List.sort_uniq Int.compare
           (Drc.Check.blamed_nets violations @ tpl_blamed))
    with
    | [] -> continue_ := false
    | blamed ->
      List.iter
        (fun (v : Drc.Check.violation) ->
          List.iter
            (fun (x, y) ->
              if Node.in_bounds space ~x ~y then begin
                let bump layer =
                  Grid.add_history_at grid (Node.pack space ~layer ~x ~y) 4.0
                in
                bump Rgrid.Layer.M2;
                bump Rgrid.Layer.M3
              end)
            v.Drc.Check.sites)
        violations;
      List.iter
        (fun net ->
          let old = routes.(net) in
          (match old with
          | Some r ->
            retract_route grid r;
            if own then
              List.iter
                (fun node -> Grid.clear_owner grid node ~net)
                r.Rgrid.Route.nodes;
            routes.(net) <- None
          | None -> ());
          incr reroutes;
          Obs.Metrics.incr m_reroutes;
          let reown (r : Rgrid.Route.t) =
            if own then
              List.iter
                (fun node ->
                  if Grid.owner grid node = -1 then
                    Grid.set_owner grid node ~net)
                r.Rgrid.Route.nodes
          in
          match
            Option.bind (spec_of net)
              (Net_router.route ?budget maze ~cost ~pfac:4.0)
          with
          | Some r ->
            apply_route grid r;
            reown r;
            routes.(net) <- Some r
          | None -> ignore old)
        blamed
  done;
  if own then
    (* failed reroutes must not leave their pins grabbable *)
    Array.iter
      (fun (p : Netlist.Pin.t) ->
        for tr = Geometry.Interval.lo p.Netlist.Pin.tracks
            to Geometry.Interval.hi p.Netlist.Pin.tracks do
          let node =
            Node.pack space ~layer:Rgrid.Layer.M2 ~x:p.Netlist.Pin.x ~y:tr
          in
          if Grid.owner grid node = -1 && not (Grid.blocked grid node) then
            Grid.set_owner grid node ~net:p.Netlist.Pin.net
        done)
      (Netlist.Design.pins design)
  else drop_overused ();
  !reroutes

type order = Hp | Area | Congestion | History

let order_to_string = function
  | Hp -> "hp"
  | Area -> "area"
  | Congestion -> "congestion"
  | History -> "history"

let bbox_area (spec : Net_router.spec) =
  let bbox = spec.Net_router.bbox in
  Geometry.Interval.length (Geometry.Rect.xs bbox)
  * Geometry.Interval.length (Geometry.Rect.ys bbox)

(* Per net, how many *other* net bboxes overlap its x-span — a cheap
   contested-column proxy.  Interval stabbing by sorted endpoints:
   overlaps(i) = #{lo_j <= hi_i} - #{hi_j < lo_i} - 1, each term one
   binary search, so the whole vector is O(n log n). *)
let overlap_degrees specs =
  let n = Array.length specs in
  let lo i = Geometry.Interval.lo (Geometry.Rect.xs specs.(i).Net_router.bbox)
  and hi i =
    Geometry.Interval.hi (Geometry.Rect.xs specs.(i).Net_router.bbox)
  in
  let los = Array.init n lo and his = Array.init n hi in
  Array.sort Int.compare los;
  Array.sort Int.compare his;
  (* number of elements of [sorted] <= v *)
  let count_le sorted v =
    let l = ref 0 and r = ref (Array.length sorted) in
    while !l < !r do
      let m = (!l + !r) / 2 in
      if sorted.(m) <= v then l := m + 1 else r := m
    done;
    !l
  in
  Array.init n (fun i -> count_le los (hi i) - count_le his (lo i - 1) - 1)

(* Short nets first: they have the least routing freedom (the
   default); the alternatives are the rip-up ordering policies of
   [lib/tune]. *)
let routing_order ?(order = Hp) specs =
  let idx = Array.init (Array.length specs) (fun i -> i) in
  let hp i = Geometry.Rect.half_perimeter specs.(i).Net_router.bbox in
  let by key =
    Array.sort
      (fun a b ->
        let c = Int.compare (key a) (key b) in
        if c <> 0 then c else Int.compare a b)
      idx;
    idx
  in
  match order with
  | Hp -> by hp
  | Area -> by (fun i -> bbox_area specs.(i))
  | History ->
    (* largest first: the nets that accumulate history get first pick *)
    by (fun i -> -hp i)
  | Congestion ->
    let deg = overlap_degrees specs in
    Array.sort
      (fun a b ->
        (* most contested first, then the hp tie-break of the default *)
        let c = Int.compare deg.(b) deg.(a) in
        if c <> 0 then c
        else
          let c = Int.compare (hp a) (hp b) in
          if c <> 0 then c else Int.compare a b)
      idx;
    idx

(* Parallel batched routing, shared by stage 1 and the rip-up rounds.

   A maze search writes only its own private state; what it *reads*
   beyond static state (pins, intervals, blockages, ownership) is
   what committed routes wrote near their own bbox: route nodes and
   vias stay inside the net's search window, and the cost model reads
   at most 2 grids beyond it (spacing probes ±2, [via_forbidden] ±1;
   at [pfac > 0] also occupancy, users and history — all written only
   under committed route nodes).  Two nets whose windows inflated by
   that radius are disjoint therefore cannot influence each other,
   whatever order they route, retract or commit in.  We walk the
   given net order, greedily growing a run of consecutive, pairwise-
   disjoint nets, run [prepare] (stage 2's retraction) for the whole
   run in order, route the run concurrently (each domain on its own
   maze, metrics and spans buffered, budget isolated), then commit
   the results in order — which reproduces the sequential processing
   of that order exactly.  This is the dependency coloring the rip-up
   rounds fan out on: each batch is one color class of the round's
   victim list. *)
let route_batches_parallel ?budget ~cost ~pfac pool grid maze_key specs order
    ~prepare ~apply =
  let die = Netlist.Design.die (Grid.design grid) in
  let margin_max =
    List.fold_left max cost.Cost.bbox_margin cost.Cost.retry_margins
  in
  let influence net =
    Geometry.Rect.inflate specs.(net).Net_router.bbox ~by:(margin_max + 2)
      ~within:die
  in
  let trace_on = Obs.Trace.enabled () in
  let compute net =
    let sub = Option.map (fun b -> Pinaccess.Budget.isolated b ()) budget in
    let task () =
      Net_router.route ?budget:sub (Domain.DLS.get maze_key) ~cost ~pfac
        specs.(net)
    in
    let (r, events), mbuf =
      Obs.Metrics.buffered (fun () ->
          if trace_on then Obs.Trace.buffered task else (task (), []))
    in
    (r, events, mbuf, sub)
  in
  let n = Array.length order in
  let i = ref 0 in
  while !i < n do
    let batch = ref [ order.(!i) ] in
    let regions = ref [ influence order.(!i) ] in
    incr i;
    let grow = ref true in
    while !grow && !i < n do
      let net = order.(!i) in
      let r = influence net in
      if List.exists (Geometry.Rect.overlaps r) !regions then grow := false
      else begin
        batch := net :: !batch;
        regions := r :: !regions;
        incr i
      end
    done;
    let batch = Array.of_list (List.rev !batch) in
    Array.iter prepare batch;
    let results =
      if Array.length batch = 1 then Array.map compute batch
      else Exec.map pool compute batch
    in
    Array.iteri
      (fun k (r, events, mbuf, sub) ->
        Obs.Metrics.flush mbuf;
        Obs.Trace.replay events;
        (match (budget, sub) with
        | Some b, Some s ->
          Pinaccess.Budget.spend b (Pinaccess.Budget.work_spent s)
        | _, _ -> ());
        apply batch.(k) r)
      results
  done

let overused_nets ?(is_frozen = fun _ -> false) grid routes =
  let result = ref [] in
  Array.iteri
    (fun net route ->
      if not (is_frozen net) then
        match route with
        | Some (r : Rgrid.Route.t) ->
          if List.exists (fun node -> Grid.overused grid node) r.Rgrid.Route.nodes then
            result := net :: !result
        | None -> result := net :: !result)
    routes;
  List.rev !result

let run ?(cost = Cost.default) ?rules ?tpl ?budget ?pool ?frozen ?initial
    ?(order = Hp) grid specs =
  let policy = order in
  let maze = Maze.create grid in
  (* one maze per domain when routing in parallel, reused across
     batches and rounds; the caller contributes the maze it already
     owns *)
  let maze_key = Domain.DLS.new_key (fun () -> Maze.create grid) in
  Domain.DLS.set maze_key maze;
  let parallel =
    match pool with
    | Some pool when Exec.domains pool > 1 -> Some pool
    | Some _ | None -> None
  in
  let design = Grid.design grid in
  let space = Grid.space grid in
  let n = Array.length specs in
  let routes : Rgrid.Route.t option array = Array.make n None in
  let is_frozen net =
    match frozen with Some f -> f.(net) | None -> false
  in
  (* rip-up ordering policy: victims keep the default's net-id order
     under [Hp] (bit-identical) and reorder deterministically under the
     alternatives; [History] ranks by how often a net has been blamed
     so far this run *)
  let degrees =
    match policy with Congestion -> Some (overlap_degrees specs) | _ -> None
  in
  let blame_count = Array.make n 0 in
  let order_victims victims =
    let by key =
      List.stable_sort
        (fun a b ->
          let c = Int.compare (key a) (key b) in
          if c <> 0 then c else Int.compare a b)
        victims
    in
    match policy with
    | Hp -> victims
    | Area -> by (fun net -> bbox_area specs.(net))
    | Congestion ->
      let deg = Option.get degrees in
      by (fun net -> -deg.(net))
    | History -> by (fun net -> -blame_count.(net))
  in
  (* pre-committed routes (an incremental caller's reused metal): their
     usage and vias go on the grid up front, so stage 1 searches see
     them as congestion exactly like earlier-committed routes *)
  (match initial with
  | Some init ->
    Array.iteri
      (fun net route ->
        match route with
        | Some r ->
          apply_route grid r;
          routes.(net) <- Some r
        | None -> ())
      init
  | None -> ());
  let total_reroutes = ref 0 in
  let exhausted () =
    match budget with
    | None -> false
    | Some b -> Pinaccess.Budget.exhausted b
  in
  let route_net ~pfac net =
    (match routes.(net) with
    | Some r ->
      retract_route grid r;
      routes.(net) <- None
    | None -> ());
    incr total_reroutes;
    Obs.Metrics.incr m_reroutes;
    match Net_router.route ?budget maze ~cost ~pfac specs.(net) with
    | Some r ->
      apply_route grid r;
      routes.(net) <- Some r
    | None -> ()
  in
  (* Probe the current metal for DRC violations mid-negotiation: bump
     history on the offending grids and return the blamed nets so they
     join the rip-up victims (paper Sec. 4: rip-up and reroute also
     serves the manufacturing constraints). *)
  let drc_victims () =
    if rules = None && tpl = None then []
    else begin
      let layout = Drc.Extract.of_routes ~tolerate_shorts:true design routes in
      let drc_blamed =
        match rules with
        | None -> []
        | Some rules ->
          let violations = Drc.Check.run rules layout in
          List.iter
            (fun (v : Drc.Check.violation) ->
              List.iter
                (fun (x, y) ->
                  if Node.in_bounds space ~x ~y then begin
                    let bump layer =
                      Grid.add_history_at grid (Node.pack space ~layer ~x ~y)
                        2.0
                    in
                    bump Rgrid.Layer.M2;
                    bump Rgrid.Layer.M3
                  end)
                v.Drc.Check.sites)
            violations;
          Drc.Check.blamed_nets violations
      in
      let tpl_blamed = tpl_victims ?tpl ~scale:2.0 grid layout in
      List.sort_uniq Int.compare (drc_blamed @ tpl_blamed)
    end
  in
  (* Stage 1: independent routing (no present-sharing term); nets that
     arrived pre-routed via [initial] keep their metal *)
  let order = routing_order ~order:policy specs in
  let order =
    if Array.exists Option.is_some routes then
      Array.of_seq
        (Seq.filter (fun net -> routes.(net) = None) (Array.to_seq order))
    else order
  in
  (match parallel with
  | Some pool when Array.length order > 1 ->
    route_batches_parallel ?budget ~cost ~pfac:0.0 pool grid maze_key specs
      order
      ~prepare:(fun _ -> ())
      ~apply:(fun net r ->
        incr total_reroutes;
        Obs.Metrics.incr m_reroutes;
        match r with
        | Some r ->
          apply_route grid r;
          routes.(net) <- Some r
        | None -> ())
  | Some _ | None -> Array.iter (fun net -> route_net ~pfac:0.0 net) order);
  let initial_congestion = Grid.congested_nodes grid in
  (* Stage 2: rip-up and reroute with negotiation *)
  let iterations = ref 0 in
  let unfrozen_unrouted () =
    let missing = ref false in
    Array.iteri
      (fun net route ->
        if route = None && not (is_frozen net) then missing := true)
      routes;
    !missing
  in
  let continue_ = ref (initial_congestion > 0 || unfrozen_unrouted ()) in
  let blamed =
    ref
      (if initial_congestion = 0 then
         List.filter (fun net -> not (is_frozen net)) (drc_victims ())
       else [])
  in
  if !blamed <> [] then continue_ := true;
  while
    !continue_
    && !iterations < cost.Cost.max_ripup_iterations
    && not (exhausted ())
  do
    Obs.Trace.with_span "negotiation.round" @@ fun () ->
    incr iterations;
    Obs.Metrics.incr m_ripup_rounds;
    let pfac =
      cost.Cost.pfac_initial
      *. Float.pow cost.Cost.pfac_growth (float_of_int (!iterations - 1))
    in
    Grid.add_history grid ~increment:cost.Cost.history_increment;
    let victims =
      List.sort_uniq Int.compare
        (overused_nets ~is_frozen grid routes @ !blamed)
    in
    List.iter
      (fun net -> blame_count.(net) <- blame_count.(net) + 1)
      victims;
    let victims = order_victims victims in
    (match parallel with
    | Some pool when List.compare_length_with victims 1 > 0 ->
      (* colored rip-up: each disjoint-influence batch of the round's
         victim list retracts, reroutes and recommits concurrently *)
      route_batches_parallel ?budget ~cost ~pfac pool grid maze_key specs
        (Array.of_list victims)
        ~prepare:(fun net ->
          (match routes.(net) with
          | Some r ->
            retract_route grid r;
            routes.(net) <- None
          | None -> ());
          incr total_reroutes;
          Obs.Metrics.incr m_reroutes)
        ~apply:(fun net r ->
          match r with
          | Some r ->
            apply_route grid r;
            routes.(net) <- Some r
          | None -> ())
    | Some _ | None -> List.iter (fun net -> route_net ~pfac net) victims);
    blamed := List.filter (fun net -> not (is_frozen net)) (drc_victims ());
    continue_ :=
      Grid.congested_nodes grid > 0 || unfrozen_unrouted () || !blamed <> []
  done;
  (* Drop still-conflicting nets: keep earlier ids, fail later ones.
     Frozen routes are never dropped — overuse on a frozen node always
     has an unfrozen sharer (frozen routes are mutually consistent),
     and dropping that sharer clears it. *)
  if Grid.congested_nodes grid > 0 then
    Array.iteri
      (fun net route ->
        match route with
        | Some (r : Rgrid.Route.t) ->
          if
            (not (is_frozen net))
            && List.exists (fun node -> Grid.overused grid node) r.Rgrid.Route.nodes
          then begin
            retract_route grid r;
            routes.(net) <- None
          end
        | None -> ())
      routes;
  { routes; initial_congestion; ripup_iterations = !iterations; total_reroutes = !total_reroutes }
