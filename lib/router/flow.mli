(** Shared routing-flow result and the common post-routing pipeline:
    line-end extension, DRC, and the paper's fair-comparison accounting
    (nets blamed for remaining violations count as unrouted). *)

type t = {
  design : Netlist.Design.t;
  routes : Rgrid.Route.t option array;
      (** per net, after line-end extension; [None] = not connected *)
  clean : bool array;
      (** per net: connected and free of blamed DRC violations — the
          nets the paper counts as routed *)
  initial_congestion : int;
  ripup_iterations : int;
  total_reroutes : int;
  violations : Drc.Check.violation list;
  extension : Drc.Line_end.stats;
  rules : Drc.Rules.t;
      (** the rule deck the DRC verdicts were computed under, recorded
          so an external audit can replay the exact same checks *)
  tpl : Drc.Tpl.t option;
      (** the TPL deck (when the flow ran color-constrained), recorded
          for the same replayability reason as [rules] *)
  tpl_stats : Drc.Tpl.stats option;
      (** the final coloring verdict over the extended metal; its
          blamed nets were folded into [clean] alongside DRC blame *)
  pao : Pinaccess.Pin_access.t option;
  reused_routes : int;
      (** nets whose previous route was frozen and carried over by an
          incremental (ECO) run; [0] for from-scratch flows *)
  elapsed : float;  (** cpu seconds for the whole flow *)
}

val finish :
  ?rules:Drc.Rules.t ->
  ?tpl:Drc.Tpl.t ->
  ?reused:int ->
  grid:Rgrid.Grid.t ->
  pao:Pinaccess.Pin_access.t option ->
  initial_congestion:int ->
  ripup_iterations:int ->
  total_reroutes:int ->
  started:float ->
  Rgrid.Route.t option array ->
  t
(** Runs extension + DRC over the routes, pushes extension fills back
    into the routes and the grid, and computes [clean].  With [tpl] the
    extended metal is also colored and nets with uncolorable features
    are blamed (counted unrouted) alongside DRC blame.  [reused]
    (default 0) records how many routes an incremental caller froze. *)

val routed_count : t -> int
(** Number of clean nets. *)

val routability : t -> float
(** [routed_count / total nets]. *)

val degraded : t -> bool
(** [true] when the pin access stage fell back below its requested
    solver on some panel (or was cut short by its budget); [false] for
    flows without a PAO stage. *)
