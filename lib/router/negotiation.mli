(** Negotiation-congestion routing (the engine shared by CPR and the
    [21]-style baseline).

    Stage 1 ("independent routing") routes every net with no present-
    sharing penalty; the number of overused grids after this stage is
    the paper's initial-congestion metric (Fig. 7(b)).  Stage 2 rips up
    and reroutes only the nets crossing overused grids, with growing
    present-sharing factor and accumulating history costs, until the
    overuse disappears or the iteration budget ends.  Nets still
    sharing grids at the end are dropped deterministically (latest net
    id loses) so the surviving routing is short-free. *)

type result = {
  routes : Rgrid.Route.t option array;  (** per net id; [None] = unrouted *)
  initial_congestion : int;
  ripup_iterations : int;
  total_reroutes : int;
}

type order =
  | Hp
      (** the default: stage 1 routes by ascending bbox half-perimeter
          (shortest nets have the least freedom), rip-up victims keep
          ascending net-id order — bit-identical to the pre-policy
          engine *)
  | Area  (** ascending bbox area, both stages *)
  | Congestion
      (** most-contested first: descending count of other net bboxes
          overlapping the net's x-span (computed once, O(n log n)),
          ties by the default's keys *)
  | History
      (** stage 1 routes largest half-perimeter first; rip-up victims
          by descending blame count (how often the net has been a
          victim this run) — the most-renegotiated nets pick first *)
(** Net ordering policies for both negotiation stages ([lib/tune]).
    Every policy is a deterministic function of the specs and the
    run's own blame history, so any order stays bit-reproducible
    across [pool] sizes (batches replay the given order exactly). *)

val order_to_string : order -> string

val routing_order : ?order:order -> Net_router.spec array -> int array
(** The stage-1 net order under a policy (default [Hp]); exposed for
    tests. *)

val run :
  ?cost:Rgrid.Cost.t ->
  ?rules:Drc.Rules.t ->
  ?tpl:Drc.Tpl.t ->
  ?budget:Pinaccess.Budget.t ->
  ?pool:Exec.t ->
  ?frozen:bool array ->
  ?initial:Rgrid.Route.t option array ->
  ?order:order ->
  Rgrid.Grid.t ->
  Net_router.spec array ->
  result
(** With [rules], every rip-up iteration also probes the current metal
    for DRC violations, bumps history on the offending grids and adds
    the blamed nets to the victims — the paper's combined congestion +
    manufacturing-constraint rip-up.

    [tpl] extends the same probe with the triple-patterning deck: the
    current M2 metal is colored each round, history is bumped under
    uncolorable features (scaled by the deck's stitch cost) and their
    nets join the victims, so color-locked wires get negotiated apart
    like any congestion.  Omitted, the engine is bit-identical to the
    pre-TPL behaviour.

    [initial] pre-commits routes before stage 1 (an incremental
    caller's reused metal): their usage and vias are applied up front
    and stage 1 skips those nets.  [frozen] marks nets (by id) whose
    routes must survive untouched: they are never ripped up, never
    blamed into the DRC victims and never dropped, but their metal
    contributes congestion and history like any other committed route —
    fixed obstacles the negotiation routes around.  A frozen net should
    arrive with an [initial] route; the caller must guarantee frozen
    routes are mutually overlap-free (e.g. they come from one previous
    consistent flow).  Both default to "none" — without them [run] is
    exactly the from-scratch negotiation.

    [budget] bounds the work: it is checked before each rip-up round
    and inside every maze search, so on exhaustion the engine stops
    rerouting and returns the best routing found so far (nets still
    conflicting are dropped as usual — the result stays short-free,
    just with more unrouted nets).

    [pool] (when its domain count exceeds 1) parallelizes both stages
    by net dependency coloring: consecutive nets of the order being
    processed (stage 1's routing order, or a rip-up round's victim
    list) whose inflated influence regions are pairwise disjoint — and
    therefore cannot read each other's metal, occupancy or history —
    are routed concurrently and committed in order, producing the
    exact sequential routing.  The between-round work (history sweep,
    DRC probe, victim selection) negotiates through shared congestion
    state and stays sequential. *)

val apply_route : Rgrid.Grid.t -> Rgrid.Route.t -> unit
(** Record a route's node usage and via pressure. *)

val retract_route : Rgrid.Grid.t -> Rgrid.Route.t -> unit

val drc_ripup :
  ?cost:Rgrid.Cost.t ->
  ?own:bool ->
  ?budget:Pinaccess.Budget.t ->
  ?frozen:bool array ->
  ?tpl:Drc.Tpl.t ->
  rules:Drc.Rules.t ->
  Rgrid.Grid.t ->
  spec_of:(int -> Net_router.spec option) ->
  routes:Rgrid.Route.t option array ->
  rounds:int ->
  int
(** The paper's manufacturing-constraint rip-up: check the current
    routes, bump history on every violation grid, and reroute the
    blamed nets (at a high present-sharing factor) up to [rounds]
    times.  [own] re-claims exclusive ownership of committed metal
    (the sequential baseline's hard-blocking mode).  [frozen] nets are
    exempt from blame, rip-up and overuse dropping, as in {!run}.
    Returns the number of reroute attempts.  [routes] is updated in
    place; a net whose reroute fails becomes unrouted.  [budget] is
    checked before each round; exhaustion stops the rip-up with the
    routes as they stand. *)
