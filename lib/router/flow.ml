module Grid = Rgrid.Grid
module Node = Rgrid.Node
module Route = Rgrid.Route
module Layer = Rgrid.Layer
module I = Geometry.Interval

type t = {
  design : Netlist.Design.t;
  routes : Rgrid.Route.t option array;
  clean : bool array;
  initial_congestion : int;
  ripup_iterations : int;
  total_reroutes : int;
  violations : Drc.Check.violation list;
  extension : Drc.Line_end.stats;
  rules : Drc.Rules.t;
  tpl : Drc.Tpl.t option;
  tpl_stats : Drc.Tpl.stats option;
  pao : Pinaccess.Pin_access.t option;
  reused_routes : int;
  elapsed : float;
}

let fill_nodes space (fill : Drc.Line_end.fill) =
  List.init (I.length fill.Drc.Line_end.span) (fun i ->
      let pos = I.lo fill.Drc.Line_end.span + i in
      match fill.Drc.Line_end.layer with
      | Layer.M2 ->
        Node.pack space ~layer:Layer.M2 ~x:pos ~y:fill.Drc.Line_end.track
      | Layer.M3 ->
        Node.pack space ~layer:Layer.M3 ~x:fill.Drc.Line_end.track ~y:pos
      | Layer.M1 -> assert false)

let finish ?(rules = Drc.Rules.default) ?tpl ?(reused = 0) ~grid ~pao
    ~initial_congestion ~ripup_iterations ~total_reroutes ~started routes =
  let design = Grid.design grid in
  let space = Grid.space grid in
  let layout = Drc.Extract.of_routes design routes in
  (* [x] is the position along the track: an x column for M2 fills, a
     y row for M3 fills *)
  let can_fill layer ~track ~x ~net =
    let node =
      match layer with
      | Layer.M2 -> Node.pack space ~layer:Layer.M2 ~x ~y:track
      | Layer.M3 -> Node.pack space ~layer:Layer.M3 ~x:track ~y:x
      | Layer.M1 -> assert false
    in
    (* M2 over a foreign M1 pin without a via is legal, so plain pin
       ownership does not veto a fill — only blockages and real metal
       of other nets do *)
    (not (Grid.blocked grid node))
    && (match Grid.nets_using grid node with
       | [] -> true
       | [ n ] -> n = net
       | _ :: _ :: _ -> false)
  in
  let fills, extension = Drc.Line_end.extend ~can_fill rules layout in
  (* push extension metal back into routes and grid usage *)
  List.iter
    (fun (fill : Drc.Line_end.fill) ->
      let net = fill.Drc.Line_end.net in
      if net >= 0 then begin
        let nodes = fill_nodes space fill in
        List.iter
          (fun node ->
            if not (List.mem net (Grid.nets_using grid node)) then
              Grid.add_usage grid ~net node)
          nodes;
        match routes.(net) with
        | Some r -> routes.(net) <- Some (Route.add_nodes ~space r nodes)
        | None -> ()
      end)
    fills;
  let violations = Drc.Check.run rules layout in
  (* the final verdict colors the *extended* metal: re-extract so the
     line-end fills pushed in above are part of the decomposition *)
  let tpl_stats =
    Option.map
      (fun deck -> Drc.Tpl.check deck (Drc.Extract.of_routes design routes))
      tpl
  in
  let blamed =
    List.sort_uniq Int.compare
      (Drc.Check.blamed_nets violations
      @ (match tpl_stats with
        | None -> []
        | Some stats -> Drc.Tpl.blamed_nets stats))
  in
  let clean =
    Array.mapi
      (fun net route -> Option.is_some route && not (List.mem net blamed))
      routes
  in
  {
    design;
    routes;
    clean;
    initial_congestion;
    ripup_iterations;
    total_reroutes;
    violations;
    extension;
    rules;
    tpl;
    tpl_stats;
    pao;
    reused_routes = reused;
    elapsed = Pinaccess.Unix_time.now () -. started;
  }

let routed_count t = Array.fold_left (fun k c -> if c then k + 1 else k) 0 t.clean

let routability t =
  float_of_int (routed_count t) /. float_of_int (Array.length t.clean)

let degraded t =
  match t.pao with
  | None -> false
  | Some pao -> pao.Pinaccess.Pin_access.degraded
