(** The [12]-style baseline (PARR): sequential routing with per-net
    greedy pin access planning and net deferring.

    Each net, in order, greedily grabs the longest currently-free M2
    strip over each of its pins (its planned pin access), then routes
    against *hard* blockages — everything already committed is
    untouchable.  Failing nets are deferred and retried once at the end
    with wider search windows.  There is no negotiation: resource
    competition is resolved first-come-first-served, which is exactly
    the behaviour the paper's concurrent formulation improves on. *)

type config = {
  cost : Rgrid.Cost.t;
  rules : Drc.Rules.t;
  tpl : Drc.Tpl.t option;
      (** TPL deck for the legalization rip-up and the final coloring
          verdict (see {!Cpr.config}) *)
  strip_cap : int;  (** max grids a planned pin strip extends per side *)
}

val default_config : config

val run :
  ?config:config -> ?budget:Pinaccess.Budget.t -> Netlist.Design.t -> Flow.t
(** [budget] bounds the maze searches and the legalization rip-up; on
    exhaustion remaining nets stay unrouted. *)
