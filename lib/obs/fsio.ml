type pending = {
  target : string;
  tmp : string;
  oc : out_channel;
  mutable state : [ `Open | `Committed | `Aborted ];
}

(* the temp file must live in the target's directory: [Sys.rename]
   across filesystems is not atomic (and fails outright on POSIX) *)
let open_atomic target =
  let dir = Filename.dirname target in
  let tmp =
    Filename.temp_file ~temp_dir:dir
      ("." ^ Filename.basename target ^ ".")
      ".tmp"
  in
  { target; tmp; oc = open_out tmp; state = `Open }

let channel p = p.oc

let commit p =
  if p.state = `Open then begin
    close_out p.oc;
    Sys.rename p.tmp p.target;
    p.state <- `Committed
  end

let abort p =
  if p.state = `Open then begin
    close_out_noerr p.oc;
    (try Sys.remove p.tmp with Sys_error _ -> ());
    p.state <- `Aborted
  end

let atomic_write path content =
  let p = open_atomic path in
  match output_string p.oc content with
  | () -> commit p
  | exception e ->
    abort p;
    raise e
