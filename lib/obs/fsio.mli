(** Atomic file writes: temp file in the target directory + rename.

    Every artifact this repo persists — exported designs, fuzz repros,
    bench telemetry, trace/metrics streams, service checkpoints — goes
    through here, so a crash (or a [kill -9]) mid-write never leaves a
    torn file at the destination path: readers see either the old
    content or the new, never a prefix.  [Sys.rename] is atomic on
    POSIX when source and target share a filesystem, which the
    same-directory temp file guarantees. *)

val atomic_write : string -> string -> unit
(** [atomic_write path content] writes [content] to a fresh temp file
    next to [path], then renames it over [path].
    @raise Sys_error when the directory is not writable. *)

type pending
(** An open atomic write: a temp file being filled, promoted to the
    target path only on {!commit}.  For streaming writers (trace
    sinks) that cannot buffer the whole artifact in memory. *)

val open_atomic : string -> pending
(** Open a temp file next to the target path.
    @raise Sys_error when the temp file cannot be created. *)

val channel : pending -> out_channel
(** The temp file's channel; write the artifact here. *)

val commit : pending -> unit
(** Close the channel and rename the temp file to the target path.
    Idempotent (a second call is a no-op). *)

val abort : pending -> unit
(** Close and delete the temp file, leaving the target untouched.
    Idempotent, and a no-op after {!commit}. *)
