(** The one clock every subsystem reads.

    [now] is process time ([Sys.time]) by default — the paper reports
    "cpu(s)", so budgets, spans and the benches all print processor
    seconds.  Tests swap the source with {!with_source} to make both
    budget expiry and span timestamps deterministic; because
    [Pinaccess.Unix_time] delegates here, faking the clock once fakes
    it for the whole pipeline. *)

val now : unit -> float
(** Seconds from the current source. *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f] and returns its result with the elapsed
    seconds. *)

val set_source : (unit -> float) -> unit
(** Replace the clock globally (tests, replay). *)

val reset_source : unit -> unit
(** Back to [Sys.time]. *)

val with_source : (unit -> float) -> (unit -> 'a) -> 'a
(** Run a thunk under a fake clock; the previous source is restored
    even on exceptions. *)
