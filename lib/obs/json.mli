(** Minimal JSON: enough to emit telemetry and to parse it back in
    tests and validators.  No external dependency; numbers are floats
    (ints round-trip exactly up to 2^53). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val num_int : int -> t
(** [Num] of an integer. *)

val to_string : t -> string
(** Compact single-line rendering (valid JSON; strings escaped,
    non-finite numbers become [null]). *)

val to_string_pretty : t -> string
(** Two-space-indented rendering for files meant to be diffed. *)

val parse : string -> (t, string) result
(** Strict parse of one JSON value (surrounding whitespace allowed);
    [Error] carries a byte offset and reason. *)

val member : string -> t -> t option
(** Field lookup on [Obj]; [None] otherwise. *)
