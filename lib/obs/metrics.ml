type counter = { c_name : string; mutable count : int }

(* cells.(0) = count, (1) = sum, (2) = min, (3) = max; a floatarray
   keeps the fields unboxed so [observe] never allocates.  [reservoir]
   is an opt-in ({!sampled}) preallocated store of the first N samples
   for percentile estimation — recording into it is a store plus an
   index bump, so the no-allocation contract holds there too. *)
type histogram = {
  h_name : string;
  cells : floatarray;
  mutable reservoir : floatarray option;
  mutable retained : int;
}

let counters : (string, counter) Hashtbl.t = Hashtbl.create 32
let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 32

let counter name =
  match Hashtbl.find_opt counters name with
  | Some c -> c
  | None ->
    let c = { c_name = name; count = 0 } in
    Hashtbl.replace counters name c;
    c

let empty_cells cells =
  Float.Array.set cells 0 0.0;
  Float.Array.set cells 1 0.0;
  Float.Array.set cells 2 infinity;
  Float.Array.set cells 3 neg_infinity

let histogram name =
  match Hashtbl.find_opt histograms name with
  | Some h -> h
  | None ->
    let h =
      { h_name = name; cells = Float.Array.create 4; reservoir = None;
        retained = 0 }
    in
    empty_cells h.cells;
    Hashtbl.replace histograms name h;
    h

let sampled ?(reservoir = 8192) name =
  let h = histogram name in
  (match h.reservoir with
  | Some r when Float.Array.length r >= reservoir -> ()
  | Some r ->
    (* grow, keeping what was already retained *)
    let bigger = Float.Array.create reservoir in
    Float.Array.blit r 0 bigger 0 h.retained;
    h.reservoir <- Some bigger
  | None -> h.reservoir <- Some (Float.Array.create (max 1 reservoir)));
  h

(* Domain-local redirection.  The registry above is owned by the main
   domain; when a task runs under [buffered] (on any domain), its bumps
   land in a private buffer keyed by metric name instead of the shared
   records, so worker domains never touch shared mutable state.  The
   indirection is one DLS load plus an option test per bump. *)
type buffer = {
  bc : (string, int ref) Hashtbl.t;
  bh : (string, floatarray) Hashtbl.t;
}

let local_key : buffer option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let observe_cells cells v =
  Float.Array.set cells 0 (Float.Array.get cells 0 +. 1.0);
  Float.Array.set cells 1 (Float.Array.get cells 1 +. v);
  if v < Float.Array.get cells 2 then Float.Array.set cells 2 v;
  if v > Float.Array.get cells 3 then Float.Array.set cells 3 v

let add c n =
  match Domain.DLS.get local_key with
  | None -> c.count <- c.count + n
  | Some b ->
    (match Hashtbl.find_opt b.bc c.c_name with
    | Some r -> r := !r + n
    | None -> Hashtbl.replace b.bc c.c_name (ref n))

let incr c = add c 1
let value c = c.count

let observe h v =
  match Domain.DLS.get local_key with
  | None ->
    observe_cells h.cells v;
    (match h.reservoir with
    | Some r when h.retained < Float.Array.length r ->
      Float.Array.set r h.retained v;
      h.retained <- h.retained + 1
    | _ -> ())
  | Some b ->
    let cells =
      match Hashtbl.find_opt b.bh h.h_name with
      | Some cells -> cells
      | None ->
        let cells = Float.Array.create 4 in
        empty_cells cells;
        Hashtbl.replace b.bh h.h_name cells;
        cells
    in
    observe_cells cells v

let buffered f =
  let b = { bc = Hashtbl.create 8; bh = Hashtbl.create 8 } in
  let prev = Domain.DLS.get local_key in
  Domain.DLS.set local_key (Some b);
  let v =
    Fun.protect ~finally:(fun () -> Domain.DLS.set local_key prev) f
  in
  (v, b)

let flush b =
  (* [add]/the cell merge below re-check the redirection, so flushing
     inside an enclosing [buffered] scope folds into that outer buffer:
     buffers nest like the tasks that filled them *)
  Hashtbl.iter (fun name r -> add (counter name) !r) b.bc;
  Hashtbl.iter
    (fun name src ->
      let merge dst =
        Float.Array.set dst 0 (Float.Array.get dst 0 +. Float.Array.get src 0);
        Float.Array.set dst 1 (Float.Array.get dst 1 +. Float.Array.get src 1);
        if Float.Array.get src 2 < Float.Array.get dst 2 then
          Float.Array.set dst 2 (Float.Array.get src 2);
        if Float.Array.get src 3 > Float.Array.get dst 3 then
          Float.Array.set dst 3 (Float.Array.get src 3)
      in
      match Domain.DLS.get local_key with
      | None -> merge (histogram name).cells
      | Some outer ->
        (match Hashtbl.find_opt outer.bh name with
        | Some dst -> merge dst
        | None ->
          let dst = Float.Array.create 4 in
          empty_cells dst;
          Hashtbl.replace outer.bh name dst;
          merge dst))
    b.bh

type histogram_stats = {
  count : int;
  sum : float;
  min : float;
  max : float;
  mean : float;
}

let stats h =
  let count = int_of_float (Float.Array.get h.cells 0) in
  let sum = Float.Array.get h.cells 1 in
  {
    count;
    sum;
    min = Float.Array.get h.cells 2;
    max = Float.Array.get h.cells 3;
    mean = (if count = 0 then nan else sum /. float_of_int count);
  }

type snapshot = {
  counters : (string * int) list;
  histograms : (string * histogram_stats) list;
}

let snapshot () =
  let cs =
    Hashtbl.fold
      (fun name (c : counter) acc ->
        if c.count = 0 then acc else (name, c.count) :: acc)
      counters []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  let hs =
    Hashtbl.fold
      (fun name h acc ->
        let s = stats h in
        if s.count = 0 then acc else (name, s) :: acc)
      histograms []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  { counters = cs; histograms = hs }

(* Window delta between two snapshots of the same registry.  Counter
   deltas subtract; histogram count/sum subtract and the mean is
   recomputed over the window.  min/max are epoch extremes (they only
   widen), so a window cannot recover its own extremes — the diff
   reports the [after] values, honest as bounds on the window. *)
let diff ~before ~after =
  let assoc name entries = List.assoc_opt name entries in
  let cs =
    List.filter_map
      (fun (name, v) ->
        let prev = Option.value ~default:0 (assoc name before.counters) in
        if v - prev = 0 then None else Some (name, v - prev))
      after.counters
  in
  let hs =
    List.filter_map
      (fun (name, (s : histogram_stats)) ->
        let prev =
          Option.value
            ~default:
              { count = 0; sum = 0.0; min = infinity; max = neg_infinity;
                mean = nan }
            (assoc name before.histograms)
        in
        let count = s.count - prev.count in
        if count = 0 then None
        else
          let sum = s.sum -. prev.sum in
          Some
            ( name,
              {
                count;
                sum;
                min = s.min;
                max = s.max;
                mean = sum /. float_of_int count;
              } ))
      after.histograms
  in
  { counters = cs; histograms = hs }

let counter_delta snap name =
  Option.value ~default:0 (List.assoc_opt name snap.counters)

let percentile h p =
  match h.reservoir with
  | None -> nan
  | Some _ when h.retained = 0 -> nan
  | Some r ->
    let n = h.retained in
    let sorted = Float.Array.sub r 0 n in
    Float.Array.sort Float.compare sorted;
    (* nearest-rank: the smallest retained sample >= p percent of them *)
    let rank =
      int_of_float (Float.ceil (p /. 100.0 *. float_of_int n)) - 1
    in
    Float.Array.get sorted (min (n - 1) (max 0 rank))

let reset () =
  Hashtbl.iter (fun _ (c : counter) -> c.count <- 0) counters;
  Hashtbl.iter
    (fun _ h ->
      empty_cells h.cells;
      h.retained <- 0)
    histograms

let summary snap =
  let buf = Buffer.create 256 in
  if snap.counters <> [] then begin
    Buffer.add_string buf "counters:\n";
    let width =
      List.fold_left (fun w (n, _) -> max w (String.length n)) 0 snap.counters
    in
    List.iter
      (fun (name, v) ->
        Buffer.add_string buf (Printf.sprintf "  %-*s %d\n" width name v))
      snap.counters
  end;
  if snap.histograms <> [] then begin
    Buffer.add_string buf "histograms:\n";
    let width =
      List.fold_left (fun w (n, _) -> max w (String.length n)) 0 snap.histograms
    in
    List.iter
      (fun (name, s) ->
        Buffer.add_string buf
          (Printf.sprintf "  %-*s n=%d mean=%.3f min=%.3f max=%.3f sum=%.3f\n"
             width name s.count s.mean s.min s.max s.sum))
      snap.histograms
  end;
  if snap.counters = [] && snap.histograms = [] then
    Buffer.add_string buf "no metrics recorded\n";
  Buffer.contents buf

let stats_json s =
  Json.Obj
    [
      ("count", Json.num_int s.count);
      ("sum", Json.Num s.sum);
      ("min", Json.Num s.min);
      ("max", Json.Num s.max);
      ("mean", Json.Num s.mean);
    ]

let to_json snap =
  Json.Obj
    [
      ( "counters",
        Json.Obj (List.map (fun (n, v) -> (n, Json.num_int v)) snap.counters) );
      ( "histograms",
        Json.Obj (List.map (fun (n, s) -> (n, stats_json s)) snap.histograms) );
    ]

let jsonl snap =
  List.map
    (fun (n, v) ->
      Json.to_string
        (Json.Obj
           [
             ("type", Json.Str "counter");
             ("name", Json.Str n);
             ("value", Json.num_int v);
           ]))
    snap.counters
  @ List.map
      (fun (n, s) ->
        Json.to_string
          (Json.Obj
             [
               ("type", Json.Str "histogram");
               ("name", Json.Str n);
               ("count", Json.num_int s.count);
               ("sum", Json.Num s.sum);
               ("min", Json.Num s.min);
               ("max", Json.Num s.max);
               ("mean", Json.Num s.mean);
             ]))
      snap.histograms
