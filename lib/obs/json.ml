type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let num_int n = Num (float_of_int n)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let add_num buf f =
  if not (Float.is_finite f) then Buffer.add_string buf "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.0f" f)
  else Buffer.add_string buf (Printf.sprintf "%.12g" f)

let rec emit ~indent ~level buf v =
  let nl k =
    if indent then begin
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make (2 * k) ' ')
    end
  in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num f -> add_num buf f
  | Str s -> escape buf s
  | List [] -> Buffer.add_string buf "[]"
  | List xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        nl (level + 1);
        emit ~indent ~level:(level + 1) buf x)
      xs;
    nl level;
    Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, x) ->
        if i > 0 then Buffer.add_char buf ',';
        nl (level + 1);
        escape buf k;
        Buffer.add_char buf ':';
        if indent then Buffer.add_char buf ' ';
        emit ~indent ~level:(level + 1) buf x)
      fields;
    nl level;
    Buffer.add_char buf '}'

let render ~indent v =
  let buf = Buffer.create 256 in
  emit ~indent ~level:0 buf v;
  Buffer.contents buf

let to_string v = render ~indent:false v
let to_string_pretty v = render ~indent:true v

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | Null | Bool _ | Num _ | Str _ | List _ -> None

(* ----------------------------------------------------------------- *)
(* Parsing                                                           *)
(* ----------------------------------------------------------------- *)

exception Bad of int * string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some d when d = c -> advance ()
    | Some d -> fail (Printf.sprintf "expected %c, got %c" c d)
    | None -> fail (Printf.sprintf "expected %c, got end of input" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail (Printf.sprintf "bad literal (expected %s)" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
        | None -> fail "unterminated escape"
        | Some c ->
          advance ();
          (match c with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'n' -> Buffer.add_char buf '\n'
          | 'r' -> Buffer.add_char buf '\r'
          | 't' -> Buffer.add_char buf '\t'
          | 'u' ->
            if !pos + 4 > n then fail "truncated \\u escape";
            let hex = String.sub s !pos 4 in
            pos := !pos + 4;
            (match int_of_string_opt ("0x" ^ hex) with
            | Some code when Uchar.is_valid code ->
              Buffer.add_utf_8_uchar buf (Uchar.of_int code)
            | Some _ | None -> fail "bad \\u escape")
          | _ -> fail "bad escape character"));
        loop ()
      | Some c ->
        advance ();
        Buffer.add_char buf c;
        loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let numchar c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> numchar c | None -> false) do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> Num f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let items = ref [ parse_value () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          items := parse_value () :: !items;
          skip_ws ()
        done;
        expect ']';
        List (List.rev !items)
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let field () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (k, v)
        in
        let fields = ref [ field () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          fields := field () :: !fields;
          skip_ws ()
        done;
        expect '}';
        Obj (List.rev !fields)
      end
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Bad (at, msg) -> Error (Printf.sprintf "offset %d: %s" at msg)
