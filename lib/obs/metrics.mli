(** Global registry of named solver metrics.

    Counters and histograms are registered once (usually at module
    initialization, next to the code they meter) and bumped on the hot
    path; a bump is a couple of loads and stores, never an allocation,
    so metering stays on even in production builds.

    Canonical metric names are dotted paths owned by the emitting
    subsystem: [lr.iterations], [lr.step_size], [ilp.nodes],
    [maze.expansions], [negotiation.ripup_rounds], [pao.tier.lr], … —
    see DESIGN.md §7 for the full taxonomy.

    {2 Parallel execution}

    The registry itself is owned by the main domain and is not safe to
    bump from several domains at once.  Code that runs under an [Exec]
    pool wraps each task in {!buffered}, which redirects that task's
    bumps — through the same cached {!counter}/{!histogram} handles —
    into a private, domain-local buffer; the caller merges the buffers
    back with {!flush} at join, in whatever order makes the run
    deterministic. *)

type counter
(** A monotonically increasing integer metric. *)

type histogram
(** A sample distribution (count/sum/min/max, no binning). *)

val counter : string -> counter
(** Find-or-create; the same name always yields the same counter. *)

val histogram : string -> histogram
(** Find-or-create, like {!counter}. *)

val sampled : ?reservoir:int -> string -> histogram
(** Like {!histogram}, additionally retaining the first [reservoir]
    (default 8192) samples observed directly against the registry, so
    {!percentile} can answer p50/p99 queries.  Recording a sample is a
    store plus an index bump — still allocation-free.  Samples made
    inside a {!buffered} scope contribute to count/sum/min/max as
    usual but are not retained for percentiles.  Calling [sampled] on
    an existing histogram attaches (or grows) its reservoir in place. *)

val add : counter -> int -> unit
(** Bump by [n]; allocation-free. *)

val incr : counter -> unit
(** [add c 1]. *)

val value : counter -> int
(** Current value in the global registry (buffered bumps not yet
    {!flush}ed are invisible here). *)

val observe : histogram -> float -> unit
(** Record one sample (count/sum/min/max, no binning). *)

type buffer
(** A detached batch of metric bumps, private to the task that
    produced it. *)

val buffered : (unit -> 'a) -> 'a * buffer
(** [buffered f] runs [f] with every {!add}/{!incr}/{!observe} made
    {e on the calling domain} redirected into a fresh buffer, and
    returns [f]'s result with that buffer.  The previous redirection
    (none, usually) is restored afterwards, also on exceptions — the
    exception propagates and the buffer is dropped.  {!value},
    {!snapshot} and {!reset} always address the global registry. *)

val flush : buffer -> unit
(** Fold a buffer into the registry (or, when called inside an
    enclosing {!buffered} scope, into that scope's buffer — buffers
    nest like the tasks that filled them).  Call it from the domain
    that owns the registry, once per buffer. *)

type histogram_stats = {
  count : int;
  sum : float;
  min : float;  (** [infinity] when empty *)
  max : float;  (** [neg_infinity] when empty *)
  mean : float;  (** [nan] when empty *)
}

val stats : histogram -> histogram_stats

val percentile : histogram -> float -> float
(** [percentile h p] (with [p] in [0, 100]) is the nearest-rank [p]-th
    percentile over the samples retained by a {!sampled} histogram;
    [nan] for an unsampled histogram or before any sample.  Computed
    on demand (sorts a copy) — not a hot-path call. *)

type snapshot = {
  counters : (string * int) list;  (** sorted by name *)
  histograms : (string * histogram_stats) list;  (** sorted by name *)
}

val snapshot : unit -> snapshot
(** Zero-valued counters and empty histograms are omitted. *)

val diff : before:snapshot -> after:snapshot -> snapshot
(** The window delta between two snapshots of the same registry, taken
    without any reset or mutation in between: counter deltas subtract
    per name, histogram [count]/[sum] subtract and [mean] is recomputed
    over the window.  Registry [min]/[max] are epoch extremes (they
    only ever widen), so a window's own extremes are unrecoverable —
    the diff carries the [after] values, which bound the window's.
    Entries whose count did not move are omitted, like {!snapshot}
    omits zeros.  The tuner's reward tap ([lib/tune]), also usable for
    per-request telemetry in the service layer. *)

val counter_delta : snapshot -> string -> int
(** [counter_delta snap name] is the named counter's value in [snap]
    (0 when omitted) — convenience for reading {!diff} windows. *)

val reset : unit -> unit
(** Zero every registered metric in place (registrations survive, so
    cached handles stay valid) — used between bench experiments and
    tests. *)

val summary : snapshot -> string
(** Human-readable table: the [--stats] end-of-run report. *)

val to_json : snapshot -> Json.t
(** [{"counters": {...}, "histograms": {name: {count,sum,min,max,mean}}}]. *)

val jsonl : snapshot -> string list
(** One self-describing JSON object per line:
    [{"type":"counter","name":...,"value":...}] and
    [{"type":"histogram","name":...,"count":...,...}]. *)
