(** Global registry of named solver metrics.

    Counters and histograms are registered once (usually at module
    initialization, next to the code they meter) and bumped on the hot
    path; a bump is a couple of loads and stores, never an allocation,
    so metering stays on even in production builds.  The registry is
    process-global and single-threaded, like the pipeline itself.

    Canonical metric names are dotted paths owned by the emitting
    subsystem: [lr.iterations], [lr.step_size], [ilp.nodes],
    [maze.expansions], [negotiation.ripup_rounds], [pao.tier.lr], … —
    see DESIGN.md §7 for the full taxonomy. *)

type counter
type histogram

val counter : string -> counter
(** Find-or-create; the same name always yields the same counter. *)

val histogram : string -> histogram

val add : counter -> int -> unit
val incr : counter -> unit
val value : counter -> int

val observe : histogram -> float -> unit
(** Record one sample (count/sum/min/max, no binning). *)

type histogram_stats = {
  count : int;
  sum : float;
  min : float;  (** [infinity] when empty *)
  max : float;  (** [neg_infinity] when empty *)
  mean : float;  (** [nan] when empty *)
}

val stats : histogram -> histogram_stats

type snapshot = {
  counters : (string * int) list;  (** sorted by name *)
  histograms : (string * histogram_stats) list;  (** sorted by name *)
}

val snapshot : unit -> snapshot
(** Zero-valued counters and empty histograms are omitted. *)

val reset : unit -> unit
(** Zero every registered metric in place (registrations survive, so
    cached handles stay valid) — used between bench experiments and
    tests. *)

val summary : snapshot -> string
(** Human-readable table: the [--stats] end-of-run report. *)

val to_json : snapshot -> Json.t
(** [{"counters": {...}, "histograms": {name: {count,sum,min,max,mean}}}]. *)

val jsonl : snapshot -> string list
(** One self-describing JSON object per line:
    [{"type":"counter","name":...,"value":...}] and
    [{"type":"histogram","name":...,"count":...,...}]. *)
