let default = Sys.time
let source = ref default
let now () = !source ()
let set_source f = source := f
let reset_source () = source := default

let with_source f g =
  let saved = !source in
  source := f;
  Fun.protect ~finally:(fun () -> source := saved) g

let time f =
  let t0 = now () in
  let x = f () in
  (x, now () -. t0)
