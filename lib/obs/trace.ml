type event = { name : string; ts : float; dur : float; depth : int }

type sink = { on_event : event -> unit; flush : unit -> unit }

let null = { on_event = ignore; flush = ignore }

let make_sink ~on_event ~flush = { on_event; flush }

let tee a b =
  {
    on_event =
      (fun e ->
        a.on_event e;
        b.on_event e);
    flush =
      (fun () ->
        a.flush ();
        b.flush ());
  }

let collect () =
  let events = ref [] in
  ( { on_event = (fun e -> events := e :: !events); flush = ignore },
    fun () -> List.rev !events )

let event_json e =
  Json.Obj
    [
      ("type", Json.Str "span");
      ("name", Json.Str e.name);
      ("ts", Json.Num e.ts);
      ("dur", Json.Num e.dur);
      ("depth", Json.num_int e.depth);
    ]

let jsonl oc =
  {
    on_event =
      (fun e ->
        output_string oc (Json.to_string (event_json e));
        output_char oc '\n');
    flush = (fun () -> flush oc);
  }

let chrome oc =
  let first = ref true in
  output_string oc "[";
  {
    on_event =
      (fun e ->
        if !first then first := false else output_string oc ",";
        (* ts/dur in microseconds, per the trace_event format *)
        Printf.fprintf oc
          "\n\
           {\"name\":%s,\"cat\":\"cpr\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":1}"
          (Json.to_string (Json.Str e.name))
          (e.ts *. 1e6) (e.dur *. 1e6));
    flush =
      (fun () ->
        output_string oc "\n]\n";
        flush oc);
  }

(* The sink and nesting depth are domain-local: a freshly spawned
   worker domain starts silent even while the main domain is tracing,
   so parallel tasks never write to a shared channel.  Workers that
   should be heard run under [buffered] and the caller [replay]s their
   events at join.  [on] mirrors "a non-null sink is installed" so the
   disabled check on the hot path is one load and one test. *)
type state = { mutable active : sink; mutable on : bool; mutable depth : int }

let state_key : state Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { active = null; on = false; depth = 0 })

let set_sink s =
  let st = Domain.DLS.get state_key in
  st.active <- s;
  st.on <- s != null

let clear_sink () =
  let st = Domain.DLS.get state_key in
  st.active <- null;
  st.on <- false

let enabled () = (Domain.DLS.get state_key).on

let with_sink s f =
  let st = Domain.DLS.get state_key in
  let prev_active = st.active and prev_on = st.on in
  set_sink s;
  Fun.protect
    ~finally:(fun () ->
      s.flush ();
      st.active <- prev_active;
      st.on <- prev_on)
    f

let with_span name f =
  let st = Domain.DLS.get state_key in
  if not st.on then f ()
  else begin
    let d = st.depth in
    st.depth <- d + 1;
    let t0 = Clock.now () in
    let finish () =
      let dur = Clock.now () -. t0 in
      st.depth <- d;
      st.active.on_event { name; ts = t0; dur; depth = d }
    in
    match f () with
    | x ->
      finish ();
      x
    | exception e ->
      finish ();
      raise e
  end

let buffered f =
  let sink, events = collect () in
  let v = with_sink sink f in
  (v, events ())

let replay events =
  let st = Domain.DLS.get state_key in
  if st.on then
    List.iter
      (fun (e : event) ->
        st.active.on_event { e with depth = e.depth + st.depth })
      events
