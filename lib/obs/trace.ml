type event = { name : string; ts : float; dur : float; depth : int }

type sink = { on_event : event -> unit; flush : unit -> unit }

let null = { on_event = ignore; flush = ignore }

let make_sink ~on_event ~flush = { on_event; flush }

let tee a b =
  {
    on_event =
      (fun e ->
        a.on_event e;
        b.on_event e);
    flush =
      (fun () ->
        a.flush ();
        b.flush ());
  }

let collect () =
  let events = ref [] in
  ( { on_event = (fun e -> events := e :: !events); flush = ignore },
    fun () -> List.rev !events )

let event_json e =
  Json.Obj
    [
      ("type", Json.Str "span");
      ("name", Json.Str e.name);
      ("ts", Json.Num e.ts);
      ("dur", Json.Num e.dur);
      ("depth", Json.num_int e.depth);
    ]

let jsonl oc =
  {
    on_event =
      (fun e ->
        output_string oc (Json.to_string (event_json e));
        output_char oc '\n');
    flush = (fun () -> flush oc);
  }

let chrome oc =
  let first = ref true in
  output_string oc "[";
  {
    on_event =
      (fun e ->
        if !first then first := false else output_string oc ",";
        (* ts/dur in microseconds, per the trace_event format *)
        Printf.fprintf oc
          "\n\
           {\"name\":%s,\"cat\":\"cpr\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":1}"
          (Json.to_string (Json.Str e.name))
          (e.ts *. 1e6) (e.dur *. 1e6));
    flush =
      (fun () ->
        output_string oc "\n]\n";
        flush oc);
  }

(* [on] mirrors "a non-null sink is installed" so the disabled check on
   the hot path is one immediate load, no physical comparison *)
let active = ref null
let on = ref false

let set_sink s =
  active := s;
  on := s != null

let clear_sink () =
  active := null;
  on := false

let enabled () = !on

let with_sink s f =
  let prev_active = !active and prev_on = !on in
  set_sink s;
  Fun.protect
    ~finally:(fun () ->
      s.flush ();
      active := prev_active;
      on := prev_on)
    f

let depth = ref 0

let with_span name f =
  if not !on then f ()
  else begin
    let d = !depth in
    depth := d + 1;
    let t0 = Clock.now () in
    let finish () =
      let dur = Clock.now () -. t0 in
      depth := d;
      !active.on_event { name; ts = t0; dur; depth = d }
    in
    match f () with
    | x ->
      finish ();
      x
    | exception e ->
      finish ();
      raise e
  end
