(** Hierarchical tracing spans with pluggable sinks.

    A span is a named region of execution ([run] > [panel] >
    [LR-iteration]); names are static strings so the disabled path
    stays allocation-free.  With no sink installed, {!with_span} is a
    single flag test around the thunk — instrumentation can live on
    the hottest loops.  With a sink, each completed span is delivered
    as an {!event} carrying its start time, duration (from
    {!Clock.now}) and nesting depth.  Events arrive in completion
    order, i.e. children before their parent. *)

type event = {
  name : string;
  ts : float;  (** start, seconds on the {!Clock} timeline *)
  dur : float;  (** seconds *)
  depth : int;  (** 0 = root span *)
}

type sink

val null : sink
(** Drops everything; the default. *)

val make_sink : on_event:(event -> unit) -> flush:(unit -> unit) -> sink

val tee : sink -> sink -> sink
(** Deliver to both (events and flushes). *)

val collect : unit -> sink * (unit -> event list)
(** In-memory sink for tests; the thunk returns events delivered so
    far, oldest first. *)

val jsonl : out_channel -> sink
(** One [{"type":"span","name":...,"ts":...,"dur":...,"depth":...}]
    JSON object per line; [flush] flushes the channel (the caller
    closes it). *)

val chrome : out_channel -> sink
(** Chrome [trace_event] JSON array of complete ("ph":"X") events,
    loadable in about:tracing / Perfetto; [flush] writes the closing
    bracket, so flush exactly once before closing the channel. *)

val set_sink : sink -> unit
val clear_sink : unit -> unit
(** Back to {!null}. *)

val enabled : unit -> bool

val with_sink : sink -> (unit -> 'a) -> 'a
(** Install for the duration of the thunk, then flush the sink and
    restore the previous one (also on exceptions). *)

val with_span : string -> (unit -> 'a) -> 'a
(** Run the thunk inside a span.  Exceptions still finish (and emit)
    the span, then propagate. *)
