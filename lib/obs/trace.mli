(** Hierarchical tracing spans with pluggable sinks.

    A span is a named region of execution ([run] > [panel] >
    [LR-iteration]); names are static strings so the disabled path
    stays allocation-free.  With no sink installed, {!with_span} is a
    single flag test around the thunk — instrumentation can live on
    the hottest loops.  With a sink, each completed span is delivered
    as an {!event} carrying its start time, duration (from
    {!Clock.now}) and nesting depth.  Events arrive in completion
    order, i.e. children before their parent.

    The installed sink and the nesting depth are {e domain-local}: a
    freshly spawned worker domain is silent even while the main domain
    traces, so spans on parallel code never race on a shared channel.
    A worker that should be heard runs its task under {!buffered}; the
    caller delivers the collected events with {!replay} at join, which
    keeps multi-domain runs deterministic and sinks single-writer. *)

type event = {
  name : string;
  ts : float;  (** start, seconds on the {!Clock} timeline *)
  dur : float;  (** seconds *)
  depth : int;  (** 0 = root span *)
}

type sink
(** A consumer of completed spans. *)

val null : sink
(** Drops everything; the default. *)

val make_sink : on_event:(event -> unit) -> flush:(unit -> unit) -> sink
(** Build a sink from callbacks; [flush] is called when the sink is
    uninstalled (see {!with_sink}). *)

val tee : sink -> sink -> sink
(** Deliver to both (events and flushes). *)

val collect : unit -> sink * (unit -> event list)
(** In-memory sink for tests; the thunk returns events delivered so
    far, oldest first. *)

val jsonl : out_channel -> sink
(** One [{"type":"span","name":...,"ts":...,"dur":...,"depth":...}]
    JSON object per line; [flush] flushes the channel (the caller
    closes it). *)

val chrome : out_channel -> sink
(** Chrome [trace_event] JSON array of complete ("ph":"X") events,
    loadable in about:tracing / Perfetto; [flush] writes the closing
    bracket, so flush exactly once before closing the channel. *)

val set_sink : sink -> unit
(** Install a sink on the calling domain (replacing the current one). *)

val clear_sink : unit -> unit
(** Back to {!null}. *)

val enabled : unit -> bool
(** Whether a non-null sink is installed on the calling domain. *)

val with_sink : sink -> (unit -> 'a) -> 'a
(** Install for the duration of the thunk, then flush the sink and
    restore the previous one (also on exceptions). *)

val with_span : string -> (unit -> 'a) -> 'a
(** Run the thunk inside a span.  Exceptions still finish (and emit)
    the span, then propagate. *)

val buffered : (unit -> 'a) -> 'a * event list
(** [buffered f] runs [f] with this domain's spans collected in memory
    (the previous sink is restored afterwards) and returns the events,
    oldest first, with depths relative to [f]'s own root.  This is the
    worker-domain half of tracing under a pool; on an exception the
    events are dropped and the exception propagates. *)

val replay : event list -> unit
(** Deliver previously {!buffered} events to the currently installed
    sink, shifting their depths under the caller's open spans; a no-op
    when tracing is disabled.  Call at task join, in merge order. *)
