(** The paper's evaluation metrics (Sec. 5):

    - "Rout." — routed (clean) nets over total nets;
    - "Via#"  — total vias of routed nets (V1 + V2);
    - "WL"    — grid wirelength of routed nets plus half-perimeter
      wirelength of unrouted nets;
    - "cpu(s)" — flow runtime. *)

type summary = {
  name : string;
  total_nets : int;
  routed_nets : int;
  routability : float;  (** in percent *)
  via_count : int;
  wirelength : int;
  cpu : float;
  initial_congestion : int;
  violations : int;
  degraded_panels : int;
      (** panels whose pin access fell back below the requested solver
          or was cut short by the budget; 0 for flows without PAO *)
}

val hpwl : Netlist.Design.t -> Netlist.Net.id -> int

val degraded_panels : Router.Flow.t -> int
(** Count of degraded PAO panel reports in the flow (0 without PAO). *)

val of_flow : ?name:string -> Router.Flow.t -> summary

val ratio : summary -> reference:summary -> float * float * float * float
(** [(rout, via, wl, cpu)] of [summary] over [reference] (the paper's
    "Ratio" row; routability as a plain quotient of percentages). *)
