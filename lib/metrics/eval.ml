type summary = {
  name : string;
  total_nets : int;
  routed_nets : int;
  routability : float;
  via_count : int;
  wirelength : int;
  cpu : float;
  initial_congestion : int;
  violations : int;
  degraded_panels : int;
}

let hpwl design net = Geometry.Rect.half_perimeter (Netlist.Design.net_bbox design net)

let degraded_panels (flow : Router.Flow.t) =
  match flow.Router.Flow.pao with
  | None -> 0
  | Some pao ->
    List.length
      (List.filter
         (fun (r : Pinaccess.Pin_access.panel_report) -> r.degraded)
         pao.Pinaccess.Pin_access.reports)

let of_flow ?name (flow : Router.Flow.t) =
  let design = flow.Router.Flow.design in
  let space = Rgrid.Node.space_of_design design in
  let total_nets = Array.length (Netlist.Design.nets design) in
  let routed = ref 0 and vias = ref 0 and wl = ref 0 in
  Array.iteri
    (fun net clean ->
      if clean then begin
        incr routed;
        match flow.Router.Flow.routes.(net) with
        | Some r ->
          vias := !vias + Rgrid.Route.via_count ~space r;
          wl := !wl + Rgrid.Route.wirelength ~space r
        | None -> assert false
      end
      else wl := !wl + hpwl design net)
    flow.Router.Flow.clean;
  (* Table 2's "Via#": total vias for all nets, estimated through the
     vias-per-routed-net rate (paper Sec. 5) *)
  let via_estimate =
    if !routed = 0 then 0
    else
      int_of_float
        (Float.round
           (float_of_int !vias *. float_of_int total_nets
           /. float_of_int !routed))
  in
  {
    name = Option.value ~default:(Netlist.Design.name design) name;
    total_nets;
    routed_nets = !routed;
    routability = 100.0 *. float_of_int !routed /. float_of_int total_nets;
    via_count = via_estimate;
    wirelength = !wl;
    cpu = flow.Router.Flow.elapsed;
    initial_congestion = flow.Router.Flow.initial_congestion;
    violations = List.length flow.Router.Flow.violations;
    degraded_panels = degraded_panels flow;
  }

let ratio s ~reference =
  let f a b = if b = 0.0 then nan else a /. b in
  ( f s.routability reference.routability,
    f (float_of_int s.via_count) (float_of_int reference.via_count),
    f (float_of_int s.wirelength) (float_of_int reference.wirelength),
    f s.cpu reference.cpu )
