(** A fully assembled weighted interval assignment instance: the
    intervals, the per-pin candidate sets [S_j], the conflict cliques
    [C_m] and the objective coefficients of Formula (1). *)

type t = {
  design : Netlist.Design.t;
  config : Interval_gen.config;
  intervals : Access_interval.t array;
  pin_ids : Netlist.Pin.id array;  (** pins covered, ascending *)
  pin_slot : (Netlist.Pin.id, int) Hashtbl.t;
  pin_candidates : int array array;
      (** [S_j] per pin slot: interval ids, each serving that pin *)
  cliques : Conflict.clique array;
  profits : float array;  (** objective coefficient per interval *)
  mutable clique_index : int list array option;
      (** lazy interval -> clique-indices map; use
          [cliques_of_interval] *)
}

val of_intervals :
  Interval_gen.config -> Netlist.Design.t -> Access_interval.t array -> t
(** Assemble an instance from pre-generated intervals (the ids must be
    dense); used to re-derive conflict sets under a different clearance
    without regenerating intervals. *)

val build_panel : Interval_gen.config -> Netlist.Design.t -> panel:int -> t
(** Instance for one routing panel. *)

val build_panels : Interval_gen.config -> Netlist.Design.t -> panels:int list -> t
(** Combined instance over several panels (the paper's "multiple panels
    simultaneously" mode, used for the Fig. 6 scalability sweep).
    Interval ids are re-densified across panels. *)

val num_pins : t -> int
val num_intervals : t -> int
val num_cliques : t -> int

val slot_of_pin : t -> Netlist.Pin.id -> int

val minimum_interval : t -> slot:int -> int
(** Id of the pin's primary-track minimum interval (exists by
    construction).
    @raise Cpr_error.Error ([Infeasible_panel]) when absent. *)

val minimum_intervals : t -> slot:int -> int list
(** All of the pin's minimum intervals (one per free track), primary
    track first. *)

val cliques_of_interval : t -> int -> int list
(** Indices into [cliques] of the conflict sets containing the
    interval (computed lazily, then cached). *)

val summary : t -> string
