module I = Geometry.Interval
module Pin = Netlist.Pin
module Design = Netlist.Design

type config = {
  weighting : Objective.weighting;
  m2_bbox_margin : int option;
  max_per_pin : int;
  clearance : int;
  min_window : int option;
  tpl : Solver.Color_graph.params option;
}

let default_config =
  {
    weighting = Objective.default;
    m2_bbox_margin = None;
    max_per_pin = 64;
    clearance = 2;
    min_window = None;
    tpl = None;
  }

exception Pin_unreachable of Netlist.Pin.id

let m_intervals_per_pin = Obs.Metrics.histogram "pao.intervals_per_pin"

(* Horizontal extent that bounds interval generation for a pin: the net
   bounding box (paper default), or the estimated M2 box of footnote 1. *)
let gen_bounds config design (p : Pin.t) =
  let die_x = Geometry.Rect.xs (Design.die design) in
  let net_x = Geometry.Rect.xs (Design.net_bbox design p.net) in
  let base =
    match config.m2_bbox_margin with
    | None -> net_x
    | Some k ->
      let est = I.make ~lo:(p.x - k) ~hi:(p.x + k) in
      (match I.clamp est ~within:die_x with
      | Some est ->
        (* never smaller than the pin column itself *)
        I.hull (I.point p.x) (match I.intersect est net_x with
          | Some both -> both
          | None -> I.point p.x)
      | None -> I.point p.x)
  in
  (* the library checker's access window: a single-pin net has a
     degenerate bounding box (the pin column), so candidates are grown
     to at least the window the router could approach from *)
  match config.min_window with
  | None -> base
  | Some w ->
    (match I.clamp (I.make ~lo:(p.x - w) ~hi:(p.x + w)) ~within:die_x with
    | Some want -> I.hull base want
    | None -> base)

(* Maximal blockage-free column range around [p.x] on [track], clipped
   to [bounds]; [None] when the pin column itself is blocked. *)
let free_range design ~track ~bounds (p : Pin.t) =
  let spans = Design.m2_blockages_on_track design track in
  if List.exists (fun s -> I.contains s p.x) spans then None
  else begin
    let lo = ref (I.lo bounds) and hi = ref (I.hi bounds) in
    List.iter
      (fun s ->
        if I.hi s < p.x then lo := max !lo (I.hi s + 1)
        else if I.lo s > p.x then hi := min !hi (I.lo s - 1))
      spans;
    Some (I.make ~lo:(min !lo p.x) ~hi:(max !hi p.x))
  end

let dedupe_ints xs = List.sort_uniq Int.compare xs

(* Same-net pins on [track] whose column lies in [span] — the pins a
   candidate interval serves. *)
let pins_served design ~track ~span (p : Pin.t) =
  Design.pins_on_track design track
  |> List.filter (fun (q : Pin.t) -> q.net = p.net && I.contains span q.x)
  |> List.map (fun (q : Pin.t) -> q.id)

let generate_pin config design (p : Pin.t) =
  let bounds = gen_bounds config design p in
  let primary = Pin.primary_track p in
  let candidates_on_track track =
    match free_range design ~track ~bounds p with
    | None -> if track = primary then raise (Pin_unreachable p.id) else []
    | Some range ->
      let diff_net =
        Design.pins_on_track design track
        |> List.filter (fun (q : Pin.t) ->
               q.net <> p.net && I.contains range q.x)
      in
      let lefts =
        I.lo range
        :: List.filter_map
             (fun (q : Pin.t) -> if q.x < p.x then Some (q.x + 1) else None)
             diff_net
        |> dedupe_ints
      in
      let rights =
        I.hi range
        :: List.filter_map
             (fun (q : Pin.t) -> if q.x > p.x then Some (q.x - 1) else None)
             diff_net
        |> dedupe_ints
      in
      let combos =
        List.concat_map
          (fun l ->
            List.filter_map
              (fun r -> if l <= r then Some (I.make ~lo:l ~hi:r) else None)
              rights)
          lefts
      in
      let keep =
        if List.length combos <= config.max_per_pin then combos
        else
          combos
          |> List.sort (fun a b -> Int.compare (I.length b) (I.length a))
          |> List.filteri (fun i _ -> i < config.max_per_pin)
      in
      List.map
        (fun span ->
          (pins_served design ~track ~span p, track, span, Access_interval.Regular))
        keep
  in
  let tracks = List.init (I.length p.tracks) (fun i -> I.lo p.tracks + i) in
  let regular = List.concat_map candidates_on_track tracks in
  (* a minimum interval on every free track of the pin (the smallest
     strip covering it); the primary one exists or candidates_on_track
     raised [Pin_unreachable] *)
  let minimums =
    List.filter_map
      (fun track ->
        match free_range design ~track ~bounds p with
        | Some _ -> Some ([ p.id ], track, I.point p.x, Access_interval.Minimum)
        | None -> None)
      tracks
  in
  let candidates = minimums @ regular in
  Obs.Metrics.observe m_intervals_per_pin
    (float_of_int (List.length candidates));
  candidates

let generate_panel config design ~panel =
  Obs.Trace.with_span "pao.intervals" @@ fun () ->
  let pins = Design.pins_of_panel design panel in
  let table : (int * int * int * int, Netlist.Pin.id list * Access_interval.kind) Hashtbl.t =
    Hashtbl.create 256
  in
  let order = ref [] in
  List.iter
    (fun (p : Pin.t) ->
      List.iter
        (fun (served, track, span, kind) ->
          let key = (p.net, track, I.lo span, I.hi span) in
          match Hashtbl.find_opt table key with
          | None ->
            Hashtbl.add table key (served, kind);
            order := key :: !order
          | Some (served0, kind0) ->
            let merged =
              List.sort_uniq Int.compare (List.rev_append served served0)
            in
            let kind =
              match kind0, kind with
              | Access_interval.Minimum, _ | _, Access_interval.Minimum ->
                Access_interval.Minimum
              | Access_interval.Regular, Access_interval.Regular ->
                Access_interval.Regular
            in
            Hashtbl.replace table key (merged, kind))
        (generate_pin config design p))
    pins;
  let keys =
    List.sort
      (fun (n1, t1, l1, h1) (n2, t2, l2, h2) ->
        let c = Int.compare t1 t2 in
        if c <> 0 then c
        else
          let c = Int.compare l1 l2 in
          if c <> 0 then c
          else
            let c = Int.compare h1 h2 in
            if c <> 0 then c else Int.compare n1 n2)
      !order
  in
  Array.of_list
    (List.mapi
       (fun id ((net, track, lo, hi) as key) ->
         let pins, kind = Hashtbl.find table key in
         Access_interval.make ~id ~net ~pins ~track
           ~span:(I.make ~lo ~hi) ~kind)
       keys)
