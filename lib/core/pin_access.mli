(** Top-level concurrent pin access optimization: panel-by-panel (the
    paper's production mode) or over a combined multi-panel instance
    (the Fig. 6 scalability mode).

    Every entry point runs a per-panel degradation ladder under the
    optional {!Budget}: the requested solver first (ILP or LR), then —
    on a typed solver failure, an injected fault or budget pressure —
    the next tier down, ending at the shrink-to-minimum assignment that
    Theorem 1 guarantees feasible.  The serving tier and a [degraded]
    flag are recorded per panel, so callers always get a validated
    assignment within the budget plus an honest account of how it was
    obtained. *)

type solver_kind = Ilp | Lr

type tier =
  | Tier_ilp  (** exact branch-and-bound *)
  | Tier_lr  (** Lagrangian relaxation *)
  | Tier_minimum  (** shrink-to-minimum fallback (paper Sec. 3.1) *)

type config = {
  gen : Interval_gen.config;
  lr : Lagrangian.config;
  ilp_warm_start : bool;
      (** seed the ILP incumbent with the LR solution *)
}

val default_config : config

type panel_report = {
  panel : int;
  pins : int;
  intervals : int;
  cliques : int;
  objective : float;
  lr_iterations : int;  (** 0 for the pure-ILP and minimum paths *)
  proven_optimal : bool;
      (** the serving tier ran to its own completion (ILP: optimality
          proved; LR: converged/plateaued before any budget expiry) *)
  served_by : tier;  (** which rung of the ladder produced the panel *)
  degraded : bool;
      (** the panel was not served by the requested solver running to
          completion — a lower tier answered or the budget cut in *)
}

type tpl_coloring = {
  tpl_params : Solver.Color_graph.params;  (** the deck that was on *)
  features : (int * int * int * int) array;
      (** distinct selected intervals as [(track, lo, hi, net)],
          canonically sorted — the coloring's input, independent of
          panel solve order (so independent of [j]) *)
  colors : Solver.Color_graph.assignment array;
      (** one assignment per feature, same indexing *)
  tpl_stitches : int;  (** features colored via a stitch *)
  tpl_residual : int;
      (** features left [Uncolored] — an honest residual, reported like
          [degraded] rather than hidden *)
}
(** Result of the global TPL coloring pass run after the panel merge
    when the [tpl] deck of {!Interval_gen.config} is on. *)

type t = {
  design : Netlist.Design.t;
  kind : solver_kind;  (** the *requested* solver *)
  assignments : (Netlist.Pin.id * Access_interval.t) list;
      (** conflict-free: one interval per pin of the design *)
  objective : float;  (** summed over panels *)
  reports : panel_report list;
  degraded : bool;  (** any panel degraded *)
  elapsed : float;  (** wall-clock seconds *)
  tpl : tpl_coloring option;
      (** [Some] iff the TPL deck was on in [config.gen.tpl] *)
}

type tune_hook = {
  tune_select : panel:int -> Problem.t -> config -> config * string;
      (** per-panel policy choice: given the built problem and the
          run's base config, return the config this panel solves under
          plus the canonical policy id for the trace.  Called in
          ascending panel order within each scheduling wave. *)
  tune_observe :
    panel:int ->
    policy:string ->
    objective:float ->
    delta:Obs.Metrics.snapshot ->
    unit;
      (** reward feedback: the panel's solved objective and its private
          metrics window ({!Obs.Metrics.diff} over exactly the solve,
          e.g. [lr.iterations]).  Called in ascending panel order after
          the panel's wave completes. *)
}
(** The adaptive-scheduling hook ([lib/tune]): a policy selector plus a
    reward observer, threaded through {!optimize}'s per-panel walk.
    Panels are processed in fixed-size waves — selections of one wave
    see the observations of every earlier wave but never an in-flight
    solve — so the policy trace and the output are deterministic and
    independent of [j]. *)

val optimize :
  ?config:config ->
  ?budget:Budget.t ->
  ?j:int ->
  ?stream:bool ->
  ?tune:tune_hook ->
  kind:solver_kind ->
  Netlist.Design.t ->
  t
(** Solve every panel of the design independently.  Each panel gets an
    equal slice of the remaining budget; once the budget is exhausted,
    remaining panels are served directly by the minimum tier so the
    call still returns promptly with a feasible result.

    [j] (default 1) is the number of domains panels are fanned out
    over, the paper's production-mode concurrency ([j > 1] reuses the
    process-wide {!Exec.shared} work-stealing pool — no domain spawns
    per call).  Per-panel results, metrics and spans are merged back
    in panel order, so without a budget [~j:n] returns bit-identical
    assignments, reports and objective to [~j:1] for any [n].  Under a
    finite budget the slicing differs slightly: the sequential walk
    re-slices the remainder before each panel, while the parallel
    fan-out hands every panel an equal {!Budget.isolated} slice up
    front (a domain cannot observe what another has spent mid-flight),
    reconciling the parent's work counter at join.

    [stream] (default false) builds each panel's problem at the moment
    it is solved instead of materializing every problem up front — the
    memory contract large ([mega]-tier) designs need, since panel
    problems are the dominant resident structure.  Bit-identical to
    the resident path with an unlimited budget at any [j]; under a
    finite budget the per-panel slice denominator is the total panel
    count rather than the live (pin-bearing) count, since liveness is
    only discovered as panels are built.

    [tune] (default absent) threads a {!tune_hook} through the
    per-panel walk: panels run in fixed-size waves, each panel solving
    under the config its selector returned, with per-panel metric
    windows observed back in panel order.  Absent, the walk is the
    untouched (bit-identical) default path; [tune] forces the resident
    path even when [stream] is set and re-slices the budget at wave
    boundaries, so pair it with [stream]/finite budgets knowingly.
    @raise Cpr_error.Error ([Infeasible_panel]) when a pin has no
    access interval at all (blocked primary track) — no tier can serve
    such a design. *)

val optimize_combined :
  ?config:config ->
  ?budget:Budget.t ->
  kind:solver_kind ->
  Netlist.Design.t ->
  panels:int list ->
  t
(** Solve the given panels as a single instance (used by the Fig. 6
    sweep, where instance size is the experiment variable). *)

val build_panel : config -> Netlist.Design.t -> panel:int -> Problem.t
(** Build one panel's assignment problem (interval generation + conflict
    sweep) exactly as [optimize] does internally.
    @raise Cpr_error.Error ([Infeasible_panel]) when a pin of the panel
    has no access interval at all (blocked primary track). *)

val solve_panel :
  ?config:config ->
  ?budget:Budget.t ->
  ?warm_start:float array ->
  kind:solver_kind ->
  panel:int ->
  Problem.t ->
  (Netlist.Pin.id * Access_interval.t) list * float * panel_report * float array
(** Run the degradation ladder on one already-built problem, returning
    [(assignments, objective, report, multipliers)].  With
    [warm_start:None] this is exactly the per-panel step of {!optimize}
    (bit-identical output); [warm_start] seeds the LR tier's multiplier
    vector (one entry per [Problem.cliques] clique) from a previous
    solve, typically re-converging in far fewer iterations.
    [multipliers] is the LR tier's final vector ([[||]] when another
    tier served the panel).  The single-panel entry point of the
    incremental engine ([Eco.Engine]). *)

val color_assignments :
  Solver.Color_graph.params ->
  (Netlist.Pin.id * Access_interval.t) list ->
  tpl_coloring
(** The global TPL coloring pass on a merged assignment list: dedupe to
    distinct [(track, lo, hi, net)] features, canonically sort, run the
    deterministic greedy coloring of {!Solver.Color_graph.color}.
    Exactly what {!optimize} runs when the deck is on; exported so
    incremental callers ({!Eco.Engine}) recolor their merged
    assignments in lockstep with the from-scratch path. *)

val panel_budget : Budget.t -> panels_left:int -> Budget.t
(** The per-panel slice [optimize]'s sequential walk hands each
    remaining panel: an equal share of the remaining deadline and work
    allowance (the budget itself when unlimited).  Exported so
    incremental callers ({!Eco.Engine}) slice budgets in lockstep with
    the from-scratch walk. *)

val interval_of_pin : t -> Netlist.Pin.id -> Access_interval.t option

val validate : ?complete:bool -> t -> unit
(** Re-checks the global invariants: the interval of each assignment
    serves its pin, no pin is assigned twice, and no two assigned
    intervals of different nets overlap.  With [complete] (default)
    additionally every pin of the design must be assigned — pass
    [~complete:false] for [optimize_combined] over a panel subset.
    @raise Cpr_error.Error ([Solver_failure]) on violation. *)

val solver_kind_to_string : solver_kind -> string
val tier_to_string : tier -> string
val tier_of_kind : solver_kind -> tier
