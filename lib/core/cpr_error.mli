(** Typed error layer for the whole solve pipeline.

    Every failure mode a caller can act on is one of these four
    constructors; entry points raise [Error] (or return best-so-far
    results) instead of bare [Failure]/[Invalid_argument], so a CLI or
    a service wrapper can always render a clean message and pick the
    right fallback. *)

type t =
  | Malformed_design of { line : int option; reason : string }
      (** invalid input (bad file, inconsistent geometry) *)
  | Budget_exhausted of { stage : string; elapsed : float }
      (** a {!Budget} expired in a stage with no best-so-far answer *)
  | Solver_failure of { solver : string; reason : string }
      (** a solver tier produced no usable result *)
  | Infeasible_panel of { panel : int option; reason : string }
      (** the instance violates the paper's feasibility precondition
          (Theorem 1), e.g. a pin column fully covered by blockages *)

exception Error of t

val to_string : t -> string

val error : t -> 'a
(** [error e] raises [Error e]. *)

val malformed : ?line:int -> ('a, unit, string, 'b) format4 -> 'a
val solver_failure : solver:string -> ('a, unit, string, 'b) format4 -> 'a
val infeasible : ?panel:int -> ('a, unit, string, 'b) format4 -> 'a

val of_exn : exn -> t option
(** Map this project's typed exceptions ([Error], {!Netlist.Design_io.Malformed},
    {!Netlist.Design.Invalid}, {!Interval_gen.Pin_unreachable},
    {!Solver.Milp.Infeasible}) to a {!t}; [None] for anything else. *)

val protect : (unit -> 'a) -> ('a, t) result
(** Run a thunk, catching exactly the exceptions {!of_exn} understands;
    unknown exceptions (genuine bugs) re-raise. *)

val recoverable : exn -> bool
(** Whether the degradation ladder may absorb this exception and fall
    back to the next solver tier.  Typed pipeline errors and classic
    OCaml failure exceptions are recoverable; asynchronous/fatal ones
    ([Out_of_memory], [Stack_overflow], ...) are not. *)
