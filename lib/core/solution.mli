(** A (possibly infeasible) assignment of one interval per pin, shared
    by the ILP and Lagrangian solvers. *)

type t = {
  problem : Problem.t;
  assignment : int array;  (** per pin slot: selected interval id *)
}

val make : Problem.t -> assignment:int array -> t
(** Checks that every slot's interval actually serves the pin.
    @raise Cpr_error.Error ([Solver_failure]) otherwise. *)

val of_chosen : Problem.t -> chosen:bool array -> t
(** Reconstruct the per-pin assignment from a chosen-interval
    indicator (the ILP solution vector).  Each pin must be served by
    exactly one chosen interval.
    @raise Cpr_error.Error ([Solver_failure]) otherwise. *)

val chosen : t -> bool array
(** Indicator over intervals: selected by at least one pin. *)

val objective : t -> float
(** Formula (1a): profit of every *distinct* chosen interval, already
    weighted by the number of pins it serves. *)

val violated_cliques : t -> Conflict.clique list
(** Cliques with more than one distinct chosen interval. *)

val num_violations : t -> int
val is_conflict_free : t -> bool

val balance : t -> float
(** Min/mean selected-interval length ratio in [0,1]; 1 is perfectly
    balanced.  Used to compare the sqrt and linear objectives. *)

val total_length : t -> int
(** Total length of distinct chosen intervals. *)

val interval_of_pin : t -> Netlist.Pin.id -> Access_interval.t
