(** Solve budgets: a wall-clock deadline plus a work-unit allowance,
    threaded through every solver and the router so each entry point
    returns its best-so-far state on expiry instead of running
    open-loop.

    Work units are solver-specific steps (LR iterations, ILP
    branch-and-bound nodes, maze expansions); they make budget expiry
    deterministic in tests, while the deadline bounds real time.  A
    budget is mutable: [spend]/[exhausted] observe shared state, so one
    budget value handed to several pipeline stages meters them
    jointly.  Sub-budgets ({!sub}) share the parent's work counter but
    may carry a tighter deadline/allowance — used to give each panel
    its slice of the whole run's budget. *)

type t

val unlimited : unit -> t
(** Never exhausted (but still meters work spent). *)

val start : ?seconds:float -> ?work_units:int -> unit -> t
(** A budget expiring [seconds] from now and/or after [work_units]
    units of work; omitted dimensions are unlimited. *)

val sub : t -> ?seconds:float -> ?work_units:int -> unit -> t
(** A child budget at most as permissive as [t]: deadline is the
    earlier of the parent's and [now + seconds], the work allowance the
    smaller of the parent's remainder and [work_units].  Work spent on
    the child counts against the parent. *)

val isolated : t -> ?seconds:float -> ?work_units:int -> unit -> t
(** Like {!sub}, but with a {e private} work counter starting at zero:
    the child inherits the parent's deadline (possibly tightened) and
    at most the parent's remaining work allowance, and can safely be
    handed to another domain — parent and child never share mutable
    state.  The parent does not see the child's spending until the
    caller reconciles at join with [spend parent (work_spent child)]. *)

val is_unlimited : t -> bool

val spend : t -> int -> unit
(** Record completed work units. *)

val work_spent : t -> int
val elapsed : t -> float
(** Seconds since the budget was created. *)

val exhausted : t -> bool
(** Deadline passed or allowance spent — callers should wrap up with
    their best-so-far result. *)

val remaining_seconds : t -> float option
(** [None] when there is no deadline; clamped at 0. *)

val remaining_work : t -> int option
(** [None] when there is no work limit; clamped at 0. *)

val check : t -> stage:string -> unit
(** @raise Cpr_error.Error with [Budget_exhausted] when {!exhausted} —
    for stages that have no best-so-far state to return. *)

val of_option : t option -> t
(** [of_option None] is {!unlimited}. *)
