let now () = Obs.Clock.now ()
let time f = Obs.Clock.time f
