let m_shrinks = Obs.Metrics.counter "refine.shrinks"

let remove_conflicts ?gains (sol : Solution.t) =
  Obs.Trace.with_span "pao.refine" @@ fun () ->
  let problem = sol.Solution.problem in
  let gains = Option.value ~default:problem.Problem.profits gains in
  let assignment = Array.copy sol.Solution.assignment in
  let shrinks = ref 0 in
  (* how much selecting [candidate] would overflow its cliques: for
     each clique through the candidate, the members beyond capacity
     once the candidate joins the already-selected ones.  With every
     cap at 1 this is exactly the old "selected members sharing a
     clique" count. *)
  let conflict_count candidate ~slot =
    let selected = Hashtbl.create 8 in
    Array.iteri
      (fun s id -> if s <> slot then Hashtbl.replace selected id ())
      assignment;
    List.fold_left
      (fun acc m ->
        let clique = problem.Problem.cliques.(m) in
        let others =
          Array.fold_left
            (fun acc member ->
              if member <> candidate && Hashtbl.mem selected member then
                acc + 1
              else acc)
            0 clique.Conflict.members
        in
        acc + max 0 (others + 1 - clique.Conflict.cap))
      0
      (Problem.cliques_of_interval problem candidate)
  in
  (* shrink to the pin's least-conflicting minimum (the primary-track
     minimum on ties), so repairs spread across the pin's tracks rather
     than pile onto one *)
  let shrink_pin slot =
    let candidates = Problem.minimum_intervals problem ~slot in
    let best =
      List.fold_left
        (fun best id ->
          let c = conflict_count id ~slot in
          match best with
          | Some (_, bc) when bc <= c -> best
          | Some _ | None -> Some (id, c))
        None candidates
    in
    match best with
    | Some (min_id, _) when assignment.(slot) <> min_id ->
      assignment.(slot) <- min_id;
      incr shrinks;
      true
    | Some _ | None -> false
  in
  (* Each sweep shrinks the non-minimum members of every violated
     clique; a clique whose selected members are all minimums cannot be
     repaired by shrinking (a design-rule-clearance residual) and is
     left for the router's DRC accounting.  Every sweep with progress
     strictly reduces the number of non-minimum selections, so at most
     [num_pins] sweeps run. *)
  let progress = ref true in
  while !progress do
    progress := false;
    let current = Solution.make problem ~assignment in
    let violated = Solution.violated_cliques current in
    List.iter
      (fun (clique : Conflict.clique) ->
        (* recompute against the evolving assignment *)
        let live = Hashtbl.create 8 in
        Array.iter (fun id -> Hashtbl.replace live id ()) clique.Conflict.members;
        let selected =
          Array.to_list assignment
          |> List.filter (fun id -> Hashtbl.mem live id)
          |> List.sort_uniq Int.compare
        in
        if List.length selected > clique.Conflict.cap then begin
          let is_min id =
            Access_interval.is_minimum problem.Problem.intervals.(id)
          in
          let minimums = List.filter is_min selected in
          (* up to [cap] members stay selected: minimum intervals
             cannot shrink so they claim keep slots first; remaining
             slots go to the highest-gain members (stable sort keeps
             the earliest id on gain ties, matching the cap = 1
             fold) *)
          let keep =
            let others =
              List.filter (fun id -> not (is_min id)) selected
              |> List.stable_sort (fun a b ->
                     Float.compare gains.(b) gains.(a))
            in
            List.filteri
              (fun i _ -> i < clique.Conflict.cap)
              (minimums @ others)
          in
          List.iter
            (fun id ->
              if (not (List.mem id keep)) && not (is_min id) then
                List.iter
                  (fun pid ->
                    let slot = Problem.slot_of_pin problem pid in
                    if assignment.(slot) = id && shrink_pin slot then
                      progress := true)
                  problem.Problem.intervals.(id).Access_interval.pins)
            selected
        end)
      violated
  done;
  (* Residual repair: cliques that shrinking could not fix (their
     members are all minimums) sometimes dissolve by moving one of the
     involved pins to a *different* candidate with no conflict at all
     against the current selection. *)
  let conflict_free candidate ~slot = conflict_count candidate ~slot = 0 in
  let repair_pass () =
    let current = Solution.make problem ~assignment in
    let repaired = ref false in
    List.iter
      (fun (clique : Conflict.clique) ->
        let selected_members =
          Array.to_list clique.Conflict.members
          |> List.filter (fun id -> Array.exists (fun a -> a = id) assignment)
        in
        if List.length selected_members > clique.Conflict.cap then
          List.iter
            (fun id ->
              List.iter
                (fun pid ->
                  let slot = Problem.slot_of_pin problem pid in
                  if
                    assignment.(slot) = id
                    && problem.Problem.intervals.(id).Access_interval.pins
                       = [ pid ]
                    && not (conflict_free id ~slot)
                  then begin
                    let candidates =
                      Array.to_list problem.Problem.pin_candidates.(slot)
                      |> List.filter (fun c ->
                             c <> id
                             && List.length
                                  problem.Problem.intervals.(c)
                                    .Access_interval.pins
                                = 1)
                      |> List.sort (fun a b ->
                             Float.compare problem.Problem.profits.(b)
                               problem.Problem.profits.(a))
                    in
                    match
                      List.find_opt (fun c -> conflict_free c ~slot) candidates
                    with
                    | Some c ->
                      assignment.(slot) <- c;
                      repaired := true
                    | None -> ()
                  end)
                problem.Problem.intervals.(id).Access_interval.pins)
            selected_members)
      (Solution.violated_cliques current);
    !repaired
  in
  let rounds = ref 0 in
  while repair_pass () && !rounds < 4 do
    incr rounds
  done;
  Obs.Metrics.add m_shrinks !shrinks;
  (Solution.make problem ~assignment, !shrinks)
