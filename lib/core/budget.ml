type t = {
  started : float;
  deadline : float; (* absolute; [infinity] = no deadline *)
  work_limit : int; (* absolute count; [max_int] = no limit *)
  work : int ref; (* shared with sub-budgets *)
}

let unlimited () =
  {
    started = Unix_time.now ();
    deadline = infinity;
    work_limit = max_int;
    work = ref 0;
  }

let start ?seconds ?work_units () =
  let now = Unix_time.now () in
  {
    started = now;
    deadline = (match seconds with Some s -> now +. s | None -> infinity);
    work_limit = Option.value ~default:max_int work_units;
    work = ref 0;
  }

let sub t ?seconds ?work_units () =
  let now = Unix_time.now () in
  {
    t with
    deadline =
      (match seconds with
      | Some s -> Float.min t.deadline (now +. s)
      | None -> t.deadline);
    work_limit =
      (match work_units with
      | Some w -> min t.work_limit (!(t.work) + w)
      | None -> t.work_limit);
  }

let isolated t ?seconds ?work_units () =
  let now = Unix_time.now () in
  let remaining =
    if t.work_limit = max_int then max_int
    else max 0 (t.work_limit - !(t.work))
  in
  {
    started = t.started;
    deadline =
      (match seconds with
      | Some s -> Float.min t.deadline (now +. s)
      | None -> t.deadline);
    work_limit =
      (match work_units with
      | Some w -> min remaining w
      | None -> remaining);
    work = ref 0;
  }

let is_unlimited t = t.deadline = infinity && t.work_limit = max_int
let spend t n = t.work := !(t.work) + n
let work_spent t = !(t.work)
let elapsed t = Unix_time.now () -. t.started

let exhausted t =
  !(t.work) >= t.work_limit
  || (t.deadline < infinity && Unix_time.now () >= t.deadline)

let remaining_seconds t =
  if t.deadline = infinity then None
  else Some (Float.max 0.0 (t.deadline -. Unix_time.now ()))

let remaining_work t =
  if t.work_limit = max_int then None
  else Some (max 0 (t.work_limit - !(t.work)))

let check t ~stage =
  if exhausted t then
    Cpr_error.error
      (Cpr_error.Budget_exhausted { stage; elapsed = elapsed t })

let of_option = function Some t -> t | None -> unlimited ()
