module I = Geometry.Interval

type clique = {
  track : int;
  cap : int;
  members : int array;
  common : Geometry.Interval.t;
}

(* Sweep one track's intervals (sorted by left edge).  A maximal clique
   of an interval graph is the active set at the smallest right edge of
   its members; emitting at each distinct "some interval ends next"
   point after at least one new interval started yields every maximal
   clique exactly once.  Intervals are inflated by [clearance] on the
   right so the selection keeps line-end-cut room. *)
let sweep_track ~clearance ~track intervals =
  let eff_hi (iv : Access_interval.t) = I.hi iv.span + clearance in
  let sorted =
    List.sort
      (fun (a : Access_interval.t) b -> I.compare a.span b.span)
      intervals
  in
  let ends =
    List.sort_uniq Int.compare
      (List.map (fun iv -> eff_hi iv) intervals)
  in
  let cliques = ref [] in
  let active = ref [] in
  let pending = ref sorted in
  let fresh = ref false in
  List.iter
    (fun x ->
      (* admit intervals starting at or before x *)
      let rec admit () =
        match !pending with
        | (iv : Access_interval.t) :: rest when I.lo iv.span <= x ->
          pending := rest;
          if eff_hi iv >= x then begin
            active := iv :: !active;
            fresh := true
          end;
          admit ()
        | _ -> ()
      in
      admit ();
      (* retire intervals ending before x *)
      active := List.filter (fun iv -> eff_hi iv >= x) !active;
      if !fresh && !active <> [] then begin
        let members =
          !active
          |> List.map (fun (iv : Access_interval.t) -> iv.id)
          |> List.sort Int.compare
          |> Array.of_list
        in
        let lo =
          List.fold_left
            (fun acc (iv : Access_interval.t) -> max acc (I.lo iv.span))
            min_int !active
        in
        cliques :=
          { track; cap = 1; members; common = I.make ~lo ~hi:x } :: !cliques;
        fresh := false
      end)
    ends;
  List.rev !cliques

let by_track intervals =
  let table = Hashtbl.create 64 in
  Array.iter
    (fun (iv : Access_interval.t) ->
      let cur = Option.value ~default:[] (Hashtbl.find_opt table iv.track) in
      Hashtbl.replace table iv.track (iv :: cur))
    intervals;
  table

let detect ?(clearance = 0) intervals =
  Array.iteri
    (fun i (iv : Access_interval.t) ->
      if iv.id <> i then invalid_arg "Conflict.detect: ids must be dense")
    intervals;
  let table = by_track intervals in
  let tracks = Hashtbl.fold (fun tr _ acc -> tr :: acc) table [] in
  List.sort Int.compare tracks
  |> List.concat_map (fun track ->
         sweep_track ~clearance ~track (Hashtbl.find table track)
         |> List.filter (fun c -> Array.length c.members >= 2))
  |> Array.of_list

let cliques_of_track ?(clearance = 0) intervals ~track =
  let on_track =
    Array.to_list intervals
    |> List.filter (fun (iv : Access_interval.t) -> iv.track = track)
  in
  Array.of_list (sweep_track ~clearance ~track on_track)

(* Color cliques: maximal sets of intervals that pairwise conflict
   under the TPL color relation (tracks within the window, x-spans
   within the same-color gap), with more than [colors] members.  Each
   gets capacity [colors]: the solver tiers price selecting more than
   [k] of them exactly as they price access conflicts, so a TPL-aware
   selection spreads contended intervals before the coloring pass even
   runs.  [Solver.Color_graph.cliques] does the band sweep; here the
   indices are mapped back onto interval ids and the clique record. *)
let detect_color ~(params : Solver.Color_graph.params) intervals =
  Array.iteri
    (fun i (iv : Access_interval.t) ->
      if iv.id <> i then invalid_arg "Conflict.detect_color: ids must be dense")
    intervals;
  let feats =
    Array.map
      (fun (iv : Access_interval.t) ->
        Solver.Color_graph.feature ~track:iv.track ~lo:(I.lo iv.span)
          ~hi:(I.hi iv.span))
      intervals
  in
  Solver.Color_graph.cliques params feats
  |> List.map (fun (members, lo, hi) ->
         let track =
           Array.fold_left
             (fun acc id -> min acc intervals.(id).Access_interval.track)
             max_int members
         in
         {
           track;
           cap = params.Solver.Color_graph.colors;
           members;
           common = I.make ~lo ~hi;
         })
  |> Array.of_list

let count_pairwise_conflicts intervals =
  let count = ref 0 in
  let n = Array.length intervals in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if Access_interval.overlaps intervals.(i) intervals.(j) then incr count
    done
  done;
  !count
