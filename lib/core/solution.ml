type t = { problem : Problem.t; assignment : int array }

let make (problem : Problem.t) ~assignment =
  if Array.length assignment <> Problem.num_pins problem then
    Cpr_error.solver_failure ~solver:"solution"
      "Solution.make: assignment size mismatch";
  Array.iteri
    (fun slot id ->
      let iv = problem.Problem.intervals.(id) in
      let pid = problem.Problem.pin_ids.(slot) in
      if not (Access_interval.serves iv pid) then
        Cpr_error.solver_failure ~solver:"solution"
          "Solution.make: interval %d does not serve pin %d" id pid)
    assignment;
  { problem; assignment }

let of_chosen (problem : Problem.t) ~chosen =
  if Array.length chosen <> Problem.num_intervals problem then
    Cpr_error.solver_failure ~solver:"solution"
      "Solution.of_chosen: indicator size mismatch";
  let assignment =
    Array.mapi
      (fun slot candidates ->
        let picks = Array.to_list candidates |> List.filter (fun id -> chosen.(id)) in
        match picks with
        | [ id ] -> id
        | [] ->
          Cpr_error.solver_failure ~solver:"solution"
            "Solution.of_chosen: pin slot %d unassigned" slot
        | _ :: _ :: _ ->
          Cpr_error.solver_failure ~solver:"solution"
            "Solution.of_chosen: pin slot %d multiply assigned" slot)
      problem.Problem.pin_candidates
  in
  { problem; assignment }

let chosen t =
  let c = Array.make (Problem.num_intervals t.problem) false in
  Array.iter (fun id -> c.(id) <- true) t.assignment;
  c

let objective t =
  let c = chosen t in
  let total = ref 0.0 in
  Array.iteri
    (fun id sel -> if sel then total := !total +. t.problem.Problem.profits.(id))
    c;
  !total

let violated_cliques t =
  let c = chosen t in
  Array.to_list t.problem.Problem.cliques
  |> List.filter (fun (clique : Conflict.clique) ->
         let k =
           Array.fold_left
             (fun acc id -> if c.(id) then acc + 1 else acc)
             0 clique.Conflict.members
         in
         k > clique.Conflict.cap)

let num_violations t = List.length (violated_cliques t)
let is_conflict_free t = num_violations t = 0

let distinct_chosen t =
  let c = chosen t in
  let out = ref [] in
  Array.iteri
    (fun id sel -> if sel then out := t.problem.Problem.intervals.(id) :: !out)
    c;
  !out

let balance t =
  let lengths =
    List.map (fun iv -> float_of_int (Access_interval.length iv)) (distinct_chosen t)
  in
  match lengths with
  | [] -> 1.0
  | _ ->
    let n = float_of_int (List.length lengths) in
    let mean = List.fold_left ( +. ) 0.0 lengths /. n in
    let mn = List.fold_left min infinity lengths in
    if mean = 0.0 then 1.0 else mn /. mean

let total_length t =
  List.fold_left (fun acc iv -> acc + Access_interval.length iv) 0 (distinct_chosen t)

let interval_of_pin t pid =
  let slot = Problem.slot_of_pin t.problem pid in
  t.problem.Problem.intervals.(t.assignment.(slot))
