type config = {
  max_iterations : int;
  alpha : float;
  constant_step : float option;
  full_subgradient : bool;
  plateau_exit : int option;
  stall_halving : bool;
  warm_scale : float;
}

let default_config =
  {
    max_iterations = 200;
    alpha = 0.95;
    constant_step = None;
    full_subgradient = true;
    plateau_exit = Some 50;
    stall_halving = false;
    warm_scale = 1.0;
  }

(* metered in lockstep with [Budget.spend]: one LR iteration is one
   work unit and one tick of [lr.iterations] *)
let m_iterations = Obs.Metrics.counter "lr.iterations"
let m_step_size = Obs.Metrics.histogram "lr.step_size"
let m_violations = Obs.Metrics.histogram "lr.violations"

type iterate = { iteration : int; violations : int; relaxed_objective : float }

type result = {
  solution : Solution.t;
  iterations : int;
  best_violations : int;
  shrinks : int;
  budget_expired : bool;
  history : iterate list;
  multipliers : float array;
}

let multipliers r = r.multipliers

let dual_bound r =
  match r.history with
  | [] -> None
  | history ->
    Some
      (List.fold_left
         (fun acc it -> Float.min acc it.relaxed_objective)
         infinity history)

let max_gains (problem : Problem.t) ~gains =
  let intervals = problem.Problem.intervals in
  let n = Array.length intervals in
  let num_pins = Problem.num_pins problem in
  let npins id = List.length intervals.(id).Access_interval.pins in
  let order = Array.init n (fun i -> i) in
  (* non-increasing gain; ties broken by same-net pins served (prefer
     intra-panel connections), then id for determinism *)
  Array.sort
    (fun a b ->
      let c = Float.compare gains.(b) gains.(a) in
      if c <> 0 then c
      else
        let c = Int.compare (npins b) (npins a) in
        if c <> 0 then c else Int.compare a b)
    order;
  let assignment = Array.make num_pins (-1) in
  let remaining = ref num_pins in
  let select id =
    let slots =
      List.map
        (fun pid -> Problem.slot_of_pin problem pid)
        intervals.(id).Access_interval.pins
    in
    if List.for_all (fun slot -> assignment.(slot) < 0) slots then begin
      List.iter (fun slot -> assignment.(slot) <- id) slots;
      remaining := !remaining - List.length slots
    end
  in
  (try
     Array.iter
       (fun id ->
         if !remaining = 0 then raise Exit;
         select id)
       order
   with Exit -> ());
  assert (!remaining = 0);
  assignment

let solve ?(config = default_config) ?budget ?warm_start (problem : Problem.t)
    =
  let budget = Budget.of_option budget in
  let intervals = problem.Problem.intervals in
  let cliques = problem.Problem.cliques in
  let n = Array.length intervals in
  let profits = problem.Problem.profits in
  let lambda =
    match warm_start with
    | None -> Array.make (Array.length cliques) 0.0
    | Some w ->
      if Array.length w <> Array.length cliques then
        invalid_arg
          (Printf.sprintf
             "Lagrangian.solve: warm_start has %d multipliers, problem has \
              %d cliques"
             (Array.length w) (Array.length cliques));
      Array.map (Float.max 0.0) w
  in
  let penalties = Array.make n 0.0 in
  Array.iteri
    (fun m (clique : Conflict.clique) ->
      if lambda.(m) <> 0.0 then
        Array.iter
          (fun id -> penalties.(id) <- penalties.(id) +. lambda.(m))
          clique.Conflict.members)
    cliques;
  let gains = Array.make n 0.0 in
  let chosen = Array.make n false in
  let best_assignment = ref None in
  let best_gains = Array.make n 0.0 in
  let min_vio = ref max_int in
  let history = ref [] in
  let iterations = ref 0 in
  let k = ref 0 in
  let since_best = ref 0 in
  (* step-schedule policies (lib/tune): with the default config the
     factors below are exactly 1.0, so the computed step is bit-equal
     to the paper's [L_m / k^alpha] *)
  let warm_factor = if warm_start = None then 1.0 else config.warm_scale in
  let step k (clique : Conflict.clique) =
    let common_len =
      float_of_int (Geometry.Interval.length clique.Conflict.common)
    in
    let base =
      match config.constant_step with
      | Some t -> t *. common_len
      | None -> common_len /. Float.pow (float_of_int k) config.alpha
    in
    let halved =
      if config.stall_halving && !since_best >= 10 then
        base *. Float.pow 0.5 (float_of_int (!since_best / 10))
      else base
    in
    warm_factor *. halved
  in
  let stalled () =
    match config.plateau_exit with
    | Some limit -> !since_best >= limit
    | None -> false
  in
  let want_more () =
    !min_vio > 0 && !k < config.max_iterations && not (stalled ())
  in
  while want_more () && not (Budget.exhausted budget) do
    Obs.Trace.with_span "lr.iteration" @@ fun () ->
    incr k;
    Budget.spend budget 1;
    Obs.Metrics.incr m_iterations;
    for i = 0 to n - 1 do
      gains.(i) <- profits.(i) -. penalties.(i)
    done;
    let assignment = max_gains problem ~gains in
    Array.fill chosen 0 n false;
    Array.iter (fun id -> chosen.(id) <- true) assignment;
    (* penalize: walk every clique, count selections, move multipliers
       along the subgradient (Eq. 3) *)
    let vio = ref 0 in
    Array.iteri
      (fun m (clique : Conflict.clique) ->
        let cnt =
          Array.fold_left
            (fun acc id -> if chosen.(id) then acc + 1 else acc)
            0 clique.Conflict.members
        in
        let cap = clique.Conflict.cap in
        let g = float_of_int (cnt - cap) in
        if cnt > cap then incr vio;
        let update =
          if config.full_subgradient then cnt > cap || lambda.(m) > 0.0
          else cnt > cap
        in
        if update then begin
          let s = step !k clique in
          Obs.Metrics.observe m_step_size s;
          let lam' = Float.max 0.0 (lambda.(m) +. (s *. g)) in
          let delta = lam' -. lambda.(m) in
          if delta <> 0.0 then begin
            lambda.(m) <- lam';
            Array.iter
              (fun id -> penalties.(id) <- penalties.(id) +. delta)
              clique.Conflict.members
          end
        end)
      cliques;
    let relaxed =
      let sel = ref 0.0 in
      Array.iteri (fun id c -> if c then sel := !sel +. gains.(id)) chosen;
      (* sum of lambda_m * cap_m; cap = 1 keeps the original sum *)
      let acc = ref !sel in
      Array.iteri
        (fun m lam ->
          acc := !acc +. (lam *. float_of_int cliques.(m).Conflict.cap))
        lambda;
      !acc
    in
    Obs.Metrics.observe m_violations (float_of_int !vio);
    history :=
      { iteration = !k; violations = !vio; relaxed_objective = relaxed }
      :: !history;
    if !vio < !min_vio then begin
      min_vio := !vio;
      best_assignment := Some (Array.copy assignment);
      Array.blit gains 0 best_gains 0 n;
      since_best := 0
    end
    else incr since_best;
    iterations := !k
  done;
  (* expired: the budget cut the loop short of its own exit criteria *)
  let budget_expired = want_more () && Budget.exhausted budget in
  let assignment =
    match !best_assignment with
    | Some a -> a
    | None ->
      (* max_iterations = 0: fall back to pure profits *)
      min_vio := max_int;
      max_gains problem ~gains:profits
  in
  let raw = Solution.make problem ~assignment in
  let solution, shrinks = Refine.remove_conflicts ~gains:best_gains raw in
  {
    solution;
    iterations = !iterations;
    best_violations = (if !min_vio = max_int then Solution.num_violations raw else !min_vio);
    shrinks;
    budget_expired;
    history = List.rev !history;
    multipliers = lambda;
  }
