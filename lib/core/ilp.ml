type result = {
  solution : Solution.t;
  objective : float;
  nodes : int;
  proven_optimal : bool;
  root_lp_bound : float option;
}

(* branch-and-bound nodes are the ILP work unit (see [Budget.spend]
   below); metered here as [ilp.nodes] *)
let m_nodes = Obs.Metrics.counter "ilp.nodes"

let to_milp (problem : Problem.t) =
  let rows =
    Array.to_list
      (Array.map
         (fun candidates -> Solver.Milp.Choose_one (Array.to_list candidates))
         problem.Problem.pin_candidates)
    @ Array.to_list
        (Array.map
           (fun (clique : Conflict.clique) ->
             let members = Array.to_list clique.Conflict.members in
             if clique.Conflict.cap = 1 then Solver.Milp.At_most_one members
             else Solver.Milp.At_most (clique.Conflict.cap, members))
           problem.Problem.cliques)
  in
  {
    Solver.Milp.num_vars = Problem.num_intervals problem;
    profit = Array.copy problem.Problem.profits;
    rows;
  }

let solve ?time_limit ?warm_start ?(root_lp = false) ?budget
    (problem : Problem.t) =
  Obs.Trace.with_span "ilp.solve" @@ fun () ->
  let milp = to_milp problem in
  let warm_start = Option.map Solution.chosen warm_start in
  (* the effective limits combine the explicit cap with whatever the
     budget has left; branch-and-bound nodes are the work unit *)
  let opt_min a b =
    match (a, b) with
    | Some a, Some b -> Some (min a b)
    | (Some _ as v), None | None, (Some _ as v) -> v
    | None, None -> None
  in
  let time_limit =
    opt_min time_limit (Option.bind budget Budget.remaining_seconds)
  in
  let node_limit = Option.bind budget Budget.remaining_work in
  let sol =
    Solver.Milp.solve
      ?time_limit
      ?node_limit
      ?warm_start ~root_lp milp
  in
  Option.iter
    (fun b -> Budget.spend b sol.Solver.Milp.stats.Solver.Milp.nodes)
    budget;
  Obs.Metrics.add m_nodes sol.Solver.Milp.stats.Solver.Milp.nodes;
  let solution = Solution.of_chosen problem ~chosen:sol.Solver.Milp.values in
  assert (Solution.is_conflict_free solution);
  {
    solution;
    objective = sol.Solver.Milp.objective;
    nodes = sol.Solver.Milp.stats.Solver.Milp.nodes;
    proven_optimal = sol.Solver.Milp.stats.Solver.Milp.proven_optimal;
    root_lp_bound = sol.Solver.Milp.stats.Solver.Milp.root_lp_bound;
  }

let lp_relaxation_bound (problem : Problem.t) =
  let milp = to_milp problem in
  let objective =
    Array.to_list (Array.mapi (fun v k -> (v, k)) milp.Solver.Milp.profit)
  in
  let constraints =
    List.map
      (fun row ->
        match row with
        | Solver.Milp.Choose_one vars ->
          Solver.Lp.constr (List.map (fun v -> (v, 1.0)) vars) Solver.Lp.Eq 1.0
        | Solver.Milp.At_most_one vars ->
          Solver.Lp.constr (List.map (fun v -> (v, 1.0)) vars) Solver.Lp.Le 1.0
        | Solver.Milp.At_most (cap, vars) ->
          Solver.Lp.constr
            (List.map (fun v -> (v, 1.0)) vars)
            Solver.Lp.Le (float_of_int cap))
      milp.Solver.Milp.rows
  in
  let lp =
    {
      Solver.Lp.num_vars = milp.Solver.Milp.num_vars;
      maximize = true;
      objective;
      constraints;
    }
  in
  match Solver.Lp.solve lp with
  | Solver.Lp.Optimal s -> Some s.Solver.Lp.objective_value
  | Solver.Lp.Infeasible | Solver.Lp.Unbounded | Solver.Lp.Iteration_limit ->
    None
