type solver_kind = Ilp | Lr

type tier = Tier_ilp | Tier_lr | Tier_minimum

type config = {
  gen : Interval_gen.config;
  lr : Lagrangian.config;
  ilp_warm_start : bool;
}

let default_config =
  {
    gen = Interval_gen.default_config;
    lr = Lagrangian.default_config;
    ilp_warm_start = true;
  }

type panel_report = {
  panel : int;
  pins : int;
  intervals : int;
  cliques : int;
  objective : float;
  lr_iterations : int;
  proven_optimal : bool;
  served_by : tier;
  degraded : bool;
}

type tpl_coloring = {
  tpl_params : Solver.Color_graph.params;
  features : (int * int * int * int) array;
  colors : Solver.Color_graph.assignment array;
  tpl_stitches : int;
  tpl_residual : int;
}

type t = {
  design : Netlist.Design.t;
  kind : solver_kind;
  assignments : (Netlist.Pin.id * Access_interval.t) list;
  objective : float;
  reports : panel_report list;
  degraded : bool;
  elapsed : float;
  tpl : tpl_coloring option;
}

let solver_kind_to_string = function Ilp -> "ILP" | Lr -> "LR"

(* which rung of the degradation ladder actually served each panel *)
let m_tier_ilp = Obs.Metrics.counter "pao.tier.ilp"
let m_tier_lr = Obs.Metrics.counter "pao.tier.lr"
let m_tier_minimum = Obs.Metrics.counter "pao.tier.minimum"
let m_degraded = Obs.Metrics.counter "pao.degraded_panels"

let tier_counter = function
  | Tier_ilp -> m_tier_ilp
  | Tier_lr -> m_tier_lr
  | Tier_minimum -> m_tier_minimum

let tier_to_string = function
  | Tier_ilp -> "ILP"
  | Tier_lr -> "LR"
  | Tier_minimum -> "MIN"

let tier_of_kind = function Ilp -> Tier_ilp | Lr -> Tier_lr

(* Theorem 1: every pin's minimum interval exists and minimum intervals
   are pairwise disjoint, so this assignment is always feasible — the
   ladder's unconditional last rung. *)
let minimum_solution (problem : Problem.t) =
  let assignment =
    Array.init (Problem.num_pins problem) (fun slot ->
        Problem.minimum_interval problem ~slot)
  in
  Solution.make problem ~assignment

(* One tier attempt: (solution, lr_iterations, complete, tier) where
   [complete] means the tier ran to its own finish rather than being
   cut short by the budget. *)
let ilp_tier config ~budget (problem : Problem.t) =
  Obs.Trace.with_span "pao.tier.ilp" @@ fun () ->
  Fault.trip Fault.Ilp;
  let warm_start_of p =
    if config.ilp_warm_start then
      match Lagrangian.solve ~config:config.lr ~budget p with
      | lr when Solution.is_conflict_free lr.Lagrangian.solution ->
        Some lr.Lagrangian.solution
      | _ -> None
      | exception e when Cpr_error.recoverable e -> None
    else None
  in
  let solve p = Ilp.solve ~budget ?warm_start:(warm_start_of p) p in
  let r =
    try solve problem
    with Solver.Milp.Infeasible ->
      (* the design-rule clearance can make strict feasibility
         impossible (adjacent same-track pins); fall back to the
         paper's original conflict relation for this instance *)
      let relaxed =
        { problem.Problem.config with Interval_gen.clearance = 0; tpl = None }
      in
      let problem0 =
        Problem.of_intervals relaxed problem.Problem.design
          problem.Problem.intervals
      in
      solve problem0
  in
  (r.Ilp.solution, 0, r.Ilp.proven_optimal, Tier_ilp)

let lr_tier ?warm_start config ~budget (problem : Problem.t) =
  Obs.Trace.with_span "pao.tier.lr" @@ fun () ->
  Fault.trip Fault.Lr;
  let r = Lagrangian.solve ~config:config.lr ~budget ?warm_start problem in
  (r.Lagrangian.solution, r.Lagrangian.iterations,
   not r.Lagrangian.budget_expired, Tier_lr, r.Lagrangian.multipliers)

let minimum_tier (problem : Problem.t) =
  (minimum_solution problem, 0, true, Tier_minimum, [||])

let solve_problem ?warm_start config ~budget kind ~panel
    (problem : Problem.t) =
  Obs.Trace.with_span "pao.panel" @@ fun () ->
  let tiers =
    if Budget.exhausted budget then [ fun _ -> minimum_tier problem ]
    else
      match kind with
      | Ilp ->
        [
          (fun () ->
            let s, it, c, t = ilp_tier config ~budget problem in
            (s, it, c, t, [||]));
          (fun () -> lr_tier ?warm_start config ~budget problem);
          (fun _ -> minimum_tier problem);
        ]
      | Lr ->
        [
          (fun () -> lr_tier ?warm_start config ~budget problem);
          (fun _ -> minimum_tier problem);
        ]
  in
  let rec attempt = function
    | [] -> assert false
    | [ last ] -> last () (* last rung: typed errors propagate *)
    | f :: rest ->
      (try f () with e when Cpr_error.recoverable e -> attempt rest)
  in
  let solution, lr_iterations, complete, served_by, multipliers =
    attempt tiers
  in
  Obs.Metrics.incr (tier_counter served_by);
  if served_by <> tier_of_kind kind || not complete then
    Obs.Metrics.incr m_degraded;
  let objective = Solution.objective solution in
  let report =
    {
      panel;
      pins = Problem.num_pins problem;
      intervals = Problem.num_intervals problem;
      cliques = Problem.num_cliques problem;
      objective;
      lr_iterations;
      proven_optimal = complete;
      served_by;
      degraded = served_by <> tier_of_kind kind || not complete;
    }
  in
  let assignments =
    Array.to_list
      (Array.mapi
         (fun slot id ->
           (problem.Problem.pin_ids.(slot), problem.Problem.intervals.(id)))
         solution.Solution.assignment)
  in
  (assignments, objective, report, multipliers)

(* Give each remaining panel an equal slice of what is left, so an
   early pathological panel cannot starve the rest of the design. *)
let panel_budget budget ~panels_left =
  if Budget.is_unlimited budget || panels_left <= 1 then budget
  else
    let slice o n = Option.map (fun v -> v /. float_of_int n) o in
    let seconds = slice (Budget.remaining_seconds budget) panels_left in
    let work_units =
      Option.map
        (fun w -> max 1 (w / panels_left))
        (Budget.remaining_work budget)
    in
    Budget.sub budget ?seconds ?work_units ()

let solve_sequential config ~budget kind problems =
  let panels_left =
    ref
      (List.length
         (List.filter (fun (_, p) -> Problem.num_pins p > 0) problems))
  in
  List.fold_left
    (fun (acc_a, acc_o, acc_r) (panel, problem) ->
      if Problem.num_pins problem = 0 then (acc_a, acc_o, acc_r)
      else begin
        let sliced = panel_budget budget ~panels_left:!panels_left in
        decr panels_left;
        let a, o, r, _ =
          solve_problem config ~budget:sliced kind ~panel problem
        in
        (List.rev_append a acc_a, acc_o +. o, r :: acc_r)
      end)
    ([], 0.0, []) problems

(* Panels are independent subproblems (Sec. 3.4): fan them out over a
   domain pool.  Each task gets an equal, *isolated* slice of the
   remaining budget (private work counter — domains share no mutable
   budget state) and runs with its metrics and spans buffered
   domain-locally; the join below merges everything back in panel
   order, so reports, assignments, counters and traces come out
   identical to a sequential left-to-right run. *)
let solve_parallel config ~budget ~j kind live =
  let tasks = Array.of_list live in
  let n = Array.length tasks in
  let slices =
    Array.map
      (fun _ ->
        if Budget.is_unlimited budget then Budget.isolated budget ()
        else
          let seconds =
            Option.map
              (fun s -> s /. float_of_int n)
              (Budget.remaining_seconds budget)
          in
          let work_units =
            Option.map (fun w -> max 1 (w / n)) (Budget.remaining_work budget)
          in
          Budget.isolated budget ?seconds ?work_units ())
      tasks
  in
  let trace_on = Obs.Trace.enabled () in
  let solve i (panel, problem) =
    let task () = solve_problem config ~budget:slices.(i) kind ~panel problem in
    Obs.Metrics.buffered (fun () ->
        if trace_on then Obs.Trace.buffered task else (task (), []))
  in
  let results = Exec.mapi (Exec.shared ~domains:j) solve tasks in
  let acc_a = ref [] and acc_o = ref 0.0 and acc_r = ref [] in
  Array.iteri
    (fun i (((a, o, r, _), events), mbuf) ->
      Obs.Metrics.flush mbuf;
      Obs.Trace.replay events;
      Budget.spend budget (Budget.work_spent slices.(i));
      acc_a := List.rev_append a !acc_a;
      acc_o := !acc_o +. o;
      acc_r := r :: !acc_r)
    results;
  (!acc_a, !acc_o, !acc_r)

type tune_hook = {
  tune_select : panel:int -> Problem.t -> config -> config * string;
  tune_observe :
    panel:int ->
    policy:string ->
    objective:float ->
    delta:Obs.Metrics.snapshot ->
    unit;
}

(* Tuned fan-out (lib/tune): panels are processed in fixed-size waves.
   Within a wave, policies are selected panel-ascending before any
   solve runs; the wave then solves on the pool (or inline), and its
   per-panel metric deltas are observed back panel-ascending.  A
   panel's policy can therefore depend on the rewards of every earlier
   wave but never on an in-flight solve — and since the wave size is a
   constant and every merge walks ascending panel order, the policy
   trace and the output bytes are independent of [j]. *)
let tune_wave = 8

let solve_tuned config ~budget ~j ~tune kind live =
  let tasks = Array.of_list live in
  let n = Array.length tasks in
  let trace_on = Obs.Trace.enabled () in
  let pool = if j > 1 then Some (Exec.shared ~domains:j) else None in
  let acc_a = ref [] and acc_o = ref 0.0 and acc_r = ref [] in
  let start = ref 0 in
  while !start < n do
    let len = min tune_wave (n - !start) in
    let left = n - !start in
    (* equal isolated slices over the remaining live panels — the
       solve_parallel discipline, re-sliced at each wave boundary *)
    let slice () =
      if Budget.is_unlimited budget then Budget.isolated budget ()
      else
        let seconds =
          Option.map
            (fun s -> s /. float_of_int left)
            (Budget.remaining_seconds budget)
        in
        let work_units =
          Option.map (fun w -> max 1 (w / left)) (Budget.remaining_work budget)
        in
        Budget.isolated budget ?seconds ?work_units ()
    in
    let slices = Array.init len (fun _ -> slice ()) in
    let wave = Array.sub tasks !start len in
    let chosen =
      Array.map
        (fun (panel, problem) -> tune.tune_select ~panel problem config)
        wave
    in
    let solve i (panel, problem) =
      let cfg, _ = chosen.(i) in
      let task () = solve_problem cfg ~budget:slices.(i) kind ~panel problem in
      Obs.Metrics.buffered (fun () ->
          if trace_on then Obs.Trace.buffered task else (task (), []))
    in
    let results =
      match pool with
      | Some pool when len > 1 -> Exec.mapi pool solve wave
      | _ -> Array.mapi solve wave
    in
    Array.iteri
      (fun i (((a, o, r, _), events), mbuf) ->
        let before = Obs.Metrics.snapshot () in
        Obs.Metrics.flush mbuf;
        Obs.Trace.replay events;
        let after = Obs.Metrics.snapshot () in
        Budget.spend budget (Budget.work_spent slices.(i));
        let panel, _ = wave.(i) in
        tune.tune_observe ~panel ~policy:(snd chosen.(i)) ~objective:o
          ~delta:(Obs.Metrics.diff ~before ~after);
        acc_a := List.rev_append a !acc_a;
        acc_o := !acc_o +. o;
        acc_r := r :: !acc_r)
      results;
    start := !start + len
  done;
  (!acc_a, !acc_o, !acc_r)

(* Global TPL coloring pass: one deterministic greedy coloring over the
   distinct selected intervals of the whole design, run after the panel
   merge.  Being global, it sees cross-panel color conflicts no
   per-panel solver can, and its input — features canonically sorted by
   (track, lo, hi, net) — does not depend on panel solve order, so
   [~j:n] colorings are bit-identical to [~j:1]. *)
let color_assignments params assignments =
  let module I = Geometry.Interval in
  let table = Hashtbl.create 256 in
  List.iter
    (fun ((_ : Netlist.Pin.id), (iv : Access_interval.t)) ->
      Hashtbl.replace table (iv.track, I.lo iv.span, I.hi iv.span, iv.net) ())
    assignments;
  let features =
    Hashtbl.fold (fun key () acc -> key :: acc) table []
    |> List.sort compare |> Array.of_list
  in
  let feats =
    Array.map
      (fun (track, lo, hi, _net) -> Solver.Color_graph.feature ~track ~lo ~hi)
      features
  in
  let c = Solver.Color_graph.color params feats in
  {
    tpl_params = params;
    features;
    colors = c.Solver.Color_graph.assignment;
    tpl_stitches = c.Solver.Color_graph.stitches;
    tpl_residual = c.Solver.Color_graph.residual;
  }

let tpl_of config assignments =
  Option.map
    (fun params -> color_assignments params assignments)
    config.gen.Interval_gen.tpl

let run ?(config = default_config) ?budget ?(j = 1) ?tune ~kind design
    problems =
  Obs.Trace.with_span "pao.optimize" @@ fun () ->
  let start = Unix_time.now () in
  let budget = Budget.of_option budget in
  let live = List.filter (fun (_, p) -> Problem.num_pins p > 0) problems in
  let assignments, objective, reports =
    match tune with
    | Some hook when live <> [] ->
      solve_tuned config ~budget ~j ~tune:hook kind live
    | _ ->
      if j <= 1 || List.length live <= 1 then
        solve_sequential config ~budget kind problems
      else solve_parallel config ~budget ~j kind live
  in
  let reports = List.rev reports in
  let assignments = List.rev assignments in
  {
    design;
    kind;
    assignments;
    objective;
    reports;
    degraded = List.exists (fun (r : panel_report) -> r.degraded) reports;
    elapsed = Unix_time.now () -. start;
    tpl = tpl_of config assignments;
  }

let build_panel config design ~panel =
  try Problem.build_panel config.gen design ~panel
  with Interval_gen.Pin_unreachable pid ->
    Cpr_error.infeasible ~panel
      "pin %d unreachable: its primary track is blocked" pid

(* Streamed variants: build each panel's problem at the moment it is
   solved instead of materializing every problem up front — the memory
   contract the [mega] workload tier relies on (panel problems are the
   dominant resident structure on large designs).  With an unlimited
   budget the output is bit-identical to the resident path; under a
   finite budget the slice denominator is the remaining *total* panel
   count (pin-bearing panels are only discovered as they are built),
   which can hand empty panels a share the resident walk reserves for
   live ones. *)
let solve_sequential_streamed config ~budget kind design ~num_panels =
  let acc_a = ref [] and acc_o = ref 0.0 and acc_r = ref [] in
  for panel = 0 to num_panels - 1 do
    let sliced = panel_budget budget ~panels_left:(num_panels - panel) in
    let problem = build_panel config design ~panel in
    if Problem.num_pins problem > 0 then begin
      let a, o, r, _ = solve_problem config ~budget:sliced kind ~panel problem in
      acc_a := List.rev_append a !acc_a;
      acc_o := !acc_o +. o;
      acc_r := r :: !acc_r
    end
  done;
  (!acc_a, !acc_o, !acc_r)

let solve_parallel_streamed config ~budget ~j kind design ~num_panels =
  let tasks = Array.init num_panels (fun p -> p) in
  let slices =
    Array.map
      (fun _ ->
        if Budget.is_unlimited budget then Budget.isolated budget ()
        else
          let seconds =
            Option.map
              (fun s -> s /. float_of_int num_panels)
              (Budget.remaining_seconds budget)
          in
          let work_units =
            Option.map
              (fun w -> max 1 (w / num_panels))
              (Budget.remaining_work budget)
          in
          Budget.isolated budget ?seconds ?work_units ())
      tasks
  in
  let trace_on = Obs.Trace.enabled () in
  let solve i panel =
    let task () =
      let problem = build_panel config design ~panel in
      if Problem.num_pins problem = 0 then None
      else Some (solve_problem config ~budget:slices.(i) kind ~panel problem)
    in
    Obs.Metrics.buffered (fun () ->
        if trace_on then Obs.Trace.buffered task else (task (), []))
  in
  let results = Exec.mapi (Exec.shared ~domains:j) solve tasks in
  let acc_a = ref [] and acc_o = ref 0.0 and acc_r = ref [] in
  Array.iteri
    (fun i (r, mbuf) ->
      Obs.Metrics.flush mbuf;
      let solved, events = r in
      Obs.Trace.replay events;
      Budget.spend budget (Budget.work_spent slices.(i));
      match solved with
      | Some (a, o, r, _) ->
        acc_a := List.rev_append a !acc_a;
        acc_o := !acc_o +. o;
        acc_r := r :: !acc_r
      | None -> ())
    results;
  (!acc_a, !acc_o, !acc_r)

let optimize ?(config = default_config) ?budget ?j ?(stream = false) ?tune
    ~kind design =
  if (not stream) || tune <> None then
    let problems =
      List.init (Netlist.Design.num_panels design) (fun panel ->
          (panel, build_panel config design ~panel))
    in
    run ~config ?budget ?j ?tune ~kind design problems
  else begin
    Obs.Trace.with_span "pao.optimize" @@ fun () ->
    let start = Unix_time.now () in
    let budget = Budget.of_option budget in
    let num_panels = Netlist.Design.num_panels design in
    let j = Option.value ~default:1 j in
    let assignments, objective, reports =
      if j <= 1 || num_panels <= 1 then
        solve_sequential_streamed config ~budget kind design ~num_panels
      else solve_parallel_streamed config ~budget ~j kind design ~num_panels
    in
    let reports = List.rev reports in
    let assignments = List.rev assignments in
    {
      design;
      kind;
      assignments;
      objective;
      reports;
      degraded = List.exists (fun (r : panel_report) -> r.degraded) reports;
      elapsed = Unix_time.now () -. start;
      tpl = tpl_of config assignments;
    }
  end

(* Single-panel entry point for incremental callers (lib/eco): same
   degradation ladder as [optimize], but on one already-built problem,
   optionally warm-starting the LR tier from cached multipliers. *)
let solve_panel ?(config = default_config) ?budget ?warm_start ~kind ~panel
    problem =
  let budget = Budget.of_option budget in
  solve_problem ?warm_start config ~budget kind ~panel problem

let optimize_combined ?(config = default_config) ?budget ~kind design ~panels =
  let problem =
    try Problem.build_panels config.gen design ~panels
    with Interval_gen.Pin_unreachable pid ->
      Cpr_error.infeasible "pin %d unreachable: its primary track is blocked"
        pid
  in
  run ~config ?budget ~kind design [ (-1, problem) ]

let interval_of_pin t pid =
  List.assoc_opt pid t.assignments

let validate ?(complete = true) t =
  let fail fmt =
    Printf.ksprintf
      (fun reason ->
        Cpr_error.solver_failure ~solver:"pin_access" "validate: %s" reason)
      fmt
  in
  let design = t.design in
  let num_pins = Array.length (Netlist.Design.pins design) in
  let seen = Array.make num_pins false in
  List.iter
    (fun (pid, iv) ->
      if seen.(pid) then fail "pin %d assigned twice" pid;
      seen.(pid) <- true;
      if not (Access_interval.serves iv pid) then
        fail "interval does not serve pin %d" pid)
    t.assignments;
  if complete then
    Array.iteri
      (fun pid assigned -> if not assigned then fail "pin %d unassigned" pid)
      seen;
  (* no overlap among assigned intervals of different nets (Problem 1) *)
  let distinct =
    List.sort_uniq
      (fun (a : Access_interval.t) b -> Int.compare a.id b.id)
      (List.map snd t.assignments)
  in
  let by_track = Hashtbl.create 64 in
  List.iter
    (fun (iv : Access_interval.t) ->
      let cur =
        Option.value ~default:[] (Hashtbl.find_opt by_track iv.track)
      in
      Hashtbl.replace by_track iv.track (iv :: cur))
    distinct;
  Hashtbl.iter
    (fun _track ivs ->
      let arr = Array.of_list ivs in
      let n = Array.length arr in
      for i = 0 to n - 1 do
        for j = i + 1 to n - 1 do
          let a = arr.(i) and b = arr.(j) in
          if
            a.Access_interval.net <> b.Access_interval.net
            && Access_interval.overlaps a b
          then
            fail "different-net intervals overlap on track %d"
              a.Access_interval.track
        done
      done)
    by_track
