(** Track-based pin access interval generation (paper Sec. 3.1).

    For each pin and each M2 track the pin overlaps, candidate
    intervals are enumerated inside the net bounding box, clipped at
    routing blockages, with left/right edges at the vertical cutting
    lines of diff-net pins (so [O(m*n)] candidates when [m] diff-net
    pins lie left and [n] right of the pin).  The minimum interval (the
    pin column itself, on the pin's primary track) is always produced:
    minimum intervals are pairwise disjoint, which is what makes
    Formula (1) feasible (Theorem 1). *)

type config = {
  weighting : Objective.weighting;
  m2_bbox_margin : int option;
      (** Footnote 1: when [Some k], clip interval generation to the
          estimated M2 box — the pin column inflated by [k] grids —
          instead of the full net bounding box.  [None] uses the net
          bounding box. *)
  max_per_pin : int;
      (** Cap on candidates per pin per track; longest candidates are
          kept (minimum and maximum intervals always survive). *)
  clearance : int;
      (** Design-rule-aware conflict slack: selected intervals keep
          [clearance + 1] grids of line-end room (see
          {!Conflict.detect}); default 2, matching the SADP deck's
          min line-end gap of 2 (gap >= clearance). *)
  min_window : int option;
      (** Library-check mode: grow each pin's generation bounds to at
          least [±window] grid columns around the pin column (clamped
          to the die), on top of the net bounding box.  A single-pin
          net — how the library checker models every cell pin — has a
          degenerate bounding box, so without a window its only
          candidate is the pin column itself.  [None] (default)
          reproduces the paper's net-bbox clipping exactly. *)
  tpl : Solver.Color_graph.params option;
      (** Triple-patterning mode: when [Some params],
          {!Problem.of_intervals} appends the color cliques of
          {!Conflict.detect_color} to the access cliques (so every
          solver tier prices color contention) and
          {!Pin_access.optimize} runs the deterministic global
          coloring pass over the selected intervals.  [None]
          (default) is bit-identical to the pre-TPL pipeline.  The
          field rides inside every [Problem.config], so ECO cache keys
          and audit certificates pick the deck up automatically. *)
}

val default_config : config

exception Pin_unreachable of Netlist.Pin.id
(** Raised when a pin's primary-track column is covered by an M2
    blockage: no minimum interval exists and the design is unroutable
    as placed. *)

val generate_pin :
  config -> Netlist.Design.t -> Netlist.Pin.t -> (Netlist.Pin.id list * int * Geometry.Interval.t * Access_interval.kind) list
(** Raw candidates for one pin as [(pins_served, track, span, kind)];
    exposed for unit tests.  Candidates of several pins must still be
    deduplicated by [generate_panel]. *)

val generate_panel :
  config -> Netlist.Design.t -> panel:int -> Access_interval.t array
(** All access intervals of a panel, deduplicated ([(net, track, span)]
    identifies an interval; the pin lists of duplicates are merged),
    with dense ids [0..n-1]. *)
