type t =
  | Malformed_design of { line : int option; reason : string }
  | Budget_exhausted of { stage : string; elapsed : float }
  | Solver_failure of { solver : string; reason : string }
  | Infeasible_panel of { panel : int option; reason : string }

exception Error of t

let to_string = function
  | Malformed_design { line = Some l; reason } ->
    Printf.sprintf "malformed design (line %d): %s" l reason
  | Malformed_design { line = None; reason } ->
    Printf.sprintf "malformed design: %s" reason
  | Budget_exhausted { stage; elapsed } ->
    Printf.sprintf "budget exhausted during %s after %.2fs" stage elapsed
  | Solver_failure { solver; reason } ->
    Printf.sprintf "solver %s failed: %s" solver reason
  | Infeasible_panel { panel = Some p; reason } ->
    Printf.sprintf "panel %d infeasible: %s" p reason
  | Infeasible_panel { panel = None; reason } ->
    Printf.sprintf "infeasible instance: %s" reason

let error e = raise (Error e)

let malformed ?line fmt =
  Printf.ksprintf (fun reason -> error (Malformed_design { line; reason })) fmt

let solver_failure ~solver fmt =
  Printf.ksprintf (fun reason -> error (Solver_failure { solver; reason })) fmt

let infeasible ?panel fmt =
  Printf.ksprintf (fun reason -> error (Infeasible_panel { panel; reason })) fmt

let of_exn = function
  | Error e -> Some e
  | Netlist.Design_io.Malformed { line; reason } ->
    Some (Malformed_design { line; reason })
  | Netlist.Design.Invalid reason ->
    Some (Malformed_design { line = None; reason })
  | Interval_gen.Pin_unreachable pid ->
    Some
      (Infeasible_panel
         {
           panel = None;
           reason =
             Printf.sprintf
               "pin %d unreachable: its primary track is blocked" pid;
         })
  | Solver.Milp.Infeasible ->
    Some
      (Solver_failure { solver = "milp"; reason = "instance proved infeasible" })
  | _ -> None

let protect f =
  match f () with
  | v -> Ok v
  | exception e ->
    (match of_exn e with Some t -> Result.Error t | None -> raise e)

let recoverable = function
  | Error _ | Solver.Milp.Infeasible | Interval_gen.Pin_unreachable _
  | Failure _ | Invalid_argument _ | Not_found | Assert_failure _ ->
    true
  | _ -> false
