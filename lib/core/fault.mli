(** Deterministic fault injection over the solver tiers and the
    service layer.

    {!Pin_access} trips the hook at each tier's entry point; a test
    installs a hook that raises for chosen tiers, proving the
    degradation ladder (ILP -> LR -> shrink-to-minimum) still delivers
    a validated result when upper tiers die.  The serving layer
    ([lib/serve]) trips the [Wal_*]/[Serve_apply]/[Worker] points so
    crash-recovery tests and the soak harness can tear WAL writes,
    kill a request between journal append and engine apply, or fail a
    worker-domain panel solve on demand.  The default hook does
    nothing, so production code pays one indirect call per point. *)

type point =
  | Ilp  (** exact-ILP tier entry *)
  | Lr  (** Lagrangian tier entry *)
  | Wal_append  (** mid-payload during a WAL record append (torn write) *)
  | Wal_commit  (** before a WAL commit marker is written *)
  | Serve_apply  (** between WAL append and engine apply (crash window) *)
  | Worker  (** entry of one panel-solve task (worker-domain failure) *)
  | Report_write
      (** mid-stream during a report's atomic write, between open and
          commit (crash leaves the previous report intact) *)

val point_to_string : point -> string

val trip : point -> unit
(** Called by solver entry points; raises whatever the installed hook
    raises (nothing by default). *)

val set_hook : (point -> unit) -> unit
(** Install a hook for the rest of the process lifetime — the daemon's
    [--inject-*] flags; tests should prefer {!with_hook}. *)

val with_hook : (point -> unit) -> (unit -> 'a) -> 'a
(** Run a thunk with the hook installed, restoring the previous hook on
    exit (exception-safe). *)

val with_failures : point list -> (unit -> 'a) -> 'a
(** Run a thunk with the listed tiers raising a typed
    [Cpr_error.Solver_failure] on entry. *)
