(** Deterministic fault injection over the solver tiers.

    {!Pin_access} trips the hook at each tier's entry point; a test
    installs a hook that raises for chosen tiers, proving the
    degradation ladder (ILP -> LR -> shrink-to-minimum) still delivers
    a validated result when upper tiers die.  The default hook does
    nothing, so production code pays one indirect call per tier. *)

type point = Ilp | Lr

val point_to_string : point -> string

val trip : point -> unit
(** Called by solver entry points; raises whatever the installed hook
    raises (nothing by default). *)

val with_hook : (point -> unit) -> (unit -> 'a) -> 'a
(** Run a thunk with the hook installed, restoring the previous hook on
    exit (exception-safe). *)

val with_failures : point list -> (unit -> 'a) -> 'a
(** Run a thunk with the listed tiers raising a typed
    [Cpr_error.Solver_failure] on entry. *)
