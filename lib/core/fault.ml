type point =
  | Ilp
  | Lr
  | Wal_append
  | Wal_commit
  | Serve_apply
  | Worker
  | Report_write

let point_to_string = function
  | Ilp -> "ilp"
  | Lr -> "lr"
  | Wal_append -> "wal_append"
  | Wal_commit -> "wal_commit"
  | Serve_apply -> "serve_apply"
  | Worker -> "worker"
  | Report_write -> "report_write"

let hook : (point -> unit) ref = ref (fun _ -> ())

let trip p = !hook p
let set_hook h = hook := h

let with_hook h f =
  let old = !hook in
  hook := h;
  Fun.protect ~finally:(fun () -> hook := old) f

let with_failures points f =
  with_hook
    (fun p ->
      if List.mem p points then
        Cpr_error.solver_failure ~solver:(point_to_string p)
          "fault injection: tier disabled")
    f
