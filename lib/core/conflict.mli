(** Linear conflict set detection (paper Sec. 3.2).

    A conflict set is a maximal set of pin access intervals on one
    track whose common intersection is non-empty — a maximal clique of
    the interval overlap graph.  A left-to-right sweep emits each
    maximal clique exactly once, so the number of conflict sets is
    linear in the number of intervals (Fig. 4). *)

type clique = {
  track : int;
      (** access cliques: the shared track; color cliques: the lowest
          member track (the band root) *)
  cap : int;
      (** selection capacity: at most [cap] members may be selected.
          1 for access conflict sets (constraint (1c)); the color
          count [k] for TPL color cliques, where up to [k] mutually
          conflicting features still admit a legal coloring. *)
  members : int array;  (** interval ids, ascending *)
  common : Geometry.Interval.t;
      (** common intersection (of the gap-inflated spans for color
          cliques); its length is the paper's [L_m] used in the
          subgradient step size *)
}

val detect : ?clearance:int -> Access_interval.t array -> clique array
(** All maximal cliques of size >= 2 across every track, emitted in
    sweep order.  Input intervals must carry ids equal to their array
    index.

    [clearance] (default 0) makes the conflict relation design-rule
    aware: an interval is treated as extending [clearance] extra grids
    to the right, so two selected intervals end up at least
    [clearance + 1] grids apart — enough room for the line-end cut
    between them.  With [clearance > 0] the strict Theorem-1 guarantee
    (feasibility through minimum intervals) can fail for pins forced
    onto the same track at adjacent columns; callers fall back to
    [clearance = 0] (ILP) or leave the residual conflict to the
    router's DRC accounting (LR). *)

val detect_color :
  params:Solver.Color_graph.params -> Access_interval.t array -> clique array
(** TPL color cliques: maximal sets of intervals that pairwise
    conflict under the color relation of [params] (tracks within
    [track_window], x-spans within [same_color_gap]) with more than
    [colors] members, each carrying [cap = colors].  Appended to the
    access cliques by {!Problem.of_intervals} when the TPL deck is on,
    so every solver tier prices color contention alongside access
    conflicts.  Input intervals must carry dense ids. *)

val cliques_of_track :
  ?clearance:int -> Access_interval.t array -> track:int -> clique array
(** Sweep restricted to one track; exposed for tests. *)

val count_pairwise_conflicts : Access_interval.t array -> int
(** Number of overlapping interval pairs — the quadratic constraint
    count the clique formulation avoids; used in tests and benches. *)
