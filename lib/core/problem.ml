module Design = Netlist.Design

type t = {
  design : Netlist.Design.t;
  config : Interval_gen.config;
  intervals : Access_interval.t array;
  pin_ids : Netlist.Pin.id array;
  pin_slot : (Netlist.Pin.id, int) Hashtbl.t;
  pin_candidates : int array array;
  cliques : Conflict.clique array;
  profits : float array;
  mutable clique_index : int list array option;
}

let of_intervals config design intervals =
  let pin_set = Hashtbl.create 256 in
  Array.iter
    (fun (iv : Access_interval.t) ->
      List.iter (fun pid -> Hashtbl.replace pin_set pid ()) iv.pins)
    intervals;
  let pin_ids =
    Hashtbl.fold (fun pid () acc -> pid :: acc) pin_set []
    |> List.sort Int.compare |> Array.of_list
  in
  let pin_slot = Hashtbl.create (Array.length pin_ids) in
  Array.iteri (fun slot pid -> Hashtbl.add pin_slot pid slot) pin_ids;
  let candidates = Array.make (Array.length pin_ids) [] in
  Array.iter
    (fun (iv : Access_interval.t) ->
      List.iter
        (fun pid ->
          let slot = Hashtbl.find pin_slot pid in
          candidates.(slot) <- iv.id :: candidates.(slot))
        iv.pins)
    intervals;
  let pin_candidates =
    Array.map (fun ids -> Array.of_list (List.sort Int.compare ids)) candidates
  in
  let cliques =
    let access =
      Conflict.detect ~clearance:config.Interval_gen.clearance intervals
    in
    match config.Interval_gen.tpl with
    | None -> access
    | Some params ->
      Array.append access (Conflict.detect_color ~params intervals)
  in
  let profits =
    Array.map (Objective.profit config.Interval_gen.weighting) intervals
  in
  {
    design;
    config;
    intervals;
    pin_ids;
    pin_slot;
    pin_candidates;
    cliques;
    profits;
    clique_index = None;
  }

let build_panel config design ~panel =
  of_intervals config design (Interval_gen.generate_panel config design ~panel)

let build_panels config design ~panels =
  let chunks =
    List.map (fun panel -> Interval_gen.generate_panel config design ~panel) panels
  in
  let total = List.fold_left (fun n a -> n + Array.length a) 0 chunks in
  let intervals = ref [] in
  let offset = ref 0 in
  List.iter
    (fun chunk ->
      Array.iter
        (fun (iv : Access_interval.t) ->
          intervals :=
            { iv with Access_interval.id = iv.Access_interval.id + !offset }
            :: !intervals)
        chunk;
      offset := !offset + Array.length chunk)
    chunks;
  assert (!offset = total);
  of_intervals config design (Array.of_list (List.rev !intervals))

let num_pins t = Array.length t.pin_ids
let num_intervals t = Array.length t.intervals
let num_cliques t = Array.length t.cliques
let slot_of_pin t pid = Hashtbl.find t.pin_slot pid

let minimum_intervals t ~slot =
  let pid = t.pin_ids.(slot) in
  let primary = Netlist.Pin.primary_track (Netlist.Design.pin t.design pid) in
  let mins =
    Array.to_list t.pin_candidates.(slot)
    |> List.filter (fun id ->
           let iv = t.intervals.(id) in
           Access_interval.is_minimum iv
           && iv.Access_interval.pins = [ pid ])
  in
  let is_primary id = t.intervals.(id).Access_interval.track = primary in
  List.filter is_primary mins @ List.filter (fun id -> not (is_primary id)) mins

let minimum_interval t ~slot =
  match minimum_intervals t ~slot with
  | id :: _ -> id
  | [] ->
    Cpr_error.infeasible "Problem.minimum_interval: pin %d has no minimum"
      t.pin_ids.(slot)

let cliques_of_interval t id =
  let index =
    match t.clique_index with
    | Some index -> index
    | None ->
      let index = Array.make (Array.length t.intervals) [] in
      Array.iteri
        (fun m (clique : Conflict.clique) ->
          Array.iter
            (fun member -> index.(member) <- m :: index.(member))
            clique.Conflict.members)
        t.cliques;
      t.clique_index <- Some index;
      index
  in
  index.(id)

let summary t =
  Printf.sprintf "%d pins, %d intervals, %d conflict sets" (num_pins t)
    (num_intervals t) (num_cliques t)
