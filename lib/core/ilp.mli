(** The binary ILP formulation of concurrent pin access optimization
    (paper Formula (1)) and its exact solution.

    Objective (1a): maximize [Σ_j Σ_{i∈S_j} f(I_i) x_i] — an interval
    serving several pins is counted once per pin.  Constraint (1b): one
    interval per pin.  Constraint (1c): at most one interval per
    conflict clique.  Theorem 1 (feasibility through minimum intervals)
    guarantees the solver never raises [Solver.Milp.Infeasible] on a
    well-formed instance. *)

type result = {
  solution : Solution.t;
  objective : float;
  nodes : int;  (** branch-and-bound nodes explored *)
  proven_optimal : bool;
  root_lp_bound : float option;
}

val to_milp : Problem.t -> Solver.Milp.problem
(** The raw 0-1 program: one [Choose_one] row per pin, one
    [At_most_one] row per conflict clique. *)

val solve :
  ?time_limit:float ->
  ?warm_start:Solution.t ->
  ?root_lp:bool ->
  ?budget:Budget.t ->
  Problem.t ->
  result
(** Exact branch-and-bound; [warm_start] (typically the LR solution)
    provides the initial incumbent; [root_lp] additionally solves the
    LP relaxation at the root.  [budget] bounds the search by whatever
    deadline/work allowance it has left (branch-and-bound nodes are the
    work unit, spent back into the budget); the tighter of [time_limit]
    and the budget deadline wins.  With either limit the result may
    carry [proven_optimal = false] — the anytime contract still returns
    the best feasible incumbent. *)

val lp_relaxation_bound : Problem.t -> float option
(** Optimal value of the LP relaxation via the in-repo simplex. *)
