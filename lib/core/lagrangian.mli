(** Lagrangian relaxation for the weighted interval assignment problem
    (paper Sec. 3.4, Algorithms 1 and 2).

    The clique constraints (1c) are relaxed into the objective with
    multipliers [λ_m]; each subproblem keeps only the one-interval-per-
    pin constraints and is solved by the greedy [maxGains]; multipliers
    follow the subgradient step [λ ← max(0, λ + t_k (Σx − 1))] with
    [t_k = L_m / k^α] where [L_m] is the length of the clique's common
    intersection.  The minimum-violation iterate is kept and finished
    by greedy conflict removal. *)

type config = {
  max_iterations : int;  (** the paper's UB, 200 *)
  alpha : float;  (** step-size exponent, 0.95 *)
  constant_step : float option;
      (** ablation: [Some t] replaces the decaying [t_k] by a constant
          step [t * L_m]; [None] is the paper's schedule *)
  full_subgradient : bool;
      (** [true] (default) applies Eq. (3) to every clique with a
          positive multiplier or a violation, letting multipliers of
          resolved cliques decay; [false] reproduces Algorithm 1
          literally and only increases multipliers of violated
          cliques. *)
  plateau_exit : int option;
      (** engineering addition: stop after this many iterations without
          a new best (min-violation) iterate; [None] reproduces the
          paper exactly (run to UB) *)
  stall_halving : bool;
      (** step-schedule policy ([lib/tune]): halve the step once per 10
          iterations without a new best iterate, escaping oscillation
          plateaus with smaller moves; [false] (default) is the paper's
          pure [1/k^alpha] decay, bit-identical to the pre-policy
          solver *)
  warm_scale : float;
      (** step-schedule policy ([lib/tune]): multiply every step by
          this factor when the solve was [warm_start]ed — multipliers
          near a previous optimum want smaller corrections; [1.0]
          (default) leaves the schedule untouched (bit-identical) and
          cold solves never scale *)
}

val default_config : config

type iterate = { iteration : int; violations : int; relaxed_objective : float }

type result = {
  solution : Solution.t;
      (** conflict-free after refinement, except for unrepairable
          all-minimum cliques introduced by a non-zero design-rule
          clearance (physically disjoint; counted by
          [Solution.num_violations]) *)
  iterations : int;  (** LR iterations actually run *)
  best_violations : int;  (** violations of the best iterate, pre-refinement *)
  shrinks : int;  (** refinement shrink operations *)
  budget_expired : bool;
      (** the budget stopped the subgradient loop before its own exit
          criteria (UB, plateau or zero violations); the solution is
          the refined best-so-far iterate *)
  history : iterate list;  (** per-iteration trace, oldest first *)
  multipliers : float array;
      (** final multiplier vector [λ], one per clique in
          [Problem.cliques] order — the state a later solve of a
          similar problem can warm-start from *)
}

val multipliers : result -> float array
(** [multipliers r] is the final multiplier vector of the solve (the
    [multipliers] field; exposed as a function for pipelining). *)

val dual_bound : result -> float option
(** The solver's claimed Lagrangian upper bound on the optimum: the
    smallest relaxed objective over the subgradient history, [None]
    when no iteration ran.  Claimed, not certified: the relaxed
    subproblems are solved by the greedy [maxGains], which is exact
    only when every interval serves a single pin — an independent
    audit should treat this as the solver's self-reported bound and
    pair it with a bound it derives itself (e.g.
    [Audit.upper_bound]). *)

val solve :
  ?config:config ->
  ?budget:Budget.t ->
  ?warm_start:float array ->
  Problem.t ->
  result
(** [budget] is checked once per subgradient iteration (one work unit
    each); on expiry the best-so-far iterate is refined and returned —
    the solver never raises on exhaustion.

    [warm_start] initializes the multiplier vector (and the derived
    per-interval penalties) from a previous solve's [multipliers]
    instead of zeros — one entry per clique in [Problem.cliques] order,
    clamped to [>= 0].  Raises [Invalid_argument] on a length mismatch.
    Warm-starting from the converged multipliers of a nearby problem
    typically re-converges in far fewer subgradient iterations; the
    result is still a valid (refined, conflict-free) solution either
    way, though not necessarily the same optimum a cold solve finds. *)

val max_gains : Problem.t -> gains:float array -> int array
(** One greedy subproblem solve (Algorithm 1, [maxGains]): per pin
    slot, the selected interval id.  Intervals are scanned by
    non-increasing gain, ties broken by the number of same-net pins
    served; an interval is selected only if all its pins are still
    unassigned.  Exposed for tests and benches. *)
