(** Monotonic-enough process timing without a [unix] dependency.

    The paper reports "cpu(s)"; the default clock is [Sys.time]
    (processor seconds), which is what the benches print.

    This is a thin alias for {!Obs.Clock}, the single clock shared by
    solve budgets and tracing spans — faking the clock with
    [Obs.Clock.with_source] in a test fakes budget expiry and span
    timestamps together. *)

val now : unit -> float
val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f] and returns its result with the elapsed cpu
    seconds. *)
