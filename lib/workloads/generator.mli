(** Synthetic placed-circuit generator.

    The paper evaluates on the PARR benchmarks (six placed blocks with
    known net counts and die sizes); those placements are not
    available, so this generator reproduces their observable structure:
    standard cell rows of 10 M2 tracks, cells of 4–10 grid columns
    carrying 1–4 M1 pins each (short vertical shapes on the middle
    tracks), nets formed by partitioning pins with strong locality
    (mostly 2-pin, row-local nets — lower-layer routing is for short
    nets), and a sprinkle of pre-existing M2 blockages. *)

type params = {
  name : string;
  width : int;  (** grid columns *)
  height : int;  (** M2 tracks; multiple of [row_height] *)
  row_height : int;
  num_nets : int;
  degree_weights : (int * float) list;
      (** net degree distribution, e.g. [(2, 0.6); (3, 0.25); (4, 0.15)] *)
  locality_rows : int;  (** max row distance between a net's pins *)
  locality_cols : int;  (** max column distance *)
  blockage_per_row : float;  (** expected blockage segments per row *)
  span_mean : int option;
      (** mean horizontal net span in grids; [None] (default) derives
          it from die capacity and net count, so dense blocks get
          proportionally local nets *)
  seed : int64;
}

val default_params : params

val with_size :
  ?params:params -> name:string -> nets:int -> width:int -> height:int -> seed:int64 -> unit -> params

val tpl_stress_params :
  ?rows:int -> nets:int -> width:int -> seed:int64 -> unit -> params
(** Dense triple-patterning stress preset: short 2-pin row-local nets
    packed onto a narrow die ([rows] cell rows, default 2) so selected
    access intervals crowd into the same track windows — the regime
    where same-color spacing and stitch handling actually bind.  Used
    by the [tpl] bench experiment. *)

val random_params : ?max_nets:int -> seed:int64 -> unit -> params
(** Small randomized parameters for differential fuzzing, derived
    deterministically from [seed]: 1–3 rows, 16–48 columns, a net count
    kept well under the die's pin-site capacity (at most [max_nets],
    default 24), varied degree distributions, blockage densities and
    span targets.  The same seed always yields the same params, so a
    failing fuzz case is reproducible from its seed alone. *)

val generate : params -> Netlist.Design.t
(** @raise Invalid_argument when the die cannot host the requested
    pin count. *)
