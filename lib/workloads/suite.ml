type circuit = {
  id : string;
  nets : int;
  um_width : int;
  um_height : int;
  seed : int64;
}

(* Net counts and die sizes from Table 2. *)
let circuits =
  [
    { id = "ecc"; nets = 1671; um_width = 21; um_height = 21; seed = 101L };
    { id = "efc"; nets = 2219; um_width = 20; um_height = 19; seed = 102L };
    { id = "ctl"; nets = 2706; um_width = 24; um_height = 24; seed = 103L };
    { id = "alu"; nets = 3108; um_width = 20; um_height = 19; seed = 104L };
    { id = "div"; nets = 5813; um_width = 31; um_height = 31; seed = 105L };
    { id = "top"; nets = 22201; um_width = 57; um_height = 56; seed = 106L };
  ]

(* Synthetic scale tier an order of magnitude past the suite: 10x the
   nets of [top] on a proportionally grown die.  Deliberately NOT in
   [circuits] — tests and experiments that sweep the whole suite must
   not pick up a 222k-net design by accident; callers opt in via
   [find "mega"] (or [mega] directly) and should pair it with
   [Pin_access.optimize ~stream:true] so panel problems are built as
   solved rather than held resident. *)
let mega =
  { id = "mega"; nets = 222010; um_width = 180; um_height = 177; seed = 777L }

let find id =
  if id = mega.id then mega else List.find (fun c -> c.id = id) circuits

let grids_per_um = 10

let design ?(scale = 1.0) c =
  if scale <= 0.0 || scale > 1.0 then invalid_arg "Suite.design: bad scale";
  let shrink dim =
    max 2 (int_of_float (Float.round (float_of_int dim *. sqrt scale)))
  in
  let nets = max 8 (int_of_float (Float.round (float_of_int c.nets *. scale))) in
  let width = shrink c.um_width * grids_per_um in
  let height = shrink c.um_height * grids_per_um in
  Generator.generate
    (Generator.with_size ~name:c.id ~nets ~width ~height ~seed:c.seed ())

(* Pin density matching the suite (~2.55 pins/net, ~7.4 nets/um^2). *)
let sweep_design ~pins =
  let nets = max 4 (pins * 100 / 218) in
  let um = max 3 (int_of_float (ceil (sqrt (float_of_int nets /. 3.8)))) in
  let width = um * grids_per_um and height = um * grids_per_um in
  Generator.generate
    (Generator.with_size
       ~name:(Printf.sprintf "sweep%d" pins)
       ~nets ~width ~height ~seed:(Int64.of_int (7000 + pins)) ())
