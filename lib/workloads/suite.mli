(** The paper's benchmark suite (Table 2): net counts and die sizes of
    the six PARR circuits, mapped to the repo's synthetic generator at
    10 grids per micron (one standard cell row = 10 M2 tracks = 1 um).

    [scale] shrinks a circuit (nets and die area together) for quick
    runs; 1.0 reproduces the paper's sizes. *)

type circuit = {
  id : string;  (** ecc, efc, ctl, alu, div, top *)
  nets : int;
  um_width : int;
  um_height : int;
  seed : int64;
}

val circuits : circuit list
(** The six Table-2 circuits only — {!mega} is deliberately excluded
    so suite-wide sweeps never pick it up by accident. *)

val mega : circuit
(** A synthetic scale tier at 10x [top] (222,010 nets, 180x177 um).
    Opt-in via [find "mega"] or directly; pair with
    [Pin_access.optimize ~stream:true] so panel problems are built as
    they are solved instead of held resident. *)

val find : string -> circuit
(** Resolves the six suite ids plus ["mega"].
    @raise Not_found for unknown ids. *)

val design : ?scale:float -> circuit -> Netlist.Design.t

val sweep_design : pins:int -> Netlist.Design.t
(** A multi-panel instance with roughly [pins] I/O pins for the Fig. 6
    LR-vs-ILP scalability sweep. *)
