module I = Geometry.Interval
module Design = Netlist.Design
module Pin = Netlist.Pin
module Net = Netlist.Net
module Blockage = Netlist.Blockage
module Delta = Eco.Delta

(* A column is usable for pin metal at [tracks] if no existing pin
   overlaps it and none of its tracks is M2-blocked there — the latter
   keeps interval generation from ever seeing a pin whose access
   tracks are walled off (Pin_unreachable). *)
let shape_free design ~x ~tracks =
  x >= 0
  && x < Design.width design
  && I.lo tracks >= 0
  && I.hi tracks < Design.height design
  && Design.panel_of_track design (I.lo tracks)
     = Design.panel_of_track design (I.hi tracks)
  && Array.for_all
       (fun (p : Pin.t) ->
         p.Pin.x <> x || not (I.overlaps p.Pin.tracks tracks))
       (Design.pins design)
  &&
  let ok = ref true in
  for t = I.lo tracks to I.hi tracks do
    if
      List.exists
        (fun span -> I.contains span x)
        (Design.m2_blockages_on_track design t)
    then ok := false
  done;
  !ok

let random_pin (rng : Rng.t) design =
  let pins = Design.pins design in
  if Array.length pins = 0 then None else Some pins.(Rng.int rng (Array.length pins))

(* Move a pin to a nearby free column, keeping its track span (and
   therefore its panel). *)
let propose_move rng design =
  match random_pin rng design with
  | None -> None
  | Some p ->
    let x = p.Pin.x + Rng.in_range rng ~lo:(-8) ~hi:8 in
    if x <> p.Pin.x && shape_free design ~x ~tracks:p.Pin.tracks then
      Some
        (Delta.Move_pin
           {
             from_ = { Delta.at_x = p.Pin.x; at_track = I.lo p.Pin.tracks };
             shape = { Delta.x; tracks = p.Pin.tracks };
           })
    else None

let random_shape_near rng design ~x0 ~track0 =
  let x = x0 + Rng.in_range rng ~lo:(-6) ~hi:6 in
  let panel = Design.panel_of_track design track0 in
  let ptracks = Design.panel_tracks design panel in
  let len = Rng.in_range rng ~lo:1 ~hi:2 in
  let lo =
    min (max (I.lo ptracks) (track0 - 1)) (I.hi ptracks - len + 1)
  in
  let tracks = I.make ~lo ~hi:(lo + len - 1) in
  if shape_free design ~x ~tracks then Some { Delta.x; tracks } else None

let propose_add_pin rng design =
  match random_pin rng design with
  | None -> None
  | Some p -> (
    let net = (Design.net design p.Pin.net).Net.name in
    match
      random_shape_near rng design ~x0:p.Pin.x ~track0:(I.lo p.Pin.tracks)
    with
    | Some shape -> Some (Delta.Add_pin { net; shape })
    | None -> None)

let propose_remove_pin rng design =
  (* keep the design non-trivial: only shrink nets of degree >= 2, and
     never below 2 nets total *)
  if Array.length (Design.nets design) < 2 then None
  else
    match random_pin rng design with
    | Some p when List.length (Design.net_pins design p.Pin.net) >= 2 ->
      Some (Delta.Remove_pin { Delta.at_x = p.Pin.x; at_track = I.lo p.Pin.tracks })
    | _ -> None

let fresh_name design rng =
  let taken = Hashtbl.create 16 in
  Array.iter
    (fun (n : Net.t) -> Hashtbl.replace taken n.Net.name ())
    (Design.nets design);
  let rec go k =
    if k > 1000 then None
    else
      let name = Printf.sprintf "eco%d" (Rng.int rng 100000) in
      if Hashtbl.mem taken name then go (k + 1) else Some name
  in
  go 0

let propose_add_net rng design =
  match (random_pin rng design, fresh_name design rng) with
  | Some anchor, Some name -> (
    let x0 = anchor.Pin.x and track0 = I.lo anchor.Pin.tracks in
    match random_shape_near rng design ~x0 ~track0 with
    | None -> None
    | Some first -> (
      (* second pin nearby, not colliding with the first *)
      let attempt () =
        match
          random_shape_near rng design ~x0:(first.Delta.x + Rng.in_range rng ~lo:(-6) ~hi:6) ~track0
        with
        | Some s
          when s.Delta.x <> first.Delta.x
               || not (I.overlaps s.Delta.tracks first.Delta.tracks) ->
          Some s
        | _ -> None
      in
      match attempt () with
      | Some second -> Some (Delta.Add_net { name; pins = [ first; second ] })
      | None -> Some (Delta.Add_net { name; pins = [ first ] })))
  | _ -> None

let propose_remove_net rng design =
  let nets = Design.nets design in
  if Array.length nets <= 4 then None
  else Some (Delta.Remove_net nets.(Rng.int rng (Array.length nets)).Net.name)

let propose_add_blockage rng design =
  let m3 = Rng.float rng < 0.3 in
  if m3 then begin
    let track = Rng.int rng (Design.width design) in
    let lo = Rng.int rng (Design.height design) in
    let hi = min (Design.height design - 1) (lo + Rng.in_range rng ~lo:0 ~hi:4) in
    Some
      (Delta.Add_blockage
         (Blockage.make ~layer:Blockage.M3 ~track ~span:(I.make ~lo ~hi)))
  end
  else begin
    let track = Rng.int rng (Design.height design) in
    let lo = Rng.int rng (Design.width design) in
    let hi = min (Design.width design - 1) (lo + Rng.in_range rng ~lo:0 ~hi:5) in
    let span = I.make ~lo ~hi in
    (* never wall off a pin's access: the span must avoid every column
       of every pin covering this track *)
    let clear =
      List.for_all
        (fun (p : Pin.t) -> not (I.contains span p.Pin.x))
        (Design.pins_on_track design track)
      && List.for_all
           (fun existing -> not (I.overlaps existing span))
           (Design.m2_blockages_on_track design track)
    in
    if clear then
      Some
        (Delta.Add_blockage
           (Blockage.make ~layer:Blockage.M2 ~track ~span))
    else None
  end

let propose_remove_blockage rng design =
  match Design.blockages design with
  | [] -> None
  | bs ->
    let arr = Array.of_list bs in
    Some (Delta.Remove_blockage arr.(Rng.int rng (Array.length arr)))

let propose_set_clearance rng _design =
  Some (Delta.Set_clearance (Rng.int rng 2))

let propose rng design =
  match
    Rng.choose_weighted rng
      [
        (0, 0.40) (* move *);
        (1, 0.15) (* add pin *);
        (2, 0.10) (* remove pin *);
        (3, 0.08) (* add net *);
        (4, 0.05) (* remove net *);
        (5, 0.12) (* add blockage *);
        (6, 0.07) (* remove blockage *);
        (7, 0.03) (* set clearance *);
      ]
  with
  | 0 -> propose_move rng design
  | 1 -> propose_add_pin rng design
  | 2 -> propose_remove_pin rng design
  | 3 -> propose_add_net rng design
  | 4 -> propose_remove_net rng design
  | 5 -> propose_add_blockage rng design
  | 6 -> propose_remove_blockage rng design
  | _ -> propose_set_clearance rng design

let random ~seed ~steps ~edits_per_step design =
  let rng = Rng.create seed in
  let cur = ref design in
  let batches = ref [] in
  for _ = 1 to steps do
    let batch = ref [] in
    let edits = ref 0 in
    let attempts = ref 0 in
    while !edits < edits_per_step && !attempts < edits_per_step * 50 do
      incr attempts;
      match propose rng !cur with
      | None -> ()
      | Some d -> (
        (* the generator's screens are heuristic; Delta.apply is the
           authority, and a rejected proposal is simply dropped *)
        match Delta.apply !cur d with
        | next ->
          cur := next;
          batch := d :: !batch;
          incr edits
        | exception Delta.Invalid _ -> ())
    done;
    if !batch <> [] then batches := List.rev !batch :: !batches
  done;
  List.rev !batches

(* Pins whose whole net lives inside one panel: moving one inside that
   panel cannot dirty any other panel (the net bbox stays inside it). *)
let panel_local_pins design ~panel =
  let net_panels = Hashtbl.create 64 in
  Array.iter
    (fun (p : Pin.t) ->
      let pl = Design.panel_of_track design (I.lo p.Pin.tracks) in
      let cur =
        Option.value ~default:[] (Hashtbl.find_opt net_panels p.Pin.net)
      in
      if not (List.mem pl cur) then Hashtbl.replace net_panels p.Pin.net (pl :: cur))
    (Design.pins design);
  List.filter
    (fun (p : Pin.t) ->
      match Hashtbl.find_opt net_panels p.Pin.net with
      | Some [ _ ] -> true
      | _ -> false)
    (Design.pins_of_panel design panel)

let local_moves ~seed ~steps ~dirty_fraction design =
  let rng = Rng.create seed in
  let cur = ref design in
  let batches = ref [] in
  for _ = 1 to steps do
    let num_panels = Design.num_panels !cur in
    let k =
      max 1
        (int_of_float (Float.ceil (dirty_fraction *. float_of_int num_panels)))
    in
    let panels = Array.init num_panels Fun.id in
    Rng.shuffle rng panels;
    let batch = ref [] in
    Array.iteri
      (fun i panel ->
        if i < k then begin
          let candidates = Array.of_list (panel_local_pins !cur ~panel) in
          if Array.length candidates > 0 then begin
            let moved = ref false in
            let attempts = ref 0 in
            while (not !moved) && !attempts < 20 do
              incr attempts;
              let p = candidates.(Rng.int rng (Array.length candidates)) in
              let x = p.Pin.x + Rng.in_range rng ~lo:(-8) ~hi:8 in
              if x <> p.Pin.x && shape_free !cur ~x ~tracks:p.Pin.tracks then begin
                let d =
                  Delta.Move_pin
                    {
                      from_ =
                        { Delta.at_x = p.Pin.x; at_track = I.lo p.Pin.tracks };
                      shape = { Delta.x; tracks = p.Pin.tracks };
                    }
                in
                match Delta.apply !cur d with
                | next ->
                  cur := next;
                  batch := d :: !batch;
                  moved := true
                | exception Delta.Invalid _ -> ()
              end
            done
          end
        end)
      panels;
    if !batch <> [] then batches := List.rev !batch :: !batches
  done;
  List.rev !batches
