module I = Geometry.Interval

type pin = {
  pin_name : string;
  offset : int;
  tracks : I.t;
}

type cell = {
  cell_name : string;
  width : int;
  pins : pin list;
}

type params = {
  cells : int;
  row_height : int;
  min_width : int;
  max_width : int;
  max_pins : int;
  seed : int64;
}

let default_params =
  {
    cells = 24;
    row_height = 10;
    min_width = 4;
    max_width = 10;
    max_pins = 4;
    seed = 1L;
  }

(* gate families, cycled so a 24-cell library reads like a cell shelf *)
let families =
  [| "inv"; "buf"; "nand2"; "nor2"; "aoi21"; "oai22"; "xor2"; "mux2"; "dff" |]

let pin_names = [| "A"; "B"; "C"; "D"; "E"; "F" |]

let validate p =
  if p.cells < 1 then invalid_arg "Cell_lib.generate: cells < 1";
  if p.min_width < 1 || p.max_width < p.min_width then
    invalid_arg "Cell_lib.generate: bad width range";
  if p.max_pins < 1 then invalid_arg "Cell_lib.generate: max_pins < 1";
  (* pins live on tracks 1 .. row_height - 2 (power rails stay free) *)
  if p.row_height < 4 then invalid_arg "Cell_lib.generate: row too short"

let gen_cell rng p index =
  let width = Rng.in_range rng ~lo:p.min_width ~hi:p.max_width in
  let n_pins = 1 + Rng.int rng (min p.max_pins width) in
  (* distinct columns for the pins, in ascending order *)
  let columns = Array.init width (fun i -> i) in
  Rng.shuffle rng columns;
  let offsets = List.sort Int.compare (Array.to_list (Array.sub columns 0 n_pins)) in
  let lo_track = 1 and hi_track = p.row_height - 2 in
  let pins =
    List.mapi
      (fun i offset ->
        (* 1–4 track spans: single-track pins are deliberately in the
           mix — they are the degenerate case the checker must grade *)
        let h =
          let r = Rng.float rng in
          let h = if r < 0.2 then 1 else if r < 0.5 then 2 else if r < 0.8 then 3 else 4 in
          min h (hi_track - lo_track + 1)
        in
        let start = Rng.in_range rng ~lo:lo_track ~hi:(hi_track - h + 1) in
        {
          pin_name = pin_names.(i mod Array.length pin_names);
          offset;
          tracks = I.make ~lo:start ~hi:(start + h - 1);
        })
      offsets
  in
  let family = families.(index mod Array.length families) in
  { cell_name = Printf.sprintf "%s_%03d" family index; width; pins }

let generate p =
  validate p;
  let rng = Rng.create p.seed in
  List.init p.cells (gen_cell rng p)

let num_pins cells =
  List.fold_left (fun n c -> n + List.length c.pins) 0 cells
