(** Parametric synthetic standard-cell library generator.

    The library pin-access checker ([lib/libcheck]) grades every pin of
    every cell of a library; real libraries are not in the repo, so this
    module synthesizes one with the observable structure the two
    GLOBALFOUNDRIES evaluations describe: cells of 4–10 grid columns,
    1–4 M1 pins each on distinct columns, pin shapes spanning 1–4 M2
    tracks inside the row (power-rail tracks kept free), drawn from a
    fixed set of gate families for readable report rows.  Everything is
    derived deterministically from [seed], so a library — and therefore
    a checker report — is reproducible bit-for-bit from its parameters
    alone. *)

type pin = {
  pin_name : string;
  offset : int;  (** column within the cell, [0 <= offset < width] *)
  tracks : Geometry.Interval.t;
      (** within-row track span, inside [1 .. row_height - 2] *)
}

type cell = {
  cell_name : string;  (** unique within the library, e.g. [nand2_004] *)
  width : int;  (** grid columns *)
  pins : pin list;  (** ascending offset; at least one *)
}

type params = {
  cells : int;
  row_height : int;
  min_width : int;
  max_width : int;
  max_pins : int;  (** per cell; capped by the cell's width *)
  seed : int64;
}

val default_params : params
(** 24 cells, rows of 10 tracks, widths 4–10, up to 4 pins. *)

val generate : params -> cell list
(** The library, in generation order; cell names are unique.
    @raise Invalid_argument on senseless parameters (no cells, widths
    out of order, rows too short for any pin track). *)

val num_pins : cell list -> int
(** Total pin count of a library. *)
