module I = Geometry.Interval

type params = {
  name : string;
  width : int;
  height : int;
  row_height : int;
  num_nets : int;
  degree_weights : (int * float) list;
  locality_rows : int;
  locality_cols : int;
  blockage_per_row : float;
  span_mean : int option;
      (* mean horizontal net span; [None] derives it from the die's M2
         capacity so denser blocks get the shorter, more local nets
         they must have to be routable (the paper's alu vs ecc) *)
  seed : int64;
}

let default_params =
  {
    name = "synthetic";
    width = 210;
    height = 210;
    row_height = 10;
    num_nets = 1671;
    degree_weights = [ (2, 0.85); (3, 0.12); (4, 0.03) ];
    locality_rows = 2;
    locality_cols = 35;
    blockage_per_row = 1.5;
    span_mean = None;
    seed = 1L;
  }

let with_size ?(params = default_params) ~name ~nets ~width ~height ~seed () =
  { params with name; num_nets = nets; width; height; seed }

let random_params ?(max_nets = 24) ~seed () =
  let rng = Rng.create seed in
  let rows = 1 + Rng.int rng 3 in
  let width = Rng.in_range rng ~lo:16 ~hi:48 in
  (* cap demand at ~1/3 of the pin-site slots so generation never has
     to grow the die and stays in the quick-to-route regime *)
  let cap = max 2 (width * rows / 3) in
  let nets = max 2 (min (min max_nets cap) (2 + Rng.int rng cap)) in
  let degree_weights =
    match Rng.int rng 3 with
    | 0 -> [ (2, 1.0) ]
    | 1 -> [ (2, 0.7); (3, 0.3) ]
    | _ -> [ (2, 0.6); (3, 0.25); (4, 0.15) ]
  in
  {
    default_params with
    name = Printf.sprintf "fuzz-%Lx" seed;
    width;
    height = rows * default_params.row_height;
    num_nets = nets;
    degree_weights;
    locality_rows = rows;
    locality_cols = max 4 (width / 2);
    blockage_per_row = float_of_int (Rng.int rng 4) *. 0.5;
    span_mean = (if Rng.float rng < 0.5 then Some (2 + Rng.int rng 8) else None);
    seed;
  }

(* TPL stress preset: pack short 2-pin nets onto a narrow die so the
   selected access intervals crowd into the same track windows — the
   regime where same-color spacing, stitches and color cliques actually
   bind (a sparse die colors trivially with 3 masks). *)
let tpl_stress_params ?(rows = 2) ~nets ~width ~seed () =
  {
    default_params with
    name = Printf.sprintf "tpl-stress-%Lx" seed;
    width;
    height = rows * default_params.row_height;
    num_nets = nets;
    degree_weights = [ (2, 1.0) ];
    locality_rows = 1;
    locality_cols = max 4 (width / 4);
    blockage_per_row = 0.5;
    span_mean = Some 4;
    seed;
  }

type site = {
  sx : int;
  srow : int;
  tracks : I.t;
  mutable net : int; (* -1 = unassigned *)
}

(* Pin sites: each column of each row has two M1 pin zones (the lower
   and upper middle tracks of the cell), each hosting a short vertical
   pin shape with probability [density].  The paper's circuits put
   close to one pin on every column (alu: ~1.8), which is exactly the
   contention regime concurrent pin access targets. *)
let cell_sites rng params ~density =
  let rows = params.height / params.row_height in
  let half = params.row_height / 2 in
  let zones =
    [ (1, half - 1); (half + 1, params.row_height - 2) ]
    (* track offsets within a row; track 0 and the top track stay free
       (power-rail adjacency) and the zones are 2 tracks apart so
       stacked pins never force adjacent via cuts *)
  in
  let sites = ref [] in
  for row = 0 to rows - 1 do
    let base_track = row * params.row_height in
    for x = 0 to params.width - 1 do
      List.iter
        (fun (zlo, zhi) ->
          if Rng.float rng < density then begin
            let zh = zhi - zlo + 1 in
            (* M1 pin shapes are short vertical stripes spanning 2-4
               tracks (paper Fig. 3 shows a 3-track pin): tall enough
               that adjacent pins can stagger their access tracks *)
            let h =
              let r = Rng.float rng in
              min zh (if r < 0.3 then 2 else if r < 0.7 then 3 else 4)
            in
            let start = Rng.in_range rng ~lo:zlo ~hi:(zhi - h + 1) in
            sites :=
              {
                sx = x;
                srow = row;
                tracks =
                  I.make ~lo:(base_track + start)
                    ~hi:(base_track + start + h - 1);
                net = -1;
              }
              :: !sites
          end)
        zones
    done
  done;
  Array.of_list !sites

(* Partition the sampled sites into nets with locality: each net takes
   an unassigned anchor plus its nearest unassigned sites inside a
   window that widens until enough are found. *)
let derived_span_mean params =
  match params.span_mean with
  | Some m -> max 2 m
  | None ->
    (* total M2 demand ~ nets * (span + access overhead) at ~45% of the
       die's M2 grids *)
    let capacity = 0.45 *. float_of_int (params.width * params.height) in
    let per_net = capacity /. float_of_int params.num_nets in
    max 2 (min 16 (int_of_float per_net - 4))

let partition rng params sites degrees =
  let span_mean = derived_span_mean params in
  let by_row = Array.make (params.height / params.row_height) [] in
  Array.iter (fun s -> by_row.(s.srow) <- s :: by_row.(s.srow)) sites;
  Array.iteri
    (fun i l ->
      by_row.(i) <- List.sort (fun a b -> Int.compare a.sx b.sx) l)
    by_row;
  let rows = Array.length by_row in
  let pool = Array.copy sites in
  Rng.shuffle rng pool;
  let pool_pos = ref 0 in
  let next_anchor () =
    while !pool_pos < Array.length pool && pool.(!pool_pos).net >= 0 do
      incr pool_pos
    done;
    if !pool_pos < Array.length pool then Some pool.(!pool_pos) else None
  in
  let candidates anchor ~row_window ~col_window =
    let out = ref [] in
    for row = max 0 (anchor.srow - row_window)
        to min (rows - 1) (anchor.srow + row_window) do
      List.iter
        (fun s ->
          if s.net < 0 && s != anchor && abs (s.sx - anchor.sx) <= col_window
          then out := s :: !out)
        by_row.(row)
    done;
    !out
  in
  let assign net anchor need =
    anchor.net <- net;
    let rec gather row_window col_window =
      let found = candidates anchor ~row_window ~col_window in
      if List.length found >= need || (row_window >= rows && col_window >= params.width)
      then found
      else gather (row_window * 2) (col_window * 2)
    in
    let found = gather params.locality_rows params.locality_cols in
    let dist s = abs (s.sx - anchor.sx) + (abs (s.srow - anchor.srow) * params.row_height) in
    (* Real short nets connect a cell to logic a few cells away, not to
       the adjacent column: sample a target distance per connection and
       take the unassigned site closest to it.  This sets the M2
       routing demand (average net wirelength) that pin access
       optimization competes over. *)
    for _ = 1 to need do
      let target = 2 + Rng.int rng (max 1 ((2 * span_mean) - 2)) in
      let best = ref None in
      List.iter
        (fun s ->
          if s.net < 0 then begin
            let score = abs (dist s - target) in
            match !best with
            | Some (_, bs) when bs <= score -> ()
            | Some _ | None -> best := Some (s, score)
          end)
        found;
      match !best with
      | Some (s, _) -> s.net <- net
      | None ->
        (* window exhausted: fall back to any unassigned site *)
        let wide = gather rows params.width in
        (match List.find_opt (fun s -> s.net < 0) wide with
        | Some s -> s.net <- net
        | None -> invalid_arg "Generator.generate: ran out of pin sites")
    done
  in
  Array.iteri
    (fun net degree ->
      match next_anchor () with
      | Some anchor -> assign net anchor (degree - 1)
      | None -> invalid_arg "Generator.generate: ran out of pin sites")
    degrees

let blockages rng params sites =
  let rows = params.height / params.row_height in
  let sites_by_row = Array.make rows [] in
  Array.iter
    (fun s -> if s.net >= 0 then sites_by_row.(s.srow) <- s :: sites_by_row.(s.srow))
    sites;
  let out = ref [] in
  for row = 0 to rows - 1 do
    let base = row * params.row_height in
    let count =
      int_of_float params.blockage_per_row
      + (if Rng.float rng < Float.rem params.blockage_per_row 1.0 then 1 else 0)
    in
    for _ = 1 to count do
      let len = Rng.in_range rng ~lo:3 ~hi:12 in
      if params.width > len then begin
        let x0 = Rng.int rng (params.width - len) in
        let track = base + Rng.int rng params.row_height in
        let span = I.make ~lo:x0 ~hi:(x0 + len - 1) in
        let clashes =
          List.exists
            (fun s -> I.contains span s.sx && I.contains s.tracks track)
            sites_by_row.(row)
        in
        if not clashes then
          out :=
            Netlist.Blockage.make ~layer:Netlist.Blockage.M2 ~track ~span
            :: !out
      end
    done
  done;
  !out

let generate params =
  let rng = Rng.create params.seed in
  let degrees =
    Array.init params.num_nets (fun _ ->
        Rng.choose_weighted rng params.degree_weights)
  in
  let total_pins = Array.fold_left ( + ) 0 degrees in
  (* Above ~0.82 pins per site slot the placement stops being
     legalizable under the SADP clearances, so the die grows minimally
     instead (the paper's densest blocks, alu and top, would otherwise
     exceed 1.0 under this site model; see DESIGN.md). *)
  let max_density = 0.82 in
  let rows = params.height / params.row_height in
  let needed = 1.12 *. float_of_int total_pins in
  let params =
    let slots = 2 * params.width * rows in
    if needed > max_density *. float_of_int slots then
      let width =
        int_of_float (ceil (needed /. (max_density *. 2.0 *. float_of_int rows)))
      in
      { params with width }
    else params
  in
  let slots = 2 * params.width * rows in
  let density = Float.min max_density (needed /. float_of_int slots) in
  let all_sites = cell_sites rng params ~density in
  if Array.length all_sites < total_pins then
    invalid_arg
      (Printf.sprintf
         "Generator.generate: %d pins requested but only %d sites on the die"
         total_pins (Array.length all_sites));
  Rng.shuffle rng all_sites;
  let sites = Array.sub all_sites 0 total_pins in
  partition rng params sites degrees;
  let blockages = blockages rng params sites in
  (* dense pin ids grouped by net *)
  let net_sites = Array.make params.num_nets [] in
  Array.iter
    (fun s ->
      assert (s.net >= 0);
      net_sites.(s.net) <- s :: net_sites.(s.net))
    sites;
  let pins = ref [] and nets = ref [] in
  let next_pin = ref 0 in
  Array.iteri
    (fun net_id members ->
      let pin_ids =
        List.map
          (fun s ->
            let id = !next_pin in
            incr next_pin;
            pins := Netlist.Pin.make ~id ~net:net_id ~x:s.sx ~tracks:s.tracks :: !pins;
            id)
          members
      in
      nets :=
        Netlist.Net.make ~id:net_id
          ~name:(Printf.sprintf "n%d" net_id)
          ~pins:pin_ids
        :: !nets)
    net_sites;
  Netlist.Design.create ~name:params.name ~width:params.width
    ~height:params.height ~row_height:params.row_height
    ~pins:(List.rev !pins) ~nets:(List.rev !nets) ~blockages ()
