(** Deterministic ECO delta-stream generators for benchmarking and
    differential fuzzing of {!Eco.Engine}.

    Both generators track the evolving design (each emitted delta is
    applied before proposing the next), so every batch in the returned
    stream is valid against the design state it will meet at replay
    time.  Proposals that interval generation could reject later
    (blocking a pin's access tracks, stacking pins) are screened out,
    so replaying a stream never produces an infeasible panel. *)

val random :
  seed:int64 ->
  steps:int ->
  edits_per_step:int ->
  Netlist.Design.t ->
  Eco.Delta.t list list
(** A mixed edit stream: mostly pin moves, plus pin/net insertions and
    removals, M2/M3 blockage churn and the occasional clearance rule
    flip — the fuzz campaign's workload.  Batches that end up empty
    (every proposal rejected) are dropped; the same [seed] always
    yields the same stream for the same input design. *)

val local_moves :
  seed:int64 ->
  steps:int ->
  dirty_fraction:float ->
  Netlist.Design.t ->
  Eco.Delta.t list list
(** The benchmark's "5%-dirty" workload: each step moves one pin in
    [ceil (dirty_fraction * num_panels)] distinct panels, choosing only
    pins of panel-local nets and keeping each move inside its panel —
    so a step dirties exactly those panels and every other panel is a
    guaranteed cache hit. *)
