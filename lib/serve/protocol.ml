type opts = { deadline_ms : int option; work : int option }

let no_opts = { deadline_ms = None; work = None }

type request =
  | Open of string * string
  | Attach of string
  | Edit of string * opts * string
  | Submit of string * string
  | Flush of string * opts
  | Get_design of string
  | Stat of string
  | Checkpoint of string
  | Close of string
  | Sessions
  | Ping
  | Quit

type err_code =
  | Parse
  | Unknown_session
  | Session_exists
  | Invalid_delta
  | Timeout
  | Overloaded
  | Worker_failed
  | Infeasible
  | Malformed_design
  | Wal_corrupt
  | Internal

let err_code_to_string = function
  | Parse -> "parse"
  | Unknown_session -> "unknown_session"
  | Session_exists -> "session_exists"
  | Invalid_delta -> "invalid_delta"
  | Timeout -> "timeout"
  | Overloaded -> "overloaded"
  | Worker_failed -> "worker_failed"
  | Infeasible -> "infeasible"
  | Malformed_design -> "malformed_design"
  | Wal_corrupt -> "wal_corrupt"
  | Internal -> "internal"

let err_code_of_string = function
  | "parse" -> Some Parse
  | "unknown_session" -> Some Unknown_session
  | "session_exists" -> Some Session_exists
  | "invalid_delta" -> Some Invalid_delta
  | "timeout" -> Some Timeout
  | "overloaded" -> Some Overloaded
  | "worker_failed" -> Some Worker_failed
  | "infeasible" -> Some Infeasible
  | "malformed_design" -> Some Malformed_design
  | "wal_corrupt" -> Some Wal_corrupt
  | "internal" -> Some Internal
  | _ -> None

type response =
  | Resp_ok of (string * string) list
  | Resp_err of err_code * string
  | Resp_data of (string * string) list * string

(* -- helpers ----------------------------------------------------------- *)

let split_words line =
  String.split_on_char ' ' line |> List.filter (fun w -> w <> "")

let kv_of_word w =
  match String.index_opt w '=' with
  | Some i ->
    Some (String.sub w 0 i, String.sub w (i + 1) (String.length w - i - 1))
  | None -> None

let field fields k = List.assoc_opt k fields
let int_field fields k = Option.bind (field fields k) int_of_string_opt

let parse_opts words =
  List.fold_left
    (fun acc w ->
      Result.bind acc (fun opts ->
          match kv_of_word w with
          | Some ("deadline_ms", v) -> (
            match int_of_string_opt v with
            | Some n when n >= 0 -> Ok { opts with deadline_ms = Some n }
            | _ -> Error ("bad deadline_ms: " ^ v))
          | Some ("work", v) -> (
            match int_of_string_opt v with
            | Some n when n >= 0 -> Ok { opts with work = Some n }
            | _ -> Error ("bad work: " ^ v))
          | _ -> Error ("unknown option: " ^ w)))
    (Ok no_opts) words

(* Payload lines up to the "." terminator; an EOF before the terminator
   returns what was read (the caller's parse will reject it). *)
let read_payload ~getline =
  let buf = Buffer.create 256 in
  let rec go () =
    match getline () with
    | None | Some "." -> Buffer.contents buf
    | Some line ->
      Buffer.add_string buf line;
      Buffer.add_char buf '\n';
      go ()
  in
  go ()

(* -- requests ---------------------------------------------------------- *)

let read_request ~getline =
  let rec next () =
    match getline () with
    | None -> None
    | Some line ->
      let line = String.trim line in
      if line = "" || line.[0] = '#' then next ()
      else
        Some
          (match split_words line with
          | [ "open"; s ] -> Ok (Open (s, read_payload ~getline))
          | [ "attach"; s ] -> Ok (Attach s)
          | "edit" :: s :: rest -> (
            let body = read_payload ~getline in
            match parse_opts rest with
            | Ok opts -> Ok (Edit (s, opts, body))
            | Error e -> Error e)
          | [ "submit"; s ] -> Ok (Submit (s, read_payload ~getline))
          | "flush" :: s :: rest ->
            Result.map (fun opts -> Flush (s, opts)) (parse_opts rest)
          | [ "design"; s ] -> Ok (Get_design s)
          | [ "stat"; s ] -> Ok (Stat s)
          | [ "checkpoint"; s ] -> Ok (Checkpoint s)
          | [ "close"; s ] -> Ok (Close s)
          | [ "sessions" ] -> Ok Sessions
          | [ "ping" ] -> Ok Ping
          | [ "quit" ] -> Ok Quit
          | cmd :: _
            when cmd = "open" || cmd = "edit" || cmd = "submit" ->
            (* wrong arity on a body-carrying command: stay framed *)
            ignore (read_payload ~getline);
            Error ("malformed " ^ cmd ^ " command")
          | _ -> Error ("unknown command: " ^ line))
  in
  next ()

let opts_to_string opts =
  String.concat ""
    [
      (match opts.deadline_ms with
      | Some n -> Printf.sprintf " deadline_ms=%d" n
      | None -> "");
      (match opts.work with
      | Some n -> Printf.sprintf " work=%d" n
      | None -> "");
    ]

let body_to_string body =
  let body =
    if body = "" || body.[String.length body - 1] = '\n' then body
    else body ^ "\n"
  in
  body ^ ".\n"

let request_to_string = function
  | Open (s, body) -> Printf.sprintf "open %s\n%s" s (body_to_string body)
  | Attach s -> Printf.sprintf "attach %s\n" s
  | Edit (s, opts, body) ->
    Printf.sprintf "edit %s%s\n%s" s (opts_to_string opts) (body_to_string body)
  | Submit (s, body) -> Printf.sprintf "submit %s\n%s" s (body_to_string body)
  | Flush (s, opts) -> Printf.sprintf "flush %s%s\n" s (opts_to_string opts)
  | Get_design s -> Printf.sprintf "design %s\n" s
  | Stat s -> Printf.sprintf "stat %s\n" s
  | Checkpoint s -> Printf.sprintf "checkpoint %s\n" s
  | Close s -> Printf.sprintf "close %s\n" s
  | Sessions -> "sessions\n"
  | Ping -> "ping\n"
  | Quit -> "quit\n"

(* -- responses --------------------------------------------------------- *)

let fields_to_string fields =
  String.concat "" (List.map (fun (k, v) -> Printf.sprintf " %s=%s" k v) fields)

let response_to_string = function
  | Resp_ok fields -> Printf.sprintf "ok%s\n" (fields_to_string fields)
  | Resp_err (code, msg) ->
    (* keep the response one line whatever the message contains *)
    let msg = String.map (function '\n' -> ' ' | c -> c) msg in
    Printf.sprintf "err %s %s\n" (err_code_to_string code) msg
  | Resp_data (fields, payload) ->
    Printf.sprintf "data%s\n%s" (fields_to_string fields)
      (body_to_string payload)

let read_response ~getline =
  let rec next () =
    match getline () with
    | None -> None
    | Some line ->
      let line = String.trim line in
      if line = "" then next ()
      else
        Some
          (match split_words line with
          | "ok" :: rest -> Resp_ok (List.filter_map kv_of_word rest)
          | "err" :: code :: rest ->
            let code =
              Option.value ~default:Internal (err_code_of_string code)
            in
            Resp_err (code, String.concat " " rest)
          | "data" :: rest ->
            Resp_data
              (List.filter_map kv_of_word rest, read_payload ~getline)
          | _ -> Resp_err (Internal, "unparseable response: " ^ line))
  in
  next ()
