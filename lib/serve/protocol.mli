(** The [cpr_serve] wire protocol: line-oriented text over any byte
    stream (stdin/stdout in the shipped binary, a pipe pair in the
    in-process tests and load generator).

    {2 Requests}

    One command per line; commands carrying a body ([open], [edit],
    [submit]) are followed by payload lines terminated by a single
    [.] line.  Bodies reuse the repo's text formats verbatim:
    {!Netlist.Design_io} for designs, {!Eco.Delta} for edit batches.

    {v
    open <session>            # + design payload, "." terminated
    attach <session>          # recover from checkpoint + WAL
    edit <session> [deadline_ms=<n>] [work=<n>]   # + delta payload
    submit <session>          # + delta payload; queue, don't apply
    flush <session> [deadline_ms=<n>] [work=<n>]  # apply the queue
    design <session>          # dump current design
    stat <session>
    checkpoint <session>      # force a checkpoint now
    close <session>           # flush, checkpoint, detach
    sessions
    ping
    quit
    v}

    Blank lines and [#] comments between commands are ignored.

    {2 Responses}

    Exactly one response per request:

    {v
    ok [k=v ...]
    err <code> <message>
    data [k=v ...]            # + payload lines, "." terminated
    v} *)

type opts = { deadline_ms : int option; work : int option }

val no_opts : opts

type request =
  | Open of string * string  (** session, design text *)
  | Attach of string
  | Edit of string * opts * string  (** session, opts, delta text *)
  | Submit of string * string
  | Flush of string * opts
  | Get_design of string
  | Stat of string
  | Checkpoint of string
  | Close of string
  | Sessions
  | Ping
  | Quit

type err_code =
  | Parse  (** malformed request line or body *)
  | Unknown_session
  | Session_exists
  | Invalid_delta  (** batch rejected by {!Eco.Delta.apply_all} *)
  | Timeout  (** deadline exhausted before the batch could land *)
  | Overloaded  (** admission gate or session queue full — shed *)
  | Worker_failed  (** solve failed after bounded retries *)
  | Infeasible  (** {!Pinaccess.Cpr_error.Infeasible_panel} *)
  | Malformed_design
  | Wal_corrupt  (** recovery found an unreadable checkpoint *)
  | Internal

val err_code_to_string : err_code -> string
val err_code_of_string : string -> err_code option

type response =
  | Resp_ok of (string * string) list
  | Resp_err of err_code * string
  | Resp_data of (string * string) list * string
      (** fields, then a "." terminated payload *)

val read_request :
  getline:(unit -> string option) -> (request, string) result option
(** Read one request ([None] at end of stream).  [Error] is a parse
    failure; when the failed command carries a body the body is still
    consumed, so the stream stays framed. *)

val request_to_string : request -> string
(** Wire text of a request, trailing newline included (client side). *)

val response_to_string : response -> string
val read_response : getline:(unit -> string option) -> response option
(** Client side: parse one response ([None] at end of stream). *)

val field : (string * string) list -> string -> string option
val int_field : (string * string) list -> string -> int option
