(** A {!Workloads.Eco_stream}-driven load generator for {!Server}.

    [run] drives [clients] named sessions over one request connection,
    round-robin (the broker is single-threaded; concurrency at this
    layer means interleaved sessions contending for the queue, the
    admission gate and the shared solver pool).  Every client keeps a
    shadow design — the fold of its acknowledged batches — and the
    final [design] dump of each session must equal it byte-for-byte:
    any divergence is reported as a mismatch, so a load run doubles as
    an end-to-end consistency check of the ack contract. *)

type conn = Protocol.request -> Protocol.response
(** One request/response exchange — {!Server.handle} partially applied
    for in-process runs, a pipe writer/reader for the spawned-server
    soak. *)

type config = {
  clients : int;
  steps : int;  (** batches per client *)
  edits_per_step : int;
  seed : int64;
  deadline_ms : int option;  (** attached to every [edit] *)
  session_prefix : string;
  now : unit -> float;  (** wall clock for latency/throughput *)
}

val default : config
(** 4 clients, 25 steps of 3 edits, seed 1, no deadline, prefix
    ["load"], {!Obs.Clock.now}. *)

type outcome = {
  sent : int;  (** batches submitted *)
  acked : int;  (** batches acknowledged ([ok]) *)
  acked_edits : int;  (** individual deltas inside acked batches *)
  timeouts : int;
  shed : int;
  failed : int;  (** every other [err] *)
  wall : float;  (** seconds for the whole run *)
  edits_per_sec : float;  (** [acked_edits /. wall] *)
  p50_ms : float;  (** client-observed edit latency percentiles; *)
  p99_ms : float;  (** [nan] when nothing was acked *)
  mean_ms : float;
  mismatches : string list;
      (** sessions whose final design differs from the shadow fold —
          always empty unless the ack contract is broken *)
}

val run : ?design:Netlist.Design.t -> config -> conn -> outcome
(** Open the sessions (default design: the ["ecc"] suite circuit at
    scale 0.05), stream the edits, dump and compare, close. *)
