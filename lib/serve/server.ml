module P = Protocol
module Engine = Eco.Engine
module Delta = Eco.Delta
module Budget = Pinaccess.Budget
module Fault = Pinaccess.Fault
module Cpr_error = Pinaccess.Cpr_error

let m_requests = Obs.Metrics.counter "serve.requests"
let m_edits_ok = Obs.Metrics.counter "serve.edits_ok"
let m_timeouts = Obs.Metrics.counter "serve.timeouts"
let m_shed = Obs.Metrics.counter "serve.shed"
let m_worker_failures = Obs.Metrics.counter "serve.worker_failures"
let m_retries = Obs.Metrics.counter "serve.retries"
let m_recovered = Obs.Metrics.counter "serve.recovered_sessions"
let m_torn = Obs.Metrics.counter "serve.wal_torn_records"
let m_checkpoints = Obs.Metrics.counter "serve.checkpoints"
let m_latency = Obs.Metrics.sampled "serve.edit_latency_ms"

type config = {
  root : string;
  checkpoint_every : int;
  queue_capacity : int;
  global_capacity : int;
  max_sessions : int;
  default_deadline_ms : int option;
  max_retries : int;
  backoff_ms : float;
  on_backoff : float -> unit;
  audit_on_recover : bool;
  engine : Engine.config;
  jobs : int;
  now : unit -> float;
}

let default_config ~root =
  {
    root;
    checkpoint_every = 32;
    queue_capacity = 64;
    global_capacity = 256;
    max_sessions = 8;
    default_deadline_ms = None;
    max_retries = 2;
    backoff_ms = 10.0;
    on_backoff = (fun _ -> ());
    audit_on_recover = true;
    engine = Engine.default_config;
    jobs = 1;
    now = Obs.Clock.now;
  }

type session = {
  name : string;
  mutable engine : Engine.t;
  mutable wal : Wal.t;
  mutable seq : int;  (* last consumed sequence number *)
  mutable since_checkpoint : int;  (* commits since the last checkpoint *)
  queue : Delta.t list Queue.t;
  mutable queued : int;
}

type t = {
  config : config;
  sessions : (string, session) Hashtbl.t;
  pool : Exec.t option;
  mutable global_queued : int;
}

let create config =
  (* the process-wide persistent pool: broker restarts (and the soak
     harness's create/shutdown cycles) reuse the same worker domains *)
  let pool =
    if config.jobs > 1 then Some (Exec.shared ~domains:config.jobs) else None
  in
  { config; sessions = Hashtbl.create 8; pool; global_queued = 0 }

let session_names t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.sessions [] |> List.sort compare

(* -- helpers ----------------------------------------------------------- *)

let clearance_of engine =
  (Engine.gen_config engine).Pinaccess.Interval_gen.clearance

(* The engine config a session recovered at rule-deck [clearance] must
   start from, so replayed [Set_clearance] deltas fold on the same
   base as the original run. *)
let engine_config_with_clearance (cfg : Engine.config) clearance =
  {
    cfg with
    Engine.pao =
      {
        cfg.Engine.pao with
        Pinaccess.Pin_access.gen =
          { cfg.Engine.pao.Pinaccess.Pin_access.gen with clearance };
      };
  }

let do_checkpoint s =
  Wal.checkpoint s.wal ~seq:s.seq ~clearance:(clearance_of s.engine)
    (Engine.design s.engine);
  s.since_checkpoint <- 0;
  Obs.Metrics.incr m_checkpoints

let err code fmt = Printf.ksprintf (fun msg -> P.Resp_err (code, msg)) fmt

let report_fields ~seq ~degraded (r : Engine.step_report) =
  [
    ("seq", string_of_int seq);
    ("panels", string_of_int r.Engine.panels);
    ("hits", string_of_int r.Engine.cache_hits);
    ("solved", string_of_int r.Engine.solved);
    ("warm", string_of_int r.Engine.warm_started);
    ("degraded", if degraded then "1" else "0");
    ("objective", Printf.sprintf "%.17g" r.Engine.objective);
  ]

(* -- the edit pipeline ------------------------------------------------- *)

(* Failures the retry loop must not absorb: they are deterministic
   verdicts about the batch, not transient worker trouble. *)
let non_retryable = function
  | Delta.Invalid _
  | Cpr_error.Error
      (Cpr_error.Budget_exhausted _ | Cpr_error.Infeasible_panel _) ->
    true
  | _ -> false

(* Run a solve with bounded retries and exponential backoff on
   recoverable (worker-class) exceptions; everything else propagates
   to the caller's specific handlers. *)
let with_retries t f =
  let rec attempt n =
    match f () with
    | v -> Ok v
    | exception e when (not (non_retryable e)) && Cpr_error.recoverable e ->
      if n < t.config.max_retries then begin
        Obs.Metrics.incr m_retries;
        t.config.on_backoff
          (t.config.backoff_ms *. (2.0 ** float_of_int n) /. 1000.0);
        attempt (n + 1)
      end
      else begin
        Obs.Metrics.incr m_worker_failures;
        Error e
      end
  in
  attempt 0

(* Apply one batch under supervision; the engine state is unchanged
   when the result is an error (Engine.apply's atomicity contract). *)
let apply_supervised t s ~budget deltas =
  match
    with_retries t (fun () -> Engine.apply ~budget ?pool:t.pool s.engine deltas)
  with
  | Ok report -> Ok report
  | Error e ->
    Error
      (err P.Worker_failed "solve failed after %d retries: %s"
         t.config.max_retries (Printexc.to_string e))
  | exception Delta.Invalid { index; reason } ->
    Error
      (err P.Invalid_delta "batch rejected%s: %s"
         (match index with
         | Some i -> Printf.sprintf " at delta %d" i
         | None -> "")
         reason)
  | exception Cpr_error.Error (Cpr_error.Budget_exhausted { stage; _ }) ->
    Obs.Metrics.incr m_timeouts;
    Error (err P.Timeout "deadline exhausted in %s" stage)
  | exception Cpr_error.Error (Cpr_error.Infeasible_panel { panel; reason }) ->
    Error
      (err P.Infeasible "infeasible%s: %s"
         (match panel with
         | Some p -> Printf.sprintf " panel %d" p
         | None -> "")
         reason)

(* Rebuild an engine from a recovery image, supervising each step
   separately (retrying the whole replay against an every-Nth fault
   injector would re-hit the injector forever). *)
let build_recovered t cfg (recovery : Wal.recovery) =
  match
    with_retries t (fun () ->
        Engine.create ~config:cfg ?pool:t.pool recovery.Wal.design)
  with
  | Error e -> Error e
  | Ok engine ->
    let rec go = function
      | [] -> Ok engine
      | (_, deltas) :: rest -> (
        match
          with_retries t (fun () ->
              ignore (Engine.apply ?pool:t.pool engine deltas))
        with
        | Ok () -> go rest
        | Error e -> Error e)
    in
    go recovery.Wal.replay

(* Re-attach a session from disk after a commit-marker failure: the
   engine holds a batch the journal does not, so disk is the only
   truth left. *)
let resync t s =
  Wal.close s.wal;
  let recovery, wal = Wal.recover ~root:t.config.root s.name in
  let cfg = engine_config_with_clearance t.config.engine recovery.Wal.clearance in
  let engine =
    match build_recovered t cfg recovery with
    | Ok engine -> engine
    | Error e -> raise e
  in
  s.engine <- engine;
  s.wal <- wal;
  s.seq <- recovery.Wal.last_seq;
  s.since_checkpoint <- 0

(* One batch through the full WAL-append / apply / commit pipeline.
   Returns the engine report on success; the session's [seq] is
   consumed (commit or abort) except when the append itself failed. *)
let land_batch t s ~budget deltas =
  if Budget.exhausted budget then begin
    Obs.Metrics.incr m_timeouts;
    Error (err P.Timeout "deadline exhausted before batch %d" (s.seq + 1))
  end
  else begin
    let seq = s.seq + 1 in
    match Wal.append s.wal ~seq deltas with
    | exception e ->
      (* torn journal write: drop the partial record so the journal
         stays parseable, and the sequence number stays unconsumed *)
      Obs.Metrics.incr m_torn;
      Wal.repair s.wal;
      Error (err P.Internal "journal append failed: %s" (Printexc.to_string e))
    | () -> (
      s.seq <- seq;
      (* The crash window: a non-recoverable exception here models
         dying between journal append and apply — it escapes with the
         record uncommitted, and recovery discards the torn tail.  A
         recoverable injection instead fails just this batch, keeping
         the live journal parseable. *)
      let interrupted =
        match Fault.trip Fault.Serve_apply with
        | () -> None
        | exception e when Cpr_error.recoverable e ->
          Wal.abort s.wal ~seq;
          Some (err P.Internal "apply interrupted: %s" (Printexc.to_string e))
      in
      match
        match interrupted with
        | Some resp -> Error resp
        | None -> apply_supervised t s ~budget deltas
      with
      | Error resp ->
        (match interrupted with None -> Wal.abort s.wal ~seq | Some _ -> ());
        Error resp
      | Ok report -> (
        match Wal.commit s.wal ~seq with
        | () ->
          s.since_checkpoint <- s.since_checkpoint + 1;
          if s.since_checkpoint >= t.config.checkpoint_every then
            do_checkpoint s;
          Obs.Metrics.incr m_edits_ok;
          Ok (seq, report)
        | exception e ->
          (* the engine advanced but the marker never landed: roll the
             session back to what the journal proves *)
          Wal.repair s.wal;
          resync t s;
          Error
            (err P.Internal "journal commit failed (session resynced): %s"
               (Printexc.to_string e))))
  end

let budget_of_opts t (opts : P.opts) =
  let deadline_ms =
    match opts.P.deadline_ms with
    | Some _ as d -> d
    | None -> t.config.default_deadline_ms
  in
  match (deadline_ms, opts.P.work) with
  | None, None -> Budget.unlimited ()
  | seconds_ms, work_units ->
    Budget.start
      ?seconds:(Option.map (fun ms -> float_of_int ms /. 1000.0) seconds_ms)
      ?work_units ()

(* Drain a session's queue under one budget; stops (leaving the rest
   queued) when the budget expires between batches.  Returns
   [(applied, Some error)] when a batch failed. *)
let drain t s ~budget =
  let applied = ref 0 in
  let failure = ref None in
  let continue_ = ref true in
  while !continue_ && s.queued > 0 do
    if Budget.exhausted budget then continue_ := false
    else begin
      let deltas = Queue.peek s.queue in
      match land_batch t s ~budget deltas with
      | Ok _ ->
        ignore (Queue.pop s.queue);
        s.queued <- s.queued - 1;
        t.global_queued <- t.global_queued - 1;
        incr applied
      | Error resp ->
        (* drop the poisoned batch so the queue can make progress *)
        ignore (Queue.pop s.queue);
        s.queued <- s.queued - 1;
        t.global_queued <- t.global_queued - 1;
        failure := Some resp;
        continue_ := false
    end
  done;
  (!applied, !failure)

(* -- request handlers -------------------------------------------------- *)

let with_session t name f =
  match Hashtbl.find_opt t.sessions name with
  | Some s -> f s
  | None ->
    if Wal.exists ~root:t.config.root name then
      err P.Unknown_session "session %s is not attached (use attach)" name
    else err P.Unknown_session "no such session: %s" name

let handle_open t name body =
  if not (Wal.valid_name name) then err P.Parse "invalid session name: %s" name
  else if Hashtbl.mem t.sessions name || Wal.exists ~root:t.config.root name
  then err P.Session_exists "session %s already exists" name
  else if Hashtbl.length t.sessions >= t.config.max_sessions then
    err P.Overloaded "session limit (%d) reached" t.config.max_sessions
  else
    match Netlist.Design_io.of_string body with
    | exception Netlist.Design_io.Malformed { reason; _ } ->
      err P.Malformed_design "%s" reason
    | design -> (
      match
        with_retries t (fun () ->
            Engine.create ~config:t.config.engine ?pool:t.pool design)
      with
      | exception Cpr_error.Error (Cpr_error.Infeasible_panel { reason; _ }) ->
        err P.Infeasible "%s" reason
      | Error e ->
        err P.Worker_failed "cold solve failed after %d retries: %s"
          t.config.max_retries (Printexc.to_string e)
      | Ok engine ->
        let wal =
          Wal.init ~root:t.config.root name ~clearance:(clearance_of engine)
            design
        in
        Hashtbl.replace t.sessions name
          {
            name;
            engine;
            wal;
            seq = 0;
            since_checkpoint = 0;
            queue = Queue.create ();
            queued = 0;
          };
        P.Resp_ok
          [
            ("seq", "0");
            ("pins", string_of_int (Array.length (Netlist.Design.pins design)));
            ( "objective",
              Printf.sprintf "%.17g" (Engine.pao engine).Pinaccess.Pin_access.objective );
          ])

let handle_attach t name =
  match Hashtbl.find_opt t.sessions name with
  | Some s -> P.Resp_ok [ ("seq", string_of_int s.seq); ("replayed", "0") ]
  | None -> (
    if not (Wal.exists ~root:t.config.root name) then
      err P.Unknown_session "no such session: %s" name
    else if Hashtbl.length t.sessions >= t.config.max_sessions then
      err P.Overloaded "session limit (%d) reached" t.config.max_sessions
    else
      match Wal.recover ~root:t.config.root name with
      | exception Wal.Corrupt reason -> err P.Wal_corrupt "%s" reason
      | recovery, wal -> (
        Obs.Metrics.add m_torn recovery.Wal.torn;
        let cfg =
          engine_config_with_clearance t.config.engine recovery.Wal.clearance
        in
        match build_recovered t cfg recovery with
        | Error e | exception e ->
          Wal.close wal;
          err P.Internal "replay failed: %s" (Printexc.to_string e)
        | Ok engine -> (
          let audit_failure =
            if not t.config.audit_on_recover then None
            else
              match Audit.certify_pin_access (Engine.pao engine) with
              | Ok () -> None
              | Error reason -> Some (Audit.reason_to_string reason)
          in
          match audit_failure with
          | Some reason ->
            Wal.close wal;
            err P.Internal "recovered state failed audit: %s" reason
          | None ->
            let s =
              {
                name;
                engine;
                wal;
                seq = recovery.Wal.last_seq;
                since_checkpoint = 0;
                queue = Queue.create ();
                queued = 0;
              }
            in
            (* bake the replay into a fresh checkpoint so the next
               crash replays only its own tail *)
            if recovery.Wal.replay <> [] || recovery.Wal.torn > 0 then
              do_checkpoint s;
            Hashtbl.replace t.sessions name s;
            Obs.Metrics.incr m_recovered;
            P.Resp_ok
              [
                ("seq", string_of_int s.seq);
                ("replayed", string_of_int (List.length recovery.Wal.replay));
                ("torn", string_of_int recovery.Wal.torn);
              ])))

let handle_edit t name opts body =
  with_session t name @@ fun s ->
  match Delta.of_string body with
  | exception Delta.Parse_error { line; reason } ->
    err P.Invalid_delta "parse error at line %d: %s" line reason
  | deltas -> (
    if t.global_queued >= t.config.global_capacity then begin
      Obs.Metrics.incr m_shed;
      err P.Overloaded "global backlog full (%d queued)" t.global_queued
    end
    else begin
      let t0 = t.config.now () in
      let budget = budget_of_opts t opts in
      (* queued work lands first, in order, under the same deadline *)
      match drain t s ~budget with
      | _, Some resp -> resp
      | drained, None -> (
        match land_batch t s ~budget deltas with
        | Error resp -> resp
        | Ok (seq, report) ->
          Obs.Metrics.observe m_latency ((t.config.now () -. t0) *. 1000.0);
          let degraded = (Engine.pao s.engine).Pinaccess.Pin_access.degraded in
          P.Resp_ok
            (report_fields ~seq ~degraded report
            @ (if drained > 0 then [ ("drained", string_of_int drained) ] else []))
        )
    end)

let handle_submit t name body =
  with_session t name @@ fun s ->
  match Delta.of_string body with
  | exception Delta.Parse_error { line; reason } ->
    err P.Invalid_delta "parse error at line %d: %s" line reason
  | deltas ->
    if s.queued >= t.config.queue_capacity then begin
      Obs.Metrics.incr m_shed;
      err P.Overloaded "session queue full (%d)" s.queued
    end
    else if t.global_queued >= t.config.global_capacity then begin
      Obs.Metrics.incr m_shed;
      err P.Overloaded "global backlog full (%d queued)" t.global_queued
    end
    else begin
      Queue.push deltas s.queue;
      s.queued <- s.queued + 1;
      t.global_queued <- t.global_queued + 1;
      P.Resp_ok [ ("queued", string_of_int s.queued) ]
    end

let handle_flush t name opts =
  with_session t name @@ fun s ->
  let budget = budget_of_opts t opts in
  let applied, failure = drain t s ~budget in
  match failure with
  | Some resp -> resp
  | None ->
    P.Resp_ok
      [
        ("applied", string_of_int applied);
        ("remaining", string_of_int s.queued);
        ("seq", string_of_int s.seq);
      ]

let handle_stat t name =
  with_session t name @@ fun s ->
  P.Resp_ok
    [
      ("seq", string_of_int s.seq);
      ("queued", string_of_int s.queued);
      ("since_checkpoint", string_of_int s.since_checkpoint);
      ("cache_entries", string_of_int (Engine.cache_size s.engine));
      ("hit_rate", Printf.sprintf "%.3f" (Engine.cache_hit_rate s.engine));
      ( "objective",
        Printf.sprintf "%.17g" (Engine.pao s.engine).Pinaccess.Pin_access.objective );
    ]

let handle_close t name =
  with_session t name @@ fun s ->
  let _, failure = drain t s ~budget:(Budget.unlimited ()) in
  match failure with
  | Some resp -> resp
  | None ->
    do_checkpoint s;
    Wal.close s.wal;
    Hashtbl.remove t.sessions name;
    P.Resp_ok [ ("seq", string_of_int s.seq) ]

let rec handle t request =
  Obs.Metrics.incr m_requests;
  try dispatch t request
  with e when Cpr_error.recoverable e ->
    err P.Internal "unhandled: %s" (Printexc.to_string e)

and dispatch t request =
  match request with
  | P.Open (name, body) -> handle_open t name body
  | P.Attach name -> handle_attach t name
  | P.Edit (name, opts, body) -> handle_edit t name opts body
  | P.Submit (name, body) -> handle_submit t name body
  | P.Flush (name, opts) -> handle_flush t name opts
  | P.Get_design name ->
    with_session t name (fun s ->
        P.Resp_data
          ( [ ("seq", string_of_int s.seq) ],
            Netlist.Design_io.to_string (Engine.design s.engine) ))
  | P.Stat name -> handle_stat t name
  | P.Checkpoint name ->
    with_session t name (fun s ->
        do_checkpoint s;
        P.Resp_ok [ ("seq", string_of_int s.seq) ])
  | P.Close name -> handle_close t name
  | P.Sessions ->
    let attached = session_names t in
    let on_disk =
      Wal.sessions ~root:t.config.root
      |> List.filter (fun n -> not (List.mem n attached))
    in
    P.Resp_ok
      [
        ("attached", String.concat "," attached);
        ("detached", String.concat "," on_disk);
      ]
  | P.Ping -> P.Resp_ok []
  | P.Quit -> P.Resp_ok [ ("bye", "1") ]

let shutdown t =
  List.iter
    (fun name ->
      match Hashtbl.find_opt t.sessions name with
      | None -> ()
      | Some s ->
        ignore (drain t s ~budget:(Budget.unlimited ()));
        do_checkpoint s;
        Wal.close s.wal;
        Hashtbl.remove t.sessions name)
    (session_names t)
(* the shared pool stays up — it belongs to the process, not the broker *)
