(** The [cpr_serve] request broker: named sessions, each an
    {!Eco.Engine} journaled by a {!Wal}, behind the {!Protocol}
    request/response surface.

    {2 Durability contract}

    An [edit] (or flushed [submit]) batch is acknowledged — [ok] with
    its sequence number — only after its WAL commit marker is flushed
    to the journal.  A [kill -9] at any point therefore loses no
    acknowledged batch: {!Wal.recover} + replay reconstructs exactly
    the acknowledged prefix, and an in-flight batch (journaled but not
    committed) is discarded as a torn tail.  {!handle} trips
    {!Pinaccess.Fault.Serve_apply} between append and engine apply; an
    exception escaping from there models the process dying mid-window
    — the [t] value must then be discarded and the sessions
    re-attached, exactly like a real crash.

    {2 Deadlines and degradation}

    [edit]/[flush] deadlines become a {!Pinaccess.Budget}: a batch
    whose budget is exhausted before work starts is rejected with
    [err timeout]; once solving has begun the engine's degradation
    ladder (ILP → LR → minimum) absorbs the pressure and the batch
    lands with [degraded=1] in the reply — the service never holds a
    request open past its deadline to chase solution quality.

    {2 Overload shedding}

    [submit] is admission-controlled: a full per-session queue or a
    full global backlog rejects immediately with [err overloaded].
    Synchronous [edit]s are refused with the same code while the
    global backlog is saturated, so a flood of queued work cannot
    starve every other session.

    {2 Supervision}

    Panel solves run on the shared {!Exec} pool; a failed solve
    (worker-domain exception, injected {!Pinaccess.Fault.Worker})
    fails only the requesting batch — the engine state is unchanged —
    and is retried with exponential backoff up to [max_retries] before
    the batch is refused with [err worker_failed] and its journal
    record aborted.  Unrecoverable exceptions ([Out_of_memory], …)
    propagate. *)

type config = {
  root : string;  (** session state directory *)
  checkpoint_every : int;  (** checkpoint after this many commits *)
  queue_capacity : int;  (** per-session [submit] backlog *)
  global_capacity : int;  (** total queued batches across sessions *)
  max_sessions : int;
  default_deadline_ms : int option;  (** for [edit]s that carry none *)
  max_retries : int;  (** per-batch solve retries *)
  backoff_ms : float;  (** base of the exponential retry backoff *)
  on_backoff : float -> unit;
      (** called with the backoff in seconds before each retry; the
          binary passes a real sleep, tests a recorder *)
  audit_on_recover : bool;
      (** certify the recovered assignment ({!Audit.Certificate})
          before acknowledging an [attach] *)
  engine : Eco.Engine.config;
  jobs : int;  (** solver pool domains; [<= 1] runs inline *)
  now : unit -> float;  (** latency clock (seconds) *)
}

val default_config : root:string -> config
(** Conservative defaults: checkpoint every 32 commits, queues of 64
    per session / 256 global, 8 sessions, no default deadline, 2
    retries at 10 ms base backoff, audit on recover, routing off,
    inline solves, {!Obs.Clock.now}. *)

type t

val create : config -> t
(** Start a broker (spawning the solver pool when [jobs > 1]).  No
    sessions are attached — recovery is per-session via [attach]. *)

val handle : t -> Protocol.request -> Protocol.response
(** Serve one request.  Never raises for protocol-level failures
    (those become [err] responses); raises only for injected
    crash-window faults (see the durability contract) and
    unrecoverable exceptions. *)

val session_names : t -> string list
(** Sessions currently attached in memory, sorted. *)

val shutdown : t -> unit
(** Checkpoint and close every attached session, then shut the pool
    down.  The broker must not be used afterwards. *)
