(** Per-session write-ahead delta journal with atomic checkpoints.

    Each session owns a directory [<root>/<name>/] holding:

    - [checkpoint.design] — the last checkpointed design in
      {!Netlist.Design_io} text, prefixed by one comment line
      [# cpr_serve checkpoint seq=<n> clearance=<c>] carrying the
      journal position and folded rule deck (comments are ignored by
      the design loader, so the file doubles as a plain design export);
    - [wal.log] — the journal: one record per batch accepted since the
      checkpoint.

    A record is framed

    {v
    batch <seq> <md5-hex-of-payload>
    <delta lines ... ({!Eco.Delta} text)>
    commit <seq>        (or: abort <seq>)
    v}

    and a batch is durable exactly when its [commit <seq>] line has
    reached the file: {!append} writes header and payload, {!commit}
    the marker, and the server acknowledges only after [commit]
    returns.  [abort] consumes the sequence number without committing
    the payload (written when the engine rejects or fails the batch),
    keeping the journal parseable.  Recovery tolerates a torn tail —
    the first incomplete or digest-mismatched record and everything
    after it is discarded, never anything before.

    The module trips {!Pinaccess.Fault.Wal_append} mid-payload and
    {!Pinaccess.Fault.Wal_commit} before the marker so tests can tear
    writes at the worst moments. *)

type t
(** An open journal handle (append channel on [wal.log]). *)

type recovery = {
  design : Netlist.Design.t;  (** the checkpointed design *)
  clearance : int;  (** folded rule deck at checkpoint time *)
  checkpoint_seq : int;
  replay : (int * Eco.Delta.t list) list;
      (** committed batches after the checkpoint, ascending [seq] *)
  last_seq : int;
      (** highest sequence number consumed (committed or aborted);
          [checkpoint_seq] when the journal is empty *)
  torn : int;  (** discarded trailing records (incomplete or corrupt) *)
}

exception Corrupt of string
(** The checkpoint itself (not the journal tail) is unreadable —
    recovery cannot establish a base state. *)

val valid_name : string -> bool
(** Session names must match [[A-Za-z0-9_.-]+] (they become directory
    names). *)

val session_dir : root:string -> string -> string
val exists : root:string -> string -> bool
(** A checkpoint exists for the session. *)

val sessions : root:string -> string list
(** Sessions with a checkpoint under [root], sorted. *)

val init :
  root:string -> string -> clearance:int -> Netlist.Design.t -> t
(** Create the session directory, write checkpoint [seq=0] atomically
    and open an empty journal.  Any pre-existing journal for the name
    is truncated. *)

val recover : root:string -> string -> recovery * t
(** Load the checkpoint, replay-parse the journal, compact it (rewrite
    with only the complete records, atomically) and reopen for append.
    @raise Corrupt when the checkpoint is missing or malformed. *)

val append : t -> seq:int -> Eco.Delta.t list -> unit
(** Journal a batch (header + payload) and flush.  Not yet durable —
    pair with {!commit} or {!abort}. *)

val commit : t -> seq:int -> unit
(** Write and flush the commit marker; after this returns the batch
    survives a [kill -9]. *)

val abort : t -> seq:int -> unit
(** Write and flush an abort marker: [seq] is consumed, the payload is
    dead. *)

val repair : t -> unit
(** Drop any torn tail: re-parse the journal, rewrite only its
    complete records (atomic temp+rename) and reopen.  Called by the
    server after an append failure so the next record starts clean. *)

val checkpoint : t -> seq:int -> clearance:int -> Netlist.Design.t -> unit
(** Atomically replace the checkpoint with the given design at journal
    position [seq], then truncate the journal (its records are now
    baked into the checkpoint). *)

val last_seq_on_disk : t -> int
(** Re-parse the journal and return the highest complete sequence
    number (checkpoint seq when empty) — what a fresh {!recover} would
    see.  Test/diagnostic helper. *)

val close : t -> unit
