module Fault = Pinaccess.Fault

exception Corrupt of string

type t = {
  dir : string;
  wal_path : string;
  ckpt_path : string;
  mutable oc : out_channel;
}

type recovery = {
  design : Netlist.Design.t;
  clearance : int;
  checkpoint_seq : int;
  replay : (int * Eco.Delta.t list) list;
  last_seq : int;
  torn : int;
}

let valid_name name =
  name <> ""
  && String.for_all
       (function
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '.' | '-' -> true
         | _ -> false)
       name
  && name <> "." && name <> ".."

let session_dir ~root name = Filename.concat root name
let ckpt_file dir = Filename.concat dir "checkpoint.design"
let wal_file dir = Filename.concat dir "wal.log"
let exists ~root name = Sys.file_exists (ckpt_file (session_dir ~root name))

let sessions ~root =
  if not (Sys.file_exists root && Sys.is_directory root) then []
  else
    Sys.readdir root |> Array.to_list
    |> List.filter (fun n -> valid_name n && exists ~root n)
    |> List.sort compare

let mkdir_p dir =
  let rec go d =
    if d <> "" && d <> "." && d <> "/" && not (Sys.file_exists d) then begin
      go (Filename.dirname d);
      (try Sys.mkdir d 0o755 with Sys_error _ when Sys.file_exists d -> ())
    end
  in
  go dir

(* -- checkpoint -------------------------------------------------------- *)

let checkpoint_header ~seq ~clearance =
  Printf.sprintf "# cpr_serve checkpoint seq=%d clearance=%d\n" seq clearance

let parse_checkpoint path =
  let text =
    try In_channel.with_open_text path In_channel.input_all
    with Sys_error e -> raise (Corrupt e)
  in
  let seq, clearance =
    try
      Scanf.sscanf text "# cpr_serve checkpoint seq=%d clearance=%d"
        (fun s c -> (s, c))
    with Scanf.Scan_failure _ | End_of_file | Failure _ ->
      raise (Corrupt (path ^ ": missing checkpoint header"))
  in
  let design =
    try Netlist.Design_io.of_string text
    with Netlist.Design_io.Malformed { reason; _ } ->
      raise (Corrupt (path ^ ": " ^ reason))
  in
  (design, seq, clearance)

let write_checkpoint path ~seq ~clearance design =
  Obs.Fsio.atomic_write path
    (checkpoint_header ~seq ~clearance ^ Netlist.Design_io.to_string design)

(* -- journal parsing --------------------------------------------------- *)

(* A parsed complete record: committed payload or consumed abort. *)
type record = Committed of int * string | Aborted of int

(* Parse the journal into its complete-record prefix; the first torn or
   corrupt record (bad header, missing terminator, wrong digest, wrong
   terminator seq) ends the prefix and it plus everything after it is
   counted as torn. *)
let parse_records lines =
  let n = Array.length lines in
  let records = ref [] in
  let rec loop i =
    if i >= n then 0
    else
      let line = lines.(i) in
      if line = "" then loop (i + 1)
      else
        match Scanf.sscanf_opt line "batch %d %s%!" (fun s d -> (s, d)) with
        | None -> n - i (* not a record header: corrupt from here on *)
        | Some (seq, digest) ->
          let buf = Buffer.create 256 in
          let rec payload j =
            if j >= n then None
            else
              let l = lines.(j) in
              match Scanf.sscanf_opt l "commit %d%!" Fun.id with
              | Some s -> Some (`Commit s, j)
              | None -> (
                match Scanf.sscanf_opt l "abort %d%!" Fun.id with
                | Some s -> Some (`Abort s, j)
                | None ->
                  if String.length l >= 6 && String.sub l 0 6 = "batch " then
                    None (* new header before a terminator: torn *)
                  else begin
                    Buffer.add_string buf l;
                    Buffer.add_char buf '\n';
                    payload (j + 1)
                  end)
          in
          (match payload (i + 1) with
          | Some (`Commit s, j)
            when s = seq && Digest.to_hex (Digest.string (Buffer.contents buf)) = digest ->
            records := Committed (seq, Buffer.contents buf) :: !records;
            loop (j + 1)
          | Some (`Abort s, j) when s = seq ->
            records := Aborted seq :: !records;
            loop (j + 1)
          | _ -> n - i)
  in
  let torn_lines = loop 0 in
  (List.rev !records, torn_lines)

let read_lines path =
  if Sys.file_exists path then
    In_channel.with_open_text path (fun ic ->
        In_channel.input_all ic |> String.split_on_char '\n' |> Array.of_list)
  else [||]

(* Rewrite a record in append+terminator framing.  Aborted payloads are
   dead, so compaction keeps only the consumed sequence number (an
   empty-payload record the parser accepts). *)
let record_text = function
  | Committed (seq, payload) ->
    Printf.sprintf "batch %d %s\n%scommit %d\n" seq
      (Digest.to_hex (Digest.string payload))
      payload seq
  | Aborted seq ->
    Printf.sprintf "batch %d %s\nabort %d\n" seq
      (Digest.to_hex (Digest.string ""))
      seq

let open_append path =
  Out_channel.open_gen [ Open_append; Open_creat ] 0o644 path

(* -- lifecycle --------------------------------------------------------- *)

let init ~root name ~clearance design =
  if not (valid_name name) then invalid_arg ("Wal.init: bad session name " ^ name);
  let dir = session_dir ~root name in
  mkdir_p dir;
  let ckpt_path = ckpt_file dir and wal_path = wal_file dir in
  write_checkpoint ckpt_path ~seq:0 ~clearance design;
  (* truncate any stale journal *)
  Out_channel.with_open_text wal_path (fun _ -> ());
  { dir; wal_path; ckpt_path; oc = open_append wal_path }

let recover ~root name =
  if not (valid_name name) then
    invalid_arg ("Wal.recover: bad session name " ^ name);
  let dir = session_dir ~root name in
  let ckpt_path = ckpt_file dir and wal_path = wal_file dir in
  let design, checkpoint_seq, clearance = parse_checkpoint ckpt_path in
  let records, torn_lines = parse_records (read_lines wal_path) in
  let replay =
    List.filter_map
      (function
        | Committed (seq, payload) -> (
          (* digest-verified, so the payload is exactly what [append]
             serialized; a parse failure here is real corruption *)
          try Some (seq, Eco.Delta.of_string payload)
          with Eco.Delta.Parse_error { reason; _ } ->
            raise (Corrupt (Printf.sprintf "%s: batch %d: %s" wal_path seq reason)))
        | Aborted _ -> None)
      records
  in
  let last_seq =
    List.fold_left
      (fun acc r ->
        max acc (match r with Committed (s, _) -> s | Aborted s -> s))
      checkpoint_seq records
  in
  (* compact: drop the torn tail (and any interleaved garbage) so the
     journal on disk is exactly what we recovered *)
  if torn_lines > 0 then
    Obs.Fsio.atomic_write wal_path
      (String.concat "" (List.map record_text records));
  let t = { dir; wal_path; ckpt_path; oc = open_append wal_path } in
  let torn = if torn_lines > 0 then 1 else 0 in
  ({ design; clearance; checkpoint_seq; replay; last_seq; torn }, t)

let append t ~seq deltas =
  let payload = Eco.Delta.to_string deltas in
  let digest = Digest.to_hex (Digest.string payload) in
  Printf.fprintf t.oc "batch %d %s\n" seq digest;
  (* split the payload so an injected fault leaves a genuinely torn
     record on disk *)
  let half = String.length payload / 2 in
  Out_channel.output_string t.oc (String.sub payload 0 half);
  Out_channel.flush t.oc;
  Fault.trip Fault.Wal_append;
  Out_channel.output_string t.oc
    (String.sub payload half (String.length payload - half));
  Out_channel.flush t.oc

let commit t ~seq =
  Fault.trip Fault.Wal_commit;
  Printf.fprintf t.oc "commit %d\n" seq;
  Out_channel.flush t.oc

let abort t ~seq =
  Printf.fprintf t.oc "abort %d\n" seq;
  Out_channel.flush t.oc

let repair t =
  Out_channel.close_noerr t.oc;
  let records, _ = parse_records (read_lines t.wal_path) in
  Obs.Fsio.atomic_write t.wal_path
    (String.concat "" (List.map record_text records));
  t.oc <- open_append t.wal_path

let checkpoint t ~seq ~clearance design =
  write_checkpoint t.ckpt_path ~seq ~clearance design;
  Out_channel.close_noerr t.oc;
  Out_channel.with_open_text t.wal_path (fun _ -> ());
  t.oc <- open_append t.wal_path

let last_seq_on_disk t =
  Out_channel.flush t.oc;
  let records, _ = parse_records (read_lines t.wal_path) in
  let _, ckpt_seq, _ = parse_checkpoint t.ckpt_path in
  List.fold_left
    (fun acc r -> max acc (match r with Committed (s, _) -> s | Aborted s -> s))
    ckpt_seq records

let close t = Out_channel.close_noerr t.oc
