module P = Protocol
module Delta = Eco.Delta
module Design_io = Netlist.Design_io

type conn = P.request -> P.response

type config = {
  clients : int;
  steps : int;
  edits_per_step : int;
  seed : int64;
  deadline_ms : int option;
  session_prefix : string;
  now : unit -> float;
}

let default =
  {
    clients = 4;
    steps = 25;
    edits_per_step = 3;
    seed = 1L;
    deadline_ms = None;
    session_prefix = "load";
    now = Obs.Clock.now;
  }

type outcome = {
  sent : int;
  acked : int;
  acked_edits : int;
  timeouts : int;
  shed : int;
  failed : int;
  wall : float;
  edits_per_sec : float;
  p50_ms : float;
  p99_ms : float;
  mean_ms : float;
  mismatches : string list;
}

type client = {
  session : string;
  mutable shadow : Netlist.Design.t;
  mutable batches : Delta.t list list;  (* still to send *)
}

let nearest_rank sorted p =
  let n = Array.length sorted in
  if n = 0 then nan
  else sorted.(max 0 (int_of_float (ceil (p /. 100.0 *. float_of_int n)) - 1))

let run ?design config conn =
  let base =
    match design with
    | Some d -> d
    | None -> Workloads.Suite.design ~scale:0.05 (Workloads.Suite.find "ecc")
  in
  let clients =
    List.init config.clients (fun c ->
        let stream =
          Workloads.Eco_stream.random
            ~seed:(Int64.add config.seed (Int64.of_int c))
            ~steps:config.steps ~edits_per_step:config.edits_per_step base
        in
        {
          session = Printf.sprintf "%s%d" config.session_prefix c;
          shadow = base;
          batches = stream;
        })
  in
  let design_text = Design_io.to_string base in
  List.iter
    (fun c ->
      match conn (P.Open (c.session, design_text)) with
      | P.Resp_ok _ -> ()
      | P.Resp_err (code, msg) ->
        failwith
          (Printf.sprintf "loadgen: open %s: %s %s" c.session
             (P.err_code_to_string code) msg)
      | P.Resp_data _ -> failwith "loadgen: unexpected data response to open")
    clients;
  let sent = ref 0
  and acked = ref 0
  and acked_edits = ref 0
  and timeouts = ref 0
  and shed = ref 0
  and failed = ref 0 in
  let latencies = ref [] in
  let opts = { P.deadline_ms = config.deadline_ms; work = None } in
  let t0 = config.now () in
  (* round-robin until every client's stream is drained *)
  let remaining = ref (List.filter (fun c -> c.batches <> []) clients) in
  while !remaining <> [] do
    remaining :=
      List.filter
        (fun c ->
          match c.batches with
          | [] -> false
          | batch :: rest ->
            c.batches <- rest;
            incr sent;
            let s0 = config.now () in
            (match conn (P.Edit (c.session, opts, Delta.to_string batch)) with
            | P.Resp_ok _ ->
              latencies := ((config.now () -. s0) *. 1000.0) :: !latencies;
              incr acked;
              acked_edits := !acked_edits + List.length batch;
              c.shadow <- Delta.apply_all c.shadow batch
            | P.Resp_err (P.Timeout, _) -> incr timeouts
            | P.Resp_err (P.Overloaded, _) -> incr shed
            | P.Resp_err _ | P.Resp_data _ -> incr failed);
            rest <> [])
        !remaining
  done;
  let wall = config.now () -. t0 in
  let mismatches =
    List.filter_map
      (fun c ->
        match conn (P.Get_design c.session) with
        | P.Resp_data (_, payload) ->
          if payload = Design_io.to_string c.shadow then None
          else Some c.session
        | P.Resp_ok _ | P.Resp_err _ -> Some c.session)
      clients
  in
  List.iter (fun c -> ignore (conn (P.Close c.session))) clients;
  let lat = Array.of_list !latencies in
  Array.sort compare lat;
  let mean_ms =
    if Array.length lat = 0 then nan
    else Array.fold_left ( +. ) 0.0 lat /. float_of_int (Array.length lat)
  in
  {
    sent = !sent;
    acked = !acked;
    acked_edits = !acked_edits;
    timeouts = !timeouts;
    shed = !shed;
    failed = !failed;
    wall;
    edits_per_sec =
      (if wall > 0.0 then float_of_int !acked_edits /. wall else nan);
    p50_ms = nearest_rank lat 50.0;
    p99_ms = nearest_rank lat 99.0;
    mean_ms;
    mismatches;
  }
