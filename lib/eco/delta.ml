module I = Geometry.Interval
module B = Netlist.Builder
module Design = Netlist.Design
module Blockage = Netlist.Blockage

type pin_ref = { at_x : int; at_track : int }
type pin_shape = { x : int; tracks : I.t }

type t =
  | Add_pin of { net : string; shape : pin_shape }
  | Remove_pin of pin_ref
  | Move_pin of { from_ : pin_ref; shape : pin_shape }
  | Add_net of { name : string; pins : pin_shape list }
  | Remove_net of string
  | Add_blockage of Blockage.t
  | Remove_blockage of Blockage.t
  | Set_clearance of int

exception Invalid of { index : int option; reason : string }
exception Parse_error of { line : int; reason : string }

let invalid ?index fmt =
  Printf.ksprintf (fun reason -> raise (Invalid { index; reason })) fmt

let parse_error ~line fmt =
  Printf.ksprintf (fun reason -> raise (Parse_error { line; reason })) fmt

let error_to_string = function
  | Invalid { index = Some i; reason } ->
    Printf.sprintf "invalid delta #%d: %s" i reason
  | Invalid { index = None; reason } -> Printf.sprintf "invalid delta: %s" reason
  | Parse_error { line; reason } when line > 0 ->
    Printf.sprintf "malformed delta stream (line %d): %s" line reason
  | Parse_error { reason; _ } ->
    Printf.sprintf "malformed delta stream: %s" reason
  | _ -> invalid_arg "Delta.error_to_string: not a Delta error"

(* {2 Serialization} *)

let shape_to_string { x; tracks } =
  Printf.sprintf "%d %d %d" x (I.lo tracks) (I.hi tracks)

let line_of = function
  | Add_pin { net; shape } ->
    Printf.sprintf "add_pin %s %s" net (shape_to_string shape)
  | Remove_pin { at_x; at_track } ->
    Printf.sprintf "remove_pin %d %d" at_x at_track
  | Move_pin { from_ = { at_x; at_track }; shape } ->
    Printf.sprintf "move_pin %d %d %s" at_x at_track (shape_to_string shape)
  | Add_net { name; pins } ->
    Printf.sprintf "add_net %s %s" name
      (String.concat " "
         (List.map
            (fun { x; tracks } ->
              Printf.sprintf "%d:%d:%d" x (I.lo tracks) (I.hi tracks))
            pins))
  | Remove_net name -> Printf.sprintf "remove_net %s" name
  | Add_blockage b ->
    Printf.sprintf "add_blockage %s %d %d %d"
      (Blockage.layer_to_string b.Blockage.layer)
      b.Blockage.track (I.lo b.Blockage.span) (I.hi b.Blockage.span)
  | Remove_blockage b ->
    Printf.sprintf "remove_blockage %s %d %d %d"
      (Blockage.layer_to_string b.Blockage.layer)
      b.Blockage.track (I.lo b.Blockage.span) (I.hi b.Blockage.span)
  | Set_clearance n -> Printf.sprintf "set_clearance %d" n

let pp fmt d = Format.pp_print_string fmt (line_of d)

let to_string deltas =
  String.concat "" (List.map (fun d -> line_of d ^ "\n") deltas)

let batches_to_string batches =
  String.concat "step\n" (List.map to_string batches)

let int_of ~line s =
  match int_of_string_opt s with
  | Some v -> v
  | None -> parse_error ~line "not an integer: %S" s

let span_of ~line lo hi =
  let lo = int_of ~line lo and hi = int_of ~line hi in
  if lo > hi then parse_error ~line "empty span %d..%d" lo hi;
  I.make ~lo ~hi

let shape_of ~line x lo hi =
  { x = int_of ~line x; tracks = span_of ~line lo hi }

let layer_of ~line = function
  | "M2" -> Blockage.M2
  | "M3" -> Blockage.M3
  | s -> parse_error ~line "unknown layer %S (expected M2 or M3)" s

let blockage_of ~line layer track lo hi =
  Blockage.make ~layer:(layer_of ~line layer) ~track:(int_of ~line track)
    ~span:(span_of ~line lo hi)

let packed_shape_of ~line s =
  match String.split_on_char ':' s with
  | [ x; lo; hi ] -> shape_of ~line x lo hi
  | _ -> parse_error ~line "expected <x>:<lo>:<hi>, got %S" s

(* a line is a delta, a [step] separator, or noise (comment/blank) *)
type parsed = Delta of t | Step | Noise

let parse_line ~line l =
  let l =
    match String.index_opt l '#' with
    | Some i -> String.sub l 0 i
    | None -> l
  in
  match
    String.split_on_char ' ' (String.trim l)
    |> List.filter (fun s -> s <> "")
  with
  | [] -> Noise
  | [ "step" ] -> Step
  | [ "add_pin"; net; x; lo; hi ] ->
    Delta (Add_pin { net; shape = shape_of ~line x lo hi })
  | [ "remove_pin"; x; t ] ->
    Delta (Remove_pin { at_x = int_of ~line x; at_track = int_of ~line t })
  | [ "move_pin"; x; t; x'; lo; hi ] ->
    Delta
      (Move_pin
         {
           from_ = { at_x = int_of ~line x; at_track = int_of ~line t };
           shape = shape_of ~line x' lo hi;
         })
  | "add_net" :: name :: (_ :: _ as pins) ->
    Delta (Add_net { name; pins = List.map (packed_shape_of ~line) pins })
  | [ "remove_net"; name ] -> Delta (Remove_net name)
  | [ "add_blockage"; layer; track; lo; hi ] ->
    Delta (Add_blockage (blockage_of ~line layer track lo hi))
  | [ "remove_blockage"; layer; track; lo; hi ] ->
    Delta (Remove_blockage (blockage_of ~line layer track lo hi))
  | [ "set_clearance"; n ] ->
    let n = int_of ~line n in
    if n < 0 then parse_error ~line "negative clearance %d" n;
    Delta (Set_clearance n)
  | keyword :: _ -> parse_error ~line "unrecognized delta %S" keyword

let batches_of_string s =
  let batch = ref [] and batches = ref [] in
  let flush () =
    if !batch <> [] then batches := List.rev !batch :: !batches;
    batch := []
  in
  List.iteri
    (fun i l ->
      match parse_line ~line:(i + 1) l with
      | Noise -> ()
      | Step -> flush ()
      | Delta d -> batch := d :: !batch)
    (String.split_on_char '\n' s);
  flush ();
  List.rev !batches

let of_string s =
  match batches_of_string s with
  | [] -> []
  | [ batch ] -> batch
  | _ ->
    parse_error ~line:0
      "multi-batch stream (contains 'step'); use batches_of_string"

let save path batches =
  (* atomic (temp + rename), like [Design_io.save] *)
  try Obs.Fsio.atomic_write path (batches_to_string batches)
  with Sys_error reason -> raise (Parse_error { line = 0; reason })

let load path =
  try In_channel.with_open_text path In_channel.input_all |> batches_of_string
  with Sys_error reason -> raise (Parse_error { line = 0; reason })

(* {2 Application}

   A design decomposes into the same spec [Netlist.Builder] consumes:
   named nets of pin shapes plus blockages.  Deltas edit that spec;
   the builder re-validates and re-densifies ids on rebuild. *)

type spec = {
  name : string;
  width : int;
  height : int;
  row_height : int;
  nets : (string * B.pin_spec list) list;  (* net-id order *)
  blockages : Blockage.t list;
}

let spec_of_design d =
  {
    name = Design.name d;
    width = Design.width d;
    height = Design.height d;
    row_height = Design.row_height d;
    nets =
      Array.to_list (Design.nets d)
      |> List.map (fun (n : Netlist.Net.t) ->
             ( n.Netlist.Net.name,
               List.map
                 (fun pid ->
                   let p = Design.pin d pid in
                   { B.x = p.Netlist.Pin.x; B.tracks = p.Netlist.Pin.tracks })
                 n.Netlist.Net.pins ));
    blockages = Design.blockages d;
  }

let rebuild ?index spec =
  try
    B.design ~name:spec.name ~width:spec.width ~height:spec.height
      ~row_height:spec.row_height ~nets:spec.nets ~blockages:spec.blockages ()
  with Design.Invalid reason -> invalid ?index "rebuild rejected: %s" reason

let covers (p : B.pin_spec) { at_x; at_track } =
  p.B.x = at_x && I.contains p.B.tracks at_track

let shape_overlaps (a : B.pin_spec) (b : B.pin_spec) =
  a.B.x = b.B.x && I.overlaps a.B.tracks b.B.tracks

(* eager geometry checks, so [apply_all] can blame the right delta
   instead of surfacing everything at the final rebuild *)
let check_shape ?index spec (shape : pin_shape) =
  let { x; tracks } = shape in
  if x < 0 || x >= spec.width then invalid ?index "pin column %d off die" x;
  if I.lo tracks < 0 || I.hi tracks >= spec.height then
    invalid ?index "pin tracks %d..%d off die" (I.lo tracks) (I.hi tracks);
  if I.lo tracks / spec.row_height <> I.hi tracks / spec.row_height then
    invalid ?index "pin tracks %d..%d straddle a panel boundary" (I.lo tracks)
      (I.hi tracks);
  let as_spec = { B.x; B.tracks = tracks } in
  List.iter
    (fun (net, pins) ->
      List.iter
        (fun p ->
          if shape_overlaps p as_spec then
            invalid ?index "pin %d:%d..%d overlaps a pin of net %s" x
              (I.lo tracks) (I.hi tracks) net)
        pins)
    spec.nets

let find_pin ?index spec r =
  match
    List.concat_map
      (fun (net, pins) ->
        List.filter_map
          (fun p -> if covers p r then Some (net, p) else None)
          pins)
      spec.nets
  with
  | [ hit ] -> hit
  | [] -> invalid ?index "no pin at (%d, %d)" r.at_x r.at_track
  | _ :: _ -> invalid ?index "ambiguous pin reference (%d, %d)" r.at_x r.at_track

let remove_pin spec (net, (p : B.pin_spec)) =
  let nets =
    List.filter_map
      (fun (n, pins) ->
        if n <> net then Some (n, pins)
        else
          match List.filter (fun q -> q <> p) pins with
          | [] -> None (* last pin gone: the net goes with it *)
          | pins -> Some (n, pins))
      spec.nets
  in
  { spec with nets }

let add_pin ?index spec net (shape : pin_shape) =
  if not (List.mem_assoc net spec.nets) then
    invalid ?index "no net named %s" net;
  check_shape ?index spec shape;
  let nets =
    List.map
      (fun (n, pins) ->
        if n = net then (n, pins @ [ { B.x = shape.x; B.tracks = shape.tracks } ])
        else (n, pins))
      spec.nets
  in
  { spec with nets }

let check_blockage ?index spec (b : Blockage.t) =
  let width, height = (spec.width, spec.height) in
  let bad fmt = invalid ?index fmt in
  match b.Blockage.layer with
  | Blockage.M2 ->
    if b.Blockage.track < 0 || b.Blockage.track >= height then
      bad "M2 blockage track %d off die" b.Blockage.track;
    if I.lo b.Blockage.span < 0 || I.hi b.Blockage.span >= width then
      bad "M2 blockage span %d..%d off die" (I.lo b.Blockage.span)
        (I.hi b.Blockage.span)
  | Blockage.M3 ->
    if b.Blockage.track < 0 || b.Blockage.track >= width then
      bad "M3 blockage column %d off die" b.Blockage.track;
    if I.lo b.Blockage.span < 0 || I.hi b.Blockage.span >= height then
      bad "M3 blockage span %d..%d off die" (I.lo b.Blockage.span)
        (I.hi b.Blockage.span)

let apply_spec ?index spec delta =
  match delta with
  | Add_pin { net; shape } -> add_pin ?index spec net shape
  | Remove_pin r -> remove_pin spec (find_pin ?index spec r)
  | Move_pin { from_; shape } ->
    let net, p = find_pin ?index spec from_ in
    let spec = remove_pin spec (net, p) in
    if not (List.mem_assoc net spec.nets) then
      (* moving the net's only pin: re-create the net around it *)
      let spec = { spec with nets = spec.nets @ [ (net, []) ] } in
      add_pin ?index spec net shape
    else add_pin ?index spec net shape
  | Add_net { name; pins } ->
    if List.mem_assoc name spec.nets then
      invalid ?index "net %s already exists" name;
    if pins = [] then invalid ?index "new net %s has no pins" name;
    List.fold_left
      (fun spec shape -> add_pin ?index spec name shape)
      { spec with nets = spec.nets @ [ (name, []) ] }
      pins
  | Remove_net name ->
    if not (List.mem_assoc name spec.nets) then
      invalid ?index "no net named %s" name;
    { spec with nets = List.remove_assoc name spec.nets }
  | Add_blockage b ->
    check_blockage ?index spec b;
    if List.mem b spec.blockages then
      invalid ?index "blockage already present: %s"
        (Format.asprintf "%a" Blockage.pp b);
    { spec with blockages = spec.blockages @ [ b ] }
  | Remove_blockage b ->
    if not (List.mem b spec.blockages) then
      invalid ?index "no such blockage: %s"
        (Format.asprintf "%a" Blockage.pp b);
    let rec drop_first = function
      | [] -> []
      | x :: rest -> if x = b then rest else x :: drop_first rest
    in
    { spec with blockages = drop_first spec.blockages }
  | Set_clearance n ->
    if n < 0 then invalid ?index "negative clearance %d" n;
    spec

(* [add_pin] appends to the net's pin list, but [Builder] keeps pin
   declaration order — while [remove_pin] of an empty net reorders
   nothing.  Net order: existing nets keep their relative order, new
   nets append, which matches how ids re-densify. *)

let apply design delta =
  rebuild (apply_spec (spec_of_design design) delta)

let apply_all design deltas =
  let spec, _ =
    List.fold_left
      (fun (spec, i) delta -> (apply_spec ~index:i spec delta, i + 1))
      (spec_of_design design, 0)
      deltas
  in
  rebuild spec

let apply_config (cfg : Pinaccess.Interval_gen.config) = function
  | Set_clearance clearance -> { cfg with Pinaccess.Interval_gen.clearance }
  | Add_pin _ | Remove_pin _ | Move_pin _ | Add_net _ | Remove_net _
  | Add_blockage _ | Remove_blockage _ ->
    cfg
