module I = Geometry.Interval
module Design = Netlist.Design
module Pin = Netlist.Pin
module PA = Pinaccess.Pin_access
module AI = Pinaccess.Access_interval
module Problem = Pinaccess.Problem
module Conflict = Pinaccess.Conflict

type slot = { track : int; span : I.t; minimum : bool }

type entry = {
  slots : slot array;
  intervals : int;
  cliques : int;
  objective : float;
  lr_iterations : int;
  proven_optimal : bool;
  served_by : PA.tier;
  degraded : bool;
  multipliers : (int * int * int * int * float) array;
}

(* shared across every cache instance: the registry is global, and a
   process hosts at most a handful of engines *)
let m_hits = Obs.Metrics.counter "eco.panel_cache.hits"
let m_misses = Obs.Metrics.counter "eco.panel_cache.misses"
let m_evictions = Obs.Metrics.counter "eco.panel_cache.evictions"

(* LRU recency list: intrusive doubly-linked nodes, most recent at the
   head.  A long-lived server session touches its hot panels on every
   batch; FIFO eviction (the PR 5 scheme) would throw those out purely
   by insertion age once the cache fills. *)
type node = {
  key : string;
  mutable prev : node option;  (* toward the head (more recent) *)
  mutable next : node option;  (* toward the tail (eviction end) *)
}

type t = {
  table : (string, entry * node) Hashtbl.t;
  mutable head : node option;
  mutable tail : node option;
  max_entries : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create ?(max_entries = 4096) () =
  {
    table = Hashtbl.create 256;
    head = None;
    tail = None;
    max_entries = max 1 max_entries;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let size t = Hashtbl.length t.table
let hits t = t.hits
let misses t = t.misses
let evictions t = t.evictions

let hit_rate t =
  let n = t.hits + t.misses in
  if n = 0 then 0.0 else float_of_int t.hits /. float_of_int n

let unlink t n =
  (match n.prev with
  | Some p -> p.next <- n.next
  | None -> t.head <- n.next);
  (match n.next with
  | Some s -> s.prev <- n.prev
  | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.prev <- None;
  n.next <- t.head;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let touch t n =
  match t.head with
  | Some h when h == n -> ()
  | _ ->
    unlink t n;
    push_front t n

let find t k =
  match Hashtbl.find_opt t.table k with
  | Some (e, n) ->
    t.hits <- t.hits + 1;
    Obs.Metrics.incr m_hits;
    touch t n;
    Some e
  | None ->
    t.misses <- t.misses + 1;
    Obs.Metrics.incr m_misses;
    None

(* deliberately leaves both the counters and the recency order alone:
   a warm-start probe of a panel's *previous* entry must not protect
   that stale entry from eviction *)
let peek t k = Option.map fst (Hashtbl.find_opt t.table k)

let evict_lru t =
  match t.tail with
  | None -> ()
  | Some victim ->
    unlink t victim;
    Hashtbl.remove t.table victim.key;
    t.evictions <- t.evictions + 1;
    Obs.Metrics.incr m_evictions

let store t k e =
  match Hashtbl.find_opt t.table k with
  | Some (_, n) ->
    Hashtbl.replace t.table k (e, n);
    touch t n
  | None ->
    while Hashtbl.length t.table >= t.max_entries do
      evict_lru t
    done;
    let n = { key = k; prev = None; next = None } in
    push_front t n;
    Hashtbl.replace t.table k (e, n)

let canonical_pins design ~panel =
  let pins = Array.of_list (Design.pins_of_panel design panel) in
  Array.sort
    (fun (a : Pin.t) b ->
      let c = Int.compare a.Pin.x b.Pin.x in
      if c <> 0 then c else Int.compare (I.lo a.Pin.tracks) (I.lo b.Pin.tracks))
    pins;
  pins

(* The digest covers, in a canonical order, every input of the panel's
   assignment problem: rule deck + solver config, die width, pins with
   panel-local net indices (names excluded on purpose), full net
   bounding boxes (interval generation clips to them), and the M2
   blockage spans on the panel's tracks. *)
let key ?policy ~(config : PA.config) ~kind design ~panel =
  let buf = Buffer.create 512 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  (* a non-default scheduling policy (lib/tune) changes how the panel
     is solved, so its canonical id joins the digest; [None] adds
     nothing, keeping every pre-policy key byte-identical *)
  (match policy with None -> () | Some p -> add "pol:%s;" p);
  let gen = config.PA.gen in
  add "gen:%s,%s,%d,%d,%s,%s;"
    (Pinaccess.Objective.weighting_to_string gen.Pinaccess.Interval_gen.weighting)
    (match gen.Pinaccess.Interval_gen.m2_bbox_margin with
    | None -> "full-bbox"
    | Some k -> string_of_int k)
    gen.Pinaccess.Interval_gen.max_per_pin gen.Pinaccess.Interval_gen.clearance
    (match gen.Pinaccess.Interval_gen.min_window with
    | None -> "no-window"
    | Some w -> string_of_int w)
    (* the TPL deck changes the clique set (color cliques fold into the
       pricing), so distinct decks must miss each other's entries *)
    (match gen.Pinaccess.Interval_gen.tpl with
    | None -> "no-tpl"
    | Some p -> Solver.Color_graph.params_to_string p);
  let lr = config.PA.lr in
  add "kind:%s;lr:%d,%h,%s,%b,%s,%b;"
    (PA.solver_kind_to_string kind)
    lr.Pinaccess.Lagrangian.max_iterations lr.Pinaccess.Lagrangian.alpha
    (match lr.Pinaccess.Lagrangian.constant_step with
    | None -> "decay"
    | Some s -> Printf.sprintf "%h" s)
    lr.Pinaccess.Lagrangian.full_subgradient
    (match lr.Pinaccess.Lagrangian.plateau_exit with
    | None -> "none"
    | Some p -> string_of_int p)
    config.PA.ilp_warm_start;
  add "die:%d,%d;" (Design.width design) (Design.row_height design);
  let pins = canonical_pins design ~panel in
  (* panel-local net indices by first appearance in canonical order *)
  let local = Hashtbl.create 16 in
  let local_of net =
    match Hashtbl.find_opt local net with
    | Some i -> i
    | None ->
      let i = Hashtbl.length local in
      Hashtbl.add local net i;
      i
  in
  Array.iter
    (fun (p : Pin.t) ->
      add "p:%d,%d,%d,%d;" p.Pin.x (I.lo p.Pin.tracks) (I.hi p.Pin.tracks)
        (local_of p.Pin.net))
    pins;
  (* each present net's full bbox, in local-index order *)
  let by_local =
    Hashtbl.fold (fun net idx acc -> (idx, net) :: acc) local []
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  in
  List.iter
    (fun (idx, net) ->
      let bbox = Design.net_bbox design net in
      add "n:%d,%d,%d,%d,%d;" idx
        (I.lo (Geometry.Rect.xs bbox))
        (I.hi (Geometry.Rect.xs bbox))
        (I.lo (Geometry.Rect.ys bbox))
        (I.hi (Geometry.Rect.ys bbox)))
    by_local;
  let tracks = Design.panel_tracks design panel in
  for track = I.lo tracks to I.hi tracks do
    List.iter
      (fun span -> add "b:%d,%d,%d;" track (I.lo span) (I.hi span))
      (Design.m2_blockages_on_track design track)
  done;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let entry_of_solution ~(problem : Problem.t) ~assignments
    ~(report : PA.panel_report) ~multipliers design ~panel =
  let pins = canonical_pins design ~panel in
  let slots =
    Array.map
      (fun (p : Pin.t) ->
        match List.assoc_opt p.Pin.id assignments with
        | Some (iv : AI.t) ->
          {
            track = iv.AI.track;
            span = iv.AI.span;
            minimum = iv.AI.kind = AI.Minimum;
          }
        | None ->
          invalid_arg
            (Printf.sprintf
               "Panel_cache.entry_of_solution: pin %d of panel %d unassigned"
               p.Pin.id panel))
      pins
  in
  let cliques = problem.Problem.cliques in
  if Array.length multipliers <> 0 && Array.length multipliers <> Array.length cliques
  then
    invalid_arg "Panel_cache.entry_of_solution: multiplier/clique mismatch";
  let sigs =
    if Array.length multipliers = 0 then [||]
    else
      Array.mapi
        (fun m (c : Conflict.clique) ->
          ( c.Conflict.track,
            c.Conflict.cap,
            I.lo c.Conflict.common,
            I.hi c.Conflict.common,
            multipliers.(m) ))
        cliques
  in
  {
    slots;
    intervals = report.PA.intervals;
    cliques = report.PA.cliques;
    objective = report.PA.objective;
    lr_iterations = report.PA.lr_iterations;
    proven_optimal = report.PA.proven_optimal;
    served_by = report.PA.served_by;
    degraded = report.PA.degraded;
    multipliers = sigs;
  }

let materialize entry design ~panel =
  let pins = canonical_pins design ~panel in
  if Array.length pins <> Array.length entry.slots then
    invalid_arg
      (Printf.sprintf
         "Panel_cache.materialize: %d pins in panel %d, entry has %d slots"
         (Array.length pins) panel (Array.length entry.slots));
  (* same-net pins selecting the same (track, span) share one interval,
     as the deduplicating generator produces *)
  let groups = Hashtbl.create 16 in
  Array.iteri
    (fun i (p : Pin.t) ->
      let s = entry.slots.(i) in
      let gkey = (p.Pin.net, s.track, I.lo s.span, I.hi s.span) in
      let cur = Option.value ~default:[] (Hashtbl.find_opt groups gkey) in
      Hashtbl.replace groups gkey ((p, s) :: cur))
    pins;
  let next_id = ref 0 in
  let assignments =
    Hashtbl.fold
      (fun (net, track, _, _) members acc ->
        let members = List.rev members in
        let _, (s : slot) = List.hd members in
        let id = !next_id in
        incr next_id;
        let iv =
          AI.make ~id ~net
            ~pins:(List.map (fun ((p : Pin.t), _) -> p.Pin.id) members)
            ~track ~span:s.span
            ~kind:(if s.minimum then AI.Minimum else AI.Regular)
        in
        List.fold_left
          (fun acc ((p : Pin.t), _) -> (p.Pin.id, iv) :: acc)
          acc members)
      groups []
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  in
  let report =
    {
      PA.panel;
      pins = Array.length pins;
      intervals = entry.intervals;
      cliques = entry.cliques;
      objective = entry.objective;
      lr_iterations = entry.lr_iterations;
      proven_optimal = entry.proven_optimal;
      served_by = entry.served_by;
      degraded = entry.degraded;
    }
  in
  (assignments, report)

let signature_overlap entry (problem : Problem.t) =
  let cliques = problem.Problem.cliques in
  if Array.length cliques = 0 then 1.0
  else begin
    let by_sig = Hashtbl.create 64 in
    Array.iter
      (fun (track, cap, lo, hi, _lambda) ->
        Hashtbl.replace by_sig (track, cap, lo, hi) ())
      entry.multipliers;
    let matched =
      Array.fold_left
        (fun acc (c : Conflict.clique) ->
          if
            Hashtbl.mem by_sig
              ( c.Conflict.track,
                c.Conflict.cap,
                I.lo c.Conflict.common,
                I.hi c.Conflict.common )
          then acc + 1
          else acc)
        0 cliques
    in
    float_of_int matched /. float_of_int (Array.length cliques)
  end

let warm_start_for entry (problem : Problem.t) =
  let by_sig = Hashtbl.create 64 in
  Array.iter
    (fun (track, cap, lo, hi, lambda) ->
      Hashtbl.replace by_sig (track, cap, lo, hi) lambda)
    entry.multipliers;
  Array.map
    (fun (c : Conflict.clique) ->
      Option.value ~default:0.0
        (Hashtbl.find_opt by_sig
           ( c.Conflict.track,
             c.Conflict.cap,
             I.lo c.Conflict.common,
             I.hi c.Conflict.common )))
    problem.Problem.cliques
