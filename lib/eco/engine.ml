module I = Geometry.Interval
module Rect = Geometry.Rect
module Design = Netlist.Design
module Pin = Netlist.Pin
module Net = Netlist.Net
module PA = Pinaccess.Pin_access
module AI = Pinaccess.Access_interval
module Grid = Rgrid.Grid
module Route = Rgrid.Route

type warm_policy = Warm_always | Warm_never | Warm_signature of float

let warm_policy_to_string = function
  | Warm_always -> "warm-always"
  | Warm_never -> "warm-never"
  | Warm_signature t -> Printf.sprintf "warm-sig:%g" t

type config = {
  pao : PA.config;
  kind : PA.solver_kind;
  warm_start : bool;
  warm_policy : warm_policy option;
  policy : string option;
  routing : bool;
  cost : Rgrid.Cost.t;
  rules : Drc.Rules.t;
  max_cache_entries : int;
}

let default_config =
  {
    pao = PA.default_config;
    kind = PA.Lr;
    warm_start = true;
    warm_policy = None;
    policy = None;
    routing = false;
    cost = Rgrid.Cost.default;
    rules = Drc.Rules.default;
    max_cache_entries = 4096;
  }

type step_report = {
  deltas : int;
  dirty_panels : int list;
  panels : int;
  cache_hits : int;
  solved : int;
  warm_started : int;
  frozen_nets : int;
  rerouted_nets : int;
  pao_wall : float;
  route_wall : float;
  objective : float;
}

type t = {
  mutable config : config;
  cache : Panel_cache.t;
  mutable design : Design.t;
  mutable pao : PA.t;
  mutable flow : Router.Flow.t option;
  mutable panel_keys : string array;  (* "" for empty panels *)
  cold_pao_wall : float;
  cold_route_wall : float;
}

type pao_stats = {
  mutable hits : int;
  mutable solved : int;
  mutable warm : int;
}

(* One cache-miss panel to re-solve: its problem is built and its
   warm-start vector resolved up front (phase 1), so the solve itself
   (phase 2) reads no shared mutable state and can run on any domain. *)
type miss = {
  m_panel : int;
  m_key : string;
  m_problem : Pinaccess.Problem.t;
  m_warm : float array option;
}

(* The per-panel walk of [PA.optimize], with the cache in front: clean
   panels (key unchanged) re-serve their stored solution; dirty panels
   re-solve, seeded from the previous entry's multipliers when warm
   starting is on.  The walk runs in three phases — classify (cache
   lookups, problem builds), solve (the misses; fanned over [pool]'s
   domains when one is given, each with an isolated budget slice and
   buffered metrics/spans), accumulate (panel-ascending, [acc +. o]) —
   which together mirror the original sequential fold exactly: with
   warm starting off the result is bit-equivalent to a from-scratch
   run, pool or no pool.  [budget] meters the miss solves through the
   same degradation ladder as [PA.optimize]; hits are free. *)
let solve_pao_stage ~cache ~(config : config) ~prev_key ?budget ?pool design
    stats =
  Obs.Trace.with_span "eco.pao" @@ fun () ->
  let started = Pinaccess.Unix_time.now () in
  let budget = Pinaccess.Budget.of_option budget in
  let num_panels = Design.num_panels design in
  let keys = Array.make num_panels "" in
  (* phase 1: classify every non-empty panel as hit / miss / duplicate
     of an in-flight miss (two panels can share a key; the sequential
     walk would solve the first and hit on the second) *)
  let hit_entries = Hashtbl.create 16 in (* panel -> entry *)
  let dup_keys = Hashtbl.create 4 in (* panel -> key of an in-flight miss *)
  let in_flight = Hashtbl.create 16 in (* key -> () *)
  let misses_rev = ref [] in
  for panel = 0 to num_panels - 1 do
    if Design.pins_of_panel design panel <> [] then begin
      let key =
        Panel_cache.key ?policy:config.policy ~config:config.pao
          ~kind:config.kind design ~panel
      in
      keys.(panel) <- key;
      if Hashtbl.mem in_flight key then Hashtbl.replace dup_keys panel key
      else
        match Panel_cache.find cache key with
        | Some entry ->
          stats.hits <- stats.hits + 1;
          Hashtbl.replace hit_entries panel entry
        | None ->
          stats.solved <- stats.solved + 1;
          let problem = PA.build_panel config.pao design ~panel in
          (* multiplier-reuse policy (lib/tune): the legacy bool is the
             always/never axis; [Warm_signature] additionally requires
             enough clique signatures to survive the edit for the seed
             to be worth anything.  [warm_policy = None] is the
             pre-policy gate, bit-identical. *)
          let reuse_allowed =
            match config.warm_policy with
            | Some Warm_never -> false
            | Some (Warm_always | Warm_signature _) -> true
            | None -> config.warm_start
          in
          let warm =
            if not reuse_allowed then None
            else
              match Option.bind (prev_key panel) (Panel_cache.peek cache) with
              | Some prev when Array.length prev.Panel_cache.multipliers > 0 ->
                let gated =
                  match config.warm_policy with
                  | Some (Warm_signature threshold) ->
                    Panel_cache.signature_overlap prev problem >= threshold
                  | _ -> true
                in
                if gated then begin
                  stats.warm <- stats.warm + 1;
                  Some (Panel_cache.warm_start_for prev problem)
                end
                else None
              | _ -> None
          in
          Hashtbl.replace in_flight key ();
          misses_rev :=
            { m_panel = panel; m_key = key; m_problem = problem; m_warm = warm }
            :: !misses_rev
    end
  done;
  let misses = Array.of_list (List.rev !misses_rev) in
  (* phase 2: solve the misses.  [Fault.Worker] is the service layer's
     injected worker-failure point — it trips per panel-solve task so a
     supervisor above can observe a single task dying. *)
  let solve_miss ~budget m =
    Pinaccess.Fault.trip Pinaccess.Fault.Worker;
    PA.solve_panel ~config:config.pao ~budget ?warm_start:m.m_warm
      ~kind:config.kind ~panel:m.m_panel m.m_problem
  in
  let solved =
    match pool with
    | Some pool when Array.length misses > 1 && Exec.domains pool > 1 ->
      (* equal isolated slices, domain-buffered metrics and spans,
         merged back in miss (= panel) order — the [PA.optimize ~j]
         discipline *)
      let n = Array.length misses in
      let slices =
        Array.map
          (fun _ ->
            if Pinaccess.Budget.is_unlimited budget then
              Pinaccess.Budget.isolated budget ()
            else
              let seconds =
                Option.map
                  (fun s -> s /. float_of_int n)
                  (Pinaccess.Budget.remaining_seconds budget)
              in
              let work_units =
                Option.map
                  (fun w -> max 1 (w / n))
                  (Pinaccess.Budget.remaining_work budget)
              in
              Pinaccess.Budget.isolated budget ?seconds ?work_units ())
          misses
      in
      let trace_on = Obs.Trace.enabled () in
      let task i m =
        let run () = solve_miss ~budget:slices.(i) m in
        Obs.Metrics.buffered (fun () ->
            if trace_on then Obs.Trace.buffered run else (run (), []))
      in
      let results = Exec.mapi pool task misses in
      Array.mapi
        (fun i ((r, events), mbuf) ->
          Obs.Metrics.flush mbuf;
          Obs.Trace.replay events;
          Pinaccess.Budget.spend budget
            (Pinaccess.Budget.work_spent slices.(i));
          r)
        results
    | _ ->
      let panels_left = ref (Array.length misses) in
      Array.map
        (fun m ->
          let sliced = PA.panel_budget budget ~panels_left:!panels_left in
          decr panels_left;
          solve_miss ~budget:sliced m)
        misses
  in
  (* store fresh entries before accumulation so duplicate-key panels
     can re-serve them, exactly as the sequential walk would *)
  let solved_of_panel = Hashtbl.create 16 in
  Array.iteri
    (fun i m ->
      let asg, _, report, multipliers = solved.(i) in
      Panel_cache.store cache m.m_key
        (Panel_cache.entry_of_solution ~problem:m.m_problem ~assignments:asg
           ~report ~multipliers design ~panel:m.m_panel);
      Hashtbl.replace solved_of_panel m.m_panel solved.(i))
    misses;
  (* phase 3: accumulate in panel-ascending order, as [optimize] does *)
  let assignments = ref [] in
  let reports = ref [] in
  let objective = ref 0.0 in
  for panel = 0 to num_panels - 1 do
    if keys.(panel) <> "" then begin
      match Hashtbl.find_opt solved_of_panel panel with
      | Some (asg, obj, report, _) ->
        assignments := List.rev_append asg !assignments;
        reports := report :: !reports;
        objective := !objective +. obj
      | None ->
        let entry =
          match Hashtbl.find_opt hit_entries panel with
          | Some entry -> entry
          | None -> (
            (* duplicate of a miss solved this round: a fresh lookup,
               counted as the hit the sequential walk would record *)
            stats.hits <- stats.hits + 1;
            match Panel_cache.find cache (Hashtbl.find dup_keys panel) with
            | Some entry -> entry
            | None -> assert false (* just stored above *))
        in
        let asg, report = Panel_cache.materialize entry design ~panel in
        assignments := List.rev_append asg !assignments;
        reports := report :: !reports;
        objective := !objective +. report.PA.objective
    end
  done;
  let reports = List.rev !reports in
  let assignments = List.rev !assignments in
  let pao =
    {
      PA.design;
      kind = config.kind;
      assignments;
      objective = !objective;
      reports;
      degraded = List.exists (fun (r : PA.panel_report) -> r.PA.degraded) reports;
      elapsed = Pinaccess.Unix_time.now () -. started;
      (* same global recoloring the from-scratch path runs; the merged
         assignment list is panel-ordered either way, and the pass
         canonicalizes its input, so incremental == from-scratch *)
      tpl =
        Option.map
          (fun params -> PA.color_assignments params assignments)
          config.pao.PA.gen.Pinaccess.Interval_gen.tpl;
    }
  in
  PA.validate pao;
  (pao, keys)

let cpr_config (config : config) =
  {
    Router.Cpr.pao_kind = config.kind;
    pao = config.pao;
    cost = config.cost;
    rules = config.rules;
    (* the PA config is the deck's single source of truth in ECO (it is
       what panel-cache keys digest); the router deck derives from it *)
    tpl =
      Option.map Drc.Tpl.of_params
        config.pao.PA.gen.Pinaccess.Interval_gen.tpl;
    jobs = 1;
    parallel_init = false;
    order = Router.Negotiation.Hp;
    tune = None;
  }

(* Incremental routing: freeze every route the edit provably did not
   disturb and negotiate only the rest around them.  A route is frozen
   iff its net survives by name (unambiguously), was clean, kept the
   same pin shapes and the same per-pin interval assignment, its search
   window stays clear of every dirty rect, and its metal is still
   passable on the new grid. *)
let route_incremental (config : config) ~before ~(old_pao : PA.t)
    ~(old_flow : Router.Flow.t) ~dirty_rects design new_pao =
  Obs.Trace.with_span "eco.route" @@ fun () ->
  let started = Pinaccess.Unix_time.now () in
  let grid = Grid.create design in
  let specs = Router.Spec_builder.build grid ~pao:(Some new_pao) in
  let n = Array.length specs in
  let frozen = Array.make n false in
  let initial = Array.make n None in
  let space = Grid.space grid in
  let same_space =
    Design.width before = Design.width design
    && Design.height before = Design.height design
  in
  if same_space then begin
    (* nets correspond by name; an ambiguous (duplicated) name never
       freezes *)
    let old_of_name =
      let tbl = Hashtbl.create 64 and dup = Hashtbl.create 4 in
      Array.iter
        (fun (net : Net.t) ->
          if Hashtbl.mem tbl net.Net.name then Hashtbl.replace dup net.Net.name ()
          else Hashtbl.add tbl net.Net.name net.Net.id)
        (Design.nets before);
      fun name ->
        if Hashtbl.mem dup name then None else Hashtbl.find_opt tbl name
    in
    let shape_list d id =
      Design.net_pins d id
      |> List.map (fun (p : Pin.t) ->
             (p.Pin.x, I.lo p.Pin.tracks, I.hi p.Pin.tracks))
      |> List.sort compare
    in
    (* assigned (track, span) per pin, keyed by physical shape — ids are
       re-densified across rebuilds, shapes are stable and unique *)
    let slot_map (pao : PA.t) =
      let tbl = Hashtbl.create 256 in
      List.iter
        (fun (pid, (iv : AI.t)) ->
          let p = Design.pin pao.PA.design pid in
          Hashtbl.replace tbl
            (p.Pin.x, I.lo p.Pin.tracks, I.hi p.Pin.tracks)
            (iv.AI.track, I.lo iv.AI.span, I.hi iv.AI.span))
        pao.PA.assignments;
      tbl
    in
    let old_slots = slot_map old_pao and new_slots = slot_map new_pao in
    let new_pin_at = Hashtbl.create 256 in
    Array.iter
      (fun (p : Pin.t) ->
        Hashtbl.replace new_pin_at
          (p.Pin.x, I.lo p.Pin.tracks, I.hi p.Pin.tracks)
          p.Pin.id)
      (Design.pins design);
    (* the window the route was found in, plus slack for spacing and
       line-end interactions reaching past its edge; retry margins are
       irrelevant here — they only widen searches for nets that failed
       to route, and a freeze candidate has a route *)
    let margin = config.cost.Rgrid.Cost.bbox_margin + 2 in
    let die = Design.die design in
    let claimed = Hashtbl.create 1024 in
    Array.iteri
      (fun nn (spec : Router.Net_router.spec) ->
        match old_of_name (Design.net design nn).Net.name with
        | None -> ()
        | Some on -> (
          match old_flow.Router.Flow.routes.(on) with
          | Some old_route
            when old_flow.Router.Flow.clean.(on)
                 && shape_list before on = shape_list design nn
                 && List.for_all
                      (fun sh ->
                        match
                          ( Hashtbl.find_opt old_slots sh,
                            Hashtbl.find_opt new_slots sh )
                        with
                        | Some a, Some b -> a = b
                        | _ -> false)
                      (shape_list design nn)
                 && not
                      (List.exists
                         (Rect.overlaps
                            (Rect.inflate spec.Router.Net_router.bbox
                               ~by:margin ~within:die))
                         dirty_rects) ->
            let remap_ok = ref true in
            let pin_vias =
              List.map
                (fun (pid, x, y) ->
                  let p = Design.pin before pid in
                  match
                    Hashtbl.find_opt new_pin_at
                      (p.Pin.x, I.lo p.Pin.tracks, I.hi p.Pin.tracks)
                  with
                  | Some np -> (np, x, y)
                  | None ->
                    remap_ok := false;
                    (pid, x, y))
                old_route.Route.pin_vias
            in
            let nodes = old_route.Route.nodes in
            let fits =
              List.for_all
                (fun node ->
                  (not (Grid.blocked grid node))
                  && (let o = Grid.owner grid node in
                      o = -1 || o = nn)
                  &&
                  match Hashtbl.find_opt claimed node with
                  | Some net -> net = nn
                  | None -> true)
                nodes
            in
            if !remap_ok && fits then begin
              List.iter (fun node -> Hashtbl.replace claimed node nn) nodes;
              frozen.(nn) <- true;
              initial.(nn) <- Some (Route.make ~space ~net:nn ~nodes ~pin_vias)
            end
          | _ -> ()))
      specs
  end;
  let result =
    Router.Negotiation.run ~cost:config.cost ~rules:config.rules ~frozen
      ~initial grid specs
  in
  let drc =
    Router.Negotiation.drc_ripup ~cost:config.cost ~rules:config.rules ~frozen
      grid
      ~spec_of:(fun net -> Some specs.(net))
      ~routes:result.Router.Negotiation.routes ~rounds:2
  in
  let reused = Array.fold_left (fun k f -> if f then k + 1 else k) 0 frozen in
  let flow =
    Router.Flow.finish ~rules:config.rules ~reused ~grid ~pao:(Some new_pao)
      ~initial_congestion:result.Router.Negotiation.initial_congestion
      ~ripup_iterations:result.Router.Negotiation.ripup_iterations
      ~total_reroutes:(result.Router.Negotiation.total_reroutes + drc)
      ~started result.Router.Negotiation.routes
  in
  (flow, reused, result.Router.Negotiation.total_reroutes + drc)

let create ?(config = default_config) ?budget ?pool design =
  Obs.Trace.with_span "eco.create" @@ fun () ->
  let cache = Panel_cache.create ~max_entries:config.max_cache_entries () in
  let stats = { hits = 0; solved = 0; warm = 0 } in
  let pao, panel_keys =
    solve_pao_stage ~cache ~config ~prev_key:(fun _ -> None) ?budget ?pool
      design stats
  in
  let flow, cold_route_wall =
    if config.routing then begin
      let f = Router.Cpr.run_with_pao ~config:(cpr_config config) design pao in
      (Some f, f.Router.Flow.elapsed -. pao.PA.elapsed)
    end
    else (None, 0.0)
  in
  {
    config;
    cache;
    design;
    pao;
    flow;
    panel_keys;
    cold_pao_wall = pao.PA.elapsed;
    cold_route_wall;
  }

let apply ?budget ?pool t deltas =
  Obs.Trace.with_span "eco.apply" @@ fun () ->
  let before = t.design in
  let after, dirty = Dirty.compute ~before deltas in
  let gen =
    List.fold_left Delta.apply_config t.config.pao.PA.gen deltas
  in
  let config = { t.config with pao = { t.config.pao with PA.gen } } in
  let stats = { hits = 0; solved = 0; warm = 0 } in
  let prev_key panel =
    if panel < Array.length t.panel_keys && t.panel_keys.(panel) <> "" then
      Some t.panel_keys.(panel)
    else None
  in
  let pao, panel_keys =
    solve_pao_stage ~cache:t.cache ~config ~prev_key ?budget ?pool after stats
  in
  let flow, frozen_nets, rerouted_nets, route_wall =
    if not config.routing then (None, 0, 0, 0.0)
    else
      match t.flow with
      | Some old_flow ->
        let f, reused, rerouted =
          route_incremental config ~before ~old_pao:t.pao ~old_flow
            ~dirty_rects:dirty.Dirty.rects after pao
        in
        (Some f, reused, rerouted, f.Router.Flow.elapsed)
      | None ->
        let f = Router.Cpr.run_with_pao ~config:(cpr_config config) after pao in
        ( Some f,
          0,
          f.Router.Flow.total_reroutes,
          f.Router.Flow.elapsed -. pao.PA.elapsed )
  in
  t.design <- after;
  t.config <- config;
  t.pao <- pao;
  t.flow <- flow;
  t.panel_keys <- panel_keys;
  {
    deltas = List.length deltas;
    dirty_panels = dirty.Dirty.panels;
    panels = stats.hits + stats.solved;
    cache_hits = stats.hits;
    solved = stats.solved;
    warm_started = stats.warm;
    frozen_nets;
    rerouted_nets;
    pao_wall = pao.PA.elapsed;
    route_wall;
    objective = pao.PA.objective;
  }

let design t = t.design
let pao t = t.pao
let flow t = t.flow
let gen_config t = t.config.pao.PA.gen
let cache_hit_rate t = Panel_cache.hit_rate t.cache
let cache_size t = Panel_cache.size t.cache
let cold_pao_wall t = t.cold_pao_wall
let cold_route_wall t = t.cold_route_wall
