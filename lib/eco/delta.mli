(** The ECO delta language: typed, replayable edits against a placed
    design.

    An ECO (engineering change order) arrives as a batch of deltas —
    move a pin, swap a blockage, add a net — applied atomically between
    two optimization runs.  Pins are addressed by location [(x, track)]
    rather than id (ids are re-densified on every rebuild); nets are
    addressed by name.  Text serialization follows {!Netlist.Design_io}
    so edit streams can be saved, diffed and replayed
    ([bin/cpr_main --eco <file>]):

    {v
    add_pin <net> <x> <track_lo> <track_hi>
    remove_pin <x> <track>
    move_pin <x> <track> <to_x> <to_lo> <to_hi>
    add_net <name> <x>:<lo>:<hi> [<x>:<lo>:<hi> ...]
    remove_net <name>
    add_blockage <M2|M3> <track> <lo> <hi>
    remove_blockage <M2|M3> <track> <lo> <hi>
    set_clearance <n>
    step                                  # batch separator
    v}

    [#] comments and blank lines are ignored. *)

type pin_ref = { at_x : int; at_track : int }
(** A pin addressed by a grid location it covers: column [at_x], any
    track in its span. *)

type pin_shape = { x : int; tracks : Geometry.Interval.t }
(** The geometry of a (new) pin: column and contiguous track span. *)

type t =
  | Add_pin of { net : string; shape : pin_shape }
      (** grow an existing net by one pin *)
  | Remove_pin of pin_ref
      (** delete a pin; a net emptied by this is dropped with it *)
  | Move_pin of { from_ : pin_ref; shape : pin_shape }
      (** relocate a pin within its net (remove + add, same net) *)
  | Add_net of { name : string; pins : pin_shape list }
      (** a new net with a fresh name and [>= 1] pins *)
  | Remove_net of string  (** delete a net and all its pins *)
  | Add_blockage of Netlist.Blockage.t
  | Remove_blockage of Netlist.Blockage.t
      (** must match an existing blockage exactly (layer, track, span) *)
  | Set_clearance of int
      (** rule-deck change: the design-rule clearance used by interval
          generation (see {!apply_config}); a no-op on the design
          itself *)

exception Invalid of { index : int option; reason : string }
(** Raised by {!apply} / {!apply_all} when a delta does not apply to
    the design it is given (unknown net, ambiguous or missing pin,
    overlapping geometry, ...).  [index] is the position in the batch
    for {!apply_all}. *)

exception Parse_error of { line : int; reason : string }
(** Raised by the [of_string] / [load] family on malformed text. *)

val error_to_string : exn -> string
(** Render {!Invalid} or {!Parse_error} for user display.
    @raise Invalid_argument on any other exception. *)

(** {2 Serialization} *)

val to_string : t list -> string
val of_string : string -> t list
(** One batch; [step] separators are rejected here — use
    {!batches_of_string} for multi-batch streams. *)

val batches_to_string : t list list -> string
val batches_of_string : string -> t list list
(** Empty batches (consecutive [step] lines, or a trailing [step]) are
    dropped. *)

val save : string -> t list list -> unit
val load : string -> t list list
(** @raise Parse_error (also for file-system errors, with [line = 0]). *)

val pp : Format.formatter -> t -> unit

(** {2 Application} *)

val apply : Netlist.Design.t -> t -> Netlist.Design.t
(** Apply one delta, rebuilding the design (pin and net ids are
    re-densified; nets keep their names).  @raise Invalid when the
    delta does not fit the design, including when the edited design
    would violate {!Netlist.Design.create}'s invariants. *)

val apply_all : Netlist.Design.t -> t list -> Netlist.Design.t
(** Apply a batch left to right with a single rebuild at the end.
    @raise Invalid with the offending delta's [index]. *)

val apply_config :
  Pinaccess.Interval_gen.config -> t -> Pinaccess.Interval_gen.config
(** Fold rule-deck deltas ([Set_clearance]) into an interval-generation
    config; every other delta leaves it unchanged. *)
