(** Content-addressed cache of solved panels.

    The key digests everything a panel's assignment problem depends on
    — pin geometry against panel-local net indices, full net bounding
    boxes, M2 blockage spans on the panel's tracks, die width, and the
    whole rule deck / solver configuration (clearance, weighting, bbox
    margin, candidate cap, solver kind, LR schedule).  Two panels with
    equal keys have byte-identical assignment problems, so a cached
    solution can be re-served after re-mapping pin ids; net *names* are
    deliberately excluded (renaming nets must not miss).  DESIGN.md §9
    explains why the rule deck must be part of the key.

    An entry stores the selected interval per pin (in canonical pin
    order), the panel report numbers, and the final Lagrange
    multipliers keyed by clique signature [(track, cap, common_lo,
    common_hi)] — served directly on a hit, used to warm-start
    {!Pinaccess.Lagrangian.solve} on a near-miss (the panel changed,
    but many cliques survive under their signature).  The TPL deck is
    part of the key (it changes the clique set), and [cap] in the
    signature keeps an access clique from donating its multiplier to a
    same-geometry color clique. *)

type slot = { track : int; span : Geometry.Interval.t; minimum : bool }
(** The interval selected for one pin, by physical identity. *)

type entry = {
  slots : slot array;  (** canonical pin order, see {!canonical_pins} *)
  intervals : int;  (** problem size, for the re-served report *)
  cliques : int;
  objective : float;
  lr_iterations : int;
  proven_optimal : bool;
  served_by : Pinaccess.Pin_access.tier;
  degraded : bool;
  multipliers : (int * int * int * int * float) array;
      (** final LR multipliers as
          [(track, cap, common_lo, common_hi, λ)]; empty when another
          tier served the panel *)
}

type t

val create : ?max_entries:int -> unit -> t
(** LRU-evicting cache, default capacity 4096 entries.  {!find} hits
    and {!store}s refresh an entry's recency; {!peek} does not, so
    warm-start probes of superseded entries never keep them alive.
    Hits, misses and evictions are also published to the {!Obs.Metrics}
    registry as [eco.panel_cache.hits]/[.misses]/[.evictions]. *)

val key :
  ?policy:string ->
  config:Pinaccess.Pin_access.config ->
  kind:Pinaccess.Pin_access.solver_kind ->
  Netlist.Design.t ->
  panel:int ->
  string
(** Content digest of the panel's assignment problem.  [policy] is the
    canonical id of a non-default scheduling policy ([lib/tune]) the
    panel solves under; it joins the digest, so panels solved under a
    stale policy never replay for a different one.  Omitted (the
    untuned engine), the digest is byte-identical to the pre-policy
    key. *)

val find : t -> string -> entry option
(** Bumps the hit/miss counters. *)

val peek : t -> string -> entry option
(** Lookup without touching the counters — used to fetch a panel's
    *previous* entry for its warm-start multipliers after [find] on the
    new key already missed. *)

val store : t -> string -> entry -> unit
val size : t -> int
val hits : t -> int
val misses : t -> int

val evictions : t -> int
(** Entries dropped by LRU eviction over this cache's lifetime. *)

val hit_rate : t -> float
(** [hits / (hits + misses)]; [0.] before any lookup. *)

val canonical_pins : Netlist.Design.t -> panel:int -> Netlist.Pin.t array
(** The panel's pins sorted by [(x, track_lo)] — a total order, since
    no two pins share a grid — the order [entry.slots] is stored in. *)

val entry_of_solution :
  problem:Pinaccess.Problem.t ->
  assignments:(Netlist.Pin.id * Pinaccess.Access_interval.t) list ->
  report:Pinaccess.Pin_access.panel_report ->
  multipliers:float array ->
  Netlist.Design.t ->
  panel:int ->
  entry
(** Package one panel's fresh solution ([multipliers] aligned with
    [problem.cliques]) for storage. *)

val materialize :
  entry ->
  Netlist.Design.t ->
  panel:int ->
  (Netlist.Pin.id * Pinaccess.Access_interval.t) list
  * Pinaccess.Pin_access.panel_report
(** Re-serve a cached solution against a design whose panel has the
    entry's key: reconstruct shared intervals (same-net pins assigned
    the same [(track, span)] share one interval, as the deduplicating
    generator would have produced) with fresh per-panel ids, and the
    panel report under the new panel index. *)

val signature_overlap : entry -> Pinaccess.Problem.t -> float
(** Fraction of the problem's cliques whose signature [(track, cap,
    common_lo, common_hi)] carries a multiplier in the entry — how much
    of a warm start {!warm_start_for} could actually seed.  [1.0] for a
    clique-free problem (a trivial warm start loses nothing).  The
    gating measure of {!Engine}'s signature-gated warm-start policy. *)

val warm_start_for : entry -> Pinaccess.Problem.t -> float array
(** Align the entry's multipliers with a (possibly different) problem's
    cliques by signature; cliques with no surviving signature start at
    [0] — exactly the cold value. *)
