(** The incremental re-optimization engine.

    An engine owns a design and its current optimization state (pin
    access assignment, optionally a routed flow) and re-optimizes after
    each batch of {!Delta} edits, reusing everything the edit did not
    disturb:

    - clean panels are served from the content-addressed {!Panel_cache}
      (a hit requires a byte-identical assignment problem);
    - dirty panels re-solve, warm-starting
      {!Pinaccess.Lagrangian.solve} from the panel's previous
      multipliers instead of zeros (clique signatures that survived the
      edit keep their λ);
    - routing rips up only nets whose pins or selected intervals
      changed, or whose search window meets a {!Dirty} rect; every
      other clean route is frozen and re-committed, contributing
      congestion as a fixed obstacle
      ({!Router.Negotiation.run}'s [frozen]/[initial]).

    With [warm_start = false] the engine's pin access output is
    bit-identical to a from-scratch {!Pinaccess.Pin_access.optimize}
    of the edited design (the fuzz differential exploits this); with
    warm starting it is certified equivalent, not bit-equal — LR may
    stop at a different conflict-free optimum. *)

type warm_policy =
  | Warm_always  (** reuse cached multipliers whenever a previous entry has any *)
  | Warm_never  (** always cold-start (bit-identical to from-scratch) *)
  | Warm_signature of float
      (** reuse only when at least this fraction of the new problem's
          clique signatures carry a cached multiplier
          ({!Panel_cache.signature_overlap}) — a heavily-edited panel
          cold-starts rather than chase a stale optimum *)
(** ECO multiplier-reuse policies ([lib/tune]). *)

val warm_policy_to_string : warm_policy -> string
(** Canonical policy id, e.g. ["warm-sig:0.5"]. *)

type config = {
  pao : Pinaccess.Pin_access.config;
  kind : Pinaccess.Pin_access.solver_kind;
  warm_start : bool;  (** warm-start dirty panels (default [true]) *)
  warm_policy : warm_policy option;
      (** refine the [warm_start] bool (which it overrides when
          [Some]): the always/never/signature-gated axis of [lib/tune];
          [None] (default) is the pre-policy gate, bit-identical *)
  policy : string option;
      (** canonical id of the active scheduling policy, digested into
          every {!Panel_cache.key} so panels solved under a stale
          policy never replay; [None] (default) leaves keys
          byte-identical to the pre-policy engine *)
  routing : bool;
      (** maintain a routed {!Router.Flow.t} incrementally (default
          [false]: pin access only) *)
  cost : Rgrid.Cost.t;
  rules : Drc.Rules.t;
  max_cache_entries : int;
}

val default_config : config

type step_report = {
  deltas : int;
  dirty_panels : int list;  (** from {!Dirty.compute} *)
  panels : int;  (** non-empty panels visited *)
  cache_hits : int;
  solved : int;  (** panels re-solved ([panels - cache_hits]) *)
  warm_started : int;  (** re-solves seeded from cached multipliers *)
  frozen_nets : int;  (** routes carried over untouched ([routing]) *)
  rerouted_nets : int;  (** reroute attempts the negotiation made *)
  pao_wall : float;
  route_wall : float;  (** [0.] when [routing] is off *)
  objective : float;
}

type t

val create :
  ?config:config -> ?budget:Pinaccess.Budget.t -> ?pool:Exec.t ->
  Netlist.Design.t -> t
(** Cold start: solve every panel from scratch (populating the cache),
    route if configured.  [budget] meters the panel solves through the
    degradation ladder exactly as {!Pinaccess.Pin_access.optimize}
    does; [pool] fans the solves over its domains (results merged in
    panel order, so without a budget the output is bit-identical to
    the sequential walk).
    @raise Pinaccess.Cpr_error.Error as [optimize] would. *)

val apply :
  ?budget:Pinaccess.Budget.t -> ?pool:Exec.t -> t -> Delta.t list ->
  step_report
(** Apply one batch atomically and re-optimize incrementally.  [budget]
    and [pool] govern the dirty-panel re-solves as in {!create};
    cache hits are free, so a tight deadline degrades only the panels
    the edit actually touched.  On budget exhaustion the batch still
    lands (served by lower tiers, [degraded] set in the reports) —
    callers wanting a hard timeout should check
    {!Pinaccess.Budget.exhausted} before calling and reject instead.
    @raise Delta.Invalid when the batch does not fit the current
    design (the engine state is unchanged in that case). *)

val design : t -> Netlist.Design.t
val pao : t -> Pinaccess.Pin_access.t
val flow : t -> Router.Flow.t option
val gen_config : t -> Pinaccess.Interval_gen.config
(** The current rule deck (tracks [Set_clearance] deltas). *)

val cache_hit_rate : t -> float
(** Cumulative, over the engine's lifetime (cold solve included). *)

val cache_size : t -> int
val cold_pao_wall : t -> float
(** Wall-clock seconds of the cold pin access solve in {!create}. *)

val cold_route_wall : t -> float
(** Wall-clock seconds of the cold routing in {!create}; [0.] when
    routing is off. *)
