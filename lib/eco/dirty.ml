module I = Geometry.Interval
module Rect = Geometry.Rect
module Design = Netlist.Design
module Pin = Netlist.Pin
module Net = Netlist.Net
module Blockage = Netlist.Blockage

type t = { panels : int list; rects : Geometry.Rect.t list }

let clean t = t.panels = [] && t.rects = []

(* Marking happens against a specific design state: location references
   in a batch mean "at this point of the replay", so each delta is
   resolved against the design it was written for and the design it
   produced. *)

let mark_panel ~panels design p =
  if p >= 0 && p < Design.num_panels design then Hashtbl.replace panels p ()

let mark_track ~panels design track =
  mark_panel ~panels design (Design.panel_of_track design track)

let mark_net_by_name ~panels design name =
  Array.iter
    (fun (n : Net.t) ->
      if n.Net.name = name then
        List.iter
          (fun pid ->
            let p = Design.pin design pid in
            mark_track ~panels design (Pin.primary_track p))
          n.Net.pins)
    (Design.nets design)

let net_name_of_pin design { Delta.at_x; at_track } =
  let found = ref None in
  Array.iter
    (fun (p : Pin.t) ->
      if p.Pin.x = at_x && Pin.covers_track p at_track then
        found := Some (Design.net design p.Pin.net).Net.name)
    (Design.pins design);
  !found

let mark_shape ~panels design ({ Delta.x = _; tracks } : Delta.pin_shape) =
  mark_track ~panels design (I.lo tracks)

let all_panels ~panels design =
  for p = 0 to Design.num_panels design - 1 do
    Hashtbl.replace panels p ()
  done

let mark_blockage ~panels ~rects design (b : Blockage.t) =
  match b.Blockage.layer with
  | Blockage.M2 -> mark_track ~panels design b.Blockage.track
  | Blockage.M3 ->
    (* no panel goes dirty — interval generation never reads M3 — but
       routing under the blockage's footprint must be reconsidered *)
    rects :=
      Rect.make ~xs:(I.point b.Blockage.track) ~ys:b.Blockage.span :: !rects

let compute ~before deltas =
  let panels = Hashtbl.create 16 and rects = ref [] in
  let mark_delta design delta =
    match delta with
    | Delta.Add_pin { net; shape } ->
      mark_net_by_name ~panels design net;
      mark_shape ~panels design shape
    | Delta.Remove_pin r -> (
      mark_track ~panels design r.Delta.at_track;
      match net_name_of_pin design r with
      | Some name -> mark_net_by_name ~panels design name
      | None -> () (* apply will reject the delta *))
    | Delta.Move_pin { from_; shape } -> (
      mark_track ~panels design from_.Delta.at_track;
      mark_shape ~panels design shape;
      match net_name_of_pin design from_ with
      | Some name -> mark_net_by_name ~panels design name
      | None -> ())
    | Delta.Add_net { name; pins } ->
      mark_net_by_name ~panels design name;
      List.iter (mark_shape ~panels design) pins
    | Delta.Remove_net name -> mark_net_by_name ~panels design name
    | Delta.Add_blockage b | Delta.Remove_blockage b ->
      mark_blockage ~panels ~rects design b
    | Delta.Set_clearance _ -> all_panels ~panels design
  in
  (* two-sided marking: [before] each delta (old location, old net
     extent) and [after] it (new location, new net extent) *)
  let after, _ =
    List.fold_left
      (fun (design, i) delta ->
        mark_delta design delta;
        let design' =
          try Delta.apply design delta
          with Delta.Invalid { reason; _ } ->
            raise (Delta.Invalid { index = Some i; reason })
        in
        mark_delta design' delta;
        (design', i + 1))
      (before, 0) deltas
  in
  let dirty_panels =
    Hashtbl.fold (fun p () acc -> p :: acc) panels [] |> List.sort Int.compare
  in
  let band p =
    Rect.make
      ~xs:(I.make ~lo:0 ~hi:(Design.width after - 1))
      ~ys:(Design.panel_tracks after p)
  in
  (after, { panels = dirty_panels; rects = List.map band dirty_panels @ !rects })
