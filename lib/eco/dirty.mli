(** The dependency index: which panels (and which regions of the
    routing grid) a batch of deltas invalidates.

    Pin access optimization is panel-local, but a pin's candidate
    intervals depend on more than its own panel slot (DESIGN.md §9):

    - the pin's own panel — its intervals live there, and the pin's
      edges define *cutting lines* that clip every other same-track
      candidate in that panel (paper Sec. 3.1);
    - every panel holding a pin of the same net, before and after the
      edit — interval generation clips candidates to the net bounding
      box, and moving any pin of the net can stretch or shrink that box
      for all of them;
    - for an M2 blockage edit, the blockage's panel (blocked column
      spans clip candidates);
    - for a rule change ([Set_clearance]), every panel.

    M3 blockages never dirty a panel (interval generation reads M2
    geometry only) but do dirty the routing region they cover.

    The index is advisory for the panel cache — the content-addressed
    key is the authority on whether a panel's solution can be reused —
    and authoritative for routing: a route is only reconsidered when
    its net changed or its bounding box meets a dirty rect. *)

type t = {
  panels : int list;  (** dirty panel indices, ascending, deduplicated *)
  rects : Geometry.Rect.t list;
      (** dirty routing regions: one full-width band per dirty panel,
          plus the footprint of every added/removed M3 blockage *)
}

val compute :
  before:Netlist.Design.t -> Delta.t list -> Netlist.Design.t * t
(** Replay the batch delta by delta (so location references resolve
    against the design state they were written for), returning the
    edited design and the dirty set.
    @raise Delta.Invalid as {!Delta.apply_all} would, with the
    offending delta's index. *)

val clean : t -> bool
(** No dirty panels and no dirty rects. *)
