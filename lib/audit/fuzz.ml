module Design = Netlist.Design
module Net = Netlist.Net
module Pin = Netlist.Pin
module PA = Pinaccess.Pin_access
module Problem = Pinaccess.Problem
module Solution = Pinaccess.Solution
module Generator = Workloads.Generator
module Rng = Workloads.Rng

type config = {
  iterations : int;
  seed : int64;
  tolerance : float;
  max_nets : int;
  ilp : bool;
  routing : bool;
  parallel : bool;
  ilp_nodes : int;
  shrink_rounds : int;
  eco : bool;
  eco_steps : int;
  eco_edits : int;
  tpl : int option;
  tune : bool;
}

let default_config =
  {
    iterations = 200;
    seed = 0xC0FFEEL;
    tolerance = 1e-6;
    max_nets = 24;
    ilp = true;
    routing = true;
    parallel = true;
    ilp_nodes = 200_000;
    shrink_rounds = 80;
    eco = true;
    eco_steps = 3;
    eco_edits = 2;
    tpl = None;
    tune = false;
  }

type failure = {
  case : int;
  case_seed : int64;
  reason : string;
  shrunk_reason : string;
  design : Netlist.Design.t;
  deltas : Eco.Delta.t list list;
  trace : (int * string) list;
  shrink_steps : int;
}

type outcome = { cases : int; skipped : int; failure : failure option }

let scale tolerance a b =
  tolerance *. Float.max 1.0 (Float.max (Float.abs a) (Float.abs b))

(* One invariant: run [f], turn a certificate rejection or an escaped
   solver exception into a named failure. *)
let invariant name f =
  match f () with
  | Ok v -> Ok v
  | Error detail -> Error (Printf.sprintf "%s: %s" name detail)
  | exception e -> Error (Printf.sprintf "%s: exception %s" name (Printexc.to_string e))

let ( let* ) = Result.bind

let of_cert = function
  | Ok () -> Ok ()
  | Error r -> Error (Certificate.reason_to_string r)

let check_panels config design =
  let gen = PA.default_config.PA.gen in
  let result = ref (Ok ()) in
  let panels = Design.num_panels design in
  (try
     for panel = 0 to panels - 1 do
       let problem = Problem.build_panel gen design ~panel in
       if Problem.num_pins problem > 0 then begin
         let ub = Certificate.upper_bound problem in
         (* the ladder's last rung: Theorem 1 says shrinking every pin
            to its minimum interval is always feasible — certify it *)
         let minimum =
           Solution.make problem
             ~assignment:
               (Array.init (Problem.num_pins problem) (fun slot ->
                    Problem.minimum_interval problem ~slot))
         in
         let check sol name =
           match
             Certificate.certify ~tolerance:config.tolerance
               (Certificate.of_solution ~dual_bound:ub sol)
           with
           | Ok () -> ()
           | Error r ->
             result :=
               Error
                 (Printf.sprintf "panel %d %s: %s" panel name
                    (Certificate.reason_to_string r));
             raise Exit
         in
         check minimum "minimum-tier";
         let lr = Pinaccess.Lagrangian.solve problem in
         if Solution.is_conflict_free lr.Pinaccess.Lagrangian.solution then
           check lr.Pinaccess.Lagrangian.solution "LR"
       end
     done
   with Exit -> ());
  !result

(* The case's delta stream derives from the design text, so it
   regenerates identically for the original design and for every
   candidate the shrinker proposes. *)
let eco_stream config design =
  Workloads.Eco_stream.random
    ~seed:(Eco_audit.stream_seed design)
    ~steps:config.eco_steps ~edits_per_step:config.eco_edits design

let check_design config design =
  let* lr =
    invariant "lr-optimize" (fun () ->
        let lr = PA.optimize ~kind:PA.Lr design in
        PA.validate lr;
        let* () =
          of_cert (Certificate.certify_pin_access ~tolerance:config.tolerance lr)
        in
        Ok lr)
  in
  let* () = invariant "panel-certificates" (fun () -> check_panels config design) in
  let* () =
    if not config.ilp then Ok ()
    else
      invariant "ilp-vs-lr" (fun () ->
          let budget = Pinaccess.Budget.start ~work_units:config.ilp_nodes () in
          let ilp = PA.optimize ~budget ~kind:PA.Ilp design in
          PA.validate ilp;
          let* () = of_cert (Certificate.certify_pin_access ~tolerance:config.tolerance ilp) in
          (* the sandwich only binds when every panel was served by the
             exact solver running to proven optimality *)
          if ilp.PA.degraded then Ok ()
          else if
            ilp.PA.objective
            < lr.PA.objective -. scale config.tolerance ilp.PA.objective lr.PA.objective
          then
            Error
              (Printf.sprintf
                 "proven-optimal ILP objective %.6f below LR feasible %.6f"
                 ilp.PA.objective lr.PA.objective)
          else Ok ())
  in
  let* () =
    if not config.parallel then Ok ()
    else
      invariant "parallel-determinism" (fun () ->
          let par = PA.optimize ~kind:PA.Lr ~j:2 design in
          if par.PA.objective <> lr.PA.objective then
            Error
              (Printf.sprintf "objective diverged: seq %.9f, -j2 %.9f"
                 lr.PA.objective par.PA.objective)
          else if par.PA.reports <> lr.PA.reports then
            Error "panel reports diverged"
          else if par.PA.assignments <> lr.PA.assignments then
            Error "assignments diverged"
          else Ok ())
  in
  let* () =
    if not config.routing then Ok ()
    else
      let audit name flow =
        invariant name (fun () ->
            match Flow_audit.run flow with
            | [] -> Ok ()
            | i :: _ -> Error (Flow_audit.issue_to_string i))
      in
      let* () = audit "cpr-flow" (Router.Cpr.run design) in
      audit "sequential-flow" (Router.Sequential.run design)
  in
  let* () =
    if not config.eco then Ok ()
    else
      invariant "eco-differential" (fun () ->
          Eco_audit.check ~tolerance:config.tolerance design
            (eco_stream config design))
  in
  let* () =
    match config.tpl with
    | None -> Ok ()
    | Some colors ->
      (* the TPL campaign: rerun the whole ladder under a color deck and
         hold it to the same certificates, now including the coloring *)
      let deck = Drc.Tpl.make ~colors () in
      let pa_config =
        {
          PA.default_config with
          PA.gen =
            {
              PA.default_config.PA.gen with
              Pinaccess.Interval_gen.tpl = Some (Drc.Tpl.params deck);
            };
        }
      in
      let* tpl_lr =
        invariant "tpl-lr" (fun () ->
            let r = PA.optimize ~config:pa_config ~kind:PA.Lr design in
            PA.validate r;
            let* () =
              of_cert (Certificate.certify_pin_access ~tolerance:config.tolerance r)
            in
            match r.PA.tpl with
            | None -> Error "no coloring attached despite a TPL deck"
            | Some _ -> Ok r)
      in
      let* () =
        if not config.parallel then Ok ()
        else
          invariant "tpl-parallel-determinism" (fun () ->
              let par = PA.optimize ~config:pa_config ~kind:PA.Lr ~j:2 design in
              if par.PA.assignments <> tpl_lr.PA.assignments then
                Error "assignments diverged under TPL"
              else if par.PA.tpl <> tpl_lr.PA.tpl then
                Error "colorings diverged under TPL"
              else Ok ())
      in
      if not config.routing then Ok ()
      else
        invariant "tpl-flow" (fun () ->
            let rc = { Router.Cpr.default_config with Router.Cpr.tpl = Some deck } in
            match Flow_audit.run (Router.Cpr.run ~config:rc design) with
            | [] -> Ok ()
            | i :: _ -> Error (Flow_audit.issue_to_string i))
  in
  let* () =
    if not config.tune then Ok ()
    else begin
      (* The tune campaign: a bandit-tuned solve must be exactly as
         auditable as the untuned one — certified, sandwiched under
         the solver-independent upper bound, bit-identical across -j,
         and reproducible from its recorded policy trace.  The seed
         derives from the design text (like the ECO stream's), so every
         shrink candidate re-tunes deterministically. *)
      let tseed = Eco_audit.stream_seed design in
      let fresh () = Tune.Tuner.create ~seed:tseed (Tune.Tuner.Bandit tseed) in
      let t1 = fresh () in
      let* tuned =
        invariant "tune-certified" (fun () ->
            let r =
              PA.optimize ?tune:(Tune.Tuner.pa_hook t1) ~kind:PA.Lr design
            in
            PA.validate r;
            let* () =
              of_cert
                (Certificate.certify_pin_access ~tolerance:config.tolerance r)
            in
            Ok r)
      in
      let* () =
        invariant "tune-sandwich" (fun () ->
            let gen = PA.default_config.PA.gen in
            let ub = ref 0.0 in
            for panel = 0 to Design.num_panels design - 1 do
              let problem = Problem.build_panel gen design ~panel in
              if Problem.num_pins problem > 0 then
                ub := !ub +. Certificate.upper_bound problem
            done;
            if
              tuned.PA.objective
              > !ub +. scale config.tolerance tuned.PA.objective !ub
            then
              Error
                (Printf.sprintf
                   "tuned objective %.6f above certified upper bound %.6f"
                   tuned.PA.objective !ub)
            else if
              lr.PA.objective
              > !ub +. scale config.tolerance lr.PA.objective !ub
            then
              Error
                (Printf.sprintf
                   "untuned objective %.6f above certified upper bound %.6f"
                   lr.PA.objective !ub)
            else Ok ())
      in
      let* () =
        if not config.parallel then Ok ()
        else
          invariant "tune-determinism" (fun () ->
              let t2 = fresh () in
              let par =
                PA.optimize ?tune:(Tune.Tuner.pa_hook t2) ~kind:PA.Lr ~j:2
                  design
              in
              if par.PA.assignments <> tuned.PA.assignments then
                Error "tuned assignments diverged between -j1 and -j2"
              else if Tune.Tuner.trace t2 <> Tune.Tuner.trace t1 then
                Error "policy traces diverged between -j1 and -j2"
              else Ok ())
      in
      invariant "tune-replay" (fun () ->
          let r =
            PA.optimize
              ~tune:(Tune.Tuner.replay_hook (Tune.Tuner.trace t1))
              ~kind:PA.Lr design
          in
          if r.PA.assignments <> tuned.PA.assignments then
            Error "trace replay did not reproduce the tuned assignments"
          else Ok ())
    end
  in
  Ok ()

(* The policy trace of a design's (deterministic) bandit-tuned solve:
   what gets saved next to a tune-campaign repro. *)
let tune_trace design =
  let tseed = Eco_audit.stream_seed design in
  let t = Tune.Tuner.create ~seed:tseed (Tune.Tuner.Bandit tseed) in
  (try
     ignore
       (PA.optimize ?tune:(Tune.Tuner.pa_hook t) ~kind:PA.Lr design : PA.t)
   with _ -> ());
  Tune.Tuner.trace t

let replay_with_trace config design assignments =
  invariant "tune-trace-replay" (fun () ->
      let r =
        PA.optimize
          ~tune:(Tune.Tuner.replay_hook assignments)
          ~kind:PA.Lr design
      in
      PA.validate r;
      of_cert (Certificate.certify_pin_access ~tolerance:config.tolerance r))

(* ----------------------------------------------------------------- *)
(* Shrinking                                                          *)
(* ----------------------------------------------------------------- *)

(* Rebuild a sub-design of [design] keeping only [nets] (re-densifying
   ids through the Builder) and [blockages]. *)
let rebuild design ~nets ~blockages =
  let specs =
    List.map
      (fun (net : Net.t) ->
        ( net.Net.name,
          List.map
            (fun (p : Pin.t) ->
              { Netlist.Builder.x = p.Pin.x; tracks = p.Pin.tracks })
            (Design.net_pins design net.Net.id) ))
      nets
  in
  Netlist.Builder.design ~name:(Design.name design) ~width:(Design.width design)
    ~height:(Design.height design) ~row_height:(Design.row_height design)
    ~nets:specs ~blockages ()

let shrink config design =
  let evals = ref config.shrink_rounds in
  let steps = ref 0 in
  let fails d =
    !evals > 0
    && begin
         decr evals;
         Result.is_error (check_design config d)
       end
  in
  if not (fails design) then (design, 0)
  else begin
    let nets = ref (Array.to_list (Design.nets design)) in
    let blockages = ref (Design.blockages design) in
    let candidate nets' blockages' =
      match rebuild design ~nets:nets' ~blockages:blockages' with
      | d -> if fails d then Some d else None
      | exception _ -> None
    in
    let adopt nets' blockages' =
      match candidate nets' blockages' with
      | Some _ ->
        incr steps;
        nets := nets';
        blockages := blockages';
        true
      | None -> false
    in
    (* ddmin over the net list: try dropping ever-smaller chunks *)
    let rec reduce chunk =
      let n = List.length !nets in
      if chunk >= 1 && n > 1 then begin
        let dropped_some = ref false in
        let pos = ref 0 in
        while !pos < List.length !nets && List.length !nets > 1 do
          let keep =
            List.filteri
              (fun i _ -> i < !pos || i >= !pos + chunk)
              !nets
          in
          if keep <> [] && adopt keep !blockages then dropped_some := true
          else pos := !pos + chunk
        done;
        if chunk > 1 || !dropped_some then
          reduce (max 1 (min (chunk / 2) (List.length !nets / 2)))
      end
    in
    reduce (max 1 (List.length !nets / 2));
    (* then the blockages: all at once, else one at a time *)
    if !blockages <> [] && not (adopt !nets []) then
      List.iter
        (fun b ->
          let keep = List.filter (fun b' -> b' != b) !blockages in
          ignore (adopt !nets keep : bool))
        !blockages;
    (rebuild design ~nets:!nets ~blockages:!blockages, !steps)
  end

let run ?(progress = fun _ -> ()) config =
  let rng = Rng.create config.seed in
  let rec go case skipped =
    if case > config.iterations then
      { cases = config.iterations; skipped; failure = None }
    else begin
      let case_seed = Rng.next rng in
      let params =
        Generator.random_params ~max_nets:config.max_nets ~seed:case_seed ()
      in
      match Generator.generate params with
      | exception Invalid_argument _ ->
        (* the die could not host the drawn pin count — not a solver
           defect, just an infertile case *)
        progress case;
        go (case + 1) (skipped + 1)
      | design ->
        (match check_design config design with
        | Ok () ->
          progress case;
          go (case + 1) skipped
        | Error reason ->
          let shrunk, shrink_steps = shrink config design in
          let shrunk_reason =
            match check_design config shrunk with
            | Error r -> r
            | Ok () -> reason
          in
          (* when the surviving violation is the ECO differential, also
             ddmin the delta stream so the repro is (design, deltas) *)
          let deltas, delta_steps =
            if
              config.eco
              && String.starts_with ~prefix:"eco-differential" shrunk_reason
            then
              Eco_audit.shrink_stream ~tolerance:config.tolerance
                ~rounds:config.shrink_rounds shrunk (eco_stream config shrunk)
            else ([], 0)
          in
          (* a tune-campaign failure ships its policy trace so the
             repro replays under exactly the policies the bandit chose *)
          let trace =
            if config.tune && String.starts_with ~prefix:"tune" shrunk_reason
            then tune_trace shrunk
            else []
          in
          {
            cases = case;
            skipped;
            failure =
              Some
                {
                  case;
                  case_seed;
                  reason;
                  shrunk_reason;
                  design = shrunk;
                  deltas;
                  trace;
                  shrink_steps = shrink_steps + delta_steps;
                };
          })
    end
  in
  go 1 0
