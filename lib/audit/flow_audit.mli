(** Independent audit of a finished routing flow.

    {!Router.Flow.finish} computes the DRC verdicts and per-net [clean]
    flags the evaluation metrics are built on; this module replays that
    bookkeeping from the raw routes and flags every divergence:

    - the final metal is re-extracted from the routes and must be
      short-free;
    - the full DRC deck ({!Drc.Check.run}) is re-run on the re-extracted
      layout under the rules the flow recorded, and the per-kind
      violation counts must match what the flow reported;
    - when the flow recorded a TPL deck, the metal is re-colored under
      it and the recorded stats must reproduce;
    - the [clean] flag of every net is re-derived (connected and not
      blamed by the replayed DRC or TPL coloring) and must match;
    - every clean net must be electrically sound: one connected
      component reaching every pin ({!Router.Verify.check_flow}), so
      the routability the paper reports counts only truly routed nets.

    An empty issue list means the flow's claims survive independent
    re-derivation. *)

type issue =
  | Short of { detail : string }
      (** re-extraction found two nets on one grid — the routes are not
          even a legal layout *)
  | Violation_miscount of { kind : string; recorded : int; replayed : int }
      (** the flow reported a different number of DRC violations of
          this kind than an independent re-run finds *)
  | Clean_mismatch of { net : Netlist.Net.id; recorded : bool }
      (** the flow's [clean] flag for the net disagrees with the
          re-derived verdict ([recorded] is the flow's claim) *)
  | Tpl_miscount of { field : string; recorded : int; replayed : int }
      (** the flow ran color-constrained and its recorded TPL stats
          (feature/stitch/uncolored counts) disagree with re-coloring
          the re-extracted metal under the recorded deck *)
  | Electrical of Router.Verify.issue
      (** a net counted as routed is not electrically connected *)

val issue_to_string : issue -> string

val run : Router.Flow.t -> issue list
(** All divergences between the flow's claims and the independent
    replay, in deterministic order; [[]] certifies the flow clean. *)
