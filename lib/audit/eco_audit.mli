(** Independent audit of the incremental ECO engine.

    {!Eco.Engine} promises that applying a delta stream incrementally
    — cache hits, warm starts, frozen routes — lands on the same
    answer a from-scratch run over the edited design would.  This
    module replays that promise batch by batch:

    - after every batch the engine's pin access state must pass
      {!Pinaccess.Pin_access.validate} and
      {!Certificate.certify_pin_access};
    - a from-scratch {!Pinaccess.Pin_access.optimize} of the edited
      design (under the same folded rule deck) must also certify;
    - with warm starting off the two results must agree exactly:
      bit-equal objective, bit-equal panel reports, and identical
      physical assignments (per pin shape, since interval ids are not
      stable across cache materialization);
    - when the engine maintains a routed flow, {!Flow_audit.run} must
      certify it clean after every batch. *)

val stream_seed : Netlist.Design.t -> int64
(** Deterministic fuzz-stream seed derived from the design text, so a
    failing case replays from the design alone. *)

val check :
  ?tolerance:float ->
  ?config:Eco.Engine.config ->
  Netlist.Design.t ->
  Eco.Delta.t list list ->
  (unit, string) result
(** Run the differential over one stream; [Error] names the first
    violated invariant and the batch it died on.  [config] defaults to
    {!Eco.Engine.default_config} with [warm_start = false] (the
    bit-identity mode).  A stream that does not apply to the design
    ({!Eco.Delta.Invalid}) is vacuously [Ok] — the shrinker relies on
    this to discard invalid sub-streams as non-failing. *)

val shrink_stream :
  ?tolerance:float ->
  ?config:Eco.Engine.config ->
  ?rounds:int ->
  Netlist.Design.t ->
  Eco.Delta.t list list ->
  Eco.Delta.t list list * int
(** Delta-debug a failing stream to a smaller one that still fails
    {!check} against the same design: ddmin over whole batches first,
    then over individual deltas inside the surviving batches.  Returns
    the shrunk stream and the number of successful reduction steps;
    the input is returned unchanged when it does not fail.  [rounds]
    (default 60) caps candidate evaluations. *)
