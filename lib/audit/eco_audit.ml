module I = Geometry.Interval
module Design = Netlist.Design
module Pin = Netlist.Pin
module PA = Pinaccess.Pin_access
module AI = Pinaccess.Access_interval
module Engine = Eco.Engine
module Delta = Eco.Delta

(* [Hashtbl.hash] over the canonical design text is stable across runs
   and machines, which is all a replayable seed needs. *)
let stream_seed design =
  Int64.of_int (Hashtbl.hash (Netlist.Design_io.to_string design))

let default_config = { Engine.default_config with warm_start = false }

(* The assignment by physical identity: interval ids are re-densified
   by cache materialization, so the comparison keys each pin by its
   shape and each interval by (track, span, minimum). *)
let physical (pao : PA.t) =
  List.map
    (fun (pid, (iv : AI.t)) ->
      let p = Design.pin pao.PA.design pid in
      ( (p.Pin.x, I.lo p.Pin.tracks, I.hi p.Pin.tracks),
        (iv.AI.track, I.lo iv.AI.span, I.hi iv.AI.span, iv.AI.kind = AI.Minimum)
      ))
    pao.PA.assignments
  |> List.sort compare

let certify ~tolerance ~what ~step (pao : PA.t) =
  PA.validate pao;
  match Certificate.certify_pin_access ~tolerance pao with
  | Ok () -> ()
  | Error r ->
    failwith
      (Printf.sprintf "step %d: %s rejected: %s" step what
         (Certificate.reason_to_string r))

let audit_flow ~step engine =
  match Engine.flow engine with
  | None -> ()
  | Some flow -> (
    match Flow_audit.run flow with
    | [] -> ()
    | issue :: _ ->
      failwith
        (Printf.sprintf "step %d: flow audit: %s" step
           (Flow_audit.issue_to_string issue)))

let check ?(tolerance = 1e-6) ?(config = default_config) design batches =
  match
    let engine = Engine.create ~config design in
    certify ~tolerance ~what:"cold engine state" ~step:0 (Engine.pao engine);
    audit_flow ~step:0 engine;
    List.iteri
      (fun i batch ->
        let step = i + 1 in
        ignore (Engine.apply engine batch : Engine.step_report);
        let pao = Engine.pao engine in
        certify ~tolerance ~what:"incremental state" ~step pao;
        audit_flow ~step engine;
        let scratch_config =
          { config.Engine.pao with PA.gen = Engine.gen_config engine }
        in
        let scratch =
          PA.optimize ~config:scratch_config ~kind:config.Engine.kind
            (Engine.design engine)
        in
        certify ~tolerance ~what:"from-scratch reference" ~step scratch;
        if not config.Engine.warm_start then begin
          if pao.PA.objective <> scratch.PA.objective then
            failwith
              (Printf.sprintf
                 "step %d: objective diverged: incremental %.9f, scratch %.9f"
                 step pao.PA.objective scratch.PA.objective);
          if pao.PA.reports <> scratch.PA.reports then
            failwith (Printf.sprintf "step %d: panel reports diverged" step);
          if physical pao <> physical scratch then
            failwith
              (Printf.sprintf "step %d: physical assignments diverged" step)
        end)
      batches
  with
  | () -> Ok ()
  | exception Delta.Invalid _ -> Ok () (* sub-stream no longer applies *)
  | exception Failure msg -> Error msg
  | exception e -> Error (Printf.sprintf "exception %s" (Printexc.to_string e))

(* ------------------------------------------------------------------ *)
(* Stream shrinking (ddmin)                                            *)
(* ------------------------------------------------------------------ *)

(* One ddmin sweep over a list: try dropping ever-smaller chunks while
   the predicate keeps failing; mirrors Fuzz.shrink's net reduction. *)
let reduce_list fails steps xs =
  let cur = ref xs in
  let rec reduce chunk =
    if chunk >= 1 && List.length !cur > 1 then begin
      let dropped_some = ref false in
      let pos = ref 0 in
      while !pos < List.length !cur && List.length !cur > 1 do
        let keep =
          List.filteri (fun i _ -> i < !pos || i >= !pos + chunk) !cur
        in
        if keep <> [] && fails keep then begin
          incr steps;
          cur := keep;
          dropped_some := true
        end
        else pos := !pos + chunk
      done;
      if chunk > 1 || !dropped_some then
        reduce (max 1 (min (chunk / 2) (List.length !cur / 2)))
    end
  in
  reduce (max 1 (List.length !cur / 2));
  !cur

let shrink_stream ?(tolerance = 1e-6) ?(config = default_config) ?(rounds = 60)
    design batches =
  let evals = ref rounds in
  let steps = ref 0 in
  let fails bs =
    bs <> [] && !evals > 0
    && begin
         decr evals;
         Result.is_error (check ~tolerance ~config design bs)
       end
  in
  if not (fails batches) then (batches, 0)
  else begin
    (* whole batches first *)
    let cur = ref (reduce_list fails steps batches) in
    (* then single deltas inside the survivors, preserving batch
       structure and dropping batches that empty out *)
    let flat =
      List.concat (List.mapi (fun b ds -> List.map (fun d -> (b, d)) ds) !cur)
    in
    let rebuild flat =
      let by_batch = Hashtbl.create 8 in
      List.iter
        (fun (b, d) ->
          Hashtbl.replace by_batch b
            (d :: Option.value ~default:[] (Hashtbl.find_opt by_batch b)))
        (List.rev flat);
      List.filter_map
        (fun b -> Hashtbl.find_opt by_batch b)
        (List.init (List.length !cur) Fun.id)
    in
    let flat' = reduce_list (fun f -> fails (rebuild f)) steps flat in
    cur := rebuild flat';
    (!cur, !steps)
  end
