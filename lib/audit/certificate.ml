module I = Geometry.Interval
module Design = Netlist.Design
module Pin = Netlist.Pin
module AI = Pinaccess.Access_interval
module Problem = Pinaccess.Problem
module Solution = Pinaccess.Solution
module Objective = Pinaccess.Objective

type reason =
  | Duplicate_pin of Netlist.Pin.id
  | Foreign_pin of Netlist.Pin.id
  | Unassigned_pin of Netlist.Pin.id
  | Uncovered_pin of { pin : Netlist.Pin.id; detail : string }
  | Illegal_interval of { pin : Netlist.Pin.id; detail : string }
  | Multiply_served of { pin : Netlist.Pin.id; count : int }
  | Overlap_conflict of {
      track : int;
      net_a : Netlist.Net.id;
      net_b : Netlist.Net.id;
    }
  | Objective_mismatch of { reported : float; recomputed : float }
  | Dual_bound_violated of { reported : float; bound : float }
  | Tpl_features_mismatch of { claimed : int; derived : int }
  | Tpl_illegal_coloring of { detail : string }
  | Tpl_count_mismatch of { field : string; claimed : int; actual : int }

let reason_to_string = function
  | Duplicate_pin pin -> Printf.sprintf "pin %d assigned more than once" pin
  | Foreign_pin pin -> Printf.sprintf "pin %d is not part of the instance" pin
  | Unassigned_pin pin -> Printf.sprintf "pin %d has no interval" pin
  | Uncovered_pin { pin; detail } ->
    Printf.sprintf "interval does not cover pin %d: %s" pin detail
  | Illegal_interval { pin; detail } ->
    Printf.sprintf "illegal interval for pin %d: %s" pin detail
  | Multiply_served { pin; count } ->
    Printf.sprintf "(1b) violated: %d selected intervals serve pin %d" count pin
  | Overlap_conflict { track; net_a; net_b } ->
    Printf.sprintf "(1c) violated: nets %d and %d overlap on track %d" net_a
      net_b track
  | Objective_mismatch { reported; recomputed } ->
    Printf.sprintf "objective mismatch: reported %.6f, recomputed %.6f"
      reported recomputed
  | Dual_bound_violated { reported; bound } ->
    Printf.sprintf "dual bound violated: reported %.6f above bound %.6f"
      reported bound
  | Tpl_features_mismatch { claimed; derived } ->
    Printf.sprintf
      "TPL feature set mismatch: coloring claims %d features, assignment \
       derives %d"
      claimed derived
  | Tpl_illegal_coloring { detail } ->
    Printf.sprintf "TPL coloring illegal: %s" detail
  | Tpl_count_mismatch { field; claimed; actual } ->
    Printf.sprintf "TPL %s count mismatch: claimed %d, actual %d" field
      claimed actual

type t = {
  problem : Problem.t;
  assignment : (Netlist.Pin.id * AI.t) list;
  reported_objective : float;
  dual_bound : float option;
}

let of_solution ?dual_bound (sol : Solution.t) =
  let problem = sol.Solution.problem in
  let assignment =
    Array.to_list
      (Array.mapi
         (fun slot id ->
           (problem.Problem.pin_ids.(slot), problem.Problem.intervals.(id)))
         sol.Solution.assignment)
  in
  {
    problem;
    assignment;
    reported_objective = Solution.objective sol;
    dual_bound;
  }

(* physical identity of an interval: per-panel dense ids are not unique
   across panels, so distinctness is judged on what the metal is *)
let physical_compare (a : AI.t) (b : AI.t) =
  let c = Int.compare a.AI.net b.AI.net in
  if c <> 0 then c
  else
    let c = Int.compare a.AI.track b.AI.track in
    if c <> 0 then c else I.compare a.AI.span b.AI.span

(* The core examiner, shared by the problem-level and design-level
   entry points.  [expected] is the exact pin set that must be covered;
   everything else is re-derived from [design] geometry alone. *)
let examine ~tolerance ~weighting ~window ~design ~expected ~assignment
    ~reported ~dual_bound =
  let faults = ref [] in
  let fault r = faults := r :: !faults in
  let expected_set = Hashtbl.create (Array.length expected) in
  Array.iter (fun pid -> Hashtbl.replace expected_set pid ()) expected;
  (* 1. one interval per pin: no duplicates, no foreign pins, full
     coverage of the expected pin set *)
  let seen = Hashtbl.create (Array.length expected) in
  List.iter
    (fun (pid, _) ->
      if Hashtbl.mem seen pid then fault (Duplicate_pin pid)
      else begin
        Hashtbl.replace seen pid ();
        if not (Hashtbl.mem expected_set pid) then fault (Foreign_pin pid)
      end)
    assignment;
  Array.iter
    (fun pid -> if not (Hashtbl.mem seen pid) then fault (Unassigned_pin pid))
    expected;
  (* 2. coverage: the interval is the pin's metal, re-derived from pin
     geometry (not from the interval's own pin list) *)
  let die_tracks = Design.height design - 1 in
  let die_cols = Design.width design - 1 in
  List.iter
    (fun (pid, (iv : AI.t)) ->
      if Hashtbl.mem expected_set pid then begin
        let pin = Design.pin design pid in
        if iv.AI.net <> pin.Pin.net then
          fault
            (Uncovered_pin
               {
                 pin = pid;
                 detail =
                   Printf.sprintf "interval net %d, pin net %d" iv.AI.net
                     pin.Pin.net;
               })
        else if not (Pin.covers_track pin iv.AI.track) then
          fault
            (Uncovered_pin
               {
                 pin = pid;
                 detail =
                   Printf.sprintf "pin does not reach track %d" iv.AI.track;
               })
        else if not (I.contains iv.AI.span pin.Pin.x) then
          fault
            (Uncovered_pin
               {
                 pin = pid;
                 detail =
                   Printf.sprintf "pin column %d outside span %s" pin.Pin.x
                     (I.to_string iv.AI.span);
               });
        (* 3. legality: on the die, inside the net bounding box,
           clear of M2 blockages (the generation clipping rules) *)
        let illegal detail = fault (Illegal_interval { pin = pid; detail }) in
        if iv.AI.track < 0 || iv.AI.track > die_tracks then
          illegal (Printf.sprintf "track %d off the die" iv.AI.track)
        else if I.lo iv.AI.span < 0 || I.hi iv.AI.span > die_cols then
          illegal (Printf.sprintf "span %s off the die" (I.to_string iv.AI.span))
        else begin
          (* the generation bound re-derived from geometry: the net
             bounding box, grown by the rule deck's access window when
             the instance was generated with one (min_window) *)
          let bbox = Geometry.Rect.xs (Design.net_bbox design iv.AI.net) in
          let allowed =
            match window with
            | None -> bbox
            | Some w ->
              let die_x = I.make ~lo:0 ~hi:die_cols in
              (match
                 I.clamp (I.make ~lo:(pin.Pin.x - w) ~hi:(pin.Pin.x + w))
                   ~within:die_x
               with
              | Some want -> I.hull bbox want
              | None -> bbox)
          in
          if not (I.contains_interval allowed iv.AI.span) then
            illegal
              (Printf.sprintf "span %s outside generation bound %s"
                 (I.to_string iv.AI.span) (I.to_string allowed));
          List.iter
            (fun blocked ->
              if I.overlaps blocked iv.AI.span then
                illegal
                  (Printf.sprintf "span %s overlaps blockage %s on track %d"
                     (I.to_string iv.AI.span) (I.to_string blocked) iv.AI.track))
            (Design.m2_blockages_on_track design iv.AI.track)
        end
      end)
    assignment;
  (* distinct selected intervals by physical identity, with the pins
     assigned to each *)
  let table = Hashtbl.create 64 in
  List.iter
    (fun (pid, (iv : AI.t)) ->
      let key = (iv.AI.net, iv.AI.track, I.lo iv.AI.span, I.hi iv.AI.span) in
      let iv0, pins =
        Option.value ~default:(iv, []) (Hashtbl.find_opt table key)
      in
      Hashtbl.replace table key (iv0, pid :: pins))
    assignment;
  let distinct =
    Hashtbl.fold (fun _ v acc -> v :: acc) table []
    |> List.sort (fun (a, _) (b, _) -> physical_compare a b)
  in
  (* 4. formulation (1b): a pin may be served by at most one distinct
     selected interval (an interval serves every pin on its pin list,
     selected atomically in the ILP) *)
  let served = Hashtbl.create (Array.length expected) in
  List.iter
    (fun ((iv : AI.t), _) ->
      List.iter
        (fun pid ->
          if Hashtbl.mem expected_set pid then
            Hashtbl.replace served pid
              (1 + Option.value ~default:0 (Hashtbl.find_opt served pid)))
        iv.AI.pins)
    distinct;
  Hashtbl.iter
    (fun pid count ->
      if count > 1 then fault (Multiply_served { pin = pid; count }))
    served;
  (* 5. conflict-freeness, the hard invariant: brute-force O(n²)
     pairwise overlap over distinct selected intervals — deliberately
     not the sweep the solvers used to build their cliques *)
  let arr = Array.of_list (List.map fst distinct) in
  let n = Array.length arr in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let a = arr.(i) and b = arr.(j) in
      if a.AI.net <> b.AI.net && AI.overlaps a b then
        fault
          (Overlap_conflict
             { track = a.AI.track; net_a = a.AI.net; net_b = b.AI.net })
    done
  done;
  (* 6. objective (1a): f(len) once per pin the interval is assigned to *)
  let recomputed =
    List.fold_left
      (fun acc ((iv : AI.t), pins) ->
        acc
        +. (Objective.f weighting (AI.length iv)
           *. float_of_int (List.length pins)))
      0.0 distinct
  in
  let scale v w = tolerance *. Float.max 1.0 (Float.max (Float.abs v) (Float.abs w)) in
  if Float.abs (reported -. recomputed) > scale reported recomputed then
    fault (Objective_mismatch { reported; recomputed });
  (* 7. dual bound sandwich: recomputed ≤ reported ≤ L(λ) *)
  (match dual_bound with
  | Some bound when reported > bound +. scale reported bound ->
    fault (Dual_bound_violated { reported; bound })
  | Some _ | None -> ());
  List.rev !faults

let violations ?(tolerance = 1e-6) t =
  examine ~tolerance
    ~weighting:t.problem.Problem.config.Pinaccess.Interval_gen.weighting
    ~window:t.problem.Problem.config.Pinaccess.Interval_gen.min_window
    ~design:t.problem.Problem.design ~expected:t.problem.Problem.pin_ids
    ~assignment:t.assignment ~reported:t.reported_objective
    ~dual_bound:t.dual_bound

let certify ?tolerance t =
  match violations ?tolerance t with [] -> Ok () | r :: _ -> Error r

let upper_bound (problem : Problem.t) =
  let weighting = problem.Problem.config.Pinaccess.Interval_gen.weighting in
  let intervals = problem.Problem.intervals in
  Array.fold_left
    (fun acc candidates ->
      acc
      +. Array.fold_left
           (fun best id ->
             Float.max best (Objective.f weighting (AI.length intervals.(id))))
           0.0 candidates)
    0.0 problem.Problem.pin_candidates

(* TPL claims are re-derived from geometry: the feature list must be
   exactly what the assignment's distinct intervals canonicalize to,
   every claimed color must be legal under the deck (range, stitch
   geometry, no same-color clash), and the stitch/residual counts must
   match the assignment array.  An [Uncolored] feature is *not* a
   fault by itself — it is the honest residual the flow reports like
   [degraded] — but lying about it is. *)
let examine_tpl (c : Pinaccess.Pin_access.tpl_coloring) ~assignment =
  let module CG = Solver.Color_graph in
  let faults = ref [] in
  let fault r = faults := r :: !faults in
  let derived =
    let table = Hashtbl.create 64 in
    List.iter
      (fun (_, (iv : AI.t)) ->
        Hashtbl.replace table
          (iv.AI.track, I.lo iv.AI.span, I.hi iv.AI.span, iv.AI.net)
          ())
      assignment;
    Hashtbl.fold (fun key () acc -> key :: acc) table []
    |> List.sort compare |> Array.of_list
  in
  if derived <> c.Pinaccess.Pin_access.features then
    fault
      (Tpl_features_mismatch
         {
           claimed = Array.length c.Pinaccess.Pin_access.features;
           derived = Array.length derived;
         })
  else begin
    let feats =
      Array.map
        (fun (track, lo, hi, _net) -> CG.feature ~track ~lo ~hi)
        derived
    in
    (match
       CG.verify c.Pinaccess.Pin_access.tpl_params feats
         c.Pinaccess.Pin_access.colors
     with
    | Ok () -> ()
    | Error v ->
      fault (Tpl_illegal_coloring { detail = CG.violation_to_string v }));
    let count p = Array.fold_left (fun k a -> if p a then k + 1 else k) 0 in
    let stitched =
      count (function CG.Stitched _ -> true | _ -> false)
        c.Pinaccess.Pin_access.colors
    in
    let uncolored =
      count (function CG.Uncolored -> true | _ -> false)
        c.Pinaccess.Pin_access.colors
    in
    if stitched <> c.Pinaccess.Pin_access.tpl_stitches then
      fault
        (Tpl_count_mismatch
           {
             field = "stitch";
             claimed = c.Pinaccess.Pin_access.tpl_stitches;
             actual = stitched;
           });
    if uncolored <> c.Pinaccess.Pin_access.tpl_residual then
      fault
        (Tpl_count_mismatch
           {
             field = "residual";
             claimed = c.Pinaccess.Pin_access.tpl_residual;
             actual = uncolored;
           })
  end;
  List.rev !faults

let certify_pin_access ?(tolerance = 1e-6)
    ?(weighting = Pinaccess.Objective.default) ?window
    (pao : Pinaccess.Pin_access.t) =
  let design = pao.Pinaccess.Pin_access.design in
  let expected =
    Array.map (fun (p : Pin.t) -> p.Pin.id) (Design.pins design)
  in
  let base =
    examine ~tolerance ~weighting ~window ~design ~expected
      ~assignment:pao.Pinaccess.Pin_access.assignments
      ~reported:pao.Pinaccess.Pin_access.objective ~dual_bound:None
  in
  let tpl =
    match pao.Pinaccess.Pin_access.tpl with
    | None -> []
    | Some c ->
      examine_tpl c ~assignment:pao.Pinaccess.Pin_access.assignments
  in
  match base @ tpl with [] -> Ok () | r :: _ -> Error r
