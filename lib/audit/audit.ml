(** Independent solution certification and differential fuzzing.

    The solvers and routers grade their own homework; this library is
    the external examiner.  {!Certificate} (included here, so
    [Audit.certify] works) re-verifies a pin access assignment from
    scratch against Formula (1); {!Flow_audit} replays DRC and
    electrical connectivity over a finished routing flow; {!Fuzz} runs
    the seeded differential campaign that cross-checks every solver
    against these auditors and shrinks failures to minimal repro
    designs. *)

include Certificate

module Flow_audit = Flow_audit
module Eco_audit = Eco_audit
module Fuzz = Fuzz
