(** Seeded differential fuzzing over generated designs.

    Each case draws a small random design from
    {!Workloads.Generator.random_params} and cross-examines every
    solver and flow in the repo against the independent checkers:

    - the LR pin access result, the ILP result (under a deterministic
      node budget) and the shrink-to-minimum assignment must all pass
      {!Certificate.certify} / {!Certificate.certify_pin_access};
    - per panel, both solver objectives must stay at or below the
      certified solver-independent {!Certificate.upper_bound}, and the
      proven-optimal ILP objective must dominate the feasible LR
      objective (the cross-solver sandwich);
    - a parallel [~j:2] LR run must be bit-identical to the sequential
      run (objective, reports and assignments);
    - the CPR and sequential routing flows must both certify clean
      under {!Flow_audit.run};
    - a seeded ECO delta stream replayed through {!Eco.Engine} must
      stay certificate-identical to from-scratch re-optimization
      ({!Eco_audit.check}).

    On a violation the failing design is shrunk — delta-debugging over
    its nets, then its blockages — to a minimal design that still
    fails, ready to be written as a {!Netlist.Design_io} file; an ECO
    failure additionally ddmins its delta stream to a minimal
    [(design, deltas)] repro. *)

type config = {
  iterations : int;  (** cases to run *)
  seed : int64;  (** master seed; per-case seeds derive from it *)
  tolerance : float;  (** relative tolerance for objective comparisons *)
  max_nets : int;  (** upper bound on generated net count per case *)
  ilp : bool;  (** run the ILP cross-check (the slowest invariant) *)
  routing : bool;  (** run and audit the CPR and sequential flows *)
  parallel : bool;  (** check [~j:2] determinism *)
  ilp_nodes : int;
      (** deterministic branch-and-bound node budget per ILP run; the
          comparison is skipped (never failed) when the budget expires
          before optimality is proven *)
  shrink_rounds : int;  (** cap on candidate evaluations while shrinking *)
  eco : bool;  (** run the ECO incremental-vs-scratch differential *)
  eco_steps : int;  (** batches per ECO stream *)
  eco_edits : int;  (** edits per batch *)
  tpl : int option;
      (** when [Some k], additionally rerun each case under a
          [k]-coloring TPL deck ({!Drc.Tpl.make}): the LR result must
          carry a certified coloring
          ({!Certificate.certify_pin_access}'s [Tpl_*] checks), the
          [~j:2] run must be bit-identical coloring included, and the
          TPL-aware CPR flow must certify clean under
          {!Flow_audit.run}'s TPL replay *)
  tune : bool;
      (** when [true], additionally run the adaptive-tuning campaign:
          a bandit-tuned LR solve (seed derived from the design text,
          so shrink candidates re-tune deterministically) must certify
          under {!Certificate.certify_pin_access}; tuned and untuned
          objectives must both stay under the summed per-panel
          {!Certificate.upper_bound} (the quality sandwich); the tuned
          [~j:2] run must be bit-identical — assignments and policy
          trace; and replaying the recorded trace through
          {!Tune.Tuner.replay_hook} must reproduce the tuned
          assignments exactly *)
}

val default_config : config
(** 200 iterations, seed [0xC0FFEE], tolerance [1e-6], every invariant
    enabled; [tpl = None] (the TPL campaign is opt-in). *)

type failure = {
  case : int;  (** 1-based index of the failing case *)
  case_seed : int64;  (** seed that regenerates the original design *)
  reason : string;  (** first violated invariant on the original design *)
  shrunk_reason : string;  (** violated invariant on the shrunk design *)
  design : Netlist.Design.t;  (** the shrunk minimal repro *)
  deltas : Eco.Delta.t list list;
      (** the shrunk delta stream when the violation is the ECO
          differential ([[]] otherwise) — replaying it against [design]
          reproduces the failure *)
  trace : (int * string) list;
      (** the shrunk design's bandit policy trace when the violation is
          a tune-campaign invariant ([[]] otherwise): [(panel, policy
          id)] pairs for {!Tune.Tuner.replay_hook} *)
  shrink_steps : int;  (** successful reduction steps *)
}

type outcome = {
  cases : int;  (** cases executed (= iterations unless a case failed) *)
  skipped : int;  (** cases whose generation was infeasible *)
  failure : failure option;
}

val check_design : config -> Netlist.Design.t -> (unit, string) result
(** Run every enabled invariant on one design; [Error] names the first
    violated one.  Unexpected solver exceptions are reported as
    failures, not re-raised. *)

val tune_trace : Netlist.Design.t -> (int * string) list
(** The policy trace of the design's deterministic bandit-tuned solve
    (seed derived from the design text, as in the tune campaign). *)

val replay_with_trace :
  config -> Netlist.Design.t -> (int * string) list -> (unit, string) result
(** Re-run the tuned solve under a saved policy trace
    ({!Tune.Tuner.replay_hook}) and re-certify it — the replay side of
    a tune-campaign repro. *)

val shrink :
  config -> Netlist.Design.t -> Netlist.Design.t * int
(** Delta-debug a failing design to a smaller one that still fails
    {!check_design} (nets first, then blockages), returning the shrunk
    design and the number of successful reduction steps.  The input
    design is returned unchanged when it does not fail. *)

val run : ?progress:(int -> unit) -> config -> outcome
(** Run the campaign, stopping at (and shrinking) the first failure.
    [progress] is called with the 1-based case index after each
    completed case. *)
