(** Independent certification of pin access solutions.

    The solvers in [lib/core] validate their own output; this module is
    the external examiner.  Given an assignment of one access interval
    per pin it re-derives every claim of Formula (1) from scratch,
    trusting only the design geometry:

    - {b coverage}: each pin appears exactly once and its interval
      covers the pin (same net, pin track, pin column inside the span);
    - {b legality}: every interval lies on the die, inside its net's
      bounding box, and clear of M2 routing blockages — the clipping
      rules of interval generation, re-checked;
    - {b conflict-freeness}: no two selected intervals of different
      nets overlap, re-derived by a brute-force O(n²) pairwise sweep
      (deliberately independent of {!Pinaccess.Conflict}'s linear
      clique detection);
    - {b formulation (1b)}: no pin is served by two distinct selected
      intervals;
    - {b objective (1a)}: the reported objective equals
      [Σ f(len I) · pins(I)] recomputed over distinct selected
      intervals with [f(I) = √len];
    - {b dual bound}: when the certificate carries a solver-claimed
      upper bound [L(λ)], the sandwich
      [recomputed ≤ reported ≤ L(λ)] must hold within tolerance.

    Checks run in the order above and {!certify} reports the first
    violated invariant as a typed {!reason}; {!violations} returns all
    of them. *)

(** Why a certificate was rejected.  Constructors are ordered by the
    check sequence; each carries enough context to locate the defect. *)
type reason =
  | Duplicate_pin of Netlist.Pin.id
      (** the pin is assigned more than one interval *)
  | Foreign_pin of Netlist.Pin.id
      (** the assignment names a pin outside the certified instance *)
  | Unassigned_pin of Netlist.Pin.id
      (** an instance pin has no interval at all *)
  | Uncovered_pin of { pin : Netlist.Pin.id; detail : string }
      (** the assigned interval does not cover its pin (wrong net,
          wrong track, or the pin column is outside the span) *)
  | Illegal_interval of { pin : Netlist.Pin.id; detail : string }
      (** the interval leaves the die or net bounding box, or overlaps
          an M2 blockage *)
  | Multiply_served of { pin : Netlist.Pin.id; count : int }
      (** constraint (1b): more than one distinct selected interval
          claims to serve the pin *)
  | Overlap_conflict of {
      track : int;
      net_a : Netlist.Net.id;
      net_b : Netlist.Net.id;
    }
      (** constraint (1c) at clearance 0: two selected intervals of
          different nets overlap on a track *)
  | Objective_mismatch of { reported : float; recomputed : float }
  | Dual_bound_violated of { reported : float; bound : float }
  | Tpl_features_mismatch of { claimed : int; derived : int }
      (** the claimed TPL feature list is not what the assignment's
          distinct intervals canonicalize to *)
  | Tpl_illegal_coloring of { detail : string }
      (** a claimed color is out of range, uses an illegal stitch, or
          two pieces of the same color violate same-color spacing —
          re-derived from geometry by {!Solver.Color_graph.verify} *)
  | Tpl_count_mismatch of { field : string; claimed : int; actual : int }
      (** the reported stitch or residual count disagrees with the
          assignment array ([Uncolored] features themselves are an
          honest residual, not a fault — lying about them is) *)

val reason_to_string : reason -> string

(** A claim to be verified: the instance, the assignment, and the
    numbers the solver reported about it. *)
type t = {
  problem : Pinaccess.Problem.t;
  assignment : (Netlist.Pin.id * Pinaccess.Access_interval.t) list;
  reported_objective : float;
  dual_bound : float option;
      (** the solver's claimed upper bound on the optimum, e.g.
          {!Pinaccess.Lagrangian.dual_bound} or the ILP root LP bound *)
}

val of_solution : ?dual_bound:float -> Pinaccess.Solution.t -> t
(** Certificate for a solver {!Pinaccess.Solution.t}, with the reported
    objective taken from {!Pinaccess.Solution.objective}. *)

val certify : ?tolerance:float -> t -> (unit, reason) result
(** Run every check and return the first violated invariant.
    [tolerance] (default [1e-6]) is relative to the magnitude of the
    compared objectives. *)

val violations : ?tolerance:float -> t -> reason list
(** All violated invariants, in check order. *)

val upper_bound : Pinaccess.Problem.t -> float
(** A certified upper bound on the optimum of Formula (1), independent
    of both solvers: relax constraint (1c) entirely and pick each
    pin's most profitable candidate, [Σ_j max_{i∈S_j} f(len I_i)].
    Every feasible objective — and any honest reported objective — must
    lie at or below this value. *)

val certify_pin_access :
  ?tolerance:float ->
  ?weighting:Pinaccess.Objective.weighting ->
  ?window:int ->
  Pinaccess.Pin_access.t ->
  (unit, reason) result
(** Certify a whole-design {!Pinaccess.Pin_access.t} result: the same
    checks as {!certify} applied to the design-wide assignment (every
    design pin must be covered), with the objective recomputed under
    [weighting] (default the paper's [Sqrt_length]).  [window] must
    echo the {!Pinaccess.Interval_gen.config.min_window} the instance
    was generated with: legality then allows spans inside the net
    bounding box grown by [±window] around the assigned pin, exactly
    the generation bound (the library checker's mode).  Intervals are
    compared by physical identity (net, track, span) since per-panel
    interval ids are not globally unique.

    When the result carries a TPL coloring ([pao.tpl = Some _]), its
    claims are re-derived too: the feature list must match the
    assignment, every color must be legal under the deck, and the
    stitch/residual counts must be truthful (the [Tpl_*] reasons). *)
