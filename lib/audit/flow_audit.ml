module Flow = Router.Flow

type issue =
  | Short of { detail : string }
  | Violation_miscount of { kind : string; recorded : int; replayed : int }
  | Clean_mismatch of { net : Netlist.Net.id; recorded : bool }
  | Tpl_miscount of { field : string; recorded : int; replayed : int }
  | Electrical of Router.Verify.issue

let issue_to_string = function
  | Short { detail } -> Printf.sprintf "short in final routes: %s" detail
  | Violation_miscount { kind; recorded; replayed } ->
    Printf.sprintf "%s violations: flow reported %d, replay found %d" kind
      recorded replayed
  | Clean_mismatch { net; recorded } ->
    Printf.sprintf "net %d: flow marked it %s, replay disagrees" net
      (if recorded then "clean" else "dirty")
  | Tpl_miscount { field; recorded; replayed } ->
    Printf.sprintf "TPL %s: flow reported %d, replay found %d" field recorded
      replayed
  | Electrical i -> "electrical: " ^ Router.Verify.issue_to_string i

let kinds = [ Drc.Check.Line_end_gap; Drc.Check.Cut_alignment; Drc.Check.Via_spacing ]

let count_kind violations kind =
  List.length
    (List.filter (fun (v : Drc.Check.violation) -> v.Drc.Check.kind = kind)
       violations)

let run (flow : Flow.t) =
  let issues = ref [] in
  let issue i = issues := i :: !issues in
  (* 1. re-extract the final metal; a short here means the routes never
     formed a legal layout, which voids every downstream claim *)
  match Drc.Extract.of_routes flow.Flow.design flow.Flow.routes with
  | exception Invalid_argument detail ->
    [ Short { detail } ]
  | layout ->
    (* 2. replay the full DRC deck under the recorded rules *)
    let replayed = Drc.Check.run flow.Flow.rules layout in
    List.iter
      (fun kind ->
        let recorded = count_kind flow.Flow.violations kind in
        let found = count_kind replayed kind in
        if recorded <> found then
          issue
            (Violation_miscount
               {
                 kind = Drc.Check.kind_to_string kind;
                 recorded;
                 replayed = found;
               }))
      kinds;
    (* 2b. replay the TPL deck the flow recorded: the re-colored metal
       must reproduce the recorded stitch/uncolored counts, and its
       blame joins the clean re-derivation below *)
    let tpl_blamed =
      match flow.Flow.tpl with
      | None -> []
      | Some deck ->
        let stats = Drc.Tpl.check deck layout in
        (match flow.Flow.tpl_stats with
        | None ->
          issue
            (Tpl_miscount
               {
                 field = "stats";
                 recorded = 0;
                 replayed = stats.Drc.Tpl.features;
               })
        | Some recorded ->
          let cmp field r p =
            if r <> p then issue (Tpl_miscount { field; recorded = r; replayed = p })
          in
          cmp "feature" recorded.Drc.Tpl.features stats.Drc.Tpl.features;
          cmp "stitch" recorded.Drc.Tpl.stitched stats.Drc.Tpl.stitched;
          cmp "uncolored" recorded.Drc.Tpl.uncolored stats.Drc.Tpl.uncolored);
        Drc.Tpl.blamed_nets stats
    in
    (* 3. re-derive the clean verdicts: connected and not blamed *)
    let blamed =
      List.sort_uniq Int.compare (Drc.Check.blamed_nets replayed @ tpl_blamed)
    in
    Array.iteri
      (fun net recorded ->
        let rederived =
          Option.is_some flow.Flow.routes.(net) && not (List.mem net blamed)
        in
        if recorded <> rederived then issue (Clean_mismatch { net; recorded }))
      flow.Flow.clean;
    (* 4. clean nets must be electrically sound *)
    List.iter (fun i -> issue (Electrical i)) (Router.Verify.check_flow flow);
    List.rev !issues
