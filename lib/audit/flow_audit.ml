module Flow = Router.Flow

type issue =
  | Short of { detail : string }
  | Violation_miscount of { kind : string; recorded : int; replayed : int }
  | Clean_mismatch of { net : Netlist.Net.id; recorded : bool }
  | Electrical of Router.Verify.issue

let issue_to_string = function
  | Short { detail } -> Printf.sprintf "short in final routes: %s" detail
  | Violation_miscount { kind; recorded; replayed } ->
    Printf.sprintf "%s violations: flow reported %d, replay found %d" kind
      recorded replayed
  | Clean_mismatch { net; recorded } ->
    Printf.sprintf "net %d: flow marked it %s, replay disagrees" net
      (if recorded then "clean" else "dirty")
  | Electrical i -> "electrical: " ^ Router.Verify.issue_to_string i

let kinds = [ Drc.Check.Line_end_gap; Drc.Check.Cut_alignment; Drc.Check.Via_spacing ]

let count_kind violations kind =
  List.length
    (List.filter (fun (v : Drc.Check.violation) -> v.Drc.Check.kind = kind)
       violations)

let run (flow : Flow.t) =
  let issues = ref [] in
  let issue i = issues := i :: !issues in
  (* 1. re-extract the final metal; a short here means the routes never
     formed a legal layout, which voids every downstream claim *)
  match Drc.Extract.of_routes flow.Flow.design flow.Flow.routes with
  | exception Invalid_argument detail ->
    [ Short { detail } ]
  | layout ->
    (* 2. replay the full DRC deck under the recorded rules *)
    let replayed = Drc.Check.run flow.Flow.rules layout in
    List.iter
      (fun kind ->
        let recorded = count_kind flow.Flow.violations kind in
        let found = count_kind replayed kind in
        if recorded <> found then
          issue
            (Violation_miscount
               {
                 kind = Drc.Check.kind_to_string kind;
                 recorded;
                 replayed = found;
               }))
      kinds;
    (* 3. re-derive the clean verdicts: connected and not blamed *)
    let blamed = Drc.Check.blamed_nets replayed in
    Array.iteri
      (fun net recorded ->
        let rederived =
          Option.is_some flow.Flow.routes.(net) && not (List.mem net blamed)
        in
        if recorded <> rederived then issue (Clean_mismatch { net; recorded }))
      flow.Flow.clean;
    (* 4. clean nets must be electrically sound *)
    List.iter (fun i -> issue (Electrical i)) (Router.Verify.check_flow flow);
    List.rev !issues
