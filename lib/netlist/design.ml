module I = Geometry.Interval

exception Invalid of string

let invalid fmt = Printf.ksprintf (fun s -> raise (Invalid s)) fmt

type t = {
  name : string;
  width : int;
  height : int;
  row_height : int;
  pins : Pin.t array;
  nets : Net.t array;
  blockages : Blockage.t list;
  pins_by_track : Pin.t list array; (* track -> pins covering it, by column *)
  pins_by_panel : Pin.t list array; (* panel -> pins, by column *)
  blockages_by_track : I.t list array; (* M2 track -> blocked spans, sorted *)
  net_bboxes : Geometry.Rect.t array;
}

let validate ~width ~height ~row_height pins nets =
  if width <= 0 || height <= 0 then invalid "Design.create: empty die";
  if row_height <= 0 then invalid "Design.create: row_height <= 0";
  if height mod row_height <> 0 then
    invalid "Design.create: die height must be a whole number of rows";
  Array.iteri
    (fun i (p : Pin.t) ->
      if p.id <> i then invalid "Design.create: pin ids must be dense";
      if p.x < 0 || p.x >= width then
        invalid "Design.create: pin %d off-die (x=%d)" i p.x;
      let tlo = I.lo p.tracks and thi = I.hi p.tracks in
      if tlo < 0 || thi >= height then
        invalid "Design.create: pin %d off-die tracks" i;
      if tlo / row_height <> thi / row_height then
        invalid "Design.create: pin %d crosses panels" i;
      if p.net < 0 || p.net >= Array.length nets then
        invalid "Design.create: pin %d has bad net" i)
    pins;
  Array.iteri
    (fun i (n : Net.t) ->
      if n.id <> i then invalid "Design.create: net ids must be dense";
      if n.pins = [] then invalid "Design.create: net %d has no pins" i;
      List.iter
        (fun pid ->
          if pid < 0 || pid >= Array.length pins then
            invalid "Design.create: net %d bad pin ref" i;
          if pins.(pid).Pin.net <> i then
            invalid "Design.create: pin %d not owned by net %d" pid i)
        n.pins)
    nets;
  (* No two pins may occupy the same (column, track) grid. *)
  let seen = Hashtbl.create (Array.length pins * 2) in
  Array.iter
    (fun (p : Pin.t) ->
      for tr = I.lo p.tracks to I.hi p.tracks do
        let key = (p.Pin.x * height) + tr in
        if Hashtbl.mem seen key then
          invalid "Design.create: overlapping pins at (%d,%d)" p.Pin.x tr;
        Hashtbl.add seen key ()
      done)
    pins

let by_column ps = List.sort (fun (a : Pin.t) b -> Int.compare a.x b.x) ps

let create ?(name = "design") ~width ~height ?(row_height = 10) ~pins ~nets
    ?(blockages = []) () =
  let pins = Array.of_list pins and nets = Array.of_list nets in
  validate ~width ~height ~row_height pins nets;
  let pins_by_track = Array.make height [] in
  let pins_by_panel = Array.make (height / row_height) [] in
  Array.iter
    (fun (p : Pin.t) ->
      for tr = I.lo p.tracks to I.hi p.tracks do
        pins_by_track.(tr) <- p :: pins_by_track.(tr)
      done;
      let panel = I.lo p.tracks / row_height in
      pins_by_panel.(panel) <- p :: pins_by_panel.(panel))
    pins;
  Array.iteri (fun i ps -> pins_by_track.(i) <- by_column ps) pins_by_track;
  Array.iteri (fun i ps -> pins_by_panel.(i) <- by_column ps) pins_by_panel;
  let blockages_by_track = Array.make height [] in
  List.iter
    (fun (b : Blockage.t) ->
      match b.layer with
      | Blockage.M2 ->
        if b.track >= 0 && b.track < height then
          blockages_by_track.(b.track) <- b.span :: blockages_by_track.(b.track)
      | Blockage.M3 -> ())
    blockages;
  Array.iteri
    (fun i spans -> blockages_by_track.(i) <- List.sort I.compare spans)
    blockages_by_track;
  let net_bboxes =
    Array.map
      (fun (n : Net.t) ->
        let pts = List.map (fun pid -> Pin.location pins.(pid)) n.pins in
        Geometry.Rect.of_points pts)
      nets
  in
  {
    name;
    width;
    height;
    row_height;
    pins;
    nets;
    blockages;
    pins_by_track;
    pins_by_panel;
    blockages_by_track;
    net_bboxes;
  }

let name t = t.name
let width t = t.width
let height t = t.height
let row_height t = t.row_height
let num_panels t = t.height / t.row_height

let die t =
  Geometry.Rect.make
    ~xs:(I.make ~lo:0 ~hi:(t.width - 1))
    ~ys:(I.make ~lo:0 ~hi:(t.height - 1))

let pins t = t.pins
let nets t = t.nets
let blockages t = t.blockages
let pin t id = t.pins.(id)
let net t id = t.nets.(id)
let net_pins t id = List.map (fun pid -> t.pins.(pid)) t.nets.(id).Net.pins
let net_bbox t id = t.net_bboxes.(id)
let panel_of_track t track = track / t.row_height

let panel_tracks t panel =
  I.make ~lo:(panel * t.row_height) ~hi:(((panel + 1) * t.row_height) - 1)

let pins_of_panel t panel = t.pins_by_panel.(panel)
let pins_on_track t track = t.pins_by_track.(track)
let m2_blockages_on_track t track = t.blockages_by_track.(track)

let stats t =
  Printf.sprintf "%s: %dx%d grid, %d rows, %d nets, %d pins, %d blockages"
    t.name t.width t.height (num_panels t) (Array.length t.nets)
    (Array.length t.pins) (List.length t.blockages)
