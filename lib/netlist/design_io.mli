(** Plain-text serialization of placed designs — a minimal DEF-like
    interchange format so instances can be saved, diffed and reloaded
    (the synthetic generator is deterministic, but exported instances
    make failures reproducible outside this repo).

    Format (one record per line, [#] comments ignored):
    {v
    design <name> <width> <height> <row_height>
    net <name>
    pin <x> <track_lo> <track_hi>       # belongs to the last net
    blockage <M2|M3> <track> <lo> <hi>
    v}

    Loading validates the records before they reach the solvers: syntax
    errors, off-grid pins, duplicate (overlapping) pins and out-of-bbox
    blockages all raise the typed {!Malformed} error with the offending
    line.  With [~repair:true] the loader instead clamps off-die
    geometry into the die, drops later duplicate pins (and nets left
    empty by that) and discards unplaceable blockages, so any
    syntactically well-formed file yields a valid design. *)

exception Malformed of { line : int option; reason : string }
(** The only exception this module raises on bad input — parse errors,
    semantic validation failures and file-system errors ([Sys_error])
    are all mapped to it. *)

val malformed_to_string : exn -> string
(** Render a {!Malformed} value for user display.
    @raise Invalid_argument on any other exception. *)

val to_string : Design.t -> string

val of_string : ?repair:bool -> string -> Design.t
(** @raise Malformed on malformed input (with a line number where one
    applies); with [repair] (default [false]) semantic defects are
    repaired instead of rejected. *)

val save : string -> Design.t -> unit
(** [save path design] @raise Malformed when the file cannot be
    written. *)

val load : ?repair:bool -> string -> Design.t
(** @raise Malformed when the file cannot be read or (subject to
    [repair], as in {!of_string}) does not encode a valid design. *)
