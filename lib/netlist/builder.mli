(** Convenience constructor for designs: declare nets as lists of pin
    shapes and get dense ids, cross-references and validation for
    free. *)

type pin_spec = { x : int; tracks : Geometry.Interval.t }

val pin_at : int -> int -> pin_spec
(** [pin_at x track] is a one-track pin shape. *)

val pin_span : int -> lo:int -> hi:int -> pin_spec
(** [pin_span x ~lo ~hi] is a pin shape covering tracks [lo..hi]. *)

val design :
  ?name:string ->
  width:int ->
  height:int ->
  ?row_height:int ->
  nets:(string * pin_spec list) list ->
  ?blockages:Blockage.t list ->
  unit ->
  Design.t
(** @raise Design.Invalid when a net has no pins or the assembled
    design violates {!Design.create}'s invariants. *)
