module I = Geometry.Interval

exception Malformed of { line : int option; reason : string }

let malformed ?line fmt =
  Printf.ksprintf (fun reason -> raise (Malformed { line; reason })) fmt

let malformed_to_string = function
  | Malformed { line = Some l; reason } ->
    Printf.sprintf "malformed design (line %d): %s" l reason
  | Malformed { line = None; reason } ->
    Printf.sprintf "malformed design: %s" reason
  | _ -> invalid_arg "Design_io.malformed_to_string: not a Malformed"

let to_string design =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf "design %s %d %d %d\n" (Design.name design)
       (Design.width design) (Design.height design)
       (Design.row_height design));
  Array.iter
    (fun (net : Net.t) ->
      Buffer.add_string buf (Printf.sprintf "net %s\n" net.Net.name);
      List.iter
        (fun pid ->
          let p = Design.pin design pid in
          Buffer.add_string buf
            (Printf.sprintf "pin %d %d %d\n" p.Pin.x (I.lo p.Pin.tracks)
               (I.hi p.Pin.tracks)))
        net.Net.pins)
    (Design.nets design);
  List.iter
    (fun (b : Blockage.t) ->
      Buffer.add_string buf
        (Printf.sprintf "blockage %s %d %d %d\n"
           (Blockage.layer_to_string b.Blockage.layer)
           b.Blockage.track (I.lo b.Blockage.span) (I.hi b.Blockage.span)))
    (Design.blockages design);
  Buffer.contents buf

type header = {
  name : string;
  width : int;
  height : int;
  row_height : int;
}

(* a parsed pin spec with its source line, kept for error reporting *)
type raw_pin = { lineno : int; x : int; tracks : I.t }

let parse text =
  let header = ref None in
  let nets = ref [] in (* (name, raw_pin list) in reverse *)
  let blockages = ref [] in (* (lineno, Blockage.t) in reverse *)
  let int lineno s =
    match int_of_string_opt s with
    | Some v -> v
    | None -> malformed ~line:lineno "expected an integer, got %S" s
  in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      let line =
        match String.index_opt line '#' with
        | Some j -> String.sub line 0 j
        | None -> line
      in
      match
        String.split_on_char ' ' (String.trim line)
        |> List.filter (fun s -> s <> "")
      with
      | [] -> ()
      | [ "design"; name; w; h; rh ] ->
        if !header <> None then malformed ~line:lineno "duplicate design header";
        header :=
          Some
            {
              name;
              width = int lineno w;
              height = int lineno h;
              row_height = int lineno rh;
            }
      | [ "net"; name ] -> nets := (name, []) :: !nets
      | [ "pin"; x; lo; hi ] ->
        (match !nets with
        | [] -> malformed ~line:lineno "pin before any net"
        | (name, pins) :: rest ->
          let lo = int lineno lo and hi = int lineno hi in
          if hi < lo then
            malformed ~line:lineno "pin track range %d..%d is empty" lo hi;
          let spec =
            { lineno; x = int lineno x; tracks = I.make ~lo ~hi }
          in
          nets := (name, spec :: pins) :: rest)
      | [ "blockage"; layer; track; lo; hi ] ->
        let layer =
          match layer with
          | "M2" -> Blockage.M2
          | "M3" -> Blockage.M3
          | other -> malformed ~line:lineno "unknown layer %S" other
        in
        let lo = int lineno lo and hi = int lineno hi in
        if hi < lo then
          malformed ~line:lineno "blockage span %d..%d is empty" lo hi;
        blockages :=
          ( lineno,
            Blockage.make ~layer ~track:(int lineno track)
              ~span:(I.make ~lo ~hi) )
          :: !blockages
      | word :: _ -> malformed ~line:lineno "unknown record %S" word)
    (String.split_on_char '\n' text);
  match !header with
  | None -> malformed "missing design header"
  | Some h ->
    (* both accumulators are reversed; rev_map restores net order while
       its body restores each net's pin order *)
    ( h,
      List.rev_map (fun (name, pins) -> (name, List.rev pins)) !nets,
      List.rev !blockages )

(* Semantic validation of the parsed records, before Design.create sees
   them.  Strict mode rejects with the offending line; repair mode
   clamps off-die geometry, drops duplicate pins (first occurrence
   wins) and discards out-of-bbox blockages, guaranteeing the result
   passes [Design.create]'s invariants whenever a repaired design still
   has at least one pin per surviving net. *)
let validate_records ~repair (h : header) nets blockages =
  if h.width <= 0 || h.height <= 0 then
    malformed "empty die (%dx%d)" h.width h.height;
  if h.row_height <= 0 then malformed "row_height %d <= 0" h.row_height;
  if h.height mod h.row_height <> 0 then
    malformed "die height %d is not a whole number of %d-track rows" h.height
      h.row_height;
  let clamp v ~lo ~hi = max lo (min hi v) in
  let occupied = Hashtbl.create 256 in (* (x, track) -> first lineno *)
  let check_pin (p : raw_pin) =
    let on_die =
      p.x >= 0
      && p.x < h.width
      && I.lo p.tracks >= 0
      && I.hi p.tracks < h.height
    in
    let panel_lo = I.lo p.tracks / h.row_height
    and panel_hi = I.hi p.tracks / h.row_height in
    let p =
      if on_die && panel_lo = panel_hi then p
      else if not repair then
        if on_die then
          malformed ~line:p.lineno "pin crosses panels (tracks %d..%d)"
            (I.lo p.tracks) (I.hi p.tracks)
        else
          malformed ~line:p.lineno "off-grid pin (x=%d tracks %d..%d)" p.x
            (I.lo p.tracks) (I.hi p.tracks)
      else begin
        (* clamp into the die, then into the panel of the low track *)
        let x = clamp p.x ~lo:0 ~hi:(h.width - 1) in
        let lo = clamp (I.lo p.tracks) ~lo:0 ~hi:(h.height - 1) in
        let hi = clamp (I.hi p.tracks) ~lo ~hi:(h.height - 1) in
        let panel_end = (((lo / h.row_height) + 1) * h.row_height) - 1 in
        { p with x; tracks = I.make ~lo ~hi:(min hi panel_end) }
      end
    in
    (* duplicate / overlapping pins occupy a shared (column, track) *)
    let clash = ref None in
    for tr = I.lo p.tracks to I.hi p.tracks do
      match Hashtbl.find_opt occupied (p.x, tr) with
      | Some first when !clash = None -> clash := Some (tr, first)
      | Some _ | None -> ()
    done;
    match !clash with
    | Some (tr, first) ->
      if repair then None
      else
        malformed ~line:p.lineno
          "duplicate pin: grid (%d,%d) already occupied by the pin at line %d"
          p.x tr first
    | None ->
      for tr = I.lo p.tracks to I.hi p.tracks do
        Hashtbl.replace occupied (p.x, tr) p.lineno
      done;
      Some p
  in
  let nets =
    List.filter_map
      (fun (name, pins) ->
        match List.filter_map check_pin pins with
        | [] when repair -> None (* every pin repaired away: drop the net *)
        | [] -> malformed "net %s has no pins" name
        | pins -> Some (name, pins))
      nets
  in
  let check_blockage (lineno, (b : Blockage.t)) =
    let track_max, span_max =
      match b.Blockage.layer with
      | Blockage.M2 -> (h.height - 1, h.width - 1)
      | Blockage.M3 -> (h.width - 1, h.height - 1)
    in
    let on_die =
      b.Blockage.track >= 0
      && b.Blockage.track <= track_max
      && I.lo b.Blockage.span >= 0
      && I.hi b.Blockage.span <= span_max
    in
    if on_die then Some b
    else if not repair then
      malformed ~line:lineno "out-of-bbox blockage (track %d span %d..%d)"
        b.Blockage.track (I.lo b.Blockage.span) (I.hi b.Blockage.span)
    else if b.Blockage.track < 0 || b.Blockage.track > track_max then None
    else
      let lo = clamp (I.lo b.Blockage.span) ~lo:0 ~hi:span_max in
      let hi = clamp (I.hi b.Blockage.span) ~lo ~hi:span_max in
      Some (Blockage.make ~layer:b.Blockage.layer ~track:b.Blockage.track
              ~span:(I.make ~lo ~hi))
  in
  (nets, List.filter_map check_blockage blockages)

let of_string ?(repair = false) text =
  let h, nets, blockages = parse text in
  let nets, blockages = validate_records ~repair h nets blockages in
  if nets = [] then malformed "design %s has no nets with pins" h.name;
  match
    Builder.design ~name:h.name ~width:h.width ~height:h.height
      ~row_height:h.row_height
      ~nets:
        (List.map
           (fun (name, pins) ->
             ( name,
               List.map
                 (fun (p : raw_pin) -> { Builder.x = p.x; tracks = p.tracks })
                 pins ))
           nets)
      ~blockages ()
  with
  | design -> design
  | exception Design.Invalid reason ->
    (* the record validator should have caught everything Design.create
       checks; translate any residual rejection into the typed error *)
    malformed "%s" reason

(* atomic (temp + rename): a crash mid-save never leaves a torn design
   file — repro artifacts and checkpoints are either old or new *)
let save path design =
  match Obs.Fsio.atomic_write path (to_string design) with
  | () -> ()
  | exception Sys_error reason -> malformed "%s" reason

let load ?repair path =
  match open_in path with
  | exception Sys_error reason -> malformed "%s" reason
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let n = in_channel_length ic in
        of_string ?repair (really_input_string ic n))
