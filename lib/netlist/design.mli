(** A placed design ready for detailed routing: die extent, standard
    cell rows (panels), pins, nets and blockages.

    Conventions (paper Sec. 5): the die is a [width] x [height] grid of
    routing pitches; M2 tracks are horizontal lines [y = 0 .. height-1];
    one standard cell row is [row_height] (10) M2 tracks and forms one
    routing panel. *)

type t

exception Invalid of string
(** Typed construction/validation error: the message names the first
    violated invariant.  Raised instead of a bare [Invalid_argument] so
    callers (loaders, CLIs) can distinguish malformed designs from
    programming errors. *)

val create :
  ?name:string ->
  width:int ->
  height:int ->
  ?row_height:int ->
  pins:Pin.t list ->
  nets:Net.t list ->
  ?blockages:Blockage.t list ->
  unit ->
  t
(** Validates the input: pin/net cross-references must resolve, each
    net must have >= 1 pin, every pin must belong to its net, pin
    coordinates must be on the die, and each pin's track span must stay
    inside one panel. @raise Invalid on violations. *)

val name : t -> string
val width : t -> int
val height : t -> int
val row_height : t -> int
val num_panels : t -> int
val die : t -> Geometry.Rect.t

val pins : t -> Pin.t array
val nets : t -> Net.t array
val blockages : t -> Blockage.t list

val pin : t -> Pin.id -> Pin.t
val net : t -> Net.id -> Net.t
val net_pins : t -> Net.id -> Pin.t list

val net_bbox : t -> Net.id -> Geometry.Rect.t
(** Bounding box of the net's pin locations (the paper's net bounding
    box used to bound interval generation). *)

val panel_of_track : t -> int -> int
val panel_tracks : t -> int -> Geometry.Interval.t
(** Track range [\[p*row_height, (p+1)*row_height - 1\]] of panel [p]. *)

val pins_of_panel : t -> int -> Pin.t list
(** Pins whose track span lies in the given panel, sorted by column. *)

val pins_on_track : t -> int -> Pin.t list
(** Pins covering the given track, sorted by column. *)

val m2_blockages_on_track : t -> int -> Geometry.Interval.t list
(** Blocked column spans of an M2 track, sorted. *)

val stats : t -> string
(** One-line human-readable summary. *)
