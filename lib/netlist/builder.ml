type pin_spec = { x : int; tracks : Geometry.Interval.t }

let pin_at x track = { x; tracks = Geometry.Interval.point track }
let pin_span x ~lo ~hi = { x; tracks = Geometry.Interval.make ~lo ~hi }

let design ?name ~width ~height ?row_height ~nets ?blockages () =
  let pins = ref [] and net_list = ref [] in
  let next_pin = ref 0 in
  List.iteri
    (fun net_id (net_name, specs) ->
      if specs = [] then
        raise
          (Design.Invalid
             (Printf.sprintf "Builder.design: net %s has no pins" net_name));
      let pin_ids =
        List.map
          (fun spec ->
            let id = !next_pin in
            incr next_pin;
            pins := Pin.make ~id ~net:net_id ~x:spec.x ~tracks:spec.tracks :: !pins;
            id)
          specs
      in
      net_list := Net.make ~id:net_id ~name:net_name ~pins:pin_ids :: !net_list)
    nets;
  Design.create ?name ~width ~height ?row_height ~pins:(List.rev !pins)
    ~nets:(List.rev !net_list) ?blockages ()
