(* A job is one [map] call: tasks are indices [0, total); every domain
   (workers and the caller) repeatedly claims the next chunk of
   contiguous indices with a fetch-and-add and runs them.  [run] never
   raises — the wrapper in [map] stores results and exceptions into
   per-index slots. *)
type job = { run : int -> unit; total : int; chunk : int; next : int Atomic.t }

let run_job job =
  let rec grab () =
    let start = Atomic.fetch_and_add job.next job.chunk in
    if start < job.total then begin
      let stop = min job.total (start + job.chunk) in
      for i = start to stop - 1 do
        job.run i
      done;
      grab ()
    end
  in
  grab ()

(* Workers park on [ready] between jobs.  An epoch counter tells a
   waking worker whether a new job was published since the one it last
   ran; [running] counts workers still inside the current job so the
   caller knows when the join is complete.  All fields are guarded by
   [m] except the chunk cursor, which is atomic. *)
type pool_state = {
  size : int;
  m : Mutex.t;
  ready : Condition.t;
  finished : Condition.t;
  mutable epoch : int;
  mutable job : job option;
  mutable running : int;
  mutable stop : bool;
  mutable workers : unit Domain.t list;
}

type t = Sequential | Pool of pool_state

let sequential = Sequential

let worker_loop state =
  let my_epoch = ref 0 in
  let rec loop () =
    Mutex.lock state.m;
    while (not state.stop) && state.epoch = !my_epoch do
      Condition.wait state.ready state.m
    done;
    if state.stop then Mutex.unlock state.m
    else begin
      my_epoch := state.epoch;
      let job = Option.get state.job in
      Mutex.unlock state.m;
      run_job job;
      Mutex.lock state.m;
      state.running <- state.running - 1;
      if state.running = 0 then Condition.broadcast state.finished;
      Mutex.unlock state.m;
      loop ()
    end
  in
  loop ()

let pool ~domains =
  let size = max 1 domains in
  if size = 1 then Sequential
  else begin
    let state =
      {
        size;
        m = Mutex.create ();
        ready = Condition.create ();
        finished = Condition.create ();
        epoch = 0;
        job = None;
        running = 0;
        stop = false;
        workers = [];
      }
    in
    state.workers <-
      List.init (size - 1) (fun _ -> Domain.spawn (fun () -> worker_loop state));
    Pool state
  end

let shutdown = function
  | Sequential -> ()
  | Pool state ->
    Mutex.lock state.m;
    state.stop <- true;
    Condition.broadcast state.ready;
    Mutex.unlock state.m;
    List.iter Domain.join state.workers;
    state.workers <- []

let with_pool ~domains f =
  let t = pool ~domains in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let domains = function Sequential -> 1 | Pool state -> state.size

let default_domains () = Domain.recommended_domain_count ()

type 'b slot = Done of 'b | Failed of exn * Printexc.raw_backtrace

let mapi t f xs =
  let n = Array.length xs in
  if n = 0 then [||]
  else
    match t with
    | Sequential -> Array.mapi f xs
    | Pool state when state.workers = [] || n = 1 -> Array.mapi f xs
    | Pool state ->
      let out = Array.make n None in
      let run i =
        out.(i) <-
          Some
            (try Done (f i xs.(i))
             with e -> Failed (e, Printexc.get_raw_backtrace ()))
      in
      let chunk = max 1 (n / (state.size * 4)) in
      let job = { run; total = n; chunk; next = Atomic.make 0 } in
      Mutex.lock state.m;
      state.job <- Some job;
      state.running <- List.length state.workers;
      state.epoch <- state.epoch + 1;
      Condition.broadcast state.ready;
      Mutex.unlock state.m;
      (* the caller is the pool's last worker *)
      run_job job;
      Mutex.lock state.m;
      while state.running > 0 do
        Condition.wait state.finished state.m
      done;
      state.job <- None;
      Mutex.unlock state.m;
      (* deterministic failure: surface the lowest-index exception,
         exactly what a left-to-right sequential run would raise first *)
      Array.iter
        (function
          | Some (Failed (e, bt)) -> Printexc.raise_with_backtrace e bt
          | Some (Done _) | None -> ())
        out;
      Array.map
        (function
          | Some (Done v) -> v
          | Some (Failed _) | None -> assert false)
        out

let map t f xs = mapi t (fun _ x -> f x) xs
