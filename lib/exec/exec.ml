(* Work-stealing executor.  A [map] call is one job: the index range
   [0, total) is cut into contiguous chunks, the chunks are dealt
   block-wise into one deque per participating domain, and every
   domain drains its own deque LIFO before stealing chunks FIFO from
   the others.  Between jobs the worker domains park on a condition
   variable, so a long-lived pool costs nothing while idle and a job
   dispatch is one broadcast — no domain is ever spawned per call. *)

(* ------------------------------------------------------------------ *)
(* Chase–Lev deque                                                    *)
(* ------------------------------------------------------------------ *)

module Deque = struct
  (* Fixed-capacity Chase–Lev deque of ints.  The owner pushes and
     pops at [bottom]; thieves race a CAS on [top].  Slots are atomic,
     so a thief that read a stale slot always fails its CAS (the owner
     can only recycle a slot after [top] moved past it) and no value is
     ever lost or duplicated. *)
  type t = {
    buf : int Atomic.t array;
    mask : int;
    top : int Atomic.t;  (* next index to steal *)
    bottom : int Atomic.t;  (* next index to push *)
  }

  let create ~capacity =
    if capacity < 1 then invalid_arg "Exec.Deque.create: capacity < 1";
    let cap =
      let c = ref 1 in
      while !c < capacity do
        c := !c * 2
      done;
      !c
    in
    {
      buf = Array.init cap (fun _ -> Atomic.make 0);
      mask = cap - 1;
      top = Atomic.make 0;
      bottom = Atomic.make 0;
    }

  let size t = max 0 (Atomic.get t.bottom - Atomic.get t.top)

  (* Owner only.  Capacity is fixed: the pool sizes each deque for the
     whole job up front, so overflow is a caller bug, not a runtime
     condition. *)
  let push t v =
    let b = Atomic.get t.bottom in
    if b - Atomic.get t.top >= Array.length t.buf then
      invalid_arg "Exec.Deque.push: deque full";
    Atomic.set t.buf.(b land t.mask) v;
    Atomic.set t.bottom (b + 1)

  (* Owner only: LIFO end.  On the last element the owner races the
     thieves with the same CAS they use. *)
  let pop t =
    let b = Atomic.get t.bottom - 1 in
    Atomic.set t.bottom b;
    let tp = Atomic.get t.top in
    if b < tp then begin
      Atomic.set t.bottom tp;
      None
    end
    else if b > tp then Some (Atomic.get t.buf.(b land t.mask))
    else begin
      let won = Atomic.compare_and_set t.top tp (tp + 1) in
      Atomic.set t.bottom (tp + 1);
      if won then Some (Atomic.get t.buf.(b land t.mask)) else None
    end

  type steal = Stolen of int | Empty | Retry

  (* Any domain: FIFO end.  [Retry] means another thief (or the owner
     taking the last element) won the race — the deque may still hold
     work, so the caller should come back. *)
  let steal t =
    let tp = Atomic.get t.top in
    let b = Atomic.get t.bottom in
    if tp >= b then Empty
    else begin
      let v = Atomic.get t.buf.(tp land t.mask) in
      if Atomic.compare_and_set t.top tp (tp + 1) then Stolen v else Retry
    end
end

(* ------------------------------------------------------------------ *)
(* Scheduler telemetry                                                *)
(* ------------------------------------------------------------------ *)

let depth_buckets = 16

(* log2 bucket of a victim-queue depth: bucket 0 is depth 1, bucket k
   is depth [2^k, 2^(k+1)), the last bucket absorbs the tail *)
let depth_bucket n =
  let rec go n b =
    if n <= 1 || b = depth_buckets - 1 then b else go (n lsr 1) (b + 1)
  in
  go (max 1 n) 0

type stats = {
  jobs : int;
  tasks : int;
  chunks : int;  (** chunks run by their owner (local pops) *)
  chunks_stolen : int;  (** chunks obtained by stealing *)
  steal_misses : int;  (** scan passes that found every deque empty *)
  queue_depth : int array;
      (** log2-bucketed victim depth at each successful steal *)
}

let empty_stats () =
  {
    jobs = 0;
    tasks = 0;
    chunks = 0;
    chunks_stolen = 0;
    steal_misses = 0;
    queue_depth = Array.make depth_buckets 0;
  }

(* Per-participant scratch: written by exactly one domain during a
   job, folded into the pool totals by the caller after the join (the
   join's mutex gives the happens-before edge). *)
type pstat = {
  mutable p_chunks : int;
  mutable p_stolen : int;
  mutable p_misses : int;
  p_depth : int array;
}

let m_jobs = Obs.Metrics.counter "exec.jobs"
let m_tasks = Obs.Metrics.counter "exec.tasks"
let m_chunks = Obs.Metrics.counter "exec.chunks"
let m_steals = Obs.Metrics.counter "exec.steals"
let m_steal_misses = Obs.Metrics.counter "exec.steal_misses"
let m_queue_depth = Obs.Metrics.histogram "exec.queue_depth"

(* ------------------------------------------------------------------ *)
(* Jobs                                                               *)
(* ------------------------------------------------------------------ *)

(* A job is one [map] call: [run] executes one task index and never
   raises (the wrapper in [mapi] stores results and exceptions into
   per-index slots). *)
type job = {
  run : int -> unit;
  total : int;
  chunk : int;
  deques : Deque.t array;  (* one per participant *)
  pstats : pstat array;
}

let run_chunk job start =
  let stop = min job.total (start + job.chunk) in
  for i = start to stop - 1 do
    job.run i
  done

(* One participant's share of a job: drain the own deque LIFO, then
   steal FIFO from the others until a full scan pass finds everything
   empty.  Tasks never enqueue new work, so an empty pass is final —
   any chunk not in a deque is already being executed by its claimant,
   and the caller's join waits for those through [running]. *)
let participate job p =
  let st = job.pstats.(p) in
  let mine = job.deques.(p) in
  let rec own () =
    match Deque.pop mine with
    | Some s ->
      st.p_chunks <- st.p_chunks + 1;
      run_chunk job s;
      own ()
    | None -> ()
  in
  own ();
  let np = Array.length job.deques in
  if np > 1 then begin
    let continue_ = ref true in
    while !continue_ do
      let found = ref false and contended = ref false in
      for k = 1 to np - 1 do
        let d = job.deques.((p + k) mod np) in
        match Deque.steal d with
        | Deque.Stolen s ->
          found := true;
          st.p_stolen <- st.p_stolen + 1;
          let b = depth_bucket (Deque.size d + 1) in
          st.p_depth.(b) <- st.p_depth.(b) + 1;
          run_chunk job s
        | Deque.Retry ->
          contended := true;
          Domain.cpu_relax ()
        | Deque.Empty -> ()
      done;
      if not (!found || !contended) then begin
        st.p_misses <- st.p_misses + 1;
        continue_ := false
      end
    done
  end

(* ------------------------------------------------------------------ *)
(* The pool                                                           *)
(* ------------------------------------------------------------------ *)

(* Workers park on [ready] between jobs.  An epoch counter tells a
   waking worker whether a new job was published since the one it last
   ran; [running] counts workers still inside the current job so the
   caller knows when the join is complete.  All fields are guarded by
   [m] except the deques, which carry their own atomics. *)
type pool_state = {
  size : int;
  m : Mutex.t;
  ready : Condition.t;
  finished : Condition.t;
  mutable epoch : int;
  mutable job : job option;
  mutable running : int;
  mutable stop : bool;
  mutable workers : unit Domain.t list;
  (* cumulative scheduler telemetry, folded in at each join *)
  mutable s_jobs : int;
  mutable s_tasks : int;
  mutable s_chunks : int;
  mutable s_stolen : int;
  mutable s_misses : int;
  s_depth : int array;
}

type t = Sequential | Pool of pool_state

let sequential = Sequential

let worker_loop state ~participant =
  let my_epoch = ref 0 in
  let rec loop () =
    Mutex.lock state.m;
    while (not state.stop) && state.epoch = !my_epoch do
      Condition.wait state.ready state.m
    done;
    if state.stop then Mutex.unlock state.m
    else begin
      my_epoch := state.epoch;
      let job = Option.get state.job in
      Mutex.unlock state.m;
      participate job participant;
      Mutex.lock state.m;
      state.running <- state.running - 1;
      if state.running = 0 then Condition.broadcast state.finished;
      Mutex.unlock state.m;
      loop ()
    end
  in
  loop ()

let pool ~domains =
  let size = max 1 domains in
  if size = 1 then Sequential
  else begin
    let state =
      {
        size;
        m = Mutex.create ();
        ready = Condition.create ();
        finished = Condition.create ();
        epoch = 0;
        job = None;
        running = 0;
        stop = false;
        workers = [];
        s_jobs = 0;
        s_tasks = 0;
        s_chunks = 0;
        s_stolen = 0;
        s_misses = 0;
        s_depth = Array.make depth_buckets 0;
      }
    in
    (* the caller is participant 0; workers take 1 .. size-1 *)
    state.workers <-
      List.init (size - 1) (fun i ->
          Domain.spawn (fun () -> worker_loop state ~participant:(i + 1)));
    Pool state
  end

let shutdown = function
  | Sequential -> ()
  | Pool state ->
    Mutex.lock state.m;
    state.stop <- true;
    Condition.broadcast state.ready;
    Mutex.unlock state.m;
    List.iter Domain.join state.workers;
    state.workers <- []

let with_pool ~domains f =
  let t = pool ~domains in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let domains = function Sequential -> 1 | Pool state -> state.size

let default_domains () = Domain.recommended_domain_count ()

let stats = function
  | Sequential -> empty_stats ()
  | Pool state ->
    Mutex.lock state.m;
    let s =
      {
        jobs = state.s_jobs;
        tasks = state.s_tasks;
        chunks = state.s_chunks;
        chunks_stolen = state.s_stolen;
        steal_misses = state.s_misses;
        queue_depth = Array.copy state.s_depth;
      }
    in
    Mutex.unlock state.m;
    s

(* ------------------------------------------------------------------ *)
(* The shared process pool                                            *)
(* ------------------------------------------------------------------ *)

(* One persistent pool per requested size, created on first use and
   parked between jobs; callers never pay a domain spawn per call.
   The pools are joined at process exit, so no domain outlives main. *)
let shared_pools : (int, t) Hashtbl.t = Hashtbl.create 4
let shared_m = Mutex.create ()
let shared_exit_registered = ref false

let shared ~domains =
  let size = max 1 domains in
  if size = 1 then Sequential
  else begin
    Mutex.lock shared_m;
    if not !shared_exit_registered then begin
      shared_exit_registered := true;
      at_exit (fun () ->
          Mutex.lock shared_m;
          let pools = Hashtbl.fold (fun _ p acc -> p :: acc) shared_pools [] in
          Hashtbl.reset shared_pools;
          Mutex.unlock shared_m;
          List.iter shutdown pools)
    end;
    let p =
      match Hashtbl.find_opt shared_pools size with
      | Some p -> p
      | None ->
        let p = pool ~domains:size in
        Hashtbl.add shared_pools size p;
        p
    in
    Mutex.unlock shared_m;
    p
  end

(* ------------------------------------------------------------------ *)
(* map / mapi                                                         *)
(* ------------------------------------------------------------------ *)

type 'b slot = Done of 'b | Failed of exn * Printexc.raw_backtrace

(* chunks per participant at even load; smaller chunks mean more steal
   granularity at slightly more cursor traffic *)
let chunks_per_domain = 8

let mapi t f xs =
  let n = Array.length xs in
  if n = 0 then [||]
  else
    match t with
    | Sequential -> Array.mapi f xs
    | Pool state when state.workers = [] || n = 1 -> Array.mapi f xs
    | Pool state ->
      let out = Array.make n None in
      let run i =
        out.(i) <-
          Some
            (try Done (f i xs.(i))
             with e -> Failed (e, Printexc.get_raw_backtrace ()))
      in
      let np = state.size in
      let chunk = max 1 (n / (np * chunks_per_domain)) in
      let nchunks = (n + chunk - 1) / chunk in
      let deques =
        Array.init np (fun _ -> Deque.create ~capacity:(max 1 nchunks))
      in
      let pstats =
        Array.init np (fun _ ->
            {
              p_chunks = 0;
              p_stolen = 0;
              p_misses = 0;
              p_depth = Array.make depth_buckets 0;
            })
      in
      (* Block distribution, pushed in reverse so each owner's LIFO
         pops walk its block in ascending index order while thieves
         steal from the block's tail. *)
      for c = nchunks - 1 downto 0 do
        Deque.push deques.(c * np / nchunks) (c * chunk)
      done;
      let job = { run; total = n; chunk; deques; pstats } in
      Mutex.lock state.m;
      state.job <- Some job;
      state.running <- List.length state.workers;
      state.epoch <- state.epoch + 1;
      Condition.broadcast state.ready;
      Mutex.unlock state.m;
      (* the caller is the pool's participant 0 *)
      participate job 0;
      Mutex.lock state.m;
      while state.running > 0 do
        Condition.wait state.finished state.m
      done;
      state.job <- None;
      (* fold the per-participant telemetry into the pool totals and
         the metrics registry — single-writer here, workers are parked *)
      state.s_jobs <- state.s_jobs + 1;
      state.s_tasks <- state.s_tasks + n;
      Array.iter
        (fun st ->
          state.s_chunks <- state.s_chunks + st.p_chunks;
          state.s_stolen <- state.s_stolen + st.p_stolen;
          state.s_misses <- state.s_misses + st.p_misses;
          Array.iteri
            (fun b c -> state.s_depth.(b) <- state.s_depth.(b) + c)
            st.p_depth)
        pstats;
      Mutex.unlock state.m;
      Obs.Metrics.incr m_jobs;
      Obs.Metrics.add m_tasks n;
      Array.iter
        (fun st ->
          Obs.Metrics.add m_chunks st.p_chunks;
          Obs.Metrics.add m_steals st.p_stolen;
          Obs.Metrics.add m_steal_misses st.p_misses;
          Array.iteri
            (fun b c ->
              for _ = 1 to c do
                Obs.Metrics.observe m_queue_depth (float_of_int (1 lsl b))
              done)
            st.p_depth)
        pstats;
      (* deterministic failure: surface the lowest-index exception,
         exactly what a left-to-right sequential run would raise first *)
      Array.iter
        (function
          | Some (Failed (e, bt)) -> Printexc.raise_with_backtrace e bt
          | Some (Done _) | None -> ())
        out;
      Array.map
        (function
          | Some (Done v) -> v
          | Some (Failed _) | None -> assert false)
        out

let map t f xs = mapi t (fun _ x -> f x) xs
