(** Deterministic fork-join parallelism over OCaml 5 domains.

    The panel pipeline and the router's independent routing stage are
    embarrassingly parallel: each work item reads shared immutable
    state and produces a private result.  This module gives them one
    executor abstraction with two implementations:

    - {!sequential} runs every task inline on the caller — the
      OCaml-4-style fallback, and the mode to use when debugging,
      since it preserves a single-threaded execution trace;
    - {!pool} keeps [domains - 1] worker domains parked on a condition
      variable; every {!map} call wakes them, the caller participates
      as the last worker, and all domains pull fixed-size index chunks
      from a shared atomic cursor (a work-stealing-free chunked
      queue — no deques, no stealing, just one fetch-and-add per
      chunk).

    Results are written into per-index slots, so {!map} always returns
    them in input order regardless of which domain ran which chunk:
    callers get a deterministic merge order for free.  The library
    depends only on the standard library.

    {2 What the executor does {e not} do}

    Tasks must not submit work to the pool that is running them
    ({!map} is not re-entrant), and they are responsible for their own
    isolation: anything they mutate must be private to the task (see
    [Obs.Metrics.buffered] and [Budget.isolated] for the
    observability and budget halves of that contract). *)

type t
(** An executor: either inline-sequential or a domain pool. *)

val sequential : t
(** Runs every task on the calling domain, in index order.  [map
    sequential f xs] is observably [Array.map f xs]. *)

val pool : domains:int -> t
(** A pool of [max 1 domains] domains: [domains - 1] spawned workers
    plus the calling domain.  [pool ~domains:1] spawns nothing and
    behaves like {!sequential}.  The workers park between {!map} calls
    and live until {!shutdown}; always pair [pool] with {!shutdown}
    (or use {!with_pool}) or the process will not exit cleanly. *)

val with_pool : domains:int -> (t -> 'a) -> 'a
(** [with_pool ~domains f] runs [f] over a fresh pool and shuts it
    down afterwards, also on exceptions. *)

val shutdown : t -> unit
(** Join the pool's worker domains.  Idempotent; a no-op on
    {!sequential}.  Calling {!map} after [shutdown] falls back to
    inline-sequential execution. *)

val domains : t -> int
(** Total domains the executor uses, caller included (1 for
    {!sequential}). *)

val default_domains : unit -> int
(** The runtime's recommended domain count for this machine
    ([Domain.recommended_domain_count]). *)

val map : t -> ('a -> 'b) -> 'a array -> 'b array
(** [map t f xs] applies [f] to every element and returns the results
    in input order.  On a pool, tasks run concurrently in chunks of
    contiguous indices (chunk size [max 1 (n / (domains * 4))], so
    uneven task costs still spread across domains); the call returns
    only after every task has finished.

    If tasks raise, the exception of the {e lowest} input index is
    re-raised on the caller with its original backtrace — the same
    exception a sequential left-to-right run would have surfaced
    first — after all other tasks have completed.  [f] must not call
    {!map} on the same executor it is running under. *)

val mapi : t -> (int -> 'a -> 'b) -> 'a array -> 'b array
(** Like {!map}, passing each element's index. *)
