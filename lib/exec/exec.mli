(** Deterministic work-stealing parallelism over OCaml 5 domains.

    The panel pipeline, the router's batched stages and the library
    sweep are embarrassingly parallel: each work item reads shared
    immutable state and produces a private result.  This module gives
    them one executor abstraction with two implementations:

    - {!sequential} runs every task inline on the caller — the
      OCaml-4-style fallback, and the mode to use when debugging,
      since it preserves a single-threaded execution trace;
    - {!pool} keeps [domains - 1] worker domains parked on a condition
      variable; every {!map} call wakes them, the caller participates
      as one more worker, the index range is cut into contiguous
      chunks dealt block-wise into one {!Deque} per domain, and each
      domain drains its own deque LIFO before stealing chunks FIFO
      from the others.  Work stealing (rather than a shared cursor)
      keeps domains on their own cache-warm block under even load and
      still rebalances automatically when task costs are skewed —
      which is exactly the shape of panel solves and maze routes.

    Results are written into per-index slots, so {!map} always returns
    them in input order regardless of which domain ran which chunk:
    callers get a deterministic merge order for free.  The scheduler
    additionally meters itself (jobs, tasks, chunks, steals, misses,
    victim queue depths) into [exec.*] metrics and per-pool {!stats} —
    `docs/PERF.md` explains how to read them.

    {2 What the executor does {e not} do}

    Tasks must not submit work to the pool that is running them
    ({!map} is not re-entrant), and they are responsible for their own
    isolation: anything they mutate must be private to the task (see
    [Obs.Metrics.buffered] and [Budget.isolated] for the
    observability and budget halves of that contract). *)

type t
(** An executor: either inline-sequential or a domain pool. *)

val sequential : t
(** Runs every task on the calling domain, in index order.  [map
    sequential f xs] is observably [Array.map f xs]. *)

val pool : domains:int -> t
(** A pool of [max 1 domains] domains: [domains - 1] spawned workers
    plus the calling domain.  [pool ~domains:1] spawns nothing and
    behaves like {!sequential}.  The workers park between {!map} calls
    and live until {!shutdown}; always pair [pool] with {!shutdown}
    (or use {!with_pool}) or the process will not exit cleanly. *)

val shared : domains:int -> t
(** The process-wide persistent pool of the given size, created on
    first use and reused by every later [shared ~domains:n] with the
    same [n].  This is the executor call sites should reach for: it
    amortizes domain spawns across the whole process instead of paying
    a fork-join per call.  Never {!shutdown} a shared pool — it is
    joined automatically at process exit.  [shared ~domains:1] is
    {!sequential}. *)

val with_pool : domains:int -> (t -> 'a) -> 'a
(** [with_pool ~domains f] runs [f] over a fresh pool and shuts it
    down afterwards, also on exceptions.  Prefer {!shared} on hot
    paths — [with_pool] pays a domain spawn + join per call. *)

val shutdown : t -> unit
(** Join the pool's worker domains.  Idempotent; a no-op on
    {!sequential}.  Calling {!map} after [shutdown] falls back to
    inline-sequential execution. *)

val domains : t -> int
(** Total domains the executor uses, caller included (1 for
    {!sequential}). *)

val default_domains : unit -> int
(** The runtime's recommended domain count for this machine
    ([Domain.recommended_domain_count]). *)

val map : t -> ('a -> 'b) -> 'a array -> 'b array
(** [map t f xs] applies [f] to every element and returns the results
    in input order.  On a pool, tasks run concurrently in contiguous
    chunks (chunk size [max 1 (n / (domains * 8))]) scheduled by work
    stealing; the call returns only after every task has finished.

    If tasks raise, the exception of the {e lowest} input index is
    re-raised on the caller with its original backtrace — the same
    exception a sequential left-to-right run would have surfaced
    first — after all other tasks have completed.  [f] must not call
    {!map} on the same executor it is running under. *)

val mapi : t -> (int -> 'a -> 'b) -> 'a array -> 'b array
(** Like {!map}, passing each element's index. *)

(** {2 Scheduler telemetry} *)

type stats = {
  jobs : int;  (** {!map} calls that actually fanned out *)
  tasks : int;  (** total array elements processed by those jobs *)
  chunks : int;  (** chunks a domain popped from its {e own} deque *)
  chunks_stolen : int;  (** chunks obtained by stealing from a victim *)
  steal_misses : int;
      (** scan passes over all victims that found every deque empty —
          each participant (caller included) records exactly one
          terminal miss per job, so a value well above [jobs * domains]
          means domains were spinning while work was scarce *)
  queue_depth : int array;
      (** histogram of the victim's queue depth (including the stolen
          chunk) at each successful steal, in log2 buckets: index [k]
          counts steals that found depth in [[2{^k}, 2{^k+1})] *)
}
(** Cumulative over the pool's lifetime.  The same numbers are emitted
    to the metrics registry as [exec.jobs], [exec.tasks],
    [exec.chunks], [exec.steals], [exec.steal_misses] and the
    [exec.queue_depth] histogram, always from the calling domain at
    join — never from workers, so the registry's single-domain
    ownership holds. *)

val stats : t -> stats
(** Scheduler counters so far; all-zero for {!sequential}. *)

(** {2 The work-stealing deque}

    Exposed for property tests; library code only needs {!map}. *)

module Deque : sig
  (** A fixed-capacity Chase–Lev deque of ints: the owner pushes and
      pops LIFO at the bottom, any other domain steals FIFO at the
      top.  No task is ever lost or duplicated: slots are atomic and a
      thief that read a stale slot always loses the CAS on [top]. *)

  type t

  val create : capacity:int -> t
  (** Capacity is rounded up to a power of two and never grows — the
      pool sizes each deque for a whole job up front. *)

  val size : t -> int
  (** Racy estimate of the number of queued elements. *)

  val push : t -> int -> unit
  (** Owner only.  @raise Invalid_argument when full. *)

  val pop : t -> int option
  (** Owner only: take the most recently pushed element, racing
      thieves for the last one. *)

  type steal = Stolen of int | Empty | Retry

  val steal : t -> steal
  (** Any domain: take the oldest element.  [Retry] means another
      domain won the race — the deque may still hold work. *)
end
