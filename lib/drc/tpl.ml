module I = Geometry.Interval
module CG = Solver.Color_graph

type t = { params : CG.params }

let make ?track_window ?same_color_gap ?stitch_min_piece ?stitch_cost ~colors
    () =
  if colors < 2 then invalid_arg "Tpl.make: need at least 2 colors";
  let d = CG.default ~colors in
  let v default = Option.value ~default in
  {
    params =
      {
        d with
        CG.track_window = v d.CG.track_window track_window;
        same_color_gap = v d.CG.same_color_gap same_color_gap;
        stitch_min_piece = v d.CG.stitch_min_piece stitch_min_piece;
        stitch_cost = v d.CG.stitch_cost stitch_cost;
      };
  }

let of_params params =
  if params.CG.colors < 2 then invalid_arg "Tpl.of_params: need at least 2 colors";
  { params }

let params t = t.params
let colors t = t.params.CG.colors
let stitch_cost t = t.params.CG.stitch_cost
let to_string t = CG.params_to_string t.params

type feature = { track : int; span : Geometry.Interval.t; net : int }

type violation = {
  track : int;
  span : Geometry.Interval.t;
  net : int;
  neighbors : int list;
  where : string;
}

(* The M2 features of a layout in canonical (track, lo, hi) order:
   every real-net wire segment is one mask feature.  Blockages are
   pre-existing shapes outside the decomposition problem. *)
let features_of_layout (layout : Extract.layout) =
  let out = ref [] in
  for track = Array.length layout.Extract.m2 - 1 downto 0 do
    List.iter
      (fun (s : Extract.segment) ->
        if s.Extract.net <> Extract.blockage_net then
          out :=
            {
              track;
              span = I.make ~lo:s.Extract.lo ~hi:s.Extract.hi;
              net = s.Extract.net;
            }
            :: !out)
      layout.Extract.m2.(track)
  done;
  Array.of_list !out

let cg_feature (f : feature) =
  CG.feature ~track:f.track ~lo:(I.lo f.span) ~hi:(I.hi f.span)

let color_features t feats = CG.color t.params (Array.map cg_feature feats)

type stats = {
  features : int;
  solid : int;
  stitched : int;
  uncolored : int;
  violations : violation list;
}

let check t layout =
  let feats = features_of_layout layout in
  let coloring = color_features t feats in
  let solid = ref 0 and stitched = ref 0 in
  let violations = ref [] in
  let cg_feats = Array.map cg_feature feats in
  Array.iteri
    (fun i a ->
      match a with
      | CG.Solid _ -> incr solid
      | CG.Stitched _ -> incr stitched
      | CG.Uncolored ->
        let f : feature = feats.(i) in
        let neighbors =
          (* the nets crowding this feature past k colors *)
          Array.to_list feats
          |> List.filteri (fun j _ ->
                 j <> i && CG.conflicts t.params cg_feats.(i) cg_feats.(j))
          |> List.map (fun (g : feature) -> g.net)
          |> List.sort_uniq Int.compare
        in
        violations :=
          {
            track = f.track;
            span = f.span;
            net = f.net;
            neighbors;
            where =
              Printf.sprintf "track %d [%d, %d] net %d" f.track (I.lo f.span)
                (I.hi f.span) f.net;
          }
          :: !violations)
    coloring.CG.assignment;
  {
    features = Array.length feats;
    solid = !solid;
    stitched = !stitched;
    uncolored = coloring.CG.residual;
    violations = List.rev !violations;
  }

let blamed_nets stats =
  List.sort_uniq Int.compare (List.map (fun v -> v.net) stats.violations)

let clean stats = stats.violations = []

let stats_to_string s =
  Printf.sprintf "%d features: %d solid, %d stitched, %d uncolored" s.features
    s.solid s.stitched s.uncolored
