(** Triple-patterning (TPL) rule deck: layout-level color checking.

    A TPL deck assigns every M2 wire segment to one of [k] masks
    (colors); two features closer than the same-color spacing — in x,
    within a small track window — must land on different masks, and a
    feature that cannot take any single color may be split once at a
    stitch into two legally-colored pieces.  The deck wraps
    {!Solver.Color_graph.params}, the same record the pin-access
    solvers price ({!Pinaccess.Conflict.detect_color}) and the audit
    re-derives, so one parameter set drives selection, routing cost,
    checking and certification. *)

type t

val make :
  ?track_window:int ->
  ?same_color_gap:int ->
  ?stitch_min_piece:int ->
  ?stitch_cost:float ->
  colors:int ->
  unit ->
  t
(** A deck with the given color count; omitted knobs take the defaults
    of {!Solver.Color_graph.default}.
    @raise Invalid_argument when [colors < 2]. *)

val of_params : Solver.Color_graph.params -> t
(** Wrap an existing parameter record (e.g. the one stored in
    {!Pinaccess.Interval_gen.config}).
    @raise Invalid_argument when its color count is below 2. *)

val params : t -> Solver.Color_graph.params
val colors : t -> int
val stitch_cost : t -> float

val to_string : t -> string
(** Canonical one-line rendering of every knob — stable across runs, so
    safe as a cache-key component ({!Eco.Panel_cache}). *)

type feature = { track : int; span : Geometry.Interval.t; net : int }
(** An M2 wire segment as a mask feature. *)

type violation = {
  track : int;
  span : Geometry.Interval.t;
  net : int;  (** the net charged: its feature could not be colored *)
  neighbors : int list;
      (** nets of the conflicting features crowding it, sorted unique *)
  where : string;  (** human-readable location for reports *)
}

type stats = {
  features : int;
  solid : int;  (** features colored without a stitch *)
  stitched : int;
  uncolored : int;  (** = [List.length violations] *)
  violations : violation list;
}

val features_of_layout : Extract.layout -> feature array
(** Every real-net M2 segment of the layout in canonical
    (track, lo, hi) order; blockages are pre-existing shapes outside
    the decomposition problem and are skipped. *)

val color_features : t -> feature array -> Solver.Color_graph.coloring
(** The deterministic greedy coloring of {!Solver.Color_graph.color}
    over the given features. *)

val check : t -> Extract.layout -> stats
(** Extract the layout's features, color them, and report: a feature
    left uncolored is a violation charged to its net (the layout
    packs more than [colors] mutually-conflicting features and no
    single stitch rescues it). *)

val blamed_nets : stats -> int list
(** Sorted unique nets with uncolorable features — treated as unrouted
    by the evaluation, mirroring {!Check.blamed_nets}. *)

val clean : stats -> bool

val stats_to_string : stats -> string
