type params = {
  colors : int;
  track_window : int;
  same_color_gap : int;
  stitch_min_piece : int;
  stitch_cost : float;
}

let default ~colors =
  {
    colors;
    track_window = 1;
    same_color_gap = 2;
    stitch_min_piece = 2;
    stitch_cost = 1.0;
  }

let params_to_string p =
  Printf.sprintf "k=%d w=%d gap=%d piece=%d stitch=%g" p.colors p.track_window
    p.same_color_gap p.stitch_min_piece p.stitch_cost

type feature = { ftrack : int; flo : int; fhi : int }

let feature ~track ~lo ~hi =
  if lo > hi then invalid_arg "Color_graph.feature: empty span";
  { ftrack = track; flo = lo; fhi = hi }

(* Two features are color neighbors (same color would be illegal) when
   their tracks are within the window and their x-spans come closer
   than the same-color gap.  Inflating both right edges by [gap] turns
   the predicate into plain interval overlap, which is what the clique
   sweep and the coloring pass both exploit. *)
let conflicts p a b =
  abs (a.ftrack - b.ftrack) <= p.track_window
  && a.flo <= b.fhi + p.same_color_gap
  && b.flo <= a.fhi + p.same_color_gap

(* ----------------------------------------------------------------- *)
(* Coloring                                                           *)
(* ----------------------------------------------------------------- *)

type assignment =
  | Uncolored
  | Solid of int
  | Stitched of { at : int; left : int; right : int }

type coloring = {
  assignment : assignment array;
  stitches : int;
  residual : int;
}

(* colored pieces of feature [j] as [(color, lo, hi)] *)
let pieces f = function
  | Uncolored -> []
  | Solid c -> [ (c, f.flo, f.fhi) ]
  | Stitched { at; left; right } ->
    [ (left, f.flo, at); (right, at + 1, f.fhi) ]

(* same-color x-clearance between two pieces known to sit on tracks
   within the window *)
let pieces_clash p (c, lo, hi) (c', lo', hi') =
  c = c' && lo <= hi' + p.same_color_gap && lo' <= hi + p.same_color_gap

(* index features by track so neighbor scans touch only the window *)
let by_track feats =
  let table = Hashtbl.create 64 in
  Array.iteri
    (fun i f ->
      let cur = Option.value ~default:[] (Hashtbl.find_opt table f.ftrack) in
      Hashtbl.replace table f.ftrack (i :: cur))
    feats;
  (* ascending index per track, so scans are deterministic *)
  Hashtbl.iter (fun tr l -> Hashtbl.replace table tr (List.rev l)) table;
  table

let neighbors p table feats i =
  let f = feats.(i) in
  let out = ref [] in
  for tr = f.ftrack - p.track_window to f.ftrack + p.track_window do
    List.iter
      (fun j -> if j <> i && conflicts p f feats.(j) then out := j :: !out)
      (Option.value ~default:[] (Hashtbl.find_opt table tr))
  done;
  List.rev !out

let stitch_splits p f =
  let len = f.fhi - f.flo + 1 in
  if len < 2 * p.stitch_min_piece then []
  else
    List.init
      (len - (2 * p.stitch_min_piece) + 1)
      (fun i -> f.flo + p.stitch_min_piece - 1 + i)

(* Deterministic greedy coloring in index order, with a single-stitch
   fallback: a feature that cannot take any solid color may split once
   into two pieces of different colors, each at least
   [stitch_min_piece] long.  Only already-colored earlier features
   constrain a feature, so the result is legal pairwise by
   construction; features that admit neither a color nor a stitch stay
   [Uncolored] and are counted as residual. *)
let color p feats =
  if p.colors < 1 then invalid_arg "Color_graph.color: colors must be >= 1";
  let n = Array.length feats in
  let assignment = Array.make n Uncolored in
  let table = by_track feats in
  let stitches = ref 0 and residual = ref 0 in
  for i = 0 to n - 1 do
    let f = feats.(i) in
    let colored_pieces =
      List.concat_map
        (fun j -> pieces feats.(j) assignment.(j))
        (List.filter (fun j -> j < i) (neighbors p table feats i))
    in
    let legal (c, lo, hi) =
      not (List.exists (fun piece -> pieces_clash p piece (c, lo, hi)) colored_pieces)
    in
    let rec first_color c =
      if c >= p.colors then None
      else if legal (c, f.flo, f.fhi) then Some c
      else first_color (c + 1)
    in
    match first_color 0 with
    | Some c -> assignment.(i) <- Solid c
    | None ->
      let stitch =
        List.find_map
          (fun at ->
            let rec pair l =
              if l >= p.colors then None
              else if not (legal (l, f.flo, at)) then pair (l + 1)
              else
                let rec right r =
                  if r >= p.colors then pair (l + 1)
                  else if r <> l && legal (r, at + 1, f.fhi) then
                    Some (Stitched { at; left = l; right = r })
                  else right (r + 1)
                in
                right 0
            in
            pair 0)
          (stitch_splits p f)
      in
      (match stitch with
      | Some a ->
        assignment.(i) <- a;
        incr stitches
      | None -> incr residual)
  done;
  { assignment; stitches = !stitches; residual = !residual }

(* ----------------------------------------------------------------- *)
(* Verification (the audit layer's re-derivation)                     *)
(* ----------------------------------------------------------------- *)

type violation =
  | Color_out_of_range of { feature : int; color : int }
  | Illegal_stitch of { feature : int }
  | Same_color_clash of { a : int; b : int; color : int }

let violation_to_string = function
  | Color_out_of_range { feature; color } ->
    Printf.sprintf "feature %d uses color %d outside [0,k)" feature color
  | Illegal_stitch { feature } ->
    Printf.sprintf
      "feature %d: stitch split outside the span, a piece shorter than the \
       minimum, or equal piece colors"
      feature
  | Same_color_clash { a; b; color } ->
    Printf.sprintf
      "features %d and %d carry color %d within the same-color clearance" a b
      color

let verify p feats assignment =
  if Array.length assignment <> Array.length feats then
    invalid_arg "Color_graph.verify: assignment size mismatch";
  let in_range c = c >= 0 && c < p.colors in
  let exception Bad of violation in
  try
    Array.iteri
      (fun i a ->
        match a with
        | Uncolored -> ()
        | Solid c -> if not (in_range c) then raise (Bad (Color_out_of_range { feature = i; color = c }))
        | Stitched { at; left; right } ->
          if not (in_range left) then
            raise (Bad (Color_out_of_range { feature = i; color = left }));
          if not (in_range right) then
            raise (Bad (Color_out_of_range { feature = i; color = right }));
          let f = feats.(i) in
          if
            left = right
            || at - f.flo + 1 < p.stitch_min_piece
            || f.fhi - at < p.stitch_min_piece
          then raise (Bad (Illegal_stitch { feature = i })))
      assignment;
    let table = by_track feats in
    Array.iteri
      (fun i f ->
        List.iter
          (fun j ->
            if j > i then
              List.iter
                (fun pi ->
                  List.iter
                    (fun pj ->
                      if pieces_clash p pi pj then
                        let (c, _, _) = pi in
                        raise (Bad (Same_color_clash { a = i; b = j; color = c })))
                    (pieces feats.(j) assignment.(j)))
                (pieces f assignment.(i)))
          (neighbors p table feats i))
      feats;
    Ok ()
  with Bad v -> Error v

(* ----------------------------------------------------------------- *)
(* Clique enumeration for the solver tiers                            *)
(* ----------------------------------------------------------------- *)

(* Maximal pairwise-conflicting sets with more than [colors] members:
   within a track band of height [track_window + 1] the conflict
   relation is pure interval overlap (after gap inflation), so a
   left-to-right sweep emits each maximal clique exactly once.  Only
   cliques whose lowest track equals the band base are kept — every
   maximal clique of the full graph fits the band rooted at its lowest
   track, so this enumerates each exactly once without cross-band
   duplicates. *)
let cliques p feats =
  let table = by_track feats in
  let tracks =
    List.sort Int.compare (Hashtbl.fold (fun tr _ acc -> tr :: acc) table [])
  in
  let band base =
    let items = ref [] in
    for tr = base + p.track_window downto base do
      List.iter
        (fun i -> items := i :: !items)
        (Option.value ~default:[] (Hashtbl.find_opt table tr))
    done;
    !items
  in
  let eff_hi i = feats.(i).fhi + p.same_color_gap in
  let sweep base items =
    let sorted =
      List.sort
        (fun a b ->
          let c = Int.compare feats.(a).flo feats.(b).flo in
          if c <> 0 then c else Int.compare (eff_hi a) (eff_hi b))
        items
    in
    let ends = List.sort_uniq Int.compare (List.map eff_hi items) in
    let out = ref [] in
    let active = ref [] in
    let pending = ref sorted in
    let fresh = ref false in
    List.iter
      (fun x ->
        let rec admit () =
          match !pending with
          | i :: rest when feats.(i).flo <= x ->
            pending := rest;
            if eff_hi i >= x then begin
              active := i :: !active;
              fresh := true
            end;
            admit ()
          | _ -> ()
        in
        admit ();
        active := List.filter (fun i -> eff_hi i >= x) !active;
        if !fresh && List.length !active > p.colors then begin
          let members = List.sort Int.compare !active in
          if List.exists (fun i -> feats.(i).ftrack = base) members then begin
            let lo =
              List.fold_left (fun acc i -> max acc feats.(i).flo) min_int members
            in
            out := (Array.of_list members, lo, x) :: !out
          end;
          fresh := false
        end)
      ends;
    List.rev !out
  in
  List.concat_map (fun base -> sweep base (band base)) tracks
