type row =
  | Choose_one of int list
  | At_most_one of int list
  | At_most of int * int list

type problem = { num_vars : int; profit : float array; rows : row list }

type stats = {
  nodes : int;
  proven_optimal : bool;
  root_lp_bound : float option;
}

type solution = { objective : float; values : bool array; stats : stats }

exception Infeasible

let objective_of p values =
  let total = ref 0.0 in
  Array.iteri (fun v b -> if b then total := !total +. p.profit.(v)) values;
  !total

let check p values =
  let count vars = List.fold_left (fun k v -> if values.(v) then k + 1 else k) 0 vars in
  List.for_all
    (fun row ->
      match row with
      | Choose_one vars -> count vars = 1
      | At_most_one vars -> count vars <= 1
      | At_most (cap, vars) -> count vars <= cap)
    p.rows

(* conflict rows carry their capacity: [At_most_one] is capacity 1 *)
let split_rows p =
  let choose = ref [] and conflict = ref [] in
  List.iter
    (fun row ->
      match row with
      | Choose_one vars -> choose := Array.of_list vars :: !choose
      | At_most_one vars -> conflict := (1, Array.of_list vars) :: !conflict
      | At_most (cap, vars) -> conflict := (cap, Array.of_list vars) :: !conflict)
    p.rows;
  (Array.of_list (List.rev !choose), Array.of_list (List.rev !conflict))

let validate p choose conflict =
  let n = p.num_vars in
  if Array.length p.profit <> n then
    invalid_arg "Milp.solve: profit array size mismatch";
  let in_choose = Array.make n 0 in
  let check_row vars =
    let sorted = Array.copy vars in
    Array.sort Int.compare sorted;
    Array.iteri
      (fun i v ->
        if v < 0 || v >= n then invalid_arg "Milp.solve: variable out of range";
        if i > 0 && sorted.(i - 1) = sorted.(i) then
          invalid_arg "Milp.solve: duplicate variable in a row")
      sorted
  in
  Array.iter
    (fun vars ->
      check_row vars;
      Array.iter (fun v -> in_choose.(v) <- in_choose.(v) + 1) vars)
    choose;
  Array.iter
    (fun (cap, vars) ->
      if cap < 1 then invalid_arg "Milp.solve: At_most capacity must be >= 1";
      check_row vars)
    conflict;
  Array.iteri
    (fun v k ->
      if k = 0 then
        invalid_arg
          (Printf.sprintf "Milp.solve: variable %d in no Choose_one row" v))
    in_choose;
  in_choose

type undo = U_var of int | U_choose_sat of int | U_choose_free of int | U_conflict of int

let root_lp_bound p choose conflict =
  let objective = Array.to_list (Array.mapi (fun v k -> (v, k)) p.profit) in
  let row_to_constr rel rhs vars =
    Lp.constr (Array.to_list (Array.map (fun v -> (v, 1.0)) vars)) rel rhs
  in
  let constraints =
    Array.to_list (Array.map (row_to_constr Lp.Eq 1.0) choose)
    @ Array.to_list
        (Array.map
           (fun (cap, vars) -> row_to_constr Lp.Le (float_of_int cap) vars)
           conflict)
  in
  let lp =
    { Lp.num_vars = p.num_vars; maximize = true; objective; constraints }
  in
  match Lp.solve lp with
  | Lp.Optimal s -> Some s.Lp.objective_value
  | Lp.Infeasible | Lp.Unbounded | Lp.Iteration_limit -> None

let m_nodes = Obs.Metrics.counter "milp.nodes"

let branch_and_bound ?(time_limit = infinity) ?(node_limit = max_int)
    ?warm_start ?(root_lp = false) p =
  let n = p.num_vars in
  let choose, conflict_rows = split_rows p in
  let in_choose = validate p choose conflict_rows in
  let cf_cap = Array.map fst conflict_rows in
  let conflict = Array.map snd conflict_rows in
  (* share.(v): per-choose-row profit share used by the decomposable
     bound; summing the best free share over unsatisfied rows bounds the
     best completion. *)
  let share = Array.mapi (fun v k -> p.profit.(v) /. float_of_int k) in_choose in
  let ncr = Array.length choose in
  let var_choose = Array.make n [] and var_conflict = Array.make n [] in
  Array.iteri
    (fun r vars -> Array.iter (fun v -> var_choose.(v) <- r :: var_choose.(v)) vars)
    choose;
  Array.iteri
    (fun r vars ->
      Array.iter (fun v -> var_conflict.(v) <- r :: var_conflict.(v)) vars)
    conflict;
  let vstate = Array.make n 0 in
  let ch_sat = Array.make ncr false in
  let ch_free = Array.map Array.length choose in
  let cf_count = Array.make (Array.length conflict) 0 in
  let cur_profit = ref 0.0 in
  let trail = ref [] in
  let push u = trail := u :: !trail in
  (* Invariants: ch_sat.(r) holds iff some variable of the row is 1
     (hence inside set_one no *other* variable of a newly satisfied
     choose row can already be 1); cf_count.(r) counts the row's
     variables currently at 1 and never exceeds cf_cap.(r). *)
  let rec set_zero v =
    match vstate.(v) with
    | -1 -> true
    | 1 -> false
    | _ ->
      vstate.(v) <- -1;
      push (U_var v);
      List.for_all
        (fun r ->
          ch_free.(r) <- ch_free.(r) - 1;
          push (U_choose_free r);
          if ch_sat.(r) then true
          else if ch_free.(r) = 0 then false
          else if ch_free.(r) = 1 then begin
            let forced = ref (-1) in
            Array.iter
              (fun u -> if vstate.(u) = 0 then forced := u)
              choose.(r);
            !forced >= 0 && set_one !forced
          end
          else true)
        var_choose.(v)
  and set_one v =
    match vstate.(v) with
    | 1 -> true
    | -1 -> false
    | _ ->
      vstate.(v) <- 1;
      push (U_var v);
      cur_profit := !cur_profit +. p.profit.(v);
      List.for_all
        (fun r ->
          if ch_sat.(r) then false
          else begin
            ch_sat.(r) <- true;
            push (U_choose_sat r);
            Array.for_all (fun u -> u = v || set_zero u) choose.(r)
          end)
        var_choose.(v)
      && List.for_all
           (fun r ->
             if cf_count.(r) >= cf_cap.(r) then false
             else begin
               cf_count.(r) <- cf_count.(r) + 1;
               push (U_conflict r);
               (* at capacity: every still-free variable of the row is
                  forced to 0 (members already at 1 stay) *)
               if cf_count.(r) = cf_cap.(r) then
                 Array.for_all
                   (fun u -> u = v || vstate.(u) = 1 || set_zero u)
                   conflict.(r)
               else true
             end)
           var_conflict.(v)
  in
  let unwind mark =
    while !trail != mark do
      match !trail with
      | [] -> assert false
      | u :: rest ->
        trail := rest;
        (match u with
        | U_var v ->
          if vstate.(v) = 1 then cur_profit := !cur_profit -. p.profit.(v);
          vstate.(v) <- 0
        | U_choose_sat r -> ch_sat.(r) <- false
        | U_choose_free r -> ch_free.(r) <- ch_free.(r) + 1
        | U_conflict r -> cf_count.(r) <- cf_count.(r) - 1)
    done
  in
  let bound () =
    let b = ref !cur_profit in
    for r = 0 to ncr - 1 do
      if not ch_sat.(r) then begin
        let best = ref 0.0 in
        Array.iter
          (fun v -> if vstate.(v) = 0 && share.(v) > !best then best := share.(v))
          choose.(r);
        b := !b +. !best
      end
    done;
    !b
  in
  let incumbent = ref neg_infinity in
  let best_values = Array.make n false in
  (match warm_start with
  | Some values when Array.length values = n && check p values ->
    incumbent := objective_of p values;
    Array.blit values 0 best_values 0 n
  | Some _ | None -> ());
  let lp_bound = if root_lp then root_lp_bound p choose conflict_rows else None in
  let nodes = ref 0 in
  let limited = ref false in
  let start = Sys.time () in
  let out_of_budget () =
    !nodes >= node_limit
    || (!nodes land 255 = 0 && Sys.time () -. start > time_limit)
  in
  let record_solution () =
    if !cur_profit > !incumbent +. 1e-12 then begin
      incumbent := !cur_profit;
      Array.iteri (fun v s -> best_values.(v) <- s = 1) vstate
    end
  in
  let pick_branch_row () =
    let best = ref (-1) and best_free = ref max_int in
    for r = 0 to ncr - 1 do
      if (not ch_sat.(r)) && ch_free.(r) < !best_free then begin
        best := r;
        best_free := ch_free.(r)
      end
    done;
    !best
  in
  let rec dfs () =
    incr nodes;
    if out_of_budget () then limited := true
    else begin
      let r = pick_branch_row () in
      if r < 0 then record_solution ()
      else if bound () > !incumbent +. 1e-9 then begin
        let candidates =
          Array.to_list choose.(r)
          |> List.filter (fun v -> vstate.(v) = 0)
          |> List.sort (fun a b -> Float.compare p.profit.(b) p.profit.(a))
        in
        let mark_row = !trail in
        (* Try each candidate as the row's selection; after exploring a
           candidate, fix it to 0 so later siblings propagate the
           exclusion.  A failing exclusion means no sibling can work;
           an exclusion may also *force* the row's last candidate to 1,
           in which case that implied subtree is explored directly. *)
        (try
           List.iter
             (fun v ->
               if !limited then raise Exit;
               if ch_sat.(r) then begin
                 dfs ();
                 raise Exit
               end;
               if vstate.(v) = 0 then begin
                 let mark = !trail in
                 if set_one v && bound () > !incumbent +. 1e-9 then dfs ();
                 unwind mark;
                 if (not !limited) && not (set_zero v) then raise Exit
               end)
             candidates;
           if (not !limited) && ch_sat.(r) then dfs ()
         with Exit -> ());
        unwind mark_row
      end
    end
  in
  (* Initial propagation: force singleton pins. *)
  let ok = ref true in
  Array.iteri
    (fun r vars ->
      if !ok && (not ch_sat.(r)) && ch_free.(r) = 1 then begin
        let v = ref (-1) in
        Array.iter (fun u -> if vstate.(u) = 0 then v := u) vars;
        if !v >= 0 then ok := set_one !v else ok := false
      end)
    choose;
  if not !ok then raise Infeasible;
  let lp_closes_gap =
    match lp_bound with
    | Some b -> !incumbent >= b -. 1e-6
    | None -> false
  in
  let root_mark = !trail in
  if not lp_closes_gap then dfs ();
  if !incumbent = neg_infinity && !limited then begin
    (* Budget exhausted before reaching any leaf: greedy dive so the
       anytime contract still returns a feasible assignment. *)
    unwind root_mark;
    let progress = ref true in
    while !progress do
      progress := false;
      let r = pick_branch_row () in
      if r >= 0 then begin
        let candidates =
          Array.to_list choose.(r)
          |> List.filter (fun v -> vstate.(v) = 0)
          |> List.sort (fun a b -> Float.compare p.profit.(b) p.profit.(a))
        in
        List.iter
          (fun v ->
            if (not !progress) && vstate.(v) = 0 then begin
              let mark = !trail in
              if set_one v then progress := true else unwind mark
            end)
          candidates
      end
    done;
    if pick_branch_row () < 0 then record_solution ()
  end;
  if !incumbent = neg_infinity then raise Infeasible;
  {
    objective = !incumbent;
    values = Array.copy best_values;
    stats =
      {
        nodes = !nodes;
        proven_optimal = not !limited;
        root_lp_bound = lp_bound;
      };
  }

let solve ?time_limit ?node_limit ?warm_start ?root_lp p =
  Obs.Trace.with_span "milp.solve" @@ fun () ->
  let sol = branch_and_bound ?time_limit ?node_limit ?warm_start ?root_lp p in
  Obs.Metrics.add m_nodes sol.stats.nodes;
  sol
