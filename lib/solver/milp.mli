(** Exact 0-1 integer programming by branch-and-bound, specialised for
    the structure of the paper's Formula (1):

    - maximize a linear profit over binary variables,
    - [Choose_one] rows: exactly one variable of the set is 1
      (constraint (1b), one interval per pin),
    - [At_most_one] rows: at most one variable of the set is 1
      (constraint (1c), one interval per conflict clique),
    - [At_most (cap, vars)] rows: at most [cap] variables of the set
      are 1 — the capacitated generalization used for multi-patterning
      color cliques, where up to [k] mutually conflicting features can
      still be legally colored.  [At_most (1, vars)] is equivalent to
      [At_most_one vars].

    Every variable must appear in at least one [Choose_one] row (true
    for pin access intervals, each of which serves at least one pin).

    The search is exact: depth-first branch-and-bound over the choose
    rows with unit propagation (selecting a variable knocks out its
    whole conflict cliques; a pin reduced to a single candidate is
    forced), pruned by a decomposable profit bound and optionally
    tightened by the LP relaxation at the root.  A time limit turns the
    solver into an anytime method that reports whether optimality was
    proven. *)

type row =
  | Choose_one of int list
  | At_most_one of int list
  | At_most of int * int list

type problem = { num_vars : int; profit : float array; rows : row list }

type stats = {
  nodes : int;
  proven_optimal : bool;
  root_lp_bound : float option;
}

type solution = { objective : float; values : bool array; stats : stats }

exception Infeasible

val solve :
  ?time_limit:float ->
  ?node_limit:int ->
  ?warm_start:bool array ->
  ?root_lp:bool ->
  problem ->
  solution
(** @raise Infeasible when some [Choose_one] row cannot be satisfied.
    @raise Invalid_argument on malformed input (variable out of range,
    variable in no [Choose_one] row, duplicate variable in a row,
    [At_most] capacity below 1). *)

val objective_of : problem -> bool array -> float
val check : problem -> bool array -> bool
(** [check p v] verifies all rows are satisfied by assignment [v]. *)
