(** Multi-patterning color-conflict graphs (triple patterning and
    friends; see TRIAD / Mr.TPL in PAPERS.md).

    A {e feature} is a horizontal strip [(track, lo, hi)].  Two
    features are color neighbors when their tracks are at most
    [track_window] apart and their x-spans come within
    [same_color_gap]: printing both on the same mask would violate
    same-color spacing, so neighbors must take different colors — or
    one of them {e stitches}, splitting once into two differently
    colored pieces, each at least [stitch_min_piece] columns long.

    This module is deliberately geometry-library-free (plain ints), so
    both the rule deck ([Drc.Tpl]) and the solver core can share it
    without new dependencies.  Everything here is deterministic: the
    greedy coloring and the clique sweep depend only on the feature
    array order. *)

type params = {
  colors : int;  (** [k]; 3 for triple patterning *)
  track_window : int;
      (** vertical reach of the color conflict relation, in tracks *)
  same_color_gap : int;
      (** minimum empty columns between same-color features within the
          window *)
  stitch_min_piece : int;
      (** minimum length of each piece of a stitched feature *)
  stitch_cost : float;
      (** router negotiation cost per stitch; also the history bump
          weight on TPL-blamed nets *)
}

val default : colors:int -> params
(** [track_window = 1], [same_color_gap = 2], [stitch_min_piece = 2],
    [stitch_cost = 1.0]. *)

val params_to_string : params -> string
(** Stable, fully determining rendering — safe for cache keys. *)

type feature = private { ftrack : int; flo : int; fhi : int }

val feature : track:int -> lo:int -> hi:int -> feature
(** @raise Invalid_argument when [lo > hi]. *)

val conflicts : params -> feature -> feature -> bool
(** The color-neighbor predicate: same color would be illegal. *)

(** {1 Coloring} *)

type assignment =
  | Uncolored  (** residual: no color and no legal stitch *)
  | Solid of int
  | Stitched of { at : int; left : int; right : int }
      (** [left] colors [\[lo..at\]], [right] colors [\[at+1..hi\]] *)

type coloring = {
  assignment : assignment array;
  stitches : int;
  residual : int;  (** count of [Uncolored] features *)
}

val color : params -> feature array -> coloring
(** Deterministic greedy coloring in array order with a single-stitch
    fallback.  The result is pairwise legal by construction (verified
    property: [verify] accepts every [color] output).
    @raise Invalid_argument when [colors < 1]. *)

type violation =
  | Color_out_of_range of { feature : int; color : int }
  | Illegal_stitch of { feature : int }
  | Same_color_clash of { a : int; b : int; color : int }

val verify :
  params -> feature array -> assignment array -> (unit, violation) result
(** Independent legality re-derivation for the audit layer: colors in
    range, stitch geometry legal, and no two same-color pieces of
    neighboring features within the clearance.  [Uncolored] features
    are honest residuals and constrain nothing.
    @raise Invalid_argument on an assignment size mismatch. *)

val violation_to_string : violation -> string

(** {1 Clique enumeration} *)

val cliques : params -> feature array -> (int array * int * int) list
(** Maximal pairwise-conflicting feature sets with {e more} than
    [colors] members, as [(member indices ascending, lo, hi)] where
    [\[lo, hi\]] is the common intersection of the gap-inflated spans
    (its length plays the role of the paper's [L_m] subgradient step
    scale).  Sets with at most [colors] members always admit a legal
    coloring and are omitted.  Emitted in deterministic band-sweep
    order, each maximal set exactly once (rooted at its lowest
    track). *)
