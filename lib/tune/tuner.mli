(** The glue: turn a tuning mode into the hooks the solver stack
    already exposes — {!Pinaccess.Pin_access.optimize}'s [tune] hook
    for per-panel LR scheduling, {!Router.Negotiation.run}'s [order],
    and {!Eco.Engine}'s warm-start policy and cache-key policy id.

    [Off] hands back no hook, the default order and no policy id, so
    the stack runs its untouched (bit-identical) default paths; a
    fixed or bandit mode is deterministic under its seed — policy
    selection reads only panel features and previously observed
    work-unit rewards, never the clock — so two runs, at any [-j],
    produce the same policy trace and the same solution bytes. *)

type mode =
  | Off
  | Fixed of Policy.t  (** one policy for every panel / the whole run *)
  | Bandit of int64  (** seeded UCB1 over the LR schedules, per panel *)

val mode_of_string : string -> mode option
(** ["off"], ["bandit"], ["fixed:<id>"] (any {!Policy.id});
    the CLI's [--tune] syntax.  [Bandit] parses with seed 0 — callers
    override via [--tune-seed]. *)

val mode_to_string : mode -> string

type t

val create : ?seed:int64 -> mode -> t
(** [seed] (default 0) replaces the seed of a [Bandit] mode — the
    CLI's [--tune-seed]. *)

val mode : t -> mode

val pa_hook : t -> Pinaccess.Pin_access.tune_hook option
(** The per-panel scheduling hook: [None] for [Off] and for fixed
    policies of the ordering/warm axes (they do not touch the PAO
    walk).  A [Fixed (Lr_step _)] hook applies that schedule to every
    panel; a [Bandit] hook buckets each panel by
    {!Features.signature}, asks UCB1 for an arm, and feeds back the
    reward [q - 0.1 w] where [q] is the objective as a fraction of the
    panel's conflict-free upper bound ({!Features.profit_ub}) and [w]
    is LR iterations (from the panel's {!Obs.Metrics.diff} window) as
    a fraction of the iteration cap — quality leads, work breaks ties,
    and everything is work units and objective, never wall clock, so
    the reward (and thus the whole trace) is deterministic. *)

val replay_hook : (int * string) list -> Pinaccess.Pin_access.tune_hook
(** A hook that replays a recorded policy trace: panel [p] solves
    under the policy whose id the trace assigns it (baseline for
    unlisted panels or unknown ids).  What the fuzzer's repro files
    feed back in. *)

val negotiation_order : t -> Router.Negotiation.order
(** [Fixed (Order _)] maps to its ordering; everything else routes
    under the default {!Router.Negotiation.Hp}. *)

val warm_policy : t -> Eco.Engine.warm_policy option
(** [Fixed (Warm _)] maps to its ECO reuse policy; [None] otherwise. *)

val cache_policy_id : t -> string option
(** What {!Eco.Engine}'s [policy] field should digest into panel-cache
    keys: [None] when [Off] (pre-policy keys, byte-identical),
    [Some (Policy.id p)] for [Fixed p], [Some "bandit"] for a bandit
    (conservative: bandit-solved panels never replay as anything
    else). *)

val bandit : t -> Bandit.t option
(** The underlying bandit of a [Bandit] tuner ([None] otherwise) —
    read-only access for telemetry (pulls, regret, histogram). *)

val trace : t -> (int * string) list
(** The policy trace so far: [(panel, policy id)] in ascending panel
    order, one entry per panel the hook selected for. *)

val stats_line : t -> string
(** One-line tuner report: mode, arms pulled, regret proxy and the
    chosen-policy histogram for a bandit; mode and panel count for a
    fixed policy; ["tune: off"] otherwise. *)
