(** Seeded UCB1 over a fixed arm set, bucketed by feature signature.

    Determinism is the whole design: selection is a pure function of
    the seed and the (bucket, reward) history fed in so far — no
    clocks, no global RNG — so a run that replays the same panels in
    the same order reproduces the same policy trace, whatever [-j] is.
    The seed only permutes each bucket's initial exploration order
    (which arm gets tried first while all are untried); after that,
    classic UCB1 takes over with lowest-index tie-breaking.

    Waves of selections can happen before their rewards arrive (the
    {!Pinaccess.Pin_access.tune_hook} wave discipline): a selection
    registers a pending pull, so an untried arm is not handed to every
    panel of the first wave, and the UCB confidence term sees
    in-flight pulls; the exploitation mean, however, is over resolved
    pulls only (a pending pull is not a zero reward), with a neutral
    0.5 read for an arm whose pulls are all still in flight.  Rewards
    should be normalized to [0, 1] by the caller. *)

type t

val create : ?explore:float -> arms:string array -> seed:int64 -> unit -> t
(** [explore] (default 1.0) scales the UCB confidence term.
    @raise Invalid_argument when [arms] is empty. *)

val arms : t -> string array

val select : t -> bucket:string -> int
(** Arm index for the bucket's next pull (registered as pending). *)

val observe : t -> bucket:string -> arm:int -> reward:float -> unit
(** Resolve one pending pull of [arm] with its reward. *)

val pulls : t -> int
(** Total selections made, across buckets. *)

val buckets : t -> string list
(** Buckets seen so far, sorted. *)

type arm_stats = { arm : string; arm_pulls : int; mean_reward : float }

val bucket_stats : t -> bucket:string -> arm_stats list
(** Per-arm statistics of one bucket, arm order. *)

val histogram : t -> (string * int) list
(** Times each arm was selected, across buckets, arm order. *)

val regret_proxy : t -> float
(** Empirical regret proxy: over the resolved pulls of each bucket,
    [best-arm mean × pulls − total reward], summed.  A bandit that
    locked onto each bucket's best arm quickly scores near 0. *)
