module PA = Pinaccess.Pin_access

type lr_step = Lr_k95 | Lr_k70 | Lr_halve | Lr_warm | Lr_patience
type order = Ord_hp | Ord_area | Ord_congestion | Ord_history
type warm = Warm_always | Warm_never | Warm_sig
type t = Lr_step of lr_step | Order of order | Warm of warm

let lr_id = function
  | Lr_k95 -> "lr-k95"
  | Lr_k70 -> "lr-k70"
  | Lr_halve -> "lr-halve"
  | Lr_warm -> "lr-warm"
  | Lr_patience -> "lr-patience"

let id = function
  | Lr_step s -> lr_id s
  | Order Ord_hp -> "ord-hp"
  | Order Ord_area -> "ord-area"
  | Order Ord_congestion -> "ord-congestion"
  | Order Ord_history -> "ord-history"
  | Warm Warm_always -> "warm-always"
  | Warm Warm_never -> "warm-never"
  | Warm Warm_sig -> "warm-sig"

let all =
  [
    Lr_step Lr_k95;
    Lr_step Lr_k70;
    Lr_step Lr_halve;
    Lr_step Lr_warm;
    Lr_step Lr_patience;
    Order Ord_hp;
    Order Ord_area;
    Order Ord_congestion;
    Order Ord_history;
    Warm Warm_always;
    Warm Warm_never;
    Warm Warm_sig;
  ]

let of_id s = List.find_opt (fun p -> id p = s) all

let is_baseline = function
  | Lr_step Lr_k95 | Order Ord_hp | Warm Warm_always -> true
  | _ -> false

(* Lr_warm is not an arm: cold solves make it a baseline clone that
   would only dilute the bandit's exploration budget *)
let lr_arms = [| Lr_k95; Lr_k70; Lr_halve; Lr_patience |]

let apply_lr step (config : PA.config) =
  let lr = config.PA.lr in
  match step with
  | Lr_k95 -> config
  | Lr_k70 -> { config with PA.lr = { lr with Pinaccess.Lagrangian.alpha = 0.70 } }
  | Lr_halve ->
    { config with PA.lr = { lr with Pinaccess.Lagrangian.stall_halving = true } }
  | Lr_warm ->
    { config with PA.lr = { lr with Pinaccess.Lagrangian.warm_scale = 0.5 } }
  | Lr_patience ->
    { config with
      PA.lr = { lr with Pinaccess.Lagrangian.plateau_exit = Some 40 } }

let order_of = function
  | Ord_hp -> Router.Negotiation.Hp
  | Ord_area -> Router.Negotiation.Area
  | Ord_congestion -> Router.Negotiation.Congestion
  | Ord_history -> Router.Negotiation.History

let warm_of = function
  | Warm_always -> Eco.Engine.Warm_always
  | Warm_never -> Eco.Engine.Warm_never
  | Warm_sig -> Eco.Engine.Warm_signature 0.5
