(* splitmix64 (same generator family as Workloads.Rng, reimplemented
   locally to keep lib/tune off the benchmark-synthesis library) *)
let splitmix state =
  state := Int64.add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

type bucket = {
  explore_order : int array;  (* seeded permutation for initial pulls *)
  pull_count : int array;  (* resolved pulls per arm *)
  pending : int array;  (* selected, reward not yet observed *)
  reward_sum : float array;
}

type t = {
  arm_names : string array;
  explore : float;
  seed : int64;
  table : (string, bucket) Hashtbl.t;
  mutable total_pulls : int;
  picked : int array;  (* selection histogram, across buckets *)
}

let create ?(explore = 1.0) ~arms ~seed () =
  if Array.length arms = 0 then invalid_arg "Bandit.create: no arms";
  {
    arm_names = Array.copy arms;
    explore;
    seed;
    table = Hashtbl.create 8;
    total_pulls = 0;
    picked = Array.make (Array.length arms) 0;
  }

let arms t = Array.copy t.arm_names

(* deterministic per-bucket seed: the bucket name folded into the
   bandit seed byte by byte (FNV-style), then one splitmix scramble *)
let bucket_seed t name =
  let h = ref t.seed in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c)))
             0x100000001B3L)
    name;
  splitmix h

let bucket_of t name =
  match Hashtbl.find_opt t.table name with
  | Some b -> b
  | None ->
    let n = Array.length t.arm_names in
    let order = Array.init n (fun i -> i) in
    (* Fisher–Yates driven by the bucket's private splitmix stream *)
    let state = ref (bucket_seed t name) in
    for i = n - 1 downto 1 do
      let r = Int64.to_int (Int64.rem (splitmix state) (Int64.of_int (i + 1))) in
      let j = if r < 0 then r + i + 1 else r in
      let tmp = order.(i) in
      order.(i) <- order.(j);
      order.(j) <- tmp
    done;
    let b =
      {
        explore_order = order;
        pull_count = Array.make n 0;
        pending = Array.make n 0;
        reward_sum = Array.make n 0.0;
      }
    in
    Hashtbl.replace t.table name b;
    b

let select t ~bucket =
  let b = bucket_of t bucket in
  let n = Array.length t.arm_names in
  let tried i = b.pull_count.(i) + b.pending.(i) > 0 in
  let arm =
    match
      Array.find_opt (fun i -> not (tried i)) b.explore_order
    with
    | Some i -> i
    | None ->
      (* UCB1: mean + explore * sqrt(2 ln N / n_i).  Pending pulls
         count in N and n_i — an in-flight wave shrinks the bonus of
         the arm it already picked — but the mean is over RESOLVED
         pulls only: treating a pending pull as reward 0 would crater
         the chosen arm's mean and degenerate into round-robin inside
         every wave.  An arm with only pending pulls reads a neutral
         mean until its first reward lands. *)
      let total =
        Array.fold_left (fun acc c -> acc + c) 0 b.pull_count
        + Array.fold_left (fun acc c -> acc + c) 0 b.pending
      in
      let best = ref 0 and best_score = ref neg_infinity in
      for i = 0 to n - 1 do
        let ni = b.pull_count.(i) + b.pending.(i) in
        let mean =
          if b.pull_count.(i) = 0 then 0.5
          else b.reward_sum.(i) /. float_of_int b.pull_count.(i)
        in
        let bonus =
          t.explore
          *. sqrt (2.0 *. log (float_of_int total) /. float_of_int ni)
        in
        let score = mean +. bonus in
        if score > !best_score then begin
          best := i;
          best_score := score
        end
      done;
      !best
  in
  b.pending.(arm) <- b.pending.(arm) + 1;
  t.total_pulls <- t.total_pulls + 1;
  t.picked.(arm) <- t.picked.(arm) + 1;
  arm

let observe t ~bucket ~arm ~reward =
  let b = bucket_of t bucket in
  if b.pending.(arm) > 0 then b.pending.(arm) <- b.pending.(arm) - 1;
  b.pull_count.(arm) <- b.pull_count.(arm) + 1;
  b.reward_sum.(arm) <- b.reward_sum.(arm) +. reward

let pulls t = t.total_pulls

let buckets t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.table []
  |> List.sort String.compare

type arm_stats = { arm : string; arm_pulls : int; mean_reward : float }

let bucket_stats t ~bucket =
  match Hashtbl.find_opt t.table bucket with
  | None -> []
  | Some b ->
    Array.to_list
      (Array.mapi
         (fun i name ->
           {
             arm = name;
             arm_pulls = b.pull_count.(i);
             mean_reward =
               (if b.pull_count.(i) = 0 then nan
                else b.reward_sum.(i) /. float_of_int b.pull_count.(i));
           })
         t.arm_names)

let histogram t =
  Array.to_list (Array.mapi (fun i name -> (name, t.picked.(i))) t.arm_names)

let regret_proxy t =
  Hashtbl.fold
    (fun _ b acc ->
      let best = ref 0.0 and total = ref 0.0 and count = ref 0 in
      Array.iteri
        (fun i c ->
          if c > 0 then begin
            let mean = b.reward_sum.(i) /. float_of_int c in
            if mean > !best then best := mean;
            total := !total +. b.reward_sum.(i);
            count := !count + c
          end)
        b.pull_count;
      acc +. ((!best *. float_of_int !count) -. !total))
    t.table 0.0
