(** Cheap per-panel feature vector, computed from the already-built
    assignment problem — no extra geometry passes.  The features drive
    the bandit's bucketing ({!signature}): panels that look alike
    should share what the tuner learned. *)

type t = {
  pins : int;
  tracks : int;  (** routing tracks of the panel *)
  pin_density : float;  (** pins per track *)
  cliques : int;
  max_clique_depth : int;  (** largest conflict-set member count; 0 if none *)
  color_clique_frac : float;
      (** fraction of cliques with [cap > 1] (TPL color cliques) *)
  blockage_coverage : float;
      (** fraction of the panel's track-grid area covered by M2
          blockage spans *)
  max_fan_in : int;  (** most pins any single net has in the panel *)
  profit_ub : float;
      (** conflict-free relaxation of the panel objective: the sum of
          each pin's best candidate profit.  An upper bound on any
          solve's objective, so [objective /. profit_ub] is a
          panel-size-free quality fraction — the bandit's reward
          normalizer *)
}

val of_problem : panel:int -> Pinaccess.Problem.t -> t
(** Everything is read off the problem and its design; cost is linear
    in the panel's pins, cliques and blockage spans. *)

val signature : t -> string
(** Coarse deterministic bucket id, e.g. ["d:mid;k:deep;b:clear;tpl"].
    Quantizes pin density (lo/mid/hi at 1.5 and 3 pins per track),
    clique depth (shallow/deep at 3) and blockage coverage
    (clear/blocked at 5%), and flags color-clique presence — a handful
    of buckets, so every bucket sees enough panels to learn from. *)

val to_string : t -> string
(** Human-readable one-liner for traces and debugging. *)
