module PA = Pinaccess.Pin_access

type mode = Off | Fixed of Policy.t | Bandit of int64

let mode_of_string s =
  match s with
  | "off" -> Some Off
  | "bandit" -> Some (Bandit 0L)
  | _ ->
    (match String.index_opt s ':' with
     | Some i when String.sub s 0 i = "fixed" ->
       let id = String.sub s (i + 1) (String.length s - i - 1) in
       Option.map (fun p -> Fixed p) (Policy.of_id id)
     | _ -> None)

let mode_to_string = function
  | Off -> "off"
  | Fixed p -> "fixed:" ^ Policy.id p
  | Bandit seed -> Printf.sprintf "bandit(seed=%Ld)" seed

type t = {
  mode : mode;
  bandit : Bandit.t option;
  (* panel -> (bucket, arm, profit_ub, max_iterations) of the in-flight
     bandit selection; resolved by tune_observe.  Selections and
     observations both run on the coordinating domain, so no locking is
     needed. *)
  in_flight : (int, string * int * float * int) Hashtbl.t;
  mutable trace_rev : (int * string) list;  (* descending panels *)
}

let create ?(seed = 0L) mode =
  let mode = match mode with Bandit _ -> Bandit seed | m -> m in
  let bandit =
    match mode with
    | Bandit s ->
      (* explore well below UCB1's canonical 1.0: rewards here are
         deterministic per panel (the only variance is panel
         heterogeneity inside a bucket), and arm gaps are a few points
         of a ~0.9-scale reward — a full-size confidence bonus would
         round-robin for hundreds of pulls instead of exploiting *)
      Some
        (Bandit.create ~explore:0.02
           ~arms:(Array.map Policy.lr_id Policy.lr_arms)
           ~seed:s ())
    | _ -> None
  in
  { mode; bandit; in_flight = Hashtbl.create 64; trace_rev = [] }

let mode t = t.mode

(* Reward: work units and objective, never wall clock — both are
   deterministic, so the whole policy trace is.  Quality leads, work
   breaks ties: [q] is the objective as a fraction of the panel's
   conflict-free upper bound ({!Features.profit_ub}), a panel-size-free
   number near 1.0, and [w] is LR iterations as a fraction of the
   iteration cap.  [q - 0.1 w] prices a full sweep of the iteration
   budget at ten points of normalized quality — equivalently, one
   point of quality costs a tenth of the budget — so an arm that trims
   a plateau tail at equal objective wins, while an arm that converges
   fast by giving up percent-level objective loses to the baseline. *)
let work_weight = 0.1

let reward ~ub ~max_iter ~objective delta =
  let work = Obs.Metrics.counter_delta delta "lr.iterations" in
  let q =
    if ub <= 0.0 then 0.0
    else Float.min 1.0 (Float.max 0.0 (objective /. ub))
  in
  let w = float_of_int work /. float_of_int (max 1 max_iter) in
  Float.max 0.0 (q -. (work_weight *. w))

let fixed_lr_hook t step =
  let policy = Policy.lr_id step in
  {
    PA.tune_select =
      (fun ~panel _problem config ->
        t.trace_rev <- (panel, policy) :: t.trace_rev;
        (Policy.apply_lr step config, policy));
    PA.tune_observe = (fun ~panel:_ ~policy:_ ~objective:_ ~delta:_ -> ());
  }

let bandit_hook t bandit =
  {
    PA.tune_select =
      (fun ~panel problem config ->
        let features = Features.of_problem ~panel problem in
        let bucket = Features.signature features in
        let arm = Bandit.select bandit ~bucket in
        let step = Policy.lr_arms.(arm) in
        let policy = Policy.lr_id step in
        Hashtbl.replace t.in_flight panel
          ( bucket,
            arm,
            features.Features.profit_ub,
            config.PA.lr.Pinaccess.Lagrangian.max_iterations );
        t.trace_rev <- (panel, policy) :: t.trace_rev;
        (Policy.apply_lr step config, policy));
    PA.tune_observe =
      (fun ~panel ~policy:_ ~objective ~delta ->
        match Hashtbl.find_opt t.in_flight panel with
        | None -> ()
        | Some (bucket, arm, ub, max_iter) ->
          Hashtbl.remove t.in_flight panel;
          Bandit.observe bandit ~bucket ~arm
            ~reward:(reward ~ub ~max_iter ~objective delta));
  }

let pa_hook t =
  match t.mode with
  | Off -> None
  | Fixed (Policy.Lr_step step) -> Some (fixed_lr_hook t step)
  | Fixed (Policy.Order _ | Policy.Warm _) -> None
  | Bandit _ ->
    (match t.bandit with Some b -> Some (bandit_hook t b) | None -> None)

let replay_hook assignments =
  let table = Hashtbl.create (List.length assignments) in
  List.iter (fun (panel, id) -> Hashtbl.replace table panel id) assignments;
  {
    PA.tune_select =
      (fun ~panel _problem config ->
        match Option.bind (Hashtbl.find_opt table panel) Policy.of_id with
        | Some (Policy.Lr_step step) ->
          (Policy.apply_lr step config, Policy.lr_id step)
        | Some _ | None -> (config, Policy.lr_id Policy.Lr_k95));
    PA.tune_observe = (fun ~panel:_ ~policy:_ ~objective:_ ~delta:_ -> ());
  }

let negotiation_order t =
  match t.mode with
  | Fixed (Policy.Order o) -> Policy.order_of o
  | _ -> Router.Negotiation.Hp

let warm_policy t =
  match t.mode with
  | Fixed (Policy.Warm w) -> Some (Policy.warm_of w)
  | _ -> None

let cache_policy_id t =
  match t.mode with
  | Off -> None
  | Fixed p -> Some (Policy.id p)
  | Bandit _ -> Some "bandit"

let bandit t = t.bandit

let trace t =
  List.sort (fun (a, _) (b, _) -> compare a b) (List.rev t.trace_rev)

let stats_line t =
  match t.mode with
  | Off -> "tune: off"
  | Fixed p ->
    Printf.sprintf "tune: fixed:%s panels=%d" (Policy.id p)
      (List.length t.trace_rev)
  | Bandit seed ->
    (match t.bandit with
     | None -> "tune: bandit (inactive)"
     | Some b ->
       let hist =
         Bandit.histogram b
         |> List.map (fun (arm, n) -> Printf.sprintf "%s=%d" arm n)
         |> String.concat " "
       in
       Printf.sprintf
         "tune: bandit seed=%Ld pulls=%d buckets=%d regret=%.3f | %s" seed
         (Bandit.pulls b)
         (List.length (Bandit.buckets b))
         (Bandit.regret_proxy b) hist)
