(** The reified policy set: every scheduling heuristic the solver used
    to hard-code, as a first-class value with a canonical id.

    Three axes, matching where the fixed heuristics lived:

    - LR step schedules ({!lr_step}) — how {!Pinaccess.Lagrangian}
      moves its multipliers ([t_k = L_m / k^0.95] and variants);
    - rip-up net orderings ({!order}) — which net
      {!Router.Negotiation} routes next in either stage;
    - ECO warm-start reuse ({!warm}) — when {!Eco.Engine} seeds a
      dirty panel from cached multipliers.

    The canonical {!id} is what gets digested into
    {!Eco.Panel_cache.key} (so stale-policy panels never replay),
    written into policy traces, and parsed back from [--tune
    fixed:<id>].  The baseline of each axis reproduces today's
    behavior bit-for-bit. *)

type lr_step =
  | Lr_k95  (** the paper's schedule, [t_k = L_m / k^0.95] — baseline *)
  | Lr_k70  (** faster decay, [t_k = L_m / k^0.7] *)
  | Lr_halve
      (** halving-on-stall: the paper's schedule, additionally halved
          once per 10 best-free iterations
          ({!Pinaccess.Lagrangian.config.stall_halving}) *)
  | Lr_warm
      (** warm-start-scaled: steps multiplied by 0.5 when the solve was
          seeded from cached multipliers
          ({!Pinaccess.Lagrangian.config.warm_scale}); identical to the
          baseline on cold solves *)
  | Lr_patience
      (** the paper's schedule with a shortened stall cut: plateau exit
          after 40 best-free iterations instead of 50
          ({!Pinaccess.Lagrangian.config.plateau_exit}).  Identical
          multiplier walk — only the tail is trimmed, so it returns the
          baseline's solution whenever the last improvement landed
          early, for up to 10 fewer iterations per plateaued panel *)

type order =
  | Ord_hp  (** ascending bbox half-perimeter — baseline *)
  | Ord_area
  | Ord_congestion
  | Ord_history

type warm =
  | Warm_always  (** reuse whenever cached multipliers exist — baseline *)
  | Warm_never
  | Warm_sig  (** signature-gated at 0.5 overlap *)

type t = Lr_step of lr_step | Order of order | Warm of warm

val id : t -> string
(** Canonical id: ["lr-k95"], ["lr-k70"], ["lr-halve"], ["lr-warm"],
    ["lr-patience"], ["ord-hp"], ["ord-area"], ["ord-congestion"],
    ["ord-history"], ["warm-always"], ["warm-never"], ["warm-sig"]. *)

val of_id : string -> t option
(** Inverse of {!id}; [None] on an unknown id. *)

val all : t list
(** Every policy, each axis's baseline first. *)

val is_baseline : t -> bool
(** Whether the policy reproduces the pre-policy behavior
    bit-for-bit.  ([Lr_warm] is not: it diverges on warm-started
    solves.) *)

val lr_arms : lr_step array
(** The bandit's arm space over the LR axis, baseline at index 0.
    [Lr_warm] is deliberately absent: on the cold solves the bandit
    schedules it is the identity, so as an arm it would only dilute
    exploration with a baseline clone (it remains available as a fixed
    policy and on the ECO axis). *)

val lr_id : lr_step -> string

val apply_lr : lr_step -> Pinaccess.Pin_access.config -> Pinaccess.Pin_access.config
(** Specialize a solver config to the step schedule.  [Lr_k95] is the
    identity — the baseline arm solves under the caller's config
    unchanged, whatever it is. *)

val order_of : order -> Router.Negotiation.order
val warm_of : warm -> Eco.Engine.warm_policy
