module I = Geometry.Interval
module Design = Netlist.Design
module Pin = Netlist.Pin
module Problem = Pinaccess.Problem
module Conflict = Pinaccess.Conflict

type t = {
  pins : int;
  tracks : int;
  pin_density : float;
  cliques : int;
  max_clique_depth : int;
  color_clique_frac : float;
  blockage_coverage : float;
  max_fan_in : int;
  profit_ub : float;
}

let of_problem ~panel (problem : Problem.t) =
  let design = problem.Problem.design in
  let width = Design.width design in
  let track_iv = Design.panel_tracks design panel in
  let tracks = I.length track_iv in
  let pins = Problem.num_pins problem in
  let cliques = problem.Problem.cliques in
  let num_cliques = Array.length cliques in
  let max_depth = ref 0 in
  let colored = ref 0 in
  Array.iter
    (fun (c : Conflict.clique) ->
      max_depth := max !max_depth (Array.length c.Conflict.members);
      if c.Conflict.cap > 1 then incr colored)
    cliques;
  let blocked = ref 0 in
  for track = I.lo track_iv to I.hi track_iv do
    List.iter
      (fun span -> blocked := !blocked + I.length span)
      (Design.m2_blockages_on_track design track)
  done;
  let fan = Hashtbl.create 16 in
  let max_fan_in = ref 0 in
  List.iter
    (fun (p : Pin.t) ->
      let n = 1 + Option.value ~default:0 (Hashtbl.find_opt fan p.Pin.net) in
      Hashtbl.replace fan p.Pin.net n;
      max_fan_in := max !max_fan_in n)
    (Design.pins_of_panel design panel);
  let area = float_of_int (max 1 (tracks * width)) in
  (* conflict-free relaxation: every pin takes its most profitable
     candidate — an upper bound on the panel's objective, used to
     normalize solved objectives into a panel-size-free quality read *)
  let profit_ub = ref 0.0 in
  Array.iter
    (fun candidates ->
      let best = ref 0.0 in
      Array.iter
        (fun iv ->
          let p = problem.Problem.profits.(iv) in
          if p > !best then best := p)
        candidates;
      profit_ub := !profit_ub +. !best)
    problem.Problem.pin_candidates;
  {
    pins;
    tracks;
    pin_density = float_of_int pins /. float_of_int (max 1 tracks);
    cliques = num_cliques;
    max_clique_depth = !max_depth;
    color_clique_frac =
      (if num_cliques = 0 then 0.0
       else float_of_int !colored /. float_of_int num_cliques);
    blockage_coverage = float_of_int !blocked /. area;
    max_fan_in = !max_fan_in;
    profit_ub = !profit_ub;
  }

let signature f =
  let density =
    if f.pin_density <= 1.5 then "lo"
    else if f.pin_density <= 3.0 then "mid"
    else "hi"
  in
  let depth = if f.max_clique_depth <= 3 then "shallow" else "deep" in
  let blockage = if f.blockage_coverage < 0.05 then "clear" else "blocked" in
  Printf.sprintf "d:%s;k:%s;b:%s%s" density depth blockage
    (if f.color_clique_frac > 0.0 then ";tpl" else "")

let to_string f =
  Printf.sprintf
    "pins=%d tracks=%d density=%.2f cliques=%d depth=%d color=%.2f \
     blockage=%.3f fan=%d ub=%.1f sig=%s"
    f.pins f.tracks f.pin_density f.cliques f.max_clique_depth
    f.color_clique_frac f.blockage_coverage f.max_fan_in f.profit_ub
    (signature f)
