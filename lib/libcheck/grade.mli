(** Pin accessibility letter grades.

    A pin is graded by the highest congestion level it survives: the
    checker sweeps density levels from an empty neighbourhood upward,
    and a pin {e passes} a level when the cell's concurrent solve is
    audit-certified and the pin still offers at least the configured
    number of access points.  The grade is the standard-cell-evaluation
    shorthand the GLOBALFOUNDRIES flow prints: [A] survives every
    level, [F] fails even in isolation. *)

type t = A | B | C | D | F

val to_string : t -> string

val rank : t -> int
(** Severity order for worst-first ranking: [F] is 0 (worst), [A] is
    4 (best). *)

val worst : t -> t -> t
(** The lower of the two grades. *)

val of_pass_level : levels:int -> int -> t
(** [of_pass_level ~levels k] maps the highest contiguously passed
    density level [k] (−1 when even level 0 failed) to a grade:
    passing all [levels] is an [A], each missed level costs one letter,
    and [−1] is an [F].  [levels >= 1]. *)

val all : t list
(** [A; B; C; D; F] — histogram key order. *)
