module I = Geometry.Interval
module Cell_lib = Workloads.Cell_lib
module Rng = Workloads.Rng

type config = {
  gen : Pinaccess.Interval_gen.config;
  kind : Pinaccess.Pin_access.solver_kind;
  densities : float list;
  access_window : int;
  margin : int;
  row_height : int;
  min_access_points : int;
  seed : int64;
}

let default_config =
  {
    gen = Pinaccess.Interval_gen.default_config;
    kind = Pinaccess.Pin_access.Lr;
    densities = [ 0.0; 0.25; 0.5; 0.75 ];
    access_window = 8;
    margin = 10;
    row_height = 10;
    min_access_points = 4;
    seed = 1L;
  }

let gen_config config =
  { config.gen with Pinaccess.Interval_gen.min_window = Some config.access_window }

let density config ~level =
  match List.nth_opt config.densities level with
  | Some d -> d
  | None -> invalid_arg (Printf.sprintf "Harness.density: no level %d" level)

(* Deterministic per-(cell, level) congestion seed: the cell name is
   folded into the library seed so reordering the library never changes
   any cell's verdict. *)
let blockage_seed config (cell : Cell_lib.cell) ~level =
  let h =
    String.fold_left
      (fun h c -> Int64.add (Int64.mul h 131L) (Int64.of_int (Char.code c)))
      7L cell.Cell_lib.cell_name
  in
  Int64.add config.seed (Int64.add (Int64.mul h 1000003L) (Int64.of_int level))

(* Blockage segments on one track until ~[target] grids are covered,
   skipping any grid a pin occupies (minimum intervals must survive:
   congestion degrades access, never feasibility). *)
let congest rng ~width ~track ~target ~pin_grids =
  let covered = Array.make width false in
  let blocked = ref 0 in
  let out = ref [] in
  let attempts = ref (8 * width) in
  while !blocked < target && !attempts > 0 do
    decr attempts;
    let len = Rng.in_range rng ~lo:2 ~hi:6 in
    if width > len then begin
      let x0 = Rng.int rng (width - len) in
      let span = I.make ~lo:x0 ~hi:(x0 + len - 1) in
      let clashes =
        List.exists
          (fun (px, tracks) -> I.contains span px && I.contains tracks track)
          pin_grids
      in
      if not clashes then begin
        let fresh = ref 0 in
        for x = x0 to x0 + len - 1 do
          if not covered.(x) then incr fresh
        done;
        if !fresh > 0 then begin
          for x = x0 to x0 + len - 1 do
            covered.(x) <- true
          done;
          blocked := !blocked + !fresh;
          out :=
            Netlist.Blockage.make ~layer:Netlist.Blockage.M2 ~track ~span
            :: !out
        end
      end
    end
  done;
  !out

let design_for config (cell : Cell_lib.cell) ~level =
  let d = density config ~level in
  let width = cell.Cell_lib.width + (2 * config.margin) in
  let pins, nets =
    List.mapi
      (fun id (p : Cell_lib.pin) ->
        let x = config.margin + p.Cell_lib.offset in
        ( Netlist.Pin.make ~id ~net:id ~x ~tracks:p.Cell_lib.tracks,
          Netlist.Net.make ~id
            ~name:(cell.Cell_lib.cell_name ^ "/" ^ p.Cell_lib.pin_name)
            ~pins:[ id ] ))
      cell.Cell_lib.pins
    |> List.split
  in
  let blockages =
    if d <= 0.0 then []
    else begin
      let rng = Rng.create (blockage_seed config cell ~level) in
      let pin_grids =
        List.map
          (fun (p : Netlist.Pin.t) -> (p.Netlist.Pin.x, p.Netlist.Pin.tracks))
          pins
      in
      let target = int_of_float (d *. float_of_int width) in
      (* congest the cell-row routing tracks; the power-rail tracks 0
         and row_height-1 carry no pins and no candidates *)
      List.concat
        (List.init (config.row_height - 2) (fun i ->
             congest rng ~width ~track:(i + 1) ~target ~pin_grids))
    end
  in
  Netlist.Design.create
    ~name:(Printf.sprintf "%s@%g" cell.Cell_lib.cell_name d)
    ~width ~height:config.row_height ~row_height:config.row_height ~pins ~nets
    ~blockages ()
