(** Single-cell evaluation harness: a cell placed in isolation on a
    synthesized single-row die, surrounded by blockage congestion.

    The checker's model follows the library-evaluation papers: each
    cell pin becomes its own single-pin net (accessibility is graded
    per pin, and same-cell neighbours supply exactly the contention the
    concurrent formulation optimizes over), the die leaves [margin]
    free columns on both sides of the cell, and M2 blockage segments
    are synthesized on the cell-row tracks until roughly
    [density * width] grids of each track are covered.  Blockages never
    touch a grid a pin occupies, so every pin keeps its minimum
    interval and the solve stays feasible by Theorem 1 — congestion
    squeezes access quality, never the formulation.

    All synthesis is deterministic: the blockage stream is seeded from
    [(seed, cell name, density level)], so the same configuration
    always produces the same die, the same solve and the same report
    bytes. *)

type config = {
  gen : Pinaccess.Interval_gen.config;
      (** the active rule deck; {!gen_config} forces its [min_window]
          to [access_window] — single-pin nets have degenerate
          bounding boxes *)
  kind : Pinaccess.Pin_access.solver_kind;
  densities : float list;
      (** congestion levels swept per cell, ascending, starting at 0.0
          (isolation) *)
  access_window : int;
      (** how far from the pin column the router may approach, in grid
          columns each side *)
  margin : int;  (** free die columns left and right of the cell *)
  row_height : int;  (** must match the library generator's *)
  min_access_points : int;
      (** a pin passes a density level only with at least this many
          legal via landing grids *)
  seed : int64;  (** congestion synthesis seed *)
}

val default_config : config
(** LR solve, densities [0; 0.25; 0.5; 0.75], window 8, margin 10,
    rows of 10, 4 access points required. *)

val gen_config : config -> Pinaccess.Interval_gen.config
(** The rule deck actually handed to interval generation:
    [config.gen] with [min_window = Some access_window]. *)

val density : config -> level:int -> float
(** @raise Invalid_argument when [level] is out of range. *)

val design_for : config -> Workloads.Cell_lib.cell -> level:int -> Netlist.Design.t
(** The cell's evaluation die at one congestion level: a single-panel
    design whose solve is always feasible. *)
