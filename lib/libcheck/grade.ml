type t = A | B | C | D | F

let to_string = function A -> "A" | B -> "B" | C -> "C" | D -> "D" | F -> "F"

let rank = function F -> 0 | D -> 1 | C -> 2 | B -> 3 | A -> 4

let worst a b = if rank a <= rank b then a else b

let of_pass_level ~levels k =
  if levels < 1 then invalid_arg "Grade.of_pass_level: levels < 1";
  if k < 0 then F
  else if k >= levels - 1 then A
  else if k = levels - 2 then B
  else if k = levels - 3 then C
  else D

let all = [ A; B; C; D; F ]
