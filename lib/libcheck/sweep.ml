module Budget = Pinaccess.Budget

(* One code path for every [j]: slices are carved up front and each
   cell runs against its own isolated slice with buffered observability
   whether the pool has one domain or eight, so sequential and parallel
   sweeps are bit-identical by construction. *)
let run ?(j = 1) ?budget config cells =
  Obs.Trace.with_span "libcheck.sweep" @@ fun () ->
  let budget = Budget.of_option budget in
  let tasks = Array.of_list cells in
  let n = Array.length tasks in
  if n = 0 then []
  else begin
    let slices =
      Array.map
        (fun _ ->
          if Budget.is_unlimited budget then Budget.isolated budget ()
          else
            let seconds =
              Option.map
                (fun s -> s /. float_of_int n)
                (Budget.remaining_seconds budget)
            in
            let work_units =
              Option.map
                (fun w -> max 1 (w / n))
                (Budget.remaining_work budget)
            in
            Budget.isolated budget ?seconds ?work_units ())
        tasks
    in
    let trace_on = Obs.Trace.enabled () in
    let check i cell =
      let task () = Check.check_cell ~budget:slices.(i) config cell in
      Obs.Metrics.buffered (fun () ->
          if trace_on then Obs.Trace.buffered task else (task (), []))
    in
    let results = Exec.mapi (Exec.shared ~domains:(max 1 j)) check tasks in
    let out = ref [] in
    Array.iteri
      (fun i ((result, events), mbuf) ->
        Obs.Metrics.flush mbuf;
        Obs.Trace.replay events;
        Budget.spend budget (Budget.work_spent slices.(i));
        out := result :: !out)
      results;
    List.rev !out
  end
