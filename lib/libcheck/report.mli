(** The ranked library report: deterministic JSON and markdown
    renderings of a full library check.

    Reports are ranked worst-first — the cells (and within each cell,
    the pins) most likely to cause unroutable placements come first —
    with name-order tie-breaking, so the same library under the same
    configuration always renders the same bytes: no wall-clock, no
    hashes, no float formatting that varies by locale.  Both renderers
    persist through {!save_json}/{!save_markdown}, which write
    atomically ({!Obs.Fsio}): a crash mid-write leaves the previous
    report intact. *)

type t = {
  lib_name : string;
  seed : int64;  (** congestion synthesis seed *)
  densities : float list;
  access_window : int;
  min_access_points : int;
  cells : Check.cell_result list;  (** ranked worst-first *)
}

val make :
  lib_name:string -> Harness.config -> Check.cell_result list -> t
(** Rank the results (worst grade first; among equals, more worst-grade
    pins first, then cell name) and rank each cell's pins the same way
    (worst grade, then fewest isolation access points, then pin name). *)

val grade_histogram : t -> (Grade.t * int) list
(** Pin count per grade, in [Grade.all] order. *)

val weak_pins : t -> int
(** Pins graded [F]: no certified assignment with enough access points
    even in isolation. *)

val to_json : t -> Obs.Json.t
val to_markdown : t -> string

val save_json : string -> t -> unit
(** Atomic write of [to_json] (pretty-printed). *)

val save_markdown : string -> t -> unit
(** Atomic write of [to_markdown]. *)
