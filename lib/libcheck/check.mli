(** Per-cell pin-access check: the density sweep, the concurrent
    solves, the audit certificates and the resulting grades.

    For every density level the cell's evaluation die is built
    ({!Harness.design_for}), solved with the full panel pipeline
    ({!Pinaccess.Pin_access.optimize} under the active rule deck) and
    certified by the independent audit examiner — a graded cell always
    carries a certificate, never just the solver's word.  Per pin and
    level the checker then counts {e access points}: distinct legal via
    landing grids over all candidate intervals, re-derived from
    geometry by {!Pinaccess.Interval_gen.generate_pin}.  A pin passes a
    level when the level's certificate holds and the count reaches the
    configured minimum; the highest contiguously passed level sets the
    {!Grade.t}. *)

type pin_result = {
  pin_name : string;
  pin_id : Netlist.Pin.id;  (** within the cell's evaluation die *)
  candidates : int;  (** distinct candidate intervals in isolation *)
  access_points : int array;  (** legal via landing grids, per level *)
  assigned_len : int array;
      (** length of the interval the concurrent solve picked, per
          level — contention with the cell's other pins included *)
  pass_level : int;  (** highest contiguously passed level; -1 = none *)
  grade : Grade.t;
}

type cell_result = {
  cell : Workloads.Cell_lib.cell;
  pins : pin_result list;  (** in cell pin order *)
  certified : bool;  (** every level's solve was audit-certified *)
  uncertified : string option;  (** first rejection reason, if any *)
  objective : float;  (** the isolation (density 0) objective *)
  worst : Grade.t;
}

val check_cell :
  ?budget:Pinaccess.Budget.t ->
  Harness.config ->
  Workloads.Cell_lib.cell ->
  cell_result
(** Sweep one cell through every density level.  The optional [budget]
    meters all of the cell's solves jointly; on expiry the degradation
    ladder inside [optimize] still returns a feasible (certified)
    assignment. *)
