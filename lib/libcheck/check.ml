module I = Geometry.Interval
module PA = Pinaccess.Pin_access
module Cell_lib = Workloads.Cell_lib

type pin_result = {
  pin_name : string;
  pin_id : Netlist.Pin.id;
  candidates : int;
  access_points : int array;
  assigned_len : int array;
  pass_level : int;
  grade : Grade.t;
}

type cell_result = {
  cell : Cell_lib.cell;
  pins : pin_result list;
  certified : bool;
  uncertified : string option;
  objective : float;
  worst : Grade.t;
}

let m_cells = Obs.Metrics.counter "libcheck.cells"
let m_pins = Obs.Metrics.counter "libcheck.pins"
let m_weak = Obs.Metrics.counter "libcheck.weak_pins"
let m_access_points = Obs.Metrics.histogram "libcheck.access_points"

(* Distinct legal via landing grids over all of the pin's candidate
   intervals: per track, the union of candidate spans. *)
let count_access_points gen design pin =
  let by_track = Hashtbl.create 4 in
  List.iter
    (fun (_, track, span, _) ->
      Hashtbl.replace by_track track
        (span :: Option.value ~default:[] (Hashtbl.find_opt by_track track)))
    (Pinaccess.Interval_gen.generate_pin gen design pin);
  Hashtbl.fold
    (fun _track spans acc ->
      let sorted = List.sort I.compare spans in
      let covered, last =
        List.fold_left
          (fun (n, last) span ->
            match last with
            | Some (hi : int) when I.hi span <= hi -> (n, last)
            | Some hi when I.lo span <= hi ->
              (n + I.hi span - hi, Some (I.hi span))
            | Some _ | None -> (n + I.length span, Some (I.hi span)))
          (0, None) sorted
      in
      ignore last;
      acc + covered)
    by_track 0

let count_candidates gen design pin =
  Pinaccess.Interval_gen.generate_pin gen design pin
  |> List.map (fun (_, track, span, _) -> (track, I.lo span, I.hi span))
  |> List.sort_uniq compare |> List.length

let check_cell ?budget config (cell : Cell_lib.cell) =
  Obs.Trace.with_span "libcheck.cell" @@ fun () ->
  let gen = Harness.gen_config config in
  let pa_config = { PA.default_config with PA.gen } in
  let levels = List.length config.Harness.densities in
  if levels = 0 then invalid_arg "Check.check_cell: no density levels";
  let n_pins = List.length cell.Cell_lib.pins in
  let access = Array.make_matrix n_pins levels 0 in
  let assigned = Array.make_matrix n_pins levels 0 in
  let cert_ok = Array.make levels false in
  let first_reject = ref None in
  let candidates = Array.make n_pins 0 in
  let objective = ref 0.0 in
  for level = 0 to levels - 1 do
    let design = Harness.design_for config cell ~level in
    let pao =
      PA.optimize ~config:pa_config ?budget ~kind:config.Harness.kind design
    in
    if level = 0 then objective := pao.PA.objective;
    (match
       Audit.certify_pin_access
         ~weighting:gen.Pinaccess.Interval_gen.weighting
         ~window:config.Harness.access_window pao
     with
    | Ok () -> cert_ok.(level) <- true
    | Error reason ->
      if !first_reject = None then
        first_reject :=
          Some
            (Printf.sprintf "level %d: %s" level
               (Audit.reason_to_string reason)));
    Array.iter
      (fun (pin : Netlist.Pin.t) ->
        let id = pin.Netlist.Pin.id in
        access.(id).(level) <- count_access_points gen design pin;
        if level = 0 then candidates.(id) <- count_candidates gen design pin;
        match PA.interval_of_pin pao id with
        | Some iv -> assigned.(id).(level) <- Pinaccess.Access_interval.length iv
        | None -> assigned.(id).(level) <- 0)
      (Netlist.Design.pins design)
  done;
  let pins =
    List.mapi
      (fun id (p : Cell_lib.pin) ->
        let passes level =
          cert_ok.(level)
          && access.(id).(level) >= config.Harness.min_access_points
        in
        let rec highest k =
          if k < levels && passes k then highest (k + 1) else k - 1
        in
        let pass_level = highest 0 in
        let grade = Grade.of_pass_level ~levels pass_level in
        Obs.Metrics.incr m_pins;
        if grade = Grade.F then Obs.Metrics.incr m_weak;
        Obs.Metrics.observe m_access_points (float_of_int access.(id).(0));
        {
          pin_name = p.Cell_lib.pin_name;
          pin_id = id;
          candidates = candidates.(id);
          access_points = access.(id);
          assigned_len = assigned.(id);
          pass_level;
          grade;
        })
      cell.Cell_lib.pins
  in
  Obs.Metrics.incr m_cells;
  {
    cell;
    pins;
    certified = Array.for_all Fun.id cert_ok;
    uncertified = !first_reject;
    objective = !objective;
    worst =
      List.fold_left (fun w (p : pin_result) -> Grade.worst w p.grade) Grade.A
        pins;
  }
