(** Library sweep: fan the cells of a library across the domain pool.

    Cells are independent — each solves its own synthesized die — so
    the sweep maps them over [lib/exec] with every cell metered by an
    equal, isolated {!Pinaccess.Budget} slice and its metrics/trace
    output buffered domain-locally, then merges in input order.
    Unlike the panel fan-out inside [Pin_access], the sweep uses this
    single code path for every [j], so [-j 1] and [-j 4] runs produce
    bit-identical results (and so bit-identical reports) by
    construction, not by accident. *)

val run :
  ?j:int ->
  ?budget:Pinaccess.Budget.t ->
  Harness.config ->
  Workloads.Cell_lib.cell list ->
  Check.cell_result list
(** Check every cell, in input order.  [j] defaults to 1; the optional
    [budget] meters the whole sweep (split evenly across cells up
    front). *)
