module J = Obs.Json
module Cell_lib = Workloads.Cell_lib

type t = {
  lib_name : string;
  seed : int64;
  densities : float list;
  access_window : int;
  min_access_points : int;
  cells : Check.cell_result list;
}

let worst_pin_count (c : Check.cell_result) =
  List.length (List.filter (fun (p : Check.pin_result) -> p.grade = c.worst) c.pins)

let rank_pins (c : Check.cell_result) =
  let pins =
    List.sort
      (fun (a : Check.pin_result) (b : Check.pin_result) ->
        match compare (Grade.rank a.grade) (Grade.rank b.grade) with
        | 0 -> (
          match compare a.access_points.(0) b.access_points.(0) with
          | 0 -> compare a.pin_name b.pin_name
          | c -> c)
        | c -> c)
      c.pins
  in
  { c with pins }

let make ~lib_name (config : Harness.config) results =
  let cells =
    List.map rank_pins results
    |> List.sort (fun (a : Check.cell_result) (b : Check.cell_result) ->
           match compare (Grade.rank a.worst) (Grade.rank b.worst) with
           | 0 -> (
             match compare (worst_pin_count b) (worst_pin_count a) with
             | 0 ->
               compare a.cell.Cell_lib.cell_name b.cell.Cell_lib.cell_name
             | c -> c)
           | c -> c)
  in
  {
    lib_name;
    seed = config.Harness.seed;
    densities = config.Harness.densities;
    access_window = config.Harness.access_window;
    min_access_points = config.Harness.min_access_points;
    cells;
  }

let all_pins t =
  List.concat_map (fun (c : Check.cell_result) -> c.pins) t.cells

let grade_histogram t =
  let pins = all_pins t in
  List.map
    (fun g ->
      (g, List.length (List.filter (fun (p : Check.pin_result) -> p.grade = g) pins)))
    Grade.all

let weak_pins t =
  List.length
    (List.filter (fun (p : Check.pin_result) -> p.grade = Grade.F) (all_pins t))

let pin_to_json (p : Check.pin_result) =
  J.Obj
    [
      ("name", J.Str p.pin_name);
      ("grade", J.Str (Grade.to_string p.grade));
      ("pass_level", J.num_int p.pass_level);
      ("candidates", J.num_int p.candidates);
      ( "access_points",
        J.List (Array.to_list (Array.map J.num_int p.access_points)) );
      ( "assigned_len",
        J.List (Array.to_list (Array.map J.num_int p.assigned_len)) );
    ]

let cell_to_json (c : Check.cell_result) =
  J.Obj
    [
      ("name", J.Str c.cell.Cell_lib.cell_name);
      ("width", J.num_int c.cell.Cell_lib.width);
      ("grade", J.Str (Grade.to_string c.worst));
      ("certified", J.Bool c.certified);
      ( "uncertified",
        match c.uncertified with None -> J.Null | Some r -> J.Str r );
      ("objective", J.Num c.objective);
      ("pins", J.List (List.map pin_to_json c.pins));
    ]

let to_json t =
  J.Obj
    [
      ("library", J.Str t.lib_name);
      ("seed", J.Str (Int64.to_string t.seed));
      ("densities", J.List (List.map (fun d -> J.Num d) t.densities));
      ("access_window", J.num_int t.access_window);
      ("min_access_points", J.num_int t.min_access_points);
      ("cells_checked", J.num_int (List.length t.cells));
      ("weak_pins", J.num_int (weak_pins t));
      ( "grades",
        J.Obj
          (List.map
             (fun (g, n) -> (Grade.to_string g, J.num_int n))
             (grade_histogram t)) );
      ("cells", J.List (List.map cell_to_json t.cells));
    ]

let to_markdown t =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "# Library pin-access report: %s\n\n" t.lib_name;
  add "- seed: %Ld\n" t.seed;
  add "- densities: %s\n"
    (String.concat ", " (List.map (Printf.sprintf "%g") t.densities));
  add "- access window: ±%d columns; minimum access points: %d\n\n"
    t.access_window t.min_access_points;
  add "Grades (pins): %s — %d weak pin%s\n\n"
    (String.concat ", "
       (List.map
          (fun (g, n) -> Printf.sprintf "%s=%d" (Grade.to_string g) n)
          (grade_histogram t)))
    (weak_pins t)
    (if weak_pins t = 1 then "" else "s");
  add "| cell | grade | certified | pin | pin grade | pass level | aps |\n";
  add "|---|---|---|---|---|---|---|\n";
  List.iter
    (fun (c : Check.cell_result) ->
      List.iteri
        (fun i (p : Check.pin_result) ->
          let name, grade, cert =
            if i = 0 then
              ( c.cell.Cell_lib.cell_name,
                Grade.to_string c.worst,
                if c.certified then "yes" else "NO" )
            else ("", "", "")
          in
          add "| %s | %s | %s | %s | %s | %d | %s |\n" name grade cert
            p.pin_name (Grade.to_string p.grade) p.pass_level
            (String.concat "/"
               (Array.to_list (Array.map string_of_int p.access_points))))
        c.pins)
    t.cells;
  Buffer.contents buf

(* Streamed atomic write with a fault trip point between open and
   commit: the crash-safety regression tears the write here and asserts
   the previous report survives. *)
let atomic_save path content =
  let p = Obs.Fsio.open_atomic path in
  try
    let oc = Obs.Fsio.channel p in
    output_string oc content;
    Pinaccess.Fault.trip Pinaccess.Fault.Report_write;
    Obs.Fsio.commit p
  with e ->
    Obs.Fsio.abort p;
    raise e

let save_json path t = atomic_save path (J.to_string_pretty (to_json t) ^ "\n")
let save_markdown path t = atomic_save path (to_markdown t)
