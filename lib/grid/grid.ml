module I = Geometry.Interval
open Bigarray

(* The per-node scalar state (owner, occupancy, via pressure, history)
   lives in Bigarray.Array1 — raw int / float64 cells, so the maze
   router's cost reads touch unboxed memory.  [users] stays a list
   array: it is read only on the pfac>0 slow path and by rip-up. *)
type t = {
  design : Netlist.Design.t;
  space : Node.space;
  blocked : Bytes.t;
  solid : Bytes.t;
  owner : (int, int_elt, c_layout) Array1.t;
  users : int list array; (* nets using each node; a net appears once *)
  occ : (int, int_elt, c_layout) Array1.t;
  via_count : (int, int_elt, c_layout) Array1.t; (* per (x, y) plane grid *)
  history : (float, float64_elt, c_layout) Array1.t;
}

let space t = t.space
let design t = t.design

let create design =
  let space = Node.space_of_design design in
  let n = Node.count space in
  let t =
    {
      design;
      space;
      blocked = Bytes.make n '\000';
      solid = Bytes.make n '\000';
      owner = Array1.create int c_layout n;
      users = Array.make n [];
      occ = Array1.create int c_layout n;
      via_count =
        Array1.create int c_layout (space.Node.width * space.Node.height);
      history = Array1.create float64 c_layout n;
    }
  in
  Array1.fill t.owner (-1);
  Array1.fill t.occ 0;
  Array1.fill t.via_count 0;
  Array1.fill t.history 0.0;
  List.iter
    (fun (b : Netlist.Blockage.t) ->
      let layer =
        match b.layer with
        | Netlist.Blockage.M2 -> Layer.M2
        | Netlist.Blockage.M3 -> Layer.M3
      in
      for i = I.lo b.span to I.hi b.span do
        let x, y =
          match layer with
          | Layer.M2 -> (i, b.track)
          | Layer.M3 -> (b.track, i)
          | Layer.M1 -> assert false
        in
        if Node.in_bounds space ~x ~y then
          Bytes.set t.blocked (Node.pack space ~layer ~x ~y) '\001'
      done)
    (Netlist.Design.blockages design);
  t

let blocked t node = Bytes.get t.blocked node <> '\000'
let set_blocked t node = Bytes.set t.blocked node '\001'
let solid t node = Bytes.get t.solid node <> '\000'
let set_solid t node = Bytes.set t.solid node '\001'
let owner t node = t.owner.{node}

let set_owner t node ~net =
  let cur = t.owner.{node} in
  if cur = -1 then t.owner.{node} <- net
  else if cur <> net then
    invalid_arg
      (Printf.sprintf "Grid.set_owner: node %d owned by net %d, wanted %d"
         node cur net)

let clear_owner t node ~net = if t.owner.{node} = net then t.owner.{node} <- -1

let passable t ~net node =
  (not (blocked t node)) && (t.owner.{node} = -1 || t.owner.{node} = net)

let occ t node = t.occ.{node}

let add_usage t ~net node =
  if List.mem net t.users.(node) then
    invalid_arg "Grid.add_usage: net already uses node";
  t.users.(node) <- net :: t.users.(node);
  t.occ.{node} <- t.occ.{node} + 1

let remove_usage t ~net node =
  if not (List.mem net t.users.(node)) then
    invalid_arg "Grid.remove_usage: net does not use node";
  t.users.(node) <- List.filter (fun k -> k <> net) t.users.(node);
  t.occ.{node} <- t.occ.{node} - 1

let overused t node = t.occ.{node} > 1

let congested_nodes t =
  let count = ref 0 in
  for node = 0 to Array1.dim t.occ - 1 do
    if t.occ.{node} > 1 then incr count
  done;
  !count

let nets_using t node = t.users.(node)

let plane_index t ~x ~y = (y * t.space.Node.width) + x

let via_pressure t ~x ~y = t.via_count.{plane_index t ~x ~y}
let add_via t ~x ~y =
  let i = plane_index t ~x ~y in
  t.via_count.{i} <- t.via_count.{i} + 1

let remove_via t ~x ~y =
  let i = plane_index t ~x ~y in
  assert (t.via_count.{i} > 0);
  t.via_count.{i} <- t.via_count.{i} - 1

let via_forbidden t ~x ~y =
  let neighbour dx dy =
    let nx = x + dx and ny = y + dy in
    Node.in_bounds t.space ~x:nx ~y:ny
    && (t.via_count.{plane_index t ~x:nx ~y:ny} > 0
       || blocked t (Node.pack t.space ~layer:Layer.M2 ~x:nx ~y:ny)
       || blocked t (Node.pack t.space ~layer:Layer.M3 ~x:nx ~y:ny))
  in
  neighbour 1 0 || neighbour (-1) 0 || neighbour 0 1 || neighbour 0 (-1)

let history t node = t.history.{node}

(* negotiation-cost telemetry: targeted DRC blame bumps vs the blanket
   per-round congestion sweep *)
let m_history_bumps = Obs.Metrics.counter "grid.history_bumps"
let m_history_sweeps = Obs.Metrics.counter "grid.history_sweeps"

let add_history_at t node increment =
  Obs.Metrics.incr m_history_bumps;
  t.history.{node} <- t.history.{node} +. increment

let add_history t ~increment =
  Obs.Metrics.incr m_history_sweeps;
  for node = 0 to Array1.dim t.occ - 1 do
    if t.occ.{node} > 1 then t.history.{node} <- t.history.{node} +. increment
  done
