(** Dijkstra maze search over the unidirectional M2/M3 grid graph.

    Neighbour expansion honours the layer axes (M2 steps are
    horizontal, M3 vertical, vias switch layers in place), the search
    window, static blockages and exclusive owners (other nets' pins and
    pin access intervals, paper Sec. 4).  Node entry cost is the
    PathFinder term [(base + history) * (1 + pfac * sharing)]; via
    hops additionally pay the forbidden-via-grid cost where flagged. *)

type t
(** Reusable scratch (distance/parent/visited arrays and heap) bound to
    one grid; create once per routing session. *)

val create : Grid.t -> t
val grid : t -> Grid.t

type outcome =
  | Found of { path : Node.t list; cost : float }
      (** [path] runs source→target inclusive; the source element is
          one of the given sources *)
  | Unreachable

val search :
  ?should_stop:(unit -> bool) ->
  t ->
  cost:Cost.t ->
  net:int ->
  pfac:float ->
  sources:Node.t list ->
  targets:Node.t list ->
  window:Geometry.Rect.t ->
  outcome
(** Multi-source multi-target shortest path.  Sources start at cost 0
    (they are the net's existing metal).  Unpassable sources/targets are
    ignored; if no passable target exists the search is [Unreachable].
    [should_stop] is probed every 1024 expansions; when it answers
    [true] the search is abandoned and reports [Unreachable] — how
    routing budgets bound per-node work without this library depending
    on them. *)

val expansions : t -> int
(** Nodes popped during the last search (benchmark instrumentation).
    Also accumulated into the [maze.expansions] counter of
    {!Obs.Metrics}. *)

val pushes : t -> int
(** Heap pushes during the last search; accumulated into
    [maze.pushes]. *)
