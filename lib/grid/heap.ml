open Bigarray

(* Priorities and payloads live in Bigarray.Array1 so the floats stay
   unboxed in storage: a push or sift touches raw float64/int cells and
   never allocates.  The maze loop reads the minimum via min_prio /
   pop_payload; the option-returning [pop] survives as the convenient
   (allocating) face of the same heap. *)
type t = {
  mutable prio : (float, float64_elt, c_layout) Array1.t;
  mutable data : (int, int_elt, c_layout) Array1.t;
  mutable len : int;
}

let create ?(capacity = 256) () =
  {
    prio = Array1.create float64 c_layout capacity;
    data = Array1.create int c_layout capacity;
    len = 0;
  }

let clear t = t.len <- 0
let is_empty t = t.len = 0
let size t = t.len

let grow t =
  let cap = Array1.dim t.prio * 2 in
  let prio = Array1.create float64 c_layout cap
  and data = Array1.create int c_layout cap in
  Array1.blit t.prio (Array1.sub prio 0 (Array1.dim t.prio));
  Array1.blit t.data (Array1.sub data 0 (Array1.dim t.data));
  t.prio <- prio;
  t.data <- data

let swap t i j =
  let p = t.prio.{i} and d = t.data.{i} in
  t.prio.{i} <- t.prio.{j};
  t.data.{i} <- t.data.{j};
  t.prio.{j} <- p;
  t.data.{j} <- d

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if t.prio.{i} < t.prio.{parent} then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.len && t.prio.{l} < t.prio.{!smallest} then smallest := l;
  if r < t.len && t.prio.{r} < t.prio.{!smallest} then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let push t prio data =
  if t.len = Array1.dim t.prio then grow t;
  t.prio.{t.len} <- prio;
  t.data.{t.len} <- data;
  t.len <- t.len + 1;
  sift_up t (t.len - 1)

let min_prio t = if t.len = 0 then infinity else t.prio.{0}

let pop_payload t =
  if t.len = 0 then -1
  else begin
    let d = t.data.{0} in
    t.len <- t.len - 1;
    if t.len > 0 then begin
      t.prio.{0} <- t.prio.{t.len};
      t.data.{0} <- t.data.{t.len};
      sift_down t 0
    end;
    d
  end

let pop t =
  if t.len = 0 then None
  else begin
    let p = min_prio t in
    let d = pop_payload t in
    Some (p, d)
  end
