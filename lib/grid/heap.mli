(** Bigarray-backed binary min-heap of [(priority, payload)] pairs used
    by the maze router's Dijkstra loop.  Priorities are raw float64
    cells and payloads raw int cells, so pushes and sifts never
    allocate.  Stale entries are tolerated (decrease-key by
    reinsertion). *)

type t

val create : ?capacity:int -> unit -> t
val clear : t -> unit
val is_empty : t -> bool
val size : t -> int
val push : t -> float -> int -> unit

val min_prio : t -> float
(** Priority of the minimum element without removing it; [infinity]
    when empty.  Paired with {!pop_payload} this is the hot-loop pop:
    no option, no tuple. *)

val pop_payload : t -> int
(** Remove the minimum element and return its payload; [-1] when
    empty.  Read {!min_prio} {e first} if the priority is needed. *)

val pop : t -> (float * int) option
(** Convenience (allocating) pop of [(priority, payload)]. *)
