module I = Geometry.Interval
open Bigarray

(* Search state lives in Bigarray.Array1: dist is raw float64 and
   parent/gen/target_gen raw ints, so relaxations read and write
   unboxed cells.  Together with Heap's unboxed pop the inner Dijkstra
   loop allocates only when it pushes the heap past capacity — the
   [maze.alloc_words] counter (minor words per search) is the
   regression tripwire for that claim. *)
type t = {
  grid : Grid.t;
  space : Node.space;
  dist : (float, float64_elt, c_layout) Array1.t;
  parent : (int, int_elt, c_layout) Array1.t;
  gen : (int, int_elt, c_layout) Array1.t;
      (* generation stamps avoid clearing arrays per search *)
  target_gen : (int, int_elt, c_layout) Array1.t;
  mutable cur : int;
  heap : Heap.t;
  mutable expansions : int;
  mutable pushes : int;
}

let m_expansions = Obs.Metrics.counter "maze.expansions"
let m_pushes = Obs.Metrics.counter "maze.pushes"
let m_alloc_words = Obs.Metrics.counter "maze.alloc_words"

let create grid =
  let n = Node.count (Grid.space grid) in
  let t =
    {
      grid;
      space = Grid.space grid;
      dist = Array1.create float64 c_layout n;
      parent = Array1.create int c_layout n;
      gen = Array1.create int c_layout n;
      target_gen = Array1.create int c_layout n;
      cur = 0;
      heap = Heap.create ~capacity:1024 ();
      expansions = 0;
      pushes = 0;
    }
  in
  Array1.fill t.dist infinity;
  Array1.fill t.parent (-1);
  Array1.fill t.gen 0;
  Array1.fill t.target_gen 0;
  t

type outcome = Found of { path : Node.t list; cost : float } | Unreachable

let grid t = t.grid
let expansions t = t.expansions
let pushes t = t.pushes

(* Another net's metal (or a blockage) sits on [node].  During the
   independent stage ([pfac = 0]) only static metal counts — pins,
   intervals, blockages — so nets route blind to each other's wires,
   as PathFinder's first iteration requires. *)
let foreign t ~net ~pfac node =
  Grid.blocked t.grid node
  || (Grid.solid t.grid node
     &&
     let o = Grid.owner t.grid node in
     o >= 0 && o <> net)
  || (pfac > 0.0
     && List.exists (fun k -> k <> net) (Grid.nets_using t.grid node))

(* Soft clearance: grids whose along-track neighbour carries foreign
   metal would create a sub-minimum line-end gap if a wire ended there,
   so they carry an extra cost (the [21]-style rule mitigation). *)
let spacing_cost t ~(cost : Cost.t) ~net ~pfac node =
  let x = Node.x t.space node and y = Node.y t.space node in
  let nb dx dy =
    Node.in_bounds t.space ~x:(x + dx) ~y:(y + dy)
    &&
    let layer = Node.layer t.space node in
    foreign t ~net ~pfac (Node.pack t.space ~layer ~x:(x + dx) ~y:(y + dy))
  in
  let adjacent, near =
    match Node.layer t.space node with
    | Layer.M2 -> (nb 1 0 || nb (-1) 0, nb 2 0 || nb (-2) 0)
    | Layer.M3 -> (nb 0 1 || nb 0 (-1), nb 0 2 || nb 0 (-2))
    | Layer.M1 -> (false, false)
  in
  if adjacent then cost.Cost.spacing_penalty
  else if near then cost.Cost.spacing_penalty /. 2.0
  else 0.0

(* Cost of stepping onto [node]: base + history, inflated by present
   sharing, plus the soft clearance term.  [via] adds the via-grid cost
   (and the forbidden-grid penalty) of landing the cut at (x, y). *)
let entry_cost t ~(cost : Cost.t) ~net ~pfac ~via node =
  let congestion = float_of_int (Grid.occ t.grid node) in
  let negotiated =
    (cost.Cost.base_cost +. Grid.history t.grid node)
    *. (1.0 +. (pfac *. congestion))
  in
  let clearance = spacing_cost t ~cost ~net ~pfac node in
  if cost.Cost.hard_spacing && clearance > 0.0 then infinity
  else begin
    let negotiated = negotiated +. clearance in
    if via then begin
      let x = Node.x t.space node and y = Node.y t.space node in
      let penalty =
        if Grid.via_forbidden t.grid ~x ~y then
          if cost.Cost.hard_spacing then infinity
          else cost.Cost.forbidden_via_cost
        else 0.0
      in
      negotiated +. cost.Cost.via_cost +. penalty
    end
    else negotiated
  end

let search_impl ?(should_stop = fun () -> false) t ~cost ~net ~pfac ~sources
    ~targets ~window =
  t.cur <- t.cur + 1;
  t.expansions <- 0;
  t.pushes <- 0;
  Heap.clear t.heap;
  let xs = Geometry.Rect.xs window and ys = Geometry.Rect.ys window in
  let in_window node =
    I.contains xs (Node.x t.space node) && I.contains ys (Node.y t.space node)
  in
  let any_target = ref false in
  List.iter
    (fun node ->
      if Grid.passable t.grid ~net node then begin
        t.target_gen.{node} <- t.cur;
        any_target := true
      end)
    targets;
  if not !any_target then Unreachable
  else begin
    List.iter
      (fun node ->
        if Grid.passable t.grid ~net node && in_window node then begin
          (* a landing next to foreign metal pays the clearance cost up
             front, steering the connection towards clean grids *)
          let d0 = spacing_cost t ~cost ~net ~pfac node in
          if t.gen.{node} <> t.cur || d0 < t.dist.{node} then begin
            t.dist.{node} <- d0;
            t.parent.{node} <- -1;
            t.gen.{node} <- t.cur;
            t.pushes <- t.pushes + 1;
            Heap.push t.heap d0 node
          end
        end)
      sources;
    let relax ~from ~via node =
      if
        Node.in_bounds t.space ~x:(Node.x t.space node) ~y:(Node.y t.space node)
        && in_window node
        && Grid.passable t.grid ~net node
      then begin
        let d = t.dist.{from} +. entry_cost t ~cost ~net ~pfac ~via node in
        if
          d < infinity
          && (t.gen.{node} <> t.cur || d < t.dist.{node} -. 1e-12)
        then begin
          t.gen.{node} <- t.cur;
          t.dist.{node} <- d;
          t.parent.{node} <- from;
          t.pushes <- t.pushes + 1;
          Heap.push t.heap d node
        end
      end
    in
    let rec loop () =
      if Heap.is_empty t.heap then Unreachable
      else begin
        let d = Heap.min_prio t.heap in
        let node = Heap.pop_payload t.heap in
        if t.gen.{node} = t.cur && d > t.dist.{node} +. 1e-12 then loop ()
        else begin
          t.expansions <- t.expansions + 1;
          (* periodic deadline probe: abandoning mid-search is safe —
             the caller treats it like an unreachable target *)
          if t.expansions land 1023 = 0 && should_stop () then Unreachable
          else if t.target_gen.{node} = t.cur then begin
            let rec walk acc n =
              if n < 0 then acc else walk (n :: acc) t.parent.{n}
            in
            Found { path = walk [] node; cost = d }
          end
          else begin
            let x = Node.x t.space node and y = Node.y t.space node in
            (match Node.layer t.space node with
            | Layer.M2 ->
              if x + 1 < t.space.Node.width then
                relax ~from:node ~via:false
                  (Node.pack t.space ~layer:Layer.M2 ~x:(x + 1) ~y);
              if x - 1 >= 0 then
                relax ~from:node ~via:false
                  (Node.pack t.space ~layer:Layer.M2 ~x:(x - 1) ~y)
            | Layer.M3 ->
              if y + 1 < t.space.Node.height then
                relax ~from:node ~via:false
                  (Node.pack t.space ~layer:Layer.M3 ~x ~y:(y + 1));
              if y - 1 >= 0 then
                relax ~from:node ~via:false
                  (Node.pack t.space ~layer:Layer.M3 ~x ~y:(y - 1))
            | Layer.M1 -> assert false);
            relax ~from:node ~via:true (Node.other_layer t.space node);
            loop ()
          end
        end
      end
    in
    loop ()
  end

let search ?should_stop t ~cost ~net ~pfac ~sources ~targets ~window =
  let before = Gc.minor_words () in
  let outcome =
    search_impl ?should_stop t ~cost ~net ~pfac ~sources ~targets ~window
  in
  let allocated = Gc.minor_words () -. before in
  Obs.Metrics.add m_expansions t.expansions;
  Obs.Metrics.add m_pushes t.pushes;
  Obs.Metrics.add m_alloc_words (int_of_float allocated);
  outcome
