#!/usr/bin/env python3
"""Bench regression gate: diff BENCH.json against the committed baseline.

Gates only the deterministic quality metrics (routability, via count,
wirelength) per circuit and flow -- the whole pipeline is bit-identical
across runs and machines, so these should only drift when the code
changes them.  Wall-clock and CPU numbers are machine-dependent and are
reported but never gated.

A metric fails the gate when it moves in the *worse* direction (lower
routability, more vias, more wirelength) by more than the relative
tolerance.  Improvements are reported as notes.

Usage:
    scripts/bench_gate.py [--current BENCH.json]
                          [--baseline bench/BASELINE.json]
                          [--rtol 0.01]

Exit codes: 0 gate passes, 1 regression or malformed input.
"""

import argparse
import json
import sys

FLOWS = ("seq", "ncr", "cpr")
# metric name -> +1 if bigger is better, -1 if smaller is better
METRICS = {"routability": +1, "via_count": -1, "wirelength": -1}


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"bench gate: cannot read {path}: {e}")


def by_id(doc, path):
    circuits = doc.get("circuits") or sys.exit(f"bench gate: no circuits in {path}")
    return {c["id"]: c["flows"] for c in circuits}


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--current", default="BENCH.json")
    ap.add_argument("--baseline", default="bench/BASELINE.json")
    ap.add_argument(
        "--rtol",
        type=float,
        default=0.01,
        help="relative tolerance before a worse-direction move fails (default 1%%)",
    )
    args = ap.parse_args()

    base = by_id(load(args.baseline), args.baseline)
    cur = by_id(load(args.current), args.current)

    failures, notes = [], []
    for cid, base_flows in sorted(base.items()):
        if cid not in cur:
            failures.append(f"{cid}: circuit missing from {args.current}")
            continue
        for flow in FLOWS:
            for metric, better in METRICS.items():
                b = base_flows[flow][metric]
                c = cur[cid][flow][metric]
                if b == c:
                    continue
                rel = (c - b) / max(abs(b), 1e-9)
                tag = f"{cid}.{flow}.{metric}: {b} -> {c} ({rel:+.2%})"
                if rel * better < -args.rtol:
                    failures.append(tag)
                else:
                    notes.append(tag)

    for cid in sorted(set(cur) - set(base)):
        notes.append(f"{cid}: new circuit, not in baseline")

    if notes:
        print("bench gate: drift within tolerance / improvements:")
        for n in notes:
            print(f"  note  {n}")
    if failures:
        print("bench gate: QUALITY REGRESSION vs committed baseline:", file=sys.stderr)
        for f in failures:
            print(f"  FAIL  {f}", file=sys.stderr)
        print(
            "If the regression is intended, regenerate bench/BASELINE.json "
            "(see .github/workflows/README.md) and commit it with an "
            "explanation.",
            file=sys.stderr,
        )
        return 1
    print(f"bench gate: OK ({len(base)} circuits, rtol {args.rtol})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
