#!/usr/bin/env python3
"""Bench regression gate: diff BENCH.json against the committed baseline.

Gates only the deterministic quality metrics (routability, via count,
wirelength) per circuit and flow -- the whole pipeline is bit-identical
across runs and machines, so these should only drift when the code
changes them.  Wall-clock and CPU numbers are machine-dependent and are
reported but never gated.

A metric fails the gate when it moves in the *worse* direction (lower
routability, more vias, more wirelength) by more than the relative
tolerance.  Improvements are reported as notes.

With --require-speedup the gate additionally validates the scheduler
telemetry on the parallel[] and mega[] rows (steal counts, queue-depth
histogram, alloc/node) and -- only when the run's available_domains is
greater than 1 -- asserts that the parallel PAO wall clock beats (or at
worst matches, within --wall-rtol) the sequential wall clock on every
row.  On a single-core runner the wall assertion is vacuous and is
reported as skipped rather than silently passing.

With --require-tune the gate validates the tune[] rows from the
adaptive-scheduling experiment: every row must report off_identical
(tuning leaves no trace when off) and at least one row must have spent
no more work units tuned than untuned while keeping the objective
within --rtol -- the bandit actually paid for itself somewhere.

Usage:
    scripts/bench_gate.py [--current BENCH.json]
                          [--baseline bench/BASELINE.json]
                          [--rtol 0.01]
                          [--require-libcheck] [--require-tpl]
                          [--require-tune] [--no-quality-diff]
                          [--require-speedup] [--wall-rtol 0.05]

Exit codes: 0 gate passes, 1 regression or malformed input.
"""

import argparse
import json
import sys

FLOWS = ("seq", "ncr", "cpr")
# metric name -> +1 if bigger is better, -1 if smaller is better
METRICS = {"routability": +1, "via_count": -1, "wirelength": -1}


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"bench gate: cannot read {path}: {e}")


def by_id(doc, path):
    circuits = doc.get("circuits") or sys.exit(f"bench gate: no circuits in {path}")
    return {c["id"]: c["flows"] for c in circuits}


# libcheck[] row schema: field name -> validator.  The rows are
# structural telemetry (throughput varies by machine), so the gate
# checks shape and the machine-independent invariants: the parallel
# sweep reported bit-identity, counts are sane, and the grade
# histogram covers exactly the five grades and sums to the pin count.
LIBCHECK_FIELDS = {
    "id": lambda v: isinstance(v, str) and v,
    "cells": lambda v: isinstance(v, (int, float)) and v >= 1,
    "pins": lambda v: isinstance(v, (int, float)) and v >= 1,
    "jobs": lambda v: isinstance(v, (int, float)) and v >= 1,
    "seq_wall": lambda v: isinstance(v, (int, float)) and v >= 0,
    "par_wall": lambda v: isinstance(v, (int, float)) and v >= 0,
    "identical": lambda v: v is True,
    "cells_per_sec": lambda v: isinstance(v, (int, float)) and v >= 0,
    "weak_pins": lambda v: isinstance(v, (int, float)) and v >= 0,
    "grades": lambda v: isinstance(v, dict),
}


def check_libcheck(doc, failures, *, required):
    rows = doc.get("libcheck")
    if rows is None or rows == []:
        if required:
            failures.append("libcheck: no rows in BENCH.json (experiment not run?)")
        return 0
    if not isinstance(rows, list):
        failures.append("libcheck: not a list")
        return 0
    for i, row in enumerate(rows):
        tag = f"libcheck[{i}]"
        if not isinstance(row, dict):
            failures.append(f"{tag}: not an object")
            continue
        tag = f"libcheck[{i}] ({row.get('id', '?')})"
        for field, ok in LIBCHECK_FIELDS.items():
            if field not in row:
                failures.append(f"{tag}: missing field {field}")
            elif not ok(row[field]):
                failures.append(f"{tag}: bad {field}: {row[field]!r}")
        grades = row.get("grades")
        if isinstance(grades, dict):
            if sorted(grades) != ["A", "B", "C", "D", "F"]:
                failures.append(f"{tag}: grades keys {sorted(grades)}")
            elif sum(grades.values()) != row.get("pins"):
                failures.append(
                    f"{tag}: grade histogram sums to {sum(grades.values())}, "
                    f"not pins={row.get('pins')}"
                )
            if grades.get("F") != row.get("weak_pins"):
                failures.append(
                    f"{tag}: weak_pins={row.get('weak_pins')} != F={grades.get('F')}"
                )
    return len(rows)


# tpl[] row schema: the triple-patterning experiment's rows.  Walls
# are machine-dependent; the gate checks shape plus the machine-
# independent invariants: the -j2 TPL run reported bit-identity
# (coloring included), the TPL runs did not perturb a following
# TPL-off run, and the coloring outcome partitions the feature count.
TPL_FIELDS = {
    "id": lambda v: isinstance(v, str) and v,
    "colors": lambda v: isinstance(v, (int, float)) and v >= 2,
    "nets": lambda v: isinstance(v, (int, float)) and v >= 1,
    "features": lambda v: isinstance(v, (int, float)) and v >= 0,
    "solid": lambda v: isinstance(v, (int, float)) and v >= 0,
    "stitched": lambda v: isinstance(v, (int, float)) and v >= 0,
    "uncolored": lambda v: isinstance(v, (int, float)) and v >= 0,
    "identical": lambda v: v is True,
    "off_identical": lambda v: v is True,
    "pao_wall": lambda v: isinstance(v, (int, float)) and v >= 0,
    "flow_wall": lambda v: isinstance(v, (int, float)) and v >= 0,
    "flow": lambda v: isinstance(v, dict),
}


def check_tpl(doc, failures, *, required):
    rows = doc.get("tpl")
    if rows is None or rows == []:
        if required:
            failures.append("tpl: no rows in BENCH.json (experiment not run?)")
        return 0
    if not isinstance(rows, list):
        failures.append("tpl: not a list")
        return 0
    for i, row in enumerate(rows):
        tag = f"tpl[{i}]"
        if not isinstance(row, dict):
            failures.append(f"{tag}: not an object")
            continue
        tag = f"tpl[{i}] ({row.get('id', '?')})"
        for field, ok in TPL_FIELDS.items():
            if field not in row:
                failures.append(f"{tag}: missing field {field}")
            elif not ok(row[field]):
                failures.append(f"{tag}: bad {field}: {row[field]!r}")
        parts = [row.get("solid"), row.get("stitched"), row.get("uncolored")]
        if all(isinstance(p, (int, float)) for p in parts) and isinstance(
            row.get("features"), (int, float)
        ):
            if sum(parts) != row["features"]:
                failures.append(
                    f"{tag}: solid+stitched+uncolored = {sum(parts)}, "
                    f"not features={row['features']}"
                )
    return len(rows)


# tune[] row schema: the adaptive-scheduling experiment's rows.  Walls
# are machine-dependent; everything else is deterministic (the bandit
# is seeded and its reward is work units + objective, never wall
# clock).  The gate checks shape, that tuning left no trace when off
# (off_identical), and -- the point of the experiment -- that on at
# least one circuit the bandit spent no more work units than the
# untuned run while keeping the objective within --rtol of it.
TUNE_FIELDS = {
    "id": lambda v: isinstance(v, str) and v,
    "panels": lambda v: isinstance(v, (int, float)) and v >= 1,
    "seed": lambda v: isinstance(v, (int, float)) and v >= 0,
    "untuned_wall": lambda v: isinstance(v, (int, float)) and v >= 0,
    "tuned_wall": lambda v: isinstance(v, (int, float)) and v >= 0,
    "untuned_work": lambda v: isinstance(v, (int, float)) and v >= 1,
    "tuned_work": lambda v: isinstance(v, (int, float)) and v >= 1,
    "untuned_obj": lambda v: isinstance(v, (int, float)) and v > 0,
    "tuned_obj": lambda v: isinstance(v, (int, float)) and v > 0,
    "off_identical": lambda v: v is True,
    "pulls": lambda v: isinstance(v, (int, float)) and v >= 0,
    "regret": lambda v: isinstance(v, (int, float)) and v >= 0,
    "histogram": lambda v: isinstance(v, dict) and v,
}


def check_tune(doc, failures, notes, *, required, rtol):
    rows = doc.get("tune")
    if rows is None or rows == []:
        if required:
            failures.append("tune: no rows in BENCH.json (experiment not run?)")
        return 0
    if not isinstance(rows, list):
        failures.append("tune: not a list")
        return 0
    wins = 0
    for i, row in enumerate(rows):
        tag = f"tune[{i}]"
        if not isinstance(row, dict):
            failures.append(f"{tag}: not an object")
            continue
        tag = f"tune[{i}] ({row.get('id', '?')})"
        for field, ok in TUNE_FIELDS.items():
            if field not in row:
                failures.append(f"{tag}: missing field {field}")
            elif not ok(row[field]):
                failures.append(f"{tag}: bad {field}: {row[field]!r}")
        hist, pulls = row.get("histogram"), row.get("pulls")
        if isinstance(hist, dict) and isinstance(pulls, (int, float)):
            if sum(hist.values()) != pulls:
                failures.append(
                    f"{tag}: histogram sums to {sum(hist.values())}, "
                    f"not pulls={pulls}"
                )
        uw, tw = row.get("untuned_work"), row.get("tuned_work")
        uo, to = row.get("untuned_obj"), row.get("tuned_obj")
        if all(isinstance(v, (int, float)) and v > 0 for v in (uw, tw, uo, to)):
            ratio = tw / uw
            dq = (to - uo) / uo
            line = (
                f"{tag}: work {tw}/{uw} ({ratio:.3f}x), "
                f"objective {to:.1f} vs {uo:.1f} ({dq:+.2%})"
            )
            if tw <= uw and to >= uo * (1.0 - rtol):
                wins += 1
                notes.append(f"{line} -- work saved at equal quality")
            else:
                notes.append(line)
    if required and not wins:
        failures.append(
            "tune: no row with tuned_work <= untuned_work at an objective "
            f"within rtol {rtol} of the untuned run"
        )
    return len(rows)


# Scheduler telemetry shared by parallel[] and mega[] rows: the
# work-stealing pool reports how a job was actually scheduled.  The
# values are machine-dependent, so the gate checks shape and sanity,
# not magnitudes -- except the wall-clock comparison below.
def _nonneg(v):
    return isinstance(v, (int, float)) and v >= 0


def _depth_hist(v):
    return isinstance(v, list) and len(v) == 16 and all(_nonneg(b) for b in v)


SCHED_FIELDS = {
    "jobs": lambda v: isinstance(v, (int, float)) and v >= 1,
    "chunks": _nonneg,
    "steals": _nonneg,
    "steal_misses": _nonneg,
    "queue_depth": _depth_hist,
}

PARALLEL_FIELDS = dict(
    SCHED_FIELDS,
    identical=lambda v: v is True,
    pao_seq_wall=_nonneg,
    pao_par_wall=_nonneg,
    alloc_per_node=_nonneg,
)

MEGA_FIELDS = dict(
    SCHED_FIELDS,
    identical=lambda v: v is True,
    pao_seq_wall=_nonneg,
    pao_par_wall=_nonneg,
    nets=lambda v: isinstance(v, (int, float)) and v >= 1,
    panels=lambda v: isinstance(v, (int, float)) and v >= 1,
)


def check_speedup(doc, failures, notes, *, wall_rtol):
    multicore = doc.get("available_domains", 0) > 1
    if not multicore:
        notes.append(
            "speedup: available_domains <= 1, wall-clock assertion skipped "
            "(telemetry shape still validated)"
        )
    checked = 0
    for key, fields in (("parallel", PARALLEL_FIELDS), ("mega", MEGA_FIELDS)):
        rows = doc.get(key)
        if not rows:
            failures.append(f"{key}: no rows in BENCH.json (experiment not run?)")
            continue
        if not isinstance(rows, list):
            failures.append(f"{key}: not a list")
            continue
        for i, row in enumerate(rows):
            tag = f"{key}[{i}]"
            if not isinstance(row, dict):
                failures.append(f"{tag}: not an object")
                continue
            tag = f"{key}[{i}] ({row.get('id', '?')})"
            for field, ok in fields.items():
                if field not in row:
                    failures.append(f"{tag}: missing field {field}")
                elif not ok(row[field]):
                    failures.append(f"{tag}: bad {field}: {row[field]!r}")
            seq, par = row.get("pao_seq_wall"), row.get("pao_par_wall")
            if not (_nonneg(seq) and _nonneg(par)):
                continue
            ratio = par / max(seq, 1e-9)
            line = f"{tag}: pao par/seq wall = {par:.3f}/{seq:.3f} ({ratio:.2f}x)"
            if multicore and par > seq * (1.0 + wall_rtol):
                failures.append(
                    f"{line} -- parallel slower than sequential "
                    f"beyond --wall-rtol {wall_rtol}"
                )
            else:
                notes.append(line)
                checked += 1
    return checked


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--current", default="BENCH.json")
    ap.add_argument("--baseline", default="bench/BASELINE.json")
    ap.add_argument(
        "--rtol",
        type=float,
        default=0.01,
        help="relative tolerance before a worse-direction move fails (default 1%%)",
    )
    ap.add_argument(
        "--require-libcheck",
        action="store_true",
        help="fail when BENCH.json has no libcheck[] rows",
    )
    ap.add_argument(
        "--require-tpl",
        action="store_true",
        help="fail when BENCH.json has no tpl[] rows",
    )
    ap.add_argument(
        "--require-tune",
        action="store_true",
        help="fail when BENCH.json has no tune[] rows, any row's "
        "off_identical is false, or no row saved work units at an "
        "objective within --rtol of the untuned run",
    )
    ap.add_argument(
        "--no-quality-diff",
        action="store_true",
        help="skip the circuits[] regression diff against the baseline "
        "(for experiment-subset runs that produce no circuits[] rows)",
    )
    ap.add_argument(
        "--require-speedup",
        action="store_true",
        help="validate parallel[]/mega[] scheduler telemetry and, on a "
        "multi-domain runner, fail when parallel PAO wall exceeds "
        "sequential",
    )
    ap.add_argument(
        "--wall-rtol",
        type=float,
        default=0.05,
        help="slack on the par-vs-seq wall comparison (default 5%%)",
    )
    args = ap.parse_args()

    cur_doc = load(args.current)

    failures, notes = [], []
    n_libcheck = check_libcheck(cur_doc, failures, required=args.require_libcheck)
    if n_libcheck:
        notes.append(f"libcheck: {n_libcheck} row(s) validated")
    n_tpl = check_tpl(cur_doc, failures, required=args.require_tpl)
    if n_tpl:
        notes.append(f"tpl: {n_tpl} row(s) validated")
    n_tune = check_tune(
        cur_doc, failures, notes, required=args.require_tune, rtol=args.rtol
    )
    if n_tune:
        notes.append(f"tune: {n_tune} row(s) validated")
    if args.require_speedup:
        n_speedup = check_speedup(
            cur_doc, failures, notes, wall_rtol=args.wall_rtol
        )
        if n_speedup:
            notes.append(f"speedup: {n_speedup} row(s) validated")
    base = {}
    if args.no_quality_diff:
        notes.append("quality diff vs baseline skipped (--no-quality-diff)")
    else:
        base = by_id(load(args.baseline), args.baseline)
        cur = by_id(cur_doc, args.current)
        for cid, base_flows in sorted(base.items()):
            if cid not in cur:
                failures.append(f"{cid}: circuit missing from {args.current}")
                continue
            for flow in FLOWS:
                for metric, better in METRICS.items():
                    b = base_flows[flow][metric]
                    c = cur[cid][flow][metric]
                    if b == c:
                        continue
                    rel = (c - b) / max(abs(b), 1e-9)
                    tag = f"{cid}.{flow}.{metric}: {b} -> {c} ({rel:+.2%})"
                    if rel * better < -args.rtol:
                        failures.append(tag)
                    else:
                        notes.append(tag)

        for cid in sorted(set(cur) - set(base)):
            notes.append(f"{cid}: new circuit, not in baseline")

    if notes:
        print("bench gate: drift within tolerance / improvements:")
        for n in notes:
            print(f"  note  {n}")
    if failures:
        print("bench gate: QUALITY REGRESSION vs committed baseline:", file=sys.stderr)
        for f in failures:
            print(f"  FAIL  {f}", file=sys.stderr)
        print(
            "If the regression is intended, regenerate bench/BASELINE.json "
            "(see .github/workflows/README.md) and commit it with an "
            "explanation.",
            file=sys.stderr,
        )
        return 1
    print(f"bench gate: OK ({len(base)} circuits, rtol {args.rtol})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
