module B = Netlist.Builder
module Node = Rgrid.Node
module Grid = Rgrid.Grid
module Heap = Rgrid.Heap
module Maze = Rgrid.Maze
module Layer = Rgrid.Layer
module I = Geometry.Interval

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let design ?blockages () =
  B.design ~width:20 ~height:10
    ~nets:[ ("a", [ B.pin_at 2 3; B.pin_at 17 6 ]) ]
    ?blockages ()

(* ----- Node packing ----- *)

let test_node_roundtrip () =
  let d = design () in
  let space = Node.space_of_design d in
  check_int "count" (2 * 20 * 10) (Node.count space);
  List.iter
    (fun layer ->
      for x = 0 to 19 do
        for y = 0 to 9 do
          let n = Node.pack space ~layer ~x ~y in
          let l', x', y' = Node.unpack space n in
          if not (Layer.equal l' layer && x' = x && y' = y) then
            Alcotest.failf "roundtrip failed at %s (%d,%d)"
              (Layer.to_string layer) x y
        done
      done)
    [ Layer.M2; Layer.M3 ]

let test_node_other_layer () =
  let d = design () in
  let space = Node.space_of_design d in
  let n = Node.pack space ~layer:Layer.M2 ~x:5 ~y:5 in
  let m = Node.other_layer space n in
  check "other layer is M3" true (Layer.equal (Node.layer space m) Layer.M3);
  check_int "same x" 5 (Node.x space m);
  check "involutive" true (Node.other_layer space m = n);
  (match Node.pack space ~layer:Layer.M1 ~x:0 ~y:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "M1 pack must be rejected")

(* ----- Heap ----- *)

let test_heap_sorts () =
  let h = Heap.create ~capacity:4 () in
  let input = [ 5.0; 1.0; 3.0; 2.0; 4.0; 0.5; 9.0 ] in
  List.iteri (fun i p -> Heap.push h p i) input;
  check_int "size" (List.length input) (Heap.size h);
  let rec drain acc =
    match Heap.pop h with
    | Some (p, _) -> drain (p :: acc)
    | None -> List.rev acc
  in
  let sorted = drain [] in
  check "non-decreasing" true
    (List.sort compare sorted = sorted);
  check "empty after drain" true (Heap.is_empty h)

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap pops sorted" ~count:200
    QCheck.(list (float_range 0.0 100.0))
    (fun floats ->
      let h = Heap.create () in
      List.iteri (fun i p -> Heap.push h p i) floats;
      let rec drain acc =
        match Heap.pop h with
        | Some (p, _) -> drain (p :: acc)
        | None -> List.rev acc
      in
      let out = drain [] in
      out = List.sort compare out && List.length out = List.length floats)

(* ----- Grid state ----- *)

let test_grid_occupancy () =
  let d = design () in
  let g = Grid.create d in
  let space = Grid.space g in
  let n = Node.pack space ~layer:Layer.M2 ~x:5 ~y:5 in
  check_int "initially free" 0 (Grid.occ g n);
  Grid.add_usage g ~net:0 n;
  Grid.add_usage g ~net:1 n;
  check_int "two users" 2 (Grid.occ g n);
  check "overused" true (Grid.overused g n);
  check_int "congested count" 1 (Grid.congested_nodes g);
  check "users listed" true
    (List.sort compare (Grid.nets_using g n) = [ 0; 1 ]);
  Grid.remove_usage g ~net:0 n;
  check "no longer overused" false (Grid.overused g n);
  (match Grid.add_usage g ~net:1 n with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "double add by one net must be rejected")

let test_grid_ownership () =
  let d = design () in
  let g = Grid.create d in
  let space = Grid.space g in
  let n = Node.pack space ~layer:Layer.M2 ~x:3 ~y:3 in
  check "passable when free" true (Grid.passable g ~net:7 n);
  Grid.set_owner g n ~net:7;
  check "owner passable" true (Grid.passable g ~net:7 n);
  check "foreign blocked" false (Grid.passable g ~net:8 n);
  Grid.set_owner g n ~net:7 (* idempotent *);
  (match Grid.set_owner g n ~net:8 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "stealing ownership must be rejected");
  Grid.clear_owner g n ~net:8 (* wrong net: no-op *);
  check "still owned" true (Grid.owner g n = 7);
  Grid.clear_owner g n ~net:7;
  check "released" true (Grid.owner g n = -1)

let test_grid_blockages_applied () =
  let blockages =
    [
      Netlist.Blockage.make ~layer:Netlist.Blockage.M2 ~track:5
        ~span:(I.make ~lo:4 ~hi:6);
    ]
  in
  let d = design ~blockages () in
  let g = Grid.create d in
  let space = Grid.space g in
  check "blocked node" true
    (Grid.blocked g (Node.pack space ~layer:Layer.M2 ~x:5 ~y:5));
  check "M3 unaffected" false
    (Grid.blocked g (Node.pack space ~layer:Layer.M3 ~x:5 ~y:5))

let test_via_pressure () =
  let d = design () in
  let g = Grid.create d in
  Grid.add_via g ~x:5 ~y:5;
  check_int "pressure" 1 (Grid.via_pressure g ~x:5 ~y:5);
  check "neighbour forbidden" true (Grid.via_forbidden g ~x:6 ~y:5);
  check "distant not forbidden" false (Grid.via_forbidden g ~x:8 ~y:5);
  Grid.remove_via g ~x:5 ~y:5;
  check "released" false (Grid.via_forbidden g ~x:6 ~y:5)

let test_history () =
  let d = design () in
  let g = Grid.create d in
  let space = Grid.space g in
  let n = Node.pack space ~layer:Layer.M3 ~x:1 ~y:1 in
  Grid.add_usage g ~net:0 n;
  Grid.add_usage g ~net:1 n;
  Grid.add_history g ~increment:2.5;
  Alcotest.(check (float 1e-9)) "bumped" 2.5 (Grid.history g n);
  Grid.add_history_at g n 1.0;
  Alcotest.(check (float 1e-9)) "bumped again" 3.5 (Grid.history g n)

(* ----- Maze ----- *)

let test_maze_straight_line () =
  let d = design () in
  let g = Grid.create d in
  let space = Grid.space g in
  let maze = Maze.create g in
  let src = Node.pack space ~layer:Layer.M2 ~x:2 ~y:5 in
  let dst = Node.pack space ~layer:Layer.M2 ~x:10 ~y:5 in
  match
    Maze.search maze ~cost:Rgrid.Cost.default ~net:0 ~pfac:0.0 ~sources:[ src ]
      ~targets:[ dst ] ~window:(Netlist.Design.die d)
  with
  | Maze.Found { path; cost } ->
    check_int "9 nodes" 9 (List.length path);
    check "cost = 8 steps" true (Float.abs (cost -. 8.0) < 1e-9);
    check "starts at src" true (List.hd path = src)
  | Maze.Unreachable -> Alcotest.fail "straight line must route"

let test_maze_layer_change () =
  (* different tracks force M3 (vertical) plus vias *)
  let d = design () in
  let g = Grid.create d in
  let space = Grid.space g in
  let maze = Maze.create g in
  let src = Node.pack space ~layer:Layer.M2 ~x:2 ~y:2 in
  let dst = Node.pack space ~layer:Layer.M2 ~x:2 ~y:7 in
  match
    Maze.search maze ~cost:Rgrid.Cost.default ~net:0 ~pfac:0.0 ~sources:[ src ]
      ~targets:[ dst ] ~window:(Netlist.Design.die d)
  with
  | Maze.Found { path; _ } ->
    let layers =
      List.map (fun n -> Node.layer space n) path
      |> List.filter (fun l -> Layer.equal l Layer.M3)
    in
    check "uses M3" true (layers <> []);
    check "unidirectional: no M2 vertical step" true
      (let ok = ref true in
       let rec walk = function
         | a :: (b :: _ as rest) ->
           (if
              Layer.equal (Node.layer space a) Layer.M2
              && Layer.equal (Node.layer space b) Layer.M2
              && Node.y space a <> Node.y space b
            then ok := false);
           walk rest
         | _ -> ()
       in
       walk path;
       !ok)
  | Maze.Unreachable -> Alcotest.fail "must route via M3"

let test_maze_respects_blockage () =
  let blockages =
    [
      Netlist.Blockage.make ~layer:Netlist.Blockage.M2 ~track:5
        ~span:(I.make ~lo:5 ~hi:5);
    ]
  in
  let d = design ~blockages () in
  let g = Grid.create d in
  let space = Grid.space g in
  let maze = Maze.create g in
  let src = Node.pack space ~layer:Layer.M2 ~x:2 ~y:5 in
  let dst = Node.pack space ~layer:Layer.M2 ~x:10 ~y:5 in
  match
    Maze.search maze ~cost:Rgrid.Cost.default ~net:0 ~pfac:0.0 ~sources:[ src ]
      ~targets:[ dst ] ~window:(Netlist.Design.die d)
  with
  | Maze.Found { path; _ } ->
    check "detours around blockage" true (List.length path > 9);
    check "blocked node not used" true
      (not (List.mem (Node.pack space ~layer:Layer.M2 ~x:5 ~y:5) path))
  | Maze.Unreachable -> Alcotest.fail "detour exists"

let test_maze_window_limits () =
  let d = design () in
  let g = Grid.create d in
  let space = Grid.space g in
  let maze = Maze.create g in
  let src = Node.pack space ~layer:Layer.M2 ~x:2 ~y:2 in
  let dst = Node.pack space ~layer:Layer.M2 ~x:2 ~y:7 in
  (* window excluding everything but track 2: unreachable *)
  let window =
    Geometry.Rect.make ~xs:(I.make ~lo:0 ~hi:19) ~ys:(I.make ~lo:2 ~hi:2)
  in
  check "window blocks vertical" true
    (Maze.search maze ~cost:Rgrid.Cost.default ~net:0 ~pfac:0.0 ~sources:[ src ]
       ~targets:[ dst ] ~window
    = Maze.Unreachable)

let test_maze_owner_exclusion () =
  let d = design () in
  let g = Grid.create d in
  let space = Grid.space g in
  let maze = Maze.create g in
  (* wall off column 5's M2 and M3 for a foreign net *)
  for y = 0 to 9 do
    Grid.set_owner g (Node.pack space ~layer:Layer.M2 ~x:5 ~y) ~net:99;
    Grid.set_owner g (Node.pack space ~layer:Layer.M3 ~x:5 ~y) ~net:99
  done;
  let src = Node.pack space ~layer:Layer.M2 ~x:2 ~y:5 in
  let dst = Node.pack space ~layer:Layer.M2 ~x:10 ~y:5 in
  check "owned wall unreachable" true
    (Maze.search maze ~cost:Rgrid.Cost.default ~net:0 ~pfac:0.0 ~sources:[ src ]
       ~targets:[ dst ] ~window:(Netlist.Design.die d)
    = Maze.Unreachable);
  check "owner itself may pass" true
    (match
       Maze.search maze ~cost:Rgrid.Cost.default ~net:99 ~pfac:0.0
         ~sources:[ src ] ~targets:[ dst ] ~window:(Netlist.Design.die d)
     with
    | Maze.Found _ -> true
    | Maze.Unreachable -> false)

let test_maze_spacing_penalty () =
  let d = design () in
  let g = Grid.create d in
  let space = Grid.space g in
  let maze = Maze.create g in
  (* foreign solid metal right of the straight path's end *)
  let wall = Node.pack space ~layer:Layer.M2 ~x:12 ~y:5 in
  Grid.set_owner g wall ~net:99;
  Grid.set_solid g wall;
  let src = Node.pack space ~layer:Layer.M2 ~x:2 ~y:5 in
  let dst = Node.pack space ~layer:Layer.M2 ~x:10 ~y:5 in
  match
    Maze.search maze ~cost:Rgrid.Cost.default ~net:0 ~pfac:0.0 ~sources:[ src ]
      ~targets:[ dst ] ~window:(Netlist.Design.die d)
  with
  | Maze.Found { cost; _ } ->
    (* ending 2 away from solid foreign metal pays the near penalty *)
    check "clearance penalty charged" true (cost > 8.0 +. 1e-9)
  | Maze.Unreachable -> Alcotest.fail "must still route"

let () =
  Alcotest.run "grid"
    [
      ( "node",
        [
          Alcotest.test_case "roundtrip" `Quick test_node_roundtrip;
          Alcotest.test_case "other layer" `Quick test_node_other_layer;
        ] );
      ( "heap",
        [
          Alcotest.test_case "sorts" `Quick test_heap_sorts;
          QCheck_alcotest.to_alcotest prop_heap_sorts;
        ] );
      ( "grid",
        [
          Alcotest.test_case "occupancy" `Quick test_grid_occupancy;
          Alcotest.test_case "ownership" `Quick test_grid_ownership;
          Alcotest.test_case "blockages" `Quick test_grid_blockages_applied;
          Alcotest.test_case "via pressure" `Quick test_via_pressure;
          Alcotest.test_case "history" `Quick test_history;
        ] );
      ( "maze",
        [
          Alcotest.test_case "straight line" `Quick test_maze_straight_line;
          Alcotest.test_case "layer change" `Quick test_maze_layer_change;
          Alcotest.test_case "blockage detour" `Quick test_maze_respects_blockage;
          Alcotest.test_case "window" `Quick test_maze_window_limits;
          Alcotest.test_case "owner exclusion" `Quick test_maze_owner_exclusion;
          Alcotest.test_case "spacing penalty" `Quick test_maze_spacing_penalty;
        ] );
    ]
