module B = Netlist.Builder
module Node = Rgrid.Node
module Layer = Rgrid.Layer
module Route = Rgrid.Route
module I = Geometry.Interval
module Extract = Drc.Extract
module Check = Drc.Check
module Line_end = Drc.Line_end

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let rules = Drc.Rules.default

let design () =
  B.design ~width:30 ~height:10
    ~nets:
      [
        ("a", [ B.pin_at 2 3; B.pin_at 27 3 ]);
        ("b", [ B.pin_at 5 6; B.pin_at 25 6 ]);
        ("c", [ B.pin_at 10 8; B.pin_at 20 8 ]);
      ]
    ()

let m2_run space ~net ~track ~lo ~hi =
  Route.make ~space ~net
    ~nodes:
      (List.init (hi - lo + 1) (fun i ->
           Node.pack space ~layer:Layer.M2 ~x:(lo + i) ~y:track))
    ~pin_vias:[]

let routes_of d list =
  let n = Array.length (Netlist.Design.nets d) in
  let routes = Array.make n None in
  List.iter (fun (r : Route.t) -> routes.(r.Route.net) <- Some r) list;
  routes

(* ----- Extract ----- *)

let test_extract_segments () =
  let d = design () in
  let space = Node.space_of_design d in
  let routes =
    routes_of d
      [ m2_run space ~net:0 ~track:2 ~lo:3 ~hi:8; m2_run space ~net:1 ~track:2 ~lo:12 ~hi:15 ]
  in
  let layout = Extract.of_routes d routes in
  check_int "two segments on track 2" 2 (List.length layout.Extract.m2.(2));
  check_int "none elsewhere" 0 (List.length layout.Extract.m2.(3))

let test_extract_rejects_shorts () =
  let d = design () in
  let space = Node.space_of_design d in
  let routes =
    routes_of d
      [ m2_run space ~net:0 ~track:2 ~lo:3 ~hi:8; m2_run space ~net:1 ~track:2 ~lo:7 ~hi:10 ]
  in
  (match Extract.of_routes d routes with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "short must be rejected");
  (* tolerant mode drops the later segment instead *)
  let layout = Extract.of_routes ~tolerate_shorts:true d routes in
  check_int "tolerant keeps one" 1 (List.length layout.Extract.m2.(2))

let test_extract_blockages () =
  let blockages =
    [
      Netlist.Blockage.make ~layer:Netlist.Blockage.M2 ~track:4
        ~span:(I.make ~lo:0 ~hi:5);
    ]
  in
  let d =
    B.design ~width:30 ~height:10
      ~nets:[ ("a", [ B.pin_at 2 2; B.pin_at 8 2 ]) ]
      ~blockages ()
  in
  let layout = Extract.of_routes d (routes_of d []) in
  match layout.Extract.m2.(4) with
  | [ seg ] -> check_int "blockage pseudo-net" Extract.blockage_net seg.Extract.net
  | _ -> Alcotest.fail "expected one blockage segment"

(* ----- Check: R1 line-end gap ----- *)

let test_r1_detects_small_gap () =
  let d = design () in
  let space = Node.space_of_design d in
  let routes =
    routes_of d
      [ m2_run space ~net:0 ~track:2 ~lo:3 ~hi:8; m2_run space ~net:1 ~track:2 ~lo:10 ~hi:14 ]
  in
  let viols = Check.run rules (Extract.of_routes d routes) in
  check_int "one violation" 1 (List.length viols);
  let v = List.hd viols in
  check "kind" true (v.Check.kind = Check.Line_end_gap);
  check_int "blames the later net" 1 v.Check.blame;
  check "sites include both ends" true (List.length v.Check.sites >= 3)

let test_r1_accepts_legal_gap () =
  let d = design () in
  let space = Node.space_of_design d in
  let routes =
    routes_of d
      [ m2_run space ~net:0 ~track:2 ~lo:3 ~hi:8; m2_run space ~net:1 ~track:2 ~lo:11 ~hi:14 ]
  in
  check_int "gap 2 is legal" 0
    (List.length (Check.run rules (Extract.of_routes d routes)))

let test_r1_same_net_exempt () =
  let d = design () in
  let space = Node.space_of_design d in
  let routes =
    routes_of d
      [
        Route.make ~space ~net:0
          ~nodes:
            (List.init 3 (fun i -> Node.pack space ~layer:Layer.M2 ~x:(3 + i) ~y:2)
            @ List.init 3 (fun i -> Node.pack space ~layer:Layer.M2 ~x:(7 + i) ~y:2))
          ~pin_vias:[];
      ]
  in
  let viols =
    Check.run rules (Extract.of_routes d routes)
    |> List.filter (fun v -> v.Check.kind = Check.Line_end_gap)
  in
  check_int "same-net gap exempt from R1" 0 (List.length viols)

(* ----- Check: R2 cut alignment ----- *)

let test_r2_misaligned_cuts () =
  let d = design () in
  let space = Node.space_of_design d in
  (* track 2: cut at [9,10]; track 3: cut at [10,11] — partial overlap *)
  let routes =
    routes_of d
      [
        Route.make ~space ~net:0
          ~nodes:
            (List.init 6 (fun i -> Node.pack space ~layer:Layer.M2 ~x:(3 + i) ~y:2)
            @ List.init 6 (fun i -> Node.pack space ~layer:Layer.M2 ~x:(11 + i) ~y:2))
          ~pin_vias:[];
        Route.make ~space ~net:1
          ~nodes:
            (List.init 6 (fun i -> Node.pack space ~layer:Layer.M2 ~x:(4 + i) ~y:3)
            @ List.init 6 (fun i -> Node.pack space ~layer:Layer.M2 ~x:(12 + i) ~y:3))
          ~pin_vias:[];
      ]
  in
  let viols =
    Check.run rules (Extract.of_routes d routes)
    |> List.filter (fun v -> v.Check.kind = Check.Cut_alignment)
  in
  check "misaligned overlapping cuts flagged" true (viols <> [])

let test_r2_aligned_cuts_legal () =
  let d = design () in
  let space = Node.space_of_design d in
  let routes =
    routes_of d
      [
        Route.make ~space ~net:0
          ~nodes:
            (List.init 6 (fun i -> Node.pack space ~layer:Layer.M2 ~x:(3 + i) ~y:2)
            @ List.init 6 (fun i -> Node.pack space ~layer:Layer.M2 ~x:(11 + i) ~y:2))
          ~pin_vias:[];
        Route.make ~space ~net:1
          ~nodes:
            (List.init 6 (fun i -> Node.pack space ~layer:Layer.M2 ~x:(3 + i) ~y:3)
            @ List.init 6 (fun i -> Node.pack space ~layer:Layer.M2 ~x:(11 + i) ~y:3))
          ~pin_vias:[];
      ]
  in
  let viols =
    Check.run rules (Extract.of_routes d routes)
    |> List.filter (fun v -> v.Check.kind = Check.Cut_alignment)
  in
  check_int "aligned cuts legal" 0 (List.length viols)

(* ----- Check: R3 via spacing ----- *)

let test_r3_via_spacing () =
  let d = design () in
  let space = Node.space_of_design d in
  let mk net x y =
    Route.make ~space ~net
      ~nodes:[ Node.pack space ~layer:Layer.M2 ~x ~y ]
      ~pin_vias:[ (net, x, y) ]
  in
  let routes = routes_of d [ mk 0 5 2; mk 1 6 2 ] in
  let viols =
    Check.run rules (Extract.of_routes ~tolerate_shorts:true d routes)
    |> List.filter (fun v -> v.Check.kind = Check.Via_spacing)
  in
  check "adjacent V1 cuts flagged" true (viols <> []);
  (* diagonal is legal (manhattan distance 2) *)
  let routes = routes_of d [ mk 0 5 2; mk 1 6 3 ] in
  let viols =
    Check.run rules (Extract.of_routes d routes)
    |> List.filter (fun v -> v.Check.kind = Check.Via_spacing)
  in
  check_int "diagonal legal" 0 (List.length viols)

let test_blamed_nets () =
  let d = design () in
  let space = Node.space_of_design d in
  let routes =
    routes_of d
      [ m2_run space ~net:0 ~track:2 ~lo:3 ~hi:8; m2_run space ~net:1 ~track:2 ~lo:10 ~hi:14 ]
  in
  let viols = Check.run rules (Extract.of_routes d routes) in
  check "blamed = [1]" true (Check.blamed_nets viols = [ 1 ])

(* ----- Line-end extension ----- *)

let test_extension_merges_same_net () =
  let d = design () in
  let space = Node.space_of_design d in
  let routes =
    routes_of d
      [
        Route.make ~space ~net:0
          ~nodes:
            (List.init 3 (fun i -> Node.pack space ~layer:Layer.M2 ~x:(3 + i) ~y:2)
            @ List.init 3 (fun i -> Node.pack space ~layer:Layer.M2 ~x:(8 + i) ~y:2))
          ~pin_vias:[];
      ]
  in
  let layout = Extract.of_routes d routes in
  let fills, stats = Line_end.extend rules layout in
  check_int "one merge" 1 stats.Line_end.merges;
  check "fill covers the gap" true
    (List.exists
       (fun (f : Line_end.fill) ->
         f.Line_end.net = 0 && I.equal f.Line_end.span (I.make ~lo:6 ~hi:7))
       fills);
  check_int "track is one merged segment" 1 (List.length layout.Extract.m2.(2))

let test_extension_aligns_cuts () =
  let d = design () in
  let space = Node.space_of_design d in
  (* cut [9,10] on track 2 vs cut [10,11] on track 3: intersection
     [10,10] is too narrow (min gap 2), but extending can align to a
     2-wide cut... the aligner needs intersection >= 2, so use cuts
     [9,11] and [10,12] with intersection [10,11] *)
  let seg net track lo hi =
    Route.make ~space ~net
      ~nodes:
        (List.init (hi - lo + 1) (fun i ->
             Node.pack space ~layer:Layer.M2 ~x:(lo + i) ~y:track))
      ~pin_vias:[]
  in
  (* four distinct net segments so nothing merges: track 2 holds nets
     0|2, track 3 holds nets 1|0 *)
  let r0 = Route.add_nodes ~space (seg 0 2 3 8) (seg 0 3 13 18).Route.nodes in
  let r1 = seg 1 3 4 9 in
  let r2 = seg 2 2 12 17 in
  let routes = routes_of d [ r0; r1; r2 ] in
  let layout = Extract.of_routes d routes in
  let viols_before =
    Check.run rules layout
    |> List.filter (fun v -> v.Check.kind = Check.Cut_alignment)
  in
  check "misaligned before" true (viols_before <> []);
  let layout = Extract.of_routes d routes in
  let _fills, stats = Line_end.extend rules layout in
  check "alignment performed" true (stats.Line_end.alignments >= 1);
  let viols_after =
    Check.run rules layout
    |> List.filter (fun v -> v.Check.kind = Check.Cut_alignment)
  in
  check_int "aligned after extension" 0 (List.length viols_after)

let test_extension_respects_can_fill () =
  let d = design () in
  let space = Node.space_of_design d in
  let routes =
    routes_of d
      [
        Route.make ~space ~net:0
          ~nodes:
            (List.init 3 (fun i -> Node.pack space ~layer:Layer.M2 ~x:(3 + i) ~y:2)
            @ List.init 3 (fun i -> Node.pack space ~layer:Layer.M2 ~x:(8 + i) ~y:2))
          ~pin_vias:[];
      ]
  in
  let layout = Extract.of_routes d routes in
  let can_fill _layer ~track:_ ~x:_ ~net:_ = false in
  let fills, stats = Line_end.extend ~can_fill rules layout in
  check_int "vetoed: no merges" 0 stats.Line_end.merges;
  check "no fills" true (fills = [])


(* ----- SADP mask coloring ----- *)

let test_coloring_masks () =
  check "even tracks mandrel" true (Drc.Coloring.mask_of_track 0 = Drc.Coloring.Mandrel);
  check "odd tracks spacer" true (Drc.Coloring.mask_of_track 3 = Drc.Coloring.Spacer)

let test_coloring_cuts () =
  let d = design () in
  let space = Node.space_of_design d in
  let routes =
    routes_of d
      [
        (* one narrow gap (a cut) and one wide gap (block mask) on track 2 *)
        Route.add_nodes ~space
          (Route.add_nodes ~space (m2_run space ~net:0 ~track:2 ~lo:0 ~hi:5)
             (m2_run space ~net:0 ~track:2 ~lo:8 ~hi:12).Route.nodes)
          (m2_run space ~net:0 ~track:2 ~lo:22 ~hi:28).Route.nodes;
      ]
  in
  let layout = Extract.of_routes d routes in
  let cuts = Drc.Coloring.cuts_of_layout rules layout in
  check_int "only the narrow gap is a cut" 1 (List.length cuts);
  (match cuts with
  | [ c ] ->
    check "cut span" true (I.equal c.Drc.Coloring.span (I.make ~lo:6 ~hi:7));
    check "mandrel (track 2)" true (c.Drc.Coloring.mask = Drc.Coloring.Mandrel)
  | _ -> Alcotest.fail "expected one cut")

let test_coloring_audit () =
  let d = design () in
  let space = Node.space_of_design d in
  (* same-mask cuts on tracks 2 and 4: misaligned and close in x *)
  let two_piece net track xshift =
    Route.add_nodes ~space
      (m2_run space ~net ~track ~lo:0 ~hi:(5 + xshift))
      (m2_run space ~net ~track ~lo:(8 + xshift) ~hi:14).Route.nodes
  in
  let routes = routes_of d [ two_piece 0 2 0; two_piece 1 4 1 ] in
  let layout = Extract.of_routes d routes in
  let stats = Drc.Coloring.audit rules layout in
  check_int "two mandrel cuts" 2 stats.Drc.Coloring.mandrel_cuts;
  check_int "no spacer cuts" 0 stats.Drc.Coloring.spacer_cuts;
  check "same-mask conflict caught" true
    (stats.Drc.Coloring.same_mask_conflicts <> []);
  (* aligned same-mask cuts are fine *)
  let routes = routes_of d [ two_piece 0 2 0; two_piece 1 4 0 ] in
  let stats = Drc.Coloring.audit rules (Extract.of_routes d routes) in
  check "aligned cuts pass" true (stats.Drc.Coloring.same_mask_conflicts = [])

let () =
  Alcotest.run "drc"
    [
      ( "extract",
        [
          Alcotest.test_case "segments" `Quick test_extract_segments;
          Alcotest.test_case "shorts rejected" `Quick test_extract_rejects_shorts;
          Alcotest.test_case "blockages" `Quick test_extract_blockages;
        ] );
      ( "check",
        [
          Alcotest.test_case "R1 small gap" `Quick test_r1_detects_small_gap;
          Alcotest.test_case "R1 legal gap" `Quick test_r1_accepts_legal_gap;
          Alcotest.test_case "R1 same-net exempt" `Quick test_r1_same_net_exempt;
          Alcotest.test_case "R2 misaligned" `Quick test_r2_misaligned_cuts;
          Alcotest.test_case "R2 aligned" `Quick test_r2_aligned_cuts_legal;
          Alcotest.test_case "R3 via spacing" `Quick test_r3_via_spacing;
          Alcotest.test_case "blamed nets" `Quick test_blamed_nets;
        ] );
      ( "line_end",
        [
          Alcotest.test_case "merges same net" `Quick test_extension_merges_same_net;
          Alcotest.test_case "aligns cuts" `Quick test_extension_aligns_cuts;
          Alcotest.test_case "respects can_fill" `Quick test_extension_respects_can_fill;
        ] );
      ( "coloring",
        [
          Alcotest.test_case "masks" `Quick test_coloring_masks;
          Alcotest.test_case "cuts" `Quick test_coloring_cuts;
          Alcotest.test_case "audit" `Quick test_coloring_audit;
        ] );
    ]
