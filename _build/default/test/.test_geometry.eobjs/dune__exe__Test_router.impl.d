test/test_router.ml: Alcotest Array Geometry List Netlist Option Pinaccess Rgrid Router
