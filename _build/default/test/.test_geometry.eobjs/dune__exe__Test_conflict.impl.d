test/test_conflict.ml: Alcotest Array Geometry Int List Pinaccess Printf QCheck QCheck_alcotest
