test/test_geometry.ml: Alcotest Dir Geometry List QCheck QCheck_alcotest
