test/test_properties.ml: Alcotest Array Hashtbl List Metrics Netlist Pinaccess Printf QCheck QCheck_alcotest Rgrid Router Solver
