test/test_lagrangian.ml: Alcotest Array Geometry List Netlist Pinaccess Workloads
