test/test_metrics.ml: Alcotest Float List Metrics Netlist Router String
