test/test_verify.ml: Alcotest List Netlist Rgrid Router
