test/test_render.ml: Alcotest Geometry Netlist Pinaccess Render Router String
