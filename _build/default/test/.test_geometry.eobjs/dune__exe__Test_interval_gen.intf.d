test/test_interval_gen.mli:
