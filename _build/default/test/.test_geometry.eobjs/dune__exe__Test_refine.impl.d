test/test_refine.ml: Alcotest Array Geometry List Netlist Pinaccess
