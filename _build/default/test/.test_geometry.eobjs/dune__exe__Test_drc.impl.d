test/test_drc.ml: Alcotest Array Drc Geometry List Netlist Rgrid
