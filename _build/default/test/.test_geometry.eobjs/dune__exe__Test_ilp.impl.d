test/test_ilp.ml: Alcotest Array Geometry List Netlist Pinaccess Solver Workloads
