test/test_integration.ml: Alcotest Array Drc Float Hashtbl List Metrics Netlist Option Pinaccess Rgrid Router String Workloads
