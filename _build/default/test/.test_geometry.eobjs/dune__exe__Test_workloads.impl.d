test/test_workloads.ml: Alcotest Array Geometry Hashtbl Int List Netlist Option Workloads
