test/test_grid.ml: Alcotest Float Geometry List Netlist QCheck QCheck_alcotest Rgrid
