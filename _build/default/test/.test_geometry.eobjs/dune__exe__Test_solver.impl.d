test/test_solver.ml: Alcotest Array Float List QCheck QCheck_alcotest Solver
