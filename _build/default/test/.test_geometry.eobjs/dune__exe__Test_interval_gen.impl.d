test/test_interval_gen.ml: Alcotest Array Geometry Int List Netlist Pinaccess Printf
