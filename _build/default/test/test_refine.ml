module I = Geometry.Interval
module B = Netlist.Builder
module P = Pinaccess.Problem
module Sol = Pinaccess.Solution
module Refine = Pinaccess.Refine
module AI = Pinaccess.Access_interval

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let cfg = Pinaccess.Interval_gen.default_config

(* Two same-track pins whose maximal intervals overlap: the classic
   shrink case. *)
let overlap_design () =
  B.design ~width:20 ~height:10
    ~nets:
      [
        ("a", [ B.pin_at 4 3; B.pin_at 16 7 ]);
        ("b", [ B.pin_at 12 3; B.pin_at 2 7 ]);
      ]
    ()

let greedy_assignment problem =
  Array.map
    (fun candidates ->
      Array.fold_left
        (fun best id ->
          if problem.P.profits.(id) > problem.P.profits.(best) then id else best)
        candidates.(0) candidates)
    problem.P.pin_candidates

let test_shrink_resolves () =
  let d = overlap_design () in
  let problem = P.build_panel cfg d ~panel:0 in
  let raw = Sol.make problem ~assignment:(greedy_assignment problem) in
  check "greedy has conflicts" true (Sol.num_violations raw > 0);
  let repaired, shrinks = Refine.remove_conflicts raw in
  check "conflict-free" true (Sol.is_conflict_free repaired);
  check "shrank something" true (shrinks > 0);
  (* the result is still a valid one-interval-per-pin assignment *)
  Array.iter
    (fun pid ->
      check "serves pin" true
        (AI.serves (Sol.interval_of_pin repaired pid) pid))
    problem.P.pin_ids

let test_already_clean_is_noop () =
  let d = overlap_design () in
  let problem = P.build_panel cfg d ~panel:0 in
  let lr = Pinaccess.Lagrangian.solve problem in
  let sol = lr.Pinaccess.Lagrangian.solution in
  if Sol.is_conflict_free sol then begin
    let repaired, shrinks = Refine.remove_conflicts sol in
    check_int "no shrinks on clean input" 0 shrinks;
    check "assignment unchanged" true
      (repaired.Sol.assignment = sol.Sol.assignment)
  end

let test_gains_decide_keeper () =
  (* the clique keeps the member with the larger gain *)
  let d = overlap_design () in
  let problem = P.build_panel cfg d ~panel:0 in
  let raw = Sol.make problem ~assignment:(greedy_assignment problem) in
  if Sol.num_violations raw > 0 then begin
    (* rig the gains so interval of slot 0 always wins its cliques; the
       residual-repair pass may still move it afterwards, so the hard
       guarantee is only conflict-freedom *)
    let gains = Array.make (P.num_intervals problem) 0.0 in
    let favoured = raw.Sol.assignment.(0) in
    gains.(favoured) <- 1000.0;
    let repaired, _ = Refine.remove_conflicts ~gains raw in
    check "conflict-free with biased gains" true
      (Sol.is_conflict_free repaired)
  end

let test_minimum_kept_when_present () =
  (* a clique containing a selected minimum must keep the minimum (it
     cannot shrink) and move the others *)
  let d = overlap_design () in
  let problem = P.build_panel cfg d ~panel:0 in
  let slot0_min = P.minimum_interval problem ~slot:0 in
  let assignment = greedy_assignment problem in
  assignment.(0) <- slot0_min;
  let raw = Sol.make problem ~assignment in
  let repaired, _ = Refine.remove_conflicts raw in
  check "conflict-free with pinned minimum" true
    (Sol.is_conflict_free repaired);
  check "minimum still selected" true
    (repaired.Sol.assignment.(0) = slot0_min)

let test_minimum_intervals_per_track () =
  let d =
    B.design ~width:20 ~height:10 ~nets:[ ("a", [ B.pin_span 5 ~lo:2 ~hi:4 ]) ] ()
  in
  let problem = P.build_panel cfg d ~panel:0 in
  let mins = P.minimum_intervals problem ~slot:0 in
  check_int "one minimum per free track" 3 (List.length mins);
  (* primary first *)
  (match mins with
  | first :: _ ->
    check_int "primary track first" 3
      problem.P.intervals.(first).AI.track
  | [] -> Alcotest.fail "no minimums");
  check_int "minimum_interval picks primary" (List.hd mins)
    (P.minimum_interval problem ~slot:0)

let test_cliques_of_interval_index () =
  let d = overlap_design () in
  let problem = P.build_panel cfg d ~panel:0 in
  Array.iteri
    (fun m (clique : Pinaccess.Conflict.clique) ->
      Array.iter
        (fun member ->
          check "index contains membership" true
            (List.mem m (P.cliques_of_interval problem member)))
        clique.Pinaccess.Conflict.members)
    problem.P.cliques

let () =
  Alcotest.run "refine"
    [
      ( "refine",
        [
          Alcotest.test_case "shrink resolves" `Quick test_shrink_resolves;
          Alcotest.test_case "clean is noop" `Quick test_already_clean_is_noop;
          Alcotest.test_case "gains decide keeper" `Quick test_gains_decide_keeper;
          Alcotest.test_case "minimum kept" `Quick test_minimum_kept_when_present;
          Alcotest.test_case "minimums per track" `Quick test_minimum_intervals_per_track;
          Alcotest.test_case "clique index" `Quick test_cliques_of_interval_index;
        ] );
    ]
