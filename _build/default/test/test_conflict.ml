module I = Geometry.Interval
module AI = Pinaccess.Access_interval
module Conflict = Pinaccess.Conflict

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let mk_intervals specs =
  Array.of_list
    (List.mapi
       (fun id (net, track, lo, hi, kind) ->
         AI.make ~id ~net ~pins:[ id ] ~track ~span:(I.make ~lo ~hi) ~kind)
       specs)

(* Figure 4 of the paper: intervals on one track; six conflict sets. *)
let test_figure4_shape () =
  (* a stack of staggered intervals: the sweep must emit maximal
     cliques only, left to right *)
  let intervals =
    mk_intervals
      [
        (0, 0, 0, 4, AI.Regular);
        (1, 0, 2, 6, AI.Regular);
        (2, 0, 5, 9, AI.Regular);
        (3, 0, 8, 12, AI.Regular);
      ]
  in
  let cliques = Conflict.detect intervals in
  check_int "three pairwise cliques" 3 (Array.length cliques);
  Array.iter
    (fun (c : Conflict.clique) ->
      check_int "each clique has 2 members" 2 (Array.length c.Conflict.members))
    cliques

let test_nested_cliques () =
  (* one big interval covering two disjoint small ones: two cliques *)
  let intervals =
    mk_intervals
      [
        (0, 0, 0, 10, AI.Regular);
        (1, 0, 1, 2, AI.Regular);
        (2, 0, 7, 8, AI.Regular);
      ]
  in
  let cliques = Conflict.detect intervals in
  check_int "two cliques" 2 (Array.length cliques);
  Array.iter
    (fun (c : Conflict.clique) ->
      check "big interval in every clique" true
        (Array.exists (fun id -> id = 0) c.Conflict.members))
    cliques

let test_tracks_independent () =
  let intervals =
    mk_intervals
      [ (0, 0, 0, 5, AI.Regular); (1, 1, 0, 5, AI.Regular) ]
  in
  check_int "different tracks never conflict" 0
    (Array.length (Conflict.detect intervals))

let test_common_intersection () =
  let intervals =
    mk_intervals
      [ (0, 3, 0, 6, AI.Regular); (1, 3, 4, 10, AI.Regular) ]
  in
  let cliques = Conflict.detect intervals in
  check_int "one clique" 1 (Array.length cliques);
  let c = cliques.(0) in
  check_int "L_m = overlap length" 3 (I.length c.Conflict.common);
  check_int "track recorded" 3 c.Conflict.track

let test_clearance_inflation () =
  (* gap of 1 between regular intervals conflicts at clearance 2 *)
  let intervals =
    mk_intervals
      [ (0, 0, 0, 3, AI.Regular); (1, 0, 5, 8, AI.Regular) ]
  in
  check_int "no conflict at clearance 0" 0
    (Array.length (Conflict.detect ~clearance:0 intervals));
  check_int "conflict at clearance 2" 1
    (Array.length (Conflict.detect ~clearance:2 intervals));
  (* gap of 2 is legal even at clearance 2 *)
  let spaced =
    mk_intervals
      [ (0, 0, 0, 3, AI.Regular); (1, 0, 6, 8, AI.Regular) ]
  in
  check_int "gap 2 clean at clearance 2" 0
    (Array.length (Conflict.detect ~clearance:2 spaced))

let test_dense_ids_required () =
  let bad =
    [|
      AI.make ~id:5 ~net:0 ~pins:[ 0 ] ~track:0 ~span:(I.point 0)
        ~kind:AI.Regular;
    |]
  in
  match Conflict.detect bad with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument for non-dense ids"

(* brute force: maximal cliques of the (clearance-inflated) interval
   graph via point-stabbing *)
let brute_force_cliques ~clearance intervals =
  let eff_hi (iv : AI.t) = I.hi iv.AI.span + clearance in
  let stab x =
    Array.to_list intervals
    |> List.filter (fun (iv : AI.t) -> I.lo iv.AI.span <= x && eff_hi iv >= x)
    |> List.map (fun (iv : AI.t) -> iv.AI.id)
    |> List.sort_uniq Int.compare
  in
  let candidates =
    Array.to_list intervals
    |> List.concat_map (fun (iv : AI.t) -> [ I.lo iv.AI.span; eff_hi iv ])
    |> List.sort_uniq Int.compare
    |> List.map stab
    |> List.filter (fun c -> List.length c >= 2)
    |> List.sort_uniq compare
  in
  (* keep only maximal sets *)
  List.filter
    (fun c ->
      not
        (List.exists
           (fun c' ->
             c <> c' && List.for_all (fun x -> List.mem x c') c)
           candidates))
    candidates
  |> List.sort_uniq compare

let random_track_intervals =
  let gen =
    QCheck.Gen.(
      let* n = int_range 1 10 in
      list_repeat n
        (let* lo = int_range 0 20 in
         let* len = int_range 0 8 in
         return (lo, lo + len)))
  in
  QCheck.make gen

let prop_sweep_matches_brute_force clearance =
  QCheck.Test.make
    ~name:(Printf.sprintf "sweep = brute force (clearance %d)" clearance)
    ~count:500 random_track_intervals (fun spans ->
      let intervals =
        mk_intervals
          (List.map (fun (lo, hi) -> (0, 0, lo, hi, AI.Regular)) spans)
      in
      let sweep =
        Conflict.detect ~clearance intervals
        |> Array.to_list
        |> List.map (fun (c : Conflict.clique) ->
               Array.to_list c.Conflict.members)
        |> List.sort_uniq compare
      in
      let brute = brute_force_cliques ~clearance intervals in
      sweep = brute)

let prop_linear_clique_count =
  QCheck.Test.make ~name:"clique count <= interval count" ~count:300
    random_track_intervals (fun spans ->
      let intervals =
        mk_intervals
          (List.map (fun (lo, hi) -> (0, 0, lo, hi, AI.Regular)) spans)
      in
      Array.length (Conflict.detect intervals) <= Array.length intervals)

let test_pairwise_count () =
  let intervals =
    mk_intervals
      [
        (0, 0, 0, 5, AI.Regular);
        (1, 0, 3, 8, AI.Regular);
        (2, 0, 7, 9, AI.Regular);
      ]
  in
  check_int "two overlapping pairs" 2
    (Conflict.count_pairwise_conflicts intervals)

let () =
  Alcotest.run "conflict"
    [
      ( "sweep",
        [
          Alcotest.test_case "figure 4 shape" `Quick test_figure4_shape;
          Alcotest.test_case "nested" `Quick test_nested_cliques;
          Alcotest.test_case "tracks independent" `Quick test_tracks_independent;
          Alcotest.test_case "common intersection" `Quick test_common_intersection;
          Alcotest.test_case "clearance inflation" `Quick test_clearance_inflation;
          Alcotest.test_case "dense ids" `Quick test_dense_ids_required;
          Alcotest.test_case "pairwise count" `Quick test_pairwise_count;
          QCheck_alcotest.to_alcotest (prop_sweep_matches_brute_force 0);
          QCheck_alcotest.to_alcotest (prop_sweep_matches_brute_force 2);
          QCheck_alcotest.to_alcotest prop_linear_clique_count;
        ] );
    ]
