module Lp = Solver.Lp
module Milp = Solver.Milp

let check = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-6))

(* ----- LP ----- *)

let solve_lp p =
  match Lp.solve p with
  | Lp.Optimal s -> s
  | Lp.Infeasible -> Alcotest.fail "unexpected infeasible"
  | Lp.Unbounded -> Alcotest.fail "unexpected unbounded"
  | Lp.Iteration_limit -> Alcotest.fail "unexpected iteration limit"

let test_lp_textbook () =
  (* max 3x + 5y st x <= 4, 2y <= 12, 3x + 2y <= 18 -> 36 at (2, 6) *)
  let p =
    {
      Lp.num_vars = 2;
      maximize = true;
      objective = [ (0, 3.0); (1, 5.0) ];
      constraints =
        [
          Lp.constr [ (0, 1.0) ] Lp.Le 4.0;
          Lp.constr [ (1, 2.0) ] Lp.Le 12.0;
          Lp.constr [ (0, 3.0); (1, 2.0) ] Lp.Le 18.0;
        ];
    }
  in
  let s = solve_lp p in
  check_float "objective" 36.0 s.Lp.objective_value;
  check_float "x" 2.0 s.Lp.values.(0);
  check_float "y" 6.0 s.Lp.values.(1);
  check "feasible" true (Lp.feasible p s.Lp.values)

let test_lp_equality () =
  (* max x + y st x + y = 1, x <= 0.3 -> 1 *)
  let p =
    {
      Lp.num_vars = 2;
      maximize = true;
      objective = [ (0, 1.0); (1, 1.0) ];
      constraints =
        [
          Lp.constr [ (0, 1.0); (1, 1.0) ] Lp.Eq 1.0;
          Lp.constr [ (0, 1.0) ] Lp.Le 0.3;
        ];
    }
  in
  let s = solve_lp p in
  check_float "objective" 1.0 s.Lp.objective_value;
  check "x within bound" true (s.Lp.values.(0) <= 0.3 +. 1e-9)

let test_lp_minimize_with_ge () =
  (* min 2x + 3y st x + y >= 4, x >= 1 -> x=4? min at y=0, x=4 -> 8 *)
  let p =
    {
      Lp.num_vars = 2;
      maximize = false;
      objective = [ (0, 2.0); (1, 3.0) ];
      constraints =
        [
          Lp.constr [ (0, 1.0); (1, 1.0) ] Lp.Ge 4.0;
          Lp.constr [ (0, 1.0) ] Lp.Ge 1.0;
        ];
    }
  in
  let s = solve_lp p in
  check_float "objective" 8.0 s.Lp.objective_value

let test_lp_infeasible () =
  let p =
    {
      Lp.num_vars = 1;
      maximize = true;
      objective = [ (0, 1.0) ];
      constraints =
        [ Lp.constr [ (0, 1.0) ] Lp.Le 1.0; Lp.constr [ (0, 1.0) ] Lp.Ge 2.0 ];
    }
  in
  check "infeasible detected" true (Lp.solve p = Lp.Infeasible)

let test_lp_unbounded () =
  let p =
    {
      Lp.num_vars = 1;
      maximize = true;
      objective = [ (0, 1.0) ];
      constraints = [ Lp.constr [ (0, -1.0) ] Lp.Le 0.0 ];
    }
  in
  check "unbounded detected" true (Lp.solve p = Lp.Unbounded)

let test_lp_negative_rhs () =
  (* -x <= -2 means x >= 2; max -x -> -2 *)
  let p =
    {
      Lp.num_vars = 1;
      maximize = true;
      objective = [ (0, -1.0) ];
      constraints = [ Lp.constr [ (0, -1.0) ] Lp.Le (-2.0) ];
    }
  in
  let s = solve_lp p in
  check_float "objective" (-2.0) s.Lp.objective_value

let test_lp_degenerate () =
  (* redundant constraints must not cycle *)
  let p =
    {
      Lp.num_vars = 2;
      maximize = true;
      objective = [ (0, 1.0); (1, 1.0) ];
      constraints =
        [
          Lp.constr [ (0, 1.0); (1, 1.0) ] Lp.Le 2.0;
          Lp.constr [ (0, 1.0); (1, 1.0) ] Lp.Le 2.0;
          Lp.constr [ (0, 2.0); (1, 2.0) ] Lp.Le 4.0;
          Lp.constr [ (0, 1.0) ] Lp.Le 2.0;
        ];
    }
  in
  check_float "objective" 2.0 (solve_lp p).Lp.objective_value

(* ----- MILP ----- *)

let brute_force (p : Milp.problem) =
  let n = p.Milp.num_vars in
  assert (n <= 16);
  let best = ref neg_infinity in
  for mask = 0 to (1 lsl n) - 1 do
    let values = Array.init n (fun v -> mask land (1 lsl v) <> 0) in
    if Milp.check p values then begin
      let obj = Milp.objective_of p values in
      if obj > !best then best := obj
    end
  done;
  !best

let test_milp_simple () =
  let p =
    {
      Milp.num_vars = 4;
      profit = [| 3.0; 5.0; 2.0; 1.0 |];
      rows =
        [
          Milp.Choose_one [ 0; 1 ];
          Milp.Choose_one [ 2; 3 ];
          Milp.At_most_one [ 1; 2 ];
        ];
    }
  in
  (* (1,3) = 6 is the best conflict-free pick: 5+2 crosses the
     At_most_one row *)
  let s = Milp.solve p in
  check_float "optimal" 6.0 s.Milp.objective;
  check "values satisfy" true (Milp.check p s.Milp.values);
  check "proven" true s.Milp.stats.Milp.proven_optimal

let test_milp_forced_chain () =
  (* conflicts force a unique assignment *)
  let p =
    {
      Milp.num_vars = 4;
      profit = [| 10.0; 1.0; 10.0; 1.0 |];
      rows =
        [
          Milp.Choose_one [ 0; 1 ];
          Milp.Choose_one [ 2; 3 ];
          Milp.At_most_one [ 0; 2 ];
        ];
    }
  in
  let s = Milp.solve p in
  check_float "optimal avoids double-10" 11.0 s.Milp.objective

let test_milp_infeasible () =
  let p =
    {
      Milp.num_vars = 2;
      profit = [| 1.0; 1.0 |];
      rows =
        [
          Milp.Choose_one [ 0 ];
          Milp.Choose_one [ 1 ];
          Milp.At_most_one [ 0; 1 ];
        ];
    }
  in
  check "infeasible raises" true
    (match Milp.solve p with
    | exception Milp.Infeasible -> true
    | _ -> false)

let test_milp_warm_start_and_lp () =
  let p =
    {
      Milp.num_vars = 4;
      profit = [| 3.0; 5.0; 2.0; 1.0 |];
      rows =
        [
          Milp.Choose_one [ 0; 1 ];
          Milp.Choose_one [ 2; 3 ];
          Milp.At_most_one [ 1; 2 ];
        ];
    }
  in
  let warm = [| true; false; true; false |] in
  let s = Milp.solve ~warm_start:warm ~root_lp:true p in
  check_float "optimal with warm start" 6.0 s.Milp.objective;
  (match s.Milp.stats.Milp.root_lp_bound with
  | Some b -> check "lp bound >= optimum" true (b >= 6.0 -. 1e-6)
  | None -> Alcotest.fail "expected an LP bound")

let test_milp_validation () =
  let expect_invalid name p =
    match Milp.solve p with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s: expected Invalid_argument" name
  in
  expect_invalid "var out of range"
    { Milp.num_vars = 1; profit = [| 1.0 |]; rows = [ Milp.Choose_one [ 3 ] ] };
  expect_invalid "var in no choose row"
    {
      Milp.num_vars = 2;
      profit = [| 1.0; 1.0 |];
      rows = [ Milp.Choose_one [ 0 ]; Milp.At_most_one [ 0; 1 ] ];
    };
  expect_invalid "duplicate in row"
    {
      Milp.num_vars = 2;
      profit = [| 1.0; 1.0 |];
      rows = [ Milp.Choose_one [ 0; 0; 1 ] ];
    }

(* random pin-access-shaped instances: pins with disjoint candidate sets
   plus random conflict rows; compare against brute force *)
let random_instance =
  let gen =
    QCheck.Gen.(
      let* num_pins = int_range 1 4 in
      let* sizes = list_repeat num_pins (int_range 1 3) in
      let n = List.fold_left ( + ) 0 sizes in
      let* profits = list_repeat n (int_range 1 20) in
      let* num_conf = int_range 0 4 in
      let* confs =
        list_repeat num_conf
          (let* a = int_range 0 (n - 1) in
           let* b = int_range 0 (n - 1) in
           return (min a b, max a b))
      in
      return (sizes, profits, confs))
  in
  QCheck.make gen

let prop_milp_matches_brute_force =
  QCheck.Test.make ~name:"milp equals brute force" ~count:300 random_instance
    (fun (sizes, profits, confs) ->
      let n = List.length profits in
      let profit = Array.of_list (List.map float_of_int profits) in
      let choose_rows, _ =
        List.fold_left
          (fun (rows, start) size ->
            (Milp.Choose_one (List.init size (fun i -> start + i)) :: rows,
             start + size))
          ([], 0) sizes
      in
      let conf_rows =
        List.filter_map
          (fun (a, b) -> if a <> b then Some (Milp.At_most_one [ a; b ]) else None)
          confs
      in
      let p = { Milp.num_vars = n; profit; rows = choose_rows @ conf_rows } in
      let expected = brute_force p in
      match Milp.solve p with
      | s ->
        expected > neg_infinity
        && Float.abs (s.Milp.objective -. expected) < 1e-6
        && Milp.check p s.Milp.values
      | exception Milp.Infeasible -> expected = neg_infinity)

let prop_lp_bounds_milp =
  QCheck.Test.make ~name:"lp relaxation bounds milp" ~count:200 random_instance
    (fun (sizes, profits, confs) ->
      let n = List.length profits in
      let profit = Array.of_list (List.map float_of_int profits) in
      let choose_rows, _ =
        List.fold_left
          (fun (rows, start) size ->
            (Milp.Choose_one (List.init size (fun i -> start + i)) :: rows,
             start + size))
          ([], 0) sizes
      in
      let conf_rows =
        List.filter_map
          (fun (a, b) -> if a <> b then Some (Milp.At_most_one [ a; b ]) else None)
          confs
      in
      let p = { Milp.num_vars = n; profit; rows = choose_rows @ conf_rows } in
      match Milp.solve ~root_lp:true p with
      | s ->
        (match s.Milp.stats.Milp.root_lp_bound with
        | Some b -> b >= s.Milp.objective -. 1e-6
        | None -> true)
      | exception Milp.Infeasible -> true)

let test_milp_anytime () =
  (* node_limit 1 still returns a feasible solution via greedy dive *)
  let p =
    {
      Milp.num_vars = 6;
      profit = [| 5.0; 4.0; 3.0; 2.0; 6.0; 1.0 |];
      rows =
        [
          Milp.Choose_one [ 0; 1; 2 ];
          Milp.Choose_one [ 3; 4; 5 ];
          Milp.At_most_one [ 0; 4 ];
          Milp.At_most_one [ 1; 3 ];
        ];
    }
  in
  let s = Milp.solve ~node_limit:1 p in
  check "feasible" true (Milp.check p s.Milp.values);
  check "flagged not proven" false s.Milp.stats.Milp.proven_optimal

let () =
  Alcotest.run "solver"
    [
      ( "lp",
        [
          Alcotest.test_case "textbook" `Quick test_lp_textbook;
          Alcotest.test_case "equality" `Quick test_lp_equality;
          Alcotest.test_case "minimize with >=" `Quick test_lp_minimize_with_ge;
          Alcotest.test_case "infeasible" `Quick test_lp_infeasible;
          Alcotest.test_case "unbounded" `Quick test_lp_unbounded;
          Alcotest.test_case "negative rhs" `Quick test_lp_negative_rhs;
          Alcotest.test_case "degenerate" `Quick test_lp_degenerate;
        ] );
      ( "milp",
        [
          Alcotest.test_case "simple" `Quick test_milp_simple;
          Alcotest.test_case "forced chain" `Quick test_milp_forced_chain;
          Alcotest.test_case "infeasible" `Quick test_milp_infeasible;
          Alcotest.test_case "warm start + lp" `Quick test_milp_warm_start_and_lp;
          Alcotest.test_case "validation" `Quick test_milp_validation;
          Alcotest.test_case "anytime" `Quick test_milp_anytime;
          QCheck_alcotest.to_alcotest prop_milp_matches_brute_force;
          QCheck_alcotest.to_alcotest prop_lp_bounds_milp;
        ] );
    ]
