module Rng = Workloads.Rng
module Gen = Workloads.Generator
module Suite = Workloads.Suite
module Design = Netlist.Design

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ----- Rng ----- *)

let test_rng_deterministic () =
  let a = Rng.create 42L and b = Rng.create 42L in
  for _ = 1 to 100 do
    check "same stream" true (Rng.next a = Rng.next b)
  done;
  let c = Rng.create 43L in
  check "different seed differs" false (Rng.next a = Rng.next c)

let test_rng_ranges () =
  let r = Rng.create 7L in
  for _ = 1 to 1000 do
    let v = Rng.int r 10 in
    check "int in range" true (v >= 0 && v < 10);
    let w = Rng.in_range r ~lo:5 ~hi:8 in
    check "in_range" true (w >= 5 && w <= 8);
    let f = Rng.float r in
    check "float in [0,1)" true (f >= 0.0 && f < 1.0)
  done

let test_rng_weighted () =
  let r = Rng.create 11L in
  let counts = Hashtbl.create 3 in
  for _ = 1 to 3000 do
    let k = Rng.choose_weighted r [ (2, 0.8); (3, 0.15); (4, 0.05) ] in
    Hashtbl.replace counts k (1 + Option.value ~default:0 (Hashtbl.find_opt counts k))
  done;
  let get k = Option.value ~default:0 (Hashtbl.find_opt counts k) in
  check "2 dominates" true (get 2 > get 3 && get 3 > get 4);
  check_int "only valid keys" 3000 (get 2 + get 3 + get 4)

let test_rng_shuffle_permutes () =
  let r = Rng.create 3L in
  let arr = Array.init 50 (fun i -> i) in
  Rng.shuffle r arr;
  let sorted = Array.copy arr in
  Array.sort Int.compare sorted;
  check "is a permutation" true (Array.to_list sorted = List.init 50 (fun i -> i))

(* ----- Generator ----- *)

let params =
  Gen.with_size ~name:"t" ~nets:120 ~width:100 ~height:50 ~seed:5L ()

let test_generator_valid_design () =
  let d = Gen.generate params in
  check_int "net count" 120 (Array.length (Design.nets d));
  (* Design.create validated everything already; sanity beyond that *)
  Array.iter
    (fun (n : Netlist.Net.t) ->
      let deg = Netlist.Net.degree n in
      check "degree 2..4" true (deg >= 2 && deg <= 4))
    (Design.nets d)

let test_generator_deterministic () =
  let d1 = Gen.generate params and d2 = Gen.generate params in
  check_int "same pins" (Array.length (Design.pins d1))
    (Array.length (Design.pins d2));
  Array.iteri
    (fun i (p1 : Netlist.Pin.t) ->
      let p2 = Design.pin d2 i in
      check "same pin placement" true
        (p1.Netlist.Pin.x = p2.Netlist.Pin.x
        && Geometry.Interval.equal p1.Netlist.Pin.tracks p2.Netlist.Pin.tracks))
    (Design.pins d1)

let test_generator_seeds_differ () =
  let d1 = Gen.generate params in
  let d2 = Gen.generate { params with Gen.seed = 6L } in
  let differs =
    Array.exists
      (fun (p1 : Netlist.Pin.t) ->
        let p2 = Design.pin d2 p1.Netlist.Pin.id in
        p1.Netlist.Pin.x <> p2.Netlist.Pin.x)
      (Design.pins d1)
  in
  check "different seeds give different placements" true differs

let test_generator_locality () =
  let d = Gen.generate params in
  (* most nets should stay within the locality window *)
  let local =
    Array.to_list (Design.nets d)
    |> List.filter (fun (n : Netlist.Net.t) ->
           let bbox = Design.net_bbox d n.Netlist.Net.id in
           Geometry.Rect.width bbox <= 70)
  in
  check "at least 80% of nets local" true
    (List.length local * 10 >= 8 * Array.length (Design.nets d))

let test_generator_pins_not_under_blockages () =
  let d = Gen.generate { params with Gen.blockage_per_row = 3.0 } in
  let blocked = Design.blockages d in
  Array.iter
    (fun (p : Netlist.Pin.t) ->
      List.iter
        (fun (b : Netlist.Blockage.t) ->
          match b.Netlist.Blockage.layer with
          | Netlist.Blockage.M2 ->
            let covers_pin =
              Geometry.Interval.contains p.Netlist.Pin.tracks
                b.Netlist.Blockage.track
              && Geometry.Interval.contains b.Netlist.Blockage.span
                   p.Netlist.Pin.x
            in
            check "no blockage over a pin" false covers_pin
          | Netlist.Blockage.M3 -> ())
        blocked)
    (Design.pins d)

let test_generator_capacity_error () =
  match
    Gen.generate
      (Gen.with_size ~name:"over" ~nets:4000 ~width:20 ~height:20 ~seed:1L ())
  with
  | exception Invalid_argument _ -> ()
  | d ->
    (* the generator may instead have grown the die to fit *)
    check "grew the die" true (Design.width d > 20)

(* ----- Suite ----- *)

let test_suite_circuits () =
  check_int "six circuits" 6 (List.length Suite.circuits);
  let ecc = Suite.find "ecc" in
  check_int "ecc nets" 1671 ecc.Suite.nets;
  (match Suite.find "nope" with
  | exception Not_found -> ()
  | _ -> Alcotest.fail "unknown circuit must raise Not_found")

let test_suite_scaled_design () =
  let d = Suite.design ~scale:0.05 (Suite.find "ecc") in
  check "scaled down" true (Array.length (Design.nets d) < 200);
  check "rows intact" true (Design.height d mod Design.row_height d = 0)

let test_sweep_design () =
  let d = Suite.sweep_design ~pins:250 in
  let pins = Array.length (Design.pins d) in
  check "pin count near target" true (pins > 150 && pins < 400)

let () =
  Alcotest.run "workloads"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "ranges" `Quick test_rng_ranges;
          Alcotest.test_case "weighted" `Quick test_rng_weighted;
          Alcotest.test_case "shuffle" `Quick test_rng_shuffle_permutes;
        ] );
      ( "generator",
        [
          Alcotest.test_case "valid design" `Quick test_generator_valid_design;
          Alcotest.test_case "deterministic" `Quick test_generator_deterministic;
          Alcotest.test_case "seeds differ" `Quick test_generator_seeds_differ;
          Alcotest.test_case "locality" `Quick test_generator_locality;
          Alcotest.test_case "pins clear of blockages" `Quick
            test_generator_pins_not_under_blockages;
          Alcotest.test_case "capacity" `Quick test_generator_capacity_error;
        ] );
      ( "suite",
        [
          Alcotest.test_case "circuits" `Quick test_suite_circuits;
          Alcotest.test_case "scaled design" `Quick test_suite_scaled_design;
          Alcotest.test_case "sweep design" `Quick test_sweep_design;
        ] );
    ]
