module B = Netlist.Builder
module Node = Rgrid.Node
module Layer = Rgrid.Layer
module Route = Rgrid.Route
module Verify = Router.Verify

let check = Alcotest.(check bool)

let design () =
  B.design ~width:20 ~height:10
    ~nets:[ ("a", [ B.pin_at 2 3; B.pin_at 12 5 ]) ]
    ()

let m2 space x y = Node.pack space ~layer:Layer.M2 ~x ~y
let m3 space x y = Node.pack space ~layer:Layer.M3 ~x ~y

let test_connected_route () =
  let d = design () in
  let space = Node.space_of_design d in
  (* stub at pin0, M3 column at x=2 from track 3 to 5, run to pin1 *)
  let nodes =
    [ m2 space 2 3 ]
    @ List.init 3 (fun i -> m3 space 2 (3 + i))
    @ List.init 11 (fun i -> m2 space (2 + i) 5)
  in
  let r =
    Route.make ~space ~net:0 ~nodes ~pin_vias:[ (0, 2, 3); (1, 12, 5) ]
  in
  check "connected" true (Verify.net_connected d r = Ok ())

let test_disconnected_route () =
  let d = design () in
  let space = Node.space_of_design d in
  (* two stubs with nothing between them *)
  let r =
    Route.make ~space ~net:0
      ~nodes:[ m2 space 2 3; m2 space 12 5 ]
      ~pin_vias:[ (0, 2, 3); (1, 12, 5) ]
  in
  (match Verify.net_connected d r with
  | Error (Verify.Disconnected (0, 2)) -> ()
  | Error other ->
    Alcotest.failf "expected Disconnected, got %s" (Verify.issue_to_string other)
  | Ok () -> Alcotest.fail "expected a failure")

let test_missing_v1 () =
  let d = design () in
  let space = Node.space_of_design d in
  let nodes =
    [ m2 space 2 3 ]
    @ List.init 3 (fun i -> m3 space 2 (3 + i))
    @ List.init 11 (fun i -> m2 space (2 + i) 5)
  in
  (* pin 1 never gets a cut *)
  let r = Route.make ~space ~net:0 ~nodes ~pin_vias:[ (0, 2, 3) ] in
  (match Verify.net_connected d r with
  | Error (Verify.Pin_not_connected (0, 1)) -> ()
  | Error other ->
    Alcotest.failf "expected Pin_not_connected, got %s"
      (Verify.issue_to_string other)
  | Ok () -> Alcotest.fail "expected a failure")

let test_m1_bridges_stubs () =
  (* two stubs over the same tall pin on different tracks are joined
     through the M1 shape when both carry a V1 *)
  let d =
    B.design ~width:20 ~height:10
      ~nets:[ ("a", [ B.pin_span 4 ~lo:2 ~hi:4 ]) ]
      ()
  in
  let space = Node.space_of_design d in
  let r =
    Route.make ~space ~net:0
      ~nodes:[ m2 space 4 2; m2 space 4 4 ]
      ~pin_vias:[ (0, 4, 2); (0, 4, 4) ]
  in
  check "bridged through M1" true (Verify.net_connected d r = Ok ());
  (* with only one cut, the other stub floats *)
  let r =
    Route.make ~space ~net:0
      ~nodes:[ m2 space 4 2; m2 space 4 4 ]
      ~pin_vias:[ (0, 4, 2) ]
  in
  (match Verify.net_connected d r with
  | Error (Verify.Disconnected _) -> ()
  | Error other ->
    Alcotest.failf "expected Disconnected, got %s" (Verify.issue_to_string other)
  | Ok () -> Alcotest.fail "floating stub must be caught")

let test_via_stack_counts_as_connection () =
  let d = design () in
  let space = Node.space_of_design d in
  (* M2 and M3 stacked at one grid: one component *)
  let r =
    Route.make ~space ~net:0
      ~nodes:[ m2 space 2 3; m3 space 2 3; m3 space 2 4 ]
      ~pin_vias:[ (0, 2, 3); (1, 2, 3) ]
  in
  (* pin 1 is not at (2,3); its via lands there anyway — the checker
     only cares about electrical connectivity of declared landings *)
  check "stacked layers connected" true (Verify.net_connected d r = Ok ())

let () =
  Alcotest.run "verify"
    [
      ( "verify",
        [
          Alcotest.test_case "connected" `Quick test_connected_route;
          Alcotest.test_case "disconnected" `Quick test_disconnected_route;
          Alcotest.test_case "missing V1" `Quick test_missing_v1;
          Alcotest.test_case "M1 bridges stubs" `Quick test_m1_bridges_stubs;
          Alcotest.test_case "via stack" `Quick test_via_stack_counts_as_connection;
        ] );
    ]
