module B = Netlist.Builder

let check = Alcotest.(check bool)

let design () =
  B.design ~width:20 ~height:10
    ~nets:
      [
        ("a", [ B.pin_at 2 3; B.pin_at 12 3 ]);
        ("b", [ B.pin_span 5 ~lo:6 ~hi:7; B.pin_at 15 2 ]);
      ]
    ~blockages:
      [
        Netlist.Blockage.make ~layer:Netlist.Blockage.M2 ~track:8
          ~span:(Geometry.Interval.make ~lo:1 ~hi:4);
      ]
    ()

let count_sub sub s =
  let n = String.length sub and total = ref 0 in
  for i = 0 to String.length s - n do
    if String.sub s i n = sub then incr total
  done;
  !total

let test_svg_primitives () =
  let svg = Render.Svg.create ~width:100.0 ~height:50.0 in
  Render.Svg.rect svg ~x:1.0 ~y:2.0 ~w:3.0 ~h:4.0 ~fill:"#123456" ();
  Render.Svg.line svg ~x1:0.0 ~y1:0.0 ~x2:9.0 ~y2:9.0 ~stroke:"red" ();
  Render.Svg.text svg ~x:5.0 ~y:5.0 "a<b&c";
  let out = Render.Svg.to_string svg in
  check "has rect" true (count_sub "<rect" out = 1);
  check "has line" true (count_sub "<line" out = 1);
  check "escapes text" true (count_sub "a&lt;b&amp;c" out = 1);
  check "well formed" true
    (count_sub "<svg" out = 1 && count_sub "</svg>" out = 1)

let test_design_plot () =
  let d = design () in
  let out = Render.Layout_svg.design d in
  (* 4 pins drawn plus 1 blockage *)
  check "draws every pin" true (count_sub "<rect" out >= 5);
  check "viewbox present" true (count_sub "viewBox" out = 1)

let test_flow_plot () =
  let d = design () in
  let flow = Router.Cpr.run d in
  let out = Render.Layout_svg.flow flow in
  (* metal and via cuts appear on top of the base plot *)
  check "flow plot richer than design plot" true
    (count_sub "<rect" out > count_sub "<rect" (Render.Layout_svg.design d));
  check "via cuts drawn" true (count_sub {|fill="black"|} out >= 4)

let test_pin_access_plot () =
  let d = design () in
  let pao = Pinaccess.Pin_access.optimize ~kind:Pinaccess.Pin_access.Lr d in
  let out =
    Render.Layout_svg.pin_access d pao.Pinaccess.Pin_access.assignments
  in
  check "intervals drawn" true
    (count_sub "<rect" out > count_sub "<rect" (Render.Layout_svg.design d))

let () =
  Alcotest.run "render"
    [
      ( "svg",
        [
          Alcotest.test_case "primitives" `Quick test_svg_primitives;
          Alcotest.test_case "design plot" `Quick test_design_plot;
          Alcotest.test_case "flow plot" `Quick test_flow_plot;
          Alcotest.test_case "pin access plot" `Quick test_pin_access_plot;
        ] );
    ]
