module B = Netlist.Builder
module Node = Rgrid.Node
module Grid = Rgrid.Grid
module Layer = Rgrid.Layer
module Route = Rgrid.Route
module I = Geometry.Interval
module NR = Router.Net_router

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let design () =
  B.design ~width:20 ~height:10
    ~nets:
      [
        ("a", [ B.pin_at 2 3; B.pin_at 12 3 ]);
        ("b", [ B.pin_at 5 6; B.pin_at 15 2 ]);
      ]
    ()

(* ----- Route representation ----- *)

let test_route_segments () =
  let d = design () in
  let space = Node.space_of_design d in
  let nodes =
    [
      (* an L: M2 run on track 3 then M3 up at x=6 *)
      Node.pack space ~layer:Layer.M2 ~x:2 ~y:3;
      Node.pack space ~layer:Layer.M2 ~x:3 ~y:3;
      Node.pack space ~layer:Layer.M2 ~x:4 ~y:3;
      Node.pack space ~layer:Layer.M2 ~x:5 ~y:3;
      Node.pack space ~layer:Layer.M2 ~x:6 ~y:3;
      Node.pack space ~layer:Layer.M3 ~x:6 ~y:3;
      Node.pack space ~layer:Layer.M3 ~x:6 ~y:4;
      Node.pack space ~layer:Layer.M3 ~x:6 ~y:5;
    ]
  in
  let r = Route.make ~space ~net:0 ~nodes ~pin_vias:[ (0, 2, 3) ] in
  let segs = Route.segments ~space r in
  check_int "two segments" 2 (List.length segs);
  check_int "wirelength = 4 + 2" 6 (Route.wirelength ~space r);
  check_int "v2 at the corner" 1 (List.length (Route.v2_vias ~space r));
  check_int "vias: 1 V1 + 1 V2" 2 (Route.via_count ~space r)

let test_route_dedupes () =
  let d = design () in
  let space = Node.space_of_design d in
  let n = Node.pack space ~layer:Layer.M2 ~x:4 ~y:4 in
  let r = Route.make ~space ~net:0 ~nodes:[ n; n; n ] ~pin_vias:[] in
  check_int "deduped" 1 (List.length r.Route.nodes)

let test_route_single_node_segment () =
  let d = design () in
  let space = Node.space_of_design d in
  let n = Node.pack space ~layer:Layer.M2 ~x:4 ~y:4 in
  let r = Route.make ~space ~net:0 ~nodes:[ n ] ~pin_vias:[] in
  check_int "one stub segment" 1 (List.length (Route.segments ~space r));
  check_int "zero wirelength" 0 (Route.wirelength ~space r)

(* ----- Net_router ----- *)

let pin_component space (p : Netlist.Pin.t) =
  {
    NR.nodes =
      List.init (I.length p.Netlist.Pin.tracks) (fun i ->
          Node.pack space ~layer:Layer.M2 ~x:p.Netlist.Pin.x
            ~y:(I.lo p.Netlist.Pin.tracks + i));
    anchors = [ { NR.pin = p.Netlist.Pin.id; landing = None } ];
  }

let test_net_router_connects () =
  let d = design () in
  let g = Grid.create d in
  let space = Grid.space g in
  let maze = Rgrid.Maze.create g in
  let p0 = Netlist.Design.pin d 0 and p1 = Netlist.Design.pin d 1 in
  let spec =
    NR.spec_of_components ~space ~net:0
      [ pin_component space p0; pin_component space p1 ]
  in
  match NR.route maze ~cost:Rgrid.Cost.default ~pfac:0.0 spec with
  | Some r ->
    check "both pins have V1s" true (List.length r.Route.pin_vias = 2);
    (* same track pins: a straight M2 wire, no M3 *)
    check "no M3 needed" true
      (List.for_all
         (fun n -> Layer.equal (Node.layer space n) Layer.M2)
         r.Route.nodes);
    check_int "wirelength 10" 10 (Route.wirelength ~space r)
  | None -> Alcotest.fail "trivial net must route"

let test_net_router_trims_interval () =
  (* a long partial-route strip: only the used part survives *)
  let d = design () in
  let g = Grid.create d in
  let space = Grid.space g in
  let maze = Rgrid.Maze.create g in
  let strip =
    List.init 16 (fun i -> Node.pack space ~layer:Layer.M2 ~x:(2 + i) ~y:3)
  in
  let comp1 =
    {
      NR.nodes = strip;
      anchors =
        [
          {
            NR.pin = 0;
            landing = Some (Node.pack space ~layer:Layer.M2 ~x:2 ~y:3);
          };
        ];
    }
  in
  let p1 = Netlist.Design.pin d 1 in
  let spec =
    NR.spec_of_components ~space ~net:0 [ comp1; pin_component space p1 ]
  in
  match NR.route maze ~cost:Rgrid.Cost.default ~pfac:0.0 spec with
  | Some r ->
    (* pin 1 is at x=12 track 3: the strip connects directly; grids
       right of x=12 are unused and must be trimmed *)
    check "unused strip tail trimmed" true
      (not
         (List.mem (Node.pack space ~layer:Layer.M2 ~x:17 ~y:3) r.Route.nodes));
    check "kept between landing and touch" true
      (List.mem (Node.pack space ~layer:Layer.M2 ~x:6 ~y:3) r.Route.nodes)
  | None -> Alcotest.fail "must route"

let test_net_router_single_component () =
  let d = design () in
  let g = Grid.create d in
  let space = Grid.space g in
  let maze = Rgrid.Maze.create g in
  let p0 = Netlist.Design.pin d 0 in
  let spec = NR.spec_of_components ~space ~net:0 [ pin_component space p0 ] in
  match NR.route maze ~cost:Rgrid.Cost.default ~pfac:0.0 spec with
  | Some r ->
    check_int "one V1" 1 (List.length r.Route.pin_vias);
    check "minimal metal" true (List.length r.Route.nodes <= 1)
  | None -> Alcotest.fail "single-component net must trivially route"

let test_net_router_unreachable () =
  let d = design () in
  let g = Grid.create d in
  let space = Grid.space g in
  (* wall the whole column range between the pins on both layers *)
  for y = 0 to 9 do
    Grid.set_blocked g (Node.pack space ~layer:Layer.M2 ~x:7 ~y);
    Grid.set_blocked g (Node.pack space ~layer:Layer.M3 ~x:7 ~y)
  done;
  let maze = Rgrid.Maze.create g in
  let p0 = Netlist.Design.pin d 0 and p1 = Netlist.Design.pin d 1 in
  let spec =
    NR.spec_of_components ~space ~net:0
      [ pin_component space p0; pin_component space p1 ]
  in
  check "walled net fails" true
    (NR.route maze ~cost:Rgrid.Cost.default ~pfac:0.0 spec = None)

(* ----- Spec builder ----- *)

let test_spec_builder_no_pao () =
  let d = design () in
  let g = Grid.create d in
  let specs = Router.Spec_builder.build g ~pao:None in
  check_int "one spec per net" 2 (Array.length specs);
  check_int "one component per pin" 2
    (List.length specs.(0).NR.components);
  (* pins own their shape nodes *)
  let space = Grid.space g in
  let p = Netlist.Design.pin d 0 in
  check_int "pin owned" p.Netlist.Pin.net
    (Grid.owner g
       (Node.pack space ~layer:Layer.M2 ~x:p.Netlist.Pin.x
          ~y:(I.lo p.Netlist.Pin.tracks)))

let test_spec_builder_with_pao () =
  let d = design () in
  let pao = Pinaccess.Pin_access.optimize ~kind:Pinaccess.Pin_access.Lr d in
  let g = Grid.create d in
  let specs = Router.Spec_builder.build g ~pao:(Some pao) in
  Array.iter
    (fun (spec : NR.spec) ->
      List.iter
        (fun (c : NR.component) ->
          check "components have fixed landings" true
            (List.for_all
               (fun (a : NR.anchor) -> Option.is_some a.NR.landing)
               c.NR.anchors);
          (* interval nodes are solid *)
          let g_space = Grid.space g in
          ignore g_space;
          List.iter
            (fun node -> check "interval node solid" true (Grid.solid g node))
            c.NR.nodes)
        spec.NR.components)
    specs

(* ----- Negotiation ----- *)

let test_negotiation_small () =
  let d = design () in
  let g = Grid.create d in
  let specs = Router.Spec_builder.build g ~pao:None in
  let result = Router.Negotiation.run g specs in
  check_int "both nets routed" 2
    (Array.fold_left
       (fun k r -> if Option.is_some r then k + 1 else k)
       0 result.Router.Negotiation.routes);
  check "no congestion left" true (Grid.congested_nodes g = 0)

let test_negotiation_resolves_sharing () =
  (* two nets whose straight paths collide on the only shared track must
     negotiate *)
  let d =
    B.design ~width:30 ~height:10
      ~nets:
        [
          ("a", [ B.pin_at 2 4; B.pin_at 27 4 ]);
          ("b", [ B.pin_at 4 4; B.pin_at 25 4 ]);
        ]
      ()
  in
  let g = Grid.create d in
  let specs = Router.Spec_builder.build g ~pao:None in
  let result = Router.Negotiation.run g specs in
  let routed =
    Array.fold_left (fun k r -> if Option.is_some r then k + 1 else k) 0
      result.Router.Negotiation.routes
  in
  check_int "both nets routed" 2 routed;
  check "final metal short-free" true (Grid.congested_nodes g = 0)

let () =
  Alcotest.run "router"
    [
      ( "route",
        [
          Alcotest.test_case "segments" `Quick test_route_segments;
          Alcotest.test_case "dedupe" `Quick test_route_dedupes;
          Alcotest.test_case "stub" `Quick test_route_single_node_segment;
        ] );
      ( "net_router",
        [
          Alcotest.test_case "connects" `Quick test_net_router_connects;
          Alcotest.test_case "trims interval" `Quick test_net_router_trims_interval;
          Alcotest.test_case "single component" `Quick test_net_router_single_component;
          Alcotest.test_case "unreachable" `Quick test_net_router_unreachable;
        ] );
      ( "spec_builder",
        [
          Alcotest.test_case "no pao" `Quick test_spec_builder_no_pao;
          Alcotest.test_case "with pao" `Quick test_spec_builder_with_pao;
        ] );
      ( "negotiation",
        [
          Alcotest.test_case "small" `Quick test_negotiation_small;
          Alcotest.test_case "resolves sharing" `Quick test_negotiation_resolves_sharing;
        ] );
    ]
