module I = Geometry.Interval
module P = Geometry.Point
module R = Geometry.Rect

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ----- Interval ----- *)

let test_interval_basics () =
  let i = I.make ~lo:2 ~hi:5 in
  check_int "length" 4 (I.length i);
  check "contains lo" true (I.contains i 2);
  check "contains hi" true (I.contains i 5);
  check "not contains" false (I.contains i 6);
  check_int "point length" 1 (I.length (I.point 7));
  Alcotest.check_raises "lo > hi rejected"
    (Invalid_argument "Interval.make: lo 3 > hi 2") (fun () ->
      ignore (I.make ~lo:3 ~hi:2))

let test_interval_overlap () =
  let a = I.make ~lo:0 ~hi:3 and b = I.make ~lo:3 ~hi:5 in
  check "closed endpoints overlap" true (I.overlaps a b);
  check "disjoint" false (I.overlaps a (I.make ~lo:4 ~hi:5));
  check_int "intersection length" 1 (I.intersection_length a b);
  check_int "disjoint intersection" 0
    (I.intersection_length a (I.make ~lo:10 ~hi:12))

let test_interval_ops () =
  let a = I.make ~lo:1 ~hi:4 and b = I.make ~lo:6 ~hi:9 in
  check "hull" true (I.equal (I.hull a b) (I.make ~lo:1 ~hi:9));
  check "shift" true (I.equal (I.shift a 2) (I.make ~lo:3 ~hi:6));
  (match I.clamp (I.make ~lo:0 ~hi:100) ~within:a with
  | Some c -> check "clamp" true (I.equal c a)
  | None -> Alcotest.fail "clamp should intersect");
  check "clamp disjoint" true (I.clamp a ~within:(I.make ~lo:20 ~hi:30) = None);
  check "contains_interval" true
    (I.contains_interval (I.make ~lo:0 ~hi:10) a);
  check "not contains_interval" false (I.contains_interval a b)

let small_interval =
  QCheck.map
    (fun (a, b) -> I.make ~lo:(min a b) ~hi:(max a b))
    QCheck.(pair (int_range (-50) 50) (int_range (-50) 50))

let prop_overlap_symmetric =
  QCheck.Test.make ~name:"overlap symmetric" ~count:500
    (QCheck.pair small_interval small_interval) (fun (a, b) ->
      I.overlaps a b = I.overlaps b a)

let prop_overlap_iff_intersection =
  QCheck.Test.make ~name:"overlap iff intersection non-empty" ~count:500
    (QCheck.pair small_interval small_interval) (fun (a, b) ->
      I.overlaps a b = (I.intersect a b <> None))

let prop_hull_contains =
  QCheck.Test.make ~name:"hull contains both" ~count:500
    (QCheck.pair small_interval small_interval) (fun (a, b) ->
      let h = I.hull a b in
      I.contains_interval h a && I.contains_interval h b)

let prop_intersection_length =
  QCheck.Test.make ~name:"intersection length matches intersect" ~count:500
    (QCheck.pair small_interval small_interval) (fun (a, b) ->
      match I.intersect a b with
      | Some c -> I.intersection_length a b = I.length c
      | None -> I.intersection_length a b = 0)

(* ----- Point ----- *)

let test_point () =
  let p = P.make ~x:3 ~y:4 in
  check_int "manhattan" 7 (P.manhattan p P.zero);
  check "step east" true
    (P.equal (P.step p Geometry.Axis.Dir.East) (P.make ~x:4 ~y:4));
  check "step up is identity" true (P.equal (P.step p Geometry.Axis.Dir.Up) p);
  check "add/sub" true (P.equal (P.sub (P.add p p) p) p)

let test_axis () =
  let open Geometry.Axis in
  check "flip" true (equal (flip Horizontal) Vertical);
  check "dir axis" true (Dir.axis Dir.East = Some Horizontal);
  check "via axis" true (Dir.axis Dir.Up = None);
  List.iter
    (fun d -> check "opposite involutive" true (Dir.opposite (Dir.opposite d) = d))
    Dir.all

(* ----- Rect ----- *)

let test_rect () =
  let r = R.of_corners (P.make ~x:5 ~y:1) (P.make ~x:2 ~y:3) in
  check_int "width" 4 (R.width r);
  check_int "height" 3 (R.height r);
  check_int "area" 12 (R.area r);
  check_int "half perimeter" 5 (R.half_perimeter r);
  check "contains" true (R.contains r (P.make ~x:3 ~y:2));
  check "not contains" false (R.contains r (P.make ~x:6 ~y:2))

let test_rect_of_points () =
  let pts = [ P.make ~x:1 ~y:5; P.make ~x:4 ~y:2; P.make ~x:0 ~y:3 ] in
  let r = R.of_points pts in
  List.iter (fun p -> check "covers each point" true (R.contains r p)) pts;
  check_int "tight width" 5 (R.width r);
  Alcotest.check_raises "empty rejected"
    (Invalid_argument "Rect.of_points: empty list") (fun () ->
      ignore (R.of_points []))

let test_rect_inflate () =
  let die =
    R.make ~xs:(I.make ~lo:0 ~hi:20) ~ys:(I.make ~lo:0 ~hi:20)
  in
  let r = R.make ~xs:(I.make ~lo:1 ~hi:3) ~ys:(I.make ~lo:18 ~hi:19) in
  let g = R.inflate r ~by:5 ~within:die in
  check_int "clipped at left edge" 0 (I.lo (R.xs g));
  check_int "grown right" 8 (I.hi (R.xs g));
  check_int "clipped at top" 20 (I.hi (R.ys g))

let prop_rect_hull =
  let point =
    QCheck.map
      (fun (x, y) -> P.make ~x ~y)
      QCheck.(pair (int_range 0 50) (int_range 0 50))
  in
  QCheck.Test.make ~name:"rect hull contains both" ~count:300
    QCheck.(pair (pair point point) (pair point point))
    (fun ((a, b), (c, d)) ->
      let r1 = R.of_corners a b and r2 = R.of_corners c d in
      let h = R.hull r1 r2 in
      R.contains h a && R.contains h b && R.contains h c && R.contains h d)

let () =
  Alcotest.run "geometry"
    [
      ( "interval",
        [
          Alcotest.test_case "basics" `Quick test_interval_basics;
          Alcotest.test_case "overlap" `Quick test_interval_overlap;
          Alcotest.test_case "ops" `Quick test_interval_ops;
          QCheck_alcotest.to_alcotest prop_overlap_symmetric;
          QCheck_alcotest.to_alcotest prop_overlap_iff_intersection;
          QCheck_alcotest.to_alcotest prop_hull_contains;
          QCheck_alcotest.to_alcotest prop_intersection_length;
        ] );
      ( "point-axis",
        [
          Alcotest.test_case "point" `Quick test_point;
          Alcotest.test_case "axis" `Quick test_axis;
        ] );
      ( "rect",
        [
          Alcotest.test_case "basics" `Quick test_rect;
          Alcotest.test_case "of_points" `Quick test_rect_of_points;
          Alcotest.test_case "inflate" `Quick test_rect_inflate;
          QCheck_alcotest.to_alcotest prop_rect_hull;
        ] );
    ]
