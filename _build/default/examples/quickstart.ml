(* Quickstart: build a small placed design by hand, run the concurrent
   pin access router, and inspect the result.

     dune exec examples/quickstart.exe *)

let () =
  (* A 30x20 grid: two standard cell rows of 10 M2 tracks.  Pins are
     short vertical M1 shapes; nets connect them. *)
  let design =
    Netlist.Builder.design ~name:"quickstart" ~width:30 ~height:20
      ~nets:
        [
          ("clk", [ Netlist.Builder.pin_span 4 ~lo:2 ~hi:4;
                    Netlist.Builder.pin_span 20 ~lo:12 ~hi:14 ]);
          ("d0", [ Netlist.Builder.pin_at 8 3; Netlist.Builder.pin_at 17 6 ]);
          ("d1", [ Netlist.Builder.pin_span 11 ~lo:5 ~hi:7;
                   Netlist.Builder.pin_at 25 4 ]);
          ("q0", [ Netlist.Builder.pin_at 6 13; Netlist.Builder.pin_at 14 16 ]);
          ("en", [ Netlist.Builder.pin_at 10 12; Netlist.Builder.pin_at 24 15;
                   Netlist.Builder.pin_at 27 13 ]);
        ]
      ()
  in
  Format.printf "design: %s@.@." (Netlist.Design.stats design);

  (* Run the full CPR flow: pin access optimization (Lagrangian
     relaxation) + negotiation routing + line-end extension + DRC. *)
  let flow = Router.Cpr.run design in
  let summary = Metrics.Eval.of_flow flow in
  Format.printf "routability : %.1f%%@." summary.Metrics.Eval.routability;
  Format.printf "vias        : %d@." summary.Metrics.Eval.via_count;
  Format.printf "wirelength  : %d@." summary.Metrics.Eval.wirelength;
  Format.printf "violations  : %d@.@." summary.Metrics.Eval.violations;

  (* The pin access intervals the optimizer chose. *)
  (match flow.Router.Flow.pao with
  | Some pao ->
    Format.printf "selected pin access intervals:@.";
    List.iter
      (fun (pid, iv) ->
        let p = Netlist.Design.pin design pid in
        Format.printf "  pin %d of net %s -> track %d, columns %s@." pid
          (Netlist.Design.net design p.Netlist.Pin.net).Netlist.Net.name
          iv.Pinaccess.Access_interval.track
          (Geometry.Interval.to_string iv.Pinaccess.Access_interval.span))
      pao.Pinaccess.Pin_access.assignments
  | None -> ());

  (* A picture is easier: write an SVG plot of the routed layout. *)
  Render.Layout_svg.save "quickstart.svg" (Render.Layout_svg.flow flow);
  Format.printf "@.layout plot written to ./quickstart.svg@.";

  (* And the realized routes. *)
  let space = Rgrid.Node.space_of_design design in
  Format.printf "@.routes:@.";
  Array.iteri
    (fun net route ->
      let name = (Netlist.Design.net design net).Netlist.Net.name in
      match route with
      | None -> Format.printf "  %-4s UNROUTED@." name
      | Some r ->
        let segs = Rgrid.Route.segments ~space r in
        Format.printf "  %-4s %d segments, %d vias, wl %d%s@." name
          (List.length segs)
          (Rgrid.Route.via_count ~space r)
          (Rgrid.Route.wirelength ~space r)
          (if flow.Router.Flow.clean.(net) then "" else "  (DRC-dirty)"))
    flow.Router.Flow.routes
