(* The SADP rule deck in isolation: hand-built metal with a sub-minimum
   line-end gap, misaligned cuts and crowding via cuts; then the
   line-end extension legalizer at work.

     dune exec examples/drc_demo.exe *)

module Node = Rgrid.Node
module Layer = Rgrid.Layer
module Route = Rgrid.Route

let pf = Format.printf

let m2 space net track lo hi =
  Route.make ~space ~net
    ~nodes:
      (List.init (hi - lo + 1) (fun i ->
           Node.pack space ~layer:Layer.M2 ~x:(lo + i) ~y:track))
    ~pin_vias:[]

let show_layout (layout : Drc.Extract.layout) tracks =
  List.iter
    (fun track ->
      let row = Bytes.make 30 '.' in
      List.iter
        (fun (s : Drc.Extract.segment) ->
          for x = max 0 s.Drc.Extract.lo to min 29 s.Drc.Extract.hi do
            Bytes.set row x
              (if s.Drc.Extract.net = Drc.Extract.blockage_net then '#'
               else Char.chr (Char.code 'a' + (s.Drc.Extract.net mod 26)))
          done)
        layout.Drc.Extract.m2.(track);
      pf "  track %2d |%s|@." track (Bytes.to_string row))
    tracks

let () =
  let design =
    Netlist.Builder.design ~name:"drc-demo" ~width:30 ~height:10
      ~nets:
        [
          ("a", [ Netlist.Builder.pin_at 2 2; Netlist.Builder.pin_at 27 2 ]);
          ("b", [ Netlist.Builder.pin_at 5 6; Netlist.Builder.pin_at 25 6 ]);
          ("c", [ Netlist.Builder.pin_at 10 8; Netlist.Builder.pin_at 20 8 ]);
        ]
      ()
  in
  let space = Node.space_of_design design in
  let routes = Array.make 3 None in
  (* net a: two pieces on track 2 with a same-net gap of 2 (mergeable) *)
  routes.(0) <-
    Some (Route.add_nodes ~space (m2 space 0 2 2 9) (m2 space 0 2 12 18).Route.nodes);
  (* net b on track 3 ends 1 grid from net c: an R1 violation;
     its cut against track 2's cut is also misaligned (R2) *)
  routes.(1) <- Some (m2 space 1 3 3 10);
  routes.(2) <-
    Some
      (Route.make ~space ~net:2
         ~nodes:(m2 space 2 3 12 18).Route.nodes
         ~pin_vias:[ (4, 13, 3); (5, 14, 3) ])
  (* two V1 cuts one grid apart: an R3 violation *);

  let layout = Drc.Extract.of_routes design routes in
  pf "metal before legalization (tracks 2-3):@.";
  show_layout layout [ 2; 3 ];

  let rules = Drc.Rules.default in
  let violations = Drc.Check.run rules layout in
  pf "@.%d violations:@." (List.length violations);
  List.iter
    (fun (v : Drc.Check.violation) ->
      pf "  %-14s %s  nets [%s], blamed net %d@."
        (Drc.Check.kind_to_string v.Drc.Check.kind)
        v.Drc.Check.where
        (String.concat ";" (List.map string_of_int v.Drc.Check.nets))
        v.Drc.Check.blame)
    violations;

  (* line-end extension: merges the same-net gap, aligns what it can *)
  let fills, stats = Drc.Line_end.extend rules layout in
  pf "@.line-end extension: %d merges, %d alignments, %d fill(s)@."
    stats.Drc.Line_end.merges stats.Drc.Line_end.alignments
    (List.length fills);
  List.iter
    (fun (f : Drc.Line_end.fill) ->
      pf "  fill net %d on %s track %d span %s@." f.Drc.Line_end.net
        (Layer.to_string f.Drc.Line_end.layer)
        f.Drc.Line_end.track
        (Geometry.Interval.to_string f.Drc.Line_end.span))
    fills;

  pf "@.metal after legalization:@.";
  show_layout layout [ 2; 3 ];
  let remaining = Drc.Check.run rules layout in
  pf "@.remaining violations: %d (the sub-minimum R1 gap cannot be fixed@."
    (List.length remaining);
  pf "by growing metal — that net is charged as unrouted, paper Sec. 5)@."
