(* The paper's headline comparison on one synthetic circuit: the
   sequential baseline [12], the negotiation baseline without pin access
   optimization [21], and CPR, through the identical evaluation.

     dune exec examples/router_comparison.exe            (ecc at 25%)
     dune exec examples/router_comparison.exe -- efc 0.5 *)

let () =
  let id = if Array.length Sys.argv > 1 then Sys.argv.(1) else "ecc" in
  let scale =
    if Array.length Sys.argv > 2 then float_of_string Sys.argv.(2) else 0.25
  in
  let design = Workloads.Suite.design ~scale (Workloads.Suite.find id) in
  Format.printf "%s@.@." (Netlist.Design.stats design);
  let flows =
    [
      ("seq [12]", Router.Sequential.run design);
      ("ncr [21]", Router.Baseline_ncr.run design);
      ("cpr", Router.Cpr.run design);
    ]
  in
  let rows =
    List.map
      (fun (name, flow) ->
        let s = Metrics.Eval.of_flow ~name flow in
        name
        :: Metrics.Report.summary_cells s
        @ [
            string_of_int s.Metrics.Eval.initial_congestion;
            string_of_int flow.Router.Flow.total_reroutes;
            string_of_int s.Metrics.Eval.violations;
          ])
      flows
  in
  Format.printf "%s@."
    (Metrics.Report.table
       ~header:
         [ "router"; "Rout%"; "Via#"; "WL"; "cpu(s)"; "cong0"; "reroutes"; "viol" ]
       rows);
  Format.printf
    "@.Expected (paper Table 2 / Fig 7b): CPR routes the most nets with the@.";
  Format.printf
    "fewest vias, comparable wirelength, the lowest runtime, and far fewer@.";
  Format.printf "initially congested grids than the no-PAO baseline.@."
