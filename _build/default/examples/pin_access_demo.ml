(* A walk through the paper's core machinery on the Figure 3 scenario:
   track-based interval generation, linear conflict set detection, the
   ILP formulation and the Lagrangian relaxation, side by side.

     dune exec examples/pin_access_demo.exe *)

module I = Geometry.Interval
module AI = Pinaccess.Access_interval

let pf = Format.printf

let () =
  (* Figure 3: pin a1 spans three tracks inside its net bounding box;
     diff-net pins b1 and d1 interfere on one of them; c1/c2 invite an
     intra-panel connection. *)
  let design =
    Netlist.Builder.design ~name:"fig3" ~width:20 ~height:10
      ~nets:
        [
          ("a", [ Netlist.Builder.pin_span 6 ~lo:2 ~hi:4;  (* a1 *)
                  Netlist.Builder.pin_at 2 7;              (* a2 *)
                  Netlist.Builder.pin_at 17 6 ]);          (* a3 *)
          ("b", [ Netlist.Builder.pin_at 9 3; Netlist.Builder.pin_at 9 8 ]);
          ("c", [ Netlist.Builder.pin_at 3 2; Netlist.Builder.pin_at 13 2 ]);
          ("d", [ Netlist.Builder.pin_at 14 3; Netlist.Builder.pin_at 15 8 ]);
        ]
      ()
  in
  let cfg = Pinaccess.Interval_gen.default_config in

  (* --- Sec. 3.1: pin access interval generation --------------------- *)
  pf "== interval generation for pin a1 (x=6, tracks 2-4) ==@.";
  let a1 = Netlist.Design.pin design 0 in
  let candidates = Pinaccess.Interval_gen.generate_pin cfg design a1 in
  List.iter
    (fun (pins, track, span, kind) ->
      pf "  track %d %-9s %s serving pins [%s]@." track
        (I.to_string span)
        (match kind with AI.Minimum -> "(minimum)" | AI.Regular -> "         ")
        (String.concat ";" (List.map string_of_int pins)))
    candidates;
  pf "  -> %d candidates; edges stop at the cutting lines of the diff-net@."
    (List.length candidates);
  pf "     pins b1 (x=9) and d1 (x=14), as in Fig. 3(a)@.@.";

  (* --- Sec. 3.2: linear conflict set detection ---------------------- *)
  let problem = Pinaccess.Problem.build_panel cfg design ~panel:0 in
  pf "== panel instance: %s ==@." (Pinaccess.Problem.summary problem);
  pf "  (pairwise conflicts would need %d constraints; the maximal-clique@."
    (Pinaccess.Conflict.count_pairwise_conflicts
       problem.Pinaccess.Problem.intervals);
  pf "   sweep needs only %d)@.@." (Pinaccess.Problem.num_cliques problem);

  (* --- Sec. 3.3: the exact ILP -------------------------------------- *)
  let ilp = Pinaccess.Ilp.solve problem in
  pf "== ILP (Formula (1), exact branch-and-bound) ==@.";
  pf "  optimal objective %.3f in %d nodes (proven: %b)@."
    ilp.Pinaccess.Ilp.objective ilp.Pinaccess.Ilp.nodes
    ilp.Pinaccess.Ilp.proven_optimal;
  (match Pinaccess.Ilp.lp_relaxation_bound problem with
  | Some b -> pf "  LP relaxation bound (in-repo simplex): %.3f@." b
  | None -> ());
  pf "@.";

  (* --- Sec. 3.4: Lagrangian relaxation ------------------------------ *)
  let lr = Pinaccess.Lagrangian.solve problem in
  pf "== Lagrangian relaxation (Algorithm 2) ==@.";
  pf "  iterations: %d, best violation count: %d, refinement shrinks: %d@."
    lr.Pinaccess.Lagrangian.iterations lr.Pinaccess.Lagrangian.best_violations
    lr.Pinaccess.Lagrangian.shrinks;
  List.iteri
    (fun i (it : Pinaccess.Lagrangian.iterate) ->
      if i < 5 then
        pf "  iter %d: %d violations, relaxed objective %.2f@."
          it.Pinaccess.Lagrangian.iteration it.Pinaccess.Lagrangian.violations
          it.Pinaccess.Lagrangian.relaxed_objective)
    lr.Pinaccess.Lagrangian.history;
  let lr_obj = Pinaccess.Solution.objective lr.Pinaccess.Lagrangian.solution in
  pf "  LR objective %.3f = %.1f%% of the ILP optimum@." lr_obj
    (100.0 *. lr_obj /. ilp.Pinaccess.Ilp.objective);
  pf "@.";

  (* --- the selections, side by side --------------------------------- *)
  pf "== selected intervals (pin: ILP | LR) ==@.";
  Array.iteri
    (fun slot pid ->
      let ilp_iv =
        Pinaccess.Solution.interval_of_pin ilp.Pinaccess.Ilp.solution pid
      in
      let lr_iv =
        Pinaccess.Solution.interval_of_pin lr.Pinaccess.Lagrangian.solution pid
      in
      ignore slot;
      pf "  pin %d: track %d %-8s | track %d %-8s@." pid ilp_iv.AI.track
        (I.to_string ilp_iv.AI.span)
        lr_iv.AI.track (I.to_string lr_iv.AI.span))
    problem.Pinaccess.Problem.pin_ids;
  let shared =
    List.filter
      (fun (_pid, iv) -> List.length iv.AI.pins > 1)
      (let pao = Pinaccess.Pin_access.optimize ~kind:Pinaccess.Pin_access.Lr design in
       pao.Pinaccess.Pin_access.assignments)
  in
  if shared <> [] then
    pf "@.(c1 and c2 share one interval — the intra-panel connection of Fig. 3(b))@."
