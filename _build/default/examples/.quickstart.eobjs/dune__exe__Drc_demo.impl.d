examples/drc_demo.ml: Array Bytes Char Drc Format Geometry List Netlist Rgrid String
