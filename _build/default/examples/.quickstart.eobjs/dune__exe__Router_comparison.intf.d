examples/router_comparison.mli:
