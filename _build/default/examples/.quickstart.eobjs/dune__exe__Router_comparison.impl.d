examples/router_comparison.ml: Array Format List Metrics Netlist Router Sys Workloads
