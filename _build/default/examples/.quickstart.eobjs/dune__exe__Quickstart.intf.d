examples/quickstart.mli:
