examples/pin_access_demo.mli:
