examples/drc_demo.mli:
