examples/pin_access_demo.ml: Array Format Geometry List Netlist Pinaccess String
