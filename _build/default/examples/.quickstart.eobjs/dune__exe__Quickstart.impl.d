examples/quickstart.ml: Array Format Geometry List Metrics Netlist Pinaccess Render Rgrid Router
