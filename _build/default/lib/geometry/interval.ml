type t = { lo : int; hi : int }

let make ~lo ~hi =
  if lo > hi then
    invalid_arg (Printf.sprintf "Interval.make: lo %d > hi %d" lo hi);
  { lo; hi }

let point x = { lo = x; hi = x }
let lo t = t.lo
let hi t = t.hi
let length t = t.hi - t.lo + 1
let contains t x = t.lo <= x && x <= t.hi
let contains_interval outer inner = outer.lo <= inner.lo && inner.hi <= outer.hi
let overlaps a b = a.lo <= b.hi && b.lo <= a.hi

let intersect a b =
  let lo = max a.lo b.lo and hi = min a.hi b.hi in
  if lo <= hi then Some { lo; hi } else None

let intersection_length a b =
  let lo = max a.lo b.lo and hi = min a.hi b.hi in
  if lo <= hi then hi - lo + 1 else 0

let hull a b = { lo = min a.lo b.lo; hi = max a.hi b.hi }
let shift t d = { lo = t.lo + d; hi = t.hi + d }
let clamp t ~within = intersect t within
let equal a b = a.lo = b.lo && a.hi = b.hi

let compare a b =
  let c = Int.compare a.lo b.lo in
  if c <> 0 then c else Int.compare a.hi b.hi

let to_string t = Printf.sprintf "[%d,%d]" t.lo t.hi
let pp fmt t = Format.pp_print_string fmt (to_string t)
