type t = { xs : Interval.t; ys : Interval.t }

let make ~xs ~ys = { xs; ys }

let of_corners (a : Point.t) (b : Point.t) =
  {
    xs = Interval.make ~lo:(min a.x b.x) ~hi:(max a.x b.x);
    ys = Interval.make ~lo:(min a.y b.y) ~hi:(max a.y b.y);
  }

let of_points = function
  | [] -> invalid_arg "Rect.of_points: empty list"
  | (p : Point.t) :: ps ->
    let fold f init = List.fold_left f init ps in
    let xlo = fold (fun acc (q : Point.t) -> min acc q.x) p.x in
    let xhi = fold (fun acc (q : Point.t) -> max acc q.x) p.x in
    let ylo = fold (fun acc (q : Point.t) -> min acc q.y) p.y in
    let yhi = fold (fun acc (q : Point.t) -> max acc q.y) p.y in
    { xs = Interval.make ~lo:xlo ~hi:xhi; ys = Interval.make ~lo:ylo ~hi:yhi }

let xs t = t.xs
let ys t = t.ys
let width t = Interval.length t.xs
let height t = Interval.length t.ys
let area t = width t * height t
let contains t (p : Point.t) = Interval.contains t.xs p.x && Interval.contains t.ys p.y
let overlaps a b = Interval.overlaps a.xs b.xs && Interval.overlaps a.ys b.ys

let intersect a b =
  match Interval.intersect a.xs b.xs, Interval.intersect a.ys b.ys with
  | Some xs, Some ys -> Some { xs; ys }
  | None, _ | _, None -> None

let hull a b = { xs = Interval.hull a.xs b.xs; ys = Interval.hull a.ys b.ys }

let inflate t ~by ~within =
  let grow i bound =
    let lo = max (Interval.lo i - by) (Interval.lo bound) in
    let hi = min (Interval.hi i + by) (Interval.hi bound) in
    Interval.make ~lo ~hi
  in
  { xs = grow t.xs within.xs; ys = grow t.ys within.ys }

let half_perimeter t = (width t - 1) + (height t - 1)
let equal a b = Interval.equal a.xs b.xs && Interval.equal a.ys b.ys

let to_string t =
  Printf.sprintf "%sx%s" (Interval.to_string t.xs) (Interval.to_string t.ys)

let pp fmt t = Format.pp_print_string fmt (to_string t)
