type t = { x : int; y : int }

let make ~x ~y = { x; y }
let zero = { x = 0; y = 0 }
let add a b = { x = a.x + b.x; y = a.y + b.y }
let sub a b = { x = a.x - b.x; y = a.y - b.y }

let step p d =
  let dx, dy = Axis.Dir.delta d in
  { x = p.x + dx; y = p.y + dy }

let manhattan a b = abs (a.x - b.x) + abs (a.y - b.y)
let equal a b = a.x = b.x && a.y = b.y

let compare a b =
  let c = Int.compare a.x b.x in
  if c <> 0 then c else Int.compare a.y b.y

let to_string p = Printf.sprintf "(%d,%d)" p.x p.y
let pp fmt p = Format.pp_print_string fmt (to_string p)
