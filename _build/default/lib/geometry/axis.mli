(** Routing axes and step directions on a Manhattan grid.

    Unidirectional routing assigns exactly one axis to each metal layer:
    wires on a [Horizontal] layer may only extend along x, wires on a
    [Vertical] layer only along y. *)

type t = Horizontal | Vertical

val equal : t -> t -> bool
val flip : t -> t
val to_string : t -> string
val pp : Format.formatter -> t -> unit

(** The four Manhattan step directions plus layer switches. *)
module Dir : sig
  type axis := t

  type t = East | West | North | South | Up | Down

  val all : t list

  val axis : t -> axis option
  (** [axis d] is the routing axis a planar step [d] moves along;
      [None] for the via directions [Up]/[Down]. *)

  val delta : t -> int * int
  (** [delta d] is the [(dx, dy)] of one grid step; [(0, 0)] for vias. *)

  val opposite : t -> t
  val to_string : t -> string
  val pp : Format.formatter -> t -> unit
end
