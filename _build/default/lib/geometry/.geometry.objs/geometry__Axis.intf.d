lib/geometry/axis.mli: Format
