lib/geometry/rect.ml: Format Interval List Point Printf
