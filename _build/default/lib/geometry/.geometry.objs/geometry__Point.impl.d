lib/geometry/point.ml: Axis Format Int Printf
