lib/geometry/point.mli: Axis Format
