lib/geometry/axis.ml: Format
