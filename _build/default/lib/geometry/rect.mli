(** Axis-aligned rectangles over closed integer ranges, used for net
    bounding boxes, routing blockages and cell outlines. *)

type t = { xs : Interval.t; ys : Interval.t }

val make : xs:Interval.t -> ys:Interval.t -> t
val of_corners : Point.t -> Point.t -> t
(** Bounding rectangle of two (unordered) corner points. *)

val of_points : Point.t list -> t
(** Bounding rectangle of a non-empty point list.
    @raise Invalid_argument on the empty list. *)

val xs : t -> Interval.t
val ys : t -> Interval.t
val width : t -> int
val height : t -> int
val area : t -> int
val contains : t -> Point.t -> bool
val overlaps : t -> t -> bool
val intersect : t -> t -> t option
val hull : t -> t -> t
val inflate : t -> by:int -> within:t -> t
(** Grow by [by] grids on every side, clipped to [within]. *)

val half_perimeter : t -> int
(** HPWL contribution: [width - 1 + height - 1]. *)

val equal : t -> t -> bool
val to_string : t -> string
val pp : Format.formatter -> t -> unit
