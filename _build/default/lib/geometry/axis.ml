type t = Horizontal | Vertical

let equal a b =
  match a, b with
  | Horizontal, Horizontal | Vertical, Vertical -> true
  | Horizontal, Vertical | Vertical, Horizontal -> false

let flip = function Horizontal -> Vertical | Vertical -> Horizontal
let to_string = function Horizontal -> "horizontal" | Vertical -> "vertical"
let pp fmt a = Format.pp_print_string fmt (to_string a)

module Dir = struct
  type t = East | West | North | South | Up | Down

  let all = [ East; West; North; South; Up; Down ]

  let axis = function
    | East | West -> Some Horizontal
    | North | South -> Some Vertical
    | Up | Down -> None

  let delta = function
    | East -> (1, 0)
    | West -> (-1, 0)
    | North -> (0, 1)
    | South -> (0, -1)
    | Up | Down -> (0, 0)

  let opposite = function
    | East -> West
    | West -> East
    | North -> South
    | South -> North
    | Up -> Down
    | Down -> Up

  let to_string = function
    | East -> "east"
    | West -> "west"
    | North -> "north"
    | South -> "south"
    | Up -> "up"
    | Down -> "down"

  let pp fmt d = Format.pp_print_string fmt (to_string d)
end
