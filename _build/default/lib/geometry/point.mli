(** Integer grid points [(x, y)]: [x] indexes columns, [y] indexes
    tracks. *)

type t = { x : int; y : int }

val make : x:int -> y:int -> t
val zero : t
val add : t -> t -> t
val sub : t -> t -> t
val step : t -> Axis.Dir.t -> t
(** [step p d] moves one grid unit along [d]; via directions return [p]. *)

val manhattan : t -> t -> int
val equal : t -> t -> bool
val compare : t -> t -> int
val to_string : t -> string
val pp : Format.formatter -> t -> unit
