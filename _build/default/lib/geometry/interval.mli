(** Closed integer intervals [\[lo, hi\]] on a grid axis.

    The length of an interval is the number of grid points it covers
    ([hi - lo + 1]); the paper's pin access intervals are metal strips
    measured the same way. *)

type t = private { lo : int; hi : int }

val make : lo:int -> hi:int -> t
(** [make ~lo ~hi] requires [lo <= hi]. @raise Invalid_argument otherwise. *)

val point : int -> t
(** [point x] is the one-grid interval [\[x, x\]]. *)

val lo : t -> int
val hi : t -> int

val length : t -> int
(** Number of grid points covered, [hi - lo + 1 >= 1]. *)

val contains : t -> int -> bool
val contains_interval : t -> t -> bool
(** [contains_interval outer inner] *)

val overlaps : t -> t -> bool
(** Closed-interval intersection test: [\[0,3\]] and [\[3,5\]] overlap. *)

val intersect : t -> t -> t option
val intersection_length : t -> t -> int
(** 0 when disjoint. *)

val hull : t -> t -> t
(** Smallest interval covering both arguments. *)

val shift : t -> int -> t
val clamp : t -> within:t -> t option
(** [clamp i ~within] is the part of [i] inside [within], if any. *)

val equal : t -> t -> bool
val compare : t -> t -> int
(** Orders by [lo], then [hi]. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
