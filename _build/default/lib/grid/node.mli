(** Packed node ids for the M2/M3 routing graph.

    A node is [(layer, x, y)] with [layer ∈ {M2, M3}]; ids are dense in
    [0 .. 2*width*height - 1] so per-node state lives in flat arrays. *)

type space = { width : int; height : int }
type t = int

val space_of_design : Netlist.Design.t -> space
val count : space -> int

val pack : space -> layer:Layer.t -> x:int -> y:int -> t
(** @raise Invalid_argument for M1 or off-grid coordinates. *)

val layer : space -> t -> Layer.t
val x : space -> t -> int
val y : space -> t -> int
val unpack : space -> t -> Layer.t * int * int

val in_bounds : space -> x:int -> y:int -> bool
val other_layer : space -> t -> t
(** The via partner: same [(x, y)] on the other routing layer. *)

val to_string : space -> t -> string
