(** A net's realized routing: the set of M2/M3 grid nodes it occupies
    plus its V1 pin connections.  Segments, vias and wirelength are
    derived views used by the DRC checker and the metrics. *)

type seg = { layer : Layer.t; track : int; span : Geometry.Interval.t }
(** M2 segments: [track] is the y track, [span] the x columns.
    M3 segments: [track] is the x column, [span] the y rows. *)

type t = {
  net : Netlist.Net.id;
  nodes : Node.t list;  (** sorted, unique *)
  pin_vias : (Netlist.Pin.id * int * int) list;
      (** V1 cut landings [(pin, x, y)] connecting M1 pins up to M2 *)
}

val make :
  space:Node.space ->
  net:Netlist.Net.id ->
  nodes:Node.t list ->
  pin_vias:(Netlist.Pin.id * int * int) list ->
  t
(** Sorts and dedupes [nodes]. *)

val add_nodes : space:Node.space -> t -> Node.t list -> t

val segments : space:Node.space -> t -> seg list
(** Maximal straight runs per layer, in deterministic order. *)

val v2_vias : space:Node.space -> t -> (int * int) list
(** Grid positions where the net occupies both M2 and M3 (a V2 cut). *)

val via_positions : space:Node.space -> t -> (int * int) list
(** V1 and V2 cut positions (with duplicates when stacked). *)

val wirelength : space:Node.space -> t -> int
(** Total grid edge length over all segments. *)

val via_count : space:Node.space -> t -> int
(** V1 count + V2 count. *)
