(** Metal layers of the unidirectional stack used by the paper:
    M1 carries pins only, M2 routes horizontally, M3 vertically. *)

type t = M1 | M2 | M3

val axis : t -> Geometry.Axis.t option
(** Routing axis; [None] for M1 (no routing). *)

val routing_layers : t list
val to_string : t -> string
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
