type space = { width : int; height : int }
type t = int

let space_of_design design =
  { width = Netlist.Design.width design; height = Netlist.Design.height design }

let count s = 2 * s.width * s.height
let plane s = s.width * s.height
let in_bounds s ~x ~y = x >= 0 && x < s.width && y >= 0 && y < s.height

let pack s ~layer ~x ~y =
  if not (in_bounds s ~x ~y) then
    invalid_arg (Printf.sprintf "Node.pack: (%d,%d) off-grid" x y);
  let base =
    match layer with
    | Layer.M2 -> 0
    | Layer.M3 -> plane s
    | Layer.M1 -> invalid_arg "Node.pack: M1 has no routing nodes"
  in
  base + (y * s.width) + x

let layer s t = if t < plane s then Layer.M2 else Layer.M3
let x s t = t mod plane s mod s.width
let y s t = t mod plane s / s.width

let unpack s t = (layer s t, x s t, y s t)

let other_layer s t = if t < plane s then t + plane s else t - plane s

let to_string s t =
  let l, px, py = unpack s t in
  Printf.sprintf "%s(%d,%d)" (Layer.to_string l) px py
