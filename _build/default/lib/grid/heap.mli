(** Array-based binary min-heap of [(priority, payload)] pairs used by
    the maze router's Dijkstra loop.  Stale entries are tolerated
    (decrease-key by reinsertion). *)

type t

val create : ?capacity:int -> unit -> t
val clear : t -> unit
val is_empty : t -> bool
val size : t -> int
val push : t -> float -> int -> unit
val pop : t -> (float * int) option
