lib/grid/node.ml: Layer Netlist Printf
