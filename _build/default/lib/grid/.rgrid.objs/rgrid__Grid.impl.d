lib/grid/grid.ml: Array Bytes Geometry Layer List Netlist Node Printf
