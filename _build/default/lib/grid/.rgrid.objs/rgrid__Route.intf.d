lib/grid/route.mli: Geometry Layer Netlist Node
