lib/grid/route.ml: Geometry Hashtbl Int Layer List Netlist Node Option
