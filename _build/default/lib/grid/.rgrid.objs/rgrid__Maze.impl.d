lib/grid/maze.ml: Array Cost Geometry Grid Heap Layer List Node
