lib/grid/layer.mli: Format Geometry
