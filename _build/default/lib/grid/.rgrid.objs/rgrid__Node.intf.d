lib/grid/node.mli: Layer Netlist
