lib/grid/heap.ml: Array
