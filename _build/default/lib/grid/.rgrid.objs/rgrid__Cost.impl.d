lib/grid/cost.ml:
