lib/grid/cost.mli:
