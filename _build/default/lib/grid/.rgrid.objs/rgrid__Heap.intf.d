lib/grid/heap.mli:
