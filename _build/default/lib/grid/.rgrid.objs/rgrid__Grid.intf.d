lib/grid/grid.mli: Netlist Node
