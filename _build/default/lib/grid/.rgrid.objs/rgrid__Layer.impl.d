lib/grid/layer.ml: Format Geometry
