lib/grid/maze.mli: Cost Geometry Grid Node
