(** Mutable routing-grid state: static blockages, exclusive pin/partial-
    route ownership, per-node occupancy, via pressure and PathFinder
    history costs. *)

type t

val create : Netlist.Design.t -> t
(** Fresh grid with the design's M2/M3 blockages applied. *)

val space : t -> Node.space
val design : t -> Netlist.Design.t

(** {2 Static state} *)

val blocked : t -> Node.t -> bool
val set_blocked : t -> Node.t -> unit

val solid : t -> Node.t -> bool
(** Real pre-placed metal (assigned pin access intervals): owned *and*
    physically present, so clearance rules apply against it even before
    its net is routed.  Plain pin ownership is only a routing blockage
    — the M2 metal over a pin materializes where the V1 lands. *)

val set_solid : t -> Node.t -> unit

val owner : t -> Node.t -> int
(** Exclusive owner net of a node ([-1] = unowned).  Pins and assigned
    pin access intervals own their nodes: other nets treat them as
    blockages (paper Sec. 4). *)

val set_owner : t -> Node.t -> net:int -> unit
(** First owner wins; re-owning by the same net is a no-op.
    @raise Invalid_argument when owned by a different net. *)

val clear_owner : t -> Node.t -> net:int -> unit
(** Release a node owned by [net] (no-op when unowned or owned by
    another net); used when a hard-committed route is ripped up. *)

val passable : t -> net:int -> Node.t -> bool
(** Not blocked and not exclusively owned by a different net. *)

(** {2 Occupancy (routing usage)} *)

val occ : t -> Node.t -> int
val add_usage : t -> net:int -> Node.t -> unit
val remove_usage : t -> net:int -> Node.t -> unit
val overused : t -> Node.t -> bool
(** More than one distinct net uses the node (capacity 1). *)

val congested_nodes : t -> int
(** Number of overused nodes — the paper's "congested routing grids"
    (Fig. 7(b)). *)

val nets_using : t -> Node.t -> int list

(** {2 Via pressure and forbidden via grids} *)

val via_pressure : t -> x:int -> y:int -> int
val add_via : t -> x:int -> y:int -> unit
val remove_via : t -> x:int -> y:int -> unit

val via_forbidden : t -> x:int -> y:int -> bool
(** A via grid is forbidden when a neighbouring grid already carries a
    via (cut-mask spacing) or touches a blockage. *)

(** {2 History (negotiation)} *)

val history : t -> Node.t -> float
val add_history : t -> increment:float -> unit
(** Bump the history cost of every currently-overused node. *)

val add_history_at : t -> Node.t -> float -> unit
(** Bump one node's history cost (DRC-driven rip-up marks the exact
    violation grids this way). *)
