module I = Geometry.Interval

type seg = { layer : Layer.t; track : int; span : Geometry.Interval.t }

type t = {
  net : Netlist.Net.id;
  nodes : Node.t list;
  pin_vias : (Netlist.Pin.id * int * int) list;
}

let make ~space:_ ~net ~nodes ~pin_vias =
  { net; nodes = List.sort_uniq Int.compare nodes; pin_vias }

let add_nodes ~space:_ t nodes =
  { t with nodes = List.sort_uniq Int.compare (List.rev_append nodes t.nodes) }

(* Group nodes of one layer into maximal runs along the layer's axis.
   For M2 the run key is the y track and the position is x; for M3 the
   key is the x column and the position is y. *)
let runs ~space t layer =
  let positions = Hashtbl.create 32 in
  List.iter
    (fun node ->
      if Layer.equal (Node.layer space node) layer then begin
        let key, pos =
          match layer with
          | Layer.M2 -> (Node.y space node, Node.x space node)
          | Layer.M3 -> (Node.x space node, Node.y space node)
          | Layer.M1 -> assert false
        in
        let cur = Option.value ~default:[] (Hashtbl.find_opt positions key) in
        Hashtbl.replace positions key (pos :: cur)
      end)
    t.nodes;
  let keys = Hashtbl.fold (fun k _ acc -> k :: acc) positions [] in
  List.sort Int.compare keys
  |> List.concat_map (fun key ->
         let ps = List.sort Int.compare (Hashtbl.find positions key) in
         let rec collect acc start prev = function
           | [] -> List.rev ((start, prev) :: acc)
           | p :: rest ->
             if p = prev + 1 then collect acc start p rest
             else collect ((start, prev) :: acc) p p rest
         in
         match ps with
         | [] -> []
         | p :: rest ->
           collect [] p p rest
           |> List.map (fun (lo, hi) ->
                  { layer; track = key; span = I.make ~lo ~hi }))

let segments ~space t = runs ~space t Layer.M2 @ runs ~space t Layer.M3

let v2_vias ~space t =
  let m2 = Hashtbl.create 32 in
  List.iter
    (fun node ->
      if Layer.equal (Node.layer space node) Layer.M2 then
        Hashtbl.replace m2 (Node.x space node, Node.y space node) ())
    t.nodes;
  List.filter_map
    (fun node ->
      if Layer.equal (Node.layer space node) Layer.M3 then begin
        let pos = (Node.x space node, Node.y space node) in
        if Hashtbl.mem m2 pos then Some pos else None
      end
      else None)
    t.nodes
  |> List.sort compare

let via_positions ~space t =
  List.map (fun (_pin, x, y) -> (x, y)) t.pin_vias @ v2_vias ~space t

let wirelength ~space t =
  List.fold_left
    (fun acc seg -> acc + (I.length seg.span - 1))
    0 (segments ~space t)

let via_count ~space t =
  List.length t.pin_vias + List.length (v2_vias ~space t)
