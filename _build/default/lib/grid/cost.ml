type t = {
  base_cost : float;
  via_cost : float;
  forbidden_via_cost : float;
  spacing_penalty : float;
  hard_spacing : bool;
  history_increment : float;
  pfac_initial : float;
  pfac_growth : float;
  max_ripup_iterations : int;
  bbox_margin : int;
  retry_margins : int list;
}

let default =
  {
    base_cost = 1.0;
    via_cost = 3.0;
    forbidden_via_cost = 10.0;
    spacing_penalty = 4.0;
    hard_spacing = false;
    history_increment = 1.0;
    pfac_initial = 0.5;
    pfac_growth = 1.6;
    max_ripup_iterations = 16;
    bbox_margin = 6;
    retry_margins = [ 16; 40; 120 ];
  }
