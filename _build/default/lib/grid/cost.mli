(** The negotiation-congestion cost model (paper Sec. 5 settings plus
    PathFinder history/present terms). *)

type t = {
  base_cost : float;  (** metal and via grids; paper: 1 *)
  via_cost : float;
      (** extra cost of switching layers: a via consumes the cut
          landing plus adjacent-grid slack, so hopping to M3 must not
          be free (via minimization, paper Sec. 1/[23]) *)
  forbidden_via_cost : float;
      (** extra cost of a via grid flagged forbidden (near another
          net's via or a blockage edge); paper: 10 *)
  spacing_penalty : float;
      (** soft cost of a grid whose along-track neighbour carries
          another net's metal — discourages sub-minimum line-end gaps
          (the grid-cost design-rule mitigation of [21]) *)
  hard_spacing : bool;
      (** treat sub-minimum clearance and forbidden via grids as
          impassable instead of merely expensive: the conservative
          legalize-as-you-go behaviour of the sequential baseline
          [12] *)
  history_increment : float;
      (** added to every overused node after each rip-up iteration *)
  pfac_initial : float;
  pfac_growth : float;
      (** present-sharing factor: [pfac_initial * pfac_growth^i] at
          rip-up iteration [i]; 0 during the independent stage *)
  max_ripup_iterations : int;
  bbox_margin : int;  (** search-window inflation around the net bbox *)
  retry_margins : int list;
      (** additional inflations tried when a search fails *)
}

val default : t
