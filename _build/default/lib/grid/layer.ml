type t = M1 | M2 | M3

let axis = function
  | M1 -> None
  | M2 -> Some Geometry.Axis.Horizontal
  | M3 -> Some Geometry.Axis.Vertical

let routing_layers = [ M2; M3 ]
let to_string = function M1 -> "M1" | M2 -> "M2" | M3 -> "M3"

let equal a b =
  match a, b with
  | M1, M1 | M2, M2 | M3, M3 -> true
  | (M1 | M2 | M3), _ -> false

let pp fmt t = Format.pp_print_string fmt (to_string t)
