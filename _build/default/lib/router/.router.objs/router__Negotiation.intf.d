lib/router/negotiation.mli: Drc Net_router Rgrid
