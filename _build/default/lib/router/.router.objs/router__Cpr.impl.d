lib/router/cpr.ml: Array Drc Flow Negotiation Pinaccess Rgrid Spec_builder
