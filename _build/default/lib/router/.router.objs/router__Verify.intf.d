lib/router/verify.mli: Flow Netlist Rgrid
