lib/router/sequential.mli: Drc Flow Netlist Rgrid
