lib/router/flow.ml: Array Drc Geometry List Netlist Option Pinaccess Rgrid
