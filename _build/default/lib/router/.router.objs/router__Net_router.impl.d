lib/router/net_router.ml: Array Geometry Hashtbl Int List Netlist Option Rgrid
