lib/router/spec_builder.mli: Net_router Pinaccess Rgrid
