lib/router/spec_builder.ml: Array Geometry Hashtbl List Net_router Netlist Option Pinaccess Printf Rgrid
