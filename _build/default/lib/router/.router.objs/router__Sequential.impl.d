lib/router/sequential.ml: Array Drc Flow Fun Geometry List Negotiation Net_router Netlist Option Pinaccess Rgrid
