lib/router/net_router.mli: Geometry Netlist Rgrid
