lib/router/verify.ml: Array Flow Hashtbl Int List Netlist Printf Rgrid
