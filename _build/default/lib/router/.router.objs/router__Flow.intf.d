lib/router/flow.mli: Drc Netlist Pinaccess Rgrid
