lib/router/negotiation.ml: Array Drc Float Geometry Int List Net_router Netlist Option Rgrid
