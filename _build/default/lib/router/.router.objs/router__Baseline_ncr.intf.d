lib/router/baseline_ncr.mli: Drc Flow Netlist Rgrid
