lib/router/cpr.mli: Drc Flow Netlist Pinaccess Rgrid
