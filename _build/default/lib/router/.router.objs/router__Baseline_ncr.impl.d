lib/router/baseline_ncr.ml: Array Drc Flow Negotiation Pinaccess Rgrid Spec_builder
