(** CPR — the concurrent pin access router (paper Sec. 4).

    Flow: concurrent pin access optimization on M2 (LR by default, ILP
    optionally) → selected intervals become partial routes and
    exclusive blockages → negotiation-congestion routing → line-end
    extension → DRC accounting. *)

type config = {
  pao_kind : Pinaccess.Pin_access.solver_kind;
  pao : Pinaccess.Pin_access.config;
  cost : Rgrid.Cost.t;
  rules : Drc.Rules.t;
}

val default_config : config

val run : ?config:config -> Netlist.Design.t -> Flow.t

val run_with_pao : ?config:config -> Netlist.Design.t -> Pinaccess.Pin_access.t -> Flow.t
(** Route with an externally computed pin access result (used by the
    Fig. 7(a) bench to compare LR-based and ILP-based PAO under one
    routing engine). *)
