(** Derives per-net routing specs from a design, with or without pin
    access optimization, and claims exclusive grid ownership for pins
    and partial routes (paper Sec. 4: while routing a net, pins and
    intervals of every other net are blockages). *)

val build :
  Rgrid.Grid.t ->
  pao:Pinaccess.Pin_access.t option ->
  Net_router.spec array
(** One spec per net (indexed by net id).

    Without PAO each pin is its own component: the M2 nodes directly
    over the pin shape.  With PAO each *assigned interval* is a
    component (a partial route) and the pin connects through a V1
    inside it; a shared interval makes its pins a single component.

    Ownership: interval nodes are claimed first (selected intervals
    never overlap), then pin nodes that are still free — a maximum
    interval of another net may legitimately cover a pin's column on
    one of its tracks, in which case the pin accesses through a
    different track (Fig. 2). *)
