module Node = Rgrid.Node
module Layer = Rgrid.Layer
module Route = Rgrid.Route
module Design = Netlist.Design

type issue =
  | Unrouted of Netlist.Net.id
  | Pin_not_connected of Netlist.Net.id * Netlist.Pin.id
  | Disconnected of Netlist.Net.id * int

let issue_to_string = function
  | Unrouted net -> Printf.sprintf "net %d unrouted" net
  | Pin_not_connected (net, pin) ->
    Printf.sprintf "net %d: pin %d has no V1 into the metal" net pin
  | Disconnected (net, k) ->
    Printf.sprintf "net %d: metal splits into %d components" net k

(* Tiny union-find over dense element ids. *)
module Uf = struct

  let create n = Array.init n (fun i -> i)

  let rec find t i = if t.(i) = i then i else find t t.(i)

  let union t a b =
    let ra = find t a and rb = find t b in
    if ra <> rb then t.(ra) <- rb

  let components t used =
    List.sort_uniq Int.compare (List.map (find t) used) |> List.length
end

let net_connected design (route : Route.t) =
  let space = Node.space_of_design design in
  let net = route.Route.net in
  let pins = Design.net_pins design net in
  let nodes = route.Route.nodes in
  (* element ids: 0..n-1 for metal nodes, n.. for the net's pins *)
  let index = Hashtbl.create (List.length nodes * 2) in
  List.iteri (fun i node -> Hashtbl.replace index node i) nodes;
  let n = List.length nodes in
  let pin_elt = Hashtbl.create 8 in
  List.iteri
    (fun i (p : Netlist.Pin.t) -> Hashtbl.replace pin_elt p.Netlist.Pin.id (n + i))
    pins;
  let uf = Uf.create (n + List.length pins) in
  (* lateral / vertical / via adjacency between metal grids *)
  List.iter
    (fun node ->
      let i = Hashtbl.find index node in
      let x = Node.x space node and y = Node.y space node in
      let neighbour nx ny layer =
        if Node.in_bounds space ~x:nx ~y:ny then
          match Hashtbl.find_opt index (Node.pack space ~layer ~x:nx ~y:ny) with
          | Some j -> Uf.union uf i j
          | None -> ()
      in
      (match Node.layer space node with
      | Layer.M2 -> neighbour (x + 1) y Layer.M2
      | Layer.M3 -> neighbour x (y + 1) Layer.M3
      | Layer.M1 -> ());
      (* a V2 joins stacked grids *)
      match Hashtbl.find_opt index (Node.other_layer space node) with
      | Some j -> Uf.union uf i j
      | None -> ())
    nodes;
  (* V1 landings join the pin's M1 shape to the metal *)
  let missing = ref None in
  List.iter
    (fun (pid, x, y) ->
      match
        ( Hashtbl.find_opt pin_elt pid,
          Hashtbl.find_opt index (Node.pack space ~layer:Layer.M2 ~x ~y) )
      with
      | Some pe, Some me -> Uf.union uf pe me
      | Some _, None | None, _ -> ())
    route.Route.pin_vias;
  List.iter
    (fun (p : Netlist.Pin.t) ->
      let landed =
        List.exists (fun (pid, _, _) -> pid = p.Netlist.Pin.id) route.Route.pin_vias
      in
      if (not landed) && !missing = None then
        missing := Some p.Netlist.Pin.id)
    pins;
  match !missing with
  | Some pid -> Error (Pin_not_connected (net, pid))
  | None ->
    let used = List.init (n + List.length pins) (fun i -> i) in
    let k = Uf.components uf used in
    if k = 1 then Ok () else Error (Disconnected (net, k))

let check_flow (flow : Flow.t) =
  let design = flow.Flow.design in
  let issues = ref [] in
  Array.iteri
    (fun net clean ->
      if clean then
        match flow.Flow.routes.(net) with
        | None -> issues := Unrouted net :: !issues
        | Some route ->
          (match net_connected design route with
          | Ok () -> ()
          | Error issue -> issues := issue :: !issues))
    flow.Flow.clean;
  List.rev !issues
