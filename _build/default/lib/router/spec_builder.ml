module I = Geometry.Interval
module Node = Rgrid.Node
module Grid = Rgrid.Grid
module Layer = Rgrid.Layer
module Pin = Netlist.Pin
module Design = Netlist.Design

let claim grid ~net node =
  if Grid.owner grid node = -1 && not (Grid.blocked grid node) then
    Grid.set_owner grid node ~net

let pin_shape_nodes space (p : Pin.t) =
  List.init (I.length p.tracks) (fun i ->
      Node.pack space ~layer:Layer.M2 ~x:p.x ~y:(I.lo p.tracks + i))

let interval_nodes space (iv : Pinaccess.Access_interval.t) =
  List.init
    (I.length iv.Pinaccess.Access_interval.span)
    (fun i ->
      Node.pack space ~layer:Layer.M2
        ~x:(I.lo iv.Pinaccess.Access_interval.span + i)
        ~y:iv.Pinaccess.Access_interval.track)

let build grid ~pao =
  let design = Grid.design grid in
  let space = Grid.space grid in
  let nets = Design.nets design in
  let specs =
    match pao with
    | None ->
      Array.map
        (fun (net : Netlist.Net.t) ->
          let pins = Design.net_pins design net.Netlist.Net.id in
          let components =
            List.map
              (fun (p : Pin.t) ->
                {
                  Net_router.nodes = pin_shape_nodes space p;
                  anchors = [ { Net_router.pin = p.Pin.id; landing = None } ];
                })
              pins
          in
          Net_router.spec_of_components ~space ~net:net.Netlist.Net.id
            components)
        nets
    | Some pa ->
      let by_net = Array.make (Array.length nets) [] in
      List.iter
        (fun (pid, iv) ->
          let net = iv.Pinaccess.Access_interval.net in
          by_net.(net) <- (pid, iv) :: by_net.(net))
        pa.Pinaccess.Pin_access.assignments;
      Array.map
        (fun (net : Netlist.Net.t) ->
          let id = net.Netlist.Net.id in
          (* group the net's pins by their assigned interval: a shared
             interval becomes one component with several anchors *)
          let groups = Hashtbl.create 8 in
          List.iter
            (fun (pid, (iv : Pinaccess.Access_interval.t)) ->
              let key = (iv.track, I.lo iv.span, I.hi iv.span) in
              let cur =
                match Hashtbl.find_opt groups key with
                | Some (_, pids) -> pids
                | None -> []
              in
              Hashtbl.replace groups key (iv, pid :: cur))
            by_net.(id);
          if Hashtbl.length groups = 0 then
            invalid_arg
              (Printf.sprintf "Spec_builder.build: net %d has no assignment" id);
          let components =
            Hashtbl.fold
              (fun _key ((iv : Pinaccess.Access_interval.t), pids) acc ->
                let anchors =
                  List.map
                    (fun pid ->
                      let p = Design.pin design pid in
                      {
                        Net_router.pin = pid;
                        landing =
                          Some
                            (Node.pack space ~layer:Layer.M2 ~x:p.Pin.x
                               ~y:iv.track);
                      })
                    pids
                in
                { Net_router.nodes = interval_nodes space iv; anchors } :: acc)
              groups []
          in
          Net_router.spec_of_components ~space ~net:id components)
        nets
  in
  (* ownership: components (intervals or pin shapes) first, then every
     pin shape that is still free; interval metal is physically present
     (partial routes), so it is also marked solid for clearance *)
  Array.iter
    (fun (spec : Net_router.spec) ->
      List.iter
        (fun (c : Net_router.component) ->
          List.iter
            (fun node ->
              claim grid ~net:spec.Net_router.net node;
              if Option.is_some pao then Grid.set_solid grid node)
            c.Net_router.nodes)
        spec.Net_router.components)
    specs;
  Array.iter
    (fun (p : Pin.t) ->
      List.iter (claim grid ~net:p.net) (pin_shape_nodes space p))
    (Design.pins design);
  specs
