(** Post-routing electrical verification, independent of the router's
    own bookkeeping: reconstructs each net's conductive graph — M2 runs
    join laterally, M3 runs vertically, stacked M2/M3 grids join
    through V2 cuts, V1 landings join through the M1 pin shape they
    contact — and checks that every pin of the net is on one connected
    component. *)

type issue =
  | Unrouted of Netlist.Net.id
  | Pin_not_connected of Netlist.Net.id * Netlist.Pin.id
      (** the pin has no V1 landing into the net's metal *)
  | Disconnected of Netlist.Net.id * int
      (** the net's metal splits into this many components *)

val net_connected :
  Netlist.Design.t -> Rgrid.Route.t -> (unit, issue) result
(** Verify one route against its net's pins. *)

val check_flow : Flow.t -> issue list
(** Verify every *clean* net of a finished flow; the paper counts only
    those as routed, so only those must be electrically sound. *)

val issue_to_string : issue -> string
