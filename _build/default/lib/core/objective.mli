(** The profit function of the weighted interval assignment problem
    (paper Sec. 3.3).

    The paper uses [f(I) = sqrt(len I)]: concave, so it trades a little
    total length for balance across pins.  The linear alternative is
    kept for the ablation bench. *)

type weighting = Sqrt_length | Linear_length

val default : weighting
(** [Sqrt_length], the paper's choice. *)

val f : weighting -> int -> float
(** [f w len] is the profit of a single-pin interval of length [len]. *)

val profit : weighting -> Access_interval.t -> float
(** Objective coefficient of an interval: [f (length I)] counted once
    per pin served (objective (1a) counts shared intervals multiple
    times). *)

val weighting_to_string : weighting -> string
