lib/core/interval_gen.mli: Access_interval Geometry Netlist Objective
