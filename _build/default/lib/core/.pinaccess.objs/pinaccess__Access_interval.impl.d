lib/core/access_interval.ml: Format Geometry Int List Netlist String
