lib/core/ilp.ml: Array Conflict List Option Problem Solution Solver
