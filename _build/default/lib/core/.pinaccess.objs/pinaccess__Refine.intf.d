lib/core/refine.mli: Solution
