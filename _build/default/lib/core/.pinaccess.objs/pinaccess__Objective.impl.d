lib/core/objective.ml: Access_interval List
