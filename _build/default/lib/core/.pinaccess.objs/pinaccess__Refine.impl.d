lib/core/refine.ml: Access_interval Array Conflict Float Hashtbl Int List Option Problem Solution
