lib/core/problem.ml: Access_interval Array Conflict Hashtbl Int Interval_gen List Netlist Objective Printf
