lib/core/solution.mli: Access_interval Conflict Netlist Problem
