lib/core/solution.ml: Access_interval Array Conflict List Printf Problem
