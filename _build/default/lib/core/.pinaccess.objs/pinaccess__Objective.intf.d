lib/core/objective.mli: Access_interval
