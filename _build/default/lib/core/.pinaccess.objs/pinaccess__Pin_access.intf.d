lib/core/pin_access.mli: Access_interval Interval_gen Lagrangian Netlist
