lib/core/conflict.ml: Access_interval Array Geometry Hashtbl Int List Option
