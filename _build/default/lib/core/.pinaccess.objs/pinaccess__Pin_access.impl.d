lib/core/pin_access.ml: Access_interval Array Hashtbl Ilp Int Interval_gen Lagrangian List Netlist Option Printf Problem Solution Solver Unix_time
