lib/core/ilp.mli: Problem Solution Solver
