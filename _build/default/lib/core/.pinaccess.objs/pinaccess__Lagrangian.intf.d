lib/core/lagrangian.mli: Problem Solution
