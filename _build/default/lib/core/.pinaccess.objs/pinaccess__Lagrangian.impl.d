lib/core/lagrangian.ml: Access_interval Array Conflict Float Geometry Int List Problem Refine Solution
