lib/core/conflict.mli: Access_interval Geometry
