lib/core/problem.mli: Access_interval Conflict Hashtbl Interval_gen Netlist
