lib/core/access_interval.mli: Format Geometry Netlist
