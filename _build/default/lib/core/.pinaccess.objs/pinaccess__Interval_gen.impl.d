lib/core/interval_gen.ml: Access_interval Array Geometry Hashtbl Int List Netlist Objective
