(** Pin access intervals (paper Sec. 3.1).

    A pin access interval is a horizontal M2 metal strip
    [(track, span)] that covers the column of every pin it serves.  A
    router later treats the selected interval of a pin as a partial
    route: any grid of the strip is a legal via landing point for that
    pin's net. *)

type id = int

type kind =
  | Minimum  (** smallest strip covering the pin; always conflict-free *)
  | Regular

type t = {
  id : id;
  net : Netlist.Net.id;
  pins : Netlist.Pin.id list;
      (** same-net pins served: every pin covers [track] and has its
          column inside [span]; >1 pin encodes an intra-panel
          connection (Fig. 3(b)) *)
  track : int;
  span : Geometry.Interval.t;
  kind : kind;
}

val make :
  id:id ->
  net:Netlist.Net.id ->
  pins:Netlist.Pin.id list ->
  track:int ->
  span:Geometry.Interval.t ->
  kind:kind ->
  t

val length : t -> int
val is_minimum : t -> bool
val serves : t -> Netlist.Pin.id -> bool
val overlaps : t -> t -> bool
(** Same track and intersecting spans. *)

val compare_geometry : t -> t -> int
(** Orders by [(track, span)]; used for deduplication. *)

val pp : Format.formatter -> t -> unit
