(** Top-level concurrent pin access optimization: panel-by-panel (the
    paper's production mode) or over a combined multi-panel instance
    (the Fig. 6 scalability mode). *)

type solver_kind = Ilp | Lr

type config = {
  gen : Interval_gen.config;
  lr : Lagrangian.config;
  ilp_time_limit : float option;
  ilp_warm_start : bool;
      (** seed the ILP incumbent with the LR solution *)
}

val default_config : config

type panel_report = {
  panel : int;
  pins : int;
  intervals : int;
  cliques : int;
  objective : float;
  lr_iterations : int;  (** 0 for the pure-ILP path *)
  proven_optimal : bool;  (** always true for the LR path's feasibility *)
}

type t = {
  design : Netlist.Design.t;
  kind : solver_kind;
  assignments : (Netlist.Pin.id * Access_interval.t) list;
      (** conflict-free: one interval per pin of the design *)
  objective : float;  (** summed over panels *)
  reports : panel_report list;
  elapsed : float;  (** wall-clock seconds *)
}

val optimize : ?config:config -> kind:solver_kind -> Netlist.Design.t -> t
(** Solve every panel of the design independently. *)

val optimize_combined :
  ?config:config -> kind:solver_kind -> Netlist.Design.t -> panels:int list -> t
(** Solve the given panels as a single instance (used by the Fig. 6
    sweep, where instance size is the experiment variable). *)

val interval_of_pin : t -> Netlist.Pin.id -> Access_interval.t option

val validate : ?complete:bool -> t -> unit
(** Re-checks the global invariants: the interval of each assignment
    serves its pin, no pin is assigned twice, and no two assigned
    intervals of different nets overlap.  With [complete] (default)
    additionally every pin of the design must be assigned — pass
    [~complete:false] for [optimize_combined] over a panel subset.
    @raise Failure on violation. *)

val solver_kind_to_string : solver_kind -> string
