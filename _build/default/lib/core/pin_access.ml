type solver_kind = Ilp | Lr

type config = {
  gen : Interval_gen.config;
  lr : Lagrangian.config;
  ilp_time_limit : float option;
  ilp_warm_start : bool;
}

let default_config =
  {
    gen = Interval_gen.default_config;
    lr = Lagrangian.default_config;
    ilp_time_limit = None;
    ilp_warm_start = true;
  }

type panel_report = {
  panel : int;
  pins : int;
  intervals : int;
  cliques : int;
  objective : float;
  lr_iterations : int;
  proven_optimal : bool;
}

type t = {
  design : Netlist.Design.t;
  kind : solver_kind;
  assignments : (Netlist.Pin.id * Access_interval.t) list;
  objective : float;
  reports : panel_report list;
  elapsed : float;
}

let solver_kind_to_string = function Ilp -> "ILP" | Lr -> "LR"

let solve_problem config kind ~panel (problem : Problem.t) =
  let solution, lr_iterations, proven_optimal =
    match kind with
    | Lr ->
      let r = Lagrangian.solve ~config:config.lr problem in
      (r.Lagrangian.solution, r.Lagrangian.iterations, true)
    | Ilp ->
      let warm_start_of p =
        if config.ilp_warm_start then
          let lr = Lagrangian.solve ~config:config.lr p in
          if Solution.is_conflict_free lr.Lagrangian.solution then
            Some lr.Lagrangian.solution
          else None
        else None
      in
      let solve p =
        Ilp.solve ?time_limit:config.ilp_time_limit
          ?warm_start:(warm_start_of p) p
      in
      (try
         let r = solve problem in
         (r.Ilp.solution, 0, r.Ilp.proven_optimal)
       with Solver.Milp.Infeasible ->
         (* the design-rule clearance can make strict feasibility
            impossible (adjacent same-track pins); fall back to the
            paper's original conflict relation for this instance *)
         let relaxed =
           {
             problem.Problem.config with
             Interval_gen.clearance = 0;
           }
         in
         let problem0 =
           Problem.of_intervals relaxed problem.Problem.design
             problem.Problem.intervals
         in
         let r = solve problem0 in
         (r.Ilp.solution, 0, r.Ilp.proven_optimal))
  in
  let objective = Solution.objective solution in
  let report =
    {
      panel;
      pins = Problem.num_pins problem;
      intervals = Problem.num_intervals problem;
      cliques = Problem.num_cliques problem;
      objective;
      lr_iterations;
      proven_optimal;
    }
  in
  let assignments =
    Array.to_list
      (Array.mapi
         (fun slot id ->
           (problem.Problem.pin_ids.(slot), problem.Problem.intervals.(id)))
         solution.Solution.assignment)
  in
  (assignments, objective, report)

let run ?(config = default_config) ~kind design problems =
  let start = Unix_time.now () in
  let assignments, objective, reports =
    List.fold_left
      (fun (acc_a, acc_o, acc_r) (panel, problem) ->
        if Problem.num_pins problem = 0 then (acc_a, acc_o, acc_r)
        else begin
          let a, o, r = solve_problem config kind ~panel problem in
          (List.rev_append a acc_a, acc_o +. o, r :: acc_r)
        end)
      ([], 0.0, []) problems
  in
  {
    design;
    kind;
    assignments = List.rev assignments;
    objective;
    reports = List.rev reports;
    elapsed = Unix_time.now () -. start;
  }

let optimize ?(config = default_config) ~kind design =
  let problems =
    List.init (Netlist.Design.num_panels design) (fun panel ->
        (panel, Problem.build_panel config.gen design ~panel))
  in
  run ~config ~kind design problems

let optimize_combined ?(config = default_config) ~kind design ~panels =
  let problem = Problem.build_panels config.gen design ~panels in
  run ~config ~kind design [ (-1, problem) ]

let interval_of_pin t pid =
  List.assoc_opt pid t.assignments

let validate ?(complete = true) t =
  let design = t.design in
  let num_pins = Array.length (Netlist.Design.pins design) in
  let seen = Array.make num_pins false in
  List.iter
    (fun (pid, iv) ->
      if seen.(pid) then failwith "Pin_access.validate: pin assigned twice";
      seen.(pid) <- true;
      if not (Access_interval.serves iv pid) then
        failwith "Pin_access.validate: interval does not serve its pin")
    t.assignments;
  if complete then
    Array.iteri
      (fun pid assigned ->
        if not assigned then
          failwith
            (Printf.sprintf "Pin_access.validate: pin %d unassigned" pid))
      seen;
  (* no overlap among assigned intervals of different nets (Problem 1) *)
  let distinct =
    List.sort_uniq
      (fun (a : Access_interval.t) b -> Int.compare a.id b.id)
      (List.map snd t.assignments)
  in
  let by_track = Hashtbl.create 64 in
  List.iter
    (fun (iv : Access_interval.t) ->
      let cur =
        Option.value ~default:[] (Hashtbl.find_opt by_track iv.track)
      in
      Hashtbl.replace by_track iv.track (iv :: cur))
    distinct;
  Hashtbl.iter
    (fun _track ivs ->
      let arr = Array.of_list ivs in
      let n = Array.length arr in
      for i = 0 to n - 1 do
        for j = i + 1 to n - 1 do
          let a = arr.(i) and b = arr.(j) in
          if
            a.Access_interval.net <> b.Access_interval.net
            && Access_interval.overlaps a b
          then failwith "Pin_access.validate: different-net intervals overlap"
        done
      done)
    by_track
