(** Monotonic-enough process timing without a [unix] dependency.

    The paper reports "cpu(s)"; [Sys.time] gives processor seconds,
    which is what the benches print. *)

val now : unit -> float
val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f] and returns its result with the elapsed cpu
    seconds. *)
