(** Greedy conflict removal (Algorithm 2, line 11).

    For each still-violated conflict set, the highest-gain selected
    interval is kept and every other selected interval is shrunk to the
    minimum interval of each pin it serves.  Minimum intervals are
    pairwise disjoint, and every shrink strictly reduces the number of
    non-minimum selections, so the loop terminates with a conflict-free
    assignment. *)

val remove_conflicts : ?gains:float array -> Solution.t -> Solution.t * int
(** [remove_conflicts s] returns the repaired solution and the number
    of shrink operations performed.  [gains] (per interval id; defaults
    to the problem profits) decides which interval a violated clique
    keeps. *)
