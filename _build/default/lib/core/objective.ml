type weighting = Sqrt_length | Linear_length

let default = Sqrt_length

let f w len =
  assert (len >= 1);
  match w with
  | Sqrt_length -> sqrt (float_of_int len)
  | Linear_length -> float_of_int len

let profit w (interval : Access_interval.t) =
  f w (Access_interval.length interval)
  *. float_of_int (List.length interval.Access_interval.pins)

let weighting_to_string = function
  | Sqrt_length -> "sqrt"
  | Linear_length -> "linear"
