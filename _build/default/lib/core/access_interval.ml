type id = int

type kind = Minimum | Regular

type t = {
  id : id;
  net : Netlist.Net.id;
  pins : Netlist.Pin.id list;
  track : int;
  span : Geometry.Interval.t;
  kind : kind;
}

let make ~id ~net ~pins ~track ~span ~kind =
  assert (pins <> []);
  { id; net; pins; track; span; kind }

let length t = Geometry.Interval.length t.span
let is_minimum t = match t.kind with Minimum -> true | Regular -> false
let serves t pin = List.mem pin t.pins
let overlaps a b = a.track = b.track && Geometry.Interval.overlaps a.span b.span

let compare_geometry a b =
  let c = Int.compare a.track b.track in
  if c <> 0 then c else Geometry.Interval.compare a.span b.span

let pp fmt t =
  Format.fprintf fmt "I#%d(net %d, track %d, %a%s, pins [%s])" t.id t.net
    t.track Geometry.Interval.pp t.span
    (if is_minimum t then ", min" else "")
    (String.concat ";" (List.map string_of_int t.pins))
