type t = { width : float; height : float; buf : Buffer.t }

let create ~width ~height = { width; height; buf = Buffer.create 4096 }

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '&' -> Buffer.add_string buf "&amp;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let addf t fmt = Printf.ksprintf (Buffer.add_string t.buf) fmt

let rect t ~x ~y ~w ~h ?rx ?stroke ?(stroke_width = 0.0) ?(opacity = 1.0)
    ~fill () =
  addf t {|<rect x="%g" y="%g" width="%g" height="%g" fill="%s"|} x y w h
    (escape fill);
  (match rx with Some r -> addf t {| rx="%g"|} r | None -> ());
  (match stroke with
  | Some s -> addf t {| stroke="%s" stroke-width="%g"|} (escape s) stroke_width
  | None -> ());
  if opacity < 1.0 then addf t {| fill-opacity="%g"|} opacity;
  addf t "/>\n"

let line t ~x1 ~y1 ~x2 ~y2 ~stroke ?(stroke_width = 1.0) ?dash () =
  addf t {|<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="%s" stroke-width="%g"|}
    x1 y1 x2 y2 (escape stroke) stroke_width;
  (match dash with Some d -> addf t {| stroke-dasharray="%s"|} (escape d) | None -> ());
  addf t "/>\n"

let text t ~x ~y ?(size = 4.0) ?(fill = "#333") s =
  addf t
    {|<text x="%g" y="%g" font-size="%g" fill="%s" font-family="monospace">%s</text>|}
    x y size (escape fill) (escape s);
  addf t "\n"

let comment t s = addf t "<!-- %s -->\n" (escape s)

let to_string t =
  Printf.sprintf
    {|<?xml version="1.0" encoding="UTF-8"?>
<svg xmlns="http://www.w3.org/2000/svg" viewBox="0 0 %g %g" width="%g" height="%g">
%s</svg>
|}
    t.width t.height t.width t.height (Buffer.contents t.buf)
