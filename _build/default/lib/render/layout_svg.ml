module I = Geometry.Interval
module Design = Netlist.Design
module Node = Rgrid.Node
module Layer = Rgrid.Layer

let unit = 6.0
let margin = 2.0 *. unit

let palette =
  [|
    "#1f77b4"; "#ff7f0e"; "#2ca02c"; "#d62728"; "#9467bd"; "#8c564b";
    "#e377c2"; "#17becf"; "#bcbd22"; "#3182bd"; "#e6550d"; "#31a354";
  |]

let net_color net = palette.(net mod Array.length palette)

type canvas = { svg : Svg.t; height_px : float }

(* grid (x, y) -> svg coordinates; track y grows upward in the layout,
   downward in SVG *)
let gx x = margin +. (float_of_int x *. unit)
let gy c y = c.height_px -. margin -. (float_of_int (y + 1) *. unit)

let canvas design =
  let w = (float_of_int (Design.width design) *. unit) +. (2.0 *. margin) in
  let h = (float_of_int (Design.height design) *. unit) +. (2.0 *. margin) in
  { svg = Svg.create ~width:w ~height:h; height_px = h }

let draw_base c design =
  Svg.comment c.svg (Design.stats design);
  (* row separators and track grid *)
  for tr = 0 to Design.height design - 1 do
    let y = gy c tr +. (unit /. 2.0) in
    let is_row_edge = tr mod Design.row_height design = 0 in
    Svg.line c.svg ~x1:(gx 0) ~y1:y
      ~x2:(gx (Design.width design))
      ~y2:y
      ~stroke:(if is_row_edge then "#999" else "#eee")
      ~stroke_width:(if is_row_edge then 0.8 else 0.4)
      ()
  done;
  (* blockages *)
  List.iter
    (fun (b : Netlist.Blockage.t) ->
      match b.Netlist.Blockage.layer with
      | Netlist.Blockage.M2 ->
        Svg.rect c.svg
          ~x:(gx (I.lo b.Netlist.Blockage.span))
          ~y:(gy c b.Netlist.Blockage.track)
          ~w:(float_of_int (I.length b.Netlist.Blockage.span) *. unit)
          ~h:unit ~fill:"#666" ~opacity:0.5 ()
      | Netlist.Blockage.M3 ->
        Svg.rect c.svg
          ~x:(gx b.Netlist.Blockage.track)
          ~y:(gy c (I.hi b.Netlist.Blockage.span))
          ~w:unit
          ~h:(float_of_int (I.length b.Netlist.Blockage.span) *. unit)
          ~fill:"#666" ~opacity:0.3 ())
    (Design.blockages design);
  (* pins: outlined boxes in their net's color *)
  Array.iter
    (fun (p : Netlist.Pin.t) ->
      Svg.rect c.svg
        ~x:(gx p.Netlist.Pin.x +. (unit *. 0.15))
        ~y:(gy c (I.hi p.Netlist.Pin.tracks) +. (unit *. 0.15))
        ~w:(unit *. 0.7)
        ~h:((float_of_int (I.length p.Netlist.Pin.tracks) *. unit) -. (unit *. 0.3))
        ~fill:"white"
        ~stroke:(net_color p.Netlist.Pin.net)
        ~stroke_width:1.0 ())
    (Design.pins design)

let design d =
  let c = canvas d in
  draw_base c d;
  Svg.to_string c.svg

let draw_route c space ?(opacity = 1.0) (r : Rgrid.Route.t) =
  let color = net_color r.Rgrid.Route.net in
  List.iter
    (fun (seg : Rgrid.Route.seg) ->
      match seg.Rgrid.Route.layer with
      | Layer.M2 ->
        Svg.rect c.svg
          ~x:(gx (I.lo seg.Rgrid.Route.span))
          ~y:(gy c seg.Rgrid.Route.track +. (unit *. 0.25))
          ~w:(float_of_int (I.length seg.Rgrid.Route.span) *. unit)
          ~h:(unit *. 0.5) ~fill:color ~opacity ()
      | Layer.M3 ->
        Svg.rect c.svg
          ~x:(gx seg.Rgrid.Route.track +. (unit *. 0.3))
          ~y:(gy c (I.hi seg.Rgrid.Route.span))
          ~w:(unit *. 0.4)
          ~h:(float_of_int (I.length seg.Rgrid.Route.span) *. unit)
          ~fill:color ~opacity:(0.65 *. opacity) ()
      | Layer.M1 -> ())
    (Rgrid.Route.segments ~space r);
  (* via cuts *)
  List.iter
    (fun (x, y) ->
      Svg.rect c.svg
        ~x:(gx x +. (unit *. 0.3))
        ~y:(gy c y +. (unit *. 0.3))
        ~w:(unit *. 0.4) ~h:(unit *. 0.4) ~fill:"black" ~opacity ())
    (Rgrid.Route.via_positions ~space r)

let flow (f : Router.Flow.t) =
  let d = f.Router.Flow.design in
  let space = Node.space_of_design d in
  let c = canvas d in
  draw_base c d;
  Array.iteri
    (fun net route ->
      match route with
      | None -> ()
      | Some r ->
        let opacity = if f.Router.Flow.clean.(net) then 1.0 else 0.35 in
        draw_route c space ~opacity r)
    f.Router.Flow.routes;
  Svg.to_string c.svg

let pin_access d assignments =
  let c = canvas d in
  draw_base c d;
  List.iter
    (fun (_pid, (iv : Pinaccess.Access_interval.t)) ->
      Svg.rect c.svg
        ~x:(gx (I.lo iv.Pinaccess.Access_interval.span))
        ~y:(gy c iv.Pinaccess.Access_interval.track +. (unit *. 0.2))
        ~w:(float_of_int (I.length iv.Pinaccess.Access_interval.span) *. unit)
        ~h:(unit *. 0.6)
        ~fill:(net_color iv.Pinaccess.Access_interval.net)
        ~opacity:0.8 ())
    assignments;
  Svg.to_string c.svg

let save path svg =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc svg)
