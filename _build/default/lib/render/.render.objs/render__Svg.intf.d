lib/render/svg.mli:
