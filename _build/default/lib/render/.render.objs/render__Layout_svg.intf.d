lib/render/layout_svg.mli: Netlist Pinaccess Router
