lib/render/layout_svg.ml: Array Fun Geometry List Netlist Pinaccess Rgrid Router Svg
