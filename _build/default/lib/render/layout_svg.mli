(** SVG plots of placed designs and routing results: rows, pins,
    blockages, per-net colored M2/M3 metal and via cuts — the pictures
    of Figures 1/2/5, generated from live data. *)

val design : Netlist.Design.t -> string
(** Placement plot: rows, pin shapes, blockages. *)

val flow : Router.Flow.t -> string
(** Routing plot: the placement plus every routed net's metal and vias;
    DRC-dirty nets are drawn translucent. *)

val pin_access : Netlist.Design.t -> (Netlist.Pin.id * Pinaccess.Access_interval.t) list -> string
(** Placement plus the selected pin access intervals (the optimizer's
    output before routing, as in Fig. 2(b)). *)

val save : string -> string -> unit
(** [save path svg] writes the document. *)
