(** A minimal SVG writer — just enough shapes for layout plots, with
    escaping and a fluent buffer interface. *)

type t

val create : width:float -> height:float -> t
(** Document with a user-space viewBox of [width] x [height]. *)

val rect :
  t ->
  x:float ->
  y:float ->
  w:float ->
  h:float ->
  ?rx:float ->
  ?stroke:string ->
  ?stroke_width:float ->
  ?opacity:float ->
  fill:string ->
  unit ->
  unit

val line :
  t ->
  x1:float ->
  y1:float ->
  x2:float ->
  y2:float ->
  stroke:string ->
  ?stroke_width:float ->
  ?dash:string ->
  unit ->
  unit

val text :
  t -> x:float -> y:float -> ?size:float -> ?fill:string -> string -> unit

val comment : t -> string -> unit

val to_string : t -> string
(** The complete [<svg>…</svg>] document. *)
