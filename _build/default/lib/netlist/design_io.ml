module I = Geometry.Interval

let to_string design =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf "design %s %d %d %d\n" (Design.name design)
       (Design.width design) (Design.height design)
       (Design.row_height design));
  Array.iter
    (fun (net : Net.t) ->
      Buffer.add_string buf (Printf.sprintf "net %s\n" net.Net.name);
      List.iter
        (fun pid ->
          let p = Design.pin design pid in
          Buffer.add_string buf
            (Printf.sprintf "pin %d %d %d\n" p.Pin.x (I.lo p.Pin.tracks)
               (I.hi p.Pin.tracks)))
        net.Net.pins)
    (Design.nets design);
  List.iter
    (fun (b : Blockage.t) ->
      Buffer.add_string buf
        (Printf.sprintf "blockage %s %d %d %d\n"
           (Blockage.layer_to_string b.Blockage.layer)
           b.Blockage.track (I.lo b.Blockage.span) (I.hi b.Blockage.span)))
    (Design.blockages design);
  Buffer.contents buf

type header = {
  name : string;
  width : int;
  height : int;
  row_height : int;
}

let of_string text =
  let header = ref None in
  let nets = ref [] in (* (name, pin spec list) in reverse *)
  let blockages = ref [] in
  let fail lineno msg =
    invalid_arg (Printf.sprintf "Design_io.of_string: line %d: %s" lineno msg)
  in
  let int lineno s =
    match int_of_string_opt s with
    | Some v -> v
    | None -> fail lineno (Printf.sprintf "expected an integer, got %S" s)
  in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      let line =
        match String.index_opt line '#' with
        | Some j -> String.sub line 0 j
        | None -> line
      in
      match
        String.split_on_char ' ' (String.trim line)
        |> List.filter (fun s -> s <> "")
      with
      | [] -> ()
      | [ "design"; name; w; h; rh ] ->
        if !header <> None then fail lineno "duplicate design header";
        header :=
          Some
            {
              name;
              width = int lineno w;
              height = int lineno h;
              row_height = int lineno rh;
            }
      | [ "net"; name ] -> nets := (name, []) :: !nets
      | [ "pin"; x; lo; hi ] ->
        (match !nets with
        | [] -> fail lineno "pin before any net"
        | (name, pins) :: rest ->
          let spec =
            {
              Builder.x = int lineno x;
              tracks = I.make ~lo:(int lineno lo) ~hi:(int lineno hi);
            }
          in
          nets := (name, spec :: pins) :: rest)
      | [ "blockage"; layer; track; lo; hi ] ->
        let layer =
          match layer with
          | "M2" -> Blockage.M2
          | "M3" -> Blockage.M3
          | other -> fail lineno (Printf.sprintf "unknown layer %S" other)
        in
        blockages :=
          Blockage.make ~layer ~track:(int lineno track)
            ~span:(I.make ~lo:(int lineno lo) ~hi:(int lineno hi))
          :: !blockages
      | word :: _ -> fail lineno (Printf.sprintf "unknown record %S" word))
    (String.split_on_char '\n' text);
  match !header with
  | None -> invalid_arg "Design_io.of_string: missing design header"
  | Some h ->
    Builder.design ~name:h.name ~width:h.width ~height:h.height
      ~row_height:h.row_height
      ~nets:(List.rev_map (fun (name, pins) -> (name, List.rev pins)) !nets)
      ~blockages:(List.rev !blockages) ()

let save path design =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string design))

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = in_channel_length ic in
      of_string (really_input_string ic n))
