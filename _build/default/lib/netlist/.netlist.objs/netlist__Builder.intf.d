lib/netlist/builder.mli: Blockage Design Geometry
