lib/netlist/pin.ml: Format Geometry Int
