lib/netlist/net.ml: Format List Pin
