lib/netlist/design_io.mli: Design
