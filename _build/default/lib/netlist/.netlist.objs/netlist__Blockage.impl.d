lib/netlist/blockage.ml: Format Geometry
