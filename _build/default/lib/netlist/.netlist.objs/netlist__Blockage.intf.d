lib/netlist/blockage.mli: Format Geometry
