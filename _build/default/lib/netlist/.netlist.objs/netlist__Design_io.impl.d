lib/netlist/design_io.ml: Array Blockage Buffer Builder Design Fun Geometry List Net Pin Printf String
