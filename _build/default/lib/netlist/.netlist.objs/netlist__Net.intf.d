lib/netlist/net.mli: Format Pin
