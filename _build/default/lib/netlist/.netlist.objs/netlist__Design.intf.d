lib/netlist/design.mli: Blockage Geometry Net Pin
