lib/netlist/builder.ml: Design Geometry List Net Pin Printf
