lib/netlist/pin.mli: Format Geometry
