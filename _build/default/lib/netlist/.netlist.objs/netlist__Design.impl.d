lib/netlist/design.ml: Array Blockage Geometry Hashtbl Int List Net Pin Printf
