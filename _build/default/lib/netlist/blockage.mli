(** Routing blockages: pre-existing metal (power rails, macro obstructions,
    fixed cell-internal routing) that detailed routing must avoid. *)

type layer = M2 | M3

type t = { layer : layer; track : int; span : Geometry.Interval.t }
(** On M2 a blockage occupies columns [span] of a horizontal [track];
    on M3 it occupies rows [span] of a vertical column [track]. *)

val make : layer:layer -> track:int -> span:Geometry.Interval.t -> t
val layer_to_string : layer -> string
val pp : Format.formatter -> t -> unit
