type layer = M2 | M3

type t = { layer : layer; track : int; span : Geometry.Interval.t }

let make ~layer ~track ~span = { layer; track; span }
let layer_to_string = function M2 -> "M2" | M3 -> "M3"

let pp fmt t =
  Format.fprintf fmt "%s blockage on %d span %a"
    (layer_to_string t.layer)
    t.track Geometry.Interval.pp t.span
