type id = int

type t = { id : id; net : int; x : int; tracks : Geometry.Interval.t }

let make ~id ~net ~x ~tracks = { id; net; x; tracks }

let primary_track t =
  (Geometry.Interval.lo t.tracks + Geometry.Interval.hi t.tracks) / 2

let covers_track t track = Geometry.Interval.contains t.tracks track
let location t = Geometry.Point.make ~x:t.x ~y:(primary_track t)
let equal a b = a.id = b.id
let compare a b = Int.compare a.id b.id

let pp fmt t =
  Format.fprintf fmt "pin#%d(net %d, x=%d, tracks %a)" t.id t.net t.x
    Geometry.Interval.pp t.tracks
