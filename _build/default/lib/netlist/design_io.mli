(** Plain-text serialization of placed designs — a minimal DEF-like
    interchange format so instances can be saved, diffed and reloaded
    (the synthetic generator is deterministic, but exported instances
    make failures reproducible outside this repo).

    Format (one record per line, [#] comments ignored):
    {v
    design <name> <width> <height> <row_height>
    net <name>
    pin <x> <track_lo> <track_hi>       # belongs to the last net
    blockage <M2|M3> <track> <lo> <hi>
    v} *)

val to_string : Design.t -> string

val of_string : string -> Design.t
(** @raise Invalid_argument on malformed input (with a line number). *)

val save : string -> Design.t -> unit
(** [save path design] *)

val load : string -> Design.t
