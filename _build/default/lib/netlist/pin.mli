(** Standard cell I/O pins.

    A pin is an M1 shape sitting at one grid column [x], spanning a
    contiguous range of M2 tracks [tracks] (1–3 tracks in practice —
    M1 pin shapes in unidirectional libraries are short vertical
    strips).  All tracks of one pin lie inside a single routing panel.
    A pin is reached from M2 by a V1 via at [(x, t)] for any [t] in
    [tracks]. *)

type id = int

type t = { id : id; net : int; x : int; tracks : Geometry.Interval.t }

val make : id:id -> net:int -> x:int -> tracks:Geometry.Interval.t -> t

val primary_track : t -> int
(** The middle track of the pin's span; the minimum pin access interval
    is generated there. *)

val covers_track : t -> int -> bool
val location : t -> Geometry.Point.t
(** [(x, primary_track)], the canonical grid location of the pin. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
