type id = int

type t = { id : id; name : string; pins : Pin.id list }

let make ~id ~name ~pins = { id; name; pins }
let degree t = List.length t.pins
let equal a b = a.id = b.id

let pp fmt t =
  Format.fprintf fmt "net#%d(%s, %d pins)" t.id t.name (degree t)
