(** Nets: named groups of pins that must be electrically connected. *)

type id = int

type t = { id : id; name : string; pins : Pin.id list }

val make : id:id -> name:string -> pins:Pin.id list -> t
val degree : t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
