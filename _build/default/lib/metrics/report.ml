let fixed d x = Printf.sprintf "%.*f" d x

let table ~header rows =
  let all = header :: rows in
  let cols = List.fold_left (fun m r -> max m (List.length r)) 0 all in
  let width i =
    List.fold_left
      (fun m row ->
        match List.nth_opt row i with
        | Some cell -> max m (String.length cell)
        | None -> m)
      0 all
  in
  let widths = List.init cols width in
  let rtrim line =
    let len = ref (String.length line) in
    while !len > 0 && line.[!len - 1] = ' ' do
      decr len
    done;
    String.sub line 0 !len
  in
  let render row =
    List.mapi
      (fun i w ->
        let cell = Option.value ~default:"" (List.nth_opt row i) in
        cell ^ String.make (w - String.length cell) ' ')
      widths
    |> String.concat "  " |> rtrim
  in
  let sep = String.concat "  " (List.map (fun w -> String.make w '-') widths) in
  String.concat "\n" (render header :: sep :: List.map render rows)

let summary_cells (s : Eval.summary) =
  [
    fixed 2 s.Eval.routability;
    string_of_int s.Eval.via_count;
    string_of_int s.Eval.wirelength;
    fixed 2 s.Eval.cpu;
  ]
