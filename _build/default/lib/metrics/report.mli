(** Plain-text table rendering for the bench harness (the Table 2 /
    Fig. 6 / Fig. 7 printouts). *)

val table : header:string list -> string list list -> string
(** Column-aligned table with a separator under the header. *)

val fixed : int -> float -> string
(** [fixed d x] formats with [d] decimals. *)

val summary_cells : Eval.summary -> string list
(** [Rout.(%); Via#; WL; cpu(s)] cells for one router on one circuit. *)
