lib/metrics/report.ml: Eval List Option Printf String
