lib/metrics/eval.mli: Netlist Router
