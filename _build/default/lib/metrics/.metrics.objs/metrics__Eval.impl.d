lib/metrics/eval.ml: Array Float Geometry List Netlist Option Rgrid Router
