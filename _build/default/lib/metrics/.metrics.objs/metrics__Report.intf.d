lib/metrics/report.mli: Eval
