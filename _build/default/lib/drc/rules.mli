(** The simplified SADP-with-cut-mask rule deck used by every router in
    this repo (the subset of [12]'s constraints that unidirectional
    grid routing interacts with):

    - {b R1, minimum line-end gap}: two segments of different nets on
      the same track must leave at least [min_line_end_gap] empty grids
      between them — the cut printed between the two line ends needs
      that much room.
    - {b R2, cut alignment}: the cuts (line-end gaps) of different net
      pairs on *adjacent* tracks must be either exactly aligned or
      disjoint in x; partially overlapping cuts cannot be merged nor
      separated on the cut mask.  Line-end extension exists to fix
      exactly this.
    - {b R3, via-cut spacing}: vias of different nets closer than
      [min_via_spacing] (Manhattan) conflict on the via cut mask. *)

type t = {
  min_line_end_gap : int;
  min_via_spacing : int;
  max_extension : int;
      (** how far the line-end extension pass may grow a segment *)
}

val default : t
