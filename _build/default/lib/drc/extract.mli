(** Flattened metal view of a routed design: per-track segment lists
    (all nets plus blockages) and via cut positions, the input to both
    the DRC checker and the line-end extension pass. *)

val blockage_net : int
(** Pseudo net id ([-2]) for blockage metal: rules apply against it but
    it can never be blamed, extended or merged. *)

type segment = { net : int; mutable lo : int; mutable hi : int }

type via_kind = V1 | V2

type layout = {
  space : Rgrid.Node.space;
  m2 : segment list array;  (** per y track, sorted by [lo], disjoint *)
  m3 : segment list array;  (** per x column, sorted by [lo], disjoint *)
  vias : (int * int * via_kind * int) list;  (** (x, y, kind, net) *)
}

val of_routes :
  ?tolerate_shorts:bool ->
  Netlist.Design.t ->
  Rgrid.Route.t option array ->
  layout
(** Blockages become [blockage_net] segments.  Routes must be short-
    free (no two nets on one node): overlapping same-track segments of
    different nets raise [Invalid_argument] — unless [tolerate_shorts]
    (used for in-negotiation DRC probes while rip-up is still
    resolving overuse), which drops the later segment. *)
