(** DRC checker for the rule deck in {!Rules}. *)

type kind = Line_end_gap | Cut_alignment | Via_spacing

type violation = {
  kind : kind;
  layer : Rgrid.Layer.t;
  nets : int list;  (** real nets involved (blockages excluded) *)
  blame : int;
      (** the net charged with the violation (the highest real net id
          involved — "the later-routed net introduced it"); [-1] when
          only blockages are involved (cannot happen from [run]) *)
  sites : (int * int) list;
      (** offending grid positions [(x, y)] — the gap/cut grids or the
          via landings; used by DRC-driven rip-up to penalize the exact
          trouble spots *)
  where : string;  (** human-readable location for reports *)
}

val run : Rules.t -> Extract.layout -> violation list

val blamed_nets : violation list -> int list
(** Sorted unique blamed net ids — the nets the evaluation counts as
    unrouted (paper Sec. 5: nets introducing violations are treated as
    unrouted for fair comparison). *)

val kind_to_string : kind -> string

val cut_width_max : Rules.t -> int
(** Gaps wider than this need no cut shape (the block mask handles
    them) and are exempt from the alignment rule R2; gaps of width
    [1 .. cut_width_max] are cuts. *)
