module I = Geometry.Interval

type mask = Mandrel | Spacer

let mask_of_track track = if track mod 2 = 0 then Mandrel else Spacer
let mask_to_string = function Mandrel -> "mandrel" | Spacer -> "spacer"

type cut = { track : int; span : Geometry.Interval.t; mask : mask }

let cuts_of_layout rules (layout : Extract.layout) =
  let cut_max = (2 * rules.Rules.min_line_end_gap) - 1 in
  let out = ref [] in
  Array.iteri
    (fun track segs ->
      let rec walk = function
        | (a : Extract.segment) :: (b :: _ as rest) ->
          let lo = a.Extract.hi + 1 and hi = b.Extract.lo - 1 in
          if hi >= lo && hi - lo + 1 <= cut_max then
            out :=
              {
                track;
                span = I.make ~lo ~hi;
                mask = mask_of_track track;
              }
              :: !out;
          walk rest
        | [ _ ] | [] -> ()
      in
      walk segs)
    layout.Extract.m2;
  List.rev !out

type stats = {
  mandrel_cuts : int;
  spacer_cuts : int;
  same_mask_conflicts : (cut * cut) list;
}

let audit rules layout =
  let cuts = cuts_of_layout rules layout in
  let mandrel_cuts =
    List.length (List.filter (fun c -> c.mask = Mandrel) cuts)
  in
  let spacer_cuts = List.length cuts - mandrel_cuts in
  (* same-mask cuts sit 2 tracks apart at the closest; they must be
     aligned or keep the cut mask's own spacing in x *)
  let conflicts = ref [] in
  let arr = Array.of_list cuts in
  let n = Array.length arr in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let a = arr.(i) and b = arr.(j) in
      if
        a.mask = b.mask
        && a.track <> b.track
        && abs (a.track - b.track) <= 2
      then begin
        let aligned = I.equal a.span b.span in
        let x_gap =
          max 0
            (max (I.lo b.span - I.hi a.span - 1) (I.lo a.span - I.hi b.span - 1))
        in
        if (not aligned) && x_gap < rules.Rules.min_line_end_gap then
          conflicts := (a, b) :: !conflicts
      end
    done
  done;
  { mandrel_cuts; spacer_cuts; same_mask_conflicts = List.rev !conflicts }
