(** Line-end extension (paper Sec. 4: "we further perform line-end
    extensions ... to accommodate the manufacturing constraints and
    enable SADP-friendly cut masks").

    Two legalizing moves, both of which only ever *grow* metal into
    empty gap space:

    - {b merge}: a same-net gap no wider than [max_extension] is filled,
      deleting the cut entirely;
    - {b align}: two partially-overlapping cuts on adjacent tracks are
      narrowed to their common intersection (when each end's growth is
      within [max_extension] and the result is still a legal cut),
      turning an R2 violation into an aligned cut pair.

    The layout is mutated in place; the returned fills let the caller
    push the added metal back into routes and grid occupancy. *)

type fill = {
  layer : Rgrid.Layer.t;
  track : int;
  span : Geometry.Interval.t;
  net : int;
}

type stats = { merges : int; alignments : int; sweeps : int }

val extend :
  ?can_fill:(Rgrid.Layer.t -> track:int -> x:int -> net:int -> bool) ->
  Rules.t ->
  Extract.layout ->
  fill list * stats
(** [can_fill] vetoes growing over grids the caller knows are taken
    (e.g. owned by an unrouted net's pin); defaults to always-true. *)
