(** SADP mask decomposition of the unidirectional layout.

    Under self-aligned double patterning, alternate routing tracks come
    from the mandrel mask and from the spacer-defined gaps; line ends
    are produced by a separate cut mask (paper Sec. 1, [4,5]).  With a
    gridded unidirectional layout the track coloring is fixed by
    parity — what remains to check is the *cut mask*: cut shapes on
    same-color (same-mask) tracks are printed together and must keep
    the single-patterning spacing among themselves.

    This module derives the decomposition and audits the cut masks; it
    complements {!Check} (whose R2 handles adjacent-track interactions
    regardless of color). *)

type mask = Mandrel | Spacer

val mask_of_track : int -> mask
(** Even tracks print on the mandrel mask, odd on the spacer side. *)

type cut = {
  track : int;
  span : Geometry.Interval.t;  (** the empty grids the cut occupies *)
  mask : mask;
}

val cuts_of_layout : Rules.t -> Extract.layout -> cut list
(** Every line-end cut of the M2 layer (gaps no wider than
    {!Check.cut_width_max}), tagged with its mask. *)

type stats = {
  mandrel_cuts : int;
  spacer_cuts : int;
  same_mask_conflicts : (cut * cut) list;
      (** same-mask cuts on tracks within 2 of each other whose x-spans
          come closer than the cut mask's own spacing
          ([min_line_end_gap]) without being aligned *)
}

val audit : Rules.t -> Extract.layout -> stats

val mask_to_string : mask -> string
