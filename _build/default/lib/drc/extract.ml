module I = Geometry.Interval
module Node = Rgrid.Node
module Route = Rgrid.Route
module Design = Netlist.Design

let blockage_net = -2

type segment = { net : int; mutable lo : int; mutable hi : int }

type via_kind = V1 | V2

type layout = {
  space : Rgrid.Node.space;
  m2 : segment list array;
  m3 : segment list array;
  vias : (int * int * via_kind * int) list;
}

let insert_sorted tracks idx seg =
  tracks.(idx) <- seg :: tracks.(idx)

let finalize_track ~tolerate_shorts segs =
  let sorted =
    List.sort
      (fun a b ->
        let c = Int.compare a.lo b.lo in
        if c <> 0 then c else Int.compare a.hi b.hi)
      segs
  in
  (* merge same-net touching/overlapping runs; different-net overlaps
     are shorts: rejected, or dropped when the caller knows rip-up is
     still running *)
  let rec merge = function
    | a :: b :: rest ->
      if b.lo <= a.hi then
        if a.net = b.net || a.net = blockage_net || b.net = blockage_net then begin
          a.hi <- max a.hi b.hi;
          merge (a :: rest)
        end
        else if tolerate_shorts then merge (a :: rest)
        else
          invalid_arg
            (Printf.sprintf "Extract.of_routes: short between nets %d and %d"
               a.net b.net)
      else a :: merge (b :: rest)
    | ([ _ ] | []) as done_ -> done_
  in
  merge sorted

let of_routes ?(tolerate_shorts = false) design routes =
  let space = Node.space_of_design design in
  let m2 = Array.make space.Node.height [] in
  let m3 = Array.make space.Node.width [] in
  let vias = ref [] in
  List.iter
    (fun (b : Netlist.Blockage.t) ->
      let seg = { net = blockage_net; lo = I.lo b.span; hi = I.hi b.span } in
      match b.layer with
      | Netlist.Blockage.M2 ->
        if b.track >= 0 && b.track < space.Node.height then
          insert_sorted m2 b.track seg
      | Netlist.Blockage.M3 ->
        if b.track >= 0 && b.track < space.Node.width then
          insert_sorted m3 b.track seg)
    (Design.blockages design);
  Array.iter
    (fun route ->
      match route with
      | None -> ()
      | Some (r : Route.t) ->
        List.iter
          (fun (seg : Route.seg) ->
            let s =
              {
                net = r.Route.net;
                lo = I.lo seg.Route.span;
                hi = I.hi seg.Route.span;
              }
            in
            match seg.Route.layer with
            | Rgrid.Layer.M2 -> insert_sorted m2 seg.Route.track s
            | Rgrid.Layer.M3 -> insert_sorted m3 seg.Route.track s
            | Rgrid.Layer.M1 -> assert false)
          (Route.segments ~space r);
        List.iter
          (fun (_pin, x, y) -> vias := (x, y, V1, r.Route.net) :: !vias)
          r.Route.pin_vias;
        List.iter
          (fun (x, y) -> vias := (x, y, V2, r.Route.net) :: !vias)
          (Route.v2_vias ~space r))
    routes;
  Array.iteri (fun i segs -> m2.(i) <- finalize_track ~tolerate_shorts segs) m2;
  Array.iteri (fun i segs -> m3.(i) <- finalize_track ~tolerate_shorts segs) m3;
  { space; m2; m3; vias = !vias }
