module I = Geometry.Interval

type kind = Line_end_gap | Cut_alignment | Via_spacing

type violation = {
  kind : kind;
  layer : Rgrid.Layer.t;
  nets : int list;
  blame : int;
  sites : (int * int) list;
  where : string;
}

let kind_to_string = function
  | Line_end_gap -> "line-end-gap"
  | Cut_alignment -> "cut-alignment"
  | Via_spacing -> "via-spacing"

let cut_width_max (rules : Rules.t) = (2 * rules.Rules.min_line_end_gap) - 1

let real_nets nets =
  List.sort_uniq Int.compare
    (List.filter (fun n -> n <> Extract.blockage_net) nets)

let blame_of nets =
  match real_nets nets with [] -> -1 | ns -> List.fold_left max (-1) ns

let mk kind layer nets ~sites where =
  { kind; layer; nets = real_nets nets; blame = blame_of nets; sites; where }

(* grid (x, y) positions of a run of track grids *)
let track_sites layer track lo hi =
  List.init (hi - lo + 1) (fun i ->
      match layer with
      | Rgrid.Layer.M2 -> (lo + i, track)
      | Rgrid.Layer.M3 -> (track, lo + i)
      | Rgrid.Layer.M1 -> assert false)

(* Gaps between consecutive segments on one track; a gap is a *cut*
   when narrow enough to need a cut shape. *)
type gap = { xl : int; xr : int; left_net : int; right_net : int }

let gaps_of_track segs =
  let rec walk acc = function
    | a :: (b :: _ as rest) ->
      let g =
        {
          xl = a.Extract.hi + 1;
          xr = b.Extract.lo - 1;
          left_net = a.Extract.net;
          right_net = b.Extract.net;
        }
      in
      walk (if g.xl <= g.xr then g :: acc else acc) rest
    | [ _ ] | [] -> List.rev acc
  in
  walk [] segs

let gap_width g = g.xr - g.xl + 1
let gap_nets g = [ g.left_net; g.right_net ]

let check_line_end_gaps rules layer tracks acc =
  let out = ref acc in
  Array.iteri
    (fun track segs ->
      List.iter
        (fun g ->
          if
            g.left_net <> g.right_net
            && gap_width g < rules.Rules.min_line_end_gap
            && real_nets (gap_nets g) <> []
          then
            out :=
              mk Line_end_gap layer (gap_nets g)
                ~sites:(track_sites layer track (g.xl - 1) (g.xr + 1))
                (Printf.sprintf "track %d gap [%d,%d]" track g.xl g.xr)
              :: !out)
        (gaps_of_track segs))
    tracks;
  !out

(* R2: cuts on adjacent tracks must be aligned or x-disjoint. *)
let check_cut_alignment rules layer tracks acc =
  let cuts_per_track =
    Array.map
      (fun segs ->
        gaps_of_track segs
        |> List.filter (fun g -> gap_width g <= cut_width_max rules))
      tracks
  in
  let out = ref acc in
  for t = 0 to Array.length tracks - 2 do
    List.iter
      (fun g1 ->
        List.iter
          (fun g2 ->
            let aligned = g1.xl = g2.xl && g1.xr = g2.xr in
            let disjoint = g1.xr < g2.xl || g2.xr < g1.xl in
            if (not aligned) && not disjoint then begin
              let nets = gap_nets g1 @ gap_nets g2 in
              if real_nets nets <> [] then
                out :=
                  mk Cut_alignment layer nets
                    ~sites:
                      (track_sites layer t g1.xl g1.xr
                      @ track_sites layer (t + 1) g2.xl g2.xr)
                    (Printf.sprintf "tracks %d/%d cuts [%d,%d]/[%d,%d]" t
                       (t + 1) g1.xl g1.xr g2.xl g2.xr)
                  :: !out
            end)
          cuts_per_track.(t + 1))
      cuts_per_track.(t)
  done;
  !out

let check_via_spacing rules (layout : Extract.layout) acc =
  let classes = [ Extract.V1; Extract.V2 ] in
  List.fold_left
    (fun acc cls ->
      let vias =
        List.filter (fun (_, _, k, _) -> k = cls) layout.Extract.vias
        |> List.sort compare
      in
      let arr = Array.of_list vias in
      let out = ref acc in
      Array.iteri
        (fun i (x1, y1, _, n1) ->
          let j = ref (i + 1) in
          let continue_ = ref true in
          while !continue_ && !j < Array.length arr do
            let x2, y2, _, n2 = arr.(!j) in
            if x2 - x1 >= rules.Rules.min_via_spacing then continue_ := false
            else begin
              if n1 <> n2 && abs (x2 - x1) + abs (y2 - y1) < rules.Rules.min_via_spacing
              then
                out :=
                  mk Via_spacing
                    (match cls with
                    | Extract.V1 -> Rgrid.Layer.M2
                    | Extract.V2 -> Rgrid.Layer.M3)
                    [ n1; n2 ]
                    ~sites:[ (x1, y1); (x2, y2) ]
                    (Printf.sprintf "vias (%d,%d)/(%d,%d)" x1 y1 x2 y2)
                  :: !out;
              incr j
            end
          done)
        arr;
      !out)
    acc classes

let run rules (layout : Extract.layout) =
  []
  |> check_line_end_gaps rules Rgrid.Layer.M2 layout.Extract.m2
  |> check_line_end_gaps rules Rgrid.Layer.M3 layout.Extract.m3
  |> check_cut_alignment rules Rgrid.Layer.M2 layout.Extract.m2
  |> check_cut_alignment rules Rgrid.Layer.M3 layout.Extract.m3
  |> check_via_spacing rules layout
  |> List.rev

let blamed_nets violations =
  List.filter_map
    (fun v -> if v.blame >= 0 then Some v.blame else None)
    violations
  |> List.sort_uniq Int.compare
