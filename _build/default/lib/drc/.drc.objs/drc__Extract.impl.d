lib/drc/extract.ml: Array Geometry Int List Netlist Printf Rgrid
