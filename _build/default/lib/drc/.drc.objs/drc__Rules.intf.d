lib/drc/rules.mli:
