lib/drc/check.ml: Array Extract Geometry Int List Printf Rgrid Rules
