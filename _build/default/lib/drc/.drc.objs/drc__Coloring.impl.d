lib/drc/coloring.ml: Array Extract Geometry List Rules
