lib/drc/coloring.mli: Extract Geometry Rules
