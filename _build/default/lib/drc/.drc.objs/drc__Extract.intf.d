lib/drc/extract.mli: Netlist Rgrid
