lib/drc/line_end.ml: Array Extract Geometry List Rgrid Rules
