lib/drc/line_end.mli: Extract Geometry Rgrid Rules
