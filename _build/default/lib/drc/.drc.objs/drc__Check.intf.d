lib/drc/check.mli: Extract Rgrid Rules
