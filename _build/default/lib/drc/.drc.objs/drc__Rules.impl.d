lib/drc/rules.ml:
