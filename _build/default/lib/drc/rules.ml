type t = { min_line_end_gap : int; min_via_spacing : int; max_extension : int }

let default = { min_line_end_gap = 2; min_via_spacing = 2; max_extension = 3 }
