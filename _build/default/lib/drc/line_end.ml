module I = Geometry.Interval

type fill = {
  layer : Rgrid.Layer.t;
  track : int;
  span : Geometry.Interval.t;
  net : int;
}

type stats = { merges : int; alignments : int; sweeps : int }

let span_free can_fill layer ~track ~net lo hi =
  let ok = ref true in
  for x = lo to hi do
    if not (can_fill layer ~track ~x ~net) then ok := false
  done;
  !ok

(* Fill same-net gaps of width <= max_extension. *)
let merge_pass can_fill (rules : Rules.t) layer tracks fills merges =
  Array.iteri
    (fun track segs ->
      let rec walk = function
        | (a : Extract.segment) :: (b :: rest_after as rest) ->
          let gap_lo = a.Extract.hi + 1 and gap_hi = b.Extract.lo - 1 in
          let width = gap_hi - gap_lo + 1 in
          if
            a.Extract.net = b.Extract.net
            && a.Extract.net <> Extract.blockage_net
            && width >= 1
            && width <= rules.Rules.max_extension
            && span_free can_fill layer ~track ~net:a.Extract.net gap_lo gap_hi
          then begin
            fills :=
              {
                layer;
                track;
                span = I.make ~lo:gap_lo ~hi:gap_hi;
                net = a.Extract.net;
              }
              :: !fills;
            incr merges;
            a.Extract.hi <- b.Extract.hi;
            (* b is absorbed *)
            walk (a :: rest_after) |> fun tail -> tail
          end
          else a :: walk rest
        | ([ _ ] | []) as tail -> tail
      in
      tracks.(track) <- walk segs)
    tracks

(* Narrow two overlapping cuts on adjacent tracks to their common
   intersection.  Returns true when the pair was aligned. *)
let align_cuts can_fill (rules : Rules.t) layer tracks fills alignments =
  let cut_max = (2 * rules.Rules.min_line_end_gap) - 1 in
  let changed = ref false in
  let seg_array = Array.map Array.of_list tracks in
  let cuts_of track =
    let segs = seg_array.(track) in
    let out = ref [] in
    for i = 0 to Array.length segs - 2 do
      let a = segs.(i) and b = segs.(i + 1) in
      let lo = a.Extract.hi + 1 and hi = b.Extract.lo - 1 in
      if hi >= lo && hi - lo + 1 <= cut_max then out := (i, lo, hi) :: !out
    done;
    List.rev !out
  in
  (* bounds are recomputed from the live segments: earlier alignments in
     the same sweep may have narrowed this cut already *)
  let live_cut track idx =
    let a = seg_array.(track).(idx) and b = seg_array.(track).(idx + 1) in
    let lo = a.Extract.hi + 1 and hi = b.Extract.lo - 1 in
    if hi >= lo && hi - lo + 1 <= cut_max then Some (lo, hi) else None
  in
  let try_align t1 (i1, _, _) t2 (i2, _, _) =
    match live_cut t1 i1, live_cut t2 i2 with
    | None, _ | _, None -> false
    | Some (lo1, hi1), Some (lo2, hi2) ->
    let aligned = lo1 = lo2 && hi1 = hi2 in
    let disjoint = hi1 < lo2 || hi2 < lo1 in
    if aligned || disjoint then false
    else begin
      let tlo = max lo1 lo2 and thi = min hi1 hi2 in
      if thi - tlo + 1 < rules.Rules.min_line_end_gap then false
      else begin
        let grow track idx lo hi =
          (* extend the cut's left segment right up to tlo-1 and its
             right segment left down to thi+1 *)
          let a = seg_array.(track).(idx) and b = seg_array.(track).(idx + 1) in
          let ext_a = tlo - lo and ext_b = hi - thi in
          if
            ext_a <= rules.Rules.max_extension
            && ext_b <= rules.Rules.max_extension
            && (ext_a = 0 || a.Extract.net <> Extract.blockage_net)
            && (ext_b = 0 || b.Extract.net <> Extract.blockage_net)
            && (ext_a = 0
               || span_free can_fill layer ~track ~net:a.Extract.net lo (tlo - 1))
            && (ext_b = 0
               || span_free can_fill layer ~track ~net:b.Extract.net (thi + 1) hi)
          then Some (a, b, ext_a, ext_b)
          else None
        in
        match grow t1 i1 lo1 hi1, grow t2 i2 lo2 hi2 with
        | Some (a1, b1, e1a, e1b), Some (a2, b2, e2a, e2b) ->
          let apply track (a : Extract.segment) (b : Extract.segment) lo hi ea eb =
            if ea > 0 then begin
              fills :=
                { layer; track; span = I.make ~lo ~hi:(tlo - 1); net = a.Extract.net }
                :: !fills;
              a.Extract.hi <- tlo - 1
            end;
            if eb > 0 then begin
              fills :=
                { layer; track; span = I.make ~lo:(thi + 1) ~hi; net = b.Extract.net }
                :: !fills;
              b.Extract.lo <- thi + 1
            end
          in
          apply t1 a1 b1 lo1 hi1 e1a e1b;
          apply t2 a2 b2 lo2 hi2 e2a e2b;
          incr alignments;
          true
        | None, _ | _, None -> false
      end
    end
  in
  for t = 0 to Array.length tracks - 2 do
    List.iter
      (fun c1 ->
        (* recompute the neighbour's cuts each time: earlier alignments
           may have changed them *)
        List.iter
          (fun c2 ->
            if try_align t c1 (t + 1) c2 then changed := true)
          (cuts_of (t + 1)))
      (cuts_of t)
  done;
  Array.iteri (fun i segs -> tracks.(i) <- Array.to_list segs) seg_array;
  !changed

let extend ?(can_fill = fun _ ~track:_ ~x:_ ~net:_ -> true) rules
    (layout : Extract.layout) =
  let fills = ref [] in
  let merges = ref 0 and alignments = ref 0 in
  let sweeps = ref 0 in
  let continue_ = ref true in
  while !continue_ && !sweeps < 4 do
    incr sweeps;
    let before = (!merges, !alignments) in
    merge_pass can_fill rules Rgrid.Layer.M2 layout.Extract.m2 fills merges;
    merge_pass can_fill rules Rgrid.Layer.M3 layout.Extract.m3 fills merges;
    let c2 =
      align_cuts can_fill rules Rgrid.Layer.M2 layout.Extract.m2 fills alignments
    in
    let c3 =
      align_cuts can_fill rules Rgrid.Layer.M3 layout.Extract.m3 fills alignments
    in
    continue_ := c2 || c3 || before <> (!merges, !alignments)
  done;
  (List.rev !fills, { merges = !merges; alignments = !alignments; sweeps = !sweeps })
