(** Dense two-phase primal simplex for linear programs.

    Variables are continuous and non-negative; upper bounds are
    expressed as ordinary constraints.  This is the LP engine behind
    the exact ILP solver used for the paper's Formula (1): commercial
    ILP bindings are unavailable in this environment, so the relaxation
    and the branch-and-bound around it are implemented from scratch. *)

type relation = Le | Ge | Eq

type linexpr = (int * float) list
(** Sparse [(variable, coefficient)] terms; variables are [0..n-1]. *)

type constr = { terms : linexpr; rel : relation; rhs : float }

type problem = {
  num_vars : int;
  maximize : bool;
  objective : linexpr;
  constraints : constr list;
}

type solution = { objective_value : float; values : float array }

type outcome =
  | Optimal of solution
  | Infeasible
  | Unbounded
  | Iteration_limit

val solve : ?max_pivots:int -> problem -> outcome
(** [solve p] runs phase-1 (artificial variables) when needed, then
    phase-2 primal simplex with Bland's rule as the anti-cycling
    fallback.  [max_pivots] defaults to a generous bound proportional
    to the tableau size. *)

val constr : linexpr -> relation -> float -> constr

val eval : linexpr -> float array -> float
(** Evaluate a linear expression at a point. *)

val feasible : ?eps:float -> problem -> float array -> bool
(** Check a point against all constraints and non-negativity. *)
