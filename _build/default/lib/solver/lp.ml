type relation = Le | Ge | Eq

type linexpr = (int * float) list

type constr = { terms : linexpr; rel : relation; rhs : float }

type problem = {
  num_vars : int;
  maximize : bool;
  objective : linexpr;
  constraints : constr list;
}

type solution = { objective_value : float; values : float array }

type outcome =
  | Optimal of solution
  | Infeasible
  | Unbounded
  | Iteration_limit

let eps = 1e-9

let constr terms rel rhs = { terms; rel; rhs }

let eval terms x =
  List.fold_left (fun acc (v, c) -> acc +. (c *. x.(v))) 0.0 terms

let feasible ?(eps = 1e-6) p x =
  Array.for_all (fun v -> v >= -.eps) x
  && List.for_all
       (fun c ->
         let lhs = eval c.terms x in
         match c.rel with
         | Le -> lhs <= c.rhs +. eps
         | Ge -> lhs >= c.rhs -. eps
         | Eq -> Float.abs (lhs -. c.rhs) <= eps)
       p.constraints

(* Dense tableau state.  Rows may be marked dead (redundant equalities
   discovered at the end of phase 1). *)
type tableau = {
  nstruct : int;
  ncols : int; (* structural + slack + artificial *)
  nart : int;
  a : float array array; (* m rows of ncols+1 floats; rhs at index ncols *)
  basis : int array;
  live : bool array;
  mutable red : float array; (* reduced cost row, length ncols *)
  mutable objval : float; (* current phase objective (minimization) *)
}

let pivot t r c =
  let arow = t.a.(r) in
  let piv = arow.(c) in
  for j = 0 to t.ncols do
    arow.(j) <- arow.(j) /. piv
  done;
  arow.(c) <- 1.0;
  let eliminate row =
    let f = row.(c) in
    if Float.abs f > eps then begin
      for j = 0 to t.ncols do
        row.(j) <- row.(j) -. (f *. arow.(j))
      done;
      row.(c) <- 0.0
    end
  in
  Array.iteri (fun i row -> if i <> r && t.live.(i) then eliminate row) t.a;
  (* reduced-cost row update *)
  let f = t.red.(c) in
  if Float.abs f > eps then begin
    for j = 0 to t.ncols - 1 do
      t.red.(j) <- t.red.(j) -. (f *. arow.(j))
    done;
    t.red.(c) <- 0.0;
    (* z moves by r_c * θ, where θ is the (already normalized) rhs *)
    t.objval <- t.objval +. (f *. arow.(t.ncols))
  end;
  t.basis.(r) <- c

(* Recompute reduced costs and objective from a (minimization) cost
   vector and the current basis. *)
let install_costs t cost =
  let red = Array.make t.ncols 0.0 in
  Array.blit cost 0 red 0 t.ncols;
  let objval = ref 0.0 in
  Array.iteri
    (fun i row ->
      if t.live.(i) then begin
        let cb = cost.(t.basis.(i)) in
        if Float.abs cb > eps then begin
          for j = 0 to t.ncols - 1 do
            red.(j) <- red.(j) -. (cb *. row.(j))
          done;
          objval := !objval +. (cb *. row.(t.ncols))
        end
      end)
    t.a;
  t.red <- red;
  t.objval <- !objval

(* One simplex phase: minimize until no negative reduced cost among
   allowed columns.  Uses Dantzig's rule, falling back to Bland's rule
   after a stretch of degenerate pivots to guarantee termination. *)
type phase_result = Phase_optimal | Phase_unbounded | Phase_limit

let run_phase t ~allowed ~max_pivots =
  let m = Array.length t.a in
  let stall = ref 0 in
  let pivots = ref 0 in
  let result = ref None in
  while !result = None do
    if !pivots > max_pivots then result := Some Phase_limit
    else begin
      let bland = !stall > 2 * (m + t.ncols) in
      (* entering column *)
      let enter = ref (-1) in
      let best = ref (-.eps) in
      (try
         for j = 0 to t.ncols - 1 do
           if allowed j && t.red.(j) < -.eps then
             if bland then begin
               enter := j;
               raise Exit
             end
             else if t.red.(j) < !best then begin
               best := t.red.(j);
               enter := j
             end
         done
       with Exit -> ());
      if !enter < 0 then result := Some Phase_optimal
      else begin
        let c = !enter in
        (* leaving row: min ratio, Bland tie-break on basis index *)
        let leave = ref (-1) in
        let best_ratio = ref infinity in
        for i = 0 to m - 1 do
          if t.live.(i) && t.a.(i).(c) > eps then begin
            let ratio = t.a.(i).(t.ncols) /. t.a.(i).(c) in
            if
              ratio < !best_ratio -. eps
              || (ratio < !best_ratio +. eps
                  && (!leave < 0 || t.basis.(i) < t.basis.(!leave)))
            then begin
              best_ratio := ratio;
              leave := i
            end
          end
        done;
        if !leave < 0 then result := Some Phase_unbounded
        else begin
          let prev = t.objval in
          pivot t !leave c;
          incr pivots;
          if t.objval > prev -. eps then incr stall else stall := 0
        end
      end
    end
  done;
  match !result with Some r -> r | None -> assert false

let solve ?max_pivots p =
  let n = p.num_vars in
  (* Normalize rows to non-negative rhs; count slack and artificial
     columns. *)
  let rows =
    List.map
      (fun c ->
        if c.rhs < 0.0 then
          let terms = List.map (fun (v, k) -> (v, -.k)) c.terms in
          let rel = match c.rel with Le -> Ge | Ge -> Le | Eq -> Eq in
          { terms; rel; rhs = -.c.rhs }
        else c)
      p.constraints
  in
  let m = List.length rows in
  let nslack =
    List.fold_left
      (fun acc c -> match c.rel with Le | Ge -> acc + 1 | Eq -> acc)
      0 rows
  in
  let nart =
    List.fold_left
      (fun acc c -> match c.rel with Ge | Eq -> acc + 1 | Le -> acc)
      0 rows
  in
  let ncols = n + nslack + nart in
  let a = Array.init m (fun _ -> Array.make (ncols + 1) 0.0) in
  let basis = Array.make m 0 in
  let next_slack = ref n in
  let next_art = ref (n + nslack) in
  List.iteri
    (fun i c ->
      List.iter
        (fun (v, k) ->
          if v < 0 || v >= n then invalid_arg "Lp.solve: variable out of range";
          a.(i).(v) <- a.(i).(v) +. k)
        c.terms;
      a.(i).(ncols) <- c.rhs;
      (match c.rel with
      | Le ->
        a.(i).(!next_slack) <- 1.0;
        basis.(i) <- !next_slack;
        incr next_slack
      | Ge ->
        a.(i).(!next_slack) <- -1.0;
        incr next_slack;
        a.(i).(!next_art) <- 1.0;
        basis.(i) <- !next_art;
        incr next_art
      | Eq ->
        a.(i).(!next_art) <- 1.0;
        basis.(i) <- !next_art;
        incr next_art))
    rows;
  let t =
    {
      nstruct = n;
      ncols;
      nart;
      a;
      basis;
      live = Array.make m true;
      red = Array.make ncols 0.0;
      objval = 0.0;
    }
  in
  let max_pivots =
    match max_pivots with Some k -> k | None -> 200 * (m + ncols + 16)
  in
  let is_art j = j >= n + nslack in
  let finish_phase2 () =
    match run_phase t ~allowed:(fun j -> not (is_art j)) ~max_pivots with
    | Phase_limit -> Iteration_limit
    | Phase_unbounded -> Unbounded
    | Phase_optimal ->
      let values = Array.make n 0.0 in
      Array.iteri
        (fun i b ->
          if t.live.(i) && b < n then values.(b) <- t.a.(i).(t.ncols))
        t.basis;
      let objective_value = eval p.objective values in
      Optimal { objective_value; values }
  in
  let phase2 () =
    let cost = Array.make ncols 0.0 in
    List.iter
      (fun (v, k) -> cost.(v) <- cost.(v) +. (if p.maximize then -.k else k))
      p.objective;
    install_costs t cost;
    finish_phase2 ()
  in
  if nart = 0 then phase2 ()
  else begin
    (* Phase 1: minimize the sum of artificials. *)
    let cost = Array.make ncols 0.0 in
    for j = n + nslack to ncols - 1 do
      cost.(j) <- 1.0
    done;
    install_costs t cost;
    match run_phase t ~allowed:(fun _ -> true) ~max_pivots with
    | Phase_limit -> Iteration_limit
    | Phase_unbounded -> Infeasible (* phase 1 is bounded below by 0 *)
    | Phase_optimal ->
      if t.objval > 1e-6 then Infeasible
      else begin
        (* Drive artificials out of the basis; drop redundant rows. *)
        Array.iteri
          (fun i b ->
            if t.live.(i) && is_art b then begin
              let col = ref (-1) in
              (try
                 for j = 0 to (n + nslack) - 1 do
                   if Float.abs t.a.(i).(j) > 1e-7 then begin
                     col := j;
                     raise Exit
                   end
                 done
               with Exit -> ());
              if !col >= 0 then pivot t i !col else t.live.(i) <- false
            end)
          t.basis;
        phase2 ()
      end
  end
