lib/solver/lp.mli:
