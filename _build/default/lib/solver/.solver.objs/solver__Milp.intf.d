lib/solver/milp.mli:
