lib/solver/milp.ml: Array Float Int List Lp Printf Sys
