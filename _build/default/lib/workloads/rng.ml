type t = { mutable state : int64 }

let create seed = { state = seed }

let next t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound <= 0";
  let v = Int64.to_int (Int64.shift_right_logical (next t) 2) in
  v mod bound

let in_range t ~lo ~hi =
  if hi < lo then invalid_arg "Rng.in_range: empty range";
  lo + int t (hi - lo + 1)

let float t =
  let v = Int64.to_float (Int64.shift_right_logical (next t) 11) in
  v /. 9007199254740992.0

let choose_weighted t weighted =
  let total = List.fold_left (fun acc (_, w) -> acc +. w) 0.0 weighted in
  let target = float t *. total in
  let rec pick acc = function
    | [] -> invalid_arg "Rng.choose_weighted: empty"
    | [ (k, _) ] -> k
    | (k, w) :: rest -> if acc +. w >= target then k else pick (acc +. w) rest
  in
  pick 0.0 weighted

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
