lib/workloads/rng.mli:
