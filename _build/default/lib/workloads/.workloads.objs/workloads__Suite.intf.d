lib/workloads/suite.mli: Netlist
