lib/workloads/suite.ml: Float Generator Int64 List Printf
