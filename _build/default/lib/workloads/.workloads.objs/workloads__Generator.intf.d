lib/workloads/generator.mli: Netlist
