lib/workloads/generator.ml: Array Float Geometry Int List Netlist Printf Rng
