(** Deterministic splitmix64 PRNG so every benchmark instance is
    reproducible bit-for-bit across runs and machines (the repo has no
    access to the paper's original PARR benchmarks; see DESIGN.md). *)

type t

val create : int64 -> t
val next : t -> int64
val int : t -> int -> int
(** [int t bound] is uniform in [0, bound); [bound > 0]. *)

val in_range : t -> lo:int -> hi:int -> int
(** Uniform in the closed range. *)

val float : t -> float
(** Uniform in [0, 1). *)

val choose_weighted : t -> (int * float) list -> int
(** Pick a key with probability proportional to its weight. *)

val shuffle : t -> 'a array -> unit
