(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation section (Sec. 5) plus kernel micro-benchmarks and the
   ablations called out in DESIGN.md.

     dune exec bench/main.exe                 -- run everything
     dune exec bench/main.exe -- table2 fig6  -- run a subset
     CPR_BENCH_SCALE=0.2 dune exec bench/main.exe
                                              -- shrink the circuits

   Absolute numbers differ from the paper (synthetic placements, a
   simulated ILP solver, different hardware); the reproduction target
   is the orderings and approximate factors, which each experiment
   prints next to the paper's values. *)

module Eval = Metrics.Eval
module Report = Metrics.Report
module Suite = Workloads.Suite
module PA = Pinaccess.Pin_access

let pf = Format.printf

(* a malformed env var must not kill a long bench run: warn and keep
   the default *)
let env_float name ~default =
  match Sys.getenv_opt name with
  | None -> default
  | Some s ->
    (match float_of_string_opt (String.trim s) with
    | Some f -> f
    | None ->
      Printf.eprintf "warning: ignoring malformed %s=%S (using %g)\n%!" name s
        default;
      default)

let env_int name ~default =
  match Sys.getenv_opt name with
  | None -> default
  | Some s ->
    (match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> n
    | Some n ->
      (* 0 or negative must not silently mean "sequential": say so and
         run with the default so the parallel rows stay meaningful *)
      Printf.eprintf
        "warning: %s=%d out of range (must be >= 1); using %d\n%!" name n
        default;
      default
    | None ->
      Printf.eprintf "warning: ignoring malformed %s=%S (using %d)\n%!" name s
        default;
      default)

let scale = env_float "CPR_BENCH_SCALE" ~default:1.0

(* domains for the [parallel] experiment; the container may expose a
   single core, in which case the experiment still checks determinism
   but reports no speedup *)
let jobs = env_int "CPR_BENCH_JOBS" ~default:2

(* budget for each exact-ILP solve; the paper's CPLEX-class solver gets
   hours, our in-repo branch-and-bound gets this many seconds and
   reports when the cap bites *)
let ilp_budget = env_float "CPR_BENCH_ILP_LIMIT" ~default:60.0

let section title =
  pf "@.================================================================@.";
  pf "%s@." title;
  pf "================================================================@."

(* --------------------------------------------------------------- *)
(* Paper reference values                                           *)
(* --------------------------------------------------------------- *)

type paper_row = {
  rout : float;
  via : int;
  wl : int;
  cpu : float;
}

(* Table 2 of the paper: [12] sequential, [21] w/o PAO, CPR. *)
let paper_table2 =
  [
    ("ecc", { rout = 96.41; via = 6482; wl = 46588; cpu = 19.98 },
     { rout = 94.55; via = 5409; wl = 38428; cpu = 10.00 },
     { rout = 97.25; via = 4907; wl = 40465; cpu = 2.01 });
    ("efc", { rout = 94.91; via = 8558; wl = 57834; cpu = 34.52 },
     { rout = 92.83; via = 7989; wl = 52329; cpu = 15.60 },
     { rout = 96.80; via = 7418; wl = 51973; cpu = 3.69 });
    ("ctl", { rout = 95.27; via = 10573; wl = 72388; cpu = 37.14 },
     { rout = 92.42; via = 9327; wl = 64217; cpu = 17.80 },
     { rout = 96.86; via = 8757; wl = 63900; cpu = 3.69 });
    ("alu", { rout = 95.17; via = 11645; wl = 75679; cpu = 45.92 },
     { rout = 93.37; via = 10496; wl = 64604; cpu = 20.10 },
     { rout = 97.01; via = 9371; wl = 62249; cpu = 5.24 });
    ("div", { rout = 94.60; via = 22829; wl = 155704; cpu = 106.0 },
     { rout = 92.12; via = 21001; wl = 139811; cpu = 47.70 },
     { rout = 95.89; via = 19665; wl = 139201; cpu = 24.32 });
    ("top", { rout = 95.33; via = 82644; wl = 513366; cpu = 763.2 },
     { rout = 93.44; via = 73487; wl = 434051; cpu = 147.4 },
     { rout = 96.79; via = 65167; wl = 436972; cpu = 40.37 });
  ]

let circuits () =
  List.map (fun (id, _, _, _) -> Suite.find id) paper_table2

(* --------------------------------------------------------------- *)
(* Machine-readable telemetry (BENCH.json)                          *)
(* --------------------------------------------------------------- *)

(* Per-circuit summaries recorded by table2, written with the kernel
   counters at the end of every bench invocation so each PR leaves a
   diffable perf record.  [scripts/bench_gate.py] diffs the quality
   numbers against the committed [bench/BASELINE.json]. *)
let telemetry_file = "BENCH.json"
let bench_circuits : (string * (string * Eval.summary) list) list ref = ref []

(* Per-circuit rows recorded by the [parallel] experiment: sequential
   vs parallel wall-clock of the PAO stage and of the full flow, the
   bit-identity flag the CI job asserts on, the effective job count,
   and the work-stealing scheduler's telemetry for the parallel runs
   (chunk/steal counts, victim queue-depth histogram) plus the maze
   kernel's allocation rate — docs/PERF.md explains how to read
   them. *)
type parallel_row = {
  pr_id : string;
  pr_jobs : int;  (** effective [-j] of the parallel runs *)
  pao_seq_wall : float;
  pao_par_wall : float;
  pao_identical : bool;
  flow_seq : Eval.summary;
  flow_par : Eval.summary;
  flow_seq_wall : float;
  flow_par_wall : float;
  pr_chunks : int;  (** chunks run from the owner's own deque *)
  pr_steals : int;  (** chunks obtained by stealing *)
  pr_steal_misses : int;  (** empty scan passes *)
  pr_queue_depth : int array;  (** log2-bucketed victim depth at steals *)
  pr_alloc_per_node : float;  (** minor words per maze expansion (par flow) *)
}

let parallel_rows : parallel_row list ref = ref []

(* Per-run rows recorded by the [mega] experiment: the streamed PAO
   (panel problems built as solved, never all resident) on the 10x-top
   scale tier, sequential vs parallel. *)
type mega_row = {
  mg_id : string;
  mg_nets : int;
  mg_panels : int;
  mg_jobs : int;
  mg_pao_seq_wall : float;
  mg_pao_par_wall : float;
  mg_identical : bool;
  mg_chunks : int;
  mg_steals : int;
  mg_steal_misses : int;
  mg_queue_depth : int array;
}

let mega_rows : mega_row list ref = ref []

(* Per-circuit rows recorded by the [eco] experiment: cold solve vs
   incremental re-optimization over a 5%-dirty edit stream. *)
type eco_row = {
  eco_id : string;
  eco_cold_wall : float;
  eco_steps : int;
  eco_incremental_wall : float;
  eco_scratch_wall : float;
  eco_speedup : float;
  eco_hit_rate : float;
  eco_warm_started : int;
}

let eco_rows : eco_row list ref = ref []

(* Per-circuit rows recorded by the [serve] experiment: sustained
   edits/sec and client-observed latency percentiles of the ECO
   service under a multi-session load run. *)
type serve_row = {
  sv_id : string;
  sv_clients : int;
  sv_batches : int;  (** acknowledged *)
  sv_edits_per_sec : float;
  sv_p50_ms : float;
  sv_p99_ms : float;
  sv_timeouts : int;
  sv_shed : int;
  sv_mismatches : int;
}

let serve_rows : serve_row list ref = ref []

(* Per-library rows recorded by the [libcheck] experiment: library
   sweep throughput (cells/sec over the domain pool), the sequential
   vs parallel report-identity flag, and the pin grade distribution. *)
type libcheck_row = {
  lc_id : string;
  lc_cells : int;
  lc_pins : int;
  lc_jobs : int;
  lc_seq_wall : float;
  lc_par_wall : float;
  lc_identical : bool;
  lc_cells_per_sec : float;  (** of the parallel sweep *)
  lc_weak_pins : int;
  lc_grades : (string * int) list;  (** pins per grade, worst last *)
}

let libcheck_rows : libcheck_row list ref = ref []

(* Per-design rows recorded by the [tpl] experiment: the color-
   constrained pin access ladder on dense stress layouts — coloring
   outcome of the routed layout, the -j2 bit-identity flag (coloring
   included), and the no-leak flag (a TPL run must not perturb a
   following TPL-off run). *)
type tpl_row = {
  tp_id : string;
  tp_colors : int;
  tp_nets : int;
  tp_features : int;  (** M2 features of the routed layout *)
  tp_solid : int;
  tp_stitched : int;
  tp_uncolored : int;
  tp_identical : bool;  (** -j2 PAO run bit-identical, coloring included *)
  tp_off_identical : bool;
      (** a TPL-off run after the TPL runs equals the one before them *)
  tp_pao_wall : float;
  tp_flow_wall : float;
  tp_summary : Eval.summary;
}

let tpl_rows : tpl_row list ref = ref []

(* Per-circuit rows recorded by the [tune] experiment: the untuned PAO
   stage vs the deterministic bandit tuner, compared in work units
   (LR iterations — the reward currency, DESIGN.md §12) and wall
   clock, plus the zero-drift flag: an untuned run after the tuned one
   must be bit-identical to one before it. *)
type tune_row = {
  tn_id : string;
  tn_panels : int;
  tn_seed : int;
  tn_untuned_wall : float;
  tn_tuned_wall : float;
  tn_untuned_work : int;  (** LR iterations of the untuned solve *)
  tn_tuned_work : int;
  tn_untuned_obj : float;
  tn_tuned_obj : float;
  tn_off_identical : bool;
      (** untuned runs before and after the tuned one are bit-identical *)
  tn_pulls : int;
  tn_regret : float;
  tn_histogram : (string * int) list;  (** selections per arm *)
}

let tune_rows : tune_row list ref = ref []

let write_telemetry ~ran =
  let open Obs.Json in
  let summary_json (s : Eval.summary) =
    Obj
      [
        ("routability", Num s.Eval.routability);
        ("via_count", num_int s.Eval.via_count);
        ("wirelength", num_int s.Eval.wirelength);
        ("cpu", Num s.Eval.cpu);
      ]
  in
  let circuits =
    List.rev_map
      (fun (id, flows) ->
        Obj
          [
            ("id", Str id);
            ("flows", Obj (List.map (fun (tag, s) -> (tag, summary_json s)) flows));
          ])
      !bench_circuits
  in
  let depth_json d =
    List (Array.to_list (Array.map (fun c -> num_int c) d))
  in
  let parallel =
    List.rev_map
      (fun r ->
        Obj
          [
            ("id", Str r.pr_id);
            ("jobs", num_int r.pr_jobs);
            ("pao_seq_wall", Num r.pao_seq_wall);
            ("pao_par_wall", Num r.pao_par_wall);
            ("identical", Bool r.pao_identical);
            ("flow_seq", summary_json r.flow_seq);
            ("flow_par", summary_json r.flow_par);
            ("flow_seq_wall", Num r.flow_seq_wall);
            ("flow_par_wall", Num r.flow_par_wall);
            ("chunks", num_int r.pr_chunks);
            ("steals", num_int r.pr_steals);
            ("steal_misses", num_int r.pr_steal_misses);
            ("queue_depth", depth_json r.pr_queue_depth);
            ("alloc_per_node", Num r.pr_alloc_per_node);
          ])
      !parallel_rows
  in
  let mega =
    List.rev_map
      (fun r ->
        Obj
          [
            ("id", Str r.mg_id);
            ("nets", num_int r.mg_nets);
            ("panels", num_int r.mg_panels);
            ("jobs", num_int r.mg_jobs);
            ("pao_seq_wall", Num r.mg_pao_seq_wall);
            ("pao_par_wall", Num r.mg_pao_par_wall);
            ("identical", Bool r.mg_identical);
            ("chunks", num_int r.mg_chunks);
            ("steals", num_int r.mg_steals);
            ("steal_misses", num_int r.mg_steal_misses);
            ("queue_depth", depth_json r.mg_queue_depth);
          ])
      !mega_rows
  in
  let eco =
    List.rev_map
      (fun r ->
        Obj
          [
            ("id", Str r.eco_id);
            ("cold_pao_wall", Num r.eco_cold_wall);
            ("steps", num_int r.eco_steps);
            ("incremental_wall", Num r.eco_incremental_wall);
            ("scratch_wall", Num r.eco_scratch_wall);
            ("speedup", Num r.eco_speedup);
            ("hit_rate", Num r.eco_hit_rate);
            ("warm_started", num_int r.eco_warm_started);
          ])
      !eco_rows
  in
  let serve =
    List.rev_map
      (fun r ->
        Obj
          [
            ("id", Str r.sv_id);
            ("clients", num_int r.sv_clients);
            ("batches", num_int r.sv_batches);
            ("edits_per_sec", Num r.sv_edits_per_sec);
            ("p50_ms", Num r.sv_p50_ms);
            ("p99_ms", Num r.sv_p99_ms);
            ("timeouts", num_int r.sv_timeouts);
            ("shed", num_int r.sv_shed);
            ("mismatches", num_int r.sv_mismatches);
          ])
      !serve_rows
  in
  let libcheck =
    List.rev_map
      (fun r ->
        Obj
          [
            ("id", Str r.lc_id);
            ("cells", num_int r.lc_cells);
            ("pins", num_int r.lc_pins);
            ("jobs", num_int r.lc_jobs);
            ("seq_wall", Num r.lc_seq_wall);
            ("par_wall", Num r.lc_par_wall);
            ("identical", Bool r.lc_identical);
            ("cells_per_sec", Num r.lc_cells_per_sec);
            ("weak_pins", num_int r.lc_weak_pins);
            ( "grades",
              Obj (List.map (fun (g, n) -> (g, num_int n)) r.lc_grades) );
          ])
      !libcheck_rows
  in
  let tpl =
    List.rev_map
      (fun r ->
        Obj
          [
            ("id", Str r.tp_id);
            ("colors", num_int r.tp_colors);
            ("nets", num_int r.tp_nets);
            ("features", num_int r.tp_features);
            ("solid", num_int r.tp_solid);
            ("stitched", num_int r.tp_stitched);
            ("uncolored", num_int r.tp_uncolored);
            ("identical", Bool r.tp_identical);
            ("off_identical", Bool r.tp_off_identical);
            ("pao_wall", Num r.tp_pao_wall);
            ("flow_wall", Num r.tp_flow_wall);
            ("flow", summary_json r.tp_summary);
          ])
      !tpl_rows
  in
  let tune =
    List.rev_map
      (fun r ->
        Obj
          [
            ("id", Str r.tn_id);
            ("panels", num_int r.tn_panels);
            ("seed", num_int r.tn_seed);
            ("untuned_wall", Num r.tn_untuned_wall);
            ("tuned_wall", Num r.tn_tuned_wall);
            ("untuned_work", num_int r.tn_untuned_work);
            ("tuned_work", num_int r.tn_tuned_work);
            ("untuned_obj", Num r.tn_untuned_obj);
            ("tuned_obj", Num r.tn_tuned_obj);
            ("off_identical", Bool r.tn_off_identical);
            ("pulls", num_int r.tn_pulls);
            ("regret", Num r.tn_regret);
            ( "histogram",
              Obj (List.map (fun (a, n) -> (a, num_int n)) r.tn_histogram) );
          ])
      !tune_rows
  in
  let json =
    Obj
      [
        ("bench", Str "cpr");
        ("scale", Num scale);
        ("jobs", num_int jobs);
        ("available_domains", num_int (Domain.recommended_domain_count ()));
        ("experiments", List (List.map (fun e -> Str e) ran));
        ("circuits", List circuits);
        ("parallel", List parallel);
        ("mega", List mega);
        ("eco", List eco);
        ("serve", List serve);
        ("libcheck", List libcheck);
        ("tpl", List tpl);
        ("tune", List tune);
        ("metrics", Obs.Metrics.to_json (Obs.Metrics.snapshot ()));
      ]
  in
  (* atomic: a crashed or killed bench run never leaves a torn
     BENCH.json for the CI validator to choke on *)
  Obs.Fsio.atomic_write telemetry_file (to_string_pretty json ^ "\n");
  pf "@.telemetry written to %s@." telemetry_file

(* --------------------------------------------------------------- *)
(* Table 2                                                          *)
(* --------------------------------------------------------------- *)

let run_flows design =
  let seq = Router.Sequential.run design in
  let ncr = Router.Baseline_ncr.run design in
  let cpr = Router.Cpr.run design in
  (Eval.of_flow ~name:"seq" seq, Eval.of_flow ~name:"ncr" ncr,
   Eval.of_flow ~name:"cpr" cpr, seq, ncr, cpr)

let table2 () =
  section "Table 2 — routing quality: [12] sequential / [21] w/o PAO / CPR";
  pf "(paper values in parentheses; Via# extrapolated per routed net)@.@.";
  let rows = ref [] in
  let sums = Array.make 12 0.0 in
  let count = ref 0 in
  List.iter
    (fun (id, p_seq, p_ncr, p_cpr) ->
      let c = Suite.find id in
      let design = Suite.design ~scale c in
      let s_seq, s_ncr, s_cpr, _, _, _ = run_flows design in
      incr count;
      let record base (s : Eval.summary) =
        sums.(base) <- sums.(base) +. s.Eval.routability;
        sums.(base + 1) <- sums.(base + 1) +. float_of_int s.Eval.via_count;
        sums.(base + 2) <- sums.(base + 2) +. float_of_int s.Eval.wirelength;
        sums.(base + 3) <- sums.(base + 3) +. s.Eval.cpu
      in
      record 0 s_seq;
      record 4 s_ncr;
      record 8 s_cpr;
      bench_circuits :=
        (id, [ ("seq", s_seq); ("ncr", s_ncr); ("cpr", s_cpr) ])
        :: !bench_circuits;
      let cells (s : Eval.summary) (p : paper_row) =
        [
          Printf.sprintf "%.2f(%.2f)" s.Eval.routability p.rout;
          Printf.sprintf "%d(%d)" s.Eval.via_count p.via;
          Printf.sprintf "%d(%d)" s.Eval.wirelength p.wl;
          Printf.sprintf "%.2f(%.1f)" s.Eval.cpu p.cpu;
        ]
      in
      rows :=
        ((id :: cells s_seq p_seq) @ cells s_ncr p_ncr @ cells s_cpr p_cpr)
        :: !rows;
      pf "  %s done@." id)
    paper_table2;
  let header =
    [ "Ckt" ]
    @ List.concat_map
        (fun tag -> [ tag ^ ".Rout%"; tag ^ ".Via#"; tag ^ ".WL"; tag ^ ".cpu" ])
        [ "seq"; "ncr"; "cpr" ]
  in
  pf "@.%s@." (Report.table ~header (List.rev !rows));
  (* ratio row vs CPR, as in the paper's last line *)
  let n = float_of_int !count in
  let avg i = sums.(i) /. n in
  let ratio base i = avg (base + i) /. avg (8 + i) in
  pf "@.Average ratios over CPR (paper: seq 0.985/1.238/1.160/12.69, ncr 0.962/1.108/0.998/3.26)@.";
  pf "  seq/CPR: Rout %.3f  Via %.3f  WL %.3f  cpu %.2f@."
    (ratio 0 0) (ratio 0 1) (ratio 0 2) (ratio 0 3);
  pf "  ncr/CPR: Rout %.3f  Via %.3f  WL %.3f  cpu %.2f@."
    (ratio 4 0) (ratio 4 1) (ratio 4 2) (ratio 4 3)

(* --------------------------------------------------------------- *)
(* Figure 6 — LR vs ILP scalability on combined multi-panel         *)
(* instances                                                        *)
(* --------------------------------------------------------------- *)

let fig6 () =
  section "Figure 6 — LR vs ILP: runtime (a) and objective (b) vs #pins";
  pf "(ILP capped at %.0fs per instance; * marks a cap hit — the paper's@." ilp_budget;
  pf " ILP curve also leaves the plot near 1e4 s)@.@.";
  let targets =
    [ 250; 500; 1000; 2000; 3000; 4500; 6000 ]
    |> List.map (fun p -> int_of_float (float_of_int p *. Float.min 1.0 scale))
    |> List.filter (fun p -> p >= 50)
  in
  let rows =
    List.map
      (fun pins ->
        let design = Suite.sweep_design ~pins in
        let panels =
          List.init (Netlist.Design.num_panels design) (fun i -> i)
        in
        let lr, lr_time =
          Pinaccess.Unix_time.time (fun () ->
              PA.optimize_combined ~kind:PA.Lr design ~panels)
        in
        let ilp, ilp_time =
          Pinaccess.Unix_time.time (fun () ->
              PA.optimize_combined
                ~budget:(Pinaccess.Budget.start ~seconds:ilp_budget ())
                ~kind:PA.Ilp design
                ~panels)
        in
        let capped =
          List.exists (fun r -> not r.PA.proven_optimal) ilp.PA.reports
        in
        let real_pins = List.length lr.PA.assignments in
        pf "  %d pins done@." real_pins;
        [
          string_of_int real_pins;
          Report.fixed 3 lr_time;
          Report.fixed 3 ilp_time ^ (if capped then "*" else "");
          Report.fixed 1 lr.PA.objective;
          Report.fixed 1 ilp.PA.objective;
          Report.fixed 4 (lr.PA.objective /. Float.max 1e-9 ilp.PA.objective);
        ])
      targets
  in
  pf "@.%s@."
    (Report.table
       ~header:[ "pins"; "LR cpu(s)"; "ILP cpu(s)"; "LR obj"; "ILP obj"; "LR/ILP" ]
       rows);
  pf "@.Expected shape: ILP runtime grows super-linearly and dwarfs LR@.";
  pf "(Fig 6a); LR objective stays close to the ILP optimum (Fig 6b).@."

(* --------------------------------------------------------------- *)
(* Figure 7(a) — routing quality with LR-based vs ILP-based PAO     *)
(* --------------------------------------------------------------- *)

let fig7a () =
  section "Figure 7(a) — LR-based over ILP-based CPR routing quality";
  pf "(paper: Rout and WL ratios ~1.0; LR uses ~5%% more vias;@.";
  pf " circuits at half scale so the exact per-panel solves stay tractable)@.@.";
  let fig7a_scale = Float.min scale 0.5 in
  let rows =
    List.map
      (fun c ->
        let design = Suite.design ~scale:fig7a_scale c in
        let lr_pao = PA.optimize ~kind:PA.Lr design in
        let ilp_pao =
          PA.optimize
            ~budget:
              (Pinaccess.Budget.start ~seconds:(Float.min 3.0 ilp_budget) ())
            ~kind:PA.Ilp design
        in
        let lr = Eval.of_flow (Router.Cpr.run_with_pao design lr_pao) in
        let ilp = Eval.of_flow (Router.Cpr.run_with_pao design ilp_pao) in
        let rout, via, wl, _ = Eval.ratio lr ~reference:ilp in
        pf "  %s done@." c.Suite.id;
        [
          c.Suite.id;
          Report.fixed 3 rout;
          Report.fixed 3 via;
          Report.fixed 3 wl;
          Report.fixed 1 lr_pao.PA.objective;
          Report.fixed 1 ilp_pao.PA.objective;
        ])
      (circuits ())
  in
  pf "@.%s@."
    (Report.table
       ~header:
         [ "Ckt"; "Rout LR/ILP"; "Via# LR/ILP"; "WL LR/ILP"; "LR obj"; "ILP obj" ]
       rows)

(* --------------------------------------------------------------- *)
(* Figure 7(b) — congested grids before rip-up, w/ and w/o PAO      *)
(* --------------------------------------------------------------- *)

let stage1_congestion design ~pao =
  let grid = Rgrid.Grid.create design in
  let pao =
    if pao then Some (PA.optimize ~kind:PA.Lr design) else None
  in
  let specs = Router.Spec_builder.build grid ~pao in
  let maze = Rgrid.Maze.create grid in
  Array.iter
    (fun spec ->
      match
        Router.Net_router.route maze ~cost:Rgrid.Cost.default ~pfac:0.0 spec
      with
      | Some r -> Router.Negotiation.apply_route grid r
      | None -> ())
    specs;
  Rgrid.Grid.congested_nodes grid

let fig7b () =
  section "Figure 7(b) — initial congested routing grids, w/ vs w/o PAO";
  pf "(paper: 5-10x reduction with pin access optimization)@.@.";
  let rows =
    List.map
      (fun c ->
        let design = Suite.design ~scale c in
        let with_pao = stage1_congestion design ~pao:true in
        let without = stage1_congestion design ~pao:false in
        pf "  %s done@." c.Suite.id;
        [
          c.Suite.id;
          string_of_int with_pao;
          string_of_int without;
          Report.fixed 2
            (float_of_int without /. Float.max 1.0 (float_of_int with_pao));
        ])
      (circuits ())
  in
  pf "@.%s@."
    (Report.table ~header:[ "Ckt"; "w/ PAO"; "w/o PAO"; "reduction x" ] rows)

(* --------------------------------------------------------------- *)
(* Ablations                                                        *)
(* --------------------------------------------------------------- *)

let pao_quality design config =
  let pao = PA.optimize ~config ~kind:PA.Lr design in
  let total_iters =
    List.fold_left (fun k r -> k + r.PA.lr_iterations) 0 pao.PA.reports
  in
  (pao.PA.objective, total_iters, pao.PA.elapsed)

let ablation_f () =
  section "Ablation — objective weighting: sqrt (paper) vs linear length";
  pf "(optimal ILP selections per panel, isolating the objective choice)@.@.";
  let design = Suite.design ~scale:(Float.min scale 0.2) (Suite.find "ecc") in
  let run weighting =
    let gen =
      {
        Pinaccess.Interval_gen.default_config with
        Pinaccess.Interval_gen.weighting;
        (* the paper's original conflict relation, so every panel is
           strictly feasible for the exact solver *)
        clearance = 0;
      }
    in
    let lengths = ref [] in
    for panel = 0 to min 4 (Netlist.Design.num_panels design - 1) do
      let problem = Pinaccess.Problem.build_panel gen design ~panel in
      if Pinaccess.Problem.num_pins problem > 0 then begin
        let r = Pinaccess.Ilp.solve ~time_limit:30.0 problem in
        let chosen = Pinaccess.Solution.chosen r.Pinaccess.Ilp.solution in
        Array.iteri
          (fun id sel ->
            if sel then
              lengths :=
                float_of_int
                  (Pinaccess.Access_interval.length
                     problem.Pinaccess.Problem.intervals.(id))
                :: !lengths)
          chosen
      end
    done;
    let lengths = !lengths in
    let n = float_of_int (List.length lengths) in
    let mean = List.fold_left ( +. ) 0.0 lengths /. n in
    let mn = List.fold_left Float.min infinity lengths in
    let var =
      List.fold_left (fun acc l -> acc +. ((l -. mean) ** 2.0)) 0.0 lengths /. n
    in
    (mean, sqrt var /. Float.max 1e-9 mean, mn /. Float.max 1e-9 mean)
  in
  let mean_s, cv_s, bal_s = run Pinaccess.Objective.Sqrt_length in
  let mean_l, cv_l, bal_l = run Pinaccess.Objective.Linear_length in
  pf "sqrt:   mean length %.2f  coeff-of-variation %.3f  min/mean %.3f@."
    mean_s cv_s bal_s;
  pf "linear: mean length %.2f  coeff-of-variation %.3f  min/mean %.3f@."
    mean_l cv_l bal_l;
  pf "Expected shape: sqrt trades a little mean length for better balance@.";
  pf "(lower variation / higher min-to-mean, paper Sec. 3.3).@."

let ablation_step () =
  section "Ablation — subgradient step: decaying 1/k^0.95 (paper) vs constant";
  let design = Suite.design ~scale:(Float.min scale 0.5) (Suite.find "ecc") in
  let run constant_step =
    let config =
      {
        PA.default_config with
        PA.lr =
          {
            Pinaccess.Lagrangian.default_config with
            Pinaccess.Lagrangian.constant_step;
            plateau_exit = None;
          };
      }
    in
    pao_quality design config
  in
  let obj_d, it_d, t_d = run None in
  let obj_c, it_c, t_c = run (Some 0.5) in
  pf "decaying: objective %.1f, total iterations %d, cpu %.2fs@." obj_d it_d t_d;
  pf "constant: objective %.1f, total iterations %d, cpu %.2fs@." obj_c it_c t_c;
  pf "Expected shape: the decaying schedule converges (fewer iterations@.";
  pf "or better objective); a constant step oscillates (Held et al.).@."

let ablation_ub () =
  section "Ablation — LR iteration bound UB (paper: 200)";
  let design = Suite.design ~scale:(Float.min scale 0.5) (Suite.find "ecc") in
  let rows =
    List.map
      (fun ub ->
        let config =
          {
            PA.default_config with
            PA.lr =
              {
                Pinaccess.Lagrangian.default_config with
                Pinaccess.Lagrangian.max_iterations = ub;
                plateau_exit = None;
              };
          }
        in
        let obj, iters, cpu = pao_quality design config in
        [
          string_of_int ub;
          Report.fixed 1 obj;
          string_of_int iters;
          Report.fixed 2 cpu;
        ])
      [ 10; 25; 50; 100; 200; 400 ]
  in
  pf "%s@."
    (Report.table ~header:[ "UB"; "objective"; "iterations"; "cpu(s)" ] rows);
  pf "Expected shape: quality saturates near the paper's UB=200.@."

(* --------------------------------------------------------------- *)
(* Kernel micro-benchmarks (bechamel)                               *)
(* --------------------------------------------------------------- *)

let kernels () =
  section "Kernel micro-benchmarks (bechamel, monotonic clock)";
  let design = Suite.design ~scale:0.25 (Suite.find "ecc") in
  let cfg_gen = Pinaccess.Interval_gen.default_config in
  let problem = Pinaccess.Problem.build_panel cfg_gen design ~panel:0 in
  let grid = Rgrid.Grid.create design in
  let specs = Router.Spec_builder.build grid ~pao:None in
  let maze = Rgrid.Maze.create grid in
  let spec = specs.(0) in
  let tests =
    [
      Bechamel.Test.make ~name:"interval-generation"
        (Bechamel.Staged.stage (fun () ->
             Pinaccess.Interval_gen.generate_panel cfg_gen design ~panel:0));
      Bechamel.Test.make ~name:"conflict-detection"
        (Bechamel.Staged.stage (fun () ->
             Pinaccess.Conflict.detect ~clearance:2 problem.Pinaccess.Problem.intervals));
      Bechamel.Test.make ~name:"lr-maxgains"
        (Bechamel.Staged.stage (fun () ->
             Pinaccess.Lagrangian.max_gains problem
               ~gains:problem.Pinaccess.Problem.profits));
      Bechamel.Test.make ~name:"lr-solve-panel"
        (Bechamel.Staged.stage (fun () ->
             Pinaccess.Lagrangian.solve problem));
      Bechamel.Test.make ~name:"maze-route-net"
        (Bechamel.Staged.stage (fun () ->
             Router.Net_router.route maze ~cost:Rgrid.Cost.default ~pfac:0.0
               spec));
    ]
  in
  let test = Bechamel.Test.make_grouped ~name:"kernels" ~fmt:"%s/%s" tests in
  let instances = Bechamel.Toolkit.Instance.[ monotonic_clock ] in
  let cfg =
    Bechamel.Benchmark.cfg ~limit:2000
      ~quota:(Bechamel.Time.second 1.0)
      ~kde:(Some 1000) ()
  in
  let raw = Bechamel.Benchmark.all cfg instances test in
  let ols =
    Bechamel.Analyze.ols ~r_square:true ~bootstrap:0
      ~predictors:[| Bechamel.Measure.run |]
  in
  let results =
    Bechamel.Analyze.all ols Bechamel.Toolkit.Instance.monotonic_clock raw
  in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let ns =
        match Bechamel.Analyze.OLS.estimates ols_result with
        | Some (e :: _) -> e
        | Some [] | None -> nan
      in
      rows := [ name; Report.fixed 1 ns ] :: !rows)
    results;
  let rows = List.sort compare !rows in
  pf "%s@." (Report.table ~header:[ "kernel"; "ns/run" ] rows)

(* --------------------------------------------------------------- *)
(* Parallel execution — seq vs [-j jobs] wall-clock and determinism  *)
(* --------------------------------------------------------------- *)

(* The PR-3 executor promises *bit-identical* results: the panels of
   the PAO stage and the disjoint batches of the initial-route stage
   produce exactly the sequential answer, whatever [jobs] is.  This
   experiment measures the seq and parallel wall-clock per circuit
   (CPU seconds via [Sys.time] mislead under multiple domains) and
   records the equality flag that CI asserts on.  On a single-core
   container the parallel runs cannot be faster — the point of the
   record is the identity check plus an honest timing baseline. *)
let wall f =
  let t0 = Unix.gettimeofday () in
  let v = f () in
  (v, Unix.gettimeofday () -. t0)

(* Scheduler counters of the process-wide shared pool the parallel runs
   execute on; deltas around a run attribute chunks/steals to it. *)
let sched_stats () = Exec.stats (Exec.shared ~domains:jobs)

let sched_delta (before : Exec.stats) (after : Exec.stats) =
  ( after.Exec.chunks - before.Exec.chunks,
    after.Exec.chunks_stolen - before.Exec.chunks_stolen,
    after.Exec.steal_misses - before.Exec.steal_misses,
    Array.init
      (Array.length after.Exec.queue_depth)
      (fun i -> after.Exec.queue_depth.(i) - before.Exec.queue_depth.(i)) )

let counter_value name = Obs.Metrics.value (Obs.Metrics.counter name)

let parallel_exp () =
  section
    (Printf.sprintf
       "Parallel execution — sequential vs -j %d (available domains: %d)" jobs
       (Domain.recommended_domain_count ()));
  pf "(parallel results must be bit-identical to sequential; wall-clock@.";
  pf " speedup requires more than one core — see available domains)@.@.";
  let rows =
    List.map
      (fun c ->
        let design = Suite.design ~scale c in
        let pao_seq, pao_seq_wall =
          wall (fun () -> PA.optimize ~kind:PA.Lr design)
        in
        let pao_par, pao_par_wall =
          wall (fun () -> PA.optimize ~kind:PA.Lr ~j:jobs design)
        in
        let pao_identical =
          pao_seq.PA.objective = pao_par.PA.objective
          && pao_seq.PA.reports = pao_par.PA.reports
          && pao_seq.PA.assignments = pao_par.PA.assignments
        in
        let flow_seq, flow_seq_wall = wall (fun () -> Router.Cpr.run design) in
        let sched0 = sched_stats () in
        let alloc0 = counter_value "maze.alloc_words" in
        let nodes0 = counter_value "maze.expansions" in
        let flow_par, flow_par_wall =
          wall (fun () ->
              Router.Cpr.run
                ~config:
                  { Router.Cpr.default_config with jobs; parallel_init = true }
                design)
        in
        let chunks, steals, misses, depth = sched_delta sched0 (sched_stats ()) in
        let alloc_per_node =
          let nodes = counter_value "maze.expansions" - nodes0 in
          if nodes = 0 then 0.0
          else
            float_of_int (counter_value "maze.alloc_words" - alloc0)
            /. float_of_int nodes
        in
        let s_seq = Eval.of_flow ~name:"flow-seq" flow_seq in
        let s_par = Eval.of_flow ~name:"flow-par" flow_par in
        parallel_rows :=
          {
            pr_id = c.Suite.id;
            pr_jobs = jobs;
            pao_seq_wall;
            pao_par_wall;
            pao_identical;
            flow_seq = s_seq;
            flow_par = s_par;
            flow_seq_wall;
            flow_par_wall;
            pr_chunks = chunks;
            pr_steals = steals;
            pr_steal_misses = misses;
            pr_queue_depth = depth;
            pr_alloc_per_node = alloc_per_node;
          }
          :: !parallel_rows;
        pf "  %s done@." c.Suite.id;
        [
          c.Suite.id;
          Report.fixed 2 pao_seq_wall;
          Report.fixed 2 pao_par_wall;
          (if pao_identical then "yes" else "NO");
          Report.fixed 2 flow_seq_wall;
          Report.fixed 2 flow_par_wall;
          Printf.sprintf "%d/%d" chunks steals;
          Report.fixed 1 alloc_per_node;
          Printf.sprintf "%.2f/%d/%d" s_seq.Eval.routability s_seq.Eval.via_count
            s_seq.Eval.wirelength;
          Printf.sprintf "%.2f/%d/%d" s_par.Eval.routability s_par.Eval.via_count
            s_par.Eval.wirelength;
        ])
      (circuits ())
  in
  pf "@.%s@."
    (Report.table
       ~header:
         [
           "Ckt";
           "PAO seq(s)";
           Printf.sprintf "PAO -j%d(s)" jobs;
           "identical";
           "flow seq(s)";
           Printf.sprintf "flow -j%d(s)" jobs;
           "chunk/steal";
           "alloc/node";
           "seq R/V/WL";
           "par R/V/WL";
         ]
       rows);
  pf "@.Expected shape: the identical column is all-yes; the wall-clock@.";
  pf "columns converge on one core and separate once domains > 1.@.";
  pf "chunk/steal and alloc/node read against docs/PERF.md's cost model.@."

(* --------------------------------------------------------------- *)
(* mega — streamed PAO on the 10x-top scale tier                     *)
(* --------------------------------------------------------------- *)

(* The [mega] circuit is an order of magnitude past the paper's suite
   (222k nets at scale 1.0), big enough that materializing every panel
   problem is the memory bottleneck: this experiment runs the PAO
   stage with [~stream:true] (panels built as they are solved),
   sequential vs parallel, and checks bit-identity.  Routing is out of
   scope here — the point is panel throughput on a workload deep
   enough that the work-stealing pool has something worth stealing. *)
let mega_exp () =
  section
    (Printf.sprintf "mega — streamed PAO at 10x top (-j %d, scale %.2f)" jobs
       scale);
  pf "(panel problems are built inside the solve, never all resident;@.";
  pf " sequential and parallel streamed runs must be bit-identical)@.@.";
  let c = Suite.mega in
  let design = Suite.design ~scale c in
  let nets = Array.length (Netlist.Design.nets design) in
  let panels = Netlist.Design.num_panels design in
  pf "  %s: %d nets, %d panels@." c.Suite.id nets panels;
  let pao_seq, seq_wall =
    wall (fun () -> PA.optimize ~kind:PA.Lr ~stream:true design)
  in
  let sched0 = sched_stats () in
  let pao_par, par_wall =
    wall (fun () -> PA.optimize ~kind:PA.Lr ~j:jobs ~stream:true design)
  in
  let chunks, steals, misses, depth = sched_delta sched0 (sched_stats ()) in
  let identical =
    pao_seq.PA.objective = pao_par.PA.objective
    && pao_seq.PA.reports = pao_par.PA.reports
    && pao_seq.PA.assignments = pao_par.PA.assignments
  in
  mega_rows :=
    {
      mg_id = c.Suite.id;
      mg_nets = nets;
      mg_panels = panels;
      mg_jobs = jobs;
      mg_pao_seq_wall = seq_wall;
      mg_pao_par_wall = par_wall;
      mg_identical = identical;
      mg_chunks = chunks;
      mg_steals = steals;
      mg_steal_misses = misses;
      mg_queue_depth = depth;
    }
    :: !mega_rows;
  pf "@.%s@."
    (Report.table
       ~header:
         [
           "Ckt"; "nets"; "panels"; "seq(s)";
           Printf.sprintf "-j%d(s)" jobs; "identical"; "chunk/steal/miss";
         ]
       [
         [
           c.Suite.id;
           string_of_int nets;
           string_of_int panels;
           Report.fixed 2 seq_wall;
           Report.fixed 2 par_wall;
           (if identical then "yes" else "NO");
           Printf.sprintf "%d/%d/%d" chunks steals misses;
         ];
       ]);
  pf "@.Expected shape: identical yes; par(s) below seq(s) once the@.";
  pf "machine exposes more than one domain.@."

(* --------------------------------------------------------------- *)
(* ECO — incremental re-optimization vs from-scratch                *)
(* --------------------------------------------------------------- *)

(* The ECO engine promises that re-optimizing after a small edit costs
   a fraction of a cold solve: clean panels come straight out of the
   content-addressed panel cache and dirty panels warm-start the LR
   from their cached multipliers.  Each step moves pins in ~5% of the
   panels; the incremental PAO wall is then compared against a full
   [PA.optimize] of the same post-edit design.  CI asserts that the
   recorded rows are well-formed (hit rate in [0,1], positive speedup);
   the >=3x factor is the expected shape, not a gate, to keep the
   smoke run flake-free on loaded runners. *)
let eco_exp () =
  section "ECO — incremental re-optimization at 5% dirty panels";
  pf "(each step moves pins in ~5%% of the panels; incremental = panel@.";
  pf " cache + warm-started LR on dirty panels, scratch = PA.optimize)@.@.";
  let steps = 6 and dirty_fraction = 0.05 in
  let rows =
    List.map
      (fun c ->
        let design = Suite.design ~scale c in
        let engine, cold_wall = wall (fun () -> Eco.Engine.create design) in
        let batches =
          Workloads.Eco_stream.local_moves ~seed:31L ~steps ~dirty_fraction
            design
        in
        let inc = ref 0.0 and scr = ref 0.0 and warm = ref 0 in
        List.iter
          (fun batch ->
            let r = Eco.Engine.apply engine batch in
            inc := !inc +. r.Eco.Engine.pao_wall;
            warm := !warm + r.Eco.Engine.warm_started;
            let _, w =
              wall (fun () ->
                  PA.optimize ~kind:PA.Lr (Eco.Engine.design engine))
            in
            scr := !scr +. w)
          batches;
        let n = List.length batches in
        let speedup = if n = 0 then 1.0 else !scr /. Float.max 1e-9 !inc in
        let hit_rate = Eco.Engine.cache_hit_rate engine in
        eco_rows :=
          {
            eco_id = c.Suite.id;
            eco_cold_wall = cold_wall;
            eco_steps = n;
            eco_incremental_wall = !inc;
            eco_scratch_wall = !scr;
            eco_speedup = speedup;
            eco_hit_rate = hit_rate;
            eco_warm_started = !warm;
          }
          :: !eco_rows;
        pf "  %s done@." c.Suite.id;
        [
          c.Suite.id;
          Report.fixed 2 cold_wall;
          string_of_int n;
          Report.fixed 3 !inc;
          Report.fixed 3 !scr;
          Report.fixed 1 speedup;
          Report.fixed 3 hit_rate;
          string_of_int !warm;
        ])
      (circuits ())
  in
  pf "@.%s@."
    (Report.table
       ~header:
         [
           "Ckt";
           "cold(s)";
           "steps";
           "inc(s)";
           "scratch(s)";
           "speedup";
           "hit rate";
           "warm";
         ]
       rows);
  pf "@.Expected shape: speedup well above 3x at 5%% dirty — the cache@.";
  pf "serves ~95%% of the panels and the dirty rest warm-start.@."

(* --------------------------------------------------------------- *)
(* serve — the ECO service under load                                *)
(* --------------------------------------------------------------- *)

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

(* Sustained throughput and client-observed latency of [cpr_serve]'s
   broker: 4 sessions per circuit, each streaming random edit batches
   through the full WAL-append / apply / commit pipeline (in-process —
   the wire protocol's stdio framing costs microseconds and is
   exercised by the soak harness instead).  The load generator's
   shadow-design comparison doubles as an end-to-end check that every
   acknowledged batch landed; CI asserts zero mismatches. *)
let serve_exp () =
  section "serve — ECO service throughput and latency under load";
  pf "(4 sessions x random edit batches; every batch journaled,@.";
  pf " applied incrementally and committed before the ack)@.@.";
  let clients = 4 and steps = 8 and edits_per_step = 3 in
  let rows =
    List.map
      (fun c ->
        let design = Suite.design ~scale c in
        let root = Filename.temp_file "cpr-serve-bench" "" in
        Sys.remove root;
        Sys.mkdir root 0o755;
        let config =
          {
            (Serve.Server.default_config ~root) with
            Serve.Server.jobs;
            now = Unix.gettimeofday;
          }
        in
        let t = Serve.Server.create config in
        let outcome =
          Serve.Loadgen.run ~design
            {
              Serve.Loadgen.default with
              Serve.Loadgen.clients;
              steps;
              edits_per_step;
              seed = 17L;
              now = Unix.gettimeofday;
            }
            (Serve.Server.handle t)
        in
        Serve.Server.shutdown t;
        rm_rf root;
        let open Serve.Loadgen in
        serve_rows :=
          {
            sv_id = c.Suite.id;
            sv_clients = clients;
            sv_batches = outcome.acked;
            sv_edits_per_sec = outcome.edits_per_sec;
            sv_p50_ms = outcome.p50_ms;
            sv_p99_ms = outcome.p99_ms;
            sv_timeouts = outcome.timeouts;
            sv_shed = outcome.shed;
            sv_mismatches = List.length outcome.mismatches;
          }
          :: !serve_rows;
        pf "  %s done@." c.Suite.id;
        [
          c.Suite.id;
          string_of_int outcome.acked;
          Report.fixed 1 outcome.edits_per_sec;
          Report.fixed 1 outcome.p50_ms;
          Report.fixed 1 outcome.p99_ms;
          string_of_int outcome.timeouts;
          string_of_int outcome.shed;
          string_of_int (List.length outcome.mismatches);
        ])
      (circuits ())
  in
  pf "@.%s@."
    (Report.table
       ~header:
         [
           "Ckt"; "acked"; "edits/s"; "p50(ms)"; "p99(ms)"; "timeout"; "shed";
           "mismatch";
         ]
       rows);
  pf "@.Every acked batch is WAL-committed before the reply; mismatch@.";
  pf "must be 0 — the dumped design equals the fold of acked batches.@."

(* --------------------------------------------------------------- *)
(* libcheck — library sweep throughput and grade distribution        *)
(* --------------------------------------------------------------- *)

let libcheck_exp () =
  section
    (Printf.sprintf "libcheck — library pin-access sweep (-j %d)" jobs);
  pf "(every cell solved and audit-certified at each density level;@.";
  pf " the parallel sweep must produce the sequential report bytes)@.@.";
  let sizes =
    List.filter_map
      (fun n ->
        let scaled = int_of_float (float_of_int n *. scale) in
        if scaled >= 2 then Some scaled else None)
      [ 24; 96 ]
  in
  let sizes = if sizes = [] then [ 2 ] else sizes in
  let rows =
    List.map
      (fun n ->
        let id = Printf.sprintf "synth-%d" n in
        let params =
          { Workloads.Cell_lib.default_params with Workloads.Cell_lib.cells = n }
        in
        let cells = Workloads.Cell_lib.generate params in
        let config = Libcheck.Harness.default_config in
        let seq, lc_seq_wall =
          wall (fun () -> Libcheck.Sweep.run ~j:1 config cells)
        in
        let par, lc_par_wall =
          wall (fun () -> Libcheck.Sweep.run ~j:jobs config cells)
        in
        let render results =
          Obs.Json.to_string
            (Libcheck.Report.to_json
               (Libcheck.Report.make ~lib_name:id config results))
        in
        let lc_identical = render seq = render par in
        let report = Libcheck.Report.make ~lib_name:id config par in
        let grades =
          List.map
            (fun (g, c) -> (Libcheck.Grade.to_string g, c))
            (Libcheck.Report.grade_histogram report)
        in
        let pins = Workloads.Cell_lib.num_pins cells in
        let weak = Libcheck.Report.weak_pins report in
        let cells_per_sec =
          if lc_par_wall > 0.0 then float_of_int n /. lc_par_wall else 0.0
        in
        libcheck_rows :=
          {
            lc_id = id;
            lc_cells = n;
            lc_pins = pins;
            lc_jobs = jobs;
            lc_seq_wall;
            lc_par_wall;
            lc_identical;
            lc_cells_per_sec = cells_per_sec;
            lc_weak_pins = weak;
            lc_grades = grades;
          }
          :: !libcheck_rows;
        pf "  %s done@." id;
        [
          id;
          string_of_int n;
          string_of_int pins;
          Report.fixed 2 lc_seq_wall;
          Report.fixed 2 lc_par_wall;
          (if lc_identical then "yes" else "NO");
          Report.fixed 1 cells_per_sec;
          String.concat " "
            (List.map (fun (g, c) -> Printf.sprintf "%s=%d" g c) grades);
          string_of_int weak;
        ])
      sizes
  in
  pf "@.%s@."
    (Report.table
       ~header:
         [
           "library"; "cells"; "pins"; "seq(s)"; "par(s)"; "ident";
           "cells/s"; "grades"; "weak";
         ]
       rows);
  pf "@.The identity column must read yes: the sweep carves isolated@.";
  pf "budget slices up front and merges in input order, so -j never@.";
  pf "changes a single report byte.@."

(* --------------------------------------------------------------- *)
(* tpl — color-constrained pin access on dense stress layouts        *)
(* --------------------------------------------------------------- *)

(* Triple-patterning mode on the [tpl_stress] workloads: dense short
   nets whose access intervals crowd into the same track windows, so
   same-color spacing actually constrains selection.  Recorded per
   design: the routed layout's coloring outcome (solid / stitched /
   uncolored features), bit-identity of the -j2 TPL run (coloring
   included), and the no-leak flag — a TPL-off run after the TPL runs
   must still be bit-identical to one before them, which is the zero-
   drift promise the bench gate holds TPL-off rows to. *)
let tpl_exp () =
  let colors = 3 in
  section
    (Printf.sprintf "tpl — %d-color TPL-aware pin access and routing" colors);
  pf "(dense stress layouts; uncolored counts the honest residual,@.";
  pf " identical and off-identical must both read yes)@.@.";
  let deck = Drc.Tpl.make ~colors () in
  let pa_tpl =
    {
      PA.default_config with
      PA.gen =
        {
          PA.default_config.PA.gen with
          Pinaccess.Interval_gen.tpl = Some (Drc.Tpl.params deck);
        };
    }
  in
  let size n = max 8 (int_of_float (float_of_int n *. scale)) in
  let cases =
    [
      Workloads.Generator.tpl_stress_params ~rows:2 ~nets:(size 120) ~width:48
        ~seed:5L ();
      Workloads.Generator.tpl_stress_params ~rows:3 ~nets:(size 260) ~width:72
        ~seed:6L ();
    ]
  in
  let rows =
    List.map
      (fun params ->
        let design = Workloads.Generator.generate params in
        let id = params.Workloads.Generator.name in
        let nets = Array.length (Netlist.Design.nets design) in
        let before = PA.optimize ~kind:PA.Lr design in
        let seq, pao_wall =
          wall (fun () -> PA.optimize ~config:pa_tpl ~kind:PA.Lr design)
        in
        let par = PA.optimize ~config:pa_tpl ~kind:PA.Lr ~j:jobs design in
        let identical =
          seq.PA.objective = par.PA.objective
          && seq.PA.assignments = par.PA.assignments
          && seq.PA.tpl = par.PA.tpl
        in
        let flow, flow_wall =
          wall (fun () ->
              Router.Cpr.run
                ~config:{ Router.Cpr.default_config with Router.Cpr.tpl = Some deck }
                design)
        in
        let stats =
          match flow.Router.Flow.tpl_stats with
          | Some s -> s
          | None -> failwith "tpl flow recorded no TPL stats"
        in
        (* the no-leak check: TPL runs must leave no trace in a
           following TPL-off solve *)
        let after = PA.optimize ~kind:PA.Lr design in
        let off_identical =
          before.PA.objective = after.PA.objective
          && before.PA.assignments = after.PA.assignments
          && before.PA.reports = after.PA.reports
        in
        let s = Eval.of_flow ~name:("tpl-" ^ id) flow in
        tpl_rows :=
          {
            tp_id = id;
            tp_colors = colors;
            tp_nets = nets;
            tp_features = stats.Drc.Tpl.features;
            tp_solid = stats.Drc.Tpl.solid;
            tp_stitched = stats.Drc.Tpl.stitched;
            tp_uncolored = stats.Drc.Tpl.uncolored;
            tp_identical = identical;
            tp_off_identical = off_identical;
            tp_pao_wall = pao_wall;
            tp_flow_wall = flow_wall;
            tp_summary = s;
          }
          :: !tpl_rows;
        pf "  %s done@." id;
        [
          id;
          string_of_int nets;
          string_of_int stats.Drc.Tpl.features;
          Printf.sprintf "%d/%d/%d" stats.Drc.Tpl.solid stats.Drc.Tpl.stitched
            stats.Drc.Tpl.uncolored;
          (if identical then "yes" else "NO");
          (if off_identical then "yes" else "NO");
          Report.fixed 2 pao_wall;
          Report.fixed 2 flow_wall;
          Printf.sprintf "%.2f/%d/%d" s.Eval.routability s.Eval.via_count
            s.Eval.wirelength;
        ])
      cases
  in
  pf "@.%s@."
    (Report.table
       ~header:
         [
           "design"; "nets"; "feat"; "solid/stitch/uncol";
           Printf.sprintf "-j%d ident" jobs; "off ident"; "PAO(s)"; "flow(s)";
           "R/V/WL";
         ]
       rows);
  pf "@.Expected shape: both identity columns all-yes; stitches appear@.";
  pf "under density and uncolored stays a small honest residual.@."

(* --------------------------------------------------------------- *)
(* tune — untuned vs bandit-tuned PAO                                *)
(* --------------------------------------------------------------- *)

(* The adaptive tuner's honest comparison: the untuned PAO stage vs
   the seeded-bandit tuner on the paper suite, measured in work units
   (LR iterations, the tuner's own reward currency) rather than wall
   clock, so the row is reproducible on any machine.  The off_identical
   flag is the zero-drift promise the bench gate holds: an untuned
   solve after the tuned one must be bit-identical to one before it —
   tuning leaves no trace when it is off. *)
let tune_exp () =
  let tune_seed = 0 in
  section
    (Printf.sprintf "tune — untuned vs bandit-tuned PAO (seed %d)" tune_seed);
  pf "(work units = LR iterations, the reward currency of DESIGN.md §12;@.";
  pf " off-identical must read yes: tuning leaves no trace when off)@.@.";
  let rows =
    List.map
      (fun c ->
        let design = Suite.design ~scale c in
        let panels = Netlist.Design.num_panels design in
        let w0 = counter_value "lr.iterations" in
        let untuned, untuned_wall =
          wall (fun () -> PA.optimize ~kind:PA.Lr design)
        in
        let untuned_work = counter_value "lr.iterations" - w0 in
        let tuner =
          Tune.Tuner.create
            ~seed:(Int64.of_int tune_seed)
            (Tune.Tuner.Bandit 0L)
        in
        let w1 = counter_value "lr.iterations" in
        let tuned, tuned_wall =
          wall (fun () ->
              PA.optimize ?tune:(Tune.Tuner.pa_hook tuner) ~kind:PA.Lr design)
        in
        let tuned_work = counter_value "lr.iterations" - w1 in
        let after = PA.optimize ~kind:PA.Lr design in
        let off_identical =
          untuned.PA.objective = after.PA.objective
          && untuned.PA.assignments = after.PA.assignments
          && untuned.PA.reports = after.PA.reports
        in
        let pulls, regret, histogram =
          match Tune.Tuner.bandit tuner with
          | Some b ->
            (Tune.Bandit.pulls b, Tune.Bandit.regret_proxy b,
             Tune.Bandit.histogram b)
          | None -> (0, 0.0, [])
        in
        tune_rows :=
          {
            tn_id = c.Suite.id;
            tn_panels = panels;
            tn_seed = tune_seed;
            tn_untuned_wall = untuned_wall;
            tn_tuned_wall = tuned_wall;
            tn_untuned_work = untuned_work;
            tn_tuned_work = tuned_work;
            tn_untuned_obj = untuned.PA.objective;
            tn_tuned_obj = tuned.PA.objective;
            tn_off_identical = off_identical;
            tn_pulls = pulls;
            tn_regret = regret;
            tn_histogram = histogram;
          }
          :: !tune_rows;
        pf "  %s done@." c.Suite.id;
        [
          c.Suite.id;
          string_of_int panels;
          string_of_int untuned_work;
          string_of_int tuned_work;
          Report.fixed 3
            (float_of_int tuned_work
            /. Float.max 1.0 (float_of_int untuned_work));
          Report.fixed 1 untuned.PA.objective;
          Report.fixed 1 tuned.PA.objective;
          (if off_identical then "yes" else "NO");
          Report.fixed 2 untuned_wall;
          Report.fixed 2 tuned_wall;
          String.concat " "
            (List.map (fun (a, n) -> Printf.sprintf "%s=%d" a n) histogram);
        ])
      (circuits ())
  in
  pf "@.%s@."
    (Report.table
       ~header:
         [
           "Ckt"; "panels"; "work"; "tuned work"; "ratio"; "obj"; "tuned obj";
           "off ident"; "wall(s)"; "tuned wall(s)"; "policy histogram";
         ]
       rows);
  pf "@.Expected shape: off-identical all-yes; the work ratio dips below@.";
  pf "1.0 on at least one circuit as the bandit locks onto cheaper@.";
  pf "schedules at equal objective (the gate's --require-tune check).@."

let experiments =
  [
    ("table2", table2);
    ("fig6", fig6);
    ("fig7a", fig7a);
    ("fig7b", fig7b);
    ("ablation-f", ablation_f);
    ("ablation-step", ablation_step);
    ("ablation-ub", ablation_ub);
    ("parallel", parallel_exp);
    ("mega", mega_exp);
    ("eco", eco_exp);
    ("serve", serve_exp);
    ("libcheck", libcheck_exp);
    ("tpl", tpl_exp);
    ("tune", tune_exp);
    ("kernels", kernels);
  ]

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as names) -> names
    | _ :: [] | [] -> List.map fst experiments
  in
  pf "CPR reproduction bench — scale %.2f (CPR_BENCH_SCALE to change)@." scale;
  let ran = ref [] in
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some f ->
        f ();
        ran := name :: !ran
      | None ->
        pf "unknown experiment %s; available: %s@." name
          (String.concat ", " (List.map fst experiments)))
    requested;
  write_telemetry ~ran:(List.rev !ran)
