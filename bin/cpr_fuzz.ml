(* Differential fuzzing driver: generate seeded random designs, run
   every solver and flow, cross-check them with the independent audit
   layer, and shrink the first failure to a minimal repro design.

     dune exec bin/cpr_fuzz.exe -- --iterations 200 --seed 7
     dune exec bin/cpr_fuzz.exe -- --iterations 2000 --out repro.design
     dune exec bin/cpr_fuzz.exe -- --replay repro.design
     dune exec bin/cpr_fuzz.exe -- --replay repro.design --deltas repro.design.deltas

   Exit codes: 0 all cases clean, 1 an invariant was violated (the
   shrunken repro is written to --out; an ECO failure also writes its
   minimal delta stream next to it), 2 usage errors. *)

open Cmdliner

(* one "panel policy-id" pair per line; the replay side of a
   tune-campaign repro *)
let save_trace path trace =
  let oc = open_out path in
  List.iter
    (fun (panel, policy) -> Printf.fprintf oc "%d %s\n" panel policy)
    trace;
  close_out oc

let load_trace path =
  let ic = open_in path in
  let rec go acc =
    match input_line ic with
    | line ->
      let acc =
        match String.split_on_char ' ' (String.trim line) with
        | [ panel; policy ] when policy <> "" ->
          (match int_of_string_opt panel with
          | Some p -> (p, policy) :: acc
          | None -> acc)
        | _ -> acc
      in
      go acc
    | exception End_of_file ->
      close_in ic;
      List.rev acc
  in
  go []

let run_campaign iterations seed tolerance max_nets no_ilp no_routing
    no_parallel no_eco shrink_rounds tpl tune out replay deltas trace_in quiet =
  let config =
    {
      Audit.Fuzz.default_config with
      Audit.Fuzz.iterations;
      seed = Int64.of_int seed;
      tolerance;
      max_nets;
      ilp = not no_ilp;
      routing = not no_routing;
      parallel = not no_parallel;
      eco = not no_eco;
      shrink_rounds;
      tpl;
      tune;
    }
  in
  match (replay, deltas, trace_in) with
  | Some path, None, Some trace_path ->
    (* re-run the tuned solve under a saved policy trace *)
    let design = Netlist.Design_io.load path in
    let assignments = load_trace trace_path in
    Format.printf "replaying %s under trace %s (%d panels): %s@." path
      trace_path
      (List.length assignments)
      (Netlist.Design.stats design);
    (match Audit.Fuzz.replay_with_trace config design assignments with
    | Ok () ->
      Format.printf "tuned replay certifies@.";
      0
    | Error reason ->
      Format.printf "FAILURE: %s@." reason;
      1)
  | None, _, Some _ ->
    Format.printf "--trace requires --replay@.";
    2
  | Some _, Some _, Some _ ->
    Format.printf "--trace and --deltas are mutually exclusive@.";
    2
  | Some path, Some delta_path, None ->
    (* re-run the ECO differential on a saved (design, deltas) repro *)
    let design = Netlist.Design_io.load path in
    let stream = Eco.Delta.load delta_path in
    Format.printf "replaying %s + %s: %s, %d batches@." path delta_path
      (Netlist.Design.stats design)
      (List.length stream);
    (match Audit.Eco_audit.check ~tolerance design stream with
    | Ok () ->
      Format.printf "ECO differential holds@.";
      0
    | Error reason ->
      Format.printf "FAILURE: %s@." reason;
      1)
  | None, Some _, None ->
    Format.printf "--deltas requires --replay@.";
    2
  | Some path, None, None ->
    (* re-run the invariants on a saved (typically shrunken) design *)
    let design = Netlist.Design_io.load path in
    Format.printf "replaying %s: %s@." path (Netlist.Design.stats design);
    (match Audit.Fuzz.check_design config design with
    | Ok () ->
      Format.printf "all invariants hold@.";
      0
    | Error reason ->
      Format.printf "FAILURE: %s@." reason;
      1)
  | None, None, None ->
    let progress =
      if quiet then fun _ -> ()
      else fun case ->
        if case mod 25 = 0 then Format.printf "  %d/%d cases clean@.%!" case iterations
    in
    let outcome = Audit.Fuzz.run ~progress config in
    (match outcome.Audit.Fuzz.failure with
    | None ->
      Format.printf
        "fuzz: %d cases clean (%d infertile skips), seed %Ld — no invariant \
         violated@."
        outcome.Audit.Fuzz.cases outcome.Audit.Fuzz.skipped config.Audit.Fuzz.seed;
      0
    | Some f ->
      Format.printf "fuzz: FAILURE at case %d (case seed %Ld)@."
        f.Audit.Fuzz.case f.Audit.Fuzz.case_seed;
      Format.printf "  original: %s@." f.Audit.Fuzz.reason;
      Format.printf "  shrunk (%d steps): %s@." f.Audit.Fuzz.shrink_steps
        f.Audit.Fuzz.shrunk_reason;
      Format.printf "  repro design: %s@."
        (Netlist.Design.stats f.Audit.Fuzz.design);
      Netlist.Design_io.save out f.Audit.Fuzz.design;
      Format.printf "  written to %s (replay with --replay %s)@." out out;
      if f.Audit.Fuzz.deltas <> [] then begin
        let delta_out = out ^ ".deltas" in
        Eco.Delta.save delta_out f.Audit.Fuzz.deltas;
        Format.printf
          "  minimal delta stream written to %s (replay with --replay %s \
           --deltas %s)@."
          delta_out out delta_out
      end;
      if f.Audit.Fuzz.trace <> [] then begin
        let trace_out = out ^ ".trace" in
        save_trace trace_out f.Audit.Fuzz.trace;
        Format.printf
          "  policy trace written to %s (replay with --replay %s --trace %s)@."
          trace_out out trace_out
      end;
      1)

let run_campaign iterations seed tolerance max_nets no_ilp no_routing
    no_parallel no_eco shrink_rounds tpl tune out replay deltas trace_in quiet =
  match
    Pinaccess.Cpr_error.protect (fun () ->
        run_campaign iterations seed tolerance max_nets no_ilp no_routing
          no_parallel no_eco shrink_rounds tpl tune out replay deltas trace_in
          quiet)
  with
  | Ok n -> Ok n
  | Error e -> Error (`Msg (Pinaccess.Cpr_error.to_string e))

let positive_int =
  let parse s =
    match int_of_string_opt s with
    | Some n when n > 0 -> Ok n
    | Some n -> Error (`Msg (Printf.sprintf "must be positive, got %d" n))
    | None -> Error (`Msg (Printf.sprintf "not an integer: %S" s))
  in
  Arg.conv ~docv:"INT" (parse, Format.pp_print_int)

let iterations =
  Arg.(
    value & opt positive_int 200
    & info [ "n"; "iterations" ] ~doc:"Number of random cases to run.")

let seed =
  Arg.(
    value & opt int 0xC0FFEE
    & info [ "seed" ] ~doc:"Master seed; each case derives its own from it.")

let tolerance =
  Arg.(
    value & opt float 1e-6
    & info [ "tolerance" ]
        ~doc:"Relative tolerance for objective comparisons.")

let max_nets =
  Arg.(
    value & opt positive_int 24
    & info [ "max-nets" ] ~doc:"Upper bound on nets per generated case.")

let no_ilp =
  Arg.(
    value & flag
    & info [ "no-ilp" ]
        ~doc:"Skip the exact-ILP cross-check (the slowest invariant).")

let no_routing =
  Arg.(
    value & flag
    & info [ "no-routing" ] ~doc:"Skip the CPR and sequential flow audits.")

let no_parallel =
  Arg.(
    value & flag
    & info [ "no-parallel" ] ~doc:"Skip the -j 2 determinism check.")

let no_eco =
  Arg.(
    value & flag
    & info [ "no-eco" ]
        ~doc:"Skip the incremental-vs-scratch ECO differential.")

let shrink_rounds =
  Arg.(
    value & opt positive_int 80
    & info [ "shrink-rounds" ]
        ~doc:"Candidate evaluations allowed while shrinking a failure.")

let tpl =
  let colors =
    let parse s =
      match int_of_string_opt s with
      | Some k when k >= 2 -> Ok k
      | Some k -> Error (`Msg (Printf.sprintf "need at least 2 colors, got %d" k))
      | None -> Error (`Msg (Printf.sprintf "not an integer: %S" s))
    in
    Arg.conv ~docv:"K" (parse, Format.pp_print_int)
  in
  Arg.(
    value & opt (some colors) None
    & info [ "tpl" ]
        ~doc:
          "Also rerun every case under a $(docv)-coloring TPL deck: the \
           coloring must certify against the geometry, the -j 2 rerun must \
           be bit-identical coloring included, and the TPL-aware CPR flow \
           must pass its audit replay.")

let tune =
  Arg.(
    value & flag
    & info [ "tune" ]
        ~doc:
          "Also run the adaptive-tuning campaign on every case: a \
           bandit-tuned LR solve (seed derived from the design) must \
           audit-certify like the untuned one, stay under the certified \
           upper bound (quality sandwich), be bit-identical at -j 2 \
           including its policy trace, and replay exactly from that trace. \
           A failing case saves its trace next to the repro design.")

let out =
  Arg.(
    value & opt string "fuzz-repro.design"
    & info [ "o"; "out" ]
        ~doc:"Where to write the shrunken failing design.")

let replay =
  Arg.(
    value & opt (some file) None
    & info [ "replay" ]
        ~doc:"Re-run the invariants on a saved design instead of fuzzing.")

let deltas =
  Arg.(
    value & opt (some file) None
    & info [ "deltas" ]
        ~doc:
          "With --replay: re-run only the ECO differential on this saved \
           delta stream against the replayed design.")

let trace_in =
  Arg.(
    value & opt (some file) None
    & info [ "trace" ]
        ~doc:
          "With --replay: re-run the tuned solve under this saved policy \
           trace (from a --tune campaign failure) and re-certify it.")

let quiet = Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"No progress output.")

let cmd =
  let doc = "differential fuzzer for the CPR solvers and routing flows" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Generates seeded random placed designs, solves pin access with \
         every tier (ILP, Lagrangian relaxation, shrink-to-minimum), routes \
         with the CPR and sequential flows, and cross-checks all of them \
         against the independent audit layer: certificates re-derived from \
         scratch, DRC and connectivity replays, solver-independent objective \
         bounds, bit-identical parallel execution, and an incremental ECO \
         replay that must stay certificate-identical to from-scratch \
         re-optimization. The first violation is shrunk to a minimal \
         failing design (plus a minimal delta stream for ECO failures) and \
         saved for replay.";
    ]
  in
  Cmd.v
    (Cmd.info "cpr_fuzz" ~version:"1.0.0" ~doc ~man)
    Term.(
      term_result
        (const run_campaign $ iterations $ seed $ tolerance $ max_nets $ no_ilp
       $ no_routing $ no_parallel $ no_eco $ shrink_rounds $ tpl $ tune $ out
       $ replay $ deltas $ trace_in $ quiet))

(* shared exit-code convention with cpr_main/cpr_serve: 0 ok, 1 a
   violation was found, 2 usage or I/O error (cmdliner's 123/124/125
   collapse onto 2) *)
let () = exit (match Cmd.eval' cmd with 0 -> 0 | 1 -> 1 | _ -> 2)
