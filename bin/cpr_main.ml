(* Command-line driver: generate (or scale) a benchmark circuit, run one
   of the three routing flows and report the paper's metrics.

     dune exec bin/cpr_main.exe -- --circuit ecc --scale 0.25
     dune exec bin/cpr_main.exe -- --circuit alu --router seq
     dune exec bin/cpr_main.exe -- --nets 400 --width 120 --height 100
     dune exec bin/cpr_main.exe -- --circuit ecc --pao ilp --verbose
     dune exec bin/cpr_main.exe -- --check-library --lib-cells 24 -j 4

   Exit codes (shared by cpr_fuzz and cpr_serve): 0 clean, 1 a
   violation or weak pin was found, 2 usage or I/O errors. *)

open Cmdliner

type router_kind = R_cpr | R_ncr | R_seq

let build_design circuit scale nets width height seed load repair =
  match load with
  | Some path -> Netlist.Design_io.load ~repair path
  | None ->
    (match circuit with
    | Some id ->
      let c = Workloads.Suite.find id in
      Workloads.Suite.design ~scale c
    | None ->
      let params =
        Workloads.Generator.with_size ~name:"custom" ~nets ~width ~height
          ~seed:(Int64.of_int seed) ()
      in
      Workloads.Generator.generate params)

let violation_breakdown violations =
  let table = Hashtbl.create 4 in
  List.iter
    (fun (v : Drc.Check.violation) ->
      let k = Drc.Check.kind_to_string v.Drc.Check.kind in
      Hashtbl.replace table k
        (1 + Option.value ~default:0 (Hashtbl.find_opt table k)))
    violations;
  Hashtbl.fold (fun k c acc -> Printf.sprintf "%s=%d %s" k c acc) table ""

let run_flow router pao_kind budget jobs parallel_init tpl tuner design =
  let budget =
    Option.map (fun seconds -> Pinaccess.Budget.start ~seconds ()) budget
  in
  let tpl = Option.map (fun colors -> Drc.Tpl.make ~colors ()) tpl in
  match router with
  | R_cpr ->
    let config =
      {
        Router.Cpr.default_config with
        Router.Cpr.pao_kind =
          (match pao_kind with
          | `Lr -> Pinaccess.Pin_access.Lr
          | `Ilp -> Pinaccess.Pin_access.Ilp);
        jobs;
        parallel_init;
        tpl;
        order = Tune.Tuner.negotiation_order tuner;
        tune = Tune.Tuner.pa_hook tuner;
      }
    in
    (* without an explicit --budget, keep the historical 30 s cap on
       the exact ILP stage so --pao ilp stays interactive *)
    let pao_budget =
      match (budget, pao_kind) with
      | None, `Ilp -> Some (Pinaccess.Budget.start ~seconds:30.0 ())
      | _ -> budget
    in
    Router.Cpr.run ~config ?budget ?pao_budget design
  | R_ncr ->
    let config = { Router.Baseline_ncr.default_config with Router.Baseline_ncr.tpl } in
    Router.Baseline_ncr.run ~config ?budget design
  | R_seq ->
    let config = { Router.Sequential.default_config with Router.Sequential.tpl } in
    Router.Sequential.run ~config ?budget design

(* Incremental (ECO) mode: cold-start the engine on the design, replay
   the delta stream batch by batch, and report what each step reused
   versus re-solved, ending with the usual paper metrics. *)
let run_eco pao_kind verbose tuner path design =
  let batches = Eco.Delta.load path in
  let config =
    {
      Eco.Engine.default_config with
      Eco.Engine.kind =
        (match pao_kind with
        | `Lr -> Pinaccess.Pin_access.Lr
        | `Ilp -> Pinaccess.Pin_access.Ilp);
      routing = true;
      warm_policy = Tune.Tuner.warm_policy tuner;
      policy = Tune.Tuner.cache_policy_id tuner;
    }
  in
  let engine = Eco.Engine.create ~config design in
  Format.printf "ECO: cold start pao %.3fs route %.3fs, replaying %d batches@."
    (Eco.Engine.cold_pao_wall engine)
    (Eco.Engine.cold_route_wall engine)
    (List.length batches);
  List.iteri
    (fun i batch ->
      let r = Eco.Engine.apply engine batch in
      Format.printf
        "  step %d: %d deltas, %d dirty panels | panels %d (%d cached, %d \
         solved, %d warm) | routes %d frozen, %d rerouted | obj %.2f | pao \
         %.3fs route %.3fs@."
        (i + 1) r.Eco.Engine.deltas
        (List.length r.Eco.Engine.dirty_panels)
        r.Eco.Engine.panels r.Eco.Engine.cache_hits r.Eco.Engine.solved
        r.Eco.Engine.warm_started r.Eco.Engine.frozen_nets
        r.Eco.Engine.rerouted_nets r.Eco.Engine.objective r.Eco.Engine.pao_wall
        r.Eco.Engine.route_wall;
      if verbose then
        List.iter
          (fun p -> Format.printf "    dirty panel %d@." p)
          r.Eco.Engine.dirty_panels)
    batches;
  Format.printf "final design: %s@."
    (Netlist.Design.stats (Eco.Engine.design engine));
  Format.printf "panel cache: %d entries, %.1f%% lifetime hit rate@."
    (Eco.Engine.cache_size engine)
    (100.0 *. Eco.Engine.cache_hit_rate engine);
  (match Eco.Engine.flow engine with
  | Some flow ->
    let s = Metrics.Eval.of_flow flow in
    Format.printf "Rout.  : %.2f%% (%d/%d nets)@." s.Metrics.Eval.routability
      s.Metrics.Eval.routed_nets s.Metrics.Eval.total_nets;
    Format.printf "Via#   : %d@." s.Metrics.Eval.via_count;
    Format.printf "WL     : %d@." s.Metrics.Eval.wirelength;
    Format.printf "reused routes (last step): %d@."
      flow.Router.Flow.reused_routes
  | None -> ());
  if Tune.Tuner.mode tuner <> Tune.Tuner.Off then
    Format.printf "%s@." (Tune.Tuner.stats_line tuner);
  0

(* Library-check mode: synthesize (or, later, load) a cell library,
   sweep every cell through the density ladder on the domain pool, and
   emit the ranked report.  Exit 1 when any pin grades F — the library
   has a pin no placement can rescue. *)
let run_check_library pao budget jobs seed lib_cells report report_md verbose
    stats =
  let params =
    {
      Workloads.Cell_lib.default_params with
      Workloads.Cell_lib.cells = lib_cells;
      seed = Int64.of_int seed;
    }
  in
  let cells = Workloads.Cell_lib.generate params in
  let config =
    {
      Libcheck.Harness.default_config with
      Libcheck.Harness.kind =
        (match pao with
        | `Lr -> Pinaccess.Pin_access.Lr
        | `Ilp -> Pinaccess.Pin_access.Ilp);
      seed = Int64.of_int seed;
    }
  in
  let budget =
    Option.map (fun seconds -> Pinaccess.Budget.start ~seconds ()) budget
  in
  let lib_name = Printf.sprintf "synth-%d-seed%d" lib_cells seed in
  Format.printf "checking library %s: %d cells, %d pins, densities %s@."
    lib_name (List.length cells)
    (Workloads.Cell_lib.num_pins cells)
    (String.concat "/"
       (List.map (Printf.sprintf "%g") config.Libcheck.Harness.densities));
  let results = Libcheck.Sweep.run ~j:jobs ?budget config cells in
  let r = Libcheck.Report.make ~lib_name config results in
  let uncertified =
    List.filter
      (fun (c : Libcheck.Check.cell_result) -> not c.Libcheck.Check.certified)
      r.Libcheck.Report.cells
  in
  Format.printf "grades (pins): %s@."
    (String.concat ", "
       (List.map
          (fun (g, n) -> Printf.sprintf "%s=%d" (Libcheck.Grade.to_string g) n)
          (Libcheck.Report.grade_histogram r)));
  let weak = Libcheck.Report.weak_pins r in
  Format.printf "weak pins (F): %d; uncertified cells: %d@." weak
    (List.length uncertified);
  if verbose then
    List.iter
      (fun (c : Libcheck.Check.cell_result) ->
        Format.printf "  %s: %s%s@." c.Libcheck.Check.cell.Workloads.Cell_lib.cell_name
          (Libcheck.Grade.to_string c.Libcheck.Check.worst)
          (match c.Libcheck.Check.uncertified with
          | None -> ""
          | Some why -> " [UNCERTIFIED: " ^ why ^ "]"))
      r.Libcheck.Report.cells;
  (match report with
  | Some path ->
    Libcheck.Report.save_json path r;
    Format.printf "report written to %s@." path
  | None -> ());
  (match report_md with
  | Some path ->
    Libcheck.Report.save_markdown path r;
    Format.printf "markdown report written to %s@." path
  | None -> ());
  if stats then
    Format.printf "@.%s" (Obs.Metrics.summary (Obs.Metrics.snapshot ()));
  if weak > 0 || uncertified <> [] then 1 else 0

let main circuit scale nets width height seed router pao budget jobs
    parallel_init tpl tune tune_seed verbose load repair save svg trace
    metrics_out stats eco check_library lib_cells report report_md =
  if check_library then
    run_check_library pao budget jobs seed lib_cells report report_md verbose
      stats
  else begin
  let tuner = Tune.Tuner.create ~seed:(Int64.of_int tune_seed) tune in
  let design = build_design circuit scale nets width height seed load repair in
  (match save with
  | Some path ->
    Netlist.Design_io.save path design;
    Format.printf "saved design to %s@." path
  | None -> ());
  Format.printf "%s@." (Netlist.Design.stats design);
  match eco with
  | Some path -> run_eco pao verbose tuner path design
  | None ->begin
  (* span sinks for the run: Chrome trace_event and/or JSONL stream.
     Both stream into atomic pending files promoted on success, so an
     interrupted run leaves no torn artifact at the requested path. *)
  let trace_p = Option.map Obs.Fsio.open_atomic trace in
  let metrics_p = Option.map Obs.Fsio.open_atomic metrics_out in
  let trace_oc = Option.map Obs.Fsio.channel trace_p in
  let metrics_oc = Option.map Obs.Fsio.channel metrics_p in
  let sinks =
    List.filter_map Fun.id
      [
        Option.map Obs.Trace.chrome trace_oc;
        Option.map Obs.Trace.jsonl metrics_oc;
      ]
  in
  let run () = run_flow router pao budget jobs parallel_init tpl tuner design in
  let flow =
    match sinks with
    | [] -> run ()
    | s :: rest -> Obs.Trace.with_sink (List.fold_left Obs.Trace.tee s rest) run
  in
  if Tune.Tuner.mode tuner <> Tune.Tuner.Off then
    Format.printf "%s@." (Tune.Tuner.stats_line tuner);
  (* the JSONL stream ends with the final counter/histogram snapshot,
     so one file carries both the events and the aggregates *)
  Option.iter
    (fun oc ->
      List.iter
        (fun line ->
          output_string oc line;
          output_char oc '\n')
        (Obs.Metrics.jsonl (Obs.Metrics.snapshot ())))
    metrics_oc;
  Option.iter Obs.Fsio.commit metrics_p;
  Option.iter Obs.Fsio.commit trace_p;
  Option.iter (Format.printf "trace written to %s (Perfetto-loadable)@.") trace;
  Option.iter (Format.printf "metrics written to %s@.") metrics_out;
  let s = Metrics.Eval.of_flow flow in
  Format.printf "Rout.  : %.2f%% (%d/%d nets)@." s.Metrics.Eval.routability
    s.Metrics.Eval.routed_nets s.Metrics.Eval.total_nets;
  Format.printf "Via#   : %d@." s.Metrics.Eval.via_count;
  Format.printf "WL     : %d@." s.Metrics.Eval.wirelength;
  Format.printf "cpu(s) : %.2f@." s.Metrics.Eval.cpu;
  Format.printf "initial congested grids: %d@."
    s.Metrics.Eval.initial_congestion;
  Format.printf "DRC violations: %d (%s)@." s.Metrics.Eval.violations
    (violation_breakdown flow.Router.Flow.violations);
  Option.iter
    (fun st -> Format.printf "TPL    : %s@." (Drc.Tpl.stats_to_string st))
    flow.Router.Flow.tpl_stats;
  if Router.Flow.degraded flow then
    Format.printf
      "DEGRADED: %d panel(s) fell back below the requested pin access solver \
       (see --verbose)@."
      s.Metrics.Eval.degraded_panels;
  if stats then
    Format.printf "@.%s" (Obs.Metrics.summary (Obs.Metrics.snapshot ()));
  (match svg with
  | Some path ->
    Render.Layout_svg.save path (Render.Layout_svg.flow flow);
    Format.printf "layout plot written to %s@." path
  | None -> ());
  if verbose then begin
    (match flow.Router.Flow.pao with
    | Some pao ->
      Format.printf "@.Pin access optimization (%s): objective %.2f in %.2fs@."
        (Pinaccess.Pin_access.solver_kind_to_string
           pao.Pinaccess.Pin_access.kind)
        pao.Pinaccess.Pin_access.objective pao.Pinaccess.Pin_access.elapsed;
      List.iter
        (fun (r : Pinaccess.Pin_access.panel_report) ->
          Format.printf
            "  panel %d: %d pins, %d intervals, %d cliques, obj %.1f, \
             served by %s%s@."
            r.Pinaccess.Pin_access.panel r.Pinaccess.Pin_access.pins
            r.Pinaccess.Pin_access.intervals r.Pinaccess.Pin_access.cliques
            r.Pinaccess.Pin_access.objective
            (Pinaccess.Pin_access.tier_to_string r.Pinaccess.Pin_access.served_by)
            (if r.Pinaccess.Pin_access.degraded then " [degraded]" else ""))
        pao.Pinaccess.Pin_access.reports
    | None -> ());
    Format.printf "@.rip-up iterations: %d, total reroutes: %d@."
      flow.Router.Flow.ripup_iterations flow.Router.Flow.total_reroutes;
    Format.printf "line-end extension: %d merges, %d alignments@."
      flow.Router.Flow.extension.Drc.Line_end.merges
      flow.Router.Flow.extension.Drc.Line_end.alignments;
    List.iteri
      (fun i (v : Drc.Check.violation) ->
        if i < 20 then
          Format.printf "  violation: %s %s (%s)@."
            (Drc.Check.kind_to_string v.Drc.Check.kind)
            v.Drc.Check.where
            (String.concat "," (List.map string_of_int v.Drc.Check.nets)))
      flow.Router.Flow.violations
  end;
  (* the shared exit-code convention: 1 when the layout has DRC
     violations — an uncolorable TPL feature is a violation too —
     mirroring --check-library's 1 on a weak pin *)
  let tpl_dirty =
    match flow.Router.Flow.tpl_stats with
    | Some st -> not (Drc.Tpl.clean st)
    | None -> false
  in
  if s.Metrics.Eval.violations > 0 || tpl_dirty then 1 else 0
  end
  end

(* Typed-error boundary: malformed designs, solver failures and
   infeasible panels surface as clean cmdliner errors, never raw
   OCaml exception traces. *)
let main circuit scale nets width height seed router pao budget jobs
    parallel_init tpl tune tune_seed verbose load repair save svg trace
    metrics_out stats eco check_library lib_cells report report_md =
  match
    Pinaccess.Cpr_error.protect (fun () ->
        main circuit scale nets width height seed router pao budget jobs
          parallel_init tpl tune tune_seed verbose load repair save svg trace
          metrics_out stats eco check_library lib_cells report report_md)
  with
  | Ok n -> Ok n
  | Error e -> Error (`Msg (Pinaccess.Cpr_error.to_string e))
  | exception ((Eco.Delta.Parse_error _ | Eco.Delta.Invalid _) as e) ->
    Error (`Msg (Eco.Delta.error_to_string e))

let circuit =
  let doc =
    "Benchmark circuit id (ecc, efc, ctl, alu, div, top). When absent, a \
     custom circuit is generated from $(b,--nets)/$(b,--width)/$(b,--height)."
  in
  Arg.(value & opt (some string) None & info [ "c"; "circuit" ] ~doc)

let scale =
  let doc = "Shrink a named circuit (nets and die together), in (0, 1]." in
  Arg.(value & opt float 1.0 & info [ "s"; "scale" ] ~doc)

(* reject nonsense sizes at the parser, before any generator runs *)
let positive_int =
  let parse s =
    match int_of_string_opt s with
    | Some n when n > 0 -> Ok n
    | Some n -> Error (`Msg (Printf.sprintf "must be positive, got %d" n))
    | None -> Error (`Msg (Printf.sprintf "not an integer: %S" s))
  in
  Arg.conv ~docv:"INT" (parse, Format.pp_print_int)

let nonneg_int =
  let parse s =
    match int_of_string_opt s with
    | Some n when n >= 0 -> Ok n
    | Some n -> Error (`Msg (Printf.sprintf "must be >= 0, got %d" n))
    | None -> Error (`Msg (Printf.sprintf "not an integer: %S" s))
  in
  Arg.conv ~docv:"INT" (parse, Format.pp_print_int)

let positive_float =
  let parse s =
    match float_of_string_opt s with
    | Some f when f > 0.0 && Float.is_finite f -> Ok f
    | Some f -> Error (`Msg (Printf.sprintf "must be positive, got %g" f))
    | None -> Error (`Msg (Printf.sprintf "not a number: %S" s))
  in
  Arg.conv ~docv:"SECONDS" (parse, fun fmt f -> Format.fprintf fmt "%g" f)

let nets =
  Arg.(
    value & opt positive_int 300
    & info [ "nets" ] ~doc:"Custom circuit: net count.")

let width =
  Arg.(
    value & opt positive_int 120
    & info [ "width" ] ~doc:"Custom circuit: grid columns.")

let height =
  Arg.(
    value & opt positive_int 100
    & info [ "height" ] ~doc:"Custom circuit: M2 tracks (multiple of 10).")

let seed =
  Arg.(
    value & opt nonneg_int 1 & info [ "seed" ] ~doc:"Custom circuit: PRNG seed.")

let router =
  let parse = function
    | "cpr" -> Ok R_cpr
    | "ncr" -> Ok R_ncr
    | "seq" -> Ok R_seq
    | s -> Error (`Msg (Printf.sprintf "unknown router %S" s))
  in
  let print fmt r =
    Format.pp_print_string fmt
      (match r with R_cpr -> "cpr" | R_ncr -> "ncr" | R_seq -> "seq")
  in
  let router_conv = Arg.conv ~docv:"ROUTER" (parse, print) in
  let doc =
    "Routing flow: $(b,cpr) (concurrent pin access router, the paper's \
     contribution), $(b,ncr) (negotiation-congestion baseline without pin \
     access optimization, [21]), or $(b,seq) (sequential pin access planning \
     baseline, [12])."
  in
  Arg.(value & opt router_conv R_cpr & info [ "r"; "router" ] ~doc)

let pao =
  let parse = function
    | "lr" -> Ok `Lr
    | "ilp" -> Ok `Ilp
    | s -> Error (`Msg (Printf.sprintf "unknown pao solver %S" s))
  in
  let print fmt p =
    Format.pp_print_string fmt (match p with `Lr -> "lr" | `Ilp -> "ilp")
  in
  let solver_conv = Arg.conv ~docv:"SOLVER" (parse, print) in
  let doc =
    "Pin access optimizer for the cpr flow: $(b,lr) (Lagrangian relaxation, \
     scalable) or $(b,ilp) (exact branch-and-bound, optimal)."
  in
  Arg.(value & opt solver_conv `Lr & info [ "pao" ] ~doc)

let budget =
  let doc =
    "Wall-clock budget in seconds for the whole flow. Pin access degrades \
     panel by panel (ILP → LR → minimum intervals) and routing stops \
     ripping up when the budget runs out; the result is always a legal \
     best-effort layout."
  in
  Arg.(value & opt (some positive_float) None & info [ "budget" ] ~doc)

let jobs =
  let doc =
    "Domains for the parallel stages of the $(b,cpr) flow (default 1 = \
     sequential). Pin access solves independent panels on $(docv) domains \
     with a deterministic merge, so results are identical to $(b,-j 1); \
     pass 0 to use every core the machine recommends."
  in
  let parse s =
    match int_of_string_opt s with
    | Some 0 -> Ok (Exec.default_domains ())
    | Some n when n > 0 -> Ok n
    | Some n -> Error (`Msg (Printf.sprintf "must be >= 0, got %d" n))
    | None -> Error (`Msg (Printf.sprintf "not an integer: %S" s))
  in
  let jobs_conv = Arg.conv ~docv:"N" (parse, Format.pp_print_int) in
  Arg.(value & opt jobs_conv 1 & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let parallel_init =
  let doc =
    "Also batch independent nets of the negotiation router's initial \
     routing stage across the $(b,-j) domains (feature flag; identical \
     routing, only the wall clock changes). No effect with $(b,-j 1)."
  in
  Arg.(value & flag & info [ "parallel-init" ] ~doc)

let tpl =
  let doc =
    "Enable the triple-patterning rule deck with $(docv) mask colors \
     (usually 3). Pin access prices same-color conflicts alongside access \
     conflicts, the router charges stitch costs and rips up uncolorable \
     nets, and the final layout's coloring is re-checked; an uncolorable \
     feature in the final layout exits 1 like any DRC violation."
  in
  let parse s =
    match int_of_string_opt s with
    | Some k when k >= 2 -> Ok k
    | Some k -> Error (`Msg (Printf.sprintf "need at least 2 colors, got %d" k))
    | None -> Error (`Msg (Printf.sprintf "not an integer: %S" s))
  in
  let colors_conv = Arg.conv ~docv:"K" (parse, Format.pp_print_int) in
  Arg.(value & opt (some colors_conv) None & info [ "tpl" ] ~docv:"K" ~doc)

let tune =
  let parse s =
    match Tune.Tuner.mode_of_string s with
    | Some m -> Ok m
    | None ->
      Error
        (`Msg
          (Printf.sprintf
             "unknown tune mode %S (off, bandit, or fixed:<policy-id>)" s))
  in
  let print fmt m = Format.pp_print_string fmt (Tune.Tuner.mode_to_string m) in
  let mode_conv = Arg.conv ~docv:"MODE" (parse, print) in
  let doc =
    "Adaptive per-panel scheduling for the $(b,cpr) flow (and the warm-start \
     policy of $(b,--eco)): $(b,off) (default; byte-identical to not \
     tuning), $(b,fixed:)$(i,ID) (one reified policy everywhere, e.g. \
     $(b,fixed:lr-k70), $(b,fixed:ord-congestion), $(b,fixed:warm-sig)), or \
     $(b,bandit) (deterministic seeded UCB1 choosing an LR step schedule \
     per panel from its feature bucket; same $(b,--tune-seed) means the \
     same policy trace and the same layout bytes, whatever $(b,-j) is)."
  in
  Arg.(value & opt mode_conv Tune.Tuner.Off & info [ "tune" ] ~docv:"MODE" ~doc)

let tune_seed =
  let doc = "Seed for $(b,--tune bandit)'s exploration order." in
  Arg.(value & opt nonneg_int 0 & info [ "tune-seed" ] ~docv:"N" ~doc)

let verbose =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Per-panel and DRC details.")

let load =
  Arg.(
    value
    & opt (some file) None
    & info [ "load" ] ~doc:"Route a design saved with $(b,--save).")

let repair =
  let doc =
    "With $(b,--load): clamp off-die geometry and drop duplicate pins \
     instead of rejecting a malformed design file."
  in
  Arg.(value & flag & info [ "repair" ] ~doc)

let save =
  Arg.(
    value
    & opt (some string) None
    & info [ "save" ] ~doc:"Export the (generated) design to a file.")

let svg =
  Arg.(
    value
    & opt (some string) None
    & info [ "svg" ] ~doc:"Write an SVG plot of the routed layout.")

let trace =
  let doc =
    "Write a Chrome trace_event JSON of the run's spans (run > panel > \
     LR iteration) to $(docv); open it in about:tracing or \
     ui.perfetto.dev."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let metrics_out =
  let doc =
    "Stream span events as JSON-lines to $(docv), ending with the final \
     counter/histogram snapshot — the machine-readable twin of $(b,--stats)."
  in
  Arg.(
    value & opt (some string) None & info [ "metrics-out" ] ~docv:"FILE" ~doc)

let stats =
  let doc =
    "Print the end-of-run solver counters and histograms (LR iterations, \
     ILP nodes, maze expansions, rip-up rounds, degradation tiers, ...)."
  in
  Arg.(value & flag & info [ "stats" ] ~doc)

let eco =
  let doc =
    "Incremental (ECO) mode: replay a saved delta stream ($(b,step)-separated \
     batches, see lib/eco) against the design through the incremental \
     engine — cached clean panels, warm-started dirty ones, frozen \
     untouched routes — reporting per-step reuse and the final metrics. \
     Only $(b,--pao) affects this mode's solver choice."
  in
  Arg.(value & opt (some file) None & info [ "eco" ] ~docv:"FILE" ~doc)

let check_library =
  let doc =
    "Library mode: instead of routing a design, grade every pin of a \
     synthesized cell library. Each cell is placed in isolation on a \
     single-row die, surrounded by seeded blockage congestion at several \
     density levels, solved with the concurrent pin access optimizer and \
     audit-certified; the ranked worst-first report is deterministic for a \
     given $(b,--seed) and identical for any $(b,-j). Exits 1 when a pin \
     grades F (no certified access even in isolation)."
  in
  Arg.(value & flag & info [ "check-library" ] ~doc)

let lib_cells =
  let doc = "Library mode: number of cells to synthesize." in
  Arg.(value & opt positive_int 24 & info [ "lib-cells" ] ~docv:"N" ~doc)

let report =
  let doc =
    "Library mode: write the ranked report as JSON to $(docv) (atomic \
     write; a crash never leaves a torn report)."
  in
  Arg.(value & opt (some string) None & info [ "report" ] ~docv:"FILE" ~doc)

let report_md =
  let doc = "Library mode: write the ranked report as markdown to $(docv)." in
  Arg.(
    value & opt (some string) None & info [ "report-md" ] ~docv:"FILE" ~doc)

let cmd =
  let doc = "concurrent pin access optimization for unidirectional routing" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Reproduction of Xu et al., DAC 2017: concurrent pin access \
         optimization (ILP / Lagrangian relaxation over pin access \
         intervals) feeding a negotiation-congestion unidirectional router \
         under SADP design rules.";
    ]
  in
  Cmd.v
    (Cmd.info "cpr" ~version:"1.0.0" ~doc ~man)
    Term.(
      term_result
        (const main $ circuit $ scale $ nets $ width $ height $ seed $ router
        $ pao $ budget $ jobs $ parallel_init $ tpl $ tune $ tune_seed
        $ verbose $ load $ repair $ save $ svg $ trace $ metrics_out $ stats
        $ eco $ check_library $ lib_cells $ report $ report_md))

(* 0 = ok, 1 = violation/weak pin, 2 = usage or I/O error: cmdliner's
   own error exits (123/124/125) all collapse onto 2. *)
let () = exit (match Cmd.eval' cmd with 0 -> 0 | 1 -> 1 | _ -> 2)
