(* The crash-safe ECO service and its test harnesses:

     cpr_serve serve --root state/        # speak the wire protocol on stdio
     cpr_serve load  --root state/ --clients 4 --steps 50
     cpr_serve soak  --root state/ --clients 4 --steps 50 --kill-after 30

   [serve] is the daemon: requests on stdin, responses on stdout,
   everything durable under --root.  [load] runs the in-process load
   generator against a fresh broker and reports throughput and latency
   percentiles.  [soak] spawns a real [serve] child over pipes, drives
   it with edit streams, kill -9s it mid-flight, restarts it, and
   verifies recovery: every acknowledged batch must survive, sessions
   must resume exactly where the journal proves they stopped.

   Exit codes: 0 clean, 1 a durability/consistency check failed,
   2 usage errors. *)

open Cmdliner
module P = Serve.Protocol
module Fault = Pinaccess.Fault

let positive_int =
  let parse s =
    match int_of_string_opt s with
    | Some v when v > 0 -> Ok v
    | _ -> Error (`Msg "expected a positive integer")
  in
  Arg.conv (parse, Format.pp_print_int)

let non_negative_int =
  let parse s =
    match int_of_string_opt s with
    | Some v when v >= 0 -> Ok v
    | _ -> Error (`Msg "expected a non-negative integer")
  in
  Arg.conv (parse, Format.pp_print_int)

(* -- shared flags ------------------------------------------------------ *)

let root =
  Arg.(
    required
    & opt (some string) None
    & info [ "root" ] ~docv:"DIR" ~doc:"Session state directory.")

let jobs =
  Arg.(
    value & opt positive_int 1
    & info [ "j"; "jobs" ] ~doc:"Solver pool domains (1 = inline).")

let checkpoint_every =
  Arg.(
    value & opt positive_int 32
    & info [ "checkpoint-every" ]
        ~doc:"Checkpoint a session after this many committed batches.")

let queue_cap =
  Arg.(
    value & opt positive_int 64
    & info [ "queue-cap" ] ~doc:"Per-session submit queue capacity.")

let global_cap =
  Arg.(
    value & opt positive_int 256
    & info [ "global-cap" ] ~doc:"Global queued-batch admission limit.")

let max_sessions =
  Arg.(
    value & opt positive_int 8
    & info [ "max-sessions" ] ~doc:"Concurrently attached session limit.")

let deadline_ms =
  Arg.(
    value
    & opt (some positive_int) None
    & info [ "deadline-ms" ] ~doc:"Default deadline for edits that carry none.")

let max_retries =
  Arg.(
    value & opt non_negative_int 2
    & info [ "max-retries" ] ~doc:"Per-batch solve retries before giving up.")

let no_audit =
  Arg.(
    value & flag
    & info [ "no-audit" ] ~doc:"Skip certification of recovered sessions.")

let inject_worker =
  Arg.(
    value & opt non_negative_int 0
    & info [ "inject-worker" ]
        ~docv:"N"
        ~doc:"Fail every Nth panel-solve task (0 = off) — supervision drill.")

let inject_wal_append =
  Arg.(
    value & opt non_negative_int 0
    & info [ "inject-wal-append" ]
        ~docv:"N" ~doc:"Tear every Nth WAL record append (0 = off).")

let inject_wal_commit =
  Arg.(
    value & opt non_negative_int 0
    & info [ "inject-wal-commit" ]
        ~docv:"N" ~doc:"Fail every Nth WAL commit marker (0 = off).")

let seed =
  Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Workload stream seed.")

let clients =
  Arg.(value & opt positive_int 4 & info [ "clients" ] ~doc:"Client sessions.")

let steps =
  Arg.(
    value & opt positive_int 25
    & info [ "steps" ] ~doc:"Edit batches per client.")

let edits_per_step =
  Arg.(
    value & opt positive_int 3
    & info [ "edits-per-step" ] ~doc:"Deltas per batch.")

let scale =
  Arg.(
    value & opt float 0.05
    & info [ "scale" ] ~doc:"Suite circuit scale for the base design.")

let install_faults ~worker ~wal_append ~wal_commit =
  let counts = Hashtbl.create 4 in
  let every point n =
    n > 0
    &&
    let c = 1 + (try Hashtbl.find counts point with Not_found -> 0) in
    Hashtbl.replace counts point c;
    c mod n = 0
  in
  Fault.set_hook @@
    fun p ->
      match p with
      | Fault.Worker when every p worker ->
        failwith "injected worker-domain fault"
      | Fault.Wal_append when every p wal_append ->
        failwith "injected torn WAL write"
      | Fault.Wal_commit when every p wal_commit ->
        failwith "injected WAL commit failure"
      | _ -> ()

let server_config ~root ~jobs ~checkpoint_every ~queue_cap ~global_cap
    ~max_sessions ~deadline_ms ~max_retries ~no_audit =
  {
    (Serve.Server.default_config ~root) with
    Serve.Server.checkpoint_every;
    queue_capacity = queue_cap;
    global_capacity = global_cap;
    max_sessions;
    default_deadline_ms = deadline_ms;
    max_retries;
    on_backoff = Unix.sleepf;
    audit_on_recover = not no_audit;
    jobs;
    now = Unix.gettimeofday;
  }

(* -- serve ------------------------------------------------------------- *)

let run_serve root jobs checkpoint_every queue_cap global_cap max_sessions
    deadline_ms max_retries no_audit worker wal_append wal_commit =
  install_faults ~worker ~wal_append ~wal_commit;
  let config =
    server_config ~root ~jobs ~checkpoint_every ~queue_cap ~global_cap
      ~max_sessions ~deadline_ms ~max_retries ~no_audit
  in
  let t = Serve.Server.create config in
  let getline () = In_channel.input_line stdin in
  let respond r =
    print_string (P.response_to_string r);
    flush stdout
  in
  let rec loop () =
    match P.read_request ~getline with
    | None -> ()
    | Some (Error msg) ->
      respond (P.Resp_err (P.Parse, msg));
      loop ()
    | Some (Ok P.Quit) -> respond (Serve.Server.handle t P.Quit)
    | Some (Ok req) ->
      respond (Serve.Server.handle t req);
      loop ()
  in
  loop ();
  Serve.Server.shutdown t;
  0

(* -- load -------------------------------------------------------------- *)

let print_outcome (o : Serve.Loadgen.outcome) =
  Format.printf
    "sent %d  acked %d (%d edits)  timeouts %d  shed %d  failed %d@."
    o.Serve.Loadgen.sent o.acked o.acked_edits o.timeouts o.shed o.failed;
  Format.printf "wall %.2fs  %.1f edits/s  p50 %.1fms  p99 %.1fms  mean %.1fms@."
    o.wall o.edits_per_sec o.p50_ms o.p99_ms o.mean_ms;
  if o.mismatches <> [] then
    Format.printf "MISMATCHED SESSIONS: %s@." (String.concat " " o.mismatches)

let run_load root jobs checkpoint_every queue_cap global_cap max_sessions
    deadline_ms max_retries no_audit worker seed clients steps edits_per_step
    scale =
  install_faults ~worker ~wal_append:0 ~wal_commit:0;
  let config =
    server_config ~root ~jobs ~checkpoint_every ~queue_cap ~global_cap
      ~max_sessions:(max max_sessions clients) ~deadline_ms ~max_retries
      ~no_audit
  in
  let t = Serve.Server.create config in
  let design = Workloads.Suite.design ~scale (Workloads.Suite.find "ecc") in
  let outcome =
    Serve.Loadgen.run ~design
      {
        Serve.Loadgen.default with
        Serve.Loadgen.clients;
        steps;
        edits_per_step;
        seed = Int64.of_int seed;
        deadline_ms;
        now = Unix.gettimeofday;
      }
      (Serve.Server.handle t)
  in
  Serve.Server.shutdown t;
  print_outcome outcome;
  if outcome.Serve.Loadgen.mismatches = [] then 0 else 1

(* -- soak -------------------------------------------------------------- *)

(* A [serve] child on pipes. *)
type child = {
  pid : int;
  to_child : out_channel;
  from_child : in_channel;
}

let spawn_serve ~root ~jobs ~worker =
  let req_r, req_w = Unix.pipe ~cloexec:false () in
  let resp_r, resp_w = Unix.pipe ~cloexec:false () in
  let args =
    [
      Sys.executable_name; "serve"; "--root"; root;
      "--jobs"; string_of_int jobs;
    ]
    @ (if worker > 0 then [ "--inject-worker"; string_of_int worker ] else [])
  in
  let pid =
    Unix.create_process Sys.executable_name (Array.of_list args) req_r resp_w
      Unix.stderr
  in
  Unix.close req_r;
  Unix.close resp_w;
  {
    pid;
    to_child = Unix.out_channel_of_descr req_w;
    from_child = Unix.in_channel_of_descr resp_r;
  }

let child_conn child req =
  output_string child.to_child (P.request_to_string req);
  flush child.to_child;
  match P.read_response ~getline:(fun () -> In_channel.input_line child.from_child)
  with
  | Some r -> r
  | None -> P.Resp_err (P.Internal, "child closed the connection")

let kill_child child =
  Unix.kill child.pid Sys.sigkill;
  ignore (Unix.waitpid [] child.pid);
  close_out_noerr child.to_child;
  close_in_noerr child.from_child

let quit_child child =
  (try ignore (child_conn child P.Quit) with _ -> ());
  ignore (Unix.waitpid [] child.pid);
  close_out_noerr child.to_child;
  close_in_noerr child.from_child

type soak_client = {
  session : string;
  stream : Eco.Delta.t list array;
  mutable next : int;  (* index of the next unacknowledged batch *)
  mutable shadow : Netlist.Design.t;  (* fold of batches 0..next-1 *)
}

let soak_fail fmt = Printf.ksprintf (fun m -> prerr_endline ("SOAK: " ^ m)) fmt

(* Acknowledge-or-retry one batch; returns false on an unrecoverable
   response. *)
let send_batch conn c =
  let batch = c.stream.(c.next) in
  let rec go attempts =
    match conn (P.Edit (c.session, P.no_opts, Eco.Delta.to_string batch)) with
    | P.Resp_ok _ ->
      c.shadow <- Eco.Delta.apply_all c.shadow batch;
      c.next <- c.next + 1;
      true
    | P.Resp_err ((P.Worker_failed | P.Overloaded | P.Timeout), _)
      when attempts < 5 ->
      go (attempts + 1)
    | P.Resp_err (code, msg) ->
      soak_fail "%s batch %d: %s %s" c.session c.next
        (P.err_code_to_string code) msg;
      false
    | P.Resp_data _ ->
      soak_fail "%s batch %d: unexpected data response" c.session c.next;
      false
  in
  go 0

(* After a restart: the journal may additionally hold the one batch
   that was in flight when the child died.  Accept either state and
   advance the client's bookkeeping to match the dump. *)
let resync_client conn c =
  match conn (P.Get_design c.session) with
  | P.Resp_data (_, payload) ->
    if payload = Netlist.Design_io.to_string c.shadow then true
    else if
      c.next < Array.length c.stream
      &&
      let advanced = Eco.Delta.apply_all c.shadow c.stream.(c.next) in
      payload = Netlist.Design_io.to_string advanced
    then begin
      c.shadow <- Eco.Delta.apply_all c.shadow c.stream.(c.next);
      c.next <- c.next + 1;
      true
    end
    else begin
      soak_fail "%s: recovered design matches neither %d nor %d acked batches"
        c.session c.next (c.next + 1);
      false
    end
  | P.Resp_ok _ | P.Resp_err _ ->
    soak_fail "%s: design dump failed after recovery" c.session;
    false

let run_soak root jobs worker seed clients steps edits_per_step scale
    kill_after =
  let design = Workloads.Suite.design ~scale (Workloads.Suite.find "ecc") in
  let design_text = Netlist.Design_io.to_string design in
  let cs =
    List.init clients (fun i ->
        {
          session = Printf.sprintf "soak%d" i;
          stream =
            Array.of_list
              (Workloads.Eco_stream.random
                 ~seed:(Int64.of_int (seed + i))
                 ~steps ~edits_per_step design);
          next = 0;
          shadow = design;
        })
  in
  let child = ref (spawn_serve ~root ~jobs ~worker) in
  let conn req = child_conn !child req in
  let ok = ref true in
  List.iter
    (fun c ->
      match conn (P.Open (c.session, design_text)) with
      | P.Resp_ok _ -> ()
      | r ->
        soak_fail "open %s failed: %s" c.session
          (String.trim (P.response_to_string r));
        ok := false)
    cs;
  let total_acked () = List.fold_left (fun a c -> a + c.next) 0 cs in
  let alive c = c.next < Array.length c.stream in
  let killed = ref false in
  (* round-robin; one mid-flight kill -9 at the scheduled point *)
  while !ok && List.exists alive cs do
    List.iter
      (fun c ->
        if !ok && alive c then
          if (not !killed) && total_acked () >= kill_after then begin
            killed := true;
            (* fire the request and murder the child mid-processing *)
            output_string !child.to_child
              (P.request_to_string
                 (P.Edit (c.session, P.no_opts, Eco.Delta.to_string c.stream.(c.next))));
            flush !child.to_child;
            Unix.sleepf 0.02;
            kill_child !child;
            child := spawn_serve ~root ~jobs ~worker;
            (* recover every session and re-establish client state *)
            List.iter
              (fun c ->
                if !ok then
                  match conn (P.Attach c.session) with
                  | P.Resp_ok _ -> ok := !ok && resync_client conn c
                  | r ->
                    soak_fail "attach %s failed: %s" c.session
                      (String.trim (P.response_to_string r));
                    ok := false)
              cs
          end
          else ok := !ok && send_batch conn c)
      cs
  done;
  (* final verification: every session's design equals the full fold *)
  if !ok then
    List.iter
      (fun c ->
        match conn (P.Get_design c.session) with
        | P.Resp_data (_, payload)
          when payload = Netlist.Design_io.to_string c.shadow -> ()
        | _ ->
          soak_fail "%s: final design diverges from the acknowledged fold"
            c.session;
          ok := false)
      cs;
  if !killed && !ok then
    Format.printf "soak: %d sessions, %d batches, 1 kill -9: all recovered@."
      clients (total_acked ())
  else if not !killed then begin
    soak_fail "kill point (%d) never reached (%d batches total)" kill_after
      (total_acked ());
    ok := false
  end;
  quit_child !child;
  if !ok then 0 else 1

(* -- command line ------------------------------------------------------ *)

let kill_after =
  Arg.(
    value & opt positive_int 20
    & info [ "kill-after" ]
        ~doc:"kill -9 the server after this many acknowledged batches.")

let serve_cmd =
  Cmd.v
    (Cmd.info "serve" ~doc:"run the ECO service on stdin/stdout")
    Term.(
      const run_serve $ root $ jobs $ checkpoint_every $ queue_cap $ global_cap
      $ max_sessions $ deadline_ms $ max_retries $ no_audit $ inject_worker
      $ inject_wal_append $ inject_wal_commit)

let load_cmd =
  Cmd.v
    (Cmd.info "load" ~doc:"drive an in-process broker with edit streams")
    Term.(
      const run_load $ root $ jobs $ checkpoint_every $ queue_cap $ global_cap
      $ max_sessions $ deadline_ms $ max_retries $ no_audit $ inject_worker
      $ seed $ clients $ steps $ edits_per_step $ scale)

let soak_cmd =
  Cmd.v
    (Cmd.info "soak"
       ~doc:"spawn a real server, kill -9 it mid-batch, verify recovery")
    Term.(
      const run_soak $ root $ jobs $ inject_worker $ seed $ clients $ steps
      $ edits_per_step $ scale $ kill_after)

let cmd =
  Cmd.group
    (Cmd.info "cpr_serve" ~version:"1.0.0"
       ~doc:"crash-safe supervised ECO service with WAL recovery")
    [ serve_cmd; load_cmd; soak_cmd ]

(* shared exit-code convention with cpr_main/cpr_fuzz: 0 ok, 1 a check
   failed, 2 usage or I/O error (cmdliner's 123/124/125 collapse
   onto 2) *)
let () = exit (match Cmd.eval' cmd with 0 -> 0 | 1 -> 1 | _ -> 2)
