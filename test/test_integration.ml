(* End-to-end flows on a small but non-trivial synthetic circuit:
   the invariants every router must uphold, plus the paper's expected
   qualitative relationships between CPR and the two baselines. *)

module Design = Netlist.Design
module Grid = Rgrid.Grid
module Node = Rgrid.Node
module Route = Rgrid.Route
module Flow = Router.Flow

let check = Alcotest.(check bool)

let small () = Workloads.Suite.design ~scale:0.08 (Workloads.Suite.find "ecc")

let assert_flow_invariants name (flow : Flow.t) =
  let d = flow.Flow.design in
  let space = Node.space_of_design d in
  (* 1. clean nets are routed *)
  Array.iteri
    (fun net clean ->
      if clean then
        check (name ^ ": clean implies routed") true
          (Option.is_some flow.Flow.routes.(net)))
    flow.Flow.clean;
  (* 2. every routed net's metal is connected and covers its pins' V1s *)
  Array.iter
    (fun route ->
      match route with
      | None -> ()
      | Some (r : Route.t) ->
        List.iter
          (fun (_pin, x, y) ->
            check (name ^ ": V1 lands on own metal") true
              (List.mem (Node.pack space ~layer:Rgrid.Layer.M2 ~x ~y)
                 r.Route.nodes))
          r.Route.pin_vias)
    flow.Flow.routes;
  (* 3. no two routed nets share a node (short-free final metal) *)
  let owner = Hashtbl.create 1024 in
  Array.iter
    (fun route ->
      match route with
      | None -> ()
      | Some (r : Route.t) ->
        List.iter
          (fun node ->
            (match Hashtbl.find_opt owner node with
            | Some other when other <> r.Route.net ->
              Alcotest.failf "%s: nets %d and %d short at node %d" name other
                r.Route.net node
            | Some _ | None -> ());
            Hashtbl.replace owner node r.Route.net)
          r.Route.nodes)
    flow.Flow.routes;
  (* 4. blamed violations refer to routed nets *)
  List.iter
    (fun (v : Drc.Check.violation) ->
      if v.Drc.Check.blame >= 0 then
        check (name ^ ": blame within range") true
          (v.Drc.Check.blame < Array.length flow.Flow.clean))
    flow.Flow.violations;
  (* 5. elapsed time sane *)
  check (name ^ ": elapsed >= 0") true (flow.Flow.elapsed >= 0.0)

let test_cpr_flow () = assert_flow_invariants "cpr" (Router.Cpr.run (small ()))

let test_ncr_flow () =
  assert_flow_invariants "ncr" (Router.Baseline_ncr.run (small ()))

let test_seq_flow () =
  assert_flow_invariants "seq" (Router.Sequential.run (small ()))

let test_cpr_beats_ncr () =
  (* the headline qualitative results on a mid-size instance *)
  let d = Workloads.Suite.design ~scale:0.25 (Workloads.Suite.find "ecc") in
  let cpr = Router.Cpr.run d in
  let ncr = Router.Baseline_ncr.run d in
  let s_cpr = Metrics.Eval.of_flow cpr and s_ncr = Metrics.Eval.of_flow ncr in
  check "CPR routability >= NCR" true
    (s_cpr.Metrics.Eval.routability >= s_ncr.Metrics.Eval.routability -. 1.0);
  check "CPR initial congestion below NCR" true
    (cpr.Flow.initial_congestion <= ncr.Flow.initial_congestion);
  check "CPR via count not above NCR" true
    (s_cpr.Metrics.Eval.via_count
    <= int_of_float (1.1 *. float_of_int s_ncr.Metrics.Eval.via_count))

let test_cpr_with_ilp_pao () =
  let d = small () in
  let config =
    {
      Router.Cpr.default_config with
      Router.Cpr.pao_kind = Pinaccess.Pin_access.Ilp;
    }
  in
  assert_flow_invariants "cpr-ilp"
    (Router.Cpr.run ~config
       ~pao_budget:(Pinaccess.Budget.start ~seconds:5.0 ())
       d)

let test_run_with_external_pao () =
  let d = small () in
  let pao = Pinaccess.Pin_access.optimize ~kind:Pinaccess.Pin_access.Lr d in
  let flow = Router.Cpr.run_with_pao d pao in
  assert_flow_invariants "cpr-external-pao" flow;
  check "pao recorded in flow" true (Option.is_some flow.Flow.pao)

let test_flow_metrics_consistent () =
  let d = small () in
  let flow = Router.Cpr.run d in
  let s = Metrics.Eval.of_flow flow in
  check "routed_count matches" true
    (Flow.routed_count flow = s.Metrics.Eval.routed_nets);
  check "routability consistent" true
    (Float.abs ((Flow.routability flow *. 100.0) -. s.Metrics.Eval.routability)
    < 1e-9)

(* appended: electrical verification of every flow *)
let test_verify_flows () =
  let d = small () in
  List.iter
    (fun (name, flow) ->
      match Router.Verify.check_flow flow with
      | [] -> ()
      | issues ->
        Alcotest.failf "%s: %s" name
          (String.concat "; " (List.map Router.Verify.issue_to_string issues)))
    [
      ("cpr", Router.Cpr.run d);
      ("ncr", Router.Baseline_ncr.run d);
      ("seq", Router.Sequential.run d);
    ]

let () =
  Alcotest.run "integration"
    [
      ( "flows",
        [
          Alcotest.test_case "cpr invariants" `Quick test_cpr_flow;
          Alcotest.test_case "ncr invariants" `Quick test_ncr_flow;
          Alcotest.test_case "seq invariants" `Quick test_seq_flow;
          Alcotest.test_case "cpr with ILP PAO" `Slow test_cpr_with_ilp_pao;
          Alcotest.test_case "external pao" `Quick test_run_with_external_pao;
          Alcotest.test_case "metrics consistent" `Quick test_flow_metrics_consistent;
          Alcotest.test_case "cpr beats ncr" `Slow test_cpr_beats_ncr;
          Alcotest.test_case "electrical verification" `Quick test_verify_flows;
        ] );
    ]

