(* The ECO subsystem end to end: the delta language round-trips and
   applies with precise errors, the dirty index marks exactly the
   dependent panels, cache keys hash content (never names), and the
   incremental engine lands on the from-scratch answer — bit-identical
   with warm starting off, certified equivalent with it on, routed
   flows audited clean. *)

module I = Geometry.Interval
module B = Netlist.Builder
module Design = Netlist.Design
module Blockage = Netlist.Blockage
module Delta = Eco.Delta
module Dirty = Eco.Dirty
module PC = Eco.Panel_cache
module Engine = Eco.Engine
module PA = Pinaccess.Pin_access

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let fig3_design () =
  B.design ~width:20 ~height:10
    ~nets:
      [
        ("a", [ B.pin_span 6 ~lo:2 ~hi:4; B.pin_at 2 7; B.pin_at 17 6 ]);
        ("b", [ B.pin_at 9 3; B.pin_at 9 8 ]);
        ("c", [ B.pin_at 3 2; B.pin_at 13 2 ]);
        ("d", [ B.pin_at 14 3; B.pin_at 15 8 ]);
      ]
    ()

(* three panels (row_height 10): nets a/b/c are panel-local, x spans
   panels 0 and 2 *)
let multi_panel () =
  B.design ~width:24 ~height:30
    ~nets:
      [
        ("a", [ B.pin_at 2 2; B.pin_at 9 6 ]);
        ("b", [ B.pin_at 4 12; B.pin_at 11 17 ]);
        ("c", [ B.pin_at 6 22; B.pin_at 15 27 ]);
        ("x", [ B.pin_at 18 4; B.pin_at 18 24 ]);
      ]
    ()

let ecc ?(scale = 0.05) () =
  Workloads.Suite.design ~scale (Workloads.Suite.find "ecc")

let net_names design =
  Design.nets design |> Array.to_list
  |> List.map (fun (n : Netlist.Net.t) -> n.Netlist.Net.name)
  |> List.sort compare

let has_pin design ~x ~track =
  Design.pins design
  |> Array.exists (fun (p : Netlist.Pin.t) ->
         p.Netlist.Pin.x = x && Netlist.Pin.covers_track p track)

(* ------------------------------------------------------------------ *)
(* Delta language                                                      *)
(* ------------------------------------------------------------------ *)

let every_kind =
  [
    Delta.Add_pin
      { net = "a"; shape = { Delta.x = 5; tracks = I.make ~lo:3 ~hi:4 } };
    Delta.Remove_pin { Delta.at_x = 9; at_track = 6 };
    Delta.Move_pin
      {
        from_ = { Delta.at_x = 2; at_track = 2 };
        shape = { Delta.x = 3; tracks = I.point 2 };
      };
    Delta.Add_net
      {
        name = "fresh";
        pins =
          [
            { Delta.x = 1; tracks = I.point 8 };
            { Delta.x = 7; tracks = I.make ~lo:0 ~hi:1 };
          ];
      };
    Delta.Remove_net "b";
    Delta.Add_blockage
      (Blockage.make ~layer:Blockage.M2 ~track:5 ~span:(I.make ~lo:0 ~hi:3));
    Delta.Remove_blockage
      (Blockage.make ~layer:Blockage.M3 ~track:2 ~span:(I.make ~lo:1 ~hi:2));
    Delta.Set_clearance 1;
  ]

let test_round_trip () =
  check "every kind survives to_string/of_string" true
    (Delta.of_string (Delta.to_string every_kind) = every_kind);
  let batches = [ every_kind; [ Delta.Set_clearance 0 ] ] in
  check "batches survive the step separator" true
    (Delta.batches_of_string (Delta.batches_to_string batches) = batches)

let test_parse_tolerance () =
  let text =
    "# an ECO from the editor\n\n\
     move_pin 2 2 3 2 2\n\
     step\n\n\
     step\n\
     remove_net b\n\
     step\n"
  in
  let batches = Delta.batches_of_string text in
  check "comments, blanks and empty batches are dropped" true
    (batches
    = [
        [
          Delta.Move_pin
            {
              from_ = { Delta.at_x = 2; at_track = 2 };
              shape = { Delta.x = 3; tracks = I.point 2 };
            };
        ];
        [ Delta.Remove_net "b" ];
      ])

let test_parse_errors () =
  let rejects text =
    match Delta.of_string text with
    | exception Delta.Parse_error _ -> ()
    | _ -> Alcotest.failf "accepted malformed %S" text
  in
  rejects "bogus 1 2";
  rejects "move_pin 1";
  rejects "add_blockage M4 0 0 1";
  (* single-batch parser refuses multi-batch streams *)
  rejects "set_clearance 1\nstep\nset_clearance 0"

let test_apply_move () =
  let design = fig3_design () in
  let moved =
    Delta.apply design
      (Delta.Move_pin
         {
           from_ = { Delta.at_x = 9; at_track = 3 };
           shape = { Delta.x = 10; tracks = I.point 3 };
         })
  in
  check "pin left the old grid" false (has_pin moved ~x:9 ~track:3);
  check "pin arrived at the new grid" true (has_pin moved ~x:10 ~track:3);
  check "net names survive the rebuild" true
    (net_names moved = net_names design)

let test_apply_net_lifecycle () =
  let design = fig3_design () in
  let with_solo =
    Delta.apply design
      (Delta.Add_net
         { name = "solo"; pins = [ { Delta.x = 1; tracks = I.point 1 } ] })
  in
  check "net added" true (List.mem "solo" (net_names with_solo));
  (* removing a net's last pin drops the net with it *)
  let emptied =
    Delta.apply with_solo (Delta.Remove_pin { Delta.at_x = 1; at_track = 1 })
  in
  check "emptied net dropped" true (net_names emptied = net_names design)

let test_apply_all_indexes_failures () =
  let design = fig3_design () in
  let batch =
    [
      Delta.Set_clearance 1;
      (* fine *)
      Delta.Remove_net "no-such-net";
    ]
  in
  match Delta.apply_all design batch with
  | exception Delta.Invalid { index; _ } ->
    check "offending delta is indexed" true (index = Some 1)
  | _ -> Alcotest.fail "unknown net accepted"

let test_remove_blockage_exact_match () =
  let b = Blockage.make ~layer:Blockage.M2 ~track:5 ~span:(I.make ~lo:0 ~hi:3)
  in
  let design = Delta.apply (fig3_design ()) (Delta.Add_blockage b) in
  check_int "blockage added" 1 (List.length (Design.blockages design));
  let near =
    Blockage.make ~layer:Blockage.M2 ~track:5 ~span:(I.make ~lo:0 ~hi:2)
  in
  (match Delta.apply design (Delta.Remove_blockage near) with
  | exception Delta.Invalid _ -> ()
  | _ -> Alcotest.fail "inexact blockage removal accepted");
  let removed = Delta.apply design (Delta.Remove_blockage b) in
  check_int "exact removal works" 0 (List.length (Design.blockages removed))

let test_clearance_is_config_only () =
  let design = fig3_design () in
  let after = Delta.apply design (Delta.Set_clearance 2) in
  check "design untouched by a rule delta" true
    (Design.stats after = Design.stats design);
  let cfg =
    Delta.apply_config Pinaccess.Interval_gen.default_config
      (Delta.Set_clearance 2)
  in
  check_int "config picked up the clearance" 2
    cfg.Pinaccess.Interval_gen.clearance

(* ------------------------------------------------------------------ *)
(* Dirty index                                                         *)
(* ------------------------------------------------------------------ *)

let dirty_panels design deltas =
  let _, d = Dirty.compute ~before:design deltas in
  d.Dirty.panels

let test_dirty_local_move () =
  let d =
    dirty_panels (multi_panel ())
      [
        Delta.Move_pin
          {
            from_ = { Delta.at_x = 2; at_track = 2 };
            shape = { Delta.x = 3; tracks = I.point 2 };
          };
      ]
  in
  check "a panel-local move dirties only its panel" true (d = [ 0 ])

let test_dirty_follows_net_bbox () =
  (* net x has pins in panels 0 and 2: moving the panel-0 pin reshapes
     the net bbox that clips candidates in panel 2 as well *)
  let d =
    dirty_panels (multi_panel ())
      [
        Delta.Move_pin
          {
            from_ = { Delta.at_x = 18; at_track = 4 };
            shape = { Delta.x = 17; tracks = I.point 4 };
          };
      ]
  in
  check "both of the net's panels are dirty" true (d = [ 0; 2 ])

let test_dirty_blockages () =
  let design = multi_panel () in
  let m3 =
    [
      Delta.Add_blockage
        (Blockage.make ~layer:Blockage.M3 ~track:20
           ~span:(I.make ~lo:3 ~hi:14));
    ]
  in
  let _, d3 = Dirty.compute ~before:design m3 in
  check "M3 blockages dirty no panel" true (d3.Dirty.panels = []);
  check "but do dirty their routing footprint" true (d3.Dirty.rects <> []);
  let m2 =
    [
      Delta.Add_blockage
        (Blockage.make ~layer:Blockage.M2 ~track:13
           ~span:(I.make ~lo:20 ~hi:23));
    ]
  in
  check "an M2 blockage dirties its panel" true
    (dirty_panels design m2 = [ 1 ])

let test_dirty_rule_change () =
  check "a clearance flip dirties every panel" true
    (dirty_panels (multi_panel ()) [ Delta.Set_clearance 1 ] = [ 0; 1; 2 ]);
  let _, d = Dirty.compute ~before:(multi_panel ()) [] in
  check "an empty batch is clean" true (Dirty.clean d)

(* ------------------------------------------------------------------ *)
(* Panel cache keys                                                    *)
(* ------------------------------------------------------------------ *)

let key ?(config = PA.default_config) design panel =
  PC.key ~config ~kind:PA.Lr design ~panel

let test_key_ignores_net_names () =
  let renamed =
    B.design ~width:24 ~height:30
      ~nets:
        [
          ("alpha", [ B.pin_at 2 2; B.pin_at 9 6 ]);
          ("beta", [ B.pin_at 4 12; B.pin_at 11 17 ]);
          ("gamma", [ B.pin_at 6 22; B.pin_at 15 27 ]);
          ("delta", [ B.pin_at 18 4; B.pin_at 18 24 ]);
        ]
      ()
  in
  let design = multi_panel () in
  for panel = 0 to 2 do
    check "renaming every net keeps the key" true
      (key design panel = key renamed panel)
  done

let test_key_tracks_rule_deck () =
  let design = multi_panel () in
  let loose =
    {
      PA.default_config with
      PA.gen =
        { Pinaccess.Interval_gen.default_config with clearance = 1 };
    }
  in
  check "a clearance change misses" false
    (key design 0 = key ~config:loose design 0)

let test_key_tracks_tpl_deck () =
  let design = multi_panel () in
  let with_colors k =
    {
      PA.default_config with
      PA.gen =
        {
          Pinaccess.Interval_gen.default_config with
          tpl = Some (Solver.Color_graph.default ~colors:k);
        };
    }
  in
  check "turning TPL on misses" false
    (key design 0 = key ~config:(with_colors 3) design 0);
  check "a different deck misses" false
    (key ~config:(with_colors 3) design 0 = key ~config:(with_colors 4) design 0);
  check "the same deck hits" true
    (key ~config:(with_colors 3) design 0 = key ~config:(with_colors 3) design 0)

let test_key_is_panel_local () =
  let design = multi_panel () in
  let moved =
    Delta.apply design
      (Delta.Move_pin
         {
           from_ = { Delta.at_x = 2; at_track = 2 };
           shape = { Delta.x = 3; tracks = I.point 2 };
         })
  in
  check "the edited panel's key changes" false (key design 0 = key moved 0);
  check "untouched panels keep their keys" true
    (key design 1 = key moved 1 && key design 2 = key moved 2)

(* ------------------------------------------------------------------ *)
(* Panel cache LRU                                                     *)
(* ------------------------------------------------------------------ *)

let dummy_entry =
  {
    PC.slots = [||];
    intervals = 0;
    cliques = 0;
    objective = 0.0;
    lr_iterations = 0;
    proven_optimal = false;
    served_by = PA.Tier_lr;
    degraded = false;
    multipliers = [||];
  }

let test_cache_lru_eviction () =
  let c = PC.create ~max_entries:2 () in
  PC.store c "k1" dummy_entry;
  PC.store c "k2" dummy_entry;
  check_int "at capacity" 2 (PC.size c);
  check_int "nothing evicted yet" 0 (PC.evictions c);
  (* touch k1 so k2 becomes the least recently used *)
  check "k1 hit refreshes" true (PC.find c "k1" <> None);
  PC.store c "k3" dummy_entry;
  check_int "capacity held" 2 (PC.size c);
  check_int "one eviction" 1 (PC.evictions c);
  check "the LRU entry was dropped" true (PC.find c "k2" = None);
  check "the refreshed entry survived" true (PC.find c "k1" <> None);
  check "the new entry is present" true (PC.find c "k3" <> None)

let test_cache_peek_does_not_refresh () =
  let c = PC.create ~max_entries:2 () in
  PC.store c "old" dummy_entry;
  PC.store c "new" dummy_entry;
  let hits0 = PC.hits c and misses0 = PC.misses c in
  check "peek sees the entry" true (PC.peek c "old" <> None);
  check "peek leaves the counters alone" true
    (PC.hits c = hits0 && PC.misses c = misses0);
  (* [peek] did not refresh "old", so it is still the eviction victim *)
  PC.store c "newer" dummy_entry;
  check "a peeked entry is not kept alive" true (PC.find c "old" = None);
  check "the stored-later entry survived" true (PC.find c "new" <> None)

let test_cache_metrics_published () =
  Obs.Metrics.reset ();
  let c = PC.create ~max_entries:1 () in
  check "miss" true (PC.find c "a" = None);
  PC.store c "a" dummy_entry;
  check "hit" true (PC.find c "a" <> None);
  (* over capacity: storing "b" evicts "a" *)
  PC.store c "b" dummy_entry;
  let counters = (Obs.Metrics.snapshot ()).Obs.Metrics.counters in
  let v name = List.assoc_opt name counters in
  check "hits published" true (v "eco.panel_cache.hits" = Some 1);
  check "misses published" true (v "eco.panel_cache.misses" = Some 1);
  check "evictions published" true (v "eco.panel_cache.evictions" = Some 1)

(* ------------------------------------------------------------------ *)
(* Engine                                                              *)
(* ------------------------------------------------------------------ *)

let test_engine_differential () =
  (* the audit replays every batch: incremental certifies, from-scratch
     certifies, and (warm starting off) the two agree bit for bit *)
  let design = ecc () in
  let stream =
    Workloads.Eco_stream.random ~seed:7L ~steps:4 ~edits_per_step:2 design
  in
  check "fixture stream is non-trivial" true (stream <> []);
  match Audit.Eco_audit.check design stream with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_engine_differential_warm () =
  let design = ecc () in
  let stream =
    Workloads.Eco_stream.random ~seed:11L ~steps:3 ~edits_per_step:2 design
  in
  let config = { Engine.default_config with Engine.warm_start = true } in
  match Audit.Eco_audit.check ~config design stream with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_stream_batches_apply () =
  (* every batch a generator emits must apply cleanly in sequence *)
  let design = ecc () in
  let stream =
    Workloads.Eco_stream.random ~seed:5L ~steps:5 ~edits_per_step:3 design
  in
  ignore (List.fold_left Delta.apply_all design stream)

let test_engine_cache_accounting () =
  let design = ecc () in
  let engine = Engine.create design in
  let stream =
    Workloads.Eco_stream.local_moves ~seed:3L ~steps:2 ~dirty_fraction:0.2
      design
  in
  List.iter
    (fun batch ->
      let r = Engine.apply engine batch in
      check "hits + re-solves cover the panels" true
        (r.Engine.cache_hits + r.Engine.solved = r.Engine.panels);
      check "a local move leaves clean panels cached" true
        (r.Engine.cache_hits > 0);
      check "dirty panels re-solve" true (r.Engine.solved >= 1))
    stream;
  let rate = Engine.cache_hit_rate engine in
  check "lifetime hit rate is a rate" true (rate >= 0.0 && rate <= 1.0);
  check "and saw some hits" true (rate > 0.0)

let test_engine_invalid_leaves_state () =
  let design = fig3_design () in
  let engine = Engine.create design in
  let objective = (Engine.pao engine).PA.objective in
  let size = Engine.cache_size engine in
  (match Engine.apply engine [ Delta.Remove_net "no-such-net" ] with
  | exception Delta.Invalid _ -> ()
  | _ -> Alcotest.fail "invalid batch accepted");
  check "objective unchanged after a rejected batch" true
    ((Engine.pao engine).PA.objective = objective);
  check_int "cache unchanged after a rejected batch" size
    (Engine.cache_size engine);
  check "design unchanged after a rejected batch" true
    (Design.stats (Engine.design engine) = Design.stats design)

let test_engine_routed () =
  let design = ecc ~scale:0.1 () in
  let config = { Engine.default_config with Engine.routing = true } in
  let engine = Engine.create ~config design in
  check "cold start routes" true (Engine.flow engine <> None);
  let stream =
    Workloads.Eco_stream.local_moves ~seed:13L ~steps:2 ~dirty_fraction:0.1
      design
  in
  let frozen = ref 0 in
  List.iter
    (fun batch ->
      let r = Engine.apply engine batch in
      frozen := !frozen + r.Engine.frozen_nets;
      match Engine.flow engine with
      | None -> Alcotest.fail "flow dropped by an incremental step"
      | Some flow ->
        check "incremental flow audits clean" true
          (Audit.Flow_audit.run flow = []))
    stream;
  check "clean routes were frozen across steps" true (!frozen > 0)

(* ------------------------------------------------------------------ *)
(* Audit plumbing                                                      *)
(* ------------------------------------------------------------------ *)

let test_stream_seed_deterministic () =
  check "seed derives from the design text" true
    (Audit.Eco_audit.stream_seed (fig3_design ())
    = Audit.Eco_audit.stream_seed (fig3_design ()));
  check "different designs get different seeds" false
    (Audit.Eco_audit.stream_seed (fig3_design ())
    = Audit.Eco_audit.stream_seed (multi_panel ()))

let test_shrink_keeps_clean_streams () =
  let design = fig3_design () in
  let stream = [ [ Delta.Set_clearance 1 ]; [ Delta.Set_clearance 0 ] ] in
  let shrunk, steps = Audit.Eco_audit.shrink_stream design stream in
  check "a passing stream is returned unchanged" true (shrunk = stream);
  check_int "with zero reduction steps" 0 steps

let () =
  Alcotest.run "eco"
    [
      ( "delta",
        [
          Alcotest.test_case "round trip" `Quick test_round_trip;
          Alcotest.test_case "parse tolerance" `Quick test_parse_tolerance;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
          Alcotest.test_case "move pin" `Quick test_apply_move;
          Alcotest.test_case "net lifecycle" `Quick test_apply_net_lifecycle;
          Alcotest.test_case "batch failure index" `Quick
            test_apply_all_indexes_failures;
          Alcotest.test_case "blockage exact match" `Quick
            test_remove_blockage_exact_match;
          Alcotest.test_case "clearance is config-only" `Quick
            test_clearance_is_config_only;
        ] );
      ( "dirty",
        [
          Alcotest.test_case "local move" `Quick test_dirty_local_move;
          Alcotest.test_case "net bbox" `Quick test_dirty_follows_net_bbox;
          Alcotest.test_case "blockages" `Quick test_dirty_blockages;
          Alcotest.test_case "rule change" `Quick test_dirty_rule_change;
        ] );
      ( "cache",
        [
          Alcotest.test_case "names excluded" `Quick test_key_ignores_net_names;
          Alcotest.test_case "rule deck included" `Quick
            test_key_tracks_rule_deck;
          Alcotest.test_case "tpl deck included" `Quick
            test_key_tracks_tpl_deck;
          Alcotest.test_case "panel locality" `Quick test_key_is_panel_local;
          Alcotest.test_case "lru eviction" `Quick test_cache_lru_eviction;
          Alcotest.test_case "peek is recency-neutral" `Quick
            test_cache_peek_does_not_refresh;
          Alcotest.test_case "counters published" `Quick
            test_cache_metrics_published;
        ] );
      ( "engine",
        [
          Alcotest.test_case "differential (cold)" `Quick
            test_engine_differential;
          Alcotest.test_case "differential (warm)" `Quick
            test_engine_differential_warm;
          Alcotest.test_case "streams apply" `Quick test_stream_batches_apply;
          Alcotest.test_case "cache accounting" `Quick
            test_engine_cache_accounting;
          Alcotest.test_case "invalid batch is atomic" `Quick
            test_engine_invalid_leaves_state;
          Alcotest.test_case "routed increments" `Quick test_engine_routed;
        ] );
      ( "audit",
        [
          Alcotest.test_case "stream seed" `Quick test_stream_seed_deterministic;
          Alcotest.test_case "shrink keeps clean" `Quick
            test_shrink_keeps_clean_streams;
        ] );
    ]
