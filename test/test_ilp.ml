module I = Geometry.Interval
module B = Netlist.Builder
module P = Pinaccess.Problem
module Ilp = Pinaccess.Ilp
module Sol = Pinaccess.Solution
module PA = Pinaccess.Pin_access

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let cfg = Pinaccess.Interval_gen.default_config

let fig3_design () =
  B.design ~width:20 ~height:10
    ~nets:
      [
        ("a", [ B.pin_span 6 ~lo:2 ~hi:4; B.pin_at 2 7; B.pin_at 17 6 ]);
        ("b", [ B.pin_at 9 3; B.pin_at 9 8 ]);
        ("c", [ B.pin_at 3 2; B.pin_at 13 2 ]);
        ("d", [ B.pin_at 14 3; B.pin_at 15 8 ]);
      ]
    ()

let test_formulation_shape () =
  let d = fig3_design () in
  let problem = P.build_panel cfg d ~panel:0 in
  let milp = Ilp.to_milp problem in
  check_int "one variable per interval" (P.num_intervals problem)
    milp.Solver.Milp.num_vars;
  let chooses, conflicts =
    List.partition
      (fun row ->
        match row with
        | Solver.Milp.Choose_one _ -> true
        | Solver.Milp.At_most_one _ | Solver.Milp.At_most _ -> false)
      milp.Solver.Milp.rows
  in
  check_int "(1b): one row per pin" (P.num_pins problem) (List.length chooses);
  check_int "(1c): one row per clique" (P.num_cliques problem)
    (List.length conflicts)

let test_ilp_optimal_and_feasible () =
  let d = fig3_design () in
  let problem = P.build_panel cfg d ~panel:0 in
  let r = Ilp.solve problem in
  check "proven optimal" true r.Ilp.proven_optimal;
  check "conflict free" true (Sol.is_conflict_free r.Ilp.solution);
  Alcotest.(check (float 1e-6))
    "objective consistent" r.Ilp.objective
    (Sol.objective r.Ilp.solution)

let test_ilp_dominates_lr () =
  let d = Workloads.Suite.design ~scale:0.08 (Workloads.Suite.find "efc") in
  for panel = 0 to Netlist.Design.num_panels d - 1 do
    let problem = P.build_panel cfg d ~panel in
    if P.num_pins problem > 0 then begin
      let lr = Pinaccess.Lagrangian.solve problem in
      let sol = lr.Pinaccess.Lagrangian.solution in
      (* a residual-conflict LR solution is not feasible, hence not
         comparable to the exact solver's objective *)
      if Sol.is_conflict_free sol then begin
        let ilp = Ilp.solve ~time_limit:20.0 ~warm_start:sol problem in
        check "ILP >= LR objective" true
          (ilp.Ilp.objective >= Sol.objective sol -. 1e-6)
      end
    end
  done

let test_lp_bound_dominates () =
  let d = fig3_design () in
  let problem = P.build_panel cfg d ~panel:0 in
  let r = Ilp.solve problem in
  match Ilp.lp_relaxation_bound problem with
  | Some b -> check "LP bound >= ILP optimum" true (b >= r.Ilp.objective -. 1e-6)
  | None -> Alcotest.fail "simplex failed on a feasible relaxation"

let test_theorem1_feasibility () =
  (* Theorem 1: selecting minimum intervals is feasible, so the ILP is
     solvable at clearance 0 for any valid design *)
  let d = Workloads.Suite.design ~scale:0.06 (Workloads.Suite.find "ctl") in
  let cfg0 = { cfg with Pinaccess.Interval_gen.clearance = 0 } in
  for panel = 0 to Netlist.Design.num_panels d - 1 do
    let problem = P.build_panel cfg0 d ~panel in
    if P.num_pins problem > 0 then begin
      let r = Ilp.solve ~time_limit:30.0 problem in
      check "feasible at clearance 0" true (Sol.is_conflict_free r.Ilp.solution)
    end
  done

let test_pin_access_top_level () =
  let d = fig3_design () in
  let lr = PA.optimize ~kind:PA.Lr d in
  let ilp = PA.optimize ~kind:PA.Ilp d in
  PA.validate lr;
  PA.validate ilp;
  check "ILP objective >= LR" true (ilp.PA.objective >= lr.PA.objective -. 1e-6);
  check_int "one report per non-empty panel" 1 (List.length lr.PA.reports);
  check "every pin assigned" true
    (List.length lr.PA.assignments = Array.length (Netlist.Design.pins d))

let test_pin_access_combined () =
  let d = Workloads.Suite.design ~scale:0.08 (Workloads.Suite.find "ecc") in
  let combined = PA.optimize_combined ~kind:PA.Lr d ~panels:[ 0; 1 ] in
  PA.validate ~complete:false combined;
  check "combined covers only two panels' pins" true
    (List.length combined.PA.assignments
    < Array.length (Netlist.Design.pins d))

let test_interval_of_pin () =
  let d = fig3_design () in
  let lr = PA.optimize ~kind:PA.Lr d in
  (match PA.interval_of_pin lr 0 with
  | Some iv ->
    check "serves pin 0" true (Pinaccess.Access_interval.serves iv 0)
  | None -> Alcotest.fail "pin 0 should be assigned");
  check "unknown pin id" true (PA.interval_of_pin lr 9999 = None)

let () =
  Alcotest.run "ilp"
    [
      ( "formulation",
        [
          Alcotest.test_case "shape" `Quick test_formulation_shape;
          Alcotest.test_case "optimal + feasible" `Quick test_ilp_optimal_and_feasible;
          Alcotest.test_case "dominates LR" `Slow test_ilp_dominates_lr;
          Alcotest.test_case "LP bound" `Quick test_lp_bound_dominates;
          Alcotest.test_case "Theorem 1 feasibility" `Slow test_theorem1_feasibility;
        ] );
      ( "pin_access",
        [
          Alcotest.test_case "top level LR vs ILP" `Quick test_pin_access_top_level;
          Alcotest.test_case "combined panels" `Quick test_pin_access_combined;
          Alcotest.test_case "interval_of_pin" `Quick test_interval_of_pin;
        ] );
    ]
