module I = Geometry.Interval
module AI = Pinaccess.Access_interval
module Conflict = Pinaccess.Conflict

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let mk_intervals specs =
  Array.of_list
    (List.mapi
       (fun id (net, track, lo, hi, kind) ->
         AI.make ~id ~net ~pins:[ id ] ~track ~span:(I.make ~lo ~hi) ~kind)
       specs)

(* Figure 4 of the paper: intervals on one track; six conflict sets. *)
let test_figure4_shape () =
  (* a stack of staggered intervals: the sweep must emit maximal
     cliques only, left to right *)
  let intervals =
    mk_intervals
      [
        (0, 0, 0, 4, AI.Regular);
        (1, 0, 2, 6, AI.Regular);
        (2, 0, 5, 9, AI.Regular);
        (3, 0, 8, 12, AI.Regular);
      ]
  in
  let cliques = Conflict.detect intervals in
  check_int "three pairwise cliques" 3 (Array.length cliques);
  Array.iter
    (fun (c : Conflict.clique) ->
      check_int "each clique has 2 members" 2 (Array.length c.Conflict.members))
    cliques

let test_nested_cliques () =
  (* one big interval covering two disjoint small ones: two cliques *)
  let intervals =
    mk_intervals
      [
        (0, 0, 0, 10, AI.Regular);
        (1, 0, 1, 2, AI.Regular);
        (2, 0, 7, 8, AI.Regular);
      ]
  in
  let cliques = Conflict.detect intervals in
  check_int "two cliques" 2 (Array.length cliques);
  Array.iter
    (fun (c : Conflict.clique) ->
      check "big interval in every clique" true
        (Array.exists (fun id -> id = 0) c.Conflict.members))
    cliques

let test_tracks_independent () =
  let intervals =
    mk_intervals
      [ (0, 0, 0, 5, AI.Regular); (1, 1, 0, 5, AI.Regular) ]
  in
  check_int "different tracks never conflict" 0
    (Array.length (Conflict.detect intervals))

let test_common_intersection () =
  let intervals =
    mk_intervals
      [ (0, 3, 0, 6, AI.Regular); (1, 3, 4, 10, AI.Regular) ]
  in
  let cliques = Conflict.detect intervals in
  check_int "one clique" 1 (Array.length cliques);
  let c = cliques.(0) in
  check_int "L_m = overlap length" 3 (I.length c.Conflict.common);
  check_int "track recorded" 3 c.Conflict.track

let test_clearance_inflation () =
  (* gap of 1 between regular intervals conflicts at clearance 2 *)
  let intervals =
    mk_intervals
      [ (0, 0, 0, 3, AI.Regular); (1, 0, 5, 8, AI.Regular) ]
  in
  check_int "no conflict at clearance 0" 0
    (Array.length (Conflict.detect ~clearance:0 intervals));
  check_int "conflict at clearance 2" 1
    (Array.length (Conflict.detect ~clearance:2 intervals));
  (* gap of 2 is legal even at clearance 2 *)
  let spaced =
    mk_intervals
      [ (0, 0, 0, 3, AI.Regular); (1, 0, 6, 8, AI.Regular) ]
  in
  check_int "gap 2 clean at clearance 2" 0
    (Array.length (Conflict.detect ~clearance:2 spaced))

let test_dense_ids_required () =
  let bad =
    [|
      AI.make ~id:5 ~net:0 ~pins:[ 0 ] ~track:0 ~span:(I.point 0)
        ~kind:AI.Regular;
    |]
  in
  match Conflict.detect bad with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument for non-dense ids"

(* brute force: maximal cliques of the (clearance-inflated) interval
   graph via point-stabbing *)
let brute_force_cliques ~clearance intervals =
  let eff_hi (iv : AI.t) = I.hi iv.AI.span + clearance in
  let stab x =
    Array.to_list intervals
    |> List.filter (fun (iv : AI.t) -> I.lo iv.AI.span <= x && eff_hi iv >= x)
    |> List.map (fun (iv : AI.t) -> iv.AI.id)
    |> List.sort_uniq Int.compare
  in
  let candidates =
    Array.to_list intervals
    |> List.concat_map (fun (iv : AI.t) -> [ I.lo iv.AI.span; eff_hi iv ])
    |> List.sort_uniq Int.compare
    |> List.map stab
    |> List.filter (fun c -> List.length c >= 2)
    |> List.sort_uniq compare
  in
  (* keep only maximal sets *)
  List.filter
    (fun c ->
      not
        (List.exists
           (fun c' ->
             c <> c' && List.for_all (fun x -> List.mem x c') c)
           candidates))
    candidates
  |> List.sort_uniq compare

let random_track_intervals =
  let gen =
    QCheck.Gen.(
      let* n = int_range 1 10 in
      list_repeat n
        (let* lo = int_range 0 20 in
         let* len = int_range 0 8 in
         return (lo, lo + len)))
  in
  QCheck.make gen

let prop_sweep_matches_brute_force clearance =
  QCheck.Test.make
    ~name:(Printf.sprintf "sweep = brute force (clearance %d)" clearance)
    ~count:500 random_track_intervals (fun spans ->
      let intervals =
        mk_intervals
          (List.map (fun (lo, hi) -> (0, 0, lo, hi, AI.Regular)) spans)
      in
      let sweep =
        Conflict.detect ~clearance intervals
        |> Array.to_list
        |> List.map (fun (c : Conflict.clique) ->
               Array.to_list c.Conflict.members)
        |> List.sort_uniq compare
      in
      let brute = brute_force_cliques ~clearance intervals in
      sweep = brute)

let prop_linear_clique_count =
  QCheck.Test.make ~name:"clique count <= interval count" ~count:300
    random_track_intervals (fun spans ->
      let intervals =
        mk_intervals
          (List.map (fun (lo, hi) -> (0, 0, lo, hi, AI.Regular)) spans)
      in
      Array.length (Conflict.detect intervals) <= Array.length intervals)

(* Spans are inclusive grid ranges: [0,1] and [2,3] share no column, so
   they only conflict once the clearance inflation bridges the gap. *)
let test_touching_not_overlapping () =
  let intervals =
    mk_intervals [ (0, 0, 0, 1, AI.Regular); (1, 0, 2, 3, AI.Regular) ]
  in
  check_int "adjacent spans are clean at clearance 0" 0
    (Array.length (Conflict.detect ~clearance:0 intervals));
  let cliques = Conflict.detect ~clearance:1 intervals in
  check_int "adjacent spans conflict at clearance 1" 1 (Array.length cliques);
  check "both members present" true
    (Array.to_list cliques.(0).Conflict.members = [ 0; 1 ])

let test_zero_length_minimums () =
  (* two pins forced onto the same column: the point intervals overlap
     in exactly one grid, the paper's worst-case L_m = 1 *)
  let stacked =
    mk_intervals [ (0, 0, 4, 4, AI.Minimum); (1, 0, 4, 4, AI.Minimum) ]
  in
  let cliques = Conflict.detect stacked in
  check_int "coincident points form one clique" 1 (Array.length cliques);
  check_int "L_m = 1 for a point overlap" 1
    (I.length cliques.(0).Conflict.common);
  (* adjacent point intervals: clean until the clearance bridges them *)
  let adjacent =
    mk_intervals [ (0, 0, 3, 3, AI.Minimum); (1, 0, 4, 4, AI.Minimum) ]
  in
  check_int "adjacent points clean at clearance 0" 0
    (Array.length (Conflict.detect ~clearance:0 adjacent));
  check_int "adjacent points conflict at clearance 1" 1
    (Array.length (Conflict.detect ~clearance:1 adjacent));
  (* a point swallowed by a regular interval still registers *)
  let swallowed =
    mk_intervals [ (0, 0, 0, 8, AI.Regular); (1, 0, 5, 5, AI.Minimum) ]
  in
  check_int "point inside a span conflicts" 1
    (Array.length (Conflict.detect swallowed))

let test_duplicate_endpoints () =
  (* identical spans must collapse to a single maximal clique, not one
     clique per distinct right edge *)
  let triple =
    mk_intervals
      [
        (0, 0, 0, 5, AI.Regular);
        (1, 0, 0, 5, AI.Regular);
        (2, 0, 0, 5, AI.Regular);
      ]
  in
  let cliques = Conflict.detect triple in
  check_int "identical spans give one clique" 1 (Array.length cliques);
  check_int "with all three members" 3
    (Array.length cliques.(0).Conflict.members);
  check_int "common = the shared span" 6 (I.length cliques.(0).Conflict.common);
  (* shared right edge, staggered left edges: still one maximal clique *)
  let shared_hi =
    mk_intervals [ (0, 0, 0, 6, AI.Regular); (1, 0, 4, 6, AI.Regular) ]
  in
  check_int "shared right edge gives one clique" 1
    (Array.length (Conflict.detect shared_hi))

let test_chain_not_merged () =
  (* A-[0,2] B-[2,4] C-[4,6]: A and C never meet, so the sweep must
     emit {A,B} and {B,C}, never a merged {A,B,C} *)
  let intervals =
    mk_intervals
      [
        (0, 0, 0, 2, AI.Regular);
        (1, 0, 2, 4, AI.Regular);
        (2, 0, 4, 6, AI.Regular);
      ]
  in
  let cliques =
    Conflict.detect intervals
    |> Array.to_list
    |> List.map (fun (c : Conflict.clique) -> Array.to_list c.Conflict.members)
    |> List.sort compare
  in
  check "chain yields the two pair cliques" true
    (cliques = [ [ 0; 1 ]; [ 1; 2 ] ])

(* every pairwise (clearance-inflated) overlap must appear inside some
   clique, and cliques must introduce no pair that does not overlap *)
let prop_clique_pairs_match_pairwise clearance =
  QCheck.Test.make
    ~name:
      (Printf.sprintf "clique pairs = pairwise overlaps (clearance %d)"
         clearance)
    ~count:500 random_track_intervals (fun spans ->
      let intervals =
        mk_intervals
          (List.map (fun (lo, hi) -> (0, 0, lo, hi, AI.Regular)) spans)
      in
      let pair a b = if a < b then (a, b) else (b, a) in
      let from_cliques =
        Conflict.detect ~clearance intervals
        |> Array.to_list
        |> List.concat_map (fun (c : Conflict.clique) ->
               let m = Array.to_list c.Conflict.members in
               List.concat_map
                 (fun a -> List.filter_map
                    (fun b -> if a < b then Some (pair a b) else None) m)
                 m)
        |> List.sort_uniq compare
      in
      let brute = ref [] in
      let n = Array.length intervals in
      for i = 0 to n - 1 do
        for j = i + 1 to n - 1 do
          let a = intervals.(i) and b = intervals.(j) in
          let inflate (iv : AI.t) =
            I.make ~lo:(I.lo iv.AI.span) ~hi:(I.hi iv.AI.span + clearance)
          in
          if I.overlaps (inflate a) (inflate b) then
            brute := pair a.AI.id b.AI.id :: !brute
        done
      done;
      from_cliques = List.sort_uniq compare !brute)

let test_pairwise_count () =
  let intervals =
    mk_intervals
      [
        (0, 0, 0, 5, AI.Regular);
        (1, 0, 3, 8, AI.Regular);
        (2, 0, 7, 9, AI.Regular);
      ]
  in
  check_int "two overlapping pairs" 2
    (Conflict.count_pairwise_conflicts intervals)

let () =
  Alcotest.run "conflict"
    [
      ( "sweep",
        [
          Alcotest.test_case "figure 4 shape" `Quick test_figure4_shape;
          Alcotest.test_case "nested" `Quick test_nested_cliques;
          Alcotest.test_case "tracks independent" `Quick test_tracks_independent;
          Alcotest.test_case "common intersection" `Quick test_common_intersection;
          Alcotest.test_case "clearance inflation" `Quick test_clearance_inflation;
          Alcotest.test_case "dense ids" `Quick test_dense_ids_required;
          Alcotest.test_case "pairwise count" `Quick test_pairwise_count;
          Alcotest.test_case "touching not overlapping" `Quick
            test_touching_not_overlapping;
          Alcotest.test_case "zero-length minimums" `Quick
            test_zero_length_minimums;
          Alcotest.test_case "duplicate endpoints" `Quick
            test_duplicate_endpoints;
          Alcotest.test_case "chain not merged" `Quick test_chain_not_merged;
          QCheck_alcotest.to_alcotest (prop_sweep_matches_brute_force 0);
          QCheck_alcotest.to_alcotest (prop_sweep_matches_brute_force 2);
          QCheck_alcotest.to_alcotest prop_linear_clique_count;
          QCheck_alcotest.to_alcotest (prop_clique_pairs_match_pairwise 0);
          QCheck_alcotest.to_alcotest (prop_clique_pairs_match_pairwise 1);
        ] );
    ]
