(* Budget semantics on a fake clock.  [Pinaccess.Unix_time] delegates
   to [Obs.Clock], so swapping the clock source fakes both budget
   deadlines and tracing timestamps from the same timeline. *)

module Budget = Pinaccess.Budget

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let fake_clock () =
  let t = ref 0.0 in
  ((fun () -> !t), fun dt -> t := !t +. dt)

let with_clock f =
  let now, advance = fake_clock () in
  Obs.Clock.with_source now (fun () -> f advance)

let test_deadline () =
  with_clock (fun advance ->
      let b = Budget.start ~seconds:10.0 () in
      check "fresh" false (Budget.exhausted b);
      advance 9.0;
      check "before deadline" false (Budget.exhausted b);
      check "remaining" true (Budget.remaining_seconds b = Some 1.0);
      advance 2.0;
      check "past deadline" true (Budget.exhausted b);
      check "remaining clamped" true (Budget.remaining_seconds b = Some 0.0))

let test_work_allowance () =
  with_clock (fun _ ->
      let b = Budget.start ~work_units:5 () in
      Budget.spend b 4;
      check "under allowance" false (Budget.exhausted b);
      check_int "spent" 4 (Budget.work_spent b);
      Budget.spend b 1;
      check "allowance spent" true (Budget.exhausted b);
      check "remaining work" true (Budget.remaining_work b = Some 0))

(* A child asking for more time than the parent has left is clamped to
   the parent's deadline. *)
let test_sub_clamps_deadline () =
  with_clock (fun advance ->
      let parent = Budget.start ~seconds:10.0 () in
      let child = Budget.sub parent ~seconds:100.0 () in
      advance 9.0;
      check "child alive inside parent window" false (Budget.exhausted child);
      advance 2.0;
      check "child dies with parent" true (Budget.exhausted child);
      (* a tighter child expires on its own, parent keeps going *)
      let parent = Budget.start ~seconds:10.0 () in
      let tight = Budget.sub parent ~seconds:2.0 () in
      advance 3.0;
      check "tight child expired" true (Budget.exhausted tight);
      check "parent still alive" false (Budget.exhausted parent))

(* The child's allowance is the smaller of its request and the
   parent's remainder, and spend on the child is visible to the
   parent: the counter is shared. *)
let test_sub_clamps_work () =
  with_clock (fun _ ->
      let parent = Budget.start ~work_units:10 () in
      Budget.spend parent 4;
      let child = Budget.sub parent ~work_units:100 () in
      check "child clamped to parent remainder" true
        (Budget.remaining_work child = Some 6);
      Budget.spend child 3;
      check_int "child spend visible to parent" 7 (Budget.work_spent parent);
      check "parent remainder shrunk" true
        (Budget.remaining_work parent = Some 3);
      Budget.spend child 3;
      check "child exhausted" true (Budget.exhausted child);
      check "parent exhausted too" true (Budget.exhausted parent))

let test_sub_tighter_work () =
  with_clock (fun _ ->
      let parent = Budget.start ~work_units:100 () in
      let child = Budget.sub parent ~work_units:5 () in
      check "tight child allowance" true (Budget.remaining_work child = Some 5);
      Budget.spend child 5;
      check "tight child exhausted" true (Budget.exhausted child);
      check "parent barely dented" false (Budget.exhausted parent);
      check "parent remainder" true (Budget.remaining_work parent = Some 95))

let test_sub_inherits () =
  with_clock (fun advance ->
      let u = Budget.sub (Budget.unlimited ()) () in
      check "sub of unlimited is unlimited" true (Budget.is_unlimited u);
      let parent = Budget.start ~seconds:5.0 ~work_units:7 () in
      let child = Budget.sub parent () in
      check "inherits work limit" true (Budget.remaining_work child = Some 7);
      advance 6.0;
      check "inherits deadline" true (Budget.exhausted child))

let test_check_raises () =
  with_clock (fun advance ->
      let b = Budget.start ~seconds:1.0 () in
      Budget.check b ~stage:"ok";
      advance 2.0;
      match Budget.check b ~stage:"pao" with
      | () -> Alcotest.fail "expected Budget_exhausted"
      | exception Pinaccess.Cpr_error.Error _ -> ())

let () =
  Alcotest.run "budget"
    [
      ( "budget",
        [
          Alcotest.test_case "deadline" `Quick test_deadline;
          Alcotest.test_case "work allowance" `Quick test_work_allowance;
          Alcotest.test_case "sub clamps deadline" `Quick
            test_sub_clamps_deadline;
          Alcotest.test_case "sub clamps work, shares counter" `Quick
            test_sub_clamps_work;
          Alcotest.test_case "sub can be tighter" `Quick test_sub_tighter_work;
          Alcotest.test_case "sub with no args inherits" `Quick
            test_sub_inherits;
          Alcotest.test_case "check raises when exhausted" `Quick
            test_check_raises;
        ] );
    ]
