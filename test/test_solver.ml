module Lp = Solver.Lp
module Milp = Solver.Milp

let check = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-6))

(* ----- LP ----- *)

let solve_lp p =
  match Lp.solve p with
  | Lp.Optimal s -> s
  | Lp.Infeasible -> Alcotest.fail "unexpected infeasible"
  | Lp.Unbounded -> Alcotest.fail "unexpected unbounded"
  | Lp.Iteration_limit -> Alcotest.fail "unexpected iteration limit"

let test_lp_textbook () =
  (* max 3x + 5y st x <= 4, 2y <= 12, 3x + 2y <= 18 -> 36 at (2, 6) *)
  let p =
    {
      Lp.num_vars = 2;
      maximize = true;
      objective = [ (0, 3.0); (1, 5.0) ];
      constraints =
        [
          Lp.constr [ (0, 1.0) ] Lp.Le 4.0;
          Lp.constr [ (1, 2.0) ] Lp.Le 12.0;
          Lp.constr [ (0, 3.0); (1, 2.0) ] Lp.Le 18.0;
        ];
    }
  in
  let s = solve_lp p in
  check_float "objective" 36.0 s.Lp.objective_value;
  check_float "x" 2.0 s.Lp.values.(0);
  check_float "y" 6.0 s.Lp.values.(1);
  check "feasible" true (Lp.feasible p s.Lp.values)

let test_lp_equality () =
  (* max x + y st x + y = 1, x <= 0.3 -> 1 *)
  let p =
    {
      Lp.num_vars = 2;
      maximize = true;
      objective = [ (0, 1.0); (1, 1.0) ];
      constraints =
        [
          Lp.constr [ (0, 1.0); (1, 1.0) ] Lp.Eq 1.0;
          Lp.constr [ (0, 1.0) ] Lp.Le 0.3;
        ];
    }
  in
  let s = solve_lp p in
  check_float "objective" 1.0 s.Lp.objective_value;
  check "x within bound" true (s.Lp.values.(0) <= 0.3 +. 1e-9)

let test_lp_minimize_with_ge () =
  (* min 2x + 3y st x + y >= 4, x >= 1 -> x=4? min at y=0, x=4 -> 8 *)
  let p =
    {
      Lp.num_vars = 2;
      maximize = false;
      objective = [ (0, 2.0); (1, 3.0) ];
      constraints =
        [
          Lp.constr [ (0, 1.0); (1, 1.0) ] Lp.Ge 4.0;
          Lp.constr [ (0, 1.0) ] Lp.Ge 1.0;
        ];
    }
  in
  let s = solve_lp p in
  check_float "objective" 8.0 s.Lp.objective_value

let test_lp_infeasible () =
  let p =
    {
      Lp.num_vars = 1;
      maximize = true;
      objective = [ (0, 1.0) ];
      constraints =
        [ Lp.constr [ (0, 1.0) ] Lp.Le 1.0; Lp.constr [ (0, 1.0) ] Lp.Ge 2.0 ];
    }
  in
  check "infeasible detected" true (Lp.solve p = Lp.Infeasible)

let test_lp_unbounded () =
  let p =
    {
      Lp.num_vars = 1;
      maximize = true;
      objective = [ (0, 1.0) ];
      constraints = [ Lp.constr [ (0, -1.0) ] Lp.Le 0.0 ];
    }
  in
  check "unbounded detected" true (Lp.solve p = Lp.Unbounded)

let test_lp_negative_rhs () =
  (* -x <= -2 means x >= 2; max -x -> -2 *)
  let p =
    {
      Lp.num_vars = 1;
      maximize = true;
      objective = [ (0, -1.0) ];
      constraints = [ Lp.constr [ (0, -1.0) ] Lp.Le (-2.0) ];
    }
  in
  let s = solve_lp p in
  check_float "objective" (-2.0) s.Lp.objective_value

let test_lp_degenerate () =
  (* redundant constraints must not cycle *)
  let p =
    {
      Lp.num_vars = 2;
      maximize = true;
      objective = [ (0, 1.0); (1, 1.0) ];
      constraints =
        [
          Lp.constr [ (0, 1.0); (1, 1.0) ] Lp.Le 2.0;
          Lp.constr [ (0, 1.0); (1, 1.0) ] Lp.Le 2.0;
          Lp.constr [ (0, 2.0); (1, 2.0) ] Lp.Le 4.0;
          Lp.constr [ (0, 1.0) ] Lp.Le 2.0;
        ];
    }
  in
  check_float "objective" 2.0 (solve_lp p).Lp.objective_value

(* ----- MILP ----- *)

let brute_force (p : Milp.problem) =
  let n = p.Milp.num_vars in
  assert (n <= 16);
  let best = ref neg_infinity in
  for mask = 0 to (1 lsl n) - 1 do
    let values = Array.init n (fun v -> mask land (1 lsl v) <> 0) in
    if Milp.check p values then begin
      let obj = Milp.objective_of p values in
      if obj > !best then best := obj
    end
  done;
  !best

let test_milp_simple () =
  let p =
    {
      Milp.num_vars = 4;
      profit = [| 3.0; 5.0; 2.0; 1.0 |];
      rows =
        [
          Milp.Choose_one [ 0; 1 ];
          Milp.Choose_one [ 2; 3 ];
          Milp.At_most_one [ 1; 2 ];
        ];
    }
  in
  (* (1,3) = 6 is the best conflict-free pick: 5+2 crosses the
     At_most_one row *)
  let s = Milp.solve p in
  check_float "optimal" 6.0 s.Milp.objective;
  check "values satisfy" true (Milp.check p s.Milp.values);
  check "proven" true s.Milp.stats.Milp.proven_optimal

let test_milp_forced_chain () =
  (* conflicts force a unique assignment *)
  let p =
    {
      Milp.num_vars = 4;
      profit = [| 10.0; 1.0; 10.0; 1.0 |];
      rows =
        [
          Milp.Choose_one [ 0; 1 ];
          Milp.Choose_one [ 2; 3 ];
          Milp.At_most_one [ 0; 2 ];
        ];
    }
  in
  let s = Milp.solve p in
  check_float "optimal avoids double-10" 11.0 s.Milp.objective

let test_milp_infeasible () =
  let p =
    {
      Milp.num_vars = 2;
      profit = [| 1.0; 1.0 |];
      rows =
        [
          Milp.Choose_one [ 0 ];
          Milp.Choose_one [ 1 ];
          Milp.At_most_one [ 0; 1 ];
        ];
    }
  in
  check "infeasible raises" true
    (match Milp.solve p with
    | exception Milp.Infeasible -> true
    | _ -> false)

let test_milp_warm_start_and_lp () =
  let p =
    {
      Milp.num_vars = 4;
      profit = [| 3.0; 5.0; 2.0; 1.0 |];
      rows =
        [
          Milp.Choose_one [ 0; 1 ];
          Milp.Choose_one [ 2; 3 ];
          Milp.At_most_one [ 1; 2 ];
        ];
    }
  in
  let warm = [| true; false; true; false |] in
  let s = Milp.solve ~warm_start:warm ~root_lp:true p in
  check_float "optimal with warm start" 6.0 s.Milp.objective;
  (match s.Milp.stats.Milp.root_lp_bound with
  | Some b -> check "lp bound >= optimum" true (b >= 6.0 -. 1e-6)
  | None -> Alcotest.fail "expected an LP bound")

let test_milp_validation () =
  let expect_invalid name p =
    match Milp.solve p with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s: expected Invalid_argument" name
  in
  expect_invalid "var out of range"
    { Milp.num_vars = 1; profit = [| 1.0 |]; rows = [ Milp.Choose_one [ 3 ] ] };
  expect_invalid "var in no choose row"
    {
      Milp.num_vars = 2;
      profit = [| 1.0; 1.0 |];
      rows = [ Milp.Choose_one [ 0 ]; Milp.At_most_one [ 0; 1 ] ];
    };
  expect_invalid "duplicate in row"
    {
      Milp.num_vars = 2;
      profit = [| 1.0; 1.0 |];
      rows = [ Milp.Choose_one [ 0; 0; 1 ] ];
    }

(* random pin-access-shaped instances: pins with disjoint candidate sets
   plus random conflict rows; compare against brute force *)
let random_instance =
  let gen =
    QCheck.Gen.(
      let* num_pins = int_range 1 4 in
      let* sizes = list_repeat num_pins (int_range 1 3) in
      let n = List.fold_left ( + ) 0 sizes in
      let* profits = list_repeat n (int_range 1 20) in
      let* num_conf = int_range 0 4 in
      let* confs =
        list_repeat num_conf
          (let* a = int_range 0 (n - 1) in
           let* b = int_range 0 (n - 1) in
           return (min a b, max a b))
      in
      return (sizes, profits, confs))
  in
  QCheck.make gen

let prop_milp_matches_brute_force =
  QCheck.Test.make ~name:"milp equals brute force" ~count:300 random_instance
    (fun (sizes, profits, confs) ->
      let n = List.length profits in
      let profit = Array.of_list (List.map float_of_int profits) in
      let choose_rows, _ =
        List.fold_left
          (fun (rows, start) size ->
            (Milp.Choose_one (List.init size (fun i -> start + i)) :: rows,
             start + size))
          ([], 0) sizes
      in
      let conf_rows =
        List.filter_map
          (fun (a, b) -> if a <> b then Some (Milp.At_most_one [ a; b ]) else None)
          confs
      in
      let p = { Milp.num_vars = n; profit; rows = choose_rows @ conf_rows } in
      let expected = brute_force p in
      match Milp.solve p with
      | s ->
        expected > neg_infinity
        && Float.abs (s.Milp.objective -. expected) < 1e-6
        && Milp.check p s.Milp.values
      | exception Milp.Infeasible -> expected = neg_infinity)

let prop_lp_bounds_milp =
  QCheck.Test.make ~name:"lp relaxation bounds milp" ~count:200 random_instance
    (fun (sizes, profits, confs) ->
      let n = List.length profits in
      let profit = Array.of_list (List.map float_of_int profits) in
      let choose_rows, _ =
        List.fold_left
          (fun (rows, start) size ->
            (Milp.Choose_one (List.init size (fun i -> start + i)) :: rows,
             start + size))
          ([], 0) sizes
      in
      let conf_rows =
        List.filter_map
          (fun (a, b) -> if a <> b then Some (Milp.At_most_one [ a; b ]) else None)
          confs
      in
      let p = { Milp.num_vars = n; profit; rows = choose_rows @ conf_rows } in
      match Milp.solve ~root_lp:true p with
      | s ->
        (match s.Milp.stats.Milp.root_lp_bound with
        | Some b -> b >= s.Milp.objective -. 1e-6
        | None -> true)
      | exception Milp.Infeasible -> true)

let test_milp_anytime () =
  (* node_limit 1 still returns a feasible solution via greedy dive *)
  let p =
    {
      Milp.num_vars = 6;
      profit = [| 5.0; 4.0; 3.0; 2.0; 6.0; 1.0 |];
      rows =
        [
          Milp.Choose_one [ 0; 1; 2 ];
          Milp.Choose_one [ 3; 4; 5 ];
          Milp.At_most_one [ 0; 4 ];
          Milp.At_most_one [ 1; 3 ];
        ];
    }
  in
  let s = Milp.solve ~node_limit:1 p in
  check "feasible" true (Milp.check p s.Milp.values);
  check "flagged not proven" false s.Milp.stats.Milp.proven_optimal

(* ----- capacity conflict rows (At_most) ----- *)

(* every variable must sit in a Choose_one row, so "take it or not"
   pairs each profitable candidate with a zero-profit alternative —
   the same shape a degraded access point takes in Formula (1) *)
let at_most_problem row =
  {
    Milp.num_vars = 8;
    profit = [| 4.0; 0.0; 3.0; 0.0; 2.0; 0.0; 1.0; 0.0 |];
    rows =
      [
        Milp.Choose_one [ 0; 1 ];
        Milp.Choose_one [ 2; 3 ];
        Milp.Choose_one [ 4; 5 ];
        Milp.Choose_one [ 6; 7 ];
        row;
      ];
  }

let test_milp_at_most () =
  let p = at_most_problem (Milp.At_most (2, [ 0; 2; 4; 6 ])) in
  let s = Milp.solve p in
  check_float "best two fit under cap 2" 7.0 s.Milp.objective;
  check_float "brute force agrees" (brute_force p) s.Milp.objective;
  check "values satisfy" true (Milp.check p s.Milp.values)

let test_milp_at_most_cap1_is_at_most_one () =
  let capped = Milp.solve (at_most_problem (Milp.At_most (1, [ 0; 2; 4; 6 ]))) in
  let classic =
    Milp.solve (at_most_problem (Milp.At_most_one [ 0; 2; 4; 6 ]))
  in
  check_float "cap 1 equals At_most_one" classic.Milp.objective
    capped.Milp.objective;
  check "same selection" true (capped.Milp.values = classic.Milp.values)

let test_milp_at_most_with_choose_one () =
  (* three pins must each pick a candidate; a cap-2 clique over the
     profitable candidates forces one pin onto its cheap alternative —
     exactly the shape a color clique adds to Formula (1) *)
  let p =
    {
      Milp.num_vars = 6;
      profit = [| 5.0; 1.0; 4.0; 1.0; 3.0; 1.0 |];
      rows =
        [
          Milp.Choose_one [ 0; 1 ];
          Milp.Choose_one [ 2; 3 ];
          Milp.Choose_one [ 4; 5 ];
          Milp.At_most (2, [ 0; 2; 4 ]);
        ];
    }
  in
  let s = Milp.solve p in
  check_float "brute force agrees" (brute_force p) s.Milp.objective;
  check_float "one pin degrades" 10.0 s.Milp.objective;
  check "proven" true s.Milp.stats.Milp.proven_optimal

(* ----- color-conflict graphs ----- *)

module CG = Solver.Color_graph

let feat (track, lo, hi) = CG.feature ~track ~lo ~hi

let test_cg_conflicts () =
  let p = CG.default ~colors:3 in
  (* window 1, gap 2: conflict iff fewer than 2 empty columns between *)
  check "overlapping spans, adjacent tracks" true
    (CG.conflicts p (feat (0, 0, 5)) (feat (1, 4, 9)));
  check "one empty column is too close" true
    (CG.conflicts p (feat (0, 0, 5)) (feat (1, 7, 9)));
  check "two empty columns clear the gap" false
    (CG.conflicts p (feat (0, 0, 5)) (feat (1, 8, 9)));
  check "outside the track window" false
    (CG.conflicts p (feat (0, 0, 5)) (feat (2, 4, 9)))

let test_cg_color_three_in_window () =
  let p = CG.default ~colors:3 in
  (* three mutually conflicting features: three solid colors suffice *)
  let feats = Array.map feat [| (0, 0, 5); (1, 0, 5); (1, 3, 8) |] in
  let c = CG.color p feats in
  check "no stitches needed" true (c.CG.stitches = 0);
  check "no residual" true (c.CG.residual = 0);
  check "verifies" true
    (CG.verify p feats c.CG.assignment = Ok ());
  let distinct =
    Array.to_list c.CG.assignment
    |> List.filter_map (function CG.Solid c -> Some c | _ -> None)
    |> List.sort_uniq Int.compare
  in
  check "pairwise conflicting trio uses three colors" true
    (List.length distinct = 3)

let test_cg_stitch_fallback () =
  (* two colors: the long track-1 feature sees a color-0 blocker on its
     left (track 0) and a color-1 blocker on its right (track 2), so no
     solid color fits but one stitch does.  The track-3 feature only
     exists to push the track-2 one onto color 1. *)
  let p = CG.default ~colors:2 in
  let feats =
    Array.map feat [| (0, 0, 3); (3, 10, 13); (2, 10, 13); (1, 0, 13) |]
  in
  let c = CG.color p feats in
  check "stitched once" true (c.CG.stitches = 1);
  check "no residual" true (c.CG.residual = 0);
  check "verifies" true (CG.verify p feats c.CG.assignment = Ok ());
  (match c.CG.assignment.(3) with
  | CG.Stitched { left; right; _ } ->
    check "piece colors differ" true (left <> right)
  | _ -> Alcotest.fail "long feature did not stitch")

let test_cg_verify_rejects () =
  let p = CG.default ~colors:3 in
  let feats = Array.map feat [| (0, 0, 5); (1, 4, 9) |] in
  check "same color on neighbors rejected" true
    (match CG.verify p feats [| CG.Solid 0; CG.Solid 0 |] with
    | Error (CG.Same_color_clash _) -> true
    | _ -> false);
  check "out-of-range color rejected" true
    (match CG.verify p feats [| CG.Solid 3; CG.Solid 0 |] with
    | Error (CG.Color_out_of_range _) -> true
    | _ -> false);
  check "uncolored constrains nothing" true
    (CG.verify p feats [| CG.Uncolored; CG.Solid 0 |] = Ok ())

let test_cg_cliques () =
  let p = CG.default ~colors:3 in
  (* four mutually conflicting features: one clique past capacity *)
  let feats =
    Array.map feat [| (0, 0, 5); (0, 1, 6); (1, 0, 5); (1, 2, 7) |]
  in
  (match CG.cliques p feats with
  | [ (members, _, _) ] ->
    check "all four members" true (Array.to_list members = [ 0; 1; 2; 3 ])
  | other ->
    Alcotest.failf "expected one clique, got %d" (List.length other));
  (* three mutual conflicts fit in three colors: no clique emitted *)
  let feats3 = Array.map feat [| (0, 0, 5); (1, 0, 5); (1, 3, 8) |] in
  check "within capacity emits nothing" true (CG.cliques p feats3 = [])

(* qcheck: every greedy coloring verifies, on arbitrary feature sets *)
let cg_features_gen =
  QCheck.Gen.(
    let* n = int_range 1 14 in
    let* raw =
      list_repeat n
        (let* track = int_range 0 4 in
         let* lo = int_range 0 24 in
         let* len = int_range 1 8 in
         return (track, lo, lo + len))
    in
    return (Array.of_list (List.map feat raw)))

let prop_cg_color_always_verifies =
  QCheck.Test.make ~name:"greedy coloring always verifies" ~count:300
    (QCheck.make ~print:(fun _ -> "<features>") cg_features_gen)
    (fun feats ->
      List.for_all
        (fun colors ->
          let p = CG.default ~colors in
          let c = CG.color p feats in
          CG.verify p feats c.CG.assignment = Ok ())
        [ 2; 3; 4 ])

let () =
  Alcotest.run "solver"
    [
      ( "lp",
        [
          Alcotest.test_case "textbook" `Quick test_lp_textbook;
          Alcotest.test_case "equality" `Quick test_lp_equality;
          Alcotest.test_case "minimize with >=" `Quick test_lp_minimize_with_ge;
          Alcotest.test_case "infeasible" `Quick test_lp_infeasible;
          Alcotest.test_case "unbounded" `Quick test_lp_unbounded;
          Alcotest.test_case "negative rhs" `Quick test_lp_negative_rhs;
          Alcotest.test_case "degenerate" `Quick test_lp_degenerate;
        ] );
      ( "milp",
        [
          Alcotest.test_case "simple" `Quick test_milp_simple;
          Alcotest.test_case "forced chain" `Quick test_milp_forced_chain;
          Alcotest.test_case "infeasible" `Quick test_milp_infeasible;
          Alcotest.test_case "warm start + lp" `Quick test_milp_warm_start_and_lp;
          Alcotest.test_case "validation" `Quick test_milp_validation;
          Alcotest.test_case "anytime" `Quick test_milp_anytime;
          QCheck_alcotest.to_alcotest prop_milp_matches_brute_force;
          QCheck_alcotest.to_alcotest prop_lp_bounds_milp;
          Alcotest.test_case "at-most capacity" `Quick test_milp_at_most;
          Alcotest.test_case "at-most cap 1 = at-most-one" `Quick
            test_milp_at_most_cap1_is_at_most_one;
          Alcotest.test_case "at-most vs choose-one" `Quick
            test_milp_at_most_with_choose_one;
        ] );
      ( "color-graph",
        [
          Alcotest.test_case "conflict predicate" `Quick test_cg_conflicts;
          Alcotest.test_case "three colors in window" `Quick
            test_cg_color_three_in_window;
          Alcotest.test_case "stitch fallback" `Quick test_cg_stitch_fallback;
          Alcotest.test_case "verify rejects" `Quick test_cg_verify_rejects;
          Alcotest.test_case "clique sweep" `Quick test_cg_cliques;
          QCheck_alcotest.to_alcotest prop_cg_color_always_verifies;
        ] );
    ]
