(* Randomized whole-pipeline properties on small generated instances:
   the invariants that must hold for *any* valid input, not just the
   curated examples. *)

module B = Netlist.Builder
module Design = Netlist.Design
module Node = Rgrid.Node
module Layer = Rgrid.Layer
module PA = Pinaccess.Pin_access


(* random small designs: 1-2 rows, pins on distinct (x, zone) slots *)
let design_gen =
  QCheck.Gen.(
    let* rows = int_range 1 2 in
    let* width = int_range 12 30 in
    let* nnets = int_range 1 6 in
    let* raw =
      list_repeat (nnets * 2)
        (let* x = int_range 0 (width - 1) in
         let* zone = int_range 0 1 in
         let* h = int_range 1 3 in
         let* row = int_range 0 (rows - 1) in
         return (x, zone, h, row))
    in
    (* dedupe by (x, zone, row) to keep pin shapes disjoint *)
    let seen = Hashtbl.create 16 in
    let sites =
      List.filter
        (fun (x, zone, _, row) ->
          if Hashtbl.mem seen (x, zone, row) then false
          else begin
            Hashtbl.add seen (x, zone, row) ();
            true
          end)
        raw
    in
    let specs =
      List.map
        (fun (x, zone, h, row) ->
          let base = (row * 10) + if zone = 0 then 1 else 6 in
          let h = min h (if zone = 0 then 4 else 3) in
          B.pin_span x ~lo:base ~hi:(base + h - 1))
        sites
    in
    (* pair pins into 2-pin nets; odd one out becomes a 1-pin net *)
    let rec pair = function
      | a :: b :: rest -> [ a; b ] :: pair rest
      | [ a ] -> [ [ a ] ]
      | [] -> []
    in
    let nets =
      List.mapi (fun i pins -> (Printf.sprintf "n%d" i, pins)) (pair specs)
    in
    if nets = [] then return None
    else return (Some (width, rows * 10, nets)))

let arbitrary_design =
  QCheck.make ~print:(fun _ -> "<design>") design_gen

let build (width, height, nets) = B.design ~width ~height ~nets ()

let prop_pao_valid kind name =
  QCheck.Test.make ~name ~count:60 arbitrary_design (fun input ->
      match input with
      | None -> true
      | Some spec ->
        let d = build spec in
        let pao = PA.optimize ~kind d in
        (match PA.validate pao with
        | () -> true
        | exception Pinaccess.Cpr_error.Error _ -> false))

(* Theorem 1 made executable: with both optimizing tiers killed, the
   shrink-to-minimum rung must still produce a complete conflict-free
   assignment on ANY valid design — the ladder's unconditional floor. *)
let prop_minimum_fallback_valid =
  QCheck.Test.make ~name:"minimum-tier fallback always valid" ~count:60
    arbitrary_design (fun input ->
      match input with
      | None -> true
      | Some spec ->
        let d = build spec in
        let pao =
          Pinaccess.Fault.with_failures
            [ Pinaccess.Fault.Ilp; Pinaccess.Fault.Lr ]
            (fun () -> PA.optimize ~kind:PA.Ilp d)
        in
        (match PA.validate pao with
        | () ->
          pao.PA.degraded
          && List.for_all
               (fun (r : PA.panel_report) ->
                 r.PA.served_by = PA.Tier_minimum && r.PA.degraded)
               pao.PA.reports
        | exception Pinaccess.Cpr_error.Error _ -> false))

(* save → load reproduces the design exactly (pins, nets, blockages) *)
let prop_design_io_roundtrip =
  QCheck.Test.make ~name:"design_io roundtrip" ~count:60 arbitrary_design
    (fun input ->
      match input with
      | None -> true
      | Some spec ->
        let d = build spec in
        let d' = Netlist.Design_io.of_string (Netlist.Design_io.to_string d) in
        Netlist.Design_io.to_string d = Netlist.Design_io.to_string d'
        && Array.length (Design.pins d) = Array.length (Design.pins d')
        && Array.length (Design.nets d) = Array.length (Design.nets d'))

let prop_lr_le_ilp =
  (* only comparable when the LR solution is feasible: with residual
     clearance conflicts its objective counts intervals the exact
     solver would forbid *)
  QCheck.Test.make ~name:"feasible LR objective <= ILP objective" ~count:40
    arbitrary_design (fun input ->
      match input with
      | None -> true
      | Some spec ->
        let d = build spec in
        let cfg = Pinaccess.Interval_gen.default_config in
        let ok = ref true in
        for panel = 0 to Netlist.Design.num_panels d - 1 do
          let problem = Pinaccess.Problem.build_panel cfg d ~panel in
          if Pinaccess.Problem.num_pins problem > 0 then begin
            let lr = Pinaccess.Lagrangian.solve problem in
            let sol = lr.Pinaccess.Lagrangian.solution in
            if Pinaccess.Solution.is_conflict_free sol then begin
              match Pinaccess.Ilp.solve ~time_limit:10.0 ~warm_start:sol problem with
              | ilp ->
                if
                  Pinaccess.Solution.objective sol
                  > ilp.Pinaccess.Ilp.objective +. 1e-6
                then ok := false
              | exception Solver.Milp.Infeasible -> ()
            end
          end
        done;
        !ok)

let prop_cpr_flow_sound =
  QCheck.Test.make ~name:"CPR flow invariants on random designs" ~count:30
    arbitrary_design (fun input ->
      match input with
      | None -> true
      | Some spec ->
        let d = build spec in
        let flow = Router.Cpr.run d in
        (* clean nets verified electrically; final metal short-free *)
        Router.Verify.check_flow flow = []
        &&
        let owner = Hashtbl.create 64 in
        Array.for_all
          (fun route ->
            match route with
            | None -> true
            | Some (r : Rgrid.Route.t) ->
              List.for_all
                (fun node ->
                  match Hashtbl.find_opt owner node with
                  | Some other when other <> r.Rgrid.Route.net -> false
                  | Some _ | None ->
                    Hashtbl.replace owner node r.Rgrid.Route.net;
                    true)
                r.Rgrid.Route.nodes)
          flow.Router.Flow.routes)

let prop_determinism =
  QCheck.Test.make ~name:"flows are deterministic" ~count:15 arbitrary_design
    (fun input ->
      match input with
      | None -> true
      | Some spec ->
        let d1 = build spec and d2 = build spec in
        let s1 = Metrics.Eval.of_flow (Router.Cpr.run d1) in
        let s2 = Metrics.Eval.of_flow (Router.Cpr.run d2) in
        s1.Metrics.Eval.routed_nets = s2.Metrics.Eval.routed_nets
        && s1.Metrics.Eval.via_count = s2.Metrics.Eval.via_count
        && s1.Metrics.Eval.wirelength = s2.Metrics.Eval.wirelength)

(* unidirectionality of final metal: M2 segments never span tracks,
   M3 segments never span columns (guaranteed by Route.segments
   grouping, re-checked here from raw nodes) *)
let prop_unidirectional =
  QCheck.Test.make ~name:"final metal is unidirectional" ~count:30
    arbitrary_design (fun input ->
      match input with
      | None -> true
      | Some spec ->
        let d = build spec in
        let space = Node.space_of_design d in
        let flow = Router.Baseline_ncr.run d in
        Array.for_all
          (fun route ->
            match route with
            | None -> true
            | Some (r : Rgrid.Route.t) ->
              List.for_all
                (fun (seg : Rgrid.Route.seg) ->
                  ignore space;
                  match seg.Rgrid.Route.layer with
                  | Layer.M2 | Layer.M3 -> true
                  | Layer.M1 -> false)
                (Rgrid.Route.segments ~space r))
          flow.Router.Flow.routes)

(* ------------------------------------------------------------------ *)
(* TPL (color-constrained) properties                                  *)
(* ------------------------------------------------------------------ *)

let tpl_config colors =
  {
    PA.default_config with
    PA.gen =
      {
        PA.default_config.PA.gen with
        Pinaccess.Interval_gen.tpl = Some (Solver.Color_graph.default ~colors);
      };
  }

(* a TPL run's result still certifies against the audit layer, and the
   attached coloring re-verifies against the deck from its own raw
   feature geometry — the audit-legality of satellite (e) *)
let prop_tpl_coloring_certified =
  QCheck.Test.make ~name:"TPL coloring certifies and re-verifies" ~count:40
    arbitrary_design (fun input ->
      match input with
      | None -> true
      | Some spec ->
        let d = build spec in
        let r = PA.optimize ~config:(tpl_config 3) ~kind:PA.Lr d in
        PA.validate r;
        (match Audit.certify_pin_access r with
        | Error _ -> false
        | Ok () -> (
          match r.PA.tpl with
          | None -> false
          | Some c ->
            let feats =
              Array.map
                (fun (track, lo, hi, _net) ->
                  Solver.Color_graph.feature ~track ~lo ~hi)
                c.PA.features
            in
            Solver.Color_graph.verify c.PA.tpl_params feats c.PA.colors
            = Ok ())))

(* parallel panel solves merge into the same global coloring *)
let prop_tpl_parallel_identical =
  QCheck.Test.make ~name:"-j2 = -j1 under TPL" ~count:30 arbitrary_design
    (fun input ->
      match input with
      | None -> true
      | Some spec ->
        let d = build spec in
        let config = tpl_config 3 in
        let seq = PA.optimize ~config ~kind:PA.Lr ~j:1 d in
        let par = PA.optimize ~config ~kind:PA.Lr ~j:2 d in
        seq.PA.assignments = par.PA.assignments
        && seq.PA.objective = par.PA.objective
        && seq.PA.tpl = par.PA.tpl)

(* with the deck off, nothing TPL-shaped leaks into the result, and a
   TPL run in between leaves no hidden state behind *)
let prop_tpl_off_bit_identical =
  QCheck.Test.make ~name:"TPL off is bit-identical" ~count:30 arbitrary_design
    (fun input ->
      match input with
      | None -> true
      | Some spec ->
        let d = build spec in
        let before = PA.optimize ~kind:PA.Lr d in
        let tpl_run = PA.optimize ~config:(tpl_config 3) ~kind:PA.Lr d in
        ignore tpl_run;
        let after = PA.optimize ~kind:PA.Lr d in
        before.PA.tpl = None && after.PA.tpl = None
        && before.PA.assignments = after.PA.assignments
        && before.PA.objective = after.PA.objective
        && before.PA.reports = after.PA.reports)

let () =
  Alcotest.run "properties"
    [
      ( "pipeline",
        [
          QCheck_alcotest.to_alcotest (prop_pao_valid PA.Lr "LR PAO valid");
          QCheck_alcotest.to_alcotest (prop_pao_valid PA.Ilp "ILP PAO valid");
          QCheck_alcotest.to_alcotest prop_minimum_fallback_valid;
          QCheck_alcotest.to_alcotest prop_design_io_roundtrip;
          QCheck_alcotest.to_alcotest prop_lr_le_ilp;
          QCheck_alcotest.to_alcotest prop_cpr_flow_sound;
          QCheck_alcotest.to_alcotest prop_determinism;
          QCheck_alcotest.to_alcotest prop_unidirectional;
        ] );
      ( "tpl",
        [
          QCheck_alcotest.to_alcotest prop_tpl_coloring_certified;
          QCheck_alcotest.to_alcotest prop_tpl_parallel_identical;
          QCheck_alcotest.to_alcotest prop_tpl_off_bit_identical;
        ] );
    ]
