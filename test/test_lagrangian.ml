module I = Geometry.Interval
module B = Netlist.Builder
module P = Pinaccess.Problem
module LR = Pinaccess.Lagrangian
module Sol = Pinaccess.Solution
module Obj = Pinaccess.Objective

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let cfg = Pinaccess.Interval_gen.default_config

let fig3_design () =
  B.design ~width:20 ~height:10
    ~nets:
      [
        ("a", [ B.pin_span 6 ~lo:2 ~hi:4; B.pin_at 2 7; B.pin_at 17 6 ]);
        ("b", [ B.pin_at 9 3; B.pin_at 9 8 ]);
        ("c", [ B.pin_at 3 2; B.pin_at 13 2 ]);
        ("d", [ B.pin_at 14 3; B.pin_at 15 8 ]);
      ]
    ()

let test_objective_function () =
  Alcotest.(check (float 1e-9)) "sqrt" 3.0 (Obj.f Obj.Sqrt_length 9);
  Alcotest.(check (float 1e-9)) "linear" 9.0 (Obj.f Obj.Linear_length 9);
  let iv =
    Pinaccess.Access_interval.make ~id:0 ~net:0 ~pins:[ 0; 1 ] ~track:0
      ~span:(I.make ~lo:0 ~hi:8) ~kind:Pinaccess.Access_interval.Regular
  in
  Alcotest.(check (float 1e-9)) "shared counted per pin" 6.0
    (Obj.profit Obj.Sqrt_length iv)

let test_max_gains_assigns_all () =
  let d = fig3_design () in
  let problem = P.build_panel cfg d ~panel:0 in
  let assignment = LR.max_gains problem ~gains:problem.P.profits in
  check_int "every pin assigned" (P.num_pins problem) (Array.length assignment);
  Array.iteri
    (fun slot id ->
      check "assigned interval serves pin" true
        (Pinaccess.Access_interval.serves problem.P.intervals.(id)
           problem.P.pin_ids.(slot)))
    assignment

let test_max_gains_prefers_gain () =
  (* with all-equal penalties, the top-gain interval of an isolated pin
     is selected *)
  let d =
    B.design ~width:20 ~height:10 ~nets:[ ("a", [ B.pin_at 5 3; B.pin_at 15 3 ]) ] ()
  in
  let problem = P.build_panel cfg d ~panel:0 in
  let assignment = LR.max_gains problem ~gains:problem.P.profits in
  (* the shared maximal interval serves both pins and has the largest
     profit, so both slots point at it *)
  check "both pins share the max interval" true
    (assignment.(0) = assignment.(1))

let test_solve_conflict_free () =
  let d = fig3_design () in
  let problem = P.build_panel cfg d ~panel:0 in
  let r = LR.solve problem in
  check "conflict-free" true (Sol.is_conflict_free r.LR.solution);
  check "iterations positive" true (r.LR.iterations >= 1);
  check "history recorded" true (List.length r.LR.history = r.LR.iterations)

let test_violations_decrease () =
  let d = Workloads.Suite.design ~scale:0.08 (Workloads.Suite.find "ecc") in
  let problem = P.build_panel cfg d ~panel:0 in
  let r = LR.solve problem in
  match r.LR.history with
  | [] -> () (* converged instantly *)
  | first :: _ ->
    let last_best = r.LR.best_violations in
    check "best violations <= first iterate's" true
      (last_best <= first.LR.violations)

let test_iteration_bound_respected () =
  let d = Workloads.Suite.design ~scale:0.08 (Workloads.Suite.find "ecc") in
  let problem = P.build_panel cfg d ~panel:0 in
  let config = { LR.default_config with LR.max_iterations = 5 } in
  let r = LR.solve ~config problem in
  check "at most 5 iterations" true (r.LR.iterations <= 5);
  check "still conflict-free after refinement" true
    (Sol.num_violations r.LR.solution <= r.LR.best_violations)

let test_constant_step_ablation () =
  let d = fig3_design () in
  let problem = P.build_panel cfg d ~panel:0 in
  let config = { LR.default_config with LR.constant_step = Some 0.5 } in
  let r = LR.solve ~config problem in
  check "constant step also conflict-free here" true
    (Sol.is_conflict_free r.LR.solution)

let test_literal_algorithm1 () =
  let d = fig3_design () in
  let problem = P.build_panel cfg d ~panel:0 in
  let config = { LR.default_config with LR.full_subgradient = false } in
  let r = LR.solve ~config problem in
  check "algorithm-1-literal converges here" true
    (Sol.is_conflict_free r.LR.solution)

let test_solution_accessors () =
  let d = fig3_design () in
  let problem = P.build_panel cfg d ~panel:0 in
  let r = LR.solve problem in
  let sol = r.LR.solution in
  check "objective positive" true (Sol.objective sol > 0.0);
  check "total length >= pins" true (Sol.total_length sol >= P.num_pins problem);
  check "balance in (0,1]" true (Sol.balance sol > 0.0 && Sol.balance sol <= 1.0);
  Array.iter
    (fun pid ->
      let iv = Sol.interval_of_pin sol pid in
      check "interval serves its pin" true (Pinaccess.Access_interval.serves iv pid))
    problem.P.pin_ids

let test_refine_repairs_conflicts () =
  let d = fig3_design () in
  let problem = P.build_panel cfg d ~panel:0 in
  (* deliberately conflicting start: every pin takes its highest-profit
     candidate *)
  let assignment =
    Array.mapi
      (fun _slot candidates ->
        Array.fold_left
          (fun best id ->
            if problem.P.profits.(id) > problem.P.profits.(best) then id
            else best)
          candidates.(0) candidates)
      problem.P.pin_candidates
  in
  let raw = Sol.make problem ~assignment in
  let repaired, shrinks = Pinaccess.Refine.remove_conflicts raw in
  check "greedy start had conflicts" true (Sol.num_violations raw > 0);
  check "repaired" true (Sol.is_conflict_free repaired);
  check "shrinks counted" true (shrinks > 0)

let test_warm_start_fewer_iterations () =
  (* a warm restart from the converged multipliers of the *same*
     problem must re-converge strictly faster than the cold solve did *)
  let d = fig3_design () in
  let problem = P.build_panel cfg d ~panel:0 in
  let cold = LR.solve problem in
  check "cold solve converges" true (cold.LR.best_violations = 0);
  check "cold solve needs several iterations" true (cold.LR.iterations >= 2);
  check "multiplier vector matches clique count" true
    (Array.length (LR.multipliers cold) = Array.length problem.P.cliques);
  let warm = LR.solve ~warm_start:(LR.multipliers cold) problem in
  check "warm restart converges" true (warm.LR.best_violations = 0);
  Alcotest.(check bool)
    (Printf.sprintf "warm %d < cold %d iterations" warm.LR.iterations
       cold.LR.iterations)
    true
    (warm.LR.iterations < cold.LR.iterations)

let test_warm_start_length_mismatch () =
  let d = fig3_design () in
  let problem = P.build_panel cfg d ~panel:0 in
  let bad = Array.make (Array.length problem.P.cliques + 1) 0.0 in
  Alcotest.check_raises "length mismatch rejected"
    (Invalid_argument
       (Printf.sprintf
          "Lagrangian.solve: warm_start has %d multipliers, problem has %d \
           cliques"
          (Array.length bad)
          (Array.length problem.P.cliques)))
    (fun () -> ignore (LR.solve ~warm_start:bad problem))

let test_objective_close_to_ilp () =
  let d = Workloads.Suite.design ~scale:0.08 (Workloads.Suite.find "ecc") in
  let problem = P.build_panel cfg d ~panel:0 in
  let lr = LR.solve problem in
  if Sol.is_conflict_free lr.LR.solution then begin
    let ilp =
      Pinaccess.Ilp.solve ~time_limit:20.0 ~warm_start:lr.LR.solution problem
    in
    let lr_obj = Sol.objective lr.LR.solution in
    check "LR <= ILP" true (lr_obj <= ilp.Pinaccess.Ilp.objective +. 1e-6);
    (* Fig 6(b): LR is close to optimal — allow a generous 25% here *)
    check "LR within 25% of ILP" true
      (lr_obj >= 0.75 *. ilp.Pinaccess.Ilp.objective)
  end

let () =
  Alcotest.run "lagrangian"
    [
      ( "lr",
        [
          Alcotest.test_case "objective f" `Quick test_objective_function;
          Alcotest.test_case "maxGains assigns all" `Quick test_max_gains_assigns_all;
          Alcotest.test_case "maxGains prefers gain" `Quick test_max_gains_prefers_gain;
          Alcotest.test_case "solve conflict-free" `Quick test_solve_conflict_free;
          Alcotest.test_case "violations decrease" `Quick test_violations_decrease;
          Alcotest.test_case "iteration bound" `Quick test_iteration_bound_respected;
          Alcotest.test_case "constant step ablation" `Quick test_constant_step_ablation;
          Alcotest.test_case "algorithm 1 literal" `Quick test_literal_algorithm1;
          Alcotest.test_case "solution accessors" `Quick test_solution_accessors;
          Alcotest.test_case "refine repairs" `Quick test_refine_repairs_conflicts;
          Alcotest.test_case "warm start fewer iterations" `Quick
            test_warm_start_fewer_iterations;
          Alcotest.test_case "warm start length mismatch" `Quick
            test_warm_start_length_mismatch;
          Alcotest.test_case "LR close to ILP" `Slow test_objective_close_to_ilp;
        ] );
    ]
