module I = Geometry.Interval
module B = Netlist.Builder
module Design = Netlist.Design

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let small_design () =
  B.design ~width:20 ~height:20
    ~nets:
      [
        ("a", [ B.pin_at 3 2; B.pin_at 12 4 ]);
        ("b", [ B.pin_span 7 ~lo:12 ~hi:14; B.pin_at 15 16 ]);
        ("c", [ B.pin_at 5 7 ]);
      ]
    ()

let test_builder_basics () =
  let d = small_design () in
  check_int "pins" 5 (Array.length (Design.pins d));
  check_int "nets" 3 (Array.length (Design.nets d));
  check_int "panels" 2 (Design.num_panels d);
  check_int "width" 20 (Design.width d);
  let p = Design.pin d 2 in
  check_int "pin net" 1 p.Netlist.Pin.net;
  check_int "pin x" 7 p.Netlist.Pin.x

let test_pin_helpers () =
  let p = Netlist.Pin.make ~id:0 ~net:0 ~x:4 ~tracks:(I.make ~lo:2 ~hi:4) in
  check_int "primary is middle" 3 (Netlist.Pin.primary_track p);
  check "covers" true (Netlist.Pin.covers_track p 2);
  check "not covers" false (Netlist.Pin.covers_track p 5);
  check "location" true
    (Geometry.Point.equal (Netlist.Pin.location p) (Geometry.Point.make ~x:4 ~y:3))

let test_net_bbox () =
  let d = small_design () in
  let bbox = Design.net_bbox d 0 in
  check_int "bbox xlo" 3 (I.lo (Geometry.Rect.xs bbox));
  check_int "bbox xhi" 12 (I.hi (Geometry.Rect.xs bbox));
  (* single-pin net has a degenerate bbox *)
  check_int "1-pin bbox width" 1 (Geometry.Rect.width (Design.net_bbox d 2))

let test_panel_queries () =
  let d = small_design () in
  check_int "panel of track 12" 1 (Design.panel_of_track d 12);
  let tracks = Design.panel_tracks d 1 in
  check_int "panel 1 lo" 10 (I.lo tracks);
  check_int "panel 1 hi" 19 (I.hi tracks);
  check_int "pins of panel 0" 3 (List.length (Design.pins_of_panel d 0));
  check_int "pins of panel 1" 2 (List.length (Design.pins_of_panel d 1));
  (* pins_on_track returns pins sorted by column *)
  let on13 = Design.pins_on_track d 13 in
  check_int "pins on track 13" 1 (List.length on13)

let test_validation_rejects () =
  let expect_invalid name f =
    match f () with
    | exception Design.Invalid _ -> ()
    | _ -> Alcotest.failf "%s: expected Design.Invalid" name
  in
  expect_invalid "off-die pin" (fun () ->
      B.design ~width:10 ~height:10 ~nets:[ ("a", [ B.pin_at 11 2 ]) ] ());
  expect_invalid "pin crossing panels" (fun () ->
      B.design ~width:10 ~height:20
        ~nets:[ ("a", [ B.pin_span 3 ~lo:8 ~hi:11 ]) ]
        ());
  expect_invalid "empty net" (fun () ->
      B.design ~width:10 ~height:10 ~nets:[ ("a", []) ] ());
  expect_invalid "overlapping pins" (fun () ->
      B.design ~width:10 ~height:10
        ~nets:[ ("a", [ B.pin_at 3 2 ]); ("b", [ B.pin_at 3 2 ]) ]
        ());
  expect_invalid "die not whole rows" (fun () ->
      B.design ~width:10 ~height:15 ~nets:[ ("a", [ B.pin_at 1 1 ]) ] ())

let test_blockage_index () =
  let blockages =
    [
      Netlist.Blockage.make ~layer:Netlist.Blockage.M2 ~track:5
        ~span:(I.make ~lo:2 ~hi:6);
      Netlist.Blockage.make ~layer:Netlist.Blockage.M2 ~track:5
        ~span:(I.make ~lo:10 ~hi:12);
      Netlist.Blockage.make ~layer:Netlist.Blockage.M3 ~track:4
        ~span:(I.make ~lo:0 ~hi:3);
    ]
  in
  let d =
    B.design ~width:20 ~height:10 ~nets:[ ("a", [ B.pin_at 8 2 ]) ] ~blockages ()
  in
  check_int "m2 blockages on track 5" 2
    (List.length (Design.m2_blockages_on_track d 5));
  check_int "none on track 6" 0 (List.length (Design.m2_blockages_on_track d 6));
  check_int "all blockages kept" 3 (List.length (Design.blockages d))


(* ----- Design_io ----- *)

let test_io_roundtrip () =
  let d = small_design () in
  let d' = Netlist.Design_io.of_string (Netlist.Design_io.to_string d) in
  check_int "pins preserved" (Array.length (Design.pins d))
    (Array.length (Design.pins d'));
  check_int "nets preserved" (Array.length (Design.nets d))
    (Array.length (Design.nets d'));
  Array.iteri
    (fun i (p : Netlist.Pin.t) ->
      let q = Design.pin d' i in
      check "pin identical" true
        (p.Netlist.Pin.x = q.Netlist.Pin.x
        && Geometry.Interval.equal p.Netlist.Pin.tracks q.Netlist.Pin.tracks
        && p.Netlist.Pin.net = q.Netlist.Pin.net))
    (Design.pins d)

let test_io_roundtrip_generated () =
  let d =
    Workloads.Generator.generate
      (Workloads.Generator.with_size ~name:"io" ~nets:80 ~width:80 ~height:40
         ~seed:9L ())
  in
  let d' = Netlist.Design_io.of_string (Netlist.Design_io.to_string d) in
  check "same serialization" true
    (Netlist.Design_io.to_string d = Netlist.Design_io.to_string d');
  check_int "blockages preserved"
    (List.length (Design.blockages d))
    (List.length (Design.blockages d'))

let expect_malformed name f =
  match f () with
  | exception Netlist.Design_io.Malformed _ -> ()
  | exception e ->
    Alcotest.failf "%s: expected Design_io.Malformed, got %s" name
      (Printexc.to_string e)
  | _ -> Alcotest.failf "%s: expected Design_io.Malformed" name

let test_io_parse_errors () =
  let expect_invalid name text =
    expect_malformed name (fun () -> Netlist.Design_io.of_string text)
  in
  expect_invalid "missing header" "net a\npin 1 2 2\n";
  expect_invalid "pin before net" "design d 10 10 10\npin 1 2 2\n";
  expect_invalid "bad integer" "design d 10 x 10\n";
  expect_invalid "unknown record" "design d 10 10 10\nfrob 1\n";
  expect_invalid "unknown layer" "design d 10 10 10\nblockage M7 1 2 3\n"

(* corrupt input must always surface as the typed [Malformed] error —
   never a leaked [Scanf.Scan_failure], [Failure] or [Invalid_argument] *)
let test_io_malformed_semantics () =
  let expect_invalid name text =
    expect_malformed name (fun () -> Netlist.Design_io.of_string text)
  in
  expect_invalid "truncated pin record" "design d 10 10 10\nnet a\npin 1 2\n";
  expect_invalid "off-die pin" "design d 10 10 10\nnet a\npin 12 2 2\n";
  expect_invalid "negative track" "design d 10 10 10\nnet a\npin 1 -3 2\n";
  expect_invalid "empty track range" "design d 10 10 10\nnet a\npin 1 5 3\n";
  expect_invalid "panel-crossing pin" "design d 10 20 10\nnet a\npin 1 8 11\n";
  expect_invalid "duplicate pin"
    "design d 10 10 10\nnet a\npin 3 2 2\nnet b\npin 3 2 2\n";
  expect_invalid "empty net" "design d 10 10 10\nnet a\nnet b\npin 1 2 2\n";
  expect_invalid "no nets" "design d 10 10 10\n";
  expect_invalid "bad row height" "design d 10 10 0\nnet a\npin 1 2 2\n";
  expect_invalid "ragged rows" "design d 10 15 10\nnet a\npin 1 2 2\n";
  expect_invalid "garbage" "\x00\xffnot a design at all\n";
  expect_invalid "out-of-bbox blockage"
    "design d 10 10 10\nnet a\npin 1 2 2\nblockage M2 2 7 15\n"

let test_io_malformed_has_line () =
  match
    Netlist.Design_io.of_string "design d 10 10 10\nnet a\npin 12 2 2\n"
  with
  | exception Netlist.Design_io.Malformed { line; reason } ->
    Alcotest.(check (option int)) "line number" (Some 3) line;
    check "reason mentions the pin" true
      (String.length reason > 0)
  | _ -> Alcotest.fail "expected Malformed with a line number"

let test_io_repair () =
  let d =
    Netlist.Design_io.of_string ~repair:true
      "design d 10 10 10\n\
       net a\n\
       pin 12 2 2\n\
       net b\n\
       pin 3 4 4\n\
       net c\n\
       pin 3 4 4\n\
       blockage M2 2 7 15\n\
       blockage M2 99 0 3\n"
  in
  (* off-die pin clamped to x=9; duplicate pin of net c dropped (and
     with it net c); oversized blockage span clamped; off-die blockage
     track dropped *)
  check_int "nets kept" 2 (Array.length (Design.nets d));
  check_int "pins kept" 2 (Array.length (Design.pins d));
  let p = Design.pin d 0 in
  check_int "clamped x" 9 p.Netlist.Pin.x;
  check_int "blockages kept" 1 (List.length (Design.blockages d));
  (match Design.blockages d with
  | [ b ] -> check_int "clamped span hi" 9 (I.hi b.Netlist.Blockage.span)
  | _ -> Alcotest.fail "expected one blockage");
  (* repair cannot conjure pins out of nothing *)
  expect_malformed "all pins unrepairable" (fun () ->
      Netlist.Design_io.of_string ~repair:true "design d 10 10 10\nnet a\n")

let test_io_load_errors () =
  expect_malformed "missing file" (fun () ->
      Netlist.Design_io.load "/nonexistent/dir/nothing.cpr");
  let path = Filename.temp_file "cpr_test" ".cpr" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "design d 10 10\n";
      close_out oc;
      expect_malformed "corrupt file" (fun () -> Netlist.Design_io.load path))

let test_io_comments_and_blanks () =
  let text =
    "# a comment\ndesign d 10 10 10\n\nnet a # trailing\npin 1 2 2\npin 4 3 3\n"
  in
  let d = Netlist.Design_io.of_string text in
  check_int "two pins" 2 (Array.length (Design.pins d))

let () =
  Alcotest.run "netlist"
    [
      ( "design",
        [
          Alcotest.test_case "builder basics" `Quick test_builder_basics;
          Alcotest.test_case "pin helpers" `Quick test_pin_helpers;
          Alcotest.test_case "net bbox" `Quick test_net_bbox;
          Alcotest.test_case "panel queries" `Quick test_panel_queries;
          Alcotest.test_case "validation rejects" `Quick test_validation_rejects;
          Alcotest.test_case "blockage index" `Quick test_blockage_index;
        ] );
      ( "design_io",
        [
          Alcotest.test_case "roundtrip" `Quick test_io_roundtrip;
          Alcotest.test_case "roundtrip generated" `Quick test_io_roundtrip_generated;
          Alcotest.test_case "parse errors" `Quick test_io_parse_errors;
          Alcotest.test_case "malformed semantics" `Quick
            test_io_malformed_semantics;
          Alcotest.test_case "malformed line numbers" `Quick
            test_io_malformed_has_line;
          Alcotest.test_case "repair mode" `Quick test_io_repair;
          Alcotest.test_case "load errors" `Quick test_io_load_errors;
          Alcotest.test_case "comments" `Quick test_io_comments_and_blanks;
        ] );
    ]
