module B = Netlist.Builder
module Eval = Metrics.Eval
module Report = Metrics.Report

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let design () =
  B.design ~width:20 ~height:10
    ~nets:
      [
        ("a", [ B.pin_at 2 3; B.pin_at 12 3 ]);
        ("b", [ B.pin_at 5 6; B.pin_at 15 2 ]);
      ]
    ()

let test_hpwl () =
  let d = design () in
  check_int "net 0 hpwl" 10 (Eval.hpwl d 0);
  check_int "net 1 hpwl" 14 (Eval.hpwl d 1)

let test_of_flow () =
  let d = design () in
  let flow = Router.Baseline_ncr.run d in
  let s = Eval.of_flow ~name:"tiny" flow in
  check_int "total nets" 2 s.Eval.total_nets;
  check "name" true (s.Eval.name = "tiny");
  check "routability in range" true
    (s.Eval.routability >= 0.0 && s.Eval.routability <= 100.0);
  check "wl positive" true (s.Eval.wirelength > 0);
  if s.Eval.routed_nets = s.Eval.total_nets then
    check "full routability" true (Float.abs (s.Eval.routability -. 100.0) < 1e-9)

let test_via_estimate_extrapolates () =
  let d = design () in
  let flow = Router.Baseline_ncr.run d in
  let s = Eval.of_flow flow in
  (* with all nets routed, estimate equals the raw count: each 2-pin net
     carries at least 2 V1s *)
  check "via estimate >= 2 per routed net" true
    (s.Eval.via_count >= 2 * s.Eval.routed_nets)

let test_ratio () =
  let a =
    {
      Eval.name = "a";
      total_nets = 100;
      routed_nets = 90;
      routability = 90.0;
      via_count = 200;
      wirelength = 1000;
      cpu = 2.0;
      initial_congestion = 10;
      violations = 0;
      degraded_panels = 0;
    }
  in
  let b = { a with Eval.name = "b"; routability = 45.0; via_count = 100; cpu = 4.0 } in
  let rout, via, wl, cpu = Eval.ratio b ~reference:a in
  check "rout ratio" true (Float.abs (rout -. 0.5) < 1e-9);
  check "via ratio" true (Float.abs (via -. 0.5) < 1e-9);
  check "wl ratio" true (Float.abs (wl -. 1.0) < 1e-9);
  check "cpu ratio" true (Float.abs (cpu -. 2.0) < 1e-9)

let test_report_table () =
  let t =
    Report.table
      ~header:[ "a"; "bb"; "ccc" ]
      [ [ "1"; "2"; "3" ]; [ "10"; "20" ] ]
  in
  let lines = String.split_on_char '\n' t in
  check_int "header + sep + 2 rows" 4 (List.length lines);
  (match lines with
  | _ :: sep :: _ -> check "separator dashes" true (String.contains sep '-')
  | _ -> Alcotest.fail "bad table");
  check "fixed format" true (Report.fixed 2 3.14159 = "3.14")

let test_summary_cells () =
  let s =
    {
      Eval.name = "x";
      total_nets = 10;
      routed_nets = 9;
      routability = 90.0;
      via_count = 42;
      wirelength = 777;
      cpu = 1.25;
      initial_congestion = 3;
      violations = 1;
      degraded_panels = 0;
    }
  in
  check "cells" true
    (Report.summary_cells s = [ "90.00"; "42"; "777"; "1.25" ])

let () =
  Alcotest.run "metrics"
    [
      ( "eval",
        [
          Alcotest.test_case "hpwl" `Quick test_hpwl;
          Alcotest.test_case "of_flow" `Quick test_of_flow;
          Alcotest.test_case "via estimate" `Quick test_via_estimate_extrapolates;
          Alcotest.test_case "ratio" `Quick test_ratio;
        ] );
      ( "report",
        [
          Alcotest.test_case "table" `Quick test_report_table;
          Alcotest.test_case "summary cells" `Quick test_summary_cells;
        ] );
    ]
